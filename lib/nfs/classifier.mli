(** The stateful flow classifier module (Listing 1, Fig 6(b)): a
    cuckoo-hash match module decomposed into
    get_key / hash_1 / bucket_check_1 / key_check_1 / hash_2 /
    bucket_check_2 / key_check_2 NFActions — each bucket probe is two
    dependent cache-line reads, each its own action whose line address is
    resolved (and hence prefetchable) one step ahead. *)

open Gunfu

(** The Listing-1 module specification (parsed once). *)
val spec : Spec.module_spec Lazy.t

val spec_text : string

type t = {
  name : string;
  table : Structures.Cuckoo.t;
  key_kind : string;  (** what the key identifies; drives match removal *)
  key_fn : Nftask.t -> int64;
  header_bytes : int;
}

(** Canonical 5-tuple key (rewrites do not change a flow's identity — what
    makes redundant-matching removal sound). *)
val five_tuple_key : Nftask.t -> int64

(** Destination-IP key (the UPF downlink session lookup). *)
val dst_ip_key : Nftask.t -> int64

val create :
  Memsim.Layout.t -> name:string -> key_kind:string -> key_fn:(Nftask.t -> int64) ->
  capacity:int -> unit -> t

val table : t -> Structures.Cuckoo.t

(** Insert [key -> per-flow index] pairs. Table overflow resolves per
    [policy] (default [Drop_new]) instead of raising; the result is the
    number of entries that are *not* resident afterwards (rejected new
    entries, or victims displaced by [Evict_lru]) — 0 on a well-sized
    table. *)
val populate :
  ?policy:Structures.Cuckoo.overflow_policy -> t -> (int64 * int) list -> int

(** The compiler-ready instance (actions + prefetch bindings). *)
val instance : t -> Compiler.instance
