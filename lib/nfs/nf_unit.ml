(* Composition glue: a unit is one network function's worth of module
   instances (typically classifier + data module) with declared entry and
   exit points. [chain] wires units into an SFC-level NF specification
   (Fig 6(e)/(f)), which the compiler then flattens — and, with
   redundant-matching removal enabled, prunes. *)

open Gunfu

type t = {
  instances : Compiler.instance list;
  entry : string;  (* instance receiving the packet *)
  exits : (string * string) list;  (* (instance, event) pairs leaving the unit *)
  internal : Spec.transition list;  (* wiring between this unit's instances *)
}

(* The standard classifier + data-module unit. *)
let classified ~classifier ~data_instance =
  {
    instances = [ classifier; data_instance ];
    entry = classifier.Compiler.i_name;
    exits = [ (data_instance.Compiler.i_name, "packet") ];
    internal =
      [
        {
          Spec.src = classifier.Compiler.i_name;
          event = "MATCH_SUCCESS";
          dst = data_instance.Compiler.i_name;
        };
      ];
  }

(* Chain units into one NF spec: unit k's exits feed unit k+1's entry; the
   last unit's exits terminate the service chain. *)
let chain ~name units =
  if units = [] then invalid_arg "Nf_unit.chain: empty chain";
  let instances = List.concat_map (fun u -> u.instances) units in
  let modules =
    List.map (fun i -> (i.Compiler.i_name, i.Compiler.i_spec.Spec.m_name)) instances
  in
  let rec wire = function
    | [] -> []
    | [ last ] ->
        last.internal
        @ List.map
            (fun (src, event) -> { Spec.src; event; dst = Spec.end_state })
            last.exits
    | u :: (next :: _ as rest) ->
        u.internal
        @ List.map (fun (src, event) -> { Spec.src; event; dst = next.entry }) u.exits
        @ wire rest
  in
  let nf = { Spec.n_name = name; n_modules = modules; n_transitions = wire units } in
  (nf, instances)

(* Compile a chain directly. *)
let compile ?(opts = Compiler.default_opts) ~name units =
  let nf, instances = chain ~name units in
  Compiler.compile ~opts ~name instances nf

(* Compile a chain through the full pipeline with no hooks, returning the
   translation validator's input. *)
let verify_view ?(opts = Compiler.default_opts) ~name units =
  let nf, instances = chain ~name units in
  Compiler.verify_view ~opts ~name instances nf
