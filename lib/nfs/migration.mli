(** Elastic scaling of stateful NFs (related work, §VIII "Separation of
    Data and Code"): per-flow state decoupled from code can be exported
    from one instance and imported into another (scale-out / failover)
    without breaking connections. Snapshots use an explicit little-endian
    wire format. *)

exception Bad_snapshot of string

type nat_entry = { key : int64; ext_ip : Netcore.Ipv4.addr; ext_port : int }

(** Export the NAT mappings of the given flows (flows without a mapping are
    skipped). *)
val export_nat : Nat.t -> Netcore.Flow.t list -> string

(** @raise Bad_snapshot on malformed input. *)
val parse_nat : string -> nat_entry list

(** Remove the flows from the source NAT (post-export). *)
val evict_nat : Nat.t -> Netcore.Flow.t list -> unit

(** Install a snapshot, preserving external mappings; returns entries
    imported. All-or-nothing: on failure the target NAT is left exactly as
    it was (parse + capacity check happen before the first mutation, and a
    mid-import insert rejection rolls back the installed prefix).
    @raise Bad_snapshot on malformed input or a full target. *)
val import_nat : Nat.t -> string -> int

(** Monitor accounting export/import (added into the target's counters for
    flows present in [flows]). *)
val export_monitor : Monitor.t -> Netcore.Flow.t list -> string

val import_monitor : Monitor.t -> flows:Netcore.Flow.t array -> string -> int
