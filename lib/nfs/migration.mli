(** Elastic scaling of stateful NFs (related work, §VIII "Separation of
    Data and Code"): per-flow state decoupled from code can be exported
    from one instance and imported into another (scale-out / failover)
    without breaking connections. Snapshots use an explicit little-endian
    wire format. *)

exception Bad_snapshot of string

(** {2 Wire-format building blocks}

    Little-endian primitives shared by every snapshot format, exposed so
    other planes (e.g. the recovery engine's synthetic-program
    checkpoints) can define additional formats with identical framing
    semantics. *)

val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int32 -> unit
val put_u64 : Buffer.t -> int64 -> unit
val get_u16 : string -> int -> int
val get_u32 : string -> int -> int32
val get_u64 : string -> int -> int64

(** Validate a snapshot's magic and length ([magic] + u32 count + [count]
    fixed-size entries); returns the entry count.
    @raise Bad_snapshot on bad magic or truncation. *)
val parse_header : magic:string -> entry_bytes:int -> string -> int

type nat_entry = { key : int64; ext_ip : Netcore.Ipv4.addr; ext_port : int }

(** Export the NAT mappings of the given flows (flows without a mapping are
    skipped). *)
val export_nat : Nat.t -> Netcore.Flow.t list -> string

(** @raise Bad_snapshot on malformed input. *)
val parse_nat : string -> nat_entry list

(** Remove the flows from the source NAT (post-export); their mapping
    slots are zeroed and recycled, so the source can adopt flows back
    later (rebalancing ping-pong). *)
val evict_nat : Nat.t -> Netcore.Flow.t list -> unit

(** Install a snapshot, preserving external mappings; returns entries
    imported. All-or-nothing: on failure the target NAT is left exactly as
    it was (parse + capacity check happen before the first mutation, and a
    mid-import insert rejection rolls back the installed prefix).
    @raise Bad_snapshot on malformed input or a full target. *)
val import_nat : Nat.t -> string -> int

(** {2 Update apply (State-Compute Replication)}

    [apply_*] upsert a snapshot instead of importing it fresh: entries
    whose flow is already resident have their state {e overwritten} in
    place, absent flows are admitted. An SCR update record is an absolute
    per-flow state snapshot, so applying only the latest pending record
    for a flow equals applying all of them in sequence order, and
    re-application is idempotent. Frames are fully parsed (and
    range-validated) before the first mutation.
    @raise Bad_snapshot on malformed input or a full target. *)

val apply_nat : Nat.t -> string -> int

(** Absolute counter overwrite — unlike {!import_monitor}, which merges. *)
val apply_monitor : Monitor.t -> string -> int

val apply_lb : Lb.t -> string -> int
val apply_firewall : Firewall.t -> string -> int

(** Resident sessions are left alone (session identity is immutable);
    absent ones are admitted via {!Upf.install_session}. *)
val apply_upf : Upf.t -> string -> int

(** Monitor accounting export/import (added into the target's counters for
    flows present in [flows]). *)
val export_monitor : Monitor.t -> Netcore.Flow.t list -> string

val import_monitor : Monitor.t -> flows:Netcore.Flow.t array -> string -> int

(** Remove the flows from the source monitor (post-export). *)
val evict_monitor : Monitor.t -> Netcore.Flow.t list -> unit

(** Install monitor accounting as fresh flows (failover/adoption): each
    entry gets a new counter slot holding the exported totals and its key
    is admitted into the classifier — unlike {!import_monitor}, which
    merges into already-tracked flows. All-or-nothing.
    @raise Bad_snapshot on malformed input or a full target. *)
val adopt_monitor : Monitor.t -> string -> int

(** LB backend pinning: (key, backend index) pairs — re-running Maglev on
    the target could re-balance a live connection elsewhere. Import is
    all-or-nothing and validates backend indices against the target.
    @raise Bad_snapshot on malformed input, unknown backend, or a full
    target. *)
val export_lb : Lb.t -> Netcore.Flow.t list -> string

val evict_lb : Lb.t -> Netcore.Flow.t list -> unit
val import_lb : Lb.t -> string -> int

(** Firewall admission verdicts: (key, verdict) pairs — the verdict was
    decided against the *source* policy and must not be re-evaluated
    mid-connection. All-or-nothing; verdict bytes outside {0,1} are
    rejected.
    @raise Bad_snapshot on malformed input or a full target. *)
val export_firewall : Firewall.t -> Netcore.Flow.t list -> string

val evict_firewall : Firewall.t -> Netcore.Flow.t list -> unit
val import_firewall : Firewall.t -> string -> int

(** Bare classifier match entries: (key, value) pairs exactly as resident.
    Values are slot indices into the structure behind the classifier;
    cross-instance imports pass [remap] to translate them into the
    target's slot space. All-or-nothing.
    @raise Bad_snapshot on malformed input or a full target. *)
val export_classifier : Classifier.t -> int64 list -> string

val evict_classifier : Classifier.t -> int64 list -> unit
val import_classifier : ?remap:(int -> int) -> Classifier.t -> string -> int

(** UPF PFCP sessions by identity (UE IP, TEID); re-homing reinstalls
    through the normal {!Upf.install_session} admission path.
    All-or-nothing: a mid-import rejection tears the installed prefix back
    out and rewinds [n_active].
    @raise Bad_snapshot on malformed input or a full target. *)
val export_upf : Upf.t -> Netcore.Ipv4.addr list -> string

val evict_upf : Upf.t -> Netcore.Ipv4.addr list -> unit
val import_upf : Upf.t -> string -> int
