(* 5G User Plane Function, downlink handler (Fig 6(f)): three granularly
   decomposed modules —

     session classifier : cuckoo hash, UE IP -> PFCP session (per-flow)
     pdr_matcher        : MDI interval tree, 5-tuple -> PDR (sub-flow)
     upf_encap          : FAR application, GTP-U encapsulation to the RAN

   The PDR trees form a forest: one logical rule shape shared by all
   sessions, with session-private node addresses, so every lookup pointer-
   chases through that session's own cache lines (the behaviour EXP A
   profiles). *)

open Gunfu
open Structures

let pdr_spec_text =
  {|
module: pdr_matcher
category: StatefulClassifier
parameters:
- n_pdrs
transitions:
- Start,MATCH_SUCCESS->locate_tree
- locate_tree,tree_ready->tree_step
- tree_step,descend->tree_step
- tree_step,MATCH_SUCCESS->End
- tree_step,MATCH_FAIL->End
fetching:
  locate_tree:
  - session
  tree_step:
  - node
states:
  session: per_flow
  node: match
|}

let encap_spec_text =
  {|
module: upf_encap
category: StatefulNF
parameters:
- upf_n3_addr
transitions:
- Start,MATCH_SUCCESS->encap
- encap,packet->End
fetching:
  encap:
  - far
  - header
states:
  far: sub_flow
  header: packet
|}

let decap_spec_text =
  {|
module: upf_decap
category: StatefulNF
parameters:
- n6_gateway
transitions:
- Start,MATCH_SUCCESS->decap
- decap,packet->End
- decap,DROP->End
fetching:
  decap:
  - session
  - header
states:
  session: per_flow
  header: packet
|}

let pdr_spec = lazy (Spec.module_spec_of_string pdr_spec_text)
let encap_spec = lazy (Spec.module_spec_of_string encap_spec_text)
let decap_spec = lazy (Spec.module_spec_of_string decap_spec_text)

type t = {
  name : string;
  classifier : Classifier.t;      (* downlink: UE IP -> PFCP session *)
  uplink_classifier : Classifier.t;  (* uplink: GTP-U TEID -> PFCP session *)
  session_arena : State_arena.t;  (* PFCP session state, 1 line/session *)
  pdr_arena : State_arena.t;      (* PDR+FAR state, 1 line/PDR *)
  forest : Mdi_tree.Forest.forest;
  sessions : Traffic.Mgw.session array;
  n_pdrs : int;
  upf_n3_addr : Netcore.Ipv4.addr;
  ran_addrs : Netcore.Ipv4.addr array;
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable n_active : int;  (* installed sessions (slots 0..n_active-1) *)
  seid_table : (int64, Netcore.Ipv4.addr) Hashtbl.t;  (* PFCP F-SEID -> UE IP *)
}

let session_bytes = 64
let pdr_bytes = 64

(* PDR rules: the sessions' detection rules partition the remote source-port
   space (the MGW workload shape); rule value is the local PDR index. *)
let pdr_rules ~n_pdrs =
  List.init n_pdrs (fun j ->
      let lo, hi = Traffic.Mgw.pdr_port_range ~n_pdrs ~pdr:j in
      {
        Mdi_tree.src_ip = Mdi_tree.full_range;
        src_port = Mdi_tree.range ~lo ~hi;
        dst_port = Mdi_tree.full_range;
        proto = Mdi_tree.range ~lo:Netcore.Ipv4.proto_udp ~hi:Netcore.Ipv4.proto_udp;
        value = j;
      })

(* Uplink match key: the GTP-U TEID, parsed from the real outer headers. *)
let teid_key (task : Nftask.t) =
  let p = Nftask.packet_exn task in
  let gtpu_off =
    Netcore.Ethernet.header_bytes + Netcore.Ipv4.header_bytes
    + Netcore.L4.udp_header_bytes
  in
  let g = Netcore.Gtpu.decode p.Netcore.Packet.buf ~off:gtpu_off in
  Int64.logand (Int64.of_int32 g.Netcore.Gtpu.teid) 0xFFFFFFFFL

let create layout ~name ~sessions ~n_pdrs () =
  let n_sessions = Array.length sessions in
  if n_sessions = 0 then invalid_arg "Upf.create: no sessions";
  let classifier =
    Classifier.create layout ~name:(name ^ "_cls") ~key_kind:"ue_ip"
      ~key_fn:Classifier.dst_ip_key ~capacity:n_sessions ()
  in
  let uplink_classifier =
    Classifier.create layout ~name:(name ^ "_ucls") ~key_kind:"gtpu_teid"
      ~key_fn:teid_key ~capacity:n_sessions ()
  in
  let session_arena =
    State_arena.create layout ~label:(name ^ ".pfcp_session") ~entry_bytes:session_bytes
      ~count:n_sessions ()
  in
  let pdr_arena =
    State_arena.create layout ~label:(name ^ ".pdr") ~entry_bytes:pdr_bytes
      ~count:(n_sessions * n_pdrs) ()
  in
  let forest =
    Mdi_tree.Forest.create layout ~label:(name ^ ".mdi") ~rules:(pdr_rules ~n_pdrs)
      ~members:n_sessions ()
  in
  {
    name;
    classifier;
    uplink_classifier;
    session_arena;
    pdr_arena;
    forest;
    sessions;
    n_pdrs;
    upf_n3_addr = Netcore.Ipv4.addr_of_string "10.200.0.1";
    ran_addrs = Array.init 8 (fun i -> Int32.of_int (0x0AC80100 lor i)) (* 10.200.1.x *);
    encapsulated = 0;
    decapsulated = 0;
    n_active = n_sessions;
    seid_table = Hashtbl.create 64;
  }

(* A UPF with pre-sized capacity but no installed sessions: sessions arrive
   at runtime over PFCP (see {!handle_pfcp}). *)
let create_empty layout ~name ~capacity ~n_pdrs () =
  if capacity <= 0 then invalid_arg "Upf.create_empty";
  let placeholder =
    { Traffic.Mgw.ue_ip = 0l; teid = 0l; n_pdrs }
  in
  let t = create layout ~name ~sessions:(Array.make capacity placeholder) ~n_pdrs () in
  t.n_active <- 0;
  t

let populate t =
  let (_shed : int) =
    Classifier.populate t.classifier
      (Array.to_list
         (Array.mapi
            (fun i (s : Traffic.Mgw.session) ->
              (Int64.logand (Int64.of_int32 s.Traffic.Mgw.ue_ip) 0xFFFFFFFFL, i))
            t.sessions))
  in
  let (_shed : int) =
    Classifier.populate t.uplink_classifier
      (Array.to_list
         (Array.mapi
            (fun i (s : Traffic.Mgw.session) ->
              (Int64.logand (Int64.of_int32 s.Traffic.Mgw.teid) 0xFFFFFFFFL, i))
            t.sessions))
  in
  ()

(* ----- runtime session management (driven by PFCP) ----- *)

let install_session t ~ue_ip ~teid =
  if t.n_active >= Array.length t.sessions then Error Netcore.Pfcp.cause_no_resources
  else
    let key = Int64.logand (Int64.of_int32 ue_ip) 0xFFFFFFFFL in
    let upkey = Int64.logand (Int64.of_int32 teid) 0xFFFFFFFFL in
    let down = Classifier.table t.classifier in
    let up = Classifier.table t.uplink_classifier in
    if Structures.Cuckoo.lookup down key <> None then
      Error Netcore.Pfcp.cause_request_rejected (* duplicate UE IP *)
    else if Structures.Cuckoo.lookup up upkey <> None then
      (* A duplicate TEID would silently overwrite the owning session's
         uplink route (cuckoo insert updates in place on key collision). *)
      Error Netcore.Pfcp.cause_request_rejected
    else begin
      let idx = t.n_active in
      let saved = t.sessions.(idx) in
      t.sessions.(idx) <- { Traffic.Mgw.ue_ip; teid; n_pdrs = t.n_pdrs };
      let ok1 = Structures.Cuckoo.insert down ~key ~value:idx in
      let ok2 = ok1 && Structures.Cuckoo.insert up ~key:upkey ~value:idx in
      if ok1 && ok2 then begin
        t.n_active <- idx + 1;
        Ok idx
      end
      else begin
        (* All-or-nothing: a rejected install must leave no trace, or a
           later session landing in this slot would be reachable through
           the dead UE IP (and Migration.import_upf's rollback would be
           unable to restore the pre-import state). *)
        if ok1 then ignore (Structures.Cuckoo.delete down key);
        t.sessions.(idx) <- saved;
        Error Netcore.Pfcp.cause_no_resources
      end
    end

let remove_session t ~ue_ip =
  let key = Int64.logand (Int64.of_int32 ue_ip) 0xFFFFFFFFL in
  match Structures.Cuckoo.lookup (Classifier.table t.classifier) key with
  | None -> false
  | Some idx ->
      ignore (Structures.Cuckoo.delete (Classifier.table t.classifier) key);
      ignore
        (Structures.Cuckoo.delete
           (Classifier.table t.uplink_classifier)
           (Int64.logand (Int64.of_int32 t.sessions.(idx).Traffic.Mgw.teid) 0xFFFFFFFFL));
      true

(* The request's PDRs must be expressible in this UPF's (fixed) per-session
   rule shape: same count, same port partition. *)
let pdrs_match_shape t (pdrs : Netcore.Pfcp.create_pdr list) =
  List.length pdrs = t.n_pdrs
  && List.for_all
       (fun (p : Netcore.Pfcp.create_pdr) ->
         p.Netcore.Pfcp.pdr_id >= 0
         && p.Netcore.Pfcp.pdr_id < t.n_pdrs
         &&
         let lo, hi = Traffic.Mgw.pdr_port_range ~n_pdrs:t.n_pdrs ~pdr:p.Netcore.Pfcp.pdr_id in
         p.Netcore.Pfcp.pdi.Netcore.Pfcp.src_port_lo = lo
         && p.Netcore.Pfcp.pdi.Netcore.Pfcp.src_port_hi = hi)
       pdrs

(* The UPF's N4 agent: decode a PFCP request, act, encode the response. *)
let handle_pfcp t (request : string) =
  let respond ~seid ~seq payload =
    Netcore.Pfcp.encode { Netcore.Pfcp.seid; seq; payload }
  in
  match Netcore.Pfcp.decode request with
  | exception Netcore.Pfcp.Malformed _ ->
      respond ~seid:0L ~seq:0
        (Netcore.Pfcp.Establishment_response
           { cause = Netcore.Pfcp.cause_request_rejected; up_seid = 0L })
  | { Netcore.Pfcp.seid = _; seq; payload = Netcore.Pfcp.Establishment_request e } ->
      let cause, up_seid =
        if not (pdrs_match_shape t e.Netcore.Pfcp.pdrs) then
          (Netcore.Pfcp.cause_request_rejected, 0L)
        else
          match
            (* The FAR carries the tunnel: use the first forwarding FAR. *)
            List.find_opt (fun f -> f.Netcore.Pfcp.forward) e.Netcore.Pfcp.fars
          with
          | None -> (Netcore.Pfcp.cause_request_rejected, 0L)
          | Some far -> (
              match
                install_session t ~ue_ip:e.Netcore.Pfcp.ue_ip
                  ~teid:far.Netcore.Pfcp.outer_teid
              with
              | Error cause -> (cause, 0L)
              | Ok idx ->
                  let up_seid = Int64.of_int (idx + 1) in
                  Hashtbl.replace t.seid_table up_seid e.Netcore.Pfcp.ue_ip;
                  (Netcore.Pfcp.cause_accepted, up_seid))
      in
      respond ~seid:e.Netcore.Pfcp.cp_seid ~seq
        (Netcore.Pfcp.Establishment_response { cause; up_seid })
  | { Netcore.Pfcp.seid; seq; payload = Netcore.Pfcp.Deletion_request } ->
      let cause =
        match Hashtbl.find_opt t.seid_table seid with
        | Some ue_ip when remove_session t ~ue_ip ->
            Hashtbl.remove t.seid_table seid;
            Netcore.Pfcp.cause_accepted
        | Some _ | None -> Netcore.Pfcp.cause_session_not_found
      in
      respond ~seid ~seq (Netcore.Pfcp.Deletion_response { cause })
  | { Netcore.Pfcp.seid; seq; payload = _ } ->
      respond ~seid ~seq
        (Netcore.Pfcp.Establishment_response
           { cause = Netcore.Pfcp.cause_request_rejected; up_seid = 0L })

(* ----- PDR matcher actions ----- *)

let mdi_key_of_packet (task : Nftask.t) =
  let flow = (Nftask.packet_exn task).Netcore.Packet.flow in
  {
    Mdi_tree.k_src_ip = Int32.to_int flow.Netcore.Flow.src_ip land 0xFFFFFFFF;
    k_src_port = flow.Netcore.Flow.src_port;
    k_dst_port = flow.Netcore.Flow.dst_port;
    k_proto = flow.Netcore.Flow.proto;
  }

let locate_tree_action t =
  Action.make ~kind:Action.Match_action ~base_cycles:16 ~base_instrs:14
    ~invalidates:[ `Match_addrs ] ~name:(t.name ^ ".locate_tree")
    (fun ctx task ->
      (* Read the PFCP session entry to find this session's PDR tree. *)
      let si = Nf_common.per_flow_read ctx task t.session_arena ~name:t.name in
      match Mdi_tree.root (Mdi_tree.Forest.shape t.forest) with
      | None -> Event.Match_fail
      | Some root ->
          task.Nftask.temps.Nftask.cursor <- root;
          task.Nftask.match_addrs <-
            [ (Mdi_tree.Forest.node_addr t.forest ~member:si root, Mdi_tree.node_bytes) ];
          Event.User "tree_ready")

let tree_step_action t =
  Action.make ~kind:Action.Match_action ~base_cycles:14 ~base_instrs:14
    ~invalidates:[ `Match_addrs; `Sub_flow ] ~name:(t.name ^ ".tree_step")
    (fun ctx task ->
      List.iter
        (fun (addr, bytes) -> Exec_ctx.read ctx ~cls:Sref.Match_state ~addr ~bytes)
        task.Nftask.match_addrs;
      let shape = Mdi_tree.Forest.shape t.forest in
      let si = task.Nftask.matched in
      match Mdi_tree.step shape ~node:task.Nftask.temps.Nftask.cursor (mdi_key_of_packet task) with
      | Mdi_tree.Found j ->
          task.Nftask.sub_matched <- (si * t.n_pdrs) + j;
          Event.Match_success
      | Mdi_tree.Descend next ->
          task.Nftask.temps.Nftask.cursor <- next;
          task.Nftask.match_addrs <-
            [ (Mdi_tree.Forest.node_addr t.forest ~member:si next, Mdi_tree.node_bytes) ];
          Event.User "descend"
      | Mdi_tree.Miss -> Event.Match_fail)

let pdr_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_pdr";
    i_spec = Lazy.force pdr_spec;
    i_actions =
      [ ("locate_tree", locate_tree_action t); ("tree_step", tree_step_action t) ];
    i_bindings =
      [
        ("session", Prefetch.Per_flow (t.session_arena, []));
        ("node", Prefetch.Match_addrs);
      ];
    i_key_kind = Some "five_tuple_pdr";
  }

(* ----- encapsulator ----- *)

let encap_action t =
  Action.make ~base_cycles:60 ~base_instrs:55 ~name:(t.name ^ ".encap")
    (fun ctx task ->
      (* Read the PDR's forwarding action rule (FAR). *)
      let pdr_idx = Nf_common.sub_flow_read ctx task t.pdr_arena ~name:t.name in
      let si = pdr_idx / t.n_pdrs in
      let session = t.sessions.(si) in
      let p = Nftask.packet_exn task in
      (* RAN address keyed by the session's TEID, not its slot index: the
         slot a session occupies is a placement accident (and changes when
         state is re-homed after a core failure), while the TEID is the
         session's identity — the outer header must survive migration. *)
      let ran =
        t.ran_addrs.(Int32.to_int session.Traffic.Mgw.teid land 0xFF
                     mod Array.length t.ran_addrs)
      in
      Netcore.Packet.encapsulate_gtpu p ~outer_src:t.upf_n3_addr ~outer_dst:ran
        ~teid:session.Traffic.Mgw.teid;
      Nf_common.packet_write ctx task ~bytes:64;
      t.encapsulated <- t.encapsulated + 1;
      Event.Packet_arrival)

let encap_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_enc";
    i_spec = Lazy.force encap_spec;
    i_actions = [ ("encap", encap_action t) ];
    i_bindings =
      [
        ("far", Prefetch.Sub_flow (t.pdr_arena, []));
        ("header", Prefetch.Packet_header 64);
      ];
    i_key_kind = None;
  }

(* ----- uplink decapsulator ----- *)

let decap_action t =
  Action.make ~base_cycles:40 ~base_instrs:38 ~name:(t.name ^ ".decap")
    (fun ctx task ->
      (* Validate against the PFCP session before stripping the tunnel. *)
      let si = Nf_common.per_flow_read ctx task t.session_arena ~name:t.name in
      let session = t.sessions.(si) in
      let p = Nftask.packet_exn task in
      let teid = Netcore.Packet.decapsulate_gtpu p in
      Nf_common.packet_write ctx task ~bytes:64;
      if Int32.equal teid session.Traffic.Mgw.teid then begin
        t.decapsulated <- t.decapsulated + 1;
        Event.Packet_arrival
      end
      else
        (* TEID/session mismatch: invalid tunnel, drop. *)
        Event.Drop_packet)

let decap_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_dec";
    i_spec = Lazy.force decap_spec;
    i_actions = [ ("decap", decap_action t) ];
    i_bindings =
      [
        ("session", Prefetch.Per_flow (t.session_arena, []));
        ("header", Prefetch.Packet_header 64);
      ];
    i_key_kind = None;
  }

(* The uplink handler: TEID classifier -> decapsulator. *)
let uplink_unit t =
  Nf_unit.classified
    ~classifier:(Classifier.instance t.uplink_classifier)
    ~data_instance:(decap_instance t)

let uplink_program ?(opts = Compiler.default_opts) t =
  Nf_unit.compile ~opts ~name:(t.name ^ "_uplink") [ uplink_unit t ]

(* ----- QoS enforcement (QER): per-session token-bucket rate limiting ----- *)

let qer_spec_text =
  {|
module: upf_qer
category: StatefulNF
parameters:
- session_ambr
transitions:
- Start,MATCH_SUCCESS->enforce
- enforce,MATCH_SUCCESS->End
- enforce,DROP->End
fetching:
  enforce:
  - qer_state
states:
  qer_state: per_flow
|}

let qer_spec = lazy (Spec.module_spec_of_string qer_spec_text)

type qos = {
  buckets : Structures.Token_bucket.t array;  (* one per session *)
  qer_arena : State_arena.t;
  mutable conformant : int;
  mutable policed : int;
}

(* Per-session downlink AMBR enforcement. *)
let create_qos layout (t : t) ~rate_bytes_per_sec ~burst_bytes ~freq_ghz =
  {
    buckets =
      Array.init (Array.length t.sessions) (fun _ ->
          Structures.Token_bucket.create ~rate_bytes_per_sec ~burst_bytes ~freq_ghz ());
    qer_arena =
      State_arena.create layout ~label:(t.name ^ ".qer") ~entry_bytes:32
        ~count:(Array.length t.sessions) ();
    conformant = 0;
    policed = 0;
  }

let qer_action t qos =
  Action.make ~base_cycles:18 ~base_instrs:16 ~name:(t.name ^ ".enforce")
    (fun ctx task ->
      (* Read + update the session's QER state (bucket fill level). *)
      let si = Nf_common.per_flow_read ctx task qos.qer_arena ~name:(t.name ^ ".qer") in
      let p = Nftask.packet_exn task in
      Exec_ctx.write ctx ~cls:Sref.Per_flow ~addr:(State_arena.addr qos.qer_arena si)
        ~bytes:16;
      if
        Structures.Token_bucket.admit qos.buckets.(si) ~now:ctx.Exec_ctx.clock
          ~bytes:p.Netcore.Packet.wire_len
      then begin
        qos.conformant <- qos.conformant + 1;
        Event.Match_success (* session still matched: pass to the PDR stage *)
      end
      else begin
        qos.policed <- qos.policed + 1;
        Event.Drop_packet
      end)

let qer_instance t qos : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_qer";
    i_spec = Lazy.force qer_spec;
    i_actions = [ ("enforce", qer_action t qos) ];
    i_bindings = [ ("qer_state", Prefetch.Per_flow (qos.qer_arena, [])) ];
    i_key_kind = None;
  }

(* Downlink handler with QoS enforcement between the session match and the
   PDR lookup: classifier -> QER -> PDR matcher -> encapsulator. *)
let unit_with_qos t qos =
  {
    Nf_unit.instances =
      [
        Classifier.instance t.classifier; qer_instance t qos; pdr_instance t;
        encap_instance t;
      ];
    entry = t.classifier.Classifier.name;
    exits = [ (t.name ^ "_enc", "packet") ];
    internal =
      [
        {
          Spec.src = t.classifier.Classifier.name;
          event = "MATCH_SUCCESS";
          dst = t.name ^ "_qer";
        };
        { Spec.src = t.name ^ "_qer"; event = "MATCH_SUCCESS"; dst = t.name ^ "_pdr" };
        { Spec.src = t.name ^ "_pdr"; event = "MATCH_SUCCESS"; dst = t.name ^ "_enc" };
      ];
  }

let program_with_qos ?(opts = Compiler.default_opts) t qos =
  Nf_unit.compile ~opts ~name:(t.name ^ "_qos") [ unit_with_qos t qos ]

(* The downlink handler: classifier -> PDR matcher -> encapsulator. *)
let unit t =
  {
    Nf_unit.instances =
      [ Classifier.instance t.classifier; pdr_instance t; encap_instance t ];
    entry = t.classifier.Classifier.name;
    exits = [ (t.name ^ "_enc", "packet") ];
    internal =
      [
        {
          Spec.src = t.classifier.Classifier.name;
          event = "MATCH_SUCCESS";
          dst = t.name ^ "_pdr";
        };
        { Spec.src = t.name ^ "_pdr"; event = "MATCH_SUCCESS"; dst = t.name ^ "_enc" };
      ];
  }

let program ?(opts = Compiler.default_opts) t = Nf_unit.compile ~opts ~name:t.name [ unit t ]

let tree_depth t = Mdi_tree.depth (Mdi_tree.Forest.shape t.forest)
