(* Elastic scaling of stateful NFs (§VIII "Separation of Data and Code"):
   per-flow state is decoupled from code, so flows can be exported from one
   instance and imported into another (scale-out, or failover from a state
   snapshot) without breaking connections — for a NAT that means the
   external (ip, port) mapping must survive the move.

   Snapshots use an explicit little-endian wire format (not OCaml
   marshalling): a real system would ship these across machines. *)

exception Bad_snapshot of string

let nat_magic = "GNAT1"

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let put_u32 buf (v : int32) =
  let v = Int32.to_int v land 0xFFFFFFFF in
  put_u16 buf (v land 0xFFFF);
  put_u16 buf (v lsr 16)

let put_u64 buf (v : int64) =
  put_u32 buf (Int64.to_int32 v);
  put_u32 buf (Int64.to_int32 (Int64.shift_right_logical v 32))

let get_u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let get_u32 s off : int32 =
  Int32.logor
    (Int32.of_int (get_u16 s off))
    (Int32.shift_left (Int32.of_int (get_u16 s (off + 2))) 16)

let get_u64 s off : int64 =
  Int64.logor
    (Int64.logand (Int64.of_int32 (get_u32 s off)) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int32 (get_u32 s (off + 4))) 32)

(* One NAT mapping on the wire: flow key (the lookup identity) plus the
   external endpoint that must be preserved. *)
type nat_entry = { key : int64; ext_ip : Netcore.Ipv4.addr; ext_port : int }

(* Export the mappings of the given flows from a NAT. Flows without an
   installed mapping are skipped. *)
let export_nat (nat : Nat.t) flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf nat_magic;
  let entries =
    List.filter_map
      (fun flow ->
        let key = Netcore.Flow.key64 flow in
        Option.map
          (fun idx -> { key; ext_ip = nat.Nat.map_ip.(idx); ext_port = nat.Nat.map_port.(idx) })
          (Structures.Cuckoo.lookup (Classifier.table nat.Nat.classifier) key))
      flows
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun e ->
      put_u64 buf e.key;
      put_u32 buf e.ext_ip;
      put_u16 buf e.ext_port)
    entries;
  Buffer.contents buf

let parse_nat snapshot =
  let n = String.length snapshot in
  if n < 9 || String.sub snapshot 0 5 <> nat_magic then
    raise (Bad_snapshot "bad magic");
  let count = Int32.to_int (get_u32 snapshot 5) in
  if count < 0 || 9 + (count * 14) > n then raise (Bad_snapshot "truncated");
  List.init count (fun i ->
      let off = 9 + (i * 14) in
      {
        key = get_u64 snapshot off;
        ext_ip = get_u32 snapshot (off + 8);
        ext_port = get_u16 snapshot (off + 12);
      })

(* Remove the flows from the source NAT (after export): subsequent packets
   of these flows MATCH_FAIL there. Freed mapping slots are not recycled —
   the arena allocator is an upward bump, like the paper's pre-allocated
   datablocks. *)
let evict_nat (nat : Nat.t) flows =
  List.iter
    (fun flow ->
      ignore (Structures.Cuckoo.delete (Classifier.table nat.Nat.classifier)
                (Netcore.Flow.key64 flow)))
    flows

(* Install a snapshot into a target NAT, preserving external mappings.
   Returns the number of entries imported. All-or-nothing: the snapshot is
   fully parsed and capacity-checked before the first mutation, and a
   mid-import cuckoo rejection rolls every already-installed entry back —
   on ANY failure the target is exactly as it was.
   @raise Bad_snapshot on malformed input or when the target is full. *)
let import_nat (nat : Nat.t) snapshot =
  let entries = parse_nat snapshot in
  let table = Classifier.table nat.Nat.classifier in
  if nat.Nat.next_free + List.length entries > Array.length nat.Nat.map_ip then
    raise (Bad_snapshot "target NAT mapping table full");
  let saved_next = nat.Nat.next_free in
  let installed = ref [] in
  let rollback () =
    List.iter (fun key -> ignore (Structures.Cuckoo.delete table key)) !installed;
    for idx = saved_next to nat.Nat.next_free - 1 do
      nat.Nat.map_ip.(idx) <- 0l;
      nat.Nat.map_port.(idx) <- 0;
      nat.Nat.keys.(idx) <- 0L
    done;
    nat.Nat.next_free <- saved_next
  in
  (try
     List.iter
       (fun e ->
         let idx = nat.Nat.next_free in
         nat.Nat.next_free <- idx + 1;
         nat.Nat.map_ip.(idx) <- e.ext_ip;
         nat.Nat.map_port.(idx) <- e.ext_port;
         nat.Nat.keys.(idx) <- e.key;
         if not (Structures.Cuckoo.insert table ~key:e.key ~value:idx) then
           raise (Bad_snapshot "target NAT match table full");
         installed := e.key :: !installed)
       entries
   with exn ->
     rollback ();
     raise exn);
  List.length entries

(* ----- monitor counters (accounting survives scale events) ----- *)

let nm_magic = "GNMC1"

let export_monitor (nm : Monitor.t) flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf nm_magic;
  let entries =
    List.filter_map
      (fun flow ->
        let key = Netcore.Flow.key64 flow in
        Option.map
          (fun idx -> (key, nm.Monitor.pkt_count.(idx), nm.Monitor.byte_count.(idx)))
          (Structures.Cuckoo.lookup (Classifier.table nm.Monitor.classifier) key))
      flows
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun (key, pkts, bytes) ->
      put_u64 buf key;
      put_u64 buf (Int64.of_int pkts);
      put_u64 buf (Int64.of_int bytes))
    entries;
  Buffer.contents buf

let import_monitor (nm : Monitor.t) ~flows snapshot =
  let n = String.length snapshot in
  if n < 9 || String.sub snapshot 0 5 <> nm_magic then raise (Bad_snapshot "bad magic");
  let count = Int32.to_int (get_u32 snapshot 5) in
  if count < 0 || 9 + (count * 24) > n then raise (Bad_snapshot "truncated");
  let by_key = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace by_key (Netcore.Flow.key64 f) i) flows;
  let imported = ref 0 in
  for i = 0 to count - 1 do
    let off = 9 + (i * 24) in
    let key = get_u64 snapshot off in
    match Hashtbl.find_opt by_key key with
    | None -> ()
    | Some idx ->
        nm.Monitor.pkt_count.(idx) <-
          nm.Monitor.pkt_count.(idx) + Int64.to_int (get_u64 snapshot (off + 8));
        nm.Monitor.byte_count.(idx) <-
          nm.Monitor.byte_count.(idx) + Int64.to_int (get_u64 snapshot (off + 16));
        incr imported
  done;
  !imported
