(* Elastic scaling of stateful NFs (§VIII "Separation of Data and Code"):
   per-flow state is decoupled from code, so flows can be exported from one
   instance and imported into another (scale-out, or failover from a state
   snapshot) without breaking connections — for a NAT that means the
   external (ip, port) mapping must survive the move.

   Snapshots use an explicit little-endian wire format (not OCaml
   marshalling): a real system would ship these across machines. *)

exception Bad_snapshot of string

let nat_magic = "GNAT1"

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let put_u32 buf (v : int32) =
  let v = Int32.to_int v land 0xFFFFFFFF in
  put_u16 buf (v land 0xFFFF);
  put_u16 buf (v lsr 16)

let put_u64 buf (v : int64) =
  put_u32 buf (Int64.to_int32 v);
  put_u32 buf (Int64.to_int32 (Int64.shift_right_logical v 32))

let get_u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let get_u32 s off : int32 =
  Int32.logor
    (Int32.of_int (get_u16 s off))
    (Int32.shift_left (Int32.of_int (get_u16 s (off + 2))) 16)

let get_u64 s off : int64 =
  Int64.logor
    (Int64.logand (Int64.of_int32 (get_u32 s off)) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int32 (get_u32 s (off + 4))) 32)

(* Shared header check: 5-byte magic then a u32 entry count; entries are
   fixed-size from offset 9. Returns the validated count. *)
let parse_header ~magic ~entry_bytes snapshot =
  let n = String.length snapshot in
  if n < 9 || String.sub snapshot 0 5 <> magic then
    raise (Bad_snapshot "bad magic");
  let count = Int32.to_int (get_u32 snapshot 5) in
  if count < 0 || 9 + (count * entry_bytes) > n then
    raise (Bad_snapshot "truncated");
  count

(* One NAT mapping on the wire: flow key (the lookup identity) plus the
   external endpoint that must be preserved. *)
type nat_entry = { key : int64; ext_ip : Netcore.Ipv4.addr; ext_port : int }

(* Export the mappings of the given flows from a NAT. Flows without an
   installed mapping are skipped. *)
let export_nat (nat : Nat.t) flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf nat_magic;
  let entries =
    List.filter_map
      (fun flow ->
        let key = Netcore.Flow.key64 flow in
        Option.map
          (fun idx -> { key; ext_ip = nat.Nat.map_ip.(idx); ext_port = nat.Nat.map_port.(idx) })
          (Structures.Cuckoo.lookup (Classifier.table nat.Nat.classifier) key))
      flows
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun e ->
      put_u64 buf e.key;
      put_u32 buf e.ext_ip;
      put_u16 buf e.ext_port)
    entries;
  Buffer.contents buf

let parse_nat snapshot =
  let count = parse_header ~magic:nat_magic ~entry_bytes:14 snapshot in
  List.init count (fun i ->
      let off = 9 + (i * 14) in
      {
        key = get_u64 snapshot off;
        ext_ip = get_u32 snapshot (off + 8);
        ext_port = get_u16 snapshot (off + 12);
      })

(* Remove the flows from the source NAT (after export): subsequent packets
   of these flows MATCH_FAIL there. Freed mapping slots are zeroed and
   recycled onto the free list (like {!Nat.expire}), so a NAT that handed
   flows away can later adopt flows back — rebalancing ping-pong. *)
let evict_nat (nat : Nat.t) flows =
  List.iter
    (fun flow ->
      let key = Netcore.Flow.key64 flow in
      match Structures.Cuckoo.lookup (Classifier.table nat.Nat.classifier) key with
      | None -> ()
      | Some idx ->
          ignore (Structures.Cuckoo.delete (Classifier.table nat.Nat.classifier) key);
          nat.Nat.map_ip.(idx) <- 0l;
          nat.Nat.map_port.(idx) <- 0;
          nat.Nat.keys.(idx) <- 0L;
          nat.Nat.free_slots <- nat.Nat.free_slots @ [ idx ])
    flows

(* Install a snapshot into a target NAT, preserving external mappings.
   Returns the number of entries imported. All-or-nothing: the snapshot is
   fully parsed and capacity-checked before the first mutation, and a
   mid-import cuckoo rejection rolls every already-installed entry back —
   on ANY failure the target is exactly as it was.
   @raise Bad_snapshot on malformed input or when the target is full. *)
let import_nat (nat : Nat.t) snapshot =
  let entries = parse_nat snapshot in
  let table = Classifier.table nat.Nat.classifier in
  let headroom =
    Array.length nat.Nat.map_ip - nat.Nat.next_free
    + List.length nat.Nat.free_slots
  in
  if List.length entries > headroom then
    raise (Bad_snapshot "target NAT mapping table full");
  let saved_next = nat.Nat.next_free in
  let saved_free = nat.Nat.free_slots in
  (* (key, slot, overwritten mapping bytes) — enough to restore the target
     exactly, whether the slot came off the free list or the bump region *)
  let installed = ref [] in
  let rollback () =
    List.iter
      (fun (key, idx, ip, port, k) ->
        ignore (Structures.Cuckoo.delete table key);
        nat.Nat.map_ip.(idx) <- ip;
        nat.Nat.map_port.(idx) <- port;
        nat.Nat.keys.(idx) <- k)
      !installed;
    nat.Nat.next_free <- saved_next;
    nat.Nat.free_slots <- saved_free
  in
  (try
     List.iter
       (fun e ->
         let idx =
           match nat.Nat.free_slots with
           | idx :: rest ->
               nat.Nat.free_slots <- rest;
               idx
           | [] ->
               let idx = nat.Nat.next_free in
               nat.Nat.next_free <- idx + 1;
               idx
         in
         installed :=
           (e.key, idx, nat.Nat.map_ip.(idx), nat.Nat.map_port.(idx), nat.Nat.keys.(idx))
           :: !installed;
         nat.Nat.map_ip.(idx) <- e.ext_ip;
         nat.Nat.map_port.(idx) <- e.ext_port;
         nat.Nat.keys.(idx) <- e.key;
         if not (Structures.Cuckoo.insert table ~key:e.key ~value:idx) then
           raise (Bad_snapshot "target NAT match table full"))
       entries
   with exn ->
     rollback ();
     raise exn);
  List.length entries

(* Upsert a snapshot into a target NAT: entries whose flow is already
   resident get their mapping overwritten in place; absent flows are
   admitted (free list first, then the bump region). This is the SCR
   update-apply surface — an update record is an *absolute* per-flow state
   snapshot, so applying only the latest pending record for a flow is
   equivalent to applying all of them in sequence order, and re-applying is
   idempotent. The frame is fully parsed before the first mutation.
   @raise Bad_snapshot on malformed input or a full target. *)
let apply_nat (nat : Nat.t) snapshot =
  let entries = parse_nat snapshot in
  let table = Classifier.table nat.Nat.classifier in
  List.iter
    (fun e ->
      match Structures.Cuckoo.lookup table e.key with
      | Some idx ->
          nat.Nat.map_ip.(idx) <- e.ext_ip;
          nat.Nat.map_port.(idx) <- e.ext_port
      | None ->
          let idx =
            match nat.Nat.free_slots with
            | idx :: rest ->
                nat.Nat.free_slots <- rest;
                idx
            | [] ->
                if nat.Nat.next_free >= Array.length nat.Nat.map_ip then
                  raise (Bad_snapshot "target NAT mapping table full");
                let idx = nat.Nat.next_free in
                nat.Nat.next_free <- idx + 1;
                idx
          in
          nat.Nat.map_ip.(idx) <- e.ext_ip;
          nat.Nat.map_port.(idx) <- e.ext_port;
          nat.Nat.keys.(idx) <- e.key;
          if not (Structures.Cuckoo.insert table ~key:e.key ~value:idx) then
            raise (Bad_snapshot "target NAT match table full"))
    entries;
  List.length entries

(* ----- monitor counters (accounting survives scale events) ----- *)

let nm_magic = "GNMC1"

let export_monitor (nm : Monitor.t) flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf nm_magic;
  let entries =
    List.filter_map
      (fun flow ->
        let key = Netcore.Flow.key64 flow in
        Option.map
          (fun idx -> (key, nm.Monitor.pkt_count.(idx), nm.Monitor.byte_count.(idx)))
          (Structures.Cuckoo.lookup (Classifier.table nm.Monitor.classifier) key))
      flows
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun (key, pkts, bytes) ->
      put_u64 buf key;
      put_u64 buf (Int64.of_int pkts);
      put_u64 buf (Int64.of_int bytes))
    entries;
  Buffer.contents buf

let import_monitor (nm : Monitor.t) ~flows snapshot =
  let count = parse_header ~magic:nm_magic ~entry_bytes:24 snapshot in
  let by_key = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace by_key (Netcore.Flow.key64 f) i) flows;
  let imported = ref 0 in
  for i = 0 to count - 1 do
    let off = 9 + (i * 24) in
    let key = get_u64 snapshot off in
    match Hashtbl.find_opt by_key key with
    | None -> ()
    | Some idx ->
        nm.Monitor.pkt_count.(idx) <-
          nm.Monitor.pkt_count.(idx) + Int64.to_int (get_u64 snapshot (off + 8));
        nm.Monitor.byte_count.(idx) <-
          nm.Monitor.byte_count.(idx) + Int64.to_int (get_u64 snapshot (off + 16));
        incr imported
  done;
  !imported

(* Remove the flows from a monitor (post-export): later packets of these
   flows MATCH_FAIL. Counter slots are not recycled (bump allocator). *)
let evict_monitor (nm : Monitor.t) flows =
  List.iter
    (fun flow ->
      ignore
        (Structures.Cuckoo.delete
           (Classifier.table nm.Monitor.classifier)
           (Netcore.Flow.key64 flow)))
    flows

(* Install monitor accounting as *fresh* flows (failover/adoption), unlike
   {!import_monitor} which merges into flows the target already tracks:
   each entry gets a new counter slot holding the exported totals, and the
   flow key is admitted into the classifier. All-or-nothing like
   {!import_nat}. *)
let adopt_monitor (nm : Monitor.t) snapshot =
  let count = parse_header ~magic:nm_magic ~entry_bytes:24 snapshot in
  let table = Classifier.table nm.Monitor.classifier in
  if nm.Monitor.next_free + count > Array.length nm.Monitor.pkt_count then
    raise (Bad_snapshot "target monitor counter table full");
  let saved_next = nm.Monitor.next_free in
  let installed = ref [] in
  let rollback () =
    List.iter (fun key -> ignore (Structures.Cuckoo.delete table key)) !installed;
    for idx = saved_next to nm.Monitor.next_free - 1 do
      nm.Monitor.pkt_count.(idx) <- 0;
      nm.Monitor.byte_count.(idx) <- 0
    done;
    nm.Monitor.next_free <- saved_next
  in
  (try
     for i = 0 to count - 1 do
       let off = 9 + (i * 24) in
       let key = get_u64 snapshot off in
       let idx = nm.Monitor.next_free in
       nm.Monitor.next_free <- idx + 1;
       nm.Monitor.pkt_count.(idx) <- Int64.to_int (get_u64 snapshot (off + 8));
       nm.Monitor.byte_count.(idx) <- Int64.to_int (get_u64 snapshot (off + 16));
       if not (Structures.Cuckoo.insert table ~key ~value:idx) then
         raise (Bad_snapshot "target monitor match table full");
       installed := key :: !installed
     done
   with exn ->
     rollback ();
     raise exn);
  count

(* Upsert monitor accounting as *absolute* totals: a resident flow's
   counters are overwritten (NOT merged like {!import_monitor} — an SCR
   update record carries the flow's authoritative running totals), an
   absent flow is admitted with them. See {!apply_nat} for the contract. *)
let apply_monitor (nm : Monitor.t) snapshot =
  let count = parse_header ~magic:nm_magic ~entry_bytes:24 snapshot in
  let table = Classifier.table nm.Monitor.classifier in
  for i = 0 to count - 1 do
    let off = 9 + (i * 24) in
    let key = get_u64 snapshot off in
    let pkts = Int64.to_int (get_u64 snapshot (off + 8)) in
    let bytes = Int64.to_int (get_u64 snapshot (off + 16)) in
    match Structures.Cuckoo.lookup table key with
    | Some idx ->
        nm.Monitor.pkt_count.(idx) <- pkts;
        nm.Monitor.byte_count.(idx) <- bytes
    | None ->
        if nm.Monitor.next_free >= Array.length nm.Monitor.pkt_count then
          raise (Bad_snapshot "target monitor counter table full");
        let idx = nm.Monitor.next_free in
        nm.Monitor.next_free <- idx + 1;
        nm.Monitor.pkt_count.(idx) <- pkts;
        nm.Monitor.byte_count.(idx) <- bytes;
        if not (Structures.Cuckoo.insert table ~key ~value:idx) then
          raise (Bad_snapshot "target monitor match table full")
  done;
  count

(* ----- load balancer (backend pinning survives the move) ----- *)

let lb_magic = "GNLB1"

(* (key u64, backend u16): what must survive is the flow's backend pin —
   re-running Maglev on the target could re-balance it elsewhere and break
   the connection. *)
let export_lb (lb : Lb.t) flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf lb_magic;
  let entries =
    List.filter_map
      (fun flow ->
        let key = Netcore.Flow.key64 flow in
        Option.map
          (fun idx -> (key, lb.Lb.assignment.(idx)))
          (Structures.Cuckoo.lookup (Classifier.table lb.Lb.classifier) key))
      flows
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun (key, backend) ->
      put_u64 buf key;
      put_u16 buf backend)
    entries;
  Buffer.contents buf

let evict_lb (lb : Lb.t) flows =
  List.iter
    (fun flow ->
      ignore
        (Structures.Cuckoo.delete (Classifier.table lb.Lb.classifier)
           (Netcore.Flow.key64 flow)))
    flows

let import_lb (lb : Lb.t) snapshot =
  let count = parse_header ~magic:lb_magic ~entry_bytes:10 snapshot in
  let table = Classifier.table lb.Lb.classifier in
  if lb.Lb.next_free + count > Array.length lb.Lb.assignment then
    raise (Bad_snapshot "target LB assignment table full");
  (* Validate every entry before the first mutation. *)
  for i = 0 to count - 1 do
    let backend = get_u16 snapshot (9 + (i * 10) + 8) in
    if backend >= Array.length lb.Lb.backends then
      raise (Bad_snapshot "LB backend index out of range")
  done;
  let saved_next = lb.Lb.next_free in
  let installed = ref [] in
  let rollback () =
    List.iter (fun key -> ignore (Structures.Cuckoo.delete table key)) !installed;
    for idx = saved_next to lb.Lb.next_free - 1 do
      lb.Lb.assignment.(idx) <- 0
    done;
    lb.Lb.next_free <- saved_next
  in
  (try
     for i = 0 to count - 1 do
       let off = 9 + (i * 10) in
       let key = get_u64 snapshot off in
       let idx = lb.Lb.next_free in
       lb.Lb.next_free <- idx + 1;
       lb.Lb.assignment.(idx) <- get_u16 snapshot (off + 8);
       if not (Structures.Cuckoo.insert table ~key ~value:idx) then
         raise (Bad_snapshot "target LB match table full");
       installed := key :: !installed
     done
   with exn ->
     rollback ();
     raise exn);
  count

(* Upsert backend pins (see {!apply_nat} for the SCR update contract).
   Backend indices are validated before the first mutation. *)
let apply_lb (lb : Lb.t) snapshot =
  let count = parse_header ~magic:lb_magic ~entry_bytes:10 snapshot in
  let table = Classifier.table lb.Lb.classifier in
  for i = 0 to count - 1 do
    let backend = get_u16 snapshot (9 + (i * 10) + 8) in
    if backend >= Array.length lb.Lb.backends then
      raise (Bad_snapshot "LB backend index out of range")
  done;
  for i = 0 to count - 1 do
    let off = 9 + (i * 10) in
    let key = get_u64 snapshot off in
    let backend = get_u16 snapshot (off + 8) in
    match Structures.Cuckoo.lookup table key with
    | Some idx -> lb.Lb.assignment.(idx) <- backend
    | None ->
        if lb.Lb.next_free >= Array.length lb.Lb.assignment then
          raise (Bad_snapshot "target LB assignment table full");
        let idx = lb.Lb.next_free in
        lb.Lb.next_free <- idx + 1;
        lb.Lb.assignment.(idx) <- backend;
        if not (Structures.Cuckoo.insert table ~key ~value:idx) then
          raise (Bad_snapshot "target LB match table full")
  done;
  count

(* ----- firewall (admission verdicts survive the move) ----- *)

let fw_magic = "GNFW1"

(* (key u64, verdict u8): the verdict was decided at admission against the
   *source* instance's policy; re-evaluating on the target (which may run a
   different policy) could flip it mid-connection. *)
let export_firewall (fw : Firewall.t) flows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf fw_magic;
  let entries =
    List.filter_map
      (fun flow ->
        let key = Netcore.Flow.key64 flow in
        Option.map
          (fun idx -> (key, fw.Firewall.verdicts.(idx)))
          (Structures.Cuckoo.lookup (Classifier.table fw.Firewall.classifier) key))
      flows
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun (key, accept) ->
      put_u64 buf key;
      Buffer.add_char buf (if accept then '\001' else '\000'))
    entries;
  Buffer.contents buf

let evict_firewall (fw : Firewall.t) flows =
  List.iter
    (fun flow ->
      ignore
        (Structures.Cuckoo.delete
           (Classifier.table fw.Firewall.classifier)
           (Netcore.Flow.key64 flow)))
    flows

let import_firewall (fw : Firewall.t) snapshot =
  let count = parse_header ~magic:fw_magic ~entry_bytes:9 snapshot in
  let table = Classifier.table fw.Firewall.classifier in
  if fw.Firewall.next_free + count > Array.length fw.Firewall.verdicts then
    raise (Bad_snapshot "target firewall verdict table full");
  for i = 0 to count - 1 do
    let v = Char.code snapshot.[9 + (i * 9) + 8] in
    if v > 1 then raise (Bad_snapshot "firewall verdict out of range")
  done;
  let saved_next = fw.Firewall.next_free in
  let installed = ref [] in
  let rollback () =
    List.iter (fun key -> ignore (Structures.Cuckoo.delete table key)) !installed;
    for idx = saved_next to fw.Firewall.next_free - 1 do
      fw.Firewall.verdicts.(idx) <- true
    done;
    fw.Firewall.next_free <- saved_next
  in
  (try
     for i = 0 to count - 1 do
       let off = 9 + (i * 9) in
       let key = get_u64 snapshot off in
       let idx = fw.Firewall.next_free in
       fw.Firewall.next_free <- idx + 1;
       fw.Firewall.verdicts.(idx) <- Char.code snapshot.[off + 8] = 1;
       if not (Structures.Cuckoo.insert table ~key ~value:idx) then
         raise (Bad_snapshot "target firewall match table full");
       installed := key :: !installed
     done
   with exn ->
     rollback ();
     raise exn);
  count

(* Upsert admission verdicts (see {!apply_nat} for the SCR update
   contract). Verdict bytes are validated before the first mutation. *)
let apply_firewall (fw : Firewall.t) snapshot =
  let count = parse_header ~magic:fw_magic ~entry_bytes:9 snapshot in
  let table = Classifier.table fw.Firewall.classifier in
  for i = 0 to count - 1 do
    let v = Char.code snapshot.[9 + (i * 9) + 8] in
    if v > 1 then raise (Bad_snapshot "firewall verdict out of range")
  done;
  for i = 0 to count - 1 do
    let off = 9 + (i * 9) in
    let key = get_u64 snapshot off in
    let accept = Char.code snapshot.[off + 8] = 1 in
    match Structures.Cuckoo.lookup table key with
    | Some idx -> fw.Firewall.verdicts.(idx) <- accept
    | None ->
        if fw.Firewall.next_free >= Array.length fw.Firewall.verdicts then
          raise (Bad_snapshot "target firewall verdict table full");
        let idx = fw.Firewall.next_free in
        fw.Firewall.next_free <- idx + 1;
        fw.Firewall.verdicts.(idx) <- accept;
        if not (Structures.Cuckoo.insert table ~key ~value:idx) then
          raise (Bad_snapshot "target firewall match table full")
  done;
  count

(* ----- bare classifier (match table as the unit of state) ----- *)

let cls_magic = "GCLS1"

(* (key u64, value u32) pairs, exactly as resident in the cuckoo table.
   Values are slot indices into whatever data structure sits behind the
   classifier, so cross-instance imports usually pass [remap] to translate
   them into the target's slot space. *)
let export_classifier (cls : Classifier.t) keys =
  let buf = Buffer.create 256 in
  Buffer.add_string buf cls_magic;
  let entries =
    List.filter_map
      (fun key ->
        Option.map
          (fun v -> (key, v))
          (Structures.Cuckoo.lookup (Classifier.table cls) key))
      keys
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun (key, v) ->
      put_u64 buf key;
      put_u32 buf (Int32.of_int v))
    entries;
  Buffer.contents buf

let evict_classifier (cls : Classifier.t) keys =
  List.iter
    (fun key -> ignore (Structures.Cuckoo.delete (Classifier.table cls) key))
    keys

let import_classifier ?(remap = fun v -> v) (cls : Classifier.t) snapshot =
  let count = parse_header ~magic:cls_magic ~entry_bytes:12 snapshot in
  let table = Classifier.table cls in
  if
    Structures.Cuckoo.population table + count
    > Structures.Cuckoo.nbuckets table * Structures.Cuckoo.slots_per_bucket
  then raise (Bad_snapshot "target classifier table full");
  let installed = ref [] in
  let rollback () =
    List.iter (fun key -> ignore (Structures.Cuckoo.delete table key)) !installed
  in
  (try
     for i = 0 to count - 1 do
       let off = 9 + (i * 12) in
       let key = get_u64 snapshot off in
       let value = remap (Int32.to_int (get_u32 snapshot (off + 8)) land 0xFFFFFFFF) in
       if not (Structures.Cuckoo.insert table ~key ~value) then
         raise (Bad_snapshot "target classifier match table full");
       installed := key :: !installed
     done
   with exn ->
     rollback ();
     raise exn);
  count

(* ----- UPF (PFCP sessions re-homed with their tunnel identity) ----- *)

let upf_magic = "GUPF1"

(* (ue_ip u32, teid u32): a PFCP session's identity. Everything else about
   the session (PDR shapes, FAR) is derived from the UPF's fixed per-session
   geometry, so re-homing reinstalls through the normal
   {!Upf.install_session} admission path. *)
let export_upf (upf : Upf.t) ue_ips =
  let buf = Buffer.create 256 in
  Buffer.add_string buf upf_magic;
  let entries =
    List.filter_map
      (fun ue_ip ->
        let key = Int64.logand (Int64.of_int32 ue_ip) 0xFFFFFFFFL in
        Option.map
          (fun idx -> upf.Upf.sessions.(idx))
          (Structures.Cuckoo.lookup (Classifier.table upf.Upf.classifier) key))
      ue_ips
  in
  put_u32 buf (Int32.of_int (List.length entries));
  List.iter
    (fun (s : Traffic.Mgw.session) ->
      put_u32 buf s.Traffic.Mgw.ue_ip;
      put_u32 buf s.Traffic.Mgw.teid)
    entries;
  Buffer.contents buf

let evict_upf (upf : Upf.t) ue_ips =
  List.iter (fun ue_ip -> ignore (Upf.remove_session upf ~ue_ip)) ue_ips

(* All-or-nothing over the admission path: on any rejection the installed
   prefix is torn back out (classifier keys deleted, session slots restored
   to their previous contents, [n_active] rewound). *)
let import_upf (upf : Upf.t) snapshot =
  let count = parse_header ~magic:upf_magic ~entry_bytes:8 snapshot in
  if upf.Upf.n_active + count > Array.length upf.Upf.sessions then
    raise (Bad_snapshot "target UPF session table full");
  let saved_active = upf.Upf.n_active in
  let installed = ref [] in
  let rollback () =
    List.iter
      (fun (ue_ip, idx, old_session) ->
        ignore (Upf.remove_session upf ~ue_ip);
        upf.Upf.sessions.(idx) <- old_session)
      !installed;
    upf.Upf.n_active <- saved_active
  in
  (try
     for i = 0 to count - 1 do
       let off = 9 + (i * 8) in
       let ue_ip = get_u32 snapshot off in
       let teid = get_u32 snapshot (off + 4) in
       let idx = upf.Upf.n_active in
       let old_session = upf.Upf.sessions.(idx) in
       match Upf.install_session upf ~ue_ip ~teid with
       | Ok _ -> installed := (ue_ip, idx, old_session) :: !installed
       | Error _ -> raise (Bad_snapshot "target UPF rejected session")
     done
   with exn ->
     rollback ();
     raise exn);
  count

(* Upsert PFCP sessions: a session already resident under its UE IP is
   left alone (session identity — TEID, PDR shape — is immutable, so the
   update carries nothing new for it); absent sessions are admitted through
   the normal {!Upf.install_session} path. See {!apply_nat}. *)
let apply_upf (upf : Upf.t) snapshot =
  let count = parse_header ~magic:upf_magic ~entry_bytes:8 snapshot in
  for i = 0 to count - 1 do
    let off = 9 + (i * 8) in
    let ue_ip = get_u32 snapshot off in
    let teid = get_u32 snapshot (off + 4) in
    let key = Int64.logand (Int64.of_int32 ue_ip) 0xFFFFFFFFL in
    match Structures.Cuckoo.lookup (Classifier.table upf.Upf.classifier) key with
    | Some _ -> ()
    | None -> (
        match Upf.install_session upf ~ue_ip ~teid with
        | Ok _ -> ()
        | Error _ -> raise (Bad_snapshot "target UPF rejected session"))
  done;
  count
