(* Stateful L4 load balancer (Maglev-style consistency is out of scope; what
   matters here is the state shape): the per-flow state pins a flow to a
   backend so connections never move, and the data action rewrites the
   destination address to that backend. *)

open Gunfu
open Structures

let spec_text =
  {|
module: lb_forwarder
category: StatefulNF
parameters:
- backends
transitions:
- Start,MATCH_SUCCESS->forward
- forward,packet->End
fetching:
  forward:
  - assignment
  - header
states:
  assignment: per_flow
  header: packet
|}

let spec = lazy (Spec.module_spec_of_string spec_text)

type t = {
  name : string;
  classifier : Classifier.t;
  arena : State_arena.t;
  backends : int32 array;
  maglev : Maglev.t;
  assignment : int array;  (* flow index -> backend index *)
  mutable next_free : int;  (* first unused assignment slot (bump allocator) *)
}

let state_bytes = 8

let default_backends =
  Array.init 16 (fun i -> Int32.of_int (0xC0A86400 lor (i + 1))) (* 192.168.100.x *)

let create layout ~name ?arena ?(backends = default_backends) ~n_flows () =
  let classifier =
    Classifier.create layout ~name:(name ^ "_cls") ~key_kind:"five_tuple"
      ~key_fn:Classifier.five_tuple_key ~capacity:n_flows ()
  in
  let arena =
    match arena with
    | Some a -> a
    | None ->
        State_arena.create layout ~label:(name ^ ".per_flow") ~entry_bytes:state_bytes
          ~count:n_flows ()
  in
  {
    name;
    classifier;
    arena;
    backends;
    (* Small Maglev table: plenty for our backend counts and fast to build
       per worker. *)
    maglev = Maglev.build ~table_size:4099 ~n_backends:(Array.length backends) ();
    assignment = Array.make n_flows 0;
    next_free = 0;
  }

let populate t flows =
  Array.iteri
    (fun i flow ->
      (* Maglev consistent hashing: a flow always lands on the same
         backend, including across table rebuilds with small backend-set
         changes. *)
      t.assignment.(i) <- Maglev.lookup t.maglev (Netcore.Flow.key64 flow))
    flows;
  t.next_free <- max t.next_free (Array.length flows);
  let (_shed : int) =
    Classifier.populate t.classifier
      (Array.to_list (Array.mapi (fun i f -> (Netcore.Flow.key64 f, i)) flows))
  in
  ()

let backend_of t idx = t.backends.(t.assignment.(idx))

let forward_action t =
  Action.make ~base_cycles:18 ~base_instrs:16 ~name:(t.name ^ ".forward")
    (fun ctx task ->
      let idx = Nf_common.per_flow_read ctx task t.arena ~name:t.name in
      let p = Nftask.packet_exn task in
      Netcore.Ipv4.rewrite_dst p.Netcore.Packet.buf ~off:p.Netcore.Packet.l3_off
        ~dst:(backend_of t idx);
      Nf_common.packet_write ctx task ~bytes:4;
      Event.Packet_arrival)

let forwarder_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_fwd";
    i_spec = Lazy.force spec;
    i_actions = [ ("forward", forward_action t) ];
    i_bindings =
      [
        ("assignment", Prefetch.Per_flow (t.arena, []));
        ("header", Prefetch.Packet_header 64);
      ];
    i_key_kind = None;
  }

let unit t =
  Nf_unit.classified
    ~classifier:(Classifier.instance t.classifier)
    ~data_instance:(forwarder_instance t)

let program ?(opts = Compiler.default_opts) t = Nf_unit.compile ~opts ~name:t.name [ unit t ]
