(* 5G Access and Mobility Management Function — the state-complexity
   workhorse of EXP B / Fig 12.

   The per-UE context is large (> 20 cache lines, as the paper measures for
   Free5GC-derived state) and each initial-registration message touches a
   different slice of it. Granular decomposition makes those slices
   explicit: the dispatch action classifies the message, and the fetching
   function of each handler control state names exactly the fields the
   handler will read — so the runtime prefetches precisely them, and data
   packing (§VI-B) co-locates each handler's fields into few cache lines.

   The handlers genuinely drive a per-UE registration state machine (and
   are unit-tested against out-of-order messages). *)

open Gunfu
open Structures

(* ----- UE context layout (sizes in bytes; total ~1.3 KiB = 21 lines) ----- *)

let context_fields =
  [
    ("supi", 16); ("suci", 32); ("guti", 16); ("pei", 16); ("tmsi", 8);
    ("auth_vector", 64); ("rand", 16); ("res_star", 16); ("kamf", 32);
    ("kseaf", 32); ("abba", 8);
    ("nas_sec_ctx", 96); ("ul_nas_count", 8); ("dl_nas_count", 8); ("sec_algs", 8);
    ("reg_state", 8); ("rm_state", 8); ("cm_state", 8); ("proc_state", 16);
    ("retry_counters", 16);
    ("tai", 8); ("plmn", 8); ("nssai", 64); ("cap_5gmm", 16); ("ue_radio_cap", 192);
    ("pdu_sessions", 256); ("sm_contexts", 128); ("event_subs", 64);
    ("pcf_binding", 32); ("last_msg", 96);
  ]

let field_bytes name =
  match List.assoc_opt name context_fields with
  | Some b -> b
  | None -> invalid_arg ("Amf.field_bytes: unknown field " ^ name)

(* Which context fields each message touches. *)
let message_fields = function
  | Traffic.Mgw.Registration_request ->
      [ "supi"; "suci"; "guti"; "reg_state"; "rm_state"; "proc_state"; "cap_5gmm";
        "ue_radio_cap"; "tai"; "plmn"; "last_msg" ]
  | Traffic.Mgw.Authentication_response ->
      [ "auth_vector"; "rand"; "res_star"; "kamf"; "kseaf"; "abba"; "proc_state" ]
  | Traffic.Mgw.Security_mode_complete ->
      [ "nas_sec_ctx"; "ul_nas_count"; "dl_nas_count"; "sec_algs"; "kamf"; "proc_state" ]
  | Traffic.Mgw.Registration_complete ->
      [ "reg_state"; "rm_state"; "cm_state"; "guti"; "tmsi"; "tai"; "nssai"; "proc_state" ]
  | Traffic.Mgw.Pdu_session_request ->
      [ "pdu_sessions"; "sm_contexts"; "cm_state"; "nssai"; "pcf_binding"; "ul_nas_count" ]
  | Traffic.Mgw.Service_request ->
      [ "guti"; "tmsi"; "nas_sec_ctx"; "ul_nas_count"; "cm_state"; "proc_state" ]
  | Traffic.Mgw.Periodic_update ->
      [ "guti"; "reg_state"; "tai"; "plmn"; "retry_counters"; "proc_state" ]
  | Traffic.Mgw.Context_release -> [ "cm_state"; "event_subs"; "proc_state" ]
  | Traffic.Mgw.Deregistration_request ->
      [ "supi"; "guti"; "reg_state"; "rm_state"; "cm_state"; "pdu_sessions";
        "sm_contexts"; "event_subs"; "proc_state" ]

(* Handler compute weight (cycles). NAS message handling is compute-heavy:
   integrity verification and ciphering (AES/SNOW over the NAS PDU), key
   derivation on the security-procedure messages, ASN.1/NAS codec work —
   which is why the paper's AMF gain (Fig 12, ~60%) is far smaller than the
   UPF's: state access is a large but not overwhelming share of the
   message-processing time. *)
let message_cycles = function
  | Traffic.Mgw.Registration_request -> 2000
  | Traffic.Mgw.Authentication_response -> 3200
  | Traffic.Mgw.Security_mode_complete -> 2800
  | Traffic.Mgw.Registration_complete -> 1200
  | Traffic.Mgw.Pdu_session_request -> 2000
  | Traffic.Mgw.Service_request -> 1400  (* NAS integrity check + paging state *)
  | Traffic.Mgw.Periodic_update -> 900
  | Traffic.Mgw.Context_release -> 500
  | Traffic.Mgw.Deregistration_request -> 1100

let all_msgs = Traffic.Mgw.all_amf_msgs

(* Packing input: each message's field set, weighted by how often it occurs
   (uniform across the registration sequence). *)
let packing_accesses =
  List.map
    (fun m ->
      { Packing.fields = message_fields m; weight = 1.0 })
    all_msgs

let packing_fields =
  List.map (fun (name, bytes) -> { Packing.name; bytes }) context_fields

(* ----- spec ----- *)

let handler_cs m = "handle_" ^ String.lowercase_ascii (Traffic.Mgw.amf_msg_name m)
let msg_event m = "msg_" ^ String.lowercase_ascii (Traffic.Mgw.amf_msg_name m)
let state_name m = "ue_" ^ String.lowercase_ascii (Traffic.Mgw.amf_msg_name m)

let spec_text =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "module: amf_handler\ncategory: StatefulNF\nparameters:\n- plmn\n- served_guami\ntransitions:\n- Start,MATCH_SUCCESS->dispatch\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "- dispatch,%s->%s\n- %s,packet->End\n" (msg_event m)
           (handler_cs m) (handler_cs m)))
    all_msgs;
  Buffer.add_string buf "fetching:\n  dispatch:\n  - header\n";
  List.iter
    (fun m ->
      Buffer.add_string buf (Printf.sprintf "  %s:\n  - %s\n" (handler_cs m) (state_name m)))
    all_msgs;
  Buffer.add_string buf "states:\n  header: packet\n";
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "  %s: per_flow\n" (state_name m)))
    all_msgs;
  Buffer.contents buf

let spec = lazy (Spec.module_spec_of_string spec_text)

(* ----- instance state ----- *)

type t = {
  name : string;
  classifier : Classifier.t;
  arena : State_arena.t;
  packed : bool;
  n_ues : int;
  progress : int array;  (* per-UE position in the registration sequence *)
  registrations : int array;  (* completed registrations per UE *)
  mutable protocol_errors : int;
}

(* The per-UE lifecycle FSM the handlers drive (phases: 0..4 registration
   sequence, 5 = CM-CONNECTED, 6 = CM-IDLE; same encoding as the
   generator's). Returns the next phase when [msg] is valid in [phase]. *)
let connected = Traffic.Mgw.phase_connected
let idle = Traffic.Mgw.phase_idle

let lifecycle_step ~phase (msg : Traffic.Mgw.amf_msg) =
  match msg with
  | Traffic.Mgw.Registration_request when phase = 0 -> Some 1
  | Traffic.Mgw.Authentication_response when phase = 1 -> Some 2
  | Traffic.Mgw.Security_mode_complete when phase = 2 -> Some 3
  | Traffic.Mgw.Registration_complete when phase = 3 -> Some 4
  | Traffic.Mgw.Pdu_session_request when phase = 4 -> Some connected
  | Traffic.Mgw.Pdu_session_request when phase = connected -> Some connected
  | Traffic.Mgw.Periodic_update when phase = connected -> Some connected
  | Traffic.Mgw.Context_release when phase = connected -> Some idle
  | Traffic.Mgw.Service_request when phase = idle -> Some connected
  | Traffic.Mgw.Deregistration_request when phase = connected || phase = idle -> Some 0
  | _ -> None

(* Where to resynchronise after an out-of-order message. *)
let resync_phase (msg : Traffic.Mgw.amf_msg) =
  match msg with
  | Traffic.Mgw.Registration_request -> 1
  | Traffic.Mgw.Authentication_response -> 2
  | Traffic.Mgw.Security_mode_complete -> 3
  | Traffic.Mgw.Registration_complete -> 4
  | Traffic.Mgw.Pdu_session_request | Traffic.Mgw.Service_request
  | Traffic.Mgw.Periodic_update ->
      connected
  | Traffic.Mgw.Context_release -> idle
  | Traffic.Mgw.Deregistration_request -> 0

(* AMF looks UEs up by their NGAP id; the workload carries it in
   [flow_hint]. *)
let ue_key (task : Nftask.t) = Int64.of_int (task.Nftask.flow_hint + 1)

let create layout ~name ?(packed = false) ~n_ues () =
  let classifier =
    Classifier.create layout ~name:(name ^ "_cls") ~key_kind:"amf_ue_id" ~key_fn:ue_key
      ~capacity:n_ues ()
  in
  let field_offsets, record_bytes =
    if packed then Packing.pack ~line_bytes:64 packing_fields packing_accesses
    else Packing.sequential packing_fields
  in
  let arena =
    State_arena.create_record layout ~label:(name ^ ".ue_context") ~field_offsets
      ~record_bytes ~count:n_ues ()
  in
  {
    name;
    classifier;
    arena;
    packed;
    n_ues;
    progress = Array.make n_ues 0;
    registrations = Array.make n_ues 0;
    protocol_errors = 0;
  }

let populate t =
  let (_shed : int) =
    Classifier.populate t.classifier
      (List.init t.n_ues (fun i -> (Int64.of_int (i + 1), i)))
  in
  ()

(* ----- actions ----- *)

let dispatch_action t =
  Action.make ~base_cycles:30 ~base_instrs:26 ~name:(t.name ^ ".dispatch")
    (fun ctx task ->
      Nf_common.packet_read ctx task ~bytes:80;
      (* Parse the NAS PDU from the actual bytes when a packet is present
         (the workload also carries the code in [aux] for non-packet
         drivers and cross-checks). *)
      let msg =
        match task.Nftask.packet with
        | Some p -> (
            let nas_off =
              p.Netcore.Packet.l4_off + Netcore.L4.tcp_header_bytes
            in
            match Netcore.Nas.decode p.Netcore.Packet.buf ~off:nas_off with
            | nas -> (
                match Workload.msg_of_nas_type nas.Netcore.Nas.msg_type with
                | Some m -> m
                | None -> Workload.amf_msg_of_code task.Nftask.aux)
            | exception Netcore.Nas.Malformed _ ->
                Workload.amf_msg_of_code task.Nftask.aux)
        | None -> Workload.amf_msg_of_code task.Nftask.aux
      in
      Event.User (msg_event msg))

let handler_action t msg =
  let fields = message_fields msg in
  Action.make ~base_cycles:(message_cycles msg)
    ~base_instrs:(message_cycles msg * 4 / 5)
    ~name:(t.name ^ "." ^ handler_cs msg)
    (fun ctx task ->
      let ue = Nf_common.matched_exn task t.name in
      (* Touch exactly the declared context slice. *)
      List.iter
        (fun f ->
          Exec_ctx.read ctx ~cls:Sref.Per_flow
            ~addr:(State_arena.field_addr t.arena ue f)
            ~bytes:(field_bytes f))
        fields;
      (* Drive the UE lifecycle state machine. *)
      (match lifecycle_step ~phase:t.progress.(ue) msg with
      | Some next ->
          t.progress.(ue) <- next;
          if msg = Traffic.Mgw.Registration_complete then
            t.registrations.(ue) <- t.registrations.(ue) + 1
      | None ->
          (* Out-of-order NAS message: count and resynchronise. *)
          t.protocol_errors <- t.protocol_errors + 1;
          t.progress.(ue) <- resync_phase msg);
      (* Persist the updated procedure state. *)
      Exec_ctx.write ctx ~cls:Sref.Per_flow
        ~addr:(State_arena.field_addr t.arena ue "proc_state")
        ~bytes:(field_bytes "proc_state");
      Event.Packet_arrival)

let handler_instance t : Compiler.instance =
  let fields_with_bytes m = List.map (fun f -> (f, field_bytes f)) (message_fields m) in
  {
    Compiler.i_name = t.name ^ "_hdl";
    i_spec = Lazy.force spec;
    i_actions =
      ("dispatch", dispatch_action t)
      :: List.map (fun m -> (handler_cs m, handler_action t m)) all_msgs;
    i_bindings =
      (* 80 bytes: the TCP/IP headers plus the NAS PDU dispatch parses. *)
      ("header", Prefetch.Packet_header 80)
      :: List.map
           (fun m -> (state_name m, Prefetch.Per_flow (t.arena, fields_with_bytes m)))
           all_msgs;
    i_key_kind = None;
  }

let unit t =
  Nf_unit.classified
    ~classifier:(Classifier.instance t.classifier)
    ~data_instance:(handler_instance t)

let program ?(opts = Compiler.default_opts) t = Nf_unit.compile ~opts ~name:t.name [ unit t ]

(* Cache lines per message under this instance's layout — the quantity data
   packing optimises (reported in Fig 12's discussion). *)
let lines_per_message t msg =
  let offsets = List.map (fun (n, _) -> (n, State_arena.field_offset t.arena n)) context_fields in
  Packing.lines_touched ~line_bytes:64 packing_fields offsets
    { Packing.fields = message_fields msg; weight = 1.0 }
