(* The stateful flow classifier module (Listing 1, Fig 6(b)): a cuckoo-hash
   match module decomposed into get_key / hash_1 / bucket_check_1 /
   key_check_1 / hash_2 / bucket_check_2 / key_check_2 NFActions, exactly
   as in the paper's specification. Bucket lines hold fingerprints and
   value indices; full keys live in a separate key-store line, so each
   probe is two dependent cache-line reads — each its own action whose line
   address is resolved (and hence prefetchable) one step ahead. *)

open Gunfu
open Structures

let spec_text =
  {|
module: flow_classifier
category: StatefulClassifier
parameters:
- header_type
- capacity
transitions:
- Start,packet->get_key
- get_key,get_key_done->hash_1
- hash_1,hash_done->bucket_check_1
- bucket_check_1,bucket_hit->key_check_1
- bucket_check_1,check_failure->hash_2
- key_check_1,MATCH_SUCCESS->End
- key_check_1,check_failure->hash_2
- hash_2,sec_hash_done->bucket_check_2
- bucket_check_2,bucket_hit->key_check_2
- bucket_check_2,MATCH_FAIL->End
- key_check_2,MATCH_SUCCESS->End
- key_check_2,MATCH_FAIL->End
fetching:
  get_key:
  - header
  bucket_check_1:
  - bucket
  key_check_1:
  - key_store
  bucket_check_2:
  - bucket
  key_check_2:
  - key_store
states:
  header: packet
  bucket: match
  key_store: match
|}

let spec = lazy (Spec.module_spec_of_string spec_text)

type t = {
  name : string;
  table : Cuckoo.t;
  key_kind : string;
  key_fn : Nftask.t -> int64;
  header_bytes : int;
}

(* Key extractors. The canonical flow identity is used (rewrites earlier in
   an SFC do not change a flow's identity), which is also what makes
   redundant-matching removal sound: every classifier with the same
   [key_kind] computes the same index for a given flow. *)
let five_tuple_key (task : Nftask.t) =
  Netcore.Flow.key64 (Nftask.packet_exn task).Netcore.Packet.flow

let dst_ip_key (task : Nftask.t) =
  Int64.logand
    (Int64.of_int32 (Nftask.packet_exn task).Netcore.Packet.flow.Netcore.Flow.dst_ip)
    0xFFFFFFFFL

let create layout ~name ~key_kind ~key_fn ~capacity () =
  {
    name;
    table = Cuckoo.create layout ~label:(name ^ ".match") ~capacity ();
    key_kind;
    key_fn;
    header_bytes = 64;
  }

let table t = t.table

(* Insert [key -> index] pairs. Overflow is a typed, policy-resolved
   condition rather than a crash: the returned count is the number of
   entries that did not survive (rejected new entries under [Drop_new] /
   [Shed_flow], displaced victims under [Evict_lru]) — 0 means every entry
   is resident, as the pre-policy code guaranteed by raising. *)
let populate ?(policy = Cuckoo.Drop_new) t entries =
  List.fold_left
    (fun shed (key, idx) ->
      match Cuckoo.insert_policy t.table ~policy ~key ~value:idx with
      | Cuckoo.Inserted | Cuckoo.Updated -> shed
      | Cuckoo.Evicted _ | Cuckoo.Rejected -> shed + 1)
    0 entries

(* ----- NFActions ----- *)

let read_match_addrs ctx (task : Nftask.t) =
  List.iter
    (fun (addr, bytes) -> Exec_ctx.read ctx ~cls:Sref.Match_state ~addr ~bytes)
    task.Nftask.match_addrs

let get_key_action t =
  Action.make ~kind:Action.Match_action ~base_cycles:12 ~base_instrs:14
    ~name:(t.name ^ ".get_key")
    (fun ctx task ->
      Nf_common.packet_read ctx task ~bytes:t.header_bytes;
      task.Nftask.temps.Nftask.key <- t.key_fn task;
      Event.User "get_key_done")

let hash_action t ~primary =
  let name = if primary then ".hash_1" else ".hash_2" in
  let event = if primary then "hash_done" else "sec_hash_done" in
  Action.make ~kind:Action.Match_action ~base_cycles:22 ~base_instrs:20
    ~invalidates:[ `Match_addrs ] ~name:(t.name ^ name)
    (fun _ctx task ->
      let key = task.Nftask.temps.Nftask.key in
      let bucket = if primary then Cuckoo.hash1 t.table key else Cuckoo.hash2 t.table key in
      if primary then task.Nftask.temps.Nftask.h1 <- bucket
      else task.Nftask.temps.Nftask.h2 <- bucket;
      task.Nftask.match_addrs <- [ (Cuckoo.bucket_addr t.table bucket, Cuckoo.bucket_bytes) ];
      Event.User event)

(* Fingerprint scan over the bucket line; on a hit, resolves the key-store
   line for the key_check step. *)
let bucket_check_action t ~primary =
  let name = if primary then ".bucket_check_1" else ".bucket_check_2" in
  Action.make ~kind:Action.Match_action ~base_cycles:10 ~base_instrs:12
    ~invalidates:[ `Match_addrs ] ~name:(t.name ^ name)
    (fun ctx task ->
      read_match_addrs ctx task;
      let bucket =
        if primary then task.Nftask.temps.Nftask.h1 else task.Nftask.temps.Nftask.h2
      in
      match Cuckoo.candidates t.table ~bucket ~key:task.Nftask.temps.Nftask.key with
      | [] -> if primary then Event.User "check_failure" else Event.Match_fail
      | _ :: _ ->
          task.Nftask.match_addrs <-
            [ (Cuckoo.key_addr t.table bucket, Cuckoo.bucket_bytes) ];
          Event.User "bucket_hit")

(* Full-key comparison against the key-store line. *)
let key_check_action t ~primary =
  let name = if primary then ".key_check_1" else ".key_check_2" in
  Action.make ~kind:Action.Match_action ~base_cycles:10 ~base_instrs:12
    ~invalidates:[ `Per_flow; `Sub_flow; `Match_addrs ] ~name:(t.name ^ name)
    (fun ctx task ->
      read_match_addrs ctx task;
      let bucket =
        if primary then task.Nftask.temps.Nftask.h1 else task.Nftask.temps.Nftask.h2
      in
      match Cuckoo.find_in_bucket t.table ~bucket ~key:task.Nftask.temps.Nftask.key with
      | Some idx ->
          task.Nftask.matched <- idx;
          Event.Match_success
      | None -> if primary then Event.User "check_failure" else Event.Match_fail)

let instance t : Compiler.instance =
  {
    Compiler.i_name = t.name;
    i_spec = Lazy.force spec;
    i_actions =
      [
        ("get_key", get_key_action t);
        ("hash_1", hash_action t ~primary:true);
        ("bucket_check_1", bucket_check_action t ~primary:true);
        ("key_check_1", key_check_action t ~primary:true);
        ("hash_2", hash_action t ~primary:false);
        ("bucket_check_2", bucket_check_action t ~primary:false);
        ("key_check_2", key_check_action t ~primary:false);
      ];
    i_bindings =
      [
        ("header", Prefetch.Packet_header t.header_bytes);
        ("bucket", Prefetch.Match_addrs);
        ("key_store", Prefetch.Match_addrs);
      ];
    i_key_kind = Some t.key_kind;
  }
