(* Network monitor: per-flow packet/byte accounting — the read-modify-write
   per-flow pattern (counters are both read and written every packet). *)

open Gunfu
open Structures

let spec_text =
  {|
module: nm_counter
category: StatefulNF
parameters:
- counters
transitions:
- Start,MATCH_SUCCESS->account
- account,packet->End
fetching:
  account:
  - counters
states:
  counters: per_flow
|}

let spec = lazy (Spec.module_spec_of_string spec_text)

type t = {
  name : string;
  classifier : Classifier.t;
  arena : State_arena.t;
  pkt_count : int array;
  byte_count : int array;
  mutable next_free : int;  (* first unused counter slot (bump allocator) *)
}

let state_bytes = 16

let create layout ~name ?arena ~n_flows () =
  let classifier =
    Classifier.create layout ~name:(name ^ "_cls") ~key_kind:"five_tuple"
      ~key_fn:Classifier.five_tuple_key ~capacity:n_flows ()
  in
  let arena =
    match arena with
    | Some a -> a
    | None ->
        State_arena.create layout ~label:(name ^ ".per_flow") ~entry_bytes:state_bytes
          ~count:n_flows ()
  in
  {
    name;
    classifier;
    arena;
    pkt_count = Array.make n_flows 0;
    byte_count = Array.make n_flows 0;
    next_free = 0;
  }

let populate t flows =
  let (_shed : int) =
    Classifier.populate t.classifier
      (Array.to_list (Array.mapi (fun i f -> (Netcore.Flow.key64 f, i)) flows))
  in
  t.next_free <- max t.next_free (Array.length flows)

let account_action t =
  Action.make ~base_cycles:12 ~base_instrs:10 ~name:(t.name ^ ".account")
    (fun ctx task ->
      let idx = Nf_common.per_flow_read ctx task t.arena ~name:t.name in
      t.pkt_count.(idx) <- t.pkt_count.(idx) + 1;
      t.byte_count.(idx) <-
        t.byte_count.(idx) + (Nftask.packet_exn task).Netcore.Packet.wire_len;
      ignore (Nf_common.per_flow_write ctx task t.arena ~name:t.name);
      Event.Packet_arrival)

let counter_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_acc";
    i_spec = Lazy.force spec;
    i_actions = [ ("account", account_action t) ];
    i_bindings = [ ("counters", Prefetch.Per_flow (t.arena, [])) ];
    i_key_kind = None;
  }

let unit t =
  Nf_unit.classified
    ~classifier:(Classifier.instance t.classifier)
    ~data_instance:(counter_instance t)

let program ?(opts = Compiler.default_opts) t = Nf_unit.compile ~opts ~name:t.name [ unit t ]

let stats t idx = (t.pkt_count.(idx), t.byte_count.(idx))
