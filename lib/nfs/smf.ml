(* SMF-lite: the session management function's N4 side. Builds PFCP
   Session Establishment / Deletion requests (matching the UPF's PDR
   shape), drives them against a UPF's N4 agent, and tracks the
   established sessions by their UP F-SEID. *)

exception Smf_error of string

type established = {
  up_seid : int64;
  e_ue_ip : Netcore.Ipv4.addr;
  e_teid : int32;
}

type t = {
  smf_addr : Netcore.Ipv4.addr;
  mutable next_seid : int64;
  mutable next_seq : int;
  mutable sessions : established list;
  mutable rejected : int;
}

let create ?(smf_addr = Netcore.Ipv4.addr_of_string "10.250.1.1") () =
  { smf_addr; next_seid = 1L; next_seq = 1; sessions = []; rejected = 0 }

let n_established t = List.length t.sessions
let sessions t = t.sessions

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* Build the Create PDR / Create FAR set for a session with [n_pdrs]
   detection rules partitioning the source-port space (the MGW shape). *)
let rules ~n_pdrs ~teid ~ran_ip =
  let far_id = 1l in
  let pdrs =
    List.init n_pdrs (fun j ->
        let lo, hi = Traffic.Mgw.pdr_port_range ~n_pdrs ~pdr:j in
        {
          Netcore.Pfcp.pdr_id = j;
          precedence = Int32.of_int (100 + j);
          pdi =
            {
              Netcore.Pfcp.src_port_lo = lo;
              src_port_hi = hi;
              proto = Netcore.Ipv4.proto_udp;
            };
          far_id;
        })
  in
  let fars =
    [ { Netcore.Pfcp.far_id_v = far_id; forward = true; outer_teid = teid; outer_ipv4 = ran_ip } ]
  in
  (pdrs, fars)

let establishment_request t ~ue_ip ~teid ~n_pdrs ~ran_ip =
  let cp_seid = t.next_seid in
  t.next_seid <- Int64.add t.next_seid 1L;
  let pdrs, fars = rules ~n_pdrs ~teid ~ran_ip in
  Netcore.Pfcp.encode
    {
      Netcore.Pfcp.seid = 0L (* establishment addresses the node *);
      seq = fresh_seq t;
      payload =
        Netcore.Pfcp.Establishment_request
          Netcore.Pfcp.{ cp_seid; cp_addr = t.smf_addr; ue_ip; pdrs; fars };
    }

(* Drive a full establishment exchange against a UPF's N4 agent. *)
let establish t (upf : Upf.t) ~ue_ip ~teid ~ran_ip =
  let request = establishment_request t ~ue_ip ~teid ~n_pdrs:upf.Upf.n_pdrs ~ran_ip in
  match Netcore.Pfcp.decode (Upf.handle_pfcp upf request) with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Establishment_response r; _ } ->
      if r.cause = Netcore.Pfcp.cause_accepted then begin
        t.sessions <-
          { up_seid = r.up_seid; e_ue_ip = ue_ip; e_teid = teid } :: t.sessions;
        Ok r.up_seid
      end
      else begin
        t.rejected <- t.rejected + 1;
        Error r.cause
      end
  | _ -> raise (Smf_error "unexpected response to establishment request")
  | exception Netcore.Pfcp.Malformed msg -> raise (Smf_error ("bad response: " ^ msg))

let delete t (upf : Upf.t) ~up_seid =
  let request =
    Netcore.Pfcp.encode
      { Netcore.Pfcp.seid = up_seid; seq = fresh_seq t; payload = Netcore.Pfcp.Deletion_request }
  in
  match Netcore.Pfcp.decode (Upf.handle_pfcp upf request) with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Deletion_response r; _ } ->
      if r.cause = Netcore.Pfcp.cause_accepted then
        t.sessions <- List.filter (fun s -> s.up_seid <> up_seid) t.sessions;
      r.cause
  | _ -> raise (Smf_error "unexpected response to deletion request")
  | exception Netcore.Pfcp.Malformed msg -> raise (Smf_error ("bad response: " ^ msg))
