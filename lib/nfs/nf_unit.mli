(** Composition glue: a unit is one network function's worth of module
    instances (typically classifier + data module) with declared entry and
    exit points; [chain] wires units into an SFC-level NF specification
    (Fig 6(e)/(f)). *)

open Gunfu

type t = {
  instances : Compiler.instance list;
  entry : string;  (** instance receiving the packet *)
  exits : (string * string) list;  (** (instance, event) leaving the unit *)
  internal : Spec.transition list;
}

(** The standard classifier + data-module unit, wired on MATCH_SUCCESS. *)
val classified : classifier:Compiler.instance -> data_instance:Compiler.instance -> t

(** Chain units: unit k's exits feed unit k+1's entry; the last exits end
    the chain. @raise Invalid_argument on an empty list. *)
val chain : name:string -> t list -> Spec.nf_spec * Compiler.instance list

val compile : ?opts:Compiler.opts -> name:string -> t list -> Program.t

(** Compile a chain through the full pipeline WITHOUT the lint/verify
    hooks and return the translation validator's input
    ({!Gunfu.Compiler.verify_view}). *)
val verify_view :
  ?opts:Compiler.opts -> name:string -> t list -> Compiler.verify_input
