(* Stateful firewall: a policy (ordered rules over 5-tuple ranges) is
   evaluated once when a flow is admitted; the resulting verdict is the
   per-flow state every subsequent packet reads. Different SFC positions
   use different policies (the paper's length-5/6 chains add FW instances
   "with different firewall policies"). *)

open Gunfu
open Structures

let spec_text =
  {|
module: fw_filter
category: StatefulNF
parameters:
- policy
transitions:
- Start,MATCH_SUCCESS->filter
- filter,packet->End
- filter,DROP->End
fetching:
  filter:
  - verdict
states:
  verdict: per_flow
|}

let spec = lazy (Spec.module_spec_of_string spec_text)

type verdict = Accept | Deny

type rule = {
  src_ip_mask : int32 * int32;  (* value, mask *)
  dst_port_range : int * int;
  proto : int option;
  rule_verdict : verdict;
}

type policy = { rules : rule list; default : verdict }

(* First-match policy evaluation — the real thing, exercised at flow
   admission and unit-tested directly. *)
let evaluate policy (flow : Netcore.Flow.t) =
  let matches r =
    let v, m = r.src_ip_mask in
    Int32.equal (Int32.logand flow.Netcore.Flow.src_ip m) (Int32.logand v m)
    && (let lo, hi = r.dst_port_range in
        flow.Netcore.Flow.dst_port >= lo && flow.Netcore.Flow.dst_port <= hi)
    && match r.proto with None -> true | Some p -> p = flow.Netcore.Flow.proto
  in
  match List.find_opt matches policy.rules with
  | Some r -> r.rule_verdict
  | None -> policy.default

(* A permissive default policy that denies a slice of traffic (so the DROP
   path is genuinely exercised): block a /28 of sources towards low ports. *)
let default_policy =
  {
    rules =
      [
        {
          src_ip_mask = (Int32.of_int 0x0A000010, Int32.of_int 0xFFFFFFF0);
          dst_port_range = (0, 1023);
          proto = None;
          rule_verdict = Deny;
        };
      ];
    default = Accept;
  }

(* A stricter policy variant for deeper chain positions. *)
let strict_policy =
  {
    rules =
      [
        {
          src_ip_mask = (Int32.of_int 0x0A000000, Int32.of_int 0xFFFFFF00);
          dst_port_range = (0, 79);
          proto = Some Netcore.Ipv4.proto_tcp;
          rule_verdict = Deny;
        };
        {
          src_ip_mask = (0l, 0l);
          dst_port_range = (0, 65535);
          proto = Some Netcore.Ipv4.proto_icmp;
          rule_verdict = Deny;
        };
      ];
    default = Accept;
  }

type t = {
  name : string;
  classifier : Classifier.t;
  arena : State_arena.t;
  policy : policy;
  verdicts : bool array;  (* true = accept *)
  mutable next_free : int;  (* first unused verdict slot (bump allocator) *)
}

let state_bytes = 16

let create layout ~name ?arena ?(policy = default_policy) ~n_flows () =
  let classifier =
    Classifier.create layout ~name:(name ^ "_cls") ~key_kind:"five_tuple"
      ~key_fn:Classifier.five_tuple_key ~capacity:n_flows ()
  in
  let arena =
    match arena with
    | Some a -> a
    | None ->
        State_arena.create layout ~label:(name ^ ".per_flow") ~entry_bytes:state_bytes
          ~count:n_flows ()
  in
  { name; classifier; arena; policy; verdicts = Array.make n_flows true;
    next_free = 0 }

let populate t flows =
  Array.iteri
    (fun i flow -> t.verdicts.(i) <- evaluate t.policy flow = Accept)
    flows;
  t.next_free <- max t.next_free (Array.length flows);
  let (_shed : int) =
    Classifier.populate t.classifier
      (Array.to_list (Array.mapi (fun i f -> (Netcore.Flow.key64 f, i)) flows))
  in
  ()

let filter_action t =
  Action.make ~base_cycles:14 ~base_instrs:12 ~name:(t.name ^ ".filter")
    (fun ctx task ->
      let idx = Nf_common.per_flow_read ctx task t.arena ~name:t.name in
      if t.verdicts.(idx) then Event.Packet_arrival else Event.Drop_packet)

let filter_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_flt";
    i_spec = Lazy.force spec;
    i_actions = [ ("filter", filter_action t) ];
    i_bindings = [ ("verdict", Prefetch.Per_flow (t.arena, [])) ];
    i_key_kind = None;
  }

let unit t =
  Nf_unit.classified
    ~classifier:(Classifier.instance t.classifier)
    ~data_instance:(filter_instance t)

let program ?(opts = Compiler.default_opts) t = Nf_unit.compile ~opts ~name:t.name [ unit t ]
