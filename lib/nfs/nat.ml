(* Network address translator (Fig 6(e)): flow classifier + flow mapper.
   The mapper NFAction is written in NF-C (Listings 2 and 4) and rewrites
   the source IP/port from the per-flow mapping — genuinely, on the packet's
   header bytes, with incremental checksum update. *)

open Gunfu
open Structures

let mapper_spec_text =
  {|
module: flow_mapper
category: StatefulNF
parameters:
- ip_pool
- port_base
transitions:
- Start,MATCH_SUCCESS->flow_mapper
- flow_mapper,packet->End
fetching:
  flow_mapper:
  - mapping
  - header
states:
  mapping: per_flow
  header: packet
nfc:
  flow_mapper: NFAction(flow_mapper) { Packet.src_ip = PerFlowState.ip; Packet.src_port = PerFlowState.port; Emit(Event_Packet); }
|}

let mapper_spec = lazy (Spec.module_spec_of_string mapper_spec_text)

(* Miss path: unknown flows allocate a fresh mapping at runtime — a config
   action touching the NAT's control state (the allocator), then inserting
   into the match state. The scheduler's per-flow ordering guarantees a
   flow is never learned twice concurrently. *)
let learner_spec_text =
  {|
module: nat_learner
category: StatefulNF
parameters:
- pool_size
transitions:
- Start,MATCH_FAIL->learn
- learn,MATCH_SUCCESS->End
- learn,DROP->End
fetching:
  learn:
  - allocator
states:
  allocator: control
|}

let learner_spec = lazy (Spec.module_spec_of_string learner_spec_text)

(* Listing 4, extended with the port rewrite. *)
let mapper_source =
  {|
NFAction(flow_mapper) {
  Packet.src_ip = PerFlowState.ip;
  Packet.src_port = PerFlowState.port;
  Emit(Event_Packet);
}
|}

type t = {
  name : string;
  classifier : Classifier.t;
  arena : State_arena.t;
  map_ip : int32 array;  (* translated source address per flow *)
  map_port : int array;  (* translated source port per flow *)
  allocator_sref : Sref.t;  (* control state of the dynamic learner *)
  mutable next_free : int;  (* first never-allocated mapping slot *)
  mutable learned : int;  (* mappings created by the miss path *)
  keys : int64 array;  (* installed flow key per slot; 0 = slot unused *)
  last_seen : int array;  (* cycle of the slot's last data-path use *)
  mutable free_slots : int list;  (* recycled by the idle-expiry sweep *)
  overflow : Cuckoo.overflow_policy;  (* match-table pressure policy (learner) *)
}

let state_bytes = 8 (* 4B ip + 2B port, padded *)

let public_ip i = Int32.of_int (0xCB007100 lor (i mod 64)) (* 203.0.113.x *)
let public_port i = 20000 + (i mod 40000)

let create layout ~name ?arena ?(overflow = Cuckoo.Drop_new) ~n_flows () =
  let classifier =
    Classifier.create layout ~name:(name ^ "_cls") ~key_kind:"five_tuple"
      ~key_fn:Classifier.five_tuple_key ~capacity:n_flows ()
  in
  let arena =
    match arena with
    | Some a -> a
    | None ->
        State_arena.create layout ~label:(name ^ ".per_flow") ~entry_bytes:state_bytes
          ~count:n_flows ()
  in
  let allocator_addr =
    Memsim.Layout.alloc layout ~align:64 ~label:(name ^ ".control") ~bytes:64 ()
  in
  {
    name;
    classifier;
    arena;
    map_ip = Array.make n_flows 0l;
    map_port = Array.make n_flows 0;
    allocator_sref = Sref.make ~cls:Sref.Control_state ~addr:allocator_addr ~bytes:64;
    next_free = 0;
    learned = 0;
    keys = Array.make n_flows 0L;
    last_seen = Array.make n_flows 0;
    free_slots = [];
    overflow;
  }

(* Install the NAT mapping for every flow: the public address pool is
   cycled, ports allocated sequentially — the BESS NAT example's policy. *)
let populate t flows =
  Array.iteri
    (fun i flow ->
      t.map_ip.(i) <- public_ip i;
      t.map_port.(i) <- public_port i;
      t.keys.(i) <- Netcore.Flow.key64 flow)
    flows;
  t.next_free <- Array.length flows;
  let (_shed : int) =
    Classifier.populate t.classifier
      (Array.to_list (Array.mapi (fun i f -> (Netcore.Flow.key64 f, i)) flows))
  in
  ()

(* NF-C binding: the only state the mapper can reach. Packet field writes
   rewrite the real header bytes. *)
let mapper_binding t : Nfc.binding =
  let read_field ctx task scope field =
    match (scope, field) with
    | Nfc.Per_flow, "ip" ->
        let idx = Nf_common.per_flow_read ctx task t.arena ~name:t.name in
        t.last_seen.(idx) <- ctx.Exec_ctx.clock;
        Int32.to_int t.map_ip.(idx) land 0xFFFFFFFF
    | Nfc.Per_flow, "port" ->
        let idx = Nf_common.per_flow_read ctx task t.arena ~name:t.name in
        t.map_port.(idx)
    | Nfc.Packet, "src_port" ->
        let p = Nftask.packet_exn task in
        Nf_common.packet_read ctx task ~bytes:4;
        Netcore.L4.src_port p.Netcore.Packet.buf ~off:p.Netcore.Packet.l4_off
    | _ -> raise (Nfc.Nfc_error (t.name ^ ": read outside NFTask references"))
  in
  let write_field ctx task scope field v =
    match (scope, field) with
    | Nfc.Packet, "src_ip" ->
        let p = Nftask.packet_exn task in
        Netcore.Ipv4.rewrite_src p.Netcore.Packet.buf ~off:p.Netcore.Packet.l3_off
          ~src:(Int32.of_int v);
        Nf_common.packet_write ctx task ~bytes:4
    | Nfc.Packet, "src_port" ->
        let p = Nftask.packet_exn task in
        Netcore.L4.rewrite_src_port p.Netcore.Packet.buf ~off:p.Netcore.Packet.l4_off
          ~port:v;
        Nf_common.packet_write ctx task ~bytes:2
    | _ -> raise (Nfc.Nfc_error (t.name ^ ": write outside NFTask references"))
  in
  { Nfc.read_field; write_field }

let mapper_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_map";
    i_spec = Lazy.force mapper_spec;
    i_actions = [ ("flow_mapper", Nfc.compile ~binding:(mapper_binding t) mapper_source) ];
    i_bindings =
      [
        ("mapping", Prefetch.Per_flow (t.arena, []));
        ("header", Prefetch.Packet_header 64);
      ];
    i_key_kind = None;
  }

(* ----- dynamic learning (miss path) ----- *)

let learn_action t =
  Action.make ~kind:Action.Config_action ~base_cycles:120 ~base_instrs:90
    ~invalidates:[ `Per_flow ] ~name:(t.name ^ ".learn")
    (fun ctx task ->
      (* Read/update the allocator control state (always cache-hot). *)
      Exec_ctx.read_sref ctx t.allocator_sref;
      let slot =
        match t.free_slots with
        | idx :: rest ->
            t.free_slots <- rest;
            Some idx
        | [] ->
            if t.next_free >= Array.length t.map_ip then None
            else begin
              let idx = t.next_free in
              t.next_free <- idx + 1;
              Some idx
            end
      in
      match slot with
      | None -> Event.Drop_packet
      | Some idx -> begin
        t.learned <- t.learned + 1;
        t.map_ip.(idx) <- public_ip idx;
        t.map_port.(idx) <- public_port idx;
        t.keys.(idx) <- task.Nftask.temps.Nftask.key;
        t.last_seen.(idx) <- ctx.Exec_ctx.clock;
        Exec_ctx.write ctx ~cls:Sref.Control_state ~addr:t.allocator_sref.Sref.addr
          ~bytes:8;
        (* Install the match-state entry: a real cuckoo insert, charged as
           writes of the touched bucket lines. Overflow resolves per the
           NAT's policy: reject the new flow (Drop_new), displace the
           stalest resident and recycle its mapping slot (Evict_lru), or
           quarantine the flow via a contained fault (Shed_flow). *)
        let key = task.Nftask.temps.Nftask.key in
        let installed =
          match
            Structures.Cuckoo.insert_policy (Classifier.table t.classifier)
              ~policy:t.overflow ~key ~value:idx
          with
          | Structures.Cuckoo.Inserted | Structures.Cuckoo.Updated -> true
          | Structures.Cuckoo.Evicted { victim_value; _ } ->
              if victim_value >= 0 && victim_value < Array.length t.keys
                 && victim_value <> idx
              then begin
                t.keys.(victim_value) <- 0L;
                t.free_slots <- t.free_slots @ [ victim_value ]
              end;
              true
          | Structures.Cuckoo.Rejected ->
              if t.overflow = Structures.Cuckoo.Shed_flow then
                raise (Fault.Fault (Fault.Table_overflow, t.name));
              false
        in
        if not installed then Event.Drop_packet
        else begin
          let table = Classifier.table t.classifier in
          let bucket =
            match Structures.Cuckoo.find_in_bucket table ~bucket:(Structures.Cuckoo.hash1 table key) ~key with
            | Some _ -> Structures.Cuckoo.hash1 table key
            | None -> Structures.Cuckoo.hash2 table key
          in
          Exec_ctx.write ctx ~cls:Sref.Match_state
            ~addr:(Structures.Cuckoo.bucket_addr table bucket)
            ~bytes:Structures.Cuckoo.bucket_bytes;
          Exec_ctx.write ctx ~cls:Sref.Match_state
            ~addr:(Structures.Cuckoo.key_addr table bucket)
            ~bytes:Structures.Cuckoo.bucket_bytes;
          (* Write the fresh per-flow mapping. *)
          task.Nftask.matched <- idx;
          Exec_ctx.write ctx ~cls:Sref.Per_flow ~addr:(State_arena.addr t.arena idx)
            ~bytes:state_bytes;
          Event.Match_success
        end
      end)

let learner_instance t : Compiler.instance =
  {
    Compiler.i_name = t.name ^ "_lrn";
    i_spec = Lazy.force learner_spec;
    i_actions = [ ("learn", learn_action t) ];
    i_bindings = [ ("allocator", Prefetch.Fixed t.allocator_sref) ];
    i_key_kind = None;
  }

let unit t =
  Nf_unit.classified
    ~classifier:(Classifier.instance t.classifier)
    ~data_instance:(mapper_instance t)

(* A unit whose classifier miss path learns new flows instead of dropping
   them: classifier --MATCH_FAIL--> learner --MATCH_SUCCESS--> mapper. *)
let dynamic_unit t =
  let base = unit t in
  {
    base with
    Nf_unit.instances = base.Nf_unit.instances @ [ learner_instance t ];
    internal =
      base.Nf_unit.internal
      @ [
          {
            Spec.src = t.classifier.Classifier.name;
            event = "MATCH_FAIL";
            dst = t.name ^ "_lrn";
          };
          { Spec.src = t.name ^ "_lrn"; event = "MATCH_SUCCESS"; dst = t.name ^ "_map" };
        ];
  }

(* Standalone NAT program. *)
let program ?(opts = Compiler.default_opts) t = Nf_unit.compile ~opts ~name:t.name [ unit t ]

(* NAT with the dynamic miss path enabled. *)
let dynamic_program ?(opts = Compiler.default_opts) t =
  Nf_unit.compile ~opts ~name:(t.name ^ "_dyn") [ dynamic_unit t ]

(* Idle-timeout sweep (a management-plane operation): evict mappings not
   used for [idle_cycles], freeing their slots for the learner to recycle.
   Returns the number of mappings expired. *)
let expire t ~now ~idle_cycles =
  let expired = ref 0 in
  for idx = 0 to t.next_free - 1 do
    if (not (Int64.equal t.keys.(idx) 0L)) && now - t.last_seen.(idx) > idle_cycles then begin
      ignore (Structures.Cuckoo.delete (Classifier.table t.classifier) t.keys.(idx));
      t.keys.(idx) <- 0L;
      t.free_slots <- idx :: t.free_slots;
      incr expired
    end
  done;
  !expired
