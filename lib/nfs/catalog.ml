(* The NF catalog: builds runnable network functions directly from on-disk
   specifications (the Fig 4 workflow — architects write YAML, the director
   compiles it against the NFAction implementation library).

   Instances follow the shipped naming convention: "<prefix>_<role>" where
   the role suffix picks the implementation family —

     cls -> flow classifier     map -> NAT mapper     lrn -> NAT learner
     fwd -> LB forwarder        flt -> firewall       acc -> monitor

   Each prefix becomes one NF object; the module specs supplied (typically
   parsed from specs/*.yaml) replace the built-in ones, so the file's FSM
   genuinely drives execution. *)

open Gunfu

exception Catalog_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Catalog_error s)) fmt

type built = {
  program : Program.t;
  populate : Netcore.Flow.t array -> unit;
  nf_names : string list;  (* prefixes, in chain order *)
  digest : Fingerprint.t -> unit;
  snapshots : snapshotter list;  (* one per stateful NF, chain order *)
}

(* Per-NF state migration capability: what the recovery plane needs to
   checkpoint an NF, re-home its flows and compare state across homes
   without knowing the family. [sn_flow_digest] feeds the *per-flow*
   observable state (location-independent, unlike {!built.digest} which is
   slot-layout-sensitive) — the basis of the oracle's recovery axis. *)
and snapshotter = {
  sn_name : string;  (* NF prefix *)
  sn_export : Netcore.Flow.t list -> string;
  sn_evict : Netcore.Flow.t list -> unit;
  sn_import : string -> int;
  sn_apply : string -> int;  (* SCR update upsert: overwrite-or-admit *)
  sn_flow_digest : Fingerprint.t -> Netcore.Flow.t -> unit;
}

(* Observable state per family, fed in chain order so two runs of the same
   composition produce equal digests iff their final NF state is equal. *)
let digest_nat (nat : Nat.t) fp =
  Fingerprint.feed_string fp nat.Nat.name;
  Array.iter (fun ip -> Fingerprint.feed_int64 fp (Int64.of_int32 ip)) nat.Nat.map_ip;
  Fingerprint.feed_int_array fp nat.Nat.map_port;
  Fingerprint.feed_int fp nat.Nat.next_free;
  Fingerprint.feed_int fp nat.Nat.learned;
  Fingerprint.feed_int64_array fp nat.Nat.keys

let digest_lb (lb : Lb.t) fp =
  Fingerprint.feed_string fp lb.Lb.name;
  Fingerprint.feed_int_array fp lb.Lb.assignment

let digest_fw (fw : Firewall.t) fp =
  Fingerprint.feed_string fp fw.Firewall.name;
  Array.iter (Fingerprint.feed_bool fp) fw.Firewall.verdicts

let digest_nm (nm : Monitor.t) fp =
  Fingerprint.feed_string fp nm.Monitor.name;
  Fingerprint.feed_int_array fp nm.Monitor.pkt_count;
  Fingerprint.feed_int_array fp nm.Monitor.byte_count

(* ----- per-family snapshotters ----- *)

let flow_slot cls flow =
  Structures.Cuckoo.lookup (Classifier.table cls) (Netcore.Flow.key64 flow)

let snap_nat (nat : Nat.t) =
  {
    sn_name = nat.Nat.name;
    sn_export = Migration.export_nat nat;
    sn_evict = Migration.evict_nat nat;
    sn_import = Migration.import_nat nat;
    sn_apply = Migration.apply_nat nat;
    sn_flow_digest =
      (fun fp flow ->
        match flow_slot nat.Nat.classifier flow with
        | None -> Fingerprint.feed_bool fp false
        | Some idx ->
            Fingerprint.feed_bool fp true;
            Fingerprint.feed_int64 fp (Int64.of_int32 nat.Nat.map_ip.(idx));
            Fingerprint.feed_int fp nat.Nat.map_port.(idx));
  }

let snap_lb (lb : Lb.t) =
  {
    sn_name = lb.Lb.name;
    sn_export = Migration.export_lb lb;
    sn_evict = Migration.evict_lb lb;
    sn_import = Migration.import_lb lb;
    sn_apply = Migration.apply_lb lb;
    sn_flow_digest =
      (fun fp flow ->
        match flow_slot lb.Lb.classifier flow with
        | None -> Fingerprint.feed_bool fp false
        | Some idx ->
            Fingerprint.feed_bool fp true;
            Fingerprint.feed_int fp lb.Lb.assignment.(idx));
  }

let snap_fw (fw : Firewall.t) =
  {
    sn_name = fw.Firewall.name;
    sn_export = Migration.export_firewall fw;
    sn_evict = Migration.evict_firewall fw;
    sn_import = Migration.import_firewall fw;
    sn_apply = Migration.apply_firewall fw;
    sn_flow_digest =
      (fun fp flow ->
        match flow_slot fw.Firewall.classifier flow with
        | None -> Fingerprint.feed_bool fp false
        | Some idx ->
            Fingerprint.feed_bool fp true;
            Fingerprint.feed_bool fp fw.Firewall.verdicts.(idx));
  }

let snap_nm (nm : Monitor.t) =
  {
    sn_name = nm.Monitor.name;
    sn_export = Migration.export_monitor nm;
    sn_evict = Migration.evict_monitor nm;
    sn_import = Migration.adopt_monitor nm;
    sn_apply = Migration.apply_monitor nm;
    sn_flow_digest =
      (fun fp flow ->
        match flow_slot nm.Monitor.classifier flow with
        | None -> Fingerprint.feed_bool fp false
        | Some idx ->
            Fingerprint.feed_bool fp true;
            Fingerprint.feed_int fp nm.Monitor.pkt_count.(idx);
            Fingerprint.feed_int fp nm.Monitor.byte_count.(idx));
  }

let prefix_of inst =
  match String.rindex_opt inst '_' with
  | Some i -> (String.sub inst 0 i, String.sub inst (i + 1) (String.length inst - i - 1))
  | None -> fail "instance %s does not follow the <prefix>_<role> convention" inst

(* Which NF family a prefix's role set denotes. *)
type family = Nat_f | Lb_f | Fw_f | Nm_f

let family_of_roles prefix roles =
  let has r = List.mem r roles in
  if not (has "cls") then fail "NF %s has no classifier instance" prefix
  else if has "map" then Nat_f
  else if has "fwd" then Lb_f
  else if has "flt" then Fw_f
  else if has "acc" then Nm_f
  else fail "cannot infer the NF family of %s from roles %s" prefix (String.concat "," roles)

(* Instantiate the NF objects a composition needs and substitute the
   supplied module specs — everything [build] does short of compiling, so
   the lint path can stop at a {!Compiler.lint_view}. *)
let assemble layout ~(nf : Spec.nf_spec) ~modules ~n_flows =
  (* Group instances by prefix, preserving chain order. *)
  let order = ref [] in
  let roles : (string, (string * string) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (inst, mtype) ->
      let prefix, role = prefix_of inst in
      if not (Hashtbl.mem roles prefix) then order := prefix :: !order;
      Hashtbl.replace roles prefix
        ((role, mtype) :: Option.value ~default:[] (Hashtbl.find_opt roles prefix)))
    nf.Spec.n_modules;
  let order = List.rev !order in
  (* One NF object per prefix; collect its compiler instances + populate +
     state digest. *)
  let populates = ref [] in
  let digests = ref [] in
  let snaps = ref [] in
  let instances =
    List.concat_map
      (fun prefix ->
        let role_list = Hashtbl.find roles prefix in
        let role_names = List.map fst role_list in
        let has_learner = List.mem "lrn" role_names in
        match family_of_roles prefix role_names with
        | Nat_f ->
            let nat = Nat.create layout ~name:prefix ~n_flows () in
            populates := Nat.populate nat :: !populates;
            digests := digest_nat nat :: !digests;
            snaps := snap_nat nat :: !snaps;
            let u = if has_learner then Nat.dynamic_unit nat else Nat.unit nat in
            u.Nf_unit.instances
        | Lb_f ->
            let lb = Lb.create layout ~name:prefix ~n_flows () in
            populates := Lb.populate lb :: !populates;
            digests := digest_lb lb :: !digests;
            snaps := snap_lb lb :: !snaps;
            (Lb.unit lb).Nf_unit.instances
        | Fw_f ->
            let fw = Firewall.create layout ~name:prefix ~n_flows () in
            populates := Firewall.populate fw :: !populates;
            digests := digest_fw fw :: !digests;
            snaps := snap_fw fw :: !snaps;
            (Firewall.unit fw).Nf_unit.instances
        | Nm_f ->
            let nm = Monitor.create layout ~name:prefix ~n_flows () in
            populates := Monitor.populate nm :: !populates;
            digests := digest_nm nm :: !digests;
            snaps := snap_nm nm :: !snaps;
            (Monitor.unit nm).Nf_unit.instances)
      order
  in
  (* Use the on-disk module specs: the file's FSM drives execution. *)
  let instances =
    List.map
      (fun (inst : Compiler.instance) ->
        match List.assoc_opt inst.Compiler.i_spec.Spec.m_name modules with
        | Some on_disk -> { inst with Compiler.i_spec = on_disk }
        | None ->
            fail "NF %s needs module type %s but no spec was supplied" nf.Spec.n_name
              inst.Compiler.i_spec.Spec.m_name)
      instances
  in
  (* Every instance the composition names must exist, with matching type. *)
  List.iter
    (fun (inst_name, mtype) ->
      match List.find_opt (fun i -> i.Compiler.i_name = inst_name) instances with
      | None -> fail "composition names instance %s which the catalog did not build" inst_name
      | Some i ->
          if i.Compiler.i_spec.Spec.m_name <> mtype then
            fail "instance %s is a %s, composition says %s" inst_name
              i.Compiler.i_spec.Spec.m_name mtype)
    nf.Spec.n_modules;
  (instances, List.rev !populates, List.rev !digests, order, List.rev !snaps)

let build layout ~(nf : Spec.nf_spec) ~modules ~n_flows
    ?(opts = Compiler.default_opts) () =
  let instances, populates, digests, order, snaps =
    assemble layout ~nf ~modules ~n_flows
  in
  let program = Compiler.compile ~opts ~name:nf.Spec.n_name instances nf in
  {
    program;
    populate = (fun flows -> List.iter (fun p -> p flows) populates);
    nf_names = order;
    digest = (fun fp -> List.iter (fun d -> d fp) digests);
    snapshots = snaps;
  }

(* Convenience: read and build from files. *)
let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_modules dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".yaml")
  |> List.filter_map (fun f ->
         match Spec.module_spec_of_string (read_file (Filename.concat dir f)) with
         | m -> Some (m.Spec.m_name, m)
         | exception Spec.Spec_error _ -> None (* NF compositions live here too *))

let build_from_files layout ~nf_file ~specs_dir ~n_flows ?opts () =
  let nf = Spec.nf_spec_of_string (read_file nf_file) in
  let modules = load_modules specs_dir in
  Spec.validate_nf nf ~known_modules:(List.map fst modules);
  build layout ~nf ~modules ~n_flows ?opts ()

(* The lint path: same assembly as {!build_from_files}, stopping just
   before prefetch dedup (what the static analyzer wants to see). *)
let lint_input_from_files layout ~nf_file ~specs_dir ~n_flows ?opts () =
  let nf = Spec.nf_spec_of_string (read_file nf_file) in
  let modules = load_modules specs_dir in
  Spec.validate_nf nf ~known_modules:(List.map fst modules);
  let instances, _, _, _, _ = assemble layout ~nf ~modules ~n_flows in
  Compiler.lint_view ?opts ~name:nf.Spec.n_name instances nf

(* The translation-validation path: same assembly, full compile pipeline,
   no hooks — the caller hands the result to the symbolic checker. *)
let verify_view layout ~(nf : Spec.nf_spec) ~modules ~n_flows ?opts () =
  let instances, _, _, _, _ = assemble layout ~nf ~modules ~n_flows in
  Compiler.verify_view ?opts ~name:nf.Spec.n_name instances nf

let verify_input_from_files layout ~nf_file ~specs_dir ~n_flows ?opts () =
  let nf = Spec.nf_spec_of_string (read_file nf_file) in
  let modules = load_modules specs_dir in
  Spec.validate_nf nf ~known_modules:(List.map fst modules);
  verify_view layout ~nf ~modules ~n_flows ?opts ()
