(** Network address translator (Fig 6(e)): flow classifier + flow mapper.
    The mapper NFAction is written in NF-C (Listings 2/4) and rewrites the
    source IP/port from the per-flow mapping on the real header bytes, with
    incremental checksum update. *)

open Gunfu

val mapper_spec : Spec.module_spec Lazy.t
val learner_spec : Spec.module_spec Lazy.t
val mapper_source : string  (** the NF-C program (Listing 4 extended) *)

type t = {
  name : string;
  classifier : Classifier.t;
  arena : Structures.State_arena.t;
  map_ip : Netcore.Ipv4.addr array;  (** translated source per flow *)
  map_port : int array;
  allocator_sref : Sref.t;  (** the dynamic learner's control state *)
  mutable next_free : int;
  mutable learned : int;  (** mappings created by the miss path *)
  keys : int64 array;  (** installed flow key per slot; 0 = slot unused *)
  last_seen : int array;  (** cycle of the slot's last data-path use *)
  mutable free_slots : int list;  (** recycled by {!expire} *)
  overflow : Structures.Cuckoo.overflow_policy;
      (** how the learner resolves match-table overflow *)
}

val state_bytes : int

(** [?arena] substitutes a packed-group view for the private arena.
    [?overflow] (default [Drop_new]) picks the learner's policy when the
    match table rejects an insert: drop the new flow's packet, evict the
    stalest resident (its mapping slot is recycled), or shed the flow with
    a contained [Fault.Fault (Table_overflow, _)]. *)
val create :
  Memsim.Layout.t -> name:string -> ?arena:Structures.State_arena.t ->
  ?overflow:Structures.Cuckoo.overflow_policy -> n_flows:int -> unit -> t

(** Install mappings (public address pool + sequential ports) and populate
    the classifier. *)
val populate : t -> Netcore.Flow.t array -> unit

val mapper_binding : t -> Nfc.binding
val mapper_instance : t -> Compiler.instance
val learner_instance : t -> Compiler.instance
val unit : t -> Nf_unit.t

(** NAT with the miss path wired to a learner that allocates a mapping and
    installs the match-state entry at runtime (a config action); packets of
    unknown flows are translated, not dropped. Per-flow ordering in the
    scheduler guarantees single allocation per flow. *)
val dynamic_unit : t -> Nf_unit.t

val program : ?opts:Compiler.opts -> t -> Program.t
val dynamic_program : ?opts:Compiler.opts -> t -> Program.t

(** Idle-timeout sweep: evict mappings unused for [idle_cycles], recycling
    their slots; returns the number expired. *)
val expire : t -> now:int -> idle_cycles:int -> int
