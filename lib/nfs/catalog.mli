(** NF catalog: build runnable network functions directly from on-disk
    specifications (the Fig 4 workflow), matching instance names of the
    form [<prefix>_<role>] to the shipped implementation families
    (cls/map/lrn/fwd/flt/acc). Supplied module specs replace the built-in
    ones, so the file's FSM genuinely drives execution. *)

open Gunfu

exception Catalog_error of string

type built = {
  program : Program.t;
  populate : Netcore.Flow.t array -> unit;  (** install all per-flow state *)
  nf_names : string list;  (** NF prefixes in chain order *)
  digest : Fingerprint.t -> unit;
      (** fold the chain's observable NF state (mappings, assignments,
          verdicts, counters) into a stable fingerprint, in chain order *)
  snapshots : snapshotter list;
      (** one per stateful NF, chain order — the recovery plane's
          family-agnostic checkpoint/re-home/compare surface *)
}

(** Per-NF state migration capability. [sn_flow_digest] feeds one flow's
    observable state — location-independent, unlike {!built.digest} which
    is slot-layout-sensitive — making state comparable between an NF that
    learned the flow and one that adopted it after a core failure. *)
and snapshotter = {
  sn_name : string;  (** NF prefix *)
  sn_export : Netcore.Flow.t list -> string;
  sn_evict : Netcore.Flow.t list -> unit;
  sn_import : string -> int;
  sn_apply : string -> int;
      (** SCR update upsert: overwrite a resident flow's state in place,
          admit an absent one (see {!Migration.apply_nat}) *)
  sn_flow_digest : Fingerprint.t -> Netcore.Flow.t -> unit;
}

(** @raise Catalog_error on unknown roles, missing specs or mismatched
    compositions; @raise Gunfu.Compiler.Compile_error downstream. *)
val build :
  Memsim.Layout.t -> nf:Spec.nf_spec -> modules:(string * Spec.module_spec) list ->
  n_flows:int -> ?opts:Compiler.opts -> unit -> built

val read_file : string -> string

(** All module specs parseable from [dir]'s [.yaml] files. *)
val load_modules : string -> (string * Spec.module_spec) list

(** Parse [nf_file], load module specs from [specs_dir], validate, build. *)
val build_from_files :
  Memsim.Layout.t -> nf_file:string -> specs_dir:string -> n_flows:int ->
  ?opts:Compiler.opts -> unit -> built

(** Same assembly as {!build_from_files}, but stop at
    {!Gunfu.Compiler.lint_view} — the static analyzer's input — instead
    of compiling. *)
val lint_input_from_files :
  Memsim.Layout.t -> nf_file:string -> specs_dir:string -> n_flows:int ->
  ?opts:Compiler.opts -> unit -> Compiler.lint_input

(** Same assembly as {!build}, run through the full compile pipeline via
    {!Gunfu.Compiler.verify_view} (no lint/verify hooks) — the
    translation validator's input. *)
val verify_view :
  Memsim.Layout.t -> nf:Spec.nf_spec -> modules:(string * Spec.module_spec) list ->
  n_flows:int -> ?opts:Compiler.opts -> unit -> Compiler.verify_input

val verify_input_from_files :
  Memsim.Layout.t -> nf_file:string -> specs_dir:string -> n_flows:int ->
  ?opts:Compiler.opts -> unit -> Compiler.verify_input
