(** Network monitor: per-flow packet/byte accounting — the
    read-modify-write per-flow pattern. *)

open Gunfu

val spec : Spec.module_spec Lazy.t

type t = {
  name : string;
  classifier : Classifier.t;
  arena : Structures.State_arena.t;
  pkt_count : int array;
  byte_count : int array;
  mutable next_free : int;
      (** first unused counter slot (bump allocator; imports append here) *)
}

val state_bytes : int

val create :
  Memsim.Layout.t -> name:string -> ?arena:Structures.State_arena.t -> n_flows:int ->
  unit -> t

val populate : t -> Netcore.Flow.t array -> unit
val counter_instance : t -> Compiler.instance
val unit : t -> Nf_unit.t
val program : ?opts:Compiler.opts -> t -> Program.t

(** (packets, bytes) accounted for a flow index. *)
val stats : t -> int -> int * int
