(** Stateful L4 load balancer: Maglev consistent hashing assigns each new
    flow a backend; the per-flow state pins it there, and the data action
    rewrites the destination address. *)

open Gunfu

val spec : Spec.module_spec Lazy.t

type t = {
  name : string;
  classifier : Classifier.t;
  arena : Structures.State_arena.t;
  backends : Netcore.Ipv4.addr array;
  maglev : Structures.Maglev.t;
  assignment : int array;  (** flow index -> backend index *)
  mutable next_free : int;
      (** first unused assignment slot (bump allocator; imports append
          here) *)
}

val state_bytes : int
val default_backends : Netcore.Ipv4.addr array

val create :
  Memsim.Layout.t -> name:string -> ?arena:Structures.State_arena.t ->
  ?backends:Netcore.Ipv4.addr array -> n_flows:int -> unit -> t

val populate : t -> Netcore.Flow.t array -> unit

(** Backend address a flow index is pinned to. *)
val backend_of : t -> int -> Netcore.Ipv4.addr

val forwarder_instance : t -> Compiler.instance
val unit : t -> Nf_unit.t
val program : ?opts:Compiler.opts -> t -> Program.t
