(** Stateful firewall: an ordered rule policy is evaluated once at flow
    admission; the verdict is the per-flow state every later packet reads.
    Deep SFC positions use different policies (paper §VII-B). *)

open Gunfu

val spec : Spec.module_spec Lazy.t

type verdict = Accept | Deny

type rule = {
  src_ip_mask : Netcore.Ipv4.addr * Netcore.Ipv4.addr;  (** (value, mask) *)
  dst_port_range : int * int;
  proto : int option;  (** [None] = any *)
  rule_verdict : verdict;
}

type policy = { rules : rule list; default : verdict }

(** First-match evaluation. *)
val evaluate : policy -> Netcore.Flow.t -> verdict

(** Permissive, with a denied source slice so the DROP path is exercised. *)
val default_policy : policy

val strict_policy : policy

type t = {
  name : string;
  classifier : Classifier.t;
  arena : Structures.State_arena.t;
  policy : policy;
  verdicts : bool array;  (** true = accept *)
  mutable next_free : int;
      (** first unused verdict slot (bump allocator; imports append here) *)
}

val state_bytes : int

val create :
  Memsim.Layout.t -> name:string -> ?arena:Structures.State_arena.t -> ?policy:policy ->
  n_flows:int -> unit -> t

val populate : t -> Netcore.Flow.t array -> unit
val filter_instance : t -> Compiler.instance
val unit : t -> Nf_unit.t
val program : ?opts:Compiler.opts -> t -> Program.t
