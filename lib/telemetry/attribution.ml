(* The cycle-attribution profiler: folds a Trace's exact books into a
   perf-report-style view — where did the cycles go, keyed by (nf, fsm
   state, state class, serving cache level) — plus phase totals, the
   latency histogram, the occupancy timeline summary, and an exact
   reconciliation of per-level serve counts against the run's Memstats
   delta. Works off the attribution books (never the ring), so the numbers
   are exact even when the span ring overflowed. *)

open Gunfu

(* Per-level serve counts must equal the memory hierarchy's own counters:
   the tap fires exactly once per demand line access, so any difference
   means a tampered or mis-bracketed trace. *)
let reconcile (tr : Trace.t) (mem : Memsim.Memstats.t) : (unit, string) result =
  let expected =
    [
      (Trace.L1, mem.Memsim.Memstats.l1_hits);
      (Trace.L2, mem.Memsim.Memstats.l2_hits);
      (Trace.Llc, mem.Memsim.Memstats.llc_hits);
      (Trace.Dram, mem.Memsim.Memstats.dram_fills);
      (Trace.Inflight, mem.Memsim.Memstats.mshr_waits);
    ]
  in
  let mismatches =
    List.filter_map
      (fun (level, want) ->
        let got = Trace.level_count tr level in
        if got <> want then
          Some (Printf.sprintf "%s: trace %d vs memstats %d" (Trace.level_name level) got want)
        else None)
      expected
  in
  match mismatches with
  | [] -> Ok ()
  | ms -> Error (String.concat "; " ms)

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp ?run ppf (tr : Trace.t) =
  let line fmt = Fmt.pf ppf (fmt ^^ "@.") in
  line "=== telemetry: cycle attribution ===";
  line "packets: %d pulled, %d completed; spans: %d recorded, %d dropped from ring"
    (Trace.pulls tr) (Trace.completes tr) (Trace.total_spans tr) (Trace.dropped tr);
  line "";
  (* state-access attribution, heaviest first *)
  let mem_total = Trace.mem_cycles tr in
  line "state access (demand traffic), by nf / state / class / level:";
  line "  %-14s %-26s %-9s %-8s %10s %12s %6s" "nf" "state" "class" "level"
    "serves" "cycles" "cyc%";
  let rows =
    Trace.mem_rows tr
    |> List.sort (fun (_, _, _, _, _, a) (_, _, _, _, _, b) -> compare b a)
  in
  List.iter
    (fun (nf, cs, cls, level, serves, cycles) ->
      line "  %-14s %-26s %-9s %-8s %10d %12d %5.1f%%"
        (if nf = "" then "(runtime)" else nf)
        (if cs = "" then "-" else cs)
        cls (Trace.level_name level) serves cycles (pct cycles mem_total))
    rows;
  line "  %-14s %-26s %-9s %-8s %10s %12d 100.0%%" "total" "" "" "" "" mem_total;
  line "";
  (* per-level summary *)
  line "serving level summary:";
  List.iter
    (fun level ->
      line "  %-8s %10d serves %12d cycles" (Trace.level_name level)
        (Trace.level_count tr level) (Trace.level_cycles tr level))
    [ Trace.L1; Trace.L2; Trace.Llc; Trace.Dram; Trace.Inflight ];
  (match run with
  | Some (r : Metrics.run) ->
      (match reconcile tr r.Metrics.mem with
      | Ok () -> line "  memstats reconciliation: OK (per-level serves match exactly)"
      | Error e -> line "  memstats reconciliation: MISMATCH — %s" e)
  | None -> ());
  line "";
  (* action table *)
  line "actions:";
  line "  %-42s %10s %12s %10s" "nf.state" "execs" "cycles" "cyc/exec";
  let arows =
    Trace.action_rows tr |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)
  in
  List.iter
    (fun (nf, cs, execs, cycles) ->
      let name = if cs = "" then nf else cs in
      line "  %-42s %10d %12d %10.1f" name execs cycles
        (if execs = 0 then 0.0 else float_of_int cycles /. float_of_int execs))
    arows;
  line "";
  (* phase totals *)
  line "phase totals (cycles):";
  line "  pull=%d action=%d prefetch=%d switch=%d mem-outside-action=%d"
    (Trace.pull_cycles tr) (Trace.action_cycles tr) (Trace.prefetch_cycles tr)
    (Trace.switch_cycles tr) (Trace.mem_outside_cycles tr);
  (match run with
  | Some r ->
      line "  attributed=%d of run=%d (%.1f%% coverage)" (Trace.attributed_cycles tr)
        r.Metrics.cycles
        (pct (Trace.attributed_cycles tr) r.Metrics.cycles)
  | None -> line "  attributed=%d" (Trace.attributed_cycles tr));
  line "";
  (* latency *)
  let h = Trace.latencies tr in
  if Trace.Hist.count h > 0 then
    line
      "latency (cycles): count=%d mean=%.0f p50=%d p90=%d p99=%d max=%d (HDR log-linear)"
      (Trace.Hist.count h) (Trace.Hist.mean h)
      (Trace.Hist.percentile h 50) (Trace.Hist.percentile h 90)
      (Trace.Hist.percentile h 99) (Trace.Hist.max_value h);
  (* occupancy *)
  let occ = Trace.occupancy tr in
  if Array.length occ > 0 then begin
    let n = Array.length occ in
    let sum f = Array.fold_left (fun acc o -> acc + f o) 0 occ in
    let maxi f = Array.fold_left (fun acc o -> max acc (f o)) 0 occ in
    line
      "occupancy (%d samples): active tasks avg=%.1f max=%d; MSHRs in flight avg=%.1f max=%d"
      n
      (float_of_int (sum (fun o -> o.Trace.oc_active)) /. float_of_int n)
      (maxi (fun o -> o.Trace.oc_active))
      (float_of_int (sum (fun o -> o.Trace.oc_mshr)) /. float_of_int n)
      (maxi (fun o -> o.Trace.oc_mshr))
  end

let report ?run tr = Fmt.str "%a" (pp ?run) tr
