(** The cycle-attribution profiler: folds a {!Gunfu.Trace}'s exact books
    into a perf-report-style view keyed by (nf, fsm state, state class,
    serving cache level), plus phase totals, latency percentiles, the
    occupancy summary, and an exact reconciliation against
    {!Memsim.Memstats}. Works off the attribution books (never the span
    ring), so numbers stay exact when the ring overflowed. *)

(** Per-level serve counts vs the hierarchy's own counters (L1/L2/LLC
    hits, DRAM fills, MSHR waits). The tap fires exactly once per demand
    line access, so any difference means a tampered or mis-bracketed
    trace. *)
val reconcile : Gunfu.Trace.t -> Memsim.Memstats.t -> (unit, string) result

(** Text report. With [?run], adds attributed-cycle coverage of the run
    and the Memstats reconciliation verdict. *)
val pp : ?run:Gunfu.Metrics.run -> Format.formatter -> Gunfu.Trace.t -> unit

val report : ?run:Gunfu.Metrics.run -> Gunfu.Trace.t -> string
