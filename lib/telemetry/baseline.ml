(* Machine-readable bench baselines: a stable JSON schema for the key
   series of every bench figure, so each PR commits a perf trajectory
   (BENCH_<pr>.json) that later PRs can diff against. The schema is
   deliberately flat — figures hold labelled series of (x, metric map)
   points — so new metrics can be added without breaking old readers. *)

open Gunfu

let schema_id = "gunfu-bench-baseline/1"

type point = { x : float; metrics : (string * float) list }
type series = { s_label : string; points : point list }
type figure = { f_name : string; f_title : string; series : series list }
type t = { pr : string; figures : figure list }

(* The standard metric set extracted from a measured run. *)
let metrics_of_run (r : Metrics.run) =
  [
    ("mpps", Metrics.mpps r);
    ("gbps", Metrics.gbps r);
    ("ipc", Metrics.ipc r);
    ("cycles_per_packet", Metrics.cycles_per_packet r);
    ("l1_misses_per_packet", Metrics.l1_misses_per_packet r);
    ("l2_misses_per_packet", Metrics.l2_misses_per_packet r);
    ("llc_misses_per_packet", Metrics.llc_misses_per_packet r);
  ]

let point_of_run ~x r = { x; metrics = metrics_of_run r }

(* ----- JSON ----- *)

let json_of_point p =
  Json_lite.Obj
    [
      ("x", Json_lite.Num p.x);
      ("metrics", Json_lite.Obj (List.map (fun (k, v) -> (k, Json_lite.Num v)) p.metrics));
    ]

let json_of_series s =
  Json_lite.Obj
    [
      ("label", Json_lite.Str s.s_label);
      ("points", Json_lite.Arr (List.map json_of_point s.points));
    ]

let json_of_figure f =
  Json_lite.Obj
    [
      ("name", Json_lite.Str f.f_name);
      ("title", Json_lite.Str f.f_title);
      ("series", Json_lite.Arr (List.map json_of_series f.series));
    ]

let to_json t =
  Json_lite.Obj
    [
      ("schema", Json_lite.Str schema_id);
      ("pr", Json_lite.Str t.pr);
      ("figures", Json_lite.Arr (List.map json_of_figure t.figures));
    ]

let to_string t = Json_lite.to_string ~indent:true (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv ctx json =
  match Option.bind (Json_lite.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or ill-typed %S" ctx name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let point_of_json json =
  let* x = field "x" Json_lite.to_float "point" json in
  let* metrics_obj = field "metrics" (fun j -> Some j) "point" json in
  match metrics_obj with
  | Json_lite.Obj fields ->
      let* metrics =
        map_result
          (fun (k, v) ->
            match Json_lite.to_float v with
            | Some f -> Ok (k, f)
            | None -> Error (Printf.sprintf "point: metric %S is not a number" k))
          fields
      in
      Ok { x; metrics }
  | _ -> Error "point: metrics is not an object"

let series_of_json json =
  let* s_label = field "label" Json_lite.to_str "series" json in
  let* points_json = field "points" Json_lite.to_list "series" json in
  let* points = map_result point_of_json points_json in
  Ok { s_label; points }

let figure_of_json json =
  let* f_name = field "name" Json_lite.to_str "figure" json in
  let* f_title = field "title" Json_lite.to_str "figure" json in
  let* series_json = field "series" Json_lite.to_list "figure" json in
  let* series = map_result series_of_json series_json in
  Ok { f_name; f_title; series }

let of_json json =
  let* schema = field "schema" Json_lite.to_str "baseline" json in
  if schema <> schema_id then
    Error (Printf.sprintf "unsupported schema %S (want %S)" schema schema_id)
  else
    let* pr = field "pr" Json_lite.to_str "baseline" json in
    let* figures_json = field "figures" Json_lite.to_list "baseline" json in
    let* figures = map_result figure_of_json figures_json in
    Ok { pr; figures }

let of_string s =
  let* json = Json_lite.of_string s in
  of_json json

let equal (a : t) (b : t) = a = b

(* ----- drift check ----- *)

(* Compare a freshly collected baseline against an expected one, exact by
   default (0.0 tolerance: the series are simulated, so any drift is a
   behaviour change). [tolerance] relaxes the value comparison to a
   relative bound — the CI bench-drift smoke runs at a small non-zero
   tolerance so a slow shared runner never turns timing-adjacent series
   into false alarms. Only the figures that actually ran are compared — a
   partial bench run checks its slice. [skip] names metrics whose *values*
   are host wall-clock measurements (their presence is still required);
   pass [fun _ -> false] to compare everything. Returns human-readable
   drift lines, empty when clean. *)
let diff ?(tolerance = 0.0) ~expected ~actual ~skip () =
  let out = ref [] in
  let drift fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let within ev av =
    if tolerance <= 0.0 then ev = av
    else abs_float (ev -. av) <= tolerance *. Float.max (abs_float ev) (abs_float av)
  in
  let check_point ctx (e : point) (a : point) =
    if e.x <> a.x then drift "%s: x %g <> %g" ctx e.x a.x;
    let keys l = List.map fst l in
    if keys e.metrics <> keys a.metrics then
      drift "%s (x=%g): metric keys [%s] <> [%s]" ctx e.x
        (String.concat "," (keys e.metrics))
        (String.concat "," (keys a.metrics))
    else
      List.iter2
        (fun (k, ev) (_, av) ->
          if (not (skip k)) && not (within ev av) then
            drift "%s (x=%g): %s %.17g <> %.17g" ctx e.x k ev av)
        e.metrics a.metrics
  in
  let check_series fig (e : series) (a : series) =
    let ctx = Printf.sprintf "%s/%s" fig e.s_label in
    if List.length e.points <> List.length a.points then
      drift "%s: %d points expected, %d measured" ctx (List.length e.points)
        (List.length a.points)
    else List.iter2 (check_point ctx) e.points a.points
  in
  List.iter
    (fun (a : figure) ->
      match List.find_opt (fun (e : figure) -> e.f_name = a.f_name) expected.figures with
      | None -> drift "%s: not in expected baseline" a.f_name
      | Some e ->
          let labels (f : figure) = List.map (fun s -> s.s_label) f.series in
          if labels e <> labels a then
            drift "%s: series [%s] <> [%s]" a.f_name
              (String.concat "," (labels e))
              (String.concat "," (labels a))
          else List.iter2 (check_series a.f_name) e.series a.series)
    actual.figures;
  List.rev !out

(* ----- collection during a bench run ----- *)

(* Figures register points as they print their tables; the collector keeps
   insertion order for figures and series so the emitted JSON is stable
   across runs. *)
type collector = {
  mutable figs : (string * string * (string * point list ref) list ref) list;
}

let collector () = { figs = [] }

let record c ~fig ~title ~series ~x metrics =
  let serieses =
    match List.find_opt (fun (name, _, _) -> name = fig) c.figs with
    | Some (_, _, s) -> s
    | None ->
        let s = ref [] in
        c.figs <- c.figs @ [ (fig, title, s) ];
        s
  in
  let points =
    match List.assoc_opt series !serieses with
    | Some p -> p
    | None ->
        let p = ref [] in
        serieses := !serieses @ [ (series, p) ];
        p
  in
  points := !points @ [ { x; metrics } ]

let record_run c ~fig ~title ~series ~x r =
  record c ~fig ~title ~series ~x (metrics_of_run r)

let to_baseline c ~pr =
  {
    pr;
    figures =
      List.map
        (fun (f_name, f_title, serieses) ->
          {
            f_name;
            f_title;
            series =
              List.map (fun (s_label, points) -> { s_label; points = !points }) !serieses;
          })
        c.figs;
  }
