(* Minimal JSON: an AST, a deterministic printer, and a recursive-descent
   parser. Self-contained so the telemetry exporters need no external
   dependency; print-then-parse is the identity on the AST (numbers are
   printed with enough digits to round-trip exactly). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Integers print as integers; other floats with the fewest digits that
   still parse back to the same value — this is what makes the printer
   idempotent under print-parse round trips. *)
let number_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec print_value b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num v ->
      if not (Float.is_finite v) then
        (* NaN/inf are not valid JSON; emit null rather than garbage. *)
        Buffer.add_string b "null"
      else Buffer.add_string b (number_string v)
  | Str s -> escape_string b s
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          print_value b ~indent ~level:(level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if indent then Buffer.add_char b ' ';
          print_value b ~indent ~level:(level + 1) item)
        fields;
      newline ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 4096 in
  print_value b ~indent ~level:0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

(* ----- parsing ----- *)

exception Parse_error of string

let of_string s : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected '%c' at offset %d, got '%c'" c !pos d
    | None -> fail "expected '%c' at offset %d, got end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal at offset %d" !pos
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'u' ->
                 if !pos + 4 > n then fail "truncated \\u escape"
                 else begin
                   let hex = String.sub s !pos 4 in
                   pos := !pos + 4;
                   match int_of_string_opt ("0x" ^ hex) with
                   | Some code -> utf8_of_code b code
                   | None -> fail "invalid \\u escape %s" hex
                 end
             | c -> fail "invalid escape '\\%c'" c);
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> Num v
    | None -> fail "invalid number %S at offset %d" text start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ----- accessors ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
