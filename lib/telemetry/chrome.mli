(** Chrome [trace_event] exporter: turns a {!Gunfu.Trace} ring into the
    JSON Array Format that chrome://tracing and ui.perfetto.dev load
    directly. One thread per NFTask slot (tid 0 = runtime), complete
    ("X") events for spans with duration, instants ("i") for markers,
    counter ("C") events for the occupancy timeline. Timestamps are
    simulated cycles. *)

(** Export as a trace object; events sorted by (ts, -dur) so timestamps
    are non-decreasing and enclosing spans precede their children. *)
val export : ?pid:int -> Gunfu.Trace.t -> Json_lite.t

(** {!export} rendered with indentation. *)
val export_string : ?pid:int -> Gunfu.Trace.t -> string

(** Structural check: a [traceEvents] array whose entries carry
    name/ph/ts, durations non-negative, timestamps non-decreasing in
    array order. Returns the event count. *)
val validate : Json_lite.t -> (int, string) result

(** Parse then {!validate}. *)
val validate_string : string -> (int, string) result
