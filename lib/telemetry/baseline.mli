(** Machine-readable bench baselines: a stable JSON schema
    ([gunfu-bench-baseline/1]) for the key series of every bench figure,
    committed as [BENCH_<pr>.json] so future PRs have a perf trajectory to
    diff against. *)

val schema_id : string

type point = { x : float; metrics : (string * float) list }
type series = { s_label : string; points : point list }
type figure = { f_name : string; f_title : string; series : series list }
type t = { pr : string; figures : figure list }

(** The standard metric set of a measured run: mpps, gbps, ipc,
    cycles_per_packet, and per-level misses per packet. *)
val metrics_of_run : Gunfu.Metrics.run -> (string * float) list

val point_of_run : x:float -> Gunfu.Metrics.run -> point

val to_json : t -> Json_lite.t
val to_string : t -> string
val of_json : Json_lite.t -> (t, string) result
val of_string : string -> (t, string) result
val equal : t -> t -> bool

(** Drift check of [actual] against [expected], exact by default
    ([tolerance] 0.0) or within a relative bound (the CI smoke's relaxed
    mode: values agree when [|e - a| <= tolerance * max |e| |a|]).
    Restricted to the figures present in [actual] so a partial bench run
    checks its slice. [skip] names metrics whose values are host
    wall-clock measurements — their presence is still required, only the
    value comparison is waived. Returns human-readable drift lines
    (empty = clean). *)
val diff :
  ?tolerance:float -> expected:t -> actual:t -> skip:(string -> bool) -> unit ->
  string list

(** {2 Collection during a bench run} *)

(** Accumulates points as figures print their tables; figure and series
    order is insertion order, so the emitted JSON is stable. *)
type collector

val collector : unit -> collector

val record :
  collector -> fig:string -> title:string -> series:string -> x:float ->
  (string * float) list -> unit

val record_run :
  collector -> fig:string -> title:string -> series:string -> x:float ->
  Gunfu.Metrics.run -> unit

val to_baseline : collector -> pr:string -> t
