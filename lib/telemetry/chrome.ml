(* Chrome trace_event exporter: turns a Trace ring into the JSON Array
   Format that chrome://tracing and ui.perfetto.dev load directly. One
   thread per NFTask slot (tid = slot + 1; tid 0 is the runtime), complete
   ("X") events for spans with duration, instants ("i") for parse/complete
   markers, and counter ("C") events for the scheduler/MSHR occupancy
   timeline. Timestamps are simulated cycles (the viewer renders them as
   microseconds; only relative placement matters). *)

open Gunfu

let tid_of_task task = task + 1

let span_name (sp : Trace.span) =
  match sp.Trace.sp_phase with
  | Trace.Action_body ->
      if sp.Trace.sp_cs = "" then "action" else sp.Trace.sp_cs
  | Trace.State_access | Trace.Mshr_wait -> (
      match sp.Trace.sp_level with
      | Some l -> Printf.sprintf "mem:%s" (Trace.level_name l)
      | None -> "mem")
  | Trace.Complete ->
      if sp.Trace.sp_note = "" then "complete"
      else Printf.sprintf "complete:%s" sp.Trace.sp_note
  | p -> Trace.phase_name p

let span_args (sp : Trace.span) =
  let base =
    [
      ("unit", Json_lite.Num (float_of_int sp.Trace.sp_unit));
      ("flow", Json_lite.Num (float_of_int sp.Trace.sp_flow));
    ]
  in
  let opt name v = match v with "" -> [] | s -> [ (name, Json_lite.Str s) ] in
  base
  @ opt "nf" sp.Trace.sp_nf
  @ opt "cs" sp.Trace.sp_cs
  @ (match sp.Trace.sp_cls with
    | Some c -> [ ("class", Json_lite.Str (Sref.class_name c)) ]
    | None -> [])
  @ (match sp.Trace.sp_level with
    | Some l -> [ ("level", Json_lite.Str (Trace.level_name l)) ]
    | None -> [])
  @ opt "note" sp.Trace.sp_note

let event_of_span ~pid (sp : Trace.span) =
  let common =
    [
      ("name", Json_lite.Str (span_name sp));
      ("cat", Json_lite.Str (Trace.phase_name sp.Trace.sp_phase));
      ("pid", Json_lite.Num (float_of_int pid));
      ("tid", Json_lite.Num (float_of_int (tid_of_task sp.Trace.sp_task)));
      ("ts", Json_lite.Num (float_of_int sp.Trace.sp_ts));
    ]
  in
  if sp.Trace.sp_dur > 0 then
    Json_lite.Obj
      (common
      @ [
          ("ph", Json_lite.Str "X");
          ("dur", Json_lite.Num (float_of_int sp.Trace.sp_dur));
          ("args", Json_lite.Obj (span_args sp));
        ])
  else
    Json_lite.Obj
      (common
      @ [
          ("ph", Json_lite.Str "i");
          ("s", Json_lite.Str "t");
          ("args", Json_lite.Obj (span_args sp));
        ])

let counter_events ~pid (oc : Trace.occupancy) =
  Json_lite.Obj
    [
      ("name", Json_lite.Str "occupancy");
      ("ph", Json_lite.Str "C");
      ("pid", Json_lite.Num (float_of_int pid));
      ("ts", Json_lite.Num (float_of_int oc.Trace.oc_ts));
      ( "args",
        Json_lite.Obj
          [
            ("active_tasks", Json_lite.Num (float_of_int oc.Trace.oc_active));
            ("mshr_pending", Json_lite.Num (float_of_int oc.Trace.oc_mshr));
          ] );
    ]

let metadata ~pid name tid thread_name =
  Json_lite.Obj
    [
      ("name", Json_lite.Str name);
      ("ph", Json_lite.Str "M");
      ("pid", Json_lite.Num (float_of_int pid));
      ("tid", Json_lite.Num (float_of_int tid));
      ("ts", Json_lite.Num 0.0);
      ("args", Json_lite.Obj [ ("name", Json_lite.Str thread_name) ]);
    ]

let ts_of_event ev =
  match Option.bind (Json_lite.member "ts" ev) Json_lite.to_float with
  | Some v -> v
  | None -> 0.0

let dur_of_event ev =
  match Option.bind (Json_lite.member "dur" ev) Json_lite.to_float with
  | Some v -> v
  | None -> 0.0

(* Export as a full trace object. Events are sorted by (ts, -dur): spans
   are recorded at their END (an action's inner memory spans are pushed
   before the action span itself), so sorting restores chronological order
   and puts enclosing spans before their children at equal start times —
   both what the validator checks and what viewers nest correctly. *)
let export ?(pid = 0) (tr : Trace.t) : Json_lite.t =
  let spans = Trace.spans tr in
  let tids = Hashtbl.create 16 in
  Array.iter
    (fun sp -> Hashtbl.replace tids (tid_of_task sp.Trace.sp_task) ())
    spans;
  let threads =
    Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
    |> List.sort compare
    |> List.map (fun tid ->
           let name = if tid = 0 then "runtime" else Printf.sprintf "nftask-%d" (tid - 1) in
           metadata ~pid "thread_name" tid name)
  in
  let events =
    Array.to_list (Array.map (event_of_span ~pid) spans)
    @ Array.to_list (Array.map (counter_events ~pid) (Trace.occupancy tr))
  in
  let events =
    List.stable_sort
      (fun a b ->
        match compare (ts_of_event a) (ts_of_event b) with
        | 0 -> compare (dur_of_event b) (dur_of_event a)
        | c -> c)
      events
  in
  Json_lite.Obj
    [
      ("traceEvents", Json_lite.Arr ((metadata ~pid "process_name" 0 "gunfu") :: threads @ events));
      ("displayTimeUnit", Json_lite.Str "ns");
      ( "otherData",
        Json_lite.Obj
          [
            ("ts_unit", Json_lite.Str "simulated cycles");
            ("dropped_spans", Json_lite.Num (float_of_int (Trace.dropped tr)));
          ] );
    ]

let export_string ?pid tr = Json_lite.to_string ~indent:true (export ?pid tr)

(* ----- validation ----- *)

(* Structural check of an exported trace: well-formed JSON, a traceEvents
   array whose entries carry name/ph/ts, non-negative durations, and
   non-decreasing timestamps in array order. Returns the event count. *)
let validate (json : Json_lite.t) : (int, string) result =
  match Option.bind (Json_lite.member "traceEvents" json) Json_lite.to_list with
  | None -> Error "missing traceEvents array"
  | Some events ->
      let rec go i last_ts = function
        | [] -> Ok i
        | ev :: rest -> (
            let str k = Option.bind (Json_lite.member k ev) Json_lite.to_str in
            let num k = Option.bind (Json_lite.member k ev) Json_lite.to_float in
            match (str "name", str "ph", num "ts") with
            | None, _, _ -> Error (Printf.sprintf "event %d: missing name" i)
            | _, None, _ -> Error (Printf.sprintf "event %d: missing ph" i)
            | _, _, None -> Error (Printf.sprintf "event %d: missing ts" i)
            | Some _, Some ph, Some ts ->
                if ts < last_ts then
                  Error
                    (Printf.sprintf "event %d: timestamp %g runs backwards (last %g)" i
                       ts last_ts)
                else if ph = "X" && (match num "dur" with Some d -> d < 0.0 | None -> true)
                then Error (Printf.sprintf "event %d: X event without valid dur" i)
                else go (i + 1) ts rest)
      in
      go 0 neg_infinity events

let validate_string s =
  match Json_lite.of_string s with
  | Error e -> Error (Printf.sprintf "invalid JSON: %s" e)
  | Ok json -> validate json
