(** Minimal JSON: AST, deterministic printer, recursive-descent parser.
    Self-contained (no external dependency); print-then-parse is the
    identity on the AST — numbers are printed with enough digits to
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Serialize. [indent] pretty-prints with two-space indentation (and a
    trailing newline); the default is compact. NaN/infinity print as
    [null]. *)
val to_string : ?indent:bool -> t -> string

val of_string : string -> (t, string) result

(** Field of an object, [None] on missing key or non-object. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
