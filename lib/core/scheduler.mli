(** The interleaved function-stream executor — Algorithm 1 of the paper.

    A fixed set of NFTasks is multiplexed round-robin on one core. The
    Fetch step resolves the next action's NFState targets and issues their
    prefetches immediately, overlapping the fills with the other streams'
    execution; a task whose fills are still in flight is skipped (its
    P-state says so) until they land. Finished NFTasks are re-initialised
    in place, and per-flow ordering is preserved: two packets of one flow
    are never in flight concurrently. *)

(** Task-selection policy: the paper's round-robin, or a ready-first scan
    that skips tasks whose fills are still in flight (charging one cycle
    per skipped slot). *)
type policy = Round_robin | Ready_first

(** Run until the source drains; returns the measured run. [on_complete]
    observes each finished task just before it is retired — the
    differential oracle's tap. [fault] supplies the run's fault-injection
    plane (a fresh empty plane when omitted). [telemetry] attaches the span
    tracer for the duration of the run; its hooks never charge cycles, so
    traced and untraced runs are cycle-identical.

    [prefetch_distance] (default 1, the paper's policy) tunes the Fetch
    step: 0 issues nothing (every access demand-fetches), and [d >= 2] also
    speculatively issues the resolvable targets of FSM successor states up
    to [d - 1] transitions ahead (fire-and-forget; readiness is tracked on
    the current state's blocks only).

    [quiesce] is polled at pull boundaries; once it answers [true] the run
    stops pulling, drains every in-flight task and stashed item, and
    returns with pulled = completed — the adaptive driver's observation-safe
    reconfiguration point. A hook that never answers [true] leaves the run
    byte-identical to one without it.
    @raise Invalid_argument when [n_tasks <= 0] or [prefetch_distance < 0]. *)
val run :
  ?label:string -> ?policy:policy -> ?prefetch_distance:int ->
  ?quiesce:(unit -> bool) -> ?fault:Fault.t -> ?telemetry:Trace.t ->
  ?on_complete:(Nftask.t -> unit) -> Worker.t -> Program.t -> n_tasks:int ->
  Workload.source -> Metrics.run
