(** The interleaved function-stream executor — Algorithm 1 of the paper.

    A fixed set of NFTasks is multiplexed round-robin on one core. The
    Fetch step resolves the next action's NFState targets and issues their
    prefetches immediately, overlapping the fills with the other streams'
    execution; a task whose fills are still in flight is skipped (its
    P-state says so) until they land. Finished NFTasks are re-initialised
    in place, and per-flow ordering is preserved: two packets of one flow
    are never in flight concurrently. *)

(** Task-selection policy: the paper's round-robin, or a ready-first scan
    that skips tasks whose fills are still in flight (charging one cycle
    per skipped slot). *)
type policy = Round_robin | Ready_first

(** Run until the source drains; returns the measured run. [on_complete]
    observes each finished task just before it is retired — the
    differential oracle's tap. [fault] supplies the run's fault-injection
    plane (a fresh empty plane when omitted). [telemetry] attaches the span
    tracer for the duration of the run; its hooks never charge cycles, so
    traced and untraced runs are cycle-identical.
    @raise Invalid_argument when [n_tasks <= 0]. *)
val run :
  ?label:string -> ?policy:policy -> ?fault:Fault.t -> ?telemetry:Trace.t ->
  ?on_complete:(Nftask.t -> unit) -> Worker.t -> Program.t -> n_tasks:int ->
  Workload.source -> Metrics.run
