(* NFEvents (§IV-A): notifications the control logic transitions on.
   System events originate outside the NF (packet arrival); user events are
   raised by NFActions. The FSM layer keys transitions by the event's wire
   name, so every event has a stable string form. *)

type t =
  | Packet_arrival  (* system: a packet was handed to the function stream *)
  | Match_success
  | Match_fail
  | Emit_packet     (* processing finished; forward the packet *)
  | Drop_packet
  | User of string  (* module-defined events, e.g. "hash_done" *)
  | Faulted of string  (* containment: task quarantined, carries the reason *)

let to_key = function
  | Packet_arrival -> "packet"
  | Match_success -> "MATCH_SUCCESS"
  | Match_fail -> "MATCH_FAIL"
  | Emit_packet -> "EMIT"
  | Drop_packet -> "DROP"
  | Faulted r -> "FAULT[" ^ r ^ "]"
  | User s -> s

let of_key = function
  | "packet" -> Packet_arrival
  | "MATCH_SUCCESS" -> Match_success
  | "MATCH_FAIL" -> Match_fail
  | "EMIT" -> Emit_packet
  | "DROP" -> Drop_packet
  | s ->
      let n = String.length s in
      if n > 7 && String.sub s 0 6 = "FAULT[" && s.[n - 1] = ']' then
        Faulted (String.sub s 6 (n - 7))
      else User s

let equal a b = String.equal (to_key a) (to_key b)

let pp ppf t = Fmt.string ppf (to_key t)
