(* Per-core execution context: the simulated memory hierarchy plus the
   core's cycle and instruction counters. NFAction bodies charge all their
   memory traffic and computation here; the executors (interleaved
   scheduler / RTC) add their own overheads on top. *)

type t = {
  mem : Memsim.Hierarchy.t;
  layout : Memsim.Layout.t;
  mutable clock : int;   (* cycles *)
  mutable instrs : int;  (* retired instructions, for IPC *)
  cycles_by_class : int array;  (* memory cycles per Sref.state_class *)
  mutable trace : Trace.t option;  (* telemetry plane, None = inert *)
}

let class_index = function
  | Sref.Match_state -> 0
  | Sref.Per_flow -> 1
  | Sref.Sub_flow -> 2
  | Sref.Packet_state -> 3
  | Sref.Control_state -> 4
  | Sref.Temp_state -> 5

let n_classes = 6

let class_of_index = function
  | 0 -> Sref.Match_state
  | 1 -> Sref.Per_flow
  | 2 -> Sref.Sub_flow
  | 3 -> Sref.Packet_state
  | 4 -> Sref.Control_state
  | _ -> Sref.Temp_state

let create ?(mem_cfg = Memsim.Hierarchy.default_config) () =
  {
    mem = Memsim.Hierarchy.create ~cfg:mem_cfg ();
    layout = Memsim.Layout.create ();
    clock = 0;
    instrs = 0;
    cycles_by_class = Array.make n_classes 0;
    trace = None;
  }

(* Attach the telemetry plane: record it and tap the memory hierarchy so
   every demand line access reports its serving level. Detach before the
   worker is reused — executors pair these under [Fun.protect] so a raising
   run cannot leak the tap into a later one. *)
let attach_trace t tr =
  t.trace <- Some tr;
  Memsim.Hierarchy.set_tap t.mem
    (Some
       (fun ~now ~line:_ ~served ~cycles ->
         let level =
           match served with
           | Memsim.Hierarchy.Served_l1 -> Trace.L1
           | Memsim.Hierarchy.Served_l2 -> Trace.L2
           | Memsim.Hierarchy.Served_llc -> Trace.Llc
           | Memsim.Hierarchy.Served_dram -> Trace.Dram
           | Memsim.Hierarchy.Served_inflight -> Trace.Inflight
         in
         Trace.on_mem tr ~ts:now ~cycles ~level))

let detach_trace t =
  t.trace <- None;
  Memsim.Hierarchy.set_tap t.mem None

(* Pure computation: advances the clock without memory traffic. *)
let compute t ~cycles ~instrs =
  t.clock <- t.clock + cycles;
  t.instrs <- t.instrs + instrs

let charge_class t cls cycles =
  t.cycles_by_class.(class_index cls) <- t.cycles_by_class.(class_index cls) + cycles

(* A demand load of [bytes] at [addr], classified as [cls] state. The
   hierarchy tap fires during the access, so the class is published to the
   trace first (a no-op without a plane). *)
let read t ~cls ~addr ~bytes =
  (match t.trace with Some tr -> Trace.set_cls tr (Some cls) | None -> ());
  let lat = Memsim.Hierarchy.read t.mem ~now:t.clock ~addr ~bytes in
  t.clock <- t.clock + lat;
  t.instrs <- t.instrs + 1;
  charge_class t cls lat

let write t ~cls ~addr ~bytes =
  (match t.trace with Some tr -> Trace.set_cls tr (Some cls) | None -> ());
  let lat = Memsim.Hierarchy.write t.mem ~now:t.clock ~addr ~bytes in
  t.clock <- t.clock + lat;
  t.instrs <- t.instrs + 1;
  charge_class t cls lat

let read_sref t (s : Sref.t) = read t ~cls:s.Sref.cls ~addr:s.Sref.addr ~bytes:s.Sref.bytes

(* Issue a software prefetch; costs one instruction and a cycle per issued
   line, never blocks. Returns the number of fills actually issued. *)
let prefetch t ~addr ~bytes =
  let start = t.clock in
  let issued = Memsim.Hierarchy.prefetch t.mem ~now:t.clock ~addr ~bytes in
  if issued > 0 then begin
    t.clock <- t.clock + issued;
    t.instrs <- t.instrs + issued;
    match t.trace with
    | Some tr -> Trace.on_prefetch tr ~ts:start ~dur:issued ~lines:issued
    | None -> ()
  end;
  issued

let ready t ~addr ~bytes = Memsim.Hierarchy.ready t.mem ~now:t.clock ~addr ~bytes

let counters t = Memsim.Hierarchy.counters t.mem

let state_access_cycles t cls = t.cycles_by_class.(class_index cls)
