(** The per-packet run-to-completion baseline (§II-B): the execution model
    of BESS / FastClick / L25GC / Free5GC. Each packet runs start-to-finish
    with no yielding; every state access demand-fetches and stalls for the
    full latency of whatever level serves it. Executes the same compiled
    {!Program} (prefetch policies ignored), so comparisons isolate exactly
    the execution model. *)

(** [on_complete] observes each finished task (terminal event, packet,
    flow hint) just before it is retired — the differential oracle's tap.
    [fault] supplies the run's fault-injection plane; when omitted a fresh
    empty plane is used, so containment is always on but behaviour is
    byte-identical to a plane-less run. [telemetry] attaches the span
    tracer for the duration of the run; its hooks never charge cycles, so
    traced and untraced runs are cycle-identical. [quiesce] is polled
    before each pull (every RTC pull boundary is quiescent); once it
    answers [true] the run returns with pulled = completed. *)
val run :
  ?label:string -> ?quiesce:(unit -> bool) -> ?fault:Fault.t ->
  ?telemetry:Trace.t -> ?on_complete:(Nftask.t -> unit) -> Worker.t ->
  Program.t -> Workload.source -> Metrics.run
