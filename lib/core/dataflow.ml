(* Generic forward dataflow over the control-logic FSM.

   One join-over-paths fixpoint serves both the compiler's
   redundant-prefetch removal (a must-analysis: meet = intersection,
   facts initialised to the optimistic universe) and the static analyzer's
   lints (prefetch availability, temp-state must-writes). The iteration is
   Gauss-Seidel over the state array, exactly as the original ad-hoc pass
   in {!Compiler} iterated, so refactored clients converge to the same
   fixpoint. *)

type 'fact result = { ins : 'fact array; outs : 'fact array }

let forward fsm ~entry ~entry_out ~init ~no_pred ~join ~equal ~transfer =
  let n = Fsm.n_states fsm in
  let outs = Array.make n init in
  outs.(entry) <- entry_out;
  let preds = Array.init n (Fsm.predecessors fsm) in
  let in_of i =
    match preds.(i) with
    | [] -> no_pred
    | p :: rest -> List.fold_left (fun acc q -> join acc outs.(q)) outs.(p) rest
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if i <> entry then begin
        let out = transfer i (in_of i) in
        if not (equal out outs.(i)) then begin
          outs.(i) <- out;
          changed := true
        end
      end
    done
  done;
  { ins = Array.init n in_of; outs }

(* ----- reachability helpers (used by the FSM-hygiene lints and for
   witness paths in findings) ----- *)

let reachable fsm ~entry =
  let n = Fsm.n_states fsm in
  let seen = Array.make n false in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | s :: rest ->
        let nexts =
          List.filter
            (fun d ->
              if seen.(d) then false
              else begin
                seen.(d) <- true;
                true
              end)
            (Fsm.successors fsm s)
        in
        go (nexts @ rest)
  in
  seen.(entry) <- true;
  go [ entry ];
  seen

let coreachable fsm ~exit_ =
  let n = Fsm.n_states fsm in
  let seen = Array.make n false in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | s :: rest ->
        let nexts =
          List.filter
            (fun p ->
              if seen.(p) then false
              else begin
                seen.(p) <- true;
                true
              end)
            (Fsm.predecessors fsm s)
        in
        go (nexts @ rest)
  in
  seen.(exit_) <- true;
  go [ exit_ ];
  seen

(* Shortest __start-to-target path by BFS; the state-name list is attached
   to findings as the path witness. *)
let witness fsm ~entry ~target =
  let n = Fsm.n_states fsm in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(entry) <- true;
  let q = Queue.create () in
  Queue.add entry q;
  let found = ref (entry = target) in
  while (not !found) && not (Queue.is_empty q) do
    let s = Queue.pop q in
    List.iter
      (fun d ->
        if not seen.(d) then begin
          seen.(d) <- true;
          parent.(d) <- s;
          if d = target then found := true else Queue.add d q
        end)
      (Fsm.successors fsm s)
  done;
  if not !found then None
  else begin
    let rec back acc s = if s = entry then entry :: acc else back (s :: acc) parent.(s) in
    Some (back [] target)
  end

(* ----- small list-as-set operations shared by the fact lattices ----- *)

module Set_ops = struct
  let mem ~equal x xs = List.exists (equal x) xs
  let inter ~equal a b = List.filter (fun x -> mem ~equal x b) a

  let union ~equal a b =
    List.fold_left (fun acc x -> if mem ~equal x acc then acc else x :: acc) a b

  let subset ~equal a b = List.for_all (fun x -> mem ~equal x b) a
  let set_equal ~equal a b = subset ~equal a b && subset ~equal b a
end
