(* Run-to-completion with batched software prefetching — the prior-art
   baseline the paper positions against (§II-C): CuckooSwitch / G-opt style
   batch lookups.

   For each RX batch the executor performs a prefetch pass and then a
   processing pass:
   - prefetch pass: for every packet, run the NF's leading match actions
     far enough to *resolve* the first dependent state address (key
     extraction + first hash), and issue a prefetch for it, plus the packet
     headers;
   - processing pass: run each packet to completion.

   This captures exactly what single-stream batching can and cannot do:
   the first bucket of the first classifier is covered, but every
   control-flow-dependent access after it (second cuckoo bucket, key-store
   line, tree descent, per-flow state, later NFs of an SFC) is a demand
   miss — the control-flow divergence limitation the interleaved
   function-stream model removes. *)

let default_batch = 32

(* Control states whose action resolves the next match address without
   needing any not-yet-prefetched state: the prefix we may pre-run. A
   conservative, structural choice: the entry state (key extraction, needs
   only the packet) and states reached from it by pure-compute actions
   (hash). We identify the prefix as the chain up to the first state whose
   prefetch policy demands Match_addrs — that state's address is what the
   prefix resolved. *)
let prefix_of program =
  let rec walk cs acc depth =
    if depth > 4 then List.rev acc
    else
      let info = Program.info program cs in
      let wants_match =
        List.exists
          (fun t -> match Prefetch.class_of t with `Match_addrs -> true | _ -> false)
          info.Program.prefetch
      in
      if wants_match then List.rev acc
      else
        match info.Program.action with
        | None -> List.rev acc
        | Some _ -> (
            (* Follow the unique expected-success edge if unambiguous. *)
            match Fsm.successors program.Program.fsm cs with
            | [ next ] -> walk next (cs :: acc) (depth + 1)
            | _ -> List.rev (cs :: acc))
  in
  let first = Program.step program (Program.start program) Event.Packet_arrival in
  walk first [] 0

let run ?label ?(batch = default_batch) ?quiesce ?fault ?telemetry ?on_complete
    (worker : Worker.t) (program : Program.t) (source : Workload.source) =
  if batch <= 0 then invalid_arg "Batch_rtc.run: batch must be positive";
  let label =
    Option.value label ~default:(Printf.sprintf "%s/batch-rtc" (Program.name program))
  in
  let ctx = Worker.ctx worker in
  let cfg = worker.Worker.cfg in
  let snap = Worker.snapshot worker in
  let plane = match fault with Some p -> p | None -> Fault.create () in
  (* Telemetry hooks: [tel] is a no-op without a plane and never charges
     cycles, so traced and untraced runs are cycle-identical. *)
  let tel f = match telemetry with Some tr -> f tr | None -> () in
  (match telemetry with Some tr -> Exec_ctx.attach_trace ctx tr | None -> ());
  (* Specialized hot path (see rtc.ml): dense Δ dispatch always, fused
     runners only while untraced so span hooks keep their interpreted
     ordering. This executor treats action-less states as pass-ends rather
     than errors, so the fast path consults [has_action] before running a
     fused closure (which would raise). *)
  let spec = Specialize.get program in
  let step_fn =
    match spec with
    | Some sp -> fun cs ev -> Specialize.step sp cs ev
    | None -> fun cs ev -> Program.step program cs ev
  in
  let fast_runners =
    match (spec, telemetry) with
    | Some sp, None ->
        Some
          (Specialize.runners sp plane ~err:(fun q ->
               Printf.sprintf "Batch_rtc: control state %s has no action" q))
    | _ -> None
  in
  let has_action =
    match fast_runners with
    | Some _ ->
        Array.map (fun ci -> Option.is_some ci.Program.action) program.Program.info
    | None -> [||]
  in
  let packets = ref 0 in
  let drops = ref 0 in
  let wire_bytes = ref 0 in
  let faulted = ref 0 in
  let latencies = Metrics.Collector.create () in
  let tasks = Array.init batch Nftask.create in
  let prefix = prefix_of program in
  let is_faulted (task : Nftask.t) =
    match task.Nftask.event with Event.Faulted _ -> true | _ -> false
  in
  let rec fill n =
    if n = batch then n
    else
      match source () with
      | None -> n
      | Some item ->
          let task = tasks.(n) in
          Nftask.load task ~cs:(Program.start program) ?packet:item.Workload.packet
            ~aux:item.Workload.aux ~flow_hint:item.Workload.flow_hint ();
          task.Nftask.start_clock <- ctx.Exec_ctx.clock;
          Exec_ctx.compute ctx ~cycles:cfg.Worker.rx_tx_cycles
            ~instrs:cfg.Worker.rx_tx_instrs;
          tel (fun tr ->
              Trace.on_pull tr ~ts:task.Nftask.start_clock
                ~dur:cfg.Worker.rx_tx_cycles ~task:task.Nftask.id
                ~flow:task.Nftask.flow_hint;
              Trace.on_parse tr ~ts:ctx.Exec_ctx.clock ~task:task.Nftask.id);
          (* Load-time quarantines are only *marked* here; the task is
             finalised by the processing pass, in slot order, so per-flow
             completion order matches the other executors. *)
          (match Fault.on_load plane ~mem:ctx.Exec_ctx.mem ~now:ctx.Exec_ctx.clock task with
          | Some r -> task.Nftask.event <- Event.Faulted (Fault.reason_to_key r)
          | None -> ());
          fill (n + 1)
  in
  let prefetch_pass n =
    for i = 0 to n - 1 do
      let task = tasks.(i) in
      tel (fun tr -> Trace.set_task tr ~task:task.Nftask.id);
      if not (is_faulted task) then begin
        (* Packet headers are known: prefetch them. *)
        (match task.Nftask.packet with
        | Some p when p.Netcore.Packet.sim_addr >= 0 ->
            ignore (Exec_ctx.prefetch ctx ~addr:p.Netcore.Packet.sim_addr ~bytes:64)
        | Some _ | None -> ());
        (* Pre-run the pure prefix (key + first hash) to resolve the first
           bucket, then prefetch it. The prefix's compute is charged here;
           the processing pass will not repeat it. *)
        task.Nftask.cs <- step_fn (Program.start program) Event.Packet_arrival;
        let rec pre = function
          | [] -> ()
          | cs :: rest when cs = task.Nftask.cs -> (
              let info = Program.info program cs in
              match info.Program.action with
              | None -> ()
              | Some action ->
                  (match fast_runners with
                  | Some r -> task.Nftask.event <- r.(cs) ctx task
                  | None ->
                      tel (fun tr ->
                          Trace.on_action_start tr ~ts:ctx.Exec_ctx.clock
                            ~nf:info.Program.inst ~cs:info.Program.qname);
                      task.Nftask.event <-
                        Fault.guard plane ~nf:info.Program.inst action ctx task;
                      tel (fun tr -> Trace.on_action_end tr ~ts:ctx.Exec_ctx.clock));
                  if not (is_faulted task) then begin
                    task.Nftask.cs <- step_fn cs task.Nftask.event;
                    Exec_ctx.compute ctx ~cycles:cfg.Worker.rtc_dispatch_cycles ~instrs:2;
                    pre rest
                  end)
          | _ :: _ -> ()
        in
        pre prefix;
        if not (is_faulted task) then
          List.iter
            (fun (addr, bytes) -> ignore (Exec_ctx.prefetch ctx ~addr ~bytes))
            task.Nftask.match_addrs
      end
    done
  in
  let process_pass n =
    for i = 0 to n - 1 do
      let task = tasks.(i) in
      tel (fun tr -> Trace.set_task tr ~task:task.Nftask.id);
      let rec go () =
        if is_faulted task then () (* quarantined; stop executing *)
        else
          let cs = task.Nftask.cs in
          if Program.is_done program cs then ()
          else
            match fast_runners with
            | Some r ->
                if has_action.(cs) then begin
                  Exec_ctx.compute ctx ~cycles:cfg.Worker.rtc_dispatch_cycles ~instrs:2;
                  task.Nftask.event <- r.(cs) ctx task;
                  if not (is_faulted task) then
                    task.Nftask.cs <- step_fn cs task.Nftask.event;
                  go ()
                end
            | None -> (
                let info = Program.info program cs in
                match info.Program.action with
                | None -> ()
                | Some action ->
                    Exec_ctx.compute ctx ~cycles:cfg.Worker.rtc_dispatch_cycles ~instrs:2;
                    tel (fun tr ->
                        Trace.on_action_start tr ~ts:ctx.Exec_ctx.clock
                          ~nf:info.Program.inst ~cs:info.Program.qname);
                    task.Nftask.event <-
                      Fault.guard plane ~nf:info.Program.inst action ctx task;
                    tel (fun tr -> Trace.on_action_end tr ~ts:ctx.Exec_ctx.clock);
                    if not (is_faulted task) then
                      task.Nftask.cs <- step_fn cs task.Nftask.event;
                    go ())
      in
      go ();
      incr packets;
      (match
         Fault.complete plane ~flow:task.Nftask.flow_hint
           ~faulted:(Fault.reason_of_event task.Nftask.event)
       with
      | Some r ->
          incr faulted;
          task.Nftask.event <- Event.Faulted (Fault.reason_to_key r)
      | None ->
          let dropped =
            Event.equal task.Nftask.event Event.Drop_packet
            || Event.equal task.Nftask.event Event.Match_fail
          in
          if dropped then incr drops
          else (
            match task.Nftask.packet with
            | Some p -> wire_bytes := !wire_bytes + p.Netcore.Packet.wire_len
            | None -> ());
          Metrics.Collector.record latencies
            (ctx.Exec_ctx.clock - task.Nftask.start_clock));
      tel (fun tr ->
          Trace.on_complete tr ~ts:ctx.Exec_ctx.clock ~task:task.Nftask.id
            ~note:(Event.to_key task.Nftask.event)
            ~latency:(ctx.Exec_ctx.clock - task.Nftask.start_clock));
      (match on_complete with Some f -> f task | None -> ());
      Nftask.retire task
    done
  in
  (* Batch boundaries are quiescent (the previous batch fully completed),
     so the pause hook is polled before each fill; a hook that never
     answers [true] leaves the run byte-identical to one without it. *)
  let want_pause () = match quiesce with Some q -> q () | None -> false in
  let rec loop () =
    if want_pause () then ()
    else
      let n = fill 0 in
      if n > 0 then begin
        prefetch_pass n;
        process_pass n;
        if n = batch then loop ()
      end
  in
  Fun.protect
    ~finally:(fun () ->
      match telemetry with Some _ -> Exec_ctx.detach_trace ctx | None -> ())
    loop;
  Worker.finish
    ?latency:(Metrics.Collector.summarize latencies)
    ~faulted:!faulted ~faults:(Fault.counts plane) ~degraded:(Fault.degraded plane)
    worker snap ~label ~packets:!packets ~drops:!drops ~wire_bytes:!wire_bytes
    ~switches:0
