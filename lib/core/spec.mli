(** Module / NF specifications (§IV-B, Fig 6, Listings 1-3): a module spec
    declares one granularly decomposed module's control-logic FSM — its
    transitions and, per control state, the NFStates its action accesses
    (the fetching function F). An NF spec composes module instances by
    wiring exit events to the next instance. *)

exception Spec_error of string

type transition = { src : string; event : string; dst : string }

type module_spec = {
  m_name : string;
  m_category : string;  (** e.g. StatefulClassifier, StatefulNF *)
  m_parameters : string list;  (** operator-configurable parameters *)
  m_transitions : transition list;
  m_fetching : (string * string list) list;  (** control state -> state names *)
  m_states : (string * string) list;  (** state name -> class name *)
  m_nfc : (string * string) list;
      (** control state -> NF-C action source (single-line); the declared
          implementation the static analyzer checks against the fetching
          declaration *)
}

type nf_spec = {
  n_name : string;
  n_modules : (string * string) list;  (** instance name -> module type *)
  n_transitions : transition list;  (** instance-level wiring *)
}

val start_state : string
val end_state : string

(** Parse ["src,event->dst"]. @raise Spec_error when malformed. *)
val parse_transition : string -> transition

(** @raise Spec_error on parse or structural errors. *)
val module_spec_of_string : string -> module_spec

val nf_spec_of_string : string -> nf_spec

(** All control states mentioned by the transitions. *)
val control_states_of : module_spec -> string list

(** Structural validation: Start/End present, deterministic Δ, fetching
    refers to known control states and declared NFStates, NF-C bodies
    attach to known control states and parse, all states reachable.
    @raise Spec_error on violations. *)
val validate_module : module_spec -> unit

(** @raise Spec_error on unknown module types or instances. *)
val validate_nf : nf_spec -> known_modules:string list -> unit
