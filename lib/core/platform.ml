(* Multi-core platform (§VII-C): share-nothing per-core runtimes. RSS
   steers each flow to one core, so cores touch disjoint state and scale
   independently; we model this by giving every worker its own simulated
   memory, substrate instances and traffic slice.

   LLC capacity is partitioned across active cores (the paper's testbed
   shares a 33 MiB LLC among cores of one socket). *)

type t = {
  workers : Worker.t array;
  cfg : Worker.cfg;
}

let create ?(cfg = Worker.default_cfg) ~cores () =
  if cores <= 0 then invalid_arg "Platform.create: cores must be positive";
  let mem_cfg = cfg.Worker.mem_cfg in
  let llc_share =
    (* Keep the geometry valid: power-of-two set count per way. *)
    let per_core = mem_cfg.Memsim.Hierarchy.llc_size / cores in
    let line_assoc = mem_cfg.Memsim.Hierarchy.line_bytes * mem_cfg.Memsim.Hierarchy.llc_assoc in
    let sets = max 1 (per_core / line_assoc) in
    let rec pow2_below v acc = if acc * 2 > v then acc else pow2_below v (acc * 2) in
    pow2_below sets 1 * line_assoc
  in
  let cfg =
    { cfg with Worker.mem_cfg = { mem_cfg with Memsim.Hierarchy.llc_size = llc_share } }
  in
  { workers = Array.init cores (fun id -> Worker.create ~cfg ~id ()); cfg }

let cores t = Array.length t.workers
let config t = t.cfg
let worker t i = t.workers.(i)
let workers t = t.workers

(* Run one experiment on every core. [setup] builds the per-core NF and its
   traffic slice (cores are share-nothing, so each gets fresh substrate
   state); returns the per-core runs, mergeable with
   {!Metrics.merge_parallel}. *)
let run t ~setup ~execute =
  Array.to_list
    (Array.map
       (fun w ->
         let program, source = setup w (Worker.id w) in
         execute w program source)
       t.workers)

let run_interleaved t ~n_tasks ~setup =
  run t ~setup ~execute:(fun w program source ->
      Scheduler.run w program ~n_tasks source)

let run_rtc t ~setup =
  run t ~setup ~execute:(fun w program source -> Rtc.run w program source)
