(* Multi-core platform (§VII-C): share-nothing per-core runtimes. RSS
   steers each flow to one core, so cores touch disjoint state and scale
   independently; we model this by giving every worker its own simulated
   memory, substrate instances and traffic slice.

   LLC capacity is partitioned across active cores (the paper's testbed
   shares a 33 MiB LLC among cores of one socket). *)

type t = {
  workers : Worker.t array;
  cfg : Worker.cfg;
}

let create ?(cfg = Worker.default_cfg) ~cores () =
  if cores <= 0 then invalid_arg "Platform.create: cores must be positive";
  let mem_cfg = cfg.Worker.mem_cfg in
  let llc_share =
    (* Keep the geometry valid: power-of-two set count per way. *)
    let per_core = mem_cfg.Memsim.Hierarchy.llc_size / cores in
    let line_assoc = mem_cfg.Memsim.Hierarchy.line_bytes * mem_cfg.Memsim.Hierarchy.llc_assoc in
    let sets = max 1 (per_core / line_assoc) in
    let rec pow2_below v acc = if acc * 2 > v then acc else pow2_below v (acc * 2) in
    pow2_below sets 1 * line_assoc
  in
  let cfg =
    { cfg with Worker.mem_cfg = { mem_cfg with Memsim.Hierarchy.llc_size = llc_share } }
  in
  { workers = Array.init cores (fun id -> Worker.create ~cfg ~id ()); cfg }

let cores t = Array.length t.workers
let config t = t.cfg
let worker t i = t.workers.(i)
let workers t = t.workers

(* Run one experiment on every core. [setup] builds the per-core NF and its
   traffic slice (cores are share-nothing, so each gets fresh substrate
   state); returns the per-core runs, mergeable with
   {!Metrics.merge_parallel}. *)
let run t ~setup ~execute =
  Array.to_list
    (Array.map
       (fun w ->
         let program, source = setup w (Worker.id w) in
         execute w program source)
       t.workers)

let run_interleaved t ~n_tasks ~setup =
  run t ~setup ~execute:(fun w program source ->
      Scheduler.run w program ~n_tasks source)

let run_rtc t ~setup =
  run t ~setup ~execute:(fun w program source -> Rtc.run w program source)

(* --- crash recovery: epoch checkpoints + bounded replay log ----------- *)

(* Per-core recovery journal. Every [epoch] pulls the core exports its
   per-flow state (the checkpoint — an opaque payload here, produced by the
   Migration layer which lives above lib/core) and trims the replay log;
   between checkpoints every pulled item is appended to the log. After a
   core dies, an adopter restores the last checkpoint and replays the
   logged suffix, which by construction is exactly the work since that
   checkpoint. The journal is pure bookkeeping: recording a clone and
   exporting state never touches the simulated memory hierarchy, so a run
   with journaling enabled is cycle- and byte-identical to one without
   (the inert-plane property, pinned by test_recovery.ml). *)
module Recovery = struct
  type plan = { epoch : int; log_capacity : int }

  (* Epoch small enough that replay is cheap, log deep enough that a whole
     epoch always fits (journal validates epoch <= log_capacity). *)
  let default_plan = { epoch = 32; log_capacity = 256 }

  (* RSS pinning: the core owning a flow hint. Hint-less items (< 0) fall
     to core 0. *)
  let owner ~cores hint =
    if cores <= 0 then invalid_arg "Platform.Recovery.owner: cores must be positive";
    if hint < 0 then 0 else hint mod cores

  (* One pulled item as the log retains it: a clone of the packet (same id
     — replay must look like the same packet to dedup and fault plane),
     the workload hint/aux, and the fault injection that was armed for it,
     if any, so replay re-arms it instead of re-drawing. *)
  type entry = {
    e_pkt : Netcore.Packet.t option;
    e_hint : int;
    e_aux : int;
    e_inj : Fault.injection option;
  }

  type 'a journal = {
    plan : plan;
    mutable ckpt : 'a option;  (* last checkpoint payload *)
    mutable log : entry list;  (* newest first *)
    mutable log_len : int;
    mutable pulls : int;  (* items recorded since creation *)
    mutable trimmed : int;  (* log entries retired by checkpoints *)
    mutable overflowed : int;  (* entries lost to the capacity bound *)
  }

  let journal plan =
    if plan.epoch <= 0 then
      invalid_arg "Platform.Recovery.journal: epoch must be positive";
    if plan.log_capacity < plan.epoch then
      invalid_arg "Platform.Recovery.journal: log_capacity must cover one epoch";
    { plan; ckpt = None; log = []; log_len = 0; pulls = 0; trimmed = 0;
      overflowed = 0 }

  (* A checkpoint is due before pulls #0, #epoch, #2*epoch, ... *)
  let boundary j = j.pulls mod j.plan.epoch = 0

  let checkpoint j state =
    j.ckpt <- Some state;
    j.trimmed <- j.trimmed + j.log_len;
    j.log <- [];
    j.log_len <- 0

  let record j e =
    j.pulls <- j.pulls + 1;
    j.log <- e :: j.log;
    j.log_len <- j.log_len + 1;
    if j.log_len > j.plan.log_capacity then begin
      (* Cannot happen when the owner checkpoints at every boundary
         (epoch <= capacity); bound the log anyway and surface the loss. *)
      (match List.rev j.log with
      | [] -> ()
      | _oldest :: rest -> j.log <- List.rev rest);
      j.log_len <- j.log_len - 1;
      j.overflowed <- j.overflowed + 1
    end

  let last_checkpoint j = j.ckpt
  let suffix j = List.rev j.log
  let recorded j = j.pulls
  let trimmed j = j.trimmed
  let overflowed j = j.overflowed
end
