(** The director compiler (§VI): specifications + the NFAction
    implementation library -> an executable {!Program}.

    Passes: flattening of module FSMs along the NF-level wiring;
    redundant-matching removal (classifier instances repeating an earlier
    instance's key reuse its match result and disappear); and
    redundant-prefetch removal (a forward must-analysis strips prefetch
    targets already fetched on every path and not invalidated since). *)

exception Compile_error of string

(** A module instance: its spec, the action implementation per control
    state, the binding from spec state names to prefetch targets, and — for
    classifiers — the key kind they match on (equal key kinds make a later
    classifier redundant). *)
type instance = {
  i_name : string;
  i_spec : Spec.module_spec;
  i_actions : (string * Action.t) list;
  i_bindings : (string * Prefetch.target) list;
  i_key_kind : string option;
}

(** Run the static analyzer (the [analysis] library, reached through
    {!set_lint_hook}) on every compile: [`Warn] prints findings, [`Error]
    additionally fails compilation on error-severity findings. *)
type lint_level = [ `Off | `Warn | `Error ]

type opts = {
  match_removal : bool;
  prefetch_dedup : bool;
  prefetching : bool;  (** [false]: compile with empty prefetch policies *)
  lint : lint_level;
  specialize : bool;
      (** attach the specialized hot path ({!Specialize.install}) to the
          compiled program *)
}

(** prefetching on, dedup on, match removal off, lint off, specialize
    off. *)
val default_opts : opts

(** What the analyzer sees: the compile pipeline stopped just before
    prefetch dedup — instances and NF wiring post match-removal, the
    flattened FSM, and per-state info with the full declared prefetch
    policy. *)
type lint_input = {
  li_name : string;
  li_instances : instance list;
  li_nf : Spec.nf_spec;
  li_fsm : Fsm.t;
  li_info : Program.cs_info array;
  li_start : int;
  li_done : int;
  li_opts : opts;
}

(** Install the analyzer. The hook is expected to print warning-severity
    findings and raise {!Compile_error} on error-severity findings when
    [li_opts.lint = `Error]. *)
val set_lint_hook : (lint_input -> unit) -> unit

(** Build a {!lint_input} without running dedup or the hook (the [lint]
    subcommand's entry point). @raise Compile_error / {!Spec.Spec_error}
    like {!compile}. *)
val lint_view :
  ?opts:opts -> name:string -> instance list -> Spec.nf_spec -> lint_input

(** @raise Compile_error (or {!Spec.Spec_error}) on invalid specs, missing
    action implementations, missing prefetch bindings, or — with
    [opts.lint = `Error] — analyzer findings. *)
val compile : ?opts:opts -> name:string -> instance list -> Spec.nf_spec -> Program.t

(** Exposed for tests: the match-removal rewrite on the instance graph. *)
val remove_redundant_matching :
  instance list -> Spec.nf_spec -> instance list * Spec.nf_spec

(** The forward must-analysis behind redundant-prefetch removal, on the
    shared {!Dataflow} fixpoint: per-state prefetch targets available on
    entry ([ins]) / exit ([outs]) along every path from [start]. The
    analyzer's cold-access and short-distance lints reuse it. *)
val prefetch_availability :
  Program.cs_info array -> Fsm.t -> start:int -> Prefetch.target list Dataflow.result

(** Exposed for tests: the prefetch must-analysis; returns removed-target
    count. *)
val remove_redundant_prefetch : Program.cs_info array -> Fsm.t -> start:int -> int
