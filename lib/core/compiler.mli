(** The director compiler (§VI): specifications + the NFAction
    implementation library -> an executable {!Program}.

    Passes: flattening of module FSMs along the NF-level wiring;
    redundant-matching removal (classifier instances repeating an earlier
    instance's key reuse its match result and disappear); and
    redundant-prefetch removal (a forward must-analysis strips prefetch
    targets already fetched on every path and not invalidated since). *)

exception Compile_error of string

(** A module instance: its spec, the action implementation per control
    state, the binding from spec state names to prefetch targets, and — for
    classifiers — the key kind they match on (equal key kinds make a later
    classifier redundant). *)
type instance = {
  i_name : string;
  i_spec : Spec.module_spec;
  i_actions : (string * Action.t) list;
  i_bindings : (string * Prefetch.target) list;
  i_key_kind : string option;
}

(** Run the static analyzer (the [analysis] library, reached through
    {!set_lint_hook}) on every compile: [`Warn] prints findings, [`Error]
    additionally fails compilation on error-severity findings. *)
type lint_level = [ `Off | `Warn | `Error ]

type opts = {
  match_removal : bool;
  prefetch_dedup : bool;
  prefetching : bool;  (** [false]: compile with empty prefetch policies *)
  lint : lint_level;
  verify_passes : lint_level;
      (** translation validation (the [analysis] library's symbolic
          checker, reached through {!set_verify_hook}): prove each
          optimization pass preserved observations. [`Error] fails the
          compile on a refuted pass; [Unknown] verdicts only warn — the
          dynamic oracle still covers them. *)
  specialize : bool;
      (** attach the specialized hot path ({!Specialize.install}) to the
          compiled program *)
}

(** prefetching on, dedup on, match removal off, lint off, verification
    off, specialize off. *)
val default_opts : opts

(** What the analyzer sees: the compile pipeline stopped just before
    prefetch dedup — instances and NF wiring post match-removal, the
    flattened FSM, and per-state info with the full declared prefetch
    policy. *)
type lint_input = {
  li_name : string;
  li_instances : instance list;
  li_nf : Spec.nf_spec;
  li_fsm : Fsm.t;
  li_info : Program.cs_info array;
  li_start : int;
  li_done : int;
  li_opts : opts;
}

(** Install the analyzer. The hook is expected to print warning-severity
    findings and raise {!Compile_error} on error-severity findings when
    [li_opts.lint = `Error]. *)
val set_lint_hook : (lint_input -> unit) -> unit

(** Build a {!lint_input} without running dedup or the hook (the [lint]
    subcommand's entry point). @raise Compile_error / {!Spec.Spec_error}
    like {!compile}. *)
val lint_view :
  ?opts:opts -> name:string -> instance list -> Spec.nf_spec -> lint_input

(** What the translation validator sees: the spec-level program before
    any pass ([vi_orig_*]), the post-match-removal form, the declared
    per-state prefetch policy before dedup stripped it, and the finished
    {!Program.t} (with the specialized hot path installed when
    [vi_opts.specialize]). *)
type verify_input = {
  vi_name : string;
  vi_opts : opts;
  vi_orig_instances : instance list;
  vi_orig_nf : Spec.nf_spec;
  vi_instances : instance list;
  vi_nf : Spec.nf_spec;
  vi_pre_dedup : Prefetch.target list array;
  vi_program : Program.t;
}

(** Install the translation validator. The hook is expected to print
    warning-severity findings and raise {!Compile_error} on refutations
    when [vi_opts.verify_passes = `Error]. *)
val set_verify_hook : (verify_input -> unit) -> unit

(** Run the full compile pipeline (validation, match removal, flattening,
    dedup, specialization) WITHOUT the lint/verify hooks and return the
    validator's input — for standalone checking (CLI, fuzzing) where the
    caller interprets the verdicts itself.
    @raise Compile_error / {!Spec.Spec_error} like {!compile}. *)
val verify_view :
  ?opts:opts -> name:string -> instance list -> Spec.nf_spec -> verify_input

(** @raise Compile_error (or {!Spec.Spec_error}) on invalid specs, missing
    action implementations, missing prefetch bindings, or — with
    [opts.lint = `Error] — analyzer findings. *)
val compile : ?opts:opts -> name:string -> instance list -> Spec.nf_spec -> Program.t

(** Exposed for tests: the match-removal rewrite on the instance graph. *)
val remove_redundant_matching :
  instance list -> Spec.nf_spec -> instance list * Spec.nf_spec

(** The forward must-analysis behind redundant-prefetch removal, on the
    shared {!Dataflow} fixpoint: per-state prefetch targets available on
    entry ([ins]) / exit ([outs]) along every path from [start]. The
    analyzer's cold-access and short-distance lints reuse it. *)
val prefetch_availability :
  Program.cs_info array -> Fsm.t -> start:int -> Prefetch.target list Dataflow.result

(** Exposed for tests: the prefetch must-analysis; returns removed-target
    count. *)
val remove_redundant_prefetch : Program.cs_info array -> Fsm.t -> start:int -> int
