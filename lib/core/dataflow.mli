(** Generic forward dataflow over {!Fsm.t}: one join-over-paths fixpoint
    shared by the compiler's redundant-prefetch removal and the static
    analyzer's lints, plus the reachability helpers the FSM-hygiene rules
    and path witnesses are built from. *)

type 'fact result = {
  ins : 'fact array;  (** fact at state entry: join over predecessor outs *)
  outs : 'fact array;  (** fact after the state's transfer function *)
}

(** [forward fsm ~entry ~entry_out ~init ~no_pred ~join ~equal ~transfer]
    iterates [out(i) := transfer i (join over preds' outs)] to a fixpoint.
    [entry]'s out-fact is pinned to [entry_out]; all other outs start at
    [init] (the optimistic top for a must-analysis); a state with no
    predecessors gets [no_pred] as its in-fact. [transfer] must be
    monotone for termination. *)
val forward :
  Fsm.t ->
  entry:int ->
  entry_out:'fact ->
  init:'fact ->
  no_pred:'fact ->
  join:('fact -> 'fact -> 'fact) ->
  equal:('fact -> 'fact -> bool) ->
  transfer:(int -> 'fact -> 'fact) ->
  'fact result

(** States reachable from [entry] (including [entry]). *)
val reachable : Fsm.t -> entry:int -> bool array

(** States from which [exit_] is reachable (including [exit_]). *)
val coreachable : Fsm.t -> exit_:int -> bool array

(** Shortest [entry]-to-[target] path (state ids, both endpoints
    included), or [None] when unreachable. *)
val witness : Fsm.t -> entry:int -> target:int -> int list option

(** Lists as sets under a caller-supplied element equality. *)
module Set_ops : sig
  val mem : equal:('a -> 'a -> bool) -> 'a -> 'a list -> bool
  val inter : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> 'a list
  val union : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> 'a list
  val subset : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
  val set_equal : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
end
