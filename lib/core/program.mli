(** A compiled network function: the flattened control-logic FSM plus, per
    control state, the fetching function's output — the NFAction to run and
    the NFState targets to prefetch (F of §IV-A, produced by the director
    compiler of §VI). *)

type cs_info = {
  qname : string;  (** "instance.control_state" *)
  inst : string;
  action : Action.t option;  (** [None] only for pseudo states *)
  mutable prefetch : Prefetch.target list;
}

(** Extension point for compiled artifacts attached by optimization passes
    (the specializer's dense dispatch tables); keeps this module free of a
    dependency on the passes themselves. *)
type payload = ..

type t = {
  p_name : string;
  fsm : Fsm.t;
  info : cs_info array;
  start : int;
  done_cs : int;
  mutable payload : payload option;
}

val name : t -> string
val n_states : t -> int
val info : t -> int -> cs_info
val start : t -> int
val is_done : t -> int -> bool

(** @raise Invalid_argument on unknown names. *)
val cs_by_name : t -> string -> int

(** Δ with a hard failure on undefined transitions (a spec/compiler bug,
    not a runtime condition). @raise Invalid_argument. *)
val step : t -> int -> Event.t -> int

val pp : Format.formatter -> t -> unit
