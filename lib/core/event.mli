(** NFEvents (§IV-A): the notifications control logic transitions on.
    System events originate outside the NF (packet arrival); user events
    are raised by NFActions (e.g. ["hash_done"]). *)

type t =
  | Packet_arrival  (** system event: a packet entered the function stream *)
  | Match_success
  | Match_fail
  | Emit_packet
  | Drop_packet
  | User of string  (** module-defined event *)
  | Faulted of string
      (** containment marker: the task was quarantined by the fault plane;
          carries the {!Fault.reason} wire name. Never fed to
          {!Program.step} — executors terminate faulted tasks directly. *)

(** Stable wire name, as used in specification transitions. *)
val to_key : t -> string

(** Total inverse of {!to_key}; unknown names become [User]. *)
val of_key : string -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
