(* Stable 64-bit digests of observable state (FNV-1a). The differential
   oracle folds each executor run's final NF state into one of these and
   compares the hex strings: equal digests mean equal state without
   shipping the state itself across the comparison. Everything is fed as
   explicit integers/bytes so the digest is independent of in-memory
   representation (hash-table iteration order must be normalized by the
   caller before feeding). *)

type t = { mutable acc : int64 }

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let create () = { acc = offset_basis }

let feed_byte t b =
  t.acc <- Int64.mul (Int64.logxor t.acc (Int64.of_int (b land 0xff))) prime

let feed_int64 t x =
  for i = 0 to 7 do
    feed_byte t (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff)
  done

let feed_int t x = feed_int64 t (Int64.of_int x)
let feed_bool t b = feed_byte t (if b then 1 else 0)

let feed_string t s =
  feed_int t (String.length s);
  String.iter (fun c -> feed_byte t (Char.code c)) s

let feed_bytes t b =
  feed_int t (Bytes.length b);
  Bytes.iter (fun c -> feed_byte t (Char.code c)) b

let feed_sub t b ~off ~len =
  feed_int t len;
  for i = off to off + len - 1 do
    feed_byte t (Char.code (Bytes.get b i))
  done

let feed_int_array t a =
  feed_int t (Array.length a);
  Array.iter (feed_int t) a

let feed_int64_array t a =
  feed_int t (Array.length a);
  Array.iter (feed_int64 t) a

let value t = t.acc
let to_hex t = Printf.sprintf "%016Lx" t.acc
let equal a b = Int64.equal a.acc b.acc

(* One-shot convenience: digest of a feeding function. *)
let of_fn f =
  let t = create () in
  f t;
  to_hex t
