(* Per-run measurements: the quantities the paper reports in its figures —
   throughput (Mpps / Gbps), IPC, per-level cache misses per packet, and
   the share of time spent in state access. *)

(* Per-packet latency distribution (cycles from arrival to completion). *)
type latency = {
  l_count : int;
  l_mean : float;
  l_p50 : int;
  l_p90 : int;
  l_p99 : int;
  l_max : int;
}

module Collector = struct
  type t = { mutable samples : int array; mutable n : int }

  let create () = { samples = Array.make 1024 0; n = 0 }

  let record t v =
    if t.n = Array.length t.samples then begin
      let bigger = Array.make (2 * t.n) 0 in
      Array.blit t.samples 0 bigger 0 t.n;
      t.samples <- bigger
    end;
    t.samples.(t.n) <- v;
    t.n <- t.n + 1

  let summarize t =
    if t.n = 0 then None
    else begin
      let sorted = Array.sub t.samples 0 t.n in
      Array.sort compare sorted;
      (* Exact nearest-rank: the p-th percentile is the smallest sample
         with at least ceil(p*n/100) samples <= it. *)
      let pct p = sorted.(max 0 (((p * t.n) + 99) / 100 - 1)) in
      let sum = Array.fold_left ( + ) 0 sorted in
      Some
        {
          l_count = t.n;
          l_mean = float_of_int sum /. float_of_int t.n;
          l_p50 = pct 50;
          l_p90 = pct 90;
          l_p99 = pct 99;
          l_max = sorted.(t.n - 1);
        }
    end
end

type run = {
  label : string;
  packets : int;
  drops : int;
  cycles : int;
  instrs : int;
  wire_bytes : int;
  switches : int;  (* NFTask switches (0 for RTC) *)
  mem : Memsim.Memstats.t;
  freq_ghz : float;
  state_cycles : int array;  (* memory cycles per Sref state class *)
  latency : latency option;  (* per-packet latency distribution, if collected *)
  faulted : int;  (* completions quarantined by the fault plane *)
  faults : (string * Fault.reason * int) list;  (* per-NF per-reason taxonomy *)
  degraded : bool;  (* at least one flow was poisoned during the run *)
  imbalance : (float * float) option;
      (* (offered, served) per-core max-to-mean load ratios; [Some] only on
         merged multi-core runs — 1.0 means perfectly balanced, [cores]
         means one core carried everything (skew collapse) *)
}

(* Latency in nanoseconds given the run's clock. *)
let cycles_to_ns r cycles = float_of_int cycles /. r.freq_ghz

let seconds r = float_of_int r.cycles /. (r.freq_ghz *. 1e9)

let mpps r =
  if r.cycles = 0 then 0.0 else float_of_int r.packets /. seconds r /. 1e6

let gbps r =
  if r.cycles = 0 then 0.0
  else float_of_int r.wire_bytes *. 8.0 /. seconds r /. 1e9

(* Aggregate throughput over [cores] replicas, capped at line rate. *)
let gbps_scaled ?(line_rate = 100.0) r ~cores =
  Float.min line_rate (gbps r *. float_of_int cores)

let ipc r = if r.cycles = 0 then 0.0 else float_of_int r.instrs /. float_of_int r.cycles

let cycles_per_packet r =
  if r.packets = 0 then 0.0 else float_of_int r.cycles /. float_of_int r.packets

let per_packet r v = if r.packets = 0 then 0.0 else float_of_int v /. float_of_int r.packets

let l1_misses_per_packet r = per_packet r (Memsim.Memstats.l1_misses r.mem)
let l2_misses_per_packet r = per_packet r (Memsim.Memstats.l2_misses r.mem)
let llc_misses_per_packet r = per_packet r (Memsim.Memstats.llc_misses r.mem)

let l1_hit_rate r = Memsim.Memstats.l1_hit_rate r.mem

(* Fraction of run time spent waiting on the given state classes. *)
let state_access_share r classes =
  if r.cycles = 0 then 0.0
  else
    let cyc =
      List.fold_left
        (fun acc cls -> acc + r.state_cycles.(Exec_ctx.class_index cls))
        0 classes
    in
    float_of_int cyc /. float_of_int r.cycles

let switches_per_second r =
  if r.cycles = 0 then 0.0 else float_of_int r.switches /. seconds r

let pp_row ppf r =
  Fmt.pf ppf
    "%-34s pkts=%-8d %6.2f Mpps %7.2f Gbps ipc=%4.2f cyc/pkt=%7.1f \
     L1m/p=%5.2f L2m/p=%5.2f LLCm/p=%5.2f"
    r.label r.packets (mpps r) (gbps r) (ipc r) (cycles_per_packet r)
    (l1_misses_per_packet r) (l2_misses_per_packet r) (llc_misses_per_packet r);
  (* fault columns appear only when the plane actually quarantined work, so
     fault-free output is byte-identical to the pre-plane format *)
  if r.faulted > 0 then
    Fmt.pf ppf " faulted=%d%s" r.faulted (if r.degraded then " DEGRADED" else "");
  (* imbalance columns appear only on merged multi-core runs, so
     single-core output is byte-identical to the pre-imbalance format *)
  match r.imbalance with
  | Some (off, served) -> Fmt.pf ppf " imb=%.2f/%.2f" off served
  | None -> ()

(* One line per (nf, reason) taxonomy entry; empty output when no faults. *)
let pp_faults ppf r =
  List.iter
    (fun (nf, reason, n) ->
      Fmt.pf ppf "  fault %-16s %-9s x%d@." nf (Fault.reason_to_key reason) n)
    r.faults

(* Combine per-core fault taxonomies: occurrences add per (nf, reason),
   output sorted like Fault.counts. *)
let merge_faults runs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (nf, reason, n) ->
          let k = (nf, reason) in
          Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        r.faults)
    runs;
  Hashtbl.fold (fun (nf, r) n acc -> (nf, r, n) :: acc) tbl []
  |> List.sort (fun (a, ra, _) (b, rb, _) ->
         match String.compare a b with
         | 0 -> String.compare (Fault.reason_to_key ra) (Fault.reason_to_key rb)
         | c -> c)

(* Per-core max-to-mean load ratio over a run set: offered = packets
   pulled, served = completions that made the wire (packets - drops -
   faulted). 1.0 is perfect balance; [cores] is total skew collapse. *)
let load_imbalance runs =
  let ratio f =
    let loads = List.map (fun r -> float_of_int (max 0 (f r))) runs in
    let total = List.fold_left ( +. ) 0. loads in
    if total <= 0. then 1.0
    else
      let mean = total /. float_of_int (List.length loads) in
      List.fold_left max 0. loads /. mean
  in
  ( ratio (fun r -> r.packets),
    ratio (fun r -> r.packets - r.drops - r.faulted) )

(* Sum of parallel per-core runs (multicore experiments): cycles is the max
   (cores run concurrently), counts add. *)
let merge_parallel = function
  | [] -> invalid_arg "Metrics.merge_parallel: empty"
  | first :: _ as runs ->
      let max_cycles = List.fold_left (fun a r -> max a r.cycles) 0 runs in
      let sum f = List.fold_left (fun a r -> a + f r) 0 runs in
      {
        label = first.label;
        packets = sum (fun r -> r.packets);
        drops = sum (fun r -> r.drops);
        cycles = max_cycles;
        instrs = sum (fun r -> r.instrs);
        wire_bytes = sum (fun r -> r.wire_bytes);
        switches = sum (fun r -> r.switches);
        mem = List.fold_left (fun a r -> Memsim.Memstats.add a r.mem) Memsim.Memstats.zero runs;
        freq_ghz = first.freq_ghz;
        state_cycles =
          Array.init Exec_ctx.n_classes (fun i ->
              List.fold_left (fun a r -> a + r.state_cycles.(i)) 0 runs);
        latency = None;
        faulted = sum (fun r -> r.faulted);
        faults = merge_faults runs;
        degraded = List.exists (fun r -> r.degraded) runs;
        imbalance =
          (match runs with [ _ ] -> first.imbalance | _ -> Some (load_imbalance runs));
      }

(* Chain of sequential legs on one core (the adaptive driver's epochs):
   counts and cycles both add. The fault taxonomy is taken from the last
   leg — with a plane shared across the legs [Fault.counts] is cumulative,
   so the last leg already carries the chain's totals ([?faults]
   overrides when the legs used distinct planes). Latency distributions
   are not merged. *)
let merge_sequential ?label ?faults = function
  | [] -> invalid_arg "Metrics.merge_sequential: empty"
  | first :: _ as runs ->
      let last = List.nth runs (List.length runs - 1) in
      let sum f = List.fold_left (fun a r -> a + f r) 0 runs in
      {
        label = (match label with Some l -> l | None -> first.label);
        packets = sum (fun r -> r.packets);
        drops = sum (fun r -> r.drops);
        cycles = sum (fun r -> r.cycles);
        instrs = sum (fun r -> r.instrs);
        wire_bytes = sum (fun r -> r.wire_bytes);
        switches = sum (fun r -> r.switches);
        mem = List.fold_left (fun a r -> Memsim.Memstats.add a r.mem) Memsim.Memstats.zero runs;
        freq_ghz = first.freq_ghz;
        state_cycles =
          Array.init Exec_ctx.n_classes (fun i ->
              List.fold_left (fun a r -> a + r.state_cycles.(i)) 0 runs);
        latency = None;
        faulted = sum (fun r -> r.faulted);
        faults = (match faults with Some f -> f | None -> last.faults);
        degraded = List.exists (fun r -> r.degraded) runs;
        imbalance = None;
      }

let pp_latency ppf (r : run) =
  match r.latency with
  | None -> Fmt.string ppf "latency: not collected"
  | Some l ->
      Fmt.pf ppf
        "latency (ns): mean=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f (%d samples)"
        (cycles_to_ns r (int_of_float l.l_mean))
        (cycles_to_ns r l.l_p50) (cycles_to_ns r l.l_p90) (cycles_to_ns r l.l_p99)
        (cycles_to_ns r l.l_max) l.l_count
