(* Per-core runtime (§V, Fig 8): each worker owns its core's simulated
   memory hierarchy, simulated address space, clock, and the cost model of
   the runtime itself (task-switch, fetch, and packet I/O overheads). *)

type cfg = {
  freq_ghz : float;
  switch_cycles : int;  (* scheduler overhead per NFTask visit *)
  switch_instrs : int;
  fetch_cycles : int;  (* Transition + Fetch step (Algorithm 1 l.15-16) *)
  fetch_instrs : int;
  rx_tx_cycles : int;  (* per-packet I/O (descriptor ring, doorbell) *)
  rx_tx_instrs : int;
  rtc_dispatch_cycles : int;  (* RTC per-action call overhead *)
  mem_cfg : Memsim.Hierarchy.config;
}

let default_cfg =
  {
    freq_ghz = 2.7;
    switch_cycles = 10;
    switch_instrs = 9;
    fetch_cycles = 4;
    fetch_instrs = 4;
    rx_tx_cycles = 40;
    rx_tx_instrs = 30;
    rtc_dispatch_cycles = 3;
    mem_cfg = Memsim.Hierarchy.default_config;
  }

type t = { id : int; cfg : cfg; ctx : Exec_ctx.t }

let create ?(cfg = default_cfg) ~id () =
  { id; cfg; ctx = Exec_ctx.create ~mem_cfg:cfg.mem_cfg () }

let ctx t = t.ctx
let layout t = t.ctx.Exec_ctx.layout
let id t = t.id

(* Measurement bracket: snapshot before a run, diff after. *)
type snapshot = {
  s_clock : int;
  s_instrs : int;
  s_mem : Memsim.Memstats.t;
  s_state_cycles : int array;
}

let snapshot t =
  {
    s_clock = t.ctx.Exec_ctx.clock;
    s_instrs = t.ctx.Exec_ctx.instrs;
    s_mem = Exec_ctx.counters t.ctx;
    s_state_cycles = Array.copy t.ctx.Exec_ctx.cycles_by_class;
  }

let finish ?latency ?(faulted = 0) ?(faults = []) ?(degraded = false) t snap
    ~label ~packets ~drops ~wire_bytes ~switches : Metrics.run =
  {
    Metrics.label;
    packets;
    drops;
    cycles = t.ctx.Exec_ctx.clock - snap.s_clock;
    instrs = t.ctx.Exec_ctx.instrs - snap.s_instrs;
    wire_bytes;
    switches;
    mem = Memsim.Memstats.diff (Exec_ctx.counters t.ctx) snap.s_mem;
    freq_ghz = t.cfg.freq_ghz;
    state_cycles =
      Array.init Exec_ctx.n_classes (fun i ->
          t.ctx.Exec_ctx.cycles_by_class.(i) - snap.s_state_cycles.(i));
    latency;
    faulted;
    faults;
    degraded;
    imbalance = None;
  }
