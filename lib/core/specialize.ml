(* Compile-and-specialize pass: the hot-path artifacts the executors use
   instead of the interpreted Program surface.

   Three ingredients, all derived once per program and attached to it via
   the {!Program.payload} extension point:

   - a dense jump table for Δ: transitions are indexed by
     [state * n_classes + class], where the event class is 0-4 for the
     builtin events and an interned id (>= 5) per user event key that
     appears on an FSM edge. Lookup is two array reads instead of a
     hashtable probe plus a list scan. Events with no dense class
     (quarantine markers) and dead (state, class) cells fall back to
     {!Program.step}, which preserves the exact undefined-transition
     error.
   - a per-state memo for user-event classification: an action body
     returns [User s] with [s] a string literal, physically shared across
     calls of the same closure, so one pointer comparison classifies the
     common case without hashing.
   - fused action runners ({!runners}): one closure per control state
     binding the action's base charge, body and instance name, with the
     fault-plane exception barrier inlined. While the plane is inert
     ({!Fault.live} is false — re-checked per action because injections
     arm at source-pull time) the armed-countdown probe is skipped; the
     conversion of escaping exceptions is byte-identical to
     {!Fault.guard}.

   Simulated metrics are untouched by construction: the same charges reach
   the same execution context in the same order; only host-side dispatch
   work is removed. *)

type t = {
  program : Program.t;
  n_classes : int;  (* 5 builtins + interned user keys *)
  class_of_key : (string, int) Hashtbl.t;  (* user key -> class (>= 5) *)
  next : int array;  (* state * n_classes + class -> successor, -1 if dead *)
  memo_key : string array;  (* per state: last classified user key ... *)
  memo_cls : int array;  (* ... and its class; physical-equality memo *)
}

type Program.payload += P of t

(* Classes of the builtin events; user keys are interned after them. *)
let n_builtin_classes = 5

let builtin_class = function
  | Event.Packet_arrival -> 0
  | Event.Match_success -> 1
  | Event.Match_fail -> 2
  | Event.Emit_packet -> 3
  | Event.Drop_packet -> 4
  | Event.User _ | Event.Faulted _ -> -1

let build (program : Program.t) =
  let edges = Fsm.edges program.Program.fsm in
  let class_of_key = Hashtbl.create 16 in
  let n_user = ref 0 in
  let classify key =
    match Event.of_key key with
    | Event.User s -> (
        match Hashtbl.find_opt class_of_key s with
        | Some c -> c
        | None ->
            let c = n_builtin_classes + !n_user in
            incr n_user;
            Hashtbl.add class_of_key s c;
            c)
    | Event.Faulted _ -> -1  (* containment edges stay on the fallback *)
    | e -> builtin_class e
  in
  (* Intern every user key first so the table width is known. *)
  let classed = List.map (fun (src, key, dst) -> (src, classify key, dst)) edges in
  let n_states = Program.n_states program in
  let n_classes = n_builtin_classes + !n_user in
  let next = Array.make (n_states * n_classes) (-1) in
  List.iter
    (fun (src, cls, dst) -> if cls >= 0 then next.((src * n_classes) + cls) <- dst)
    classed;
  (* The memo sentinel must be physically distinct from every real key; a
     fresh 1-byte allocation is never shared with a literal. *)
  let sentinel = Bytes.to_string (Bytes.make 1 '\000') in
  {
    program;
    n_classes;
    class_of_key;
    next;
    memo_key = Array.make n_states sentinel;
    memo_cls = Array.make n_states (-1);
  }

let install (p : Program.t) =
  match p.Program.payload with
  | Some (P _) -> ()
  | _ -> p.Program.payload <- Some (P (build p))

let get (p : Program.t) =
  match p.Program.payload with Some (P sp) -> Some sp | _ -> None

(* Detach the pass (the differential oracle strips programs before its
   interpreted reference runs, so a shared instance cannot leak the
   specialized path into the baseline). *)
let remove (p : Program.t) =
  match p.Program.payload with Some (P _) -> p.Program.payload <- None | _ -> ()

let installed p = match get p with Some _ -> true | None -> false

(* Event class under [t] when the current state is [cs]; -1 when the event
   has no dense class. The user-key memo is per state: an action's closure
   returns the same string literal on every call, so after the first
   classification one pointer comparison suffices. *)
let class_of t cs ev =
  match ev with
  | Event.Packet_arrival -> 0
  | Event.Match_success -> 1
  | Event.Match_fail -> 2
  | Event.Emit_packet -> 3
  | Event.Drop_packet -> 4
  | Event.Faulted _ -> -1
  | Event.User s ->
      if s == t.memo_key.(cs) then t.memo_cls.(cs)
      else begin
        match Hashtbl.find_opt t.class_of_key s with
        | Some c ->
            t.memo_key.(cs) <- s;
            t.memo_cls.(cs) <- c;
            c
        | None -> -1
      end

(* Δ through the dense table. Dead cells and class-less events defer to
   the interpreter, which raises the canonical undefined-transition
   error. *)
let step t cs ev =
  let cls = class_of t cs ev in
  if cls < 0 then Program.step t.program cs ev
  else
    let nxt = t.next.((cs * t.n_classes) + cls) in
    if nxt >= 0 then nxt else Program.step t.program cs ev

(* One fused runner per control state: base charge, body and the fault
   barrier bound into a single closure. Equivalence with the interpreted
   path, case by case:
   - plane live: delegate to {!Fault.guard} verbatim (armed countdowns
     must decrement and fire before the body, exactly as interpreted);
   - plane inert: no countdown can exist, so charge the base computation
     and run the body; [Fault (reason, detail)] counts under [detail],
     any other exception under the instance name as [Action_raise], and
     [Stack_overflow] / [Out_of_memory] are re-raised — the same
     conversion {!Fault.guard} applies.
   States without an action raise [Invalid_argument] with the
   executor-supplied message, preserving each executor's error text. *)
let runners t plane ~err =
  Array.map
    (fun (ci : Program.cs_info) ->
      match ci.Program.action with
      | Some a ->
          let nf = ci.Program.inst in
          let cycles = a.Action.base_cycles in
          let instrs = a.Action.base_instrs in
          let body = a.Action.body in
          fun ctx task ->
            if Fault.live plane then Fault.guard plane ~nf a ctx task
            else begin
              Exec_ctx.compute ctx ~cycles ~instrs;
              try body ctx task with
              | Fault.Fault (reason, detail) -> Fault.convert plane ~nf:detail reason
              | (Stack_overflow | Out_of_memory) as e -> raise e
              | _ -> Fault.convert plane ~nf Fault.Action_raise
            end
      | None ->
          let msg = err ci.Program.qname in
          fun _ _ -> invalid_arg msg)
    t.program.Program.info

let n_classes t = t.n_classes

let user_classes t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.class_of_key []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let next_table t = t.next
