(* The director compiler (§VI): takes module/NF specifications plus the
   NFAction implementation library and produces an executable {!Program}.

   Passes:
   - flattening: module FSMs + NF-level wiring -> one global FSM;
   - redundant-matching removal (§VI-B): consecutive classifier instances
     that locate session state by the same key reuse the first instance's
     match result and are deleted from the chain;
   - redundant-prefetch removal (§VI-B): a forward must-analysis over the
     flattened FSM removes prefetch targets already fetched on every path
     to a control state (and not invalidated since). *)

exception Compile_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

type instance = {
  i_name : string;
  i_spec : Spec.module_spec;
  i_actions : (string * Action.t) list;  (* control state -> action impl *)
  i_bindings : (string * Prefetch.target) list;  (* spec state name -> target *)
  i_key_kind : string option;  (* classifiers: what key they match on *)
}

type lint_level = [ `Off | `Warn | `Error ]

type opts = {
  match_removal : bool;
  prefetch_dedup : bool;
  prefetching : bool;  (* false: compile with empty prefetch policies *)
  lint : lint_level;  (* run the static analyzer on every compile *)
  verify_passes : lint_level;
      (* translation validation: symbolically check each optimization pass
         preserved observations (`Error fails the compile on a refutation;
         Unknown verdicts only warn — the dynamic oracle still covers them) *)
  specialize : bool;  (* attach the specialized hot path (Specialize.install) *)
}

let default_opts =
  {
    match_removal = false;
    prefetch_dedup = true;
    prefetching = true;
    lint = `Off;
    verify_passes = `Off;
    specialize = false;
  }

(* ----- redundant matching removal ----- *)

(* Returns the surviving instances and rewritten NF transitions. An
   instance is redundant when it is a classifier whose key kind already
   appeared earlier in the chain: its match result (the per-flow index in
   the NFTask) is still valid, so the instance's incoming transitions are
   rewired to its MATCH_SUCCESS successor. *)
let remove_redundant_matching instances (nf : Spec.nf_spec) =
  let order = List.map fst nf.Spec.n_modules in
  let inst_of name =
    match List.find_opt (fun i -> i.i_name = name) instances with
    | Some i -> i
    | None -> fail "match removal: nf %s references missing instance %s" nf.Spec.n_name name
  in
  let seen = ref [] in
  let redundant =
    List.filter
      (fun name ->
        match (inst_of name).i_key_kind with
        | None -> false
        | Some k ->
            if List.mem k !seen then true
            else begin
              seen := k :: !seen;
              false
            end)
      order
  in
  if redundant = [] then (instances, nf)
  else begin
    let success_target name =
      match
        List.find_opt
          (fun t -> t.Spec.src = name && t.Spec.event = "MATCH_SUCCESS")
          nf.Spec.n_transitions
      with
      | Some t -> t.Spec.dst
      | None -> fail "match removal: classifier %s has no MATCH_SUCCESS successor" name
    in
    (* Resolve chains of removed classifiers. *)
    let rec resolve dst =
      if List.mem dst redundant then resolve (success_target dst) else dst
    in
    let transitions =
      List.filter_map
        (fun t ->
          if List.mem t.Spec.src redundant then None
          else Some { t with Spec.dst = resolve t.Spec.dst })
        nf.Spec.n_transitions
    in
    let modules = List.filter (fun (n, _) -> not (List.mem n redundant)) nf.Spec.n_modules in
    let instances = List.filter (fun i -> not (List.mem i.i_name redundant)) instances in
    (instances, { nf with Spec.n_modules = modules; Spec.n_transitions = transitions })
  end

(* ----- flattening ----- *)

let qname inst cs = inst ^ "." ^ cs

(* Entry control state of an instance for a given event: target of its
   module's Start transition on that event; falls back to "packet", then to
   a unique Start transition (a module with a single entry accepts any
   upstream exit event — e.g. a data module entered directly after match
   removal rewired its classifier away). *)
let entry_of inst event =
  let find ev =
    List.find_opt
      (fun t -> t.Spec.src = Spec.start_state && t.Spec.event = ev)
      inst.i_spec.Spec.m_transitions
  in
  match find event with
  | Some t -> t.Spec.dst
  | None -> (
      match find "packet" with
      | Some t -> t.Spec.dst
      | None -> (
          match
            List.filter
              (fun t -> t.Spec.src = Spec.start_state)
              inst.i_spec.Spec.m_transitions
          with
          | [ t ] -> t.Spec.dst
          | _ -> fail "instance %s has no entry transition for event %s" inst.i_name event))

let flatten instances (nf : Spec.nf_spec) =
  let inst_of name =
    match List.find_opt (fun i -> i.i_name = name) instances with
    | Some i -> i
    | None -> fail "nf %s references missing instance %s" nf.Spec.n_name name
  in
  let b = Fsm.Builder.create () in
  let start = Fsm.Builder.add_state b "__start" in
  let done_cs = Fsm.Builder.add_state b "__done" in
  (* Add all real control states first so ids are stable. *)
  List.iter
    (fun inst ->
      List.iter
        (fun cs ->
          if cs <> Spec.start_state && cs <> Spec.end_state then
            ignore (Fsm.Builder.add_state b (qname inst.i_name cs)))
        (List.rev (Spec.control_states_of inst.i_spec)))
    instances;
  let state_id inst cs =
    match Fsm.Builder.state b (qname inst.i_name cs) with
    | Some i -> i
    | None -> fail "unknown control state %s.%s" inst.i_name cs
  in
  (* Where does instance [name] exiting with [event] go? *)
  let exit_target name event =
    match
      List.find_opt
        (fun t -> t.Spec.src = name && t.Spec.event = event)
        nf.Spec.n_transitions
    with
    | Some t when t.Spec.dst = Spec.end_state -> done_cs
    | Some t ->
        let next = inst_of t.Spec.dst in
        state_id next (entry_of next event)
    | None -> done_cs
  in
  (* Module-internal edges. *)
  List.iter
    (fun inst ->
      List.iter
        (fun (t : Spec.transition) ->
          if t.Spec.src = Spec.start_state then ()
          else
            let src = state_id inst t.Spec.src in
            let dst =
              if t.Spec.dst = Spec.end_state then exit_target inst.i_name t.Spec.event
              else state_id inst t.Spec.dst
            in
            Fsm.Builder.add_edge b ~src ~event:t.Spec.event ~dst)
        inst.i_spec.Spec.m_transitions)
    instances;
  (* Program entry: first instance in declaration order. *)
  (match nf.Spec.n_modules with
  | [] -> fail "nf %s: no modules" nf.Spec.n_name
  | (first, _) :: _ ->
      let fi = inst_of first in
      Fsm.Builder.add_edge b ~src:start ~event:"packet"
        ~dst:(state_id fi (entry_of fi "packet")));
  let fsm = Fsm.Builder.build b in
  (start, done_cs, fsm)

(* ----- per-state info ----- *)

let build_info instances fsm ~start ~done_cs ~prefetching =
  let n = Fsm.n_states fsm in
  let info =
    Array.init n (fun i ->
        {
          Program.qname = Fsm.name fsm i;
          inst = "";
          action = None;
          prefetch = [];
        })
  in
  List.iter
    (fun inst ->
      List.iter
        (fun cs ->
          if cs <> Spec.start_state && cs <> Spec.end_state then begin
            let id =
              match Fsm.index fsm (qname inst.i_name cs) with
              | Some i -> i
              | None -> fail "lost control state %s.%s" inst.i_name cs
            in
            let action =
              match List.assoc_opt cs inst.i_actions with
              | Some a -> Some a
              | None -> fail "instance %s: no action implementation for %s" inst.i_name cs
            in
            let prefetch =
              if not prefetching then []
              else
                match List.assoc_opt cs inst.i_spec.Spec.m_fetching with
                | None -> []
                | Some state_names ->
                    List.filter_map
                      (fun sname ->
                        match List.assoc_opt sname inst.i_bindings with
                        | Some target -> Some target
                        | None -> (
                            (* control/temp states need no prefetch binding *)
                            match List.assoc_opt sname inst.i_spec.Spec.m_states with
                            | Some ("temp" | "control") -> None
                            | _ ->
                                fail "instance %s: no binding for state %s" inst.i_name
                                  sname))
                      state_names
            in
            info.(id) <- { Program.qname = Fsm.name fsm id; inst = inst.i_name; action; prefetch }
          end)
        (Spec.control_states_of inst.i_spec))
    instances;
  ignore start;
  ignore done_cs;
  info

(* ----- redundant prefetch removal ----- *)

(* Forward must-analysis on the shared {!Dataflow} fixpoint: a target is
   "available" at a control state when it was prefetched (and not
   invalidated) on every path from __start. Targets available on entry need
   not be prefetched again. The analyzer's cold-access and short-distance
   lints reuse the same availability facts. *)
let prefetch_availability (info : Program.cs_info array) fsm ~start =
  let eq = Prefetch.equal_target in
  let universe =
    Array.to_list info
    |> List.concat_map (fun ci -> ci.Program.prefetch)
    |> List.fold_left (fun acc t -> Dataflow.Set_ops.union ~equal:eq acc [ t ]) []
  in
  let kill_of ci =
    match ci.Program.action with
    | None -> []
    | Some a -> a.Action.invalidates
  in
  let survives kills target =
    not
      (List.exists
         (fun k ->
           match (k, Prefetch.class_of target) with
           | `Match_addrs, `Match_addrs -> true
           | `Per_flow, `Per_flow -> true
           | `Sub_flow, `Sub_flow -> true
           | `Packet, `Packet -> true
           | _ -> false)
         kills)
  in
  let transfer i avail_in =
    List.filter (survives (kill_of info.(i)))
      (Dataflow.Set_ops.union ~equal:eq avail_in info.(i).Program.prefetch)
  in
  Dataflow.forward fsm ~entry:start ~entry_out:[] ~init:universe ~no_pred:[]
    ~join:(Dataflow.Set_ops.inter ~equal:eq)
    ~equal:(Dataflow.Set_ops.set_equal ~equal:eq)
    ~transfer

let remove_redundant_prefetch (info : Program.cs_info array) fsm ~start =
  let avail = prefetch_availability info fsm ~start in
  let removed = ref 0 in
  Array.iteri
    (fun i inp ->
      let kept =
        List.filter
          (fun t ->
            if List.exists (Prefetch.equal_target t) inp then begin
              incr removed;
              false
            end
            else true)
          info.(i).Program.prefetch
      in
      info.(i).Program.prefetch <- kept)
    avail.Dataflow.ins;
  !removed

(* ----- static-analysis hook ----- *)

(* The analyzer lives in its own library (which depends on this one), so
   the compiler reaches it through a hook the analysis library installs.
   Requesting lint without the analyzer linked is a hard error, not a
   silent no-op. *)
type lint_input = {
  li_name : string;
  li_instances : instance list;  (* post match-removal *)
  li_nf : Spec.nf_spec;  (* post match-removal *)
  li_fsm : Fsm.t;
  li_info : Program.cs_info array;  (* pre prefetch-dedup *)
  li_start : int;
  li_done : int;
  li_opts : opts;
}

let lint_hook : (lint_input -> unit) option ref = ref None
let set_lint_hook h = lint_hook := Some h

(* Everything the translation validator needs: the spec-level program
   before any pass, the post-match-removal form, the declared prefetch
   policy before dedup stripped it, and the finished program (with the
   specialized hot path attached when requested). *)
type verify_input = {
  vi_name : string;
  vi_opts : opts;
  vi_orig_instances : instance list;  (* pre match-removal *)
  vi_orig_nf : Spec.nf_spec;
  vi_instances : instance list;  (* post match-removal *)
  vi_nf : Spec.nf_spec;
  vi_pre_dedup : Prefetch.target list array;  (* declared policy, pre dedup *)
  vi_program : Program.t;
}

let verify_hook : (verify_input -> unit) option ref = ref None
let set_verify_hook h = verify_hook := Some h

(* ----- top level ----- *)

(* Everything up to (but excluding) prefetch dedup: what the analyzer
   inspects — the flattened FSM with the full declared prefetch policy. *)
let lint_view ?(opts = default_opts) ~name instances (nf : Spec.nf_spec) =
  List.iter (fun i -> Spec.validate_module i.i_spec) instances;
  Spec.validate_nf nf
    ~known_modules:(List.map (fun i -> i.i_spec.Spec.m_name) instances);
  let instances, nf =
    if opts.match_removal then remove_redundant_matching instances nf
    else (instances, nf)
  in
  let start, done_cs, fsm = flatten instances nf in
  let info = build_info instances fsm ~start ~done_cs ~prefetching:opts.prefetching in
  {
    li_name = name;
    li_instances = instances;
    li_nf = nf;
    li_fsm = fsm;
    li_info = info;
    li_start = start;
    li_done = done_cs;
    li_opts = opts;
  }

(* The back half of the compile: capture the declared prefetch policy,
   run prefetch dedup, assemble the program, attach the hot path. Shared
   between [compile] and [verify_view] so the validator sees exactly the
   program a compile would ship. *)
let finish_program ~opts (v : lint_input) =
  let pre_dedup = Array.map (fun ci -> ci.Program.prefetch) v.li_info in
  if opts.prefetch_dedup && opts.prefetching then
    ignore (remove_redundant_prefetch v.li_info v.li_fsm ~start:v.li_start);
  let program =
    {
      Program.p_name = v.li_name;
      fsm = v.li_fsm;
      info = v.li_info;
      start = v.li_start;
      done_cs = v.li_done;
      payload = None;
    }
  in
  if opts.specialize then Specialize.install program;
  (pre_dedup, program)

let verify_input_of ~opts ~orig_instances ~orig_nf (v : lint_input) ~pre_dedup
    ~program =
  {
    vi_name = v.li_name;
    vi_opts = opts;
    vi_orig_instances = orig_instances;
    vi_orig_nf = orig_nf;
    vi_instances = v.li_instances;
    vi_nf = v.li_nf;
    vi_pre_dedup = pre_dedup;
    vi_program = program;
  }

(* Compile without running the hooks and return the validator's input —
   for standalone checking (CLI, fuzzing) where the caller interprets the
   verdicts itself. *)
let verify_view ?(opts = default_opts) ~name instances (nf : Spec.nf_spec) =
  let v = lint_view ~opts ~name instances nf in
  let pre_dedup, program = finish_program ~opts v in
  verify_input_of ~opts ~orig_instances:instances ~orig_nf:nf v ~pre_dedup ~program

let compile ?(opts = default_opts) ~name instances (nf : Spec.nf_spec) =
  let v = lint_view ~opts ~name instances nf in
  (match opts.lint with
  | `Off -> ()
  | `Warn | `Error -> (
      match !lint_hook with
      | Some hook -> hook v
      | None ->
          fail "nf %s: opts.lint requested but no analyzer is linked (link the analysis library and call Register.install)"
            name));
  let pre_dedup, program = finish_program ~opts v in
  (match opts.verify_passes with
  | `Off -> ()
  | `Warn | `Error -> (
      match !verify_hook with
      | Some hook ->
          hook
            (verify_input_of ~opts ~orig_instances:instances ~orig_nf:nf v
               ~pre_dedup ~program)
      | None ->
          fail "nf %s: opts.verify_passes requested but no analyzer is linked (link the analysis library and call Register.install)"
            name));
  program
