(* Fault-injection plane and containment policy.

   Real stateful dataplanes must degrade, not crash: a malformed packet, a
   state-table overflow or a buggy NFAction may cost one packet (or, after
   repeated offences, one flow) but never the core. This module provides

   - the containment vocabulary: {!reason}, the {!Fault} exception NF code
     raises to signal a *contained* per-task fault, and the per-NF
     per-reason taxonomy counted into {!Metrics.run};
   - the plane itself ({!t}): a per-run table of injected faults (keyed by
     packet id, armed by the generator in lib/check/faultgen before the
     executor pulls the packet) plus the per-flow poisoning state;
   - the three executor hooks: {!on_load} (quarantine decisions and
     load-time injections), {!guard} (exception barrier around
     [Action.execute]) and {!complete} (poisoning bookkeeping and the final
     disposition of a finishing task).

   Determinism across executors is the design constraint throughout: an
   injected fault must produce the *same* per-packet outcome under rtc,
   batched rtc and every interleaved configuration, because the
   differential oracle diffs them. Hence
   - injections are keyed by packet id and armed at source-pull time (pull
     order is identical across executors);
   - action faults fire on a per-packet action countdown (the per-packet
     action sequence is executor-independent) and fire *before* the action
     body runs, so no partial state mutation can diverge;
   - poisoning is evaluated at task completion, never at load: per-flow
     completion order is executor-independent (it is one of the oracle's
     invariants), while load order relative to same-flow completions is
     not (a batch loads a whole batch before processing any of it). *)

type reason =
  | Parse_error  (* truncated / corrupted packet *)
  | Table_overflow  (* state-structure insert rejected under Shed_flow *)
  | Action_raise  (* NFAction body raised (injected or organic) *)
  | Mshr_stall  (* injected MSHR starvation (timing-only, no quarantine) *)
  | Poisoned  (* flow quarantined after repeated consecutive faults *)

let reason_to_key = function
  | Parse_error -> "parse"
  | Table_overflow -> "overflow"
  | Action_raise -> "action"
  | Mshr_stall -> "mshr"
  | Poisoned -> "poisoned"

let reason_of_key = function
  | "parse" -> Some Parse_error
  | "overflow" -> Some Table_overflow
  | "action" -> Some Action_raise
  | "mshr" -> Some Mshr_stall
  | "poisoned" -> Some Poisoned
  | _ -> None

let pp_reason ppf r = Fmt.string ppf (reason_to_key r)

(* Raised by NF code / state structures to signal a contained fault; the
   string attributes it to an NF instance for the taxonomy. Executors never
   let it (or any other exception from an action body) escape: {!guard}
   converts it to [Event.Faulted]. *)
exception Fault of reason * string

type injection =
  | Corrupt_packet  (* packet bytes were mangled at source: quarantine at load *)
  | Raise_at of { countdown : int; reason : reason }
      (* the [countdown]-th guarded action of this packet faults before
         executing (0 = the first action) *)
  | Stall_mshrs of int  (* occupy all free MSHRs for N cycles at load *)
  | Kill_core  (* the worker pulling this packet dies after processing it;
                  interpreted by the platform recovery engine — executors
                  (and {!on_load}) treat it as a no-op so a kill schedule
                  leaking into a single-core run is inert *)

type t = {
  poison_threshold : int;
  injections : (int, injection) Hashtbl.t;  (* packet id -> injection *)
  armed : (int, int ref) Hashtbl.t;  (* packet id -> remaining countdown *)
  consec : (int, int) Hashtbl.t;  (* flow -> consecutive faulted completions *)
  poisoned : (int, unit) Hashtbl.t;  (* flow -> () *)
  counts : (string * reason, int) Hashtbl.t;  (* (nf, reason) -> occurrences *)
  mutable faulted : int;  (* completions quarantined by the plane *)
  mutable degraded : bool;  (* at least one flow is poisoned *)
}

let default_poison_threshold = 3

let create ?(poison_threshold = default_poison_threshold) () =
  if poison_threshold <= 0 then
    invalid_arg "Fault.create: poison_threshold must be positive";
  {
    poison_threshold;
    injections = Hashtbl.create 64;
    armed = Hashtbl.create 16;
    consec = Hashtbl.create 64;
    poisoned = Hashtbl.create 16;
    counts = Hashtbl.create 16;
    faulted = 0;
    degraded = false;
  }

let inject t ~packet_id inj = Hashtbl.replace t.injections packet_id inj
let injection_count t = Hashtbl.length t.injections
let faulted t = t.faulted
let degraded t = t.degraded
let poisoned_flows t = Hashtbl.length t.poisoned

let count t ~nf reason =
  let k = (nf, reason) in
  Hashtbl.replace t.counts k (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts k))

(* Taxonomy as a sorted list so it is order-deterministic (hash-table
   iteration order is not). *)
let counts t =
  Hashtbl.fold (fun (nf, r) n acc -> (nf, r, n) :: acc) t.counts []
  |> List.sort (fun (a, ra, _) (b, rb, _) ->
         match String.compare a b with
         | 0 -> String.compare (reason_to_key ra) (reason_to_key rb)
         | c -> c)

let total_counted t =
  Hashtbl.fold (fun _ n acc -> acc + n) t.counts 0

(* --- executor hooks ------------------------------------------------- *)

(* Load-time hook, called once per task right after [Nftask.load] (and its
   rx/tx charge). Applies load-time injections; [Some reason] means the
   task must be quarantined without executing anything. *)
let on_load t ~(mem : Memsim.Hierarchy.t) ~now (task : Nftask.t) =
  match task.Nftask.packet with
  | None -> None
  | Some p -> (
      match Hashtbl.find_opt t.injections p.Netcore.Packet.id with
      | None -> None
      | Some Corrupt_packet ->
          count t ~nf:"netcore" Parse_error;
          Some Parse_error
      | Some (Raise_at { countdown; _ }) ->
          Hashtbl.replace t.armed p.Netcore.Packet.id (ref (countdown + 1));
          None
      | Some (Stall_mshrs cycles) ->
          ignore (Memsim.Hierarchy.stall_mshrs mem ~now ~cycles);
          count t ~nf:"memsim" Mshr_stall;
          None
      | Some Kill_core -> None)

(* Exception barrier around one action execution. [nf] attributes the fault
   (the control state's instance name). Armed countdowns fire *before* the
   body runs — no charge, no state mutation — so the outcome cannot depend
   on the executor. An organic exception escapes the body only after its
   base cost was charged; the partial work stays, exactly as on real
   hardware, and the task is quarantined. *)
let guard t ~nf (action : Action.t) (ctx : Exec_ctx.t) (task : Nftask.t) =
  let fire reason detail =
    count t ~nf:detail reason;
    Event.Faulted (reason_to_key reason)
  in
  let armed_fire =
    match task.Nftask.packet with
    | None -> false
    | Some p -> (
        match Hashtbl.find_opt t.armed p.Netcore.Packet.id with
        | None -> false
        | Some remaining ->
            decr remaining;
            if !remaining = 0 then begin
              Hashtbl.remove t.armed p.Netcore.Packet.id;
              true
            end
            else false)
  in
  if armed_fire then fire Action_raise nf
  else
    try Action.execute action ctx task with
    | Fault (reason, detail) -> fire reason detail
    | (Stack_overflow | Out_of_memory) as e -> raise e
    | _ -> fire Action_raise nf

(* Whether any injection machinery could influence a guarded action. Armed
   countdowns exist only for injected packet ids and injections are never
   removed, so a plane with an empty injection table is inert: {!guard} on
   it behaves exactly like the bare exception barrier. The specialized
   executors re-check per action (injections arm at source-pull time, so a
   plane can go live mid-run) and skip the per-action hashtable probe while
   the plane is inert. *)
let live t = Hashtbl.length t.injections > 0 || Hashtbl.length t.armed > 0

(* The conversion {!guard} applies to a caught fault, exposed so the
   specializer's fused runners can inline the barrier: count under [nf] and
   quarantine with the reason's wire key. *)
let convert t ~nf reason =
  count t ~nf reason;
  Event.Faulted (reason_to_key reason)

(* Completion hook: every finishing task passes through here exactly once.
   [faulted] is the reason the task already faulted with (from its
   [Event.Faulted] event or a load-time quarantine), [None] for a normal
   completion. Returns the final disposition after poisoning: a normal
   completion of a poisoned flow is converted to [Poisoned]. Also maintains
   the per-flow consecutive-fault counters and the degraded flag. *)
let complete t ~flow ~faulted:fr =
  let disposition =
    match fr with
    | Some _ -> fr
    | None ->
        if flow >= 0 && Hashtbl.mem t.poisoned flow then begin
          count t ~nf:"flow" Poisoned;
          Some Poisoned
        end
        else None
  in
  (match disposition with
  | Some _ ->
      t.faulted <- t.faulted + 1;
      if flow >= 0 then begin
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt t.consec flow) in
        Hashtbl.replace t.consec flow c;
        if c >= t.poison_threshold && not (Hashtbl.mem t.poisoned flow) then begin
          Hashtbl.replace t.poisoned flow ();
          t.degraded <- true
        end
      end
  | None -> if flow >= 0 then Hashtbl.remove t.consec flow);
  disposition

(* --- containment checkpointing --------------------------------------- *)

(* Per-flow containment state (consecutive-fault counter and poisoned
   membership) for a set of flows, exported at checkpoint time. A core that
   adopts the flows restores this before replaying, so poisoning evolves
   from the same point it had reached on the dead core — otherwise a flow
   two faults deep would need three more (not one) to poison after
   adoption, and the recovered run would diverge from the failure-free
   reference. *)
let export_containment t flows =
  List.map
    (fun flow ->
      ( flow,
        Option.value ~default:0 (Hashtbl.find_opt t.consec flow),
        Hashtbl.mem t.poisoned flow ))
    flows

let restore_containment t entries =
  List.iter
    (fun (flow, consec, poisoned) ->
      if consec > 0 then Hashtbl.replace t.consec flow consec
      else Hashtbl.remove t.consec flow;
      if poisoned then begin
        if not (Hashtbl.mem t.poisoned flow) then
          Hashtbl.replace t.poisoned flow ();
        t.degraded <- true
      end)
    entries

(* Reason a task's current event encodes, if it is a containment marker. *)
let reason_of_event = function
  | Event.Faulted key -> (
      match reason_of_key key with
      | Some r -> Some r
      | None -> Some Action_raise (* unknown fault key: still contained *))
  | _ -> None
