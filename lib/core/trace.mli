(** The telemetry plane's span tracer: a bounded ring buffer of per-packet
    lifecycle spans with cycle timestamps, plus exact (never-lossy)
    attribution books folded as events arrive.

    Install/inert, like the fault plane: executors take an optional
    [?telemetry] plane and every hook charges nothing, so a run without a
    plane — and one with a plane attached — is cycle-for-cycle identical to
    a plane-free build. The ring may drop old spans on overflow (see
    {!dropped}); the attribution books are plain counters and always exact,
    so the profiler reconciles against {!Memsim.Memstats} on runs of any
    length. *)

(** Serving cache level of one demand access; [Inflight] = found in an
    MSHR (prefetched, fill not yet landed; paid the residual wait). *)
type level = L1 | L2 | Llc | Dram | Inflight

val n_levels : int
val level_index : level -> int
val level_of_index : int -> level
val level_name : level -> string

(** Lifecycle phase of a span. [State_access]/[Mshr_wait] come from the
    memory-hierarchy tap; the rest from executor hooks. *)
type phase =
  | Pull
  | Parse
  | Prefetch_issue
  | State_access
  | Mshr_wait
  | Action_body
  | Task_switch
  | Complete
  | Decision  (** adaptive-controller reconfiguration (runtime span) *)

val phase_name : phase -> string

type span = {
  sp_ts : int;  (** start, in simulated cycles *)
  sp_dur : int;  (** 0 for instants *)
  sp_phase : phase;
  sp_task : int;  (** executor slot id; -1 = runtime outside any task *)
  sp_unit : int;  (** run-local packet sequence number; -1 = runtime *)
  sp_flow : int;  (** workload flow hint; -1 = unknown *)
  sp_nf : string;  (** NF instance, "" outside an action *)
  sp_cs : string;  (** qualified control state, "" outside an action *)
  sp_cls : Sref.state_class option;  (** state class of a memory span *)
  sp_level : level option;  (** serving level of a memory span *)
  sp_note : string;
      (** terminal event key on [Complete], line count on [Prefetch_issue] *)
}

(** HDR-style log-linear histogram: exact below 16, then 16 sub-buckets
    per power of two (relative error bounded by 1/16, constant memory). *)
module Hist : sig
  type t

  val create : unit -> t
  val record : t -> int -> unit
  val count : t -> int
  val max_value : t -> int
  val mean : t -> float

  (** Nearest-rank percentile over bucket lower bounds. *)
  val percentile : t -> int -> int

  (** Non-empty (bucket lower bound, count) pairs, ascending. *)
  val nonzero : t -> (int * int) list
end

(** Scheduler/MSHR occupancy sample (one per task switch, ring-bounded). *)
type occupancy = { oc_ts : int; oc_active : int; oc_mshr : int }

type t

(** Default ring capacity (65536 spans). *)
val default_capacity : int

val create : ?capacity:int -> unit -> t

(** {2 Executor hooks} — called by the [?telemetry]-enabled executors and
    the {!Exec_ctx} memory-hierarchy tap. All O(1), none charges cycles. *)

val on_pull : t -> ts:int -> dur:int -> task:int -> flow:int -> unit
val on_parse : t -> ts:int -> task:int -> unit
val set_task : t -> task:int -> unit
val on_action_start : t -> ts:int -> nf:string -> cs:string -> unit
val on_action_end : t -> ts:int -> unit

(** State class of the demand access about to be charged. *)
val set_cls : t -> Sref.state_class option -> unit

val on_mem : t -> ts:int -> cycles:int -> level:level -> unit
val on_prefetch : t -> ts:int -> dur:int -> lines:int -> unit
val on_switch : t -> ts:int -> dur:int -> task:int -> unit
val on_occupancy : t -> ts:int -> active:int -> mshr:int -> unit
val on_complete : t -> ts:int -> task:int -> note:string -> latency:int -> unit

(** Adaptive-controller decision (runtime span, no task/unit/flow); [note]
    is the move label. *)
val on_decision : t -> ts:int -> note:string -> unit

(** {2 Accessors} *)

val total_spans : t -> int

(** Spans lost to ring overflow ([max 0 (total - capacity)]); the
    attribution books below are unaffected. *)
val dropped : t -> int

val pulls : t -> int
val completes : t -> int

(** Retained spans, oldest first. *)
val spans : t -> span array

val level_count : t -> level -> int
val level_cycles : t -> level -> int
val mem_cycles : t -> int

(** Cycles the spans account for, without double counting (demand traffic
    inside an action is part of the action span). Always [<=] the run's
    cycles: transition, dispatch, and scan overheads are not spanned. *)
val attributed_cycles : t -> int

val pull_cycles : t -> int
val action_cycles : t -> int
val prefetch_cycles : t -> int
val switch_cycles : t -> int
val mem_outside_cycles : t -> int

(** [(nf, control state, class name, level, serves, cycles)], sorted. *)
val mem_rows : t -> (string * string * string * level * int * int) list

(** [(nf, control state, executions, cycles)], sorted. *)
val action_rows : t -> (string * string * int * int) list

val latencies : t -> Hist.t
val occupancy : t -> occupancy array

(** [(samples, active-task sum, in-flight MSHR sum)] over every occupancy
    sample ever taken — exact under ring overflow, so windowed means are
    computable by delta. *)
val occupancy_totals : t -> int * int * int

(** Decision spans recorded via {!on_decision}. *)
val decisions : t -> int
