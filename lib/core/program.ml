(* A compiled network function: the flattened control-logic FSM plus, for
   every control state, the fetching function's output — which NFAction to
   run and which NFState targets to prefetch (§IV-A's F, realised by the
   director compiler of §VI-A). *)

type cs_info = {
  qname : string;  (* "instance.control_state" *)
  inst : string;
  action : Action.t option;  (* None for pseudo states (__start/__done) *)
  mutable prefetch : Prefetch.target list;
}

(* Optimization passes attach compiled artifacts (e.g. the specializer's
   dense dispatch tables) here without this module depending on them. *)
type payload = ..

type t = {
  p_name : string;
  fsm : Fsm.t;
  info : cs_info array;
  start : int;
  done_cs : int;
  mutable payload : payload option;
}

let name t = t.p_name
let n_states t = Array.length t.info
let info t cs = t.info.(cs)
let start t = t.start
let is_done t cs = cs = t.done_cs

let cs_by_name t qname =
  match Fsm.index t.fsm qname with
  | Some i -> i
  | None -> invalid_arg ("Program.cs_by_name: unknown control state " ^ qname)

(* Δ with a hard failure on undefined transitions: a spec/compiler bug, not
   a runtime condition. *)
let step t cs event =
  match Fsm.step t.fsm cs event with
  | Some next -> next
  | None ->
      invalid_arg
        (Printf.sprintf "Program %s: no transition from %s on event %s" t.p_name
           t.info.(cs).qname (Event.to_key event))

let pp ppf t =
  Fmt.pf ppf "program %s (%d control states)@." t.p_name (Array.length t.info);
  Array.iteri
    (fun i ci ->
      Fmt.pf ppf "  [%d] %s action=%s prefetch=[%a]@." i ci.qname
        (match ci.action with Some a -> a.Action.name | None -> "-")
        Fmt.(list ~sep:comma Prefetch.pp_target)
        ci.prefetch)
    t.info
