(* Module / NF specifications (§IV-B, Fig 6, Listings 1-3).

   A module spec declares the control-logic FSM of one granularly
   decomposed module: its transitions, and for each control state the
   NFStates its action will access (the fetching function F). An NF spec
   composes module instances into a network function (or SFC) by wiring
   exit events of one instance to the next. *)

exception Spec_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Spec_error s)) fmt

type transition = { src : string; event : string; dst : string }

type module_spec = {
  m_name : string;
  m_category : string;
  m_parameters : string list;
  m_transitions : transition list;
  m_fetching : (string * string list) list;  (* control state -> state names *)
  m_states : (string * string) list;  (* state name -> class ("match", ...) *)
  m_nfc : (string * string) list;  (* control state -> NF-C action source *)
}

type nf_spec = {
  n_name : string;
  n_modules : (string * string) list;  (* instance name -> module type *)
  n_transitions : transition list;  (* instance-level wiring *)
}

let start_state = "Start"
let end_state = "End"

(* "src,event->dst" *)
let parse_transition s =
  match String.index_opt s ',' with
  | None -> fail "malformed transition %S (expected src,event->dst)" s
  | Some i -> (
      let src = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match
        let rec find_arrow j =
          if j + 1 >= String.length rest then None
          else if rest.[j] = '-' && rest.[j + 1] = '>' then Some j
          else find_arrow (j + 1)
        in
        find_arrow 0
      with
      | None -> fail "malformed transition %S (missing ->)" s
      | Some j ->
          let event = String.trim (String.sub rest 0 j) in
          let dst = String.trim (String.sub rest (j + 2) (String.length rest - j - 2)) in
          if src = "" || event = "" || dst = "" then fail "malformed transition %S" s;
          { src; event; dst })

let transitions_of_yaml y key =
  match Yaml_lite.find key y with
  | None -> []
  | Some v -> (
      match Yaml_lite.scalar_list v with
      | Some items -> List.map parse_transition items
      | None -> fail "%s: expected a list of transitions" key)

let module_spec_of_yaml y =
  let get_scalar key =
    match Option.bind (Yaml_lite.find key y) Yaml_lite.scalar with
    | Some s -> s
    | None -> fail "module spec: missing scalar field %S" key
  in
  let m_name = get_scalar "module" in
  let m_category = get_scalar "category" in
  let m_parameters =
    match Yaml_lite.find "parameters" y with
    | None -> []
    | Some v -> Option.value ~default:[] (Yaml_lite.scalar_list v)
  in
  let m_transitions = transitions_of_yaml y "transitions" in
  if m_transitions = [] then fail "module %s: no transitions" m_name;
  let m_fetching =
    match Yaml_lite.find "fetching" y with
    | None -> []
    | Some (Yaml_lite.Map kvs) ->
        List.map
          (fun (cs, v) ->
            match Yaml_lite.scalar_list v with
            | Some names -> (cs, names)
            | None -> fail "module %s: fetching.%s must be a list" m_name cs)
          kvs
    | Some _ -> fail "module %s: fetching must be a map" m_name
  in
  let m_states =
    match Yaml_lite.find "states" y with
    | None -> []
    | Some (Yaml_lite.Map kvs) ->
        List.map
          (fun (name, v) ->
            match Yaml_lite.scalar v with
            | Some cls -> (name, cls)
            | None -> fail "module %s: states.%s must be a scalar class" m_name name)
          kvs
    | Some _ -> fail "module %s: states must be a map" m_name
  in
  let m_nfc =
    match Yaml_lite.find "nfc" y with
    | None -> []
    | Some (Yaml_lite.Map kvs) ->
        List.map
          (fun (cs, v) ->
            match Yaml_lite.scalar v with
            | Some src -> (cs, src)
            | None -> fail "module %s: nfc.%s must be a scalar NF-C source" m_name cs)
          kvs
    | Some _ -> fail "module %s: nfc must be a map" m_name
  in
  { m_name; m_category; m_parameters; m_transitions; m_fetching; m_states; m_nfc }

let nf_spec_of_yaml y =
  let n_name =
    match Option.bind (Yaml_lite.find "nf" y) Yaml_lite.scalar with
    | Some s -> s
    | None -> fail "nf spec: missing 'nf' field"
  in
  let n_modules =
    match Yaml_lite.find "modules" y with
    | Some (Yaml_lite.Map kvs) ->
        List.map
          (fun (inst, v) ->
            match Yaml_lite.scalar v with
            | Some mtype -> (inst, mtype)
            | None -> fail "nf %s: modules.%s must name a module type" n_name inst)
          kvs
    | _ -> fail "nf %s: missing modules map" n_name
  in
  let n_transitions = transitions_of_yaml y "transitions" in
  { n_name; n_modules; n_transitions }

let module_spec_of_string src =
  try module_spec_of_yaml (Yaml_lite.of_string src)
  with Yaml_lite.Parse_error (line, msg) -> fail "line %d: %s" line msg

let nf_spec_of_string src =
  try nf_spec_of_yaml (Yaml_lite.of_string src)
  with Yaml_lite.Parse_error (line, msg) -> fail "line %d: %s" line msg

(* ----- validation ----- *)

let control_states_of m =
  let add acc s = if List.mem s acc then acc else s :: acc in
  List.fold_left (fun acc t -> add (add acc t.src) t.dst) [] m.m_transitions

(* Structural checks the director compiler performs before code generation:
   Start reachable exit, deterministic Δ, fetching refers to known control
   states and declared NFStates. *)
let validate_module m =
  let states = control_states_of m in
  if not (List.mem start_state states) then
    fail "module %s: no transition from %s" m.m_name start_state;
  if not (List.mem end_state states) then
    fail "module %s: no transition into %s" m.m_name end_state;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let key = (t.src, t.event) in
      (match Hashtbl.find_opt seen key with
      | Some dst when dst <> t.dst ->
          fail "module %s: non-deterministic transition %s,%s" m.m_name t.src t.event
      | _ -> ());
      Hashtbl.replace seen key t.dst)
    m.m_transitions;
  List.iter
    (fun (cs, names) ->
      if not (List.mem cs states) then
        fail "module %s: fetching for unknown control state %s" m.m_name cs;
      List.iter
        (fun n ->
          if m.m_states <> [] && not (List.mem_assoc n m.m_states) then
            fail "module %s: fetching.%s references undeclared state %s" m.m_name cs n)
        names)
    m.m_fetching;
  (* Declared NF-C bodies must attach to known control states and parse. *)
  List.iter
    (fun (cs, src) ->
      if not (List.mem cs states) then
        fail "module %s: nfc for unknown control state %s" m.m_name cs;
      match Nfc.parse src with
      | _ -> ()
      | exception Nfc.Nfc_error msg -> fail "module %s: nfc.%s: %s" m.m_name cs msg)
    m.m_nfc;
  (* Every non-Start/End state should be reachable from Start. *)
  let rec reach acc frontier =
    match frontier with
    | [] -> acc
    | s :: rest ->
        let nexts =
          List.filter_map
            (fun t -> if t.src = s && not (List.mem t.dst acc) then Some t.dst else None)
            m.m_transitions
        in
        reach (nexts @ acc) (nexts @ rest)
  in
  let reachable = reach [ start_state ] [ start_state ] in
  List.iter
    (fun s ->
      if not (List.mem s reachable) then
        fail "module %s: control state %s unreachable from Start" m.m_name s)
    states

let validate_nf nf ~known_modules =
  if nf.n_modules = [] then fail "nf %s: empty module list" nf.n_name;
  List.iter
    (fun (inst, mtype) ->
      if not (List.mem mtype known_modules) then
        fail "nf %s: instance %s uses unknown module type %s" nf.n_name inst mtype)
    nf.n_modules;
  List.iter
    (fun t ->
      if not (List.mem_assoc t.src nf.n_modules) then
        fail "nf %s: transition from unknown instance %s" nf.n_name t.src;
      if t.dst <> end_state && not (List.mem_assoc t.dst nf.n_modules) then
        fail "nf %s: transition to unknown instance %s" nf.n_name t.dst)
    nf.n_transitions
