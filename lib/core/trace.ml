(* The telemetry plane's span tracer: a bounded ring buffer of per-packet
   lifecycle spans (pull, parse, prefetch-issue, state access, MSHR wait,
   action body, task switch, completion) with cycle timestamps, plus exact
   (never-lossy) attribution books folded as events arrive.

   Like the fault plane, this is an install/inert subsystem: executors
   accept an optional [?telemetry] plane and every hook is a
   [match None -> ()] that charges nothing, so a run with no plane — and a
   run with one attached — is cycle-for-cycle identical to a plane-free
   build. The ring may drop old spans on overflow (recorded in [dropped]);
   the attribution books are plain counters and always exact, which is what
   lets the profiler reconcile against [Memstats] even on long runs. *)

(* Serving cache level of one demand access; [Inflight] = found in an MSHR
   (prefetched, fill not yet landed; the access paid the residual wait). *)
type level = L1 | L2 | Llc | Dram | Inflight

let n_levels = 5
let level_index = function L1 -> 0 | L2 -> 1 | Llc -> 2 | Dram -> 3 | Inflight -> 4
let level_of_index = function 0 -> L1 | 1 -> L2 | 2 -> Llc | 3 -> Dram | _ -> Inflight

let level_name = function
  | L1 -> "L1"
  | L2 -> "L2"
  | Llc -> "LLC"
  | Dram -> "DRAM"
  | Inflight -> "inflight"

(* Lifecycle phase of a span. [State_access]/[Mshr_wait] are fed by the
   memory-hierarchy tap; the rest by executor hooks. *)
type phase =
  | Pull            (* packet I/O: pulled from the source, rx descriptor cost *)
  | Parse           (* instant: headers available, first dispatch decided *)
  | Prefetch_issue  (* software prefetches issued (dur = issue cycles) *)
  | State_access    (* one demand line access served by a cache level *)
  | Mshr_wait       (* demand access that stalled on an in-flight fill *)
  | Action_body     (* one NFAction execution *)
  | Task_switch     (* scheduler visit overhead *)
  | Complete        (* instant: terminal event reached (emit/drop/fault) *)
  | Decision        (* instant: adaptive-controller reconfiguration *)

let phase_name = function
  | Pull -> "pull"
  | Parse -> "parse"
  | Prefetch_issue -> "prefetch"
  | State_access -> "state_access"
  | Mshr_wait -> "mshr_wait"
  | Action_body -> "action"
  | Task_switch -> "switch"
  | Complete -> "complete"
  | Decision -> "decision"

type span = {
  sp_ts : int;      (* start, in simulated cycles *)
  sp_dur : int;     (* 0 for instants *)
  sp_phase : phase;
  sp_task : int;    (* executor slot id; -1 = runtime outside any task *)
  sp_unit : int;    (* run-local packet sequence number; -1 = runtime *)
  sp_flow : int;    (* workload flow hint; -1 = unknown *)
  sp_nf : string;   (* NF instance, "" outside an action *)
  sp_cs : string;   (* qualified control state, "" outside an action *)
  sp_cls : Sref.state_class option;  (* state class of a memory span *)
  sp_level : level option;           (* serving level of a memory span *)
  sp_note : string; (* terminal event key on Complete, line count on prefetch *)
}

(* HDR-style log-linear histogram: exact below 16, then 16 sub-buckets per
   power of two — relative error bounded by 1/16 at any magnitude, constant
   memory. Used for the per-packet latency distribution. *)
module Hist = struct
  let sub_bits = 4
  let sub = 1 lsl sub_bits (* 16 *)
  let n_buckets = sub + (sub * 58) (* values up to 2^62 *)

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_v : int;
  }

  let create () = { buckets = Array.make n_buckets 0; count = 0; sum = 0; max_v = 0 }

  let msb v =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
    go 0 v

  let index v =
    if v < 0 then 0
    else if v < sub then v
    else
      let m = msb v in
      let m = min m (sub_bits + 57) in
      sub + ((m - sub_bits) * sub) + ((v lsr (m - sub_bits)) land (sub - 1))

  (* Lower bound of bucket [i] — the value reported for its members. *)
  let value_of_index i =
    if i < sub then i
    else
      let g = (i - sub) / sub and s = (i - sub) mod sub in
      let m = g + sub_bits in
      (1 lsl m) lor (s lsl (m - sub_bits))

  let record t v =
    let i = index v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let max_value t = t.max_v
  let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

  (* Nearest-rank percentile over the bucket lower bounds. *)
  let percentile t p =
    if t.count = 0 then 0
    else begin
      let rank = max 1 (((p * t.count) + 99) / 100) in
      let acc = ref 0 and result = ref t.max_v in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc >= rank then begin
             result := value_of_index i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  (* Non-empty (bucket lower bound, count) pairs, ascending. *)
  let nonzero t =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (value_of_index i, t.buckets.(i)) :: !acc
    done;
    !acc
end

(* One row of the exact attribution books. *)
type cell = { mutable c_count : int; mutable c_cycles : int }

(* Scheduler/MSHR occupancy sample (one per task switch, ring-bounded). *)
type occupancy = { oc_ts : int; oc_active : int; oc_mshr : int }

type t = {
  capacity : int;
  ring : span array;
  mutable total : int; (* spans ever recorded; ring keeps the newest *)
  (* live context, maintained by the executor hooks *)
  units : (int, int * int) Hashtbl.t; (* task id -> (unit, flow) *)
  mutable next_unit : int;
  mutable cur_task : int;
  mutable cur_unit : int;
  mutable cur_flow : int;
  mutable cur_nf : string;
  mutable cur_cs : string;
  mutable cur_cls : Sref.state_class option;
  mutable in_action : bool;
  mutable action_start : int;
  (* exact attribution books (independent of ring overflow) *)
  mem_attr : (string * string * string * int, cell) Hashtbl.t;
      (* (nf, control state, class name, level index) -> demand serves *)
  action_attr : (string * string, cell) Hashtbl.t; (* (nf, control state) *)
  level_counts : int array; (* demand serves per level *)
  level_cycles : int array; (* demand cycles per level *)
  mutable mem_cycles : int;
  mutable mem_outside_cycles : int; (* demand cycles outside any action *)
  mutable action_cycles : int;
  mutable pull_cycles : int;
  mutable prefetch_cycles : int; (* issue cycles outside any action *)
  mutable switch_cycles : int;
  mutable pulls : int;
  mutable completes : int;
  latencies : Hist.t;
  occ_ring : occupancy array;
  mutable occ_total : int;
  mutable occ_active_sum : int;  (* cumulative, exact under ring overflow *)
  mutable occ_mshr_sum : int;
  mutable decisions : int;
}

let default_capacity = 65536

let dummy_span =
  {
    sp_ts = 0;
    sp_dur = 0;
    sp_phase = Pull;
    sp_task = -1;
    sp_unit = -1;
    sp_flow = -1;
    sp_nf = "";
    sp_cs = "";
    sp_cls = None;
    sp_level = None;
    sp_note = "";
  }

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity dummy_span;
    total = 0;
    units = Hashtbl.create 64;
    next_unit = 0;
    cur_task = -1;
    cur_unit = -1;
    cur_flow = -1;
    cur_nf = "";
    cur_cs = "";
    cur_cls = None;
    in_action = false;
    action_start = 0;
    mem_attr = Hashtbl.create 256;
    action_attr = Hashtbl.create 64;
    level_counts = Array.make n_levels 0;
    level_cycles = Array.make n_levels 0;
    mem_cycles = 0;
    mem_outside_cycles = 0;
    action_cycles = 0;
    pull_cycles = 0;
    prefetch_cycles = 0;
    switch_cycles = 0;
    pulls = 0;
    completes = 0;
    latencies = Hist.create ();
    occ_ring = Array.make 8192 { oc_ts = 0; oc_active = 0; oc_mshr = 0 };
    occ_total = 0;
    occ_active_sum = 0;
    occ_mshr_sum = 0;
    decisions = 0;
  }

let push t sp =
  t.ring.(t.total mod t.capacity) <- sp;
  t.total <- t.total + 1

let bump tbl key cycles =
  match Hashtbl.find_opt tbl key with
  | Some c ->
      c.c_count <- c.c_count + 1;
      c.c_cycles <- c.c_cycles + cycles
  | None -> Hashtbl.add tbl key { c_count = 1; c_cycles = cycles }

(* ----- executor hooks ----- *)

(* A new unit of work entered task [task]: assign it the next packet
   sequence number and record the I/O span. *)
let on_pull t ~ts ~dur ~task ~flow =
  let unit = t.next_unit in
  t.next_unit <- unit + 1;
  Hashtbl.replace t.units task (unit, flow);
  t.cur_task <- task;
  t.cur_unit <- unit;
  t.cur_flow <- flow;
  t.pulls <- t.pulls + 1;
  t.pull_cycles <- t.pull_cycles + dur;
  push t { dummy_span with sp_ts = ts; sp_dur = dur; sp_phase = Pull; sp_task = task; sp_unit = unit; sp_flow = flow }

let on_parse t ~ts ~task =
  let unit, flow =
    match Hashtbl.find_opt t.units task with Some uf -> uf | None -> (-1, -1)
  in
  push t { dummy_span with sp_ts = ts; sp_phase = Parse; sp_task = task; sp_unit = unit; sp_flow = flow }

(* The scheduler turned to task [task]: subsequent spans belong to its
   unit until the next switch. *)
let set_task t ~task =
  t.cur_task <- task;
  match Hashtbl.find_opt t.units task with
  | Some (unit, flow) ->
      t.cur_unit <- unit;
      t.cur_flow <- flow
  | None ->
      t.cur_unit <- -1;
      t.cur_flow <- -1

let on_action_start t ~ts ~nf ~cs =
  t.cur_nf <- nf;
  t.cur_cs <- cs;
  t.in_action <- true;
  t.action_start <- ts

let on_action_end t ~ts =
  let dur = ts - t.action_start in
  t.in_action <- false;
  t.action_cycles <- t.action_cycles + dur;
  bump t.action_attr (t.cur_nf, t.cur_cs) dur;
  push t
    {
      dummy_span with
      sp_ts = t.action_start;
      sp_dur = dur;
      sp_phase = Action_body;
      sp_task = t.cur_task;
      sp_unit = t.cur_unit;
      sp_flow = t.cur_flow;
      sp_nf = t.cur_nf;
      sp_cs = t.cur_cs;
    };
  t.cur_nf <- "";
  t.cur_cs <- ""

(* State class of the demand access about to be charged (set by Exec_ctx
   just before it calls into the hierarchy, so the tap can attribute). *)
let set_cls t cls = t.cur_cls <- cls

(* One demand line access, reported by the memory-hierarchy tap. Accesses
   outside an action body (runtime bookkeeping) attribute to nf = "". *)
let on_mem t ~ts ~cycles ~level =
  let li = level_index level in
  t.level_counts.(li) <- t.level_counts.(li) + 1;
  t.level_cycles.(li) <- t.level_cycles.(li) + cycles;
  t.mem_cycles <- t.mem_cycles + cycles;
  if not t.in_action then t.mem_outside_cycles <- t.mem_outside_cycles + cycles;
  let nf = if t.in_action then t.cur_nf else "" in
  let cs = if t.in_action then t.cur_cs else "" in
  let cls_name = match t.cur_cls with Some c -> Sref.class_name c | None -> "-" in
  bump t.mem_attr (nf, cs, cls_name, li) cycles;
  push t
    {
      dummy_span with
      sp_ts = ts;
      sp_dur = cycles;
      sp_phase = (if level = Inflight then Mshr_wait else State_access);
      sp_task = (if t.in_action then t.cur_task else -1);
      sp_unit = (if t.in_action then t.cur_unit else -1);
      sp_flow = (if t.in_action then t.cur_flow else -1);
      sp_nf = nf;
      sp_cs = cs;
      sp_cls = t.cur_cls;
      sp_level = Some level;
    }

let on_prefetch t ~ts ~dur ~lines =
  if not t.in_action then t.prefetch_cycles <- t.prefetch_cycles + dur;
  push t
    {
      dummy_span with
      sp_ts = ts;
      sp_dur = dur;
      sp_phase = Prefetch_issue;
      sp_task = t.cur_task;
      sp_unit = t.cur_unit;
      sp_flow = t.cur_flow;
      sp_note = string_of_int lines;
    }

let on_switch t ~ts ~dur ~task =
  t.switch_cycles <- t.switch_cycles + dur;
  push t { dummy_span with sp_ts = ts; sp_dur = dur; sp_phase = Task_switch; sp_task = task }

let on_occupancy t ~ts ~active ~mshr =
  t.occ_ring.(t.occ_total mod Array.length t.occ_ring) <-
    { oc_ts = ts; oc_active = active; oc_mshr = mshr };
  t.occ_total <- t.occ_total + 1;
  t.occ_active_sum <- t.occ_active_sum + active;
  t.occ_mshr_sum <- t.occ_mshr_sum + mshr

(* The adaptive controller applied (or held) a reconfiguration; [note] is
   the move label. Runtime span: no task/unit/flow. *)
let on_decision t ~ts ~note =
  t.decisions <- t.decisions + 1;
  push t { dummy_span with sp_ts = ts; sp_phase = Decision; sp_note = note }

(* Task [task] reached a terminal event. [note] is the event key
   (EMIT/DROP/FAULT[r]/...), [latency] the cycles since its pull. *)
let on_complete t ~ts ~task ~note ~latency =
  let unit, flow =
    match Hashtbl.find_opt t.units task with Some uf -> uf | None -> (-1, -1)
  in
  t.completes <- t.completes + 1;
  Hist.record t.latencies latency;
  Hashtbl.remove t.units task;
  push t
    { dummy_span with sp_ts = ts; sp_phase = Complete; sp_task = task; sp_unit = unit; sp_flow = flow; sp_note = note }

(* ----- accessors ----- *)

let total_spans t = t.total
let dropped t = max 0 (t.total - t.capacity)
let pulls t = t.pulls
let completes t = t.completes

(* Retained spans, oldest first. *)
let spans t =
  let n = min t.total t.capacity in
  Array.init n (fun i -> t.ring.((t.total - n + i) mod t.capacity))

let level_count t level = t.level_counts.(level_index level)
let level_cycles t level = t.level_cycles.(level_index level)
let mem_cycles t = t.mem_cycles

(* Cycles the spans account for without double counting: memory traffic
   inside an action body is part of that action's span, so only
   out-of-action demand cycles are added. Always <= the run's cycles (the
   executors also charge transition, dispatch, and scan overheads that are
   deliberately not spanned). *)
let attributed_cycles t =
  t.pull_cycles + t.action_cycles + t.prefetch_cycles + t.switch_cycles
  + t.mem_outside_cycles

let pull_cycles t = t.pull_cycles
let action_cycles t = t.action_cycles
let prefetch_cycles t = t.prefetch_cycles
let switch_cycles t = t.switch_cycles
let mem_outside_cycles t = t.mem_outside_cycles

(* (nf, control state, class name, level, serves, cycles), sorted. *)
let mem_rows t =
  Hashtbl.fold
    (fun (nf, cs, cls, li) c acc ->
      (nf, cs, cls, level_of_index li, c.c_count, c.c_cycles) :: acc)
    t.mem_attr []
  |> List.sort compare

(* (nf, control state, executions, cycles), sorted. *)
let action_rows t =
  Hashtbl.fold (fun (nf, cs) c acc -> (nf, cs, c.c_count, c.c_cycles) :: acc) t.action_attr []
  |> List.sort compare

let latencies t = t.latencies

let occupancy t =
  let n = min t.occ_total (Array.length t.occ_ring) in
  Array.init n (fun i -> t.occ_ring.((t.occ_total - n + i) mod Array.length t.occ_ring))

(* (samples, sum of active tasks, sum of in-flight MSHR fills) over every
   occupancy sample ever taken — exact under ring overflow. *)
let occupancy_totals t = (t.occ_total, t.occ_active_sum, t.occ_mshr_sum)
let decisions t = t.decisions
