(* The per-packet run-to-completion baseline (§II-B): the execution model of
   BESS / FastClick / L25GC / Free5GC that the paper compares against.

   Each packet is processed start-to-finish with no yielding: every state
   access demand-fetches and the core stalls for the full latency of
   whatever level serves it. The same compiled {!Program} is executed —
   only the execution model differs — so comparisons isolate exactly the
   paper's variable. Prefetch policies are ignored. *)

let run ?label ?quiesce ?fault ?telemetry ?on_complete (worker : Worker.t)
    (program : Program.t) (source : Workload.source) =
  let label =
    Option.value label ~default:(Printf.sprintf "%s/rtc" (Program.name program))
  in
  let ctx = Worker.ctx worker in
  let cfg = worker.Worker.cfg in
  let snap = Worker.snapshot worker in
  let plane = match fault with Some p -> p | None -> Fault.create () in
  (* Telemetry hooks: [tel] is a no-op without a plane and never charges
     cycles, so traced and untraced runs are cycle-identical. *)
  let tel f = match telemetry with Some tr -> f tr | None -> () in
  (match telemetry with Some tr -> Exec_ctx.attach_trace ctx tr | None -> ());
  (* Specialized hot path, when the compiler attached one: dense Δ dispatch
     always; fused action runners only while untraced — a traced run keeps
     the interpreted action body so span hooks and error ordering are
     untouched (the runner is guard-equivalent either way, so observations
     match regardless). *)
  let spec = Specialize.get program in
  let step_fn =
    match spec with
    | Some sp -> fun cs ev -> Specialize.step sp cs ev
    | None -> fun cs ev -> Program.step program cs ev
  in
  let fast_runners =
    match (spec, telemetry) with
    | Some sp, None ->
        Some
          (Specialize.runners sp plane ~err:(fun q ->
               Printf.sprintf "Rtc: control state %s has no action" q))
    | _ -> None
  in
  let task = Nftask.create 0 in
  let packets = ref 0 in
  let drops = ref 0 in
  let wire_bytes = ref 0 in
  let faulted = ref 0 in
  let latencies = Metrics.Collector.create () in
  (* Every RTC pull boundary is quiescent (the previous packet completed),
     so the pause hook simply stops the drain; a hook that never answers
     [true] leaves the run byte-identical to one without it. *)
  let want_pause () = match quiesce with Some q -> q () | None -> false in
  let rec drain () =
    if want_pause () then ()
    else
    match source () with
    | None -> ()
    | Some item ->
        Nftask.load task ~cs:(Program.start program) ?packet:item.Workload.packet
          ~aux:item.Workload.aux ~flow_hint:item.Workload.flow_hint ();
        task.Nftask.start_clock <- ctx.Exec_ctx.clock;
        Exec_ctx.compute ctx ~cycles:cfg.Worker.rx_tx_cycles
          ~instrs:cfg.Worker.rx_tx_instrs;
        tel (fun tr ->
            Trace.on_pull tr ~ts:task.Nftask.start_clock ~dur:cfg.Worker.rx_tx_cycles
              ~task:0 ~flow:task.Nftask.flow_hint;
            Trace.on_parse tr ~ts:ctx.Exec_ctx.clock ~task:0);
        let rec step () =
          match task.Nftask.event with
          | Event.Faulted _ -> () (* quarantined mid-run; stop executing *)
          | _ ->
              let next = step_fn task.Nftask.cs task.Nftask.event in
              if Program.is_done program next then ()
              else begin
                task.Nftask.cs <- next;
                Exec_ctx.compute ctx ~cycles:cfg.Worker.rtc_dispatch_cycles ~instrs:2;
                (match fast_runners with
                | Some r -> task.Nftask.event <- r.(next) ctx task
                | None ->
                    let info = Program.info program next in
                    let action =
                      match info.Program.action with
                      | Some a -> a
                      | None ->
                          invalid_arg
                            (Printf.sprintf "Rtc: control state %s has no action"
                               info.Program.qname)
                    in
                    tel (fun tr ->
                        Trace.on_action_start tr ~ts:ctx.Exec_ctx.clock
                          ~nf:info.Program.inst ~cs:info.Program.qname);
                    task.Nftask.event <-
                      Fault.guard plane ~nf:info.Program.inst action ctx task;
                    tel (fun tr -> Trace.on_action_end tr ~ts:ctx.Exec_ctx.clock));
                step ()
              end
        in
        (match Fault.on_load plane ~mem:ctx.Exec_ctx.mem ~now:ctx.Exec_ctx.clock task with
        | Some r -> task.Nftask.event <- Event.Faulted (Fault.reason_to_key r)
        | None -> step ());
        incr packets;
        (match
           Fault.complete plane ~flow:task.Nftask.flow_hint
             ~faulted:(Fault.reason_of_event task.Nftask.event)
         with
        | Some r ->
            incr faulted;
            task.Nftask.event <- Event.Faulted (Fault.reason_to_key r)
        | None ->
            if
              Event.equal task.Nftask.event Event.Drop_packet
              || Event.equal task.Nftask.event Event.Match_fail
            then incr drops
            else (
              match task.Nftask.packet with
              | Some p -> wire_bytes := !wire_bytes + p.Netcore.Packet.wire_len
              | None -> ());
            Metrics.Collector.record latencies
              (ctx.Exec_ctx.clock - task.Nftask.start_clock));
        tel (fun tr ->
            Trace.on_complete tr ~ts:ctx.Exec_ctx.clock ~task:0
              ~note:(Event.to_key task.Nftask.event)
              ~latency:(ctx.Exec_ctx.clock - task.Nftask.start_clock));
        (match on_complete with Some f -> f task | None -> ());
        Nftask.retire task;
        drain ()
  in
  Fun.protect
    ~finally:(fun () ->
      match telemetry with Some _ -> Exec_ctx.detach_trace ctx | None -> ())
    drain;
  Worker.finish
    ?latency:(Metrics.Collector.summarize latencies)
    ~faulted:!faulted ~faults:(Fault.counts plane) ~degraded:(Fault.degraded plane)
    worker snap ~label ~packets:!packets ~drops:!drops ~wire_bytes:!wire_bytes
    ~switches:0
