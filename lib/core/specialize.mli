(** Compile-and-specialize pass: fused action closures and dense FSM
    dispatch attached to a compiled {!Program} through its payload
    extension point.

    The artifacts change only host-side dispatch work; every simulated
    charge (cycles, instructions, memory accesses, fault accounting)
    reaches the execution context exactly as on the interpreted path, so
    observations and metrics are byte-identical. Executors consult
    {!get} once per run and fall back to the interpreter when the pass
    was not installed. *)

type t

type Program.payload += P of t

(** Build the specialized artifacts for [p] and attach them to its
    payload slot. Idempotent: an already-specialized program is left
    untouched. *)
val install : Program.t -> unit

(** The specialized artifacts, if {!install} ran on this program. *)
val get : Program.t -> t option

(** Detach the pass from [p] (no-op when absent). The differential oracle
    uses this to guarantee interpreted baselines on shared program
    instances. *)
val remove : Program.t -> unit

val installed : Program.t -> bool

(** Δ through the dense jump table. Semantically identical to
    {!Program.step}: dead table cells and events without a dense class
    (quarantine markers) defer to the interpreter, including its
    undefined-transition [Invalid_argument]. *)
val step : t -> int -> Event.t -> int

(** One fused runner per control state, binding the action's base charge,
    body, instance attribution and the fault-plane exception barrier.
    While [plane] is inert ({!Fault.live} false, re-checked per call) the
    armed-countdown probe is skipped; conversions are byte-identical to
    {!Fault.guard}. States without an action raise [Invalid_argument]
    with [err qname] — each executor supplies its own message so error
    text is preserved. *)
val runners :
  t -> Fault.t -> err:(string -> string) -> (Exec_ctx.t -> Nftask.t -> Event.t) array

(** Width of the dense table: 5 builtin classes + interned user keys. *)
val n_classes : t -> int

(** The interned user event keys with their classes, sorted by class. *)
val user_classes : t -> (string * int) list

(** The live dense Δ table, indexed [state * n_classes + class]; [-1]
    marks a dead cell (dispatch defers to the interpreter). This is the
    array the dispatcher reads — the symbolic equivalence checker audits
    it cell by cell, and mutation tests corrupt it to prove the checker
    notices. *)
val next_table : t -> int array
