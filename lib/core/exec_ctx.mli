(** Per-core execution context: the simulated memory hierarchy plus cycle
    and instruction counters. NFAction bodies charge all memory traffic and
    computation here; executors add their own overheads. *)

type t = {
  mem : Memsim.Hierarchy.t;
  layout : Memsim.Layout.t;
  mutable clock : int;  (** cycles *)
  mutable instrs : int;  (** retired instructions, for IPC *)
  cycles_by_class : int array;  (** memory cycles per {!Sref.state_class} *)
  mutable trace : Trace.t option;  (** telemetry plane, [None] = inert *)
}

val n_classes : int
val class_index : Sref.state_class -> int
val class_of_index : int -> Sref.state_class

val create : ?mem_cfg:Memsim.Hierarchy.config -> unit -> t

(** Attach the telemetry plane: stores it and taps the memory hierarchy so
    every demand line access reports its serving level to the trace.
    Executors pair attach/detach under [Fun.protect], so a raising run
    cannot leak the tap into a later one. *)
val attach_trace : t -> Trace.t -> unit

val detach_trace : t -> unit

(** Pure computation: advance the clock without memory traffic. *)
val compute : t -> cycles:int -> instrs:int -> unit

(** Demand load/store of [bytes] at [addr], classified as [cls] state;
    charges the latency of whatever level serves it. *)
val read : t -> cls:Sref.state_class -> addr:int -> bytes:int -> unit

val write : t -> cls:Sref.state_class -> addr:int -> bytes:int -> unit
val read_sref : t -> Sref.t -> unit

(** Issue a software prefetch (non-blocking); returns fills issued. *)
val prefetch : t -> addr:int -> bytes:int -> int

(** Would an access now be cheap? (resident in L1/L2 with no fill in
    flight). *)
val ready : t -> addr:int -> bytes:int -> bool

val counters : t -> Memsim.Memstats.t
val state_access_cycles : t -> Sref.state_class -> int
