(** Work sources feeding the executors: one item per NF input — a packet
    and/or an auxiliary code (e.g. the AMF message type). Pull-based;
    [None] ends the run. *)

type item = {
  packet : Netcore.Packet.t option;
  aux : int;
  flow_hint : int;  (** flow/session/UE index; used for per-flow ordering *)
}

type source = unit -> item option

val of_fn : (unit -> item option) -> source

(** At most [count] items from a producer. *)
val limited : int -> (unit -> item) -> source

val total_items : item list -> source

(** [tap f src] calls [f] on every item pulled from [src], unchanged —
    deterministic observation of the input stream for replay cross-checks. *)
val tap : (item -> unit) -> source -> source

(** [take n src] ends the stream after [n] items (prefix replay). *)
val take : int -> source -> source

(** Replay a parsed pcap capture in timestamp order; flow identities are
    re-derived by decoding the captured headers. Records too short for an
    Ethernet+IPv4 header end the stream. *)
val of_pcap : Netcore.Pcap.record list -> pool:Netcore.Packet.Pool.pool -> source

(** Generic flows (NAT / LB / FW / NM / SFC). *)
val of_flowgen :
  ?arena:Netcore.Packet.Arena.t -> Traffic.Flowgen.t ->
  pool:Netcore.Packet.Pool.pool -> count:int -> source

(** UPF downlink; [flow_hint] is the PFCP session index. *)
val of_mgw_downlink :
  ?arena:Netcore.Packet.Arena.t -> Traffic.Mgw.t ->
  pool:Netcore.Packet.Pool.pool -> count:int -> source

val amf_msg_code : Traffic.Mgw.amf_msg -> int

(** @raise Invalid_argument on unknown codes. *)
val amf_msg_of_code : int -> Traffic.Mgw.amf_msg

(** NAS wire message type for a workload message, and back. *)
val nas_type_of_msg : Traffic.Mgw.amf_msg -> int

val msg_of_nas_type : int -> Traffic.Mgw.amf_msg option

(** Signalling packet for (ue, msg): real headers plus an encoded NAS-lite
    PDU the AMF parses back out of the bytes. *)
val amf_packet :
  ?arena:Netcore.Packet.Arena.t -> ue:int -> msg:Traffic.Mgw.amf_msg -> unit ->
  Netcore.Packet.t

(** AMF signalling; [aux] carries the message code, [flow_hint] the UE. *)
val of_amf :
  ?arena:Netcore.Packet.Arena.t -> Traffic.Mgw.amf_gen ->
  pool:Netcore.Packet.Pool.pool -> count:int -> source
