(** Multi-core platform (§VII-C): share-nothing per-core runtimes; RSS
    steers each flow to one core, so cores hold disjoint state and scale
    independently. The LLC capacity is partitioned across cores. *)

type t

(** @raise Invalid_argument when [cores <= 0]. *)
val create : ?cfg:Worker.cfg -> cores:int -> unit -> t

(** The per-core worker configuration actually in effect (LLC share
    already partitioned across the cores). *)
val config : t -> Worker.cfg

val cores : t -> int
val worker : t -> int -> Worker.t
val workers : t -> Worker.t array

(** Run one experiment on every core; [setup] builds the per-core NF and
    traffic slice. Merge results with {!Metrics.merge_parallel}. *)
val run :
  t ->
  setup:(Worker.t -> int -> Program.t * Workload.source) ->
  execute:(Worker.t -> Program.t -> Workload.source -> Metrics.run) ->
  Metrics.run list

val run_interleaved :
  t -> n_tasks:int -> setup:(Worker.t -> int -> Program.t * Workload.source) ->
  Metrics.run list

val run_rtc :
  t -> setup:(Worker.t -> int -> Program.t * Workload.source) -> Metrics.run list
