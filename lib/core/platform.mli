(** Multi-core platform (§VII-C): share-nothing per-core runtimes; RSS
    steers each flow to one core, so cores hold disjoint state and scale
    independently. The LLC capacity is partitioned across cores. *)

type t

(** @raise Invalid_argument when [cores <= 0]. *)
val create : ?cfg:Worker.cfg -> cores:int -> unit -> t

(** The per-core worker configuration actually in effect (LLC share
    already partitioned across the cores). *)
val config : t -> Worker.cfg

val cores : t -> int
val worker : t -> int -> Worker.t
val workers : t -> Worker.t array

(** Run one experiment on every core; [setup] builds the per-core NF and
    traffic slice. Merge results with {!Metrics.merge_parallel}. *)
val run :
  t ->
  setup:(Worker.t -> int -> Program.t * Workload.source) ->
  execute:(Worker.t -> Program.t -> Workload.source -> Metrics.run) ->
  Metrics.run list

val run_interleaved :
  t -> n_tasks:int -> setup:(Worker.t -> int -> Program.t * Workload.source) ->
  Metrics.run list

val run_rtc :
  t -> setup:(Worker.t -> int -> Program.t * Workload.source) -> Metrics.run list

(** Epoch-based checkpointing and bounded replay logging — the platform
    half of crash recovery. Every [epoch] pulls a core exports its
    per-flow state (an opaque payload; the Migration layer above lib/core
    produces it) and trims its replay log; between checkpoints each pulled
    item is logged. An adopter restores the last checkpoint and replays
    the suffix. Journaling is pure bookkeeping (no simulated-memory
    traffic), so enabling it leaves runs byte-identical. *)
module Recovery : sig
  type plan = { epoch : int; log_capacity : int }

  val default_plan : plan

  (** RSS pinning: the core owning a flow hint ([hint mod cores]; hint-less
      items fall to core 0).
      @raise Invalid_argument when [cores <= 0]. *)
  val owner : cores:int -> int -> int

  (** One logged pull: packet clone (same id — replay must present the
      same packet to the dedup policy and fault plane), workload hint/aux,
      and the injection that was armed for it, if any. *)
  type entry = {
    e_pkt : Netcore.Packet.t option;
    e_hint : int;
    e_aux : int;
    e_inj : Fault.injection option;
  }

  type 'a journal

  (** @raise Invalid_argument when [epoch <= 0] or [log_capacity < epoch]. *)
  val journal : plan -> 'a journal

  (** [true] when a checkpoint is due before the next pull (pulls #0,
      #epoch, #2*epoch, ...). *)
  val boundary : 'a journal -> bool

  (** Install a fresh checkpoint and trim the replay log. *)
  val checkpoint : 'a journal -> 'a -> unit

  (** Append one pulled item to the replay log. If the capacity bound is
      hit (impossible when checkpointing at every boundary), the oldest
      entry is dropped and counted in {!overflowed}. *)
  val record : 'a journal -> entry -> unit

  val last_checkpoint : 'a journal -> 'a option

  (** Entries since the last checkpoint, oldest first. *)
  val suffix : 'a journal -> entry list

  val recorded : 'a journal -> int
  val trimmed : 'a journal -> int
  val overflowed : 'a journal -> int
end
