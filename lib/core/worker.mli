(** Per-core runtime (§V, Fig 8): each worker owns its core's simulated
    memory hierarchy, address space, clock, and the runtime cost model
    (task-switch, fetch and packet-I/O overheads). *)

type cfg = {
  freq_ghz : float;
  switch_cycles : int;  (** scheduler overhead per NFTask visit *)
  switch_instrs : int;
  fetch_cycles : int;  (** Transition+Fetch step (Algorithm 1 l.15-16) *)
  fetch_instrs : int;
  rx_tx_cycles : int;  (** per-packet I/O (descriptor ring, doorbell) *)
  rx_tx_instrs : int;
  rtc_dispatch_cycles : int;  (** RTC per-action call overhead *)
  mem_cfg : Memsim.Hierarchy.config;
}

(** 2.7 GHz Xeon 8168-like defaults. *)
val default_cfg : cfg

type t = { id : int; cfg : cfg; ctx : Exec_ctx.t }

val create : ?cfg:cfg -> id:int -> unit -> t
val ctx : t -> Exec_ctx.t
val layout : t -> Memsim.Layout.t
val id : t -> int

(** Measurement bracket: {!snapshot} before a run, {!finish} after. *)
type snapshot

val snapshot : t -> snapshot

(** [faulted]/[faults]/[degraded] come from the run's fault plane and
    default to a fault-free run. *)
val finish :
  ?latency:Metrics.latency -> ?faulted:int ->
  ?faults:(string * Fault.reason * int) list -> ?degraded:bool -> t ->
  snapshot -> label:string -> packets:int -> drops:int -> wire_bytes:int ->
  switches:int -> Metrics.run
