(* Work sources feeding the executors. An item is one unit of NF input — a
   packet (for data-plane NFs) and/or an auxiliary code (e.g. the AMF
   message type). Sources are pull-based: [None] means the run is over. *)

open Netcore

type item = {
  packet : Packet.t option;
  aux : int;
  flow_hint : int;  (* generator's flow/session/UE index, for cross-checks *)
}

type source = unit -> item option

let of_fn f : source = f

(* At most [count] items from a producer. *)
let limited count (produce : unit -> item) : source =
  let left = ref count in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      Some (produce ())
    end

(* Observe every item as it is pulled, without changing the stream. The
   oracle uses this to record the exact input sequence each executor saw. *)
let tap f (src : source) : source =
 fun () ->
  match src () with
  | None -> None
  | Some item ->
      f item;
      Some item

(* First [n] items of a source; used by the oracle's divergence minimizer
   to replay shrinking prefixes of a workload. *)
let take n (src : source) : source =
  let left = ref n in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      src ()
    end

let total_items (items : item list) : source =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

(* Replay a parsed pcap capture: reconstruct packets (flow, offsets, wire
   length) from the captured bytes and feed them in timestamp order. The
   flow identity is re-derived by actually decoding the headers. *)
let of_pcap (records : Pcap.record list) ~pool : source =
  let ordered =
    List.stable_sort (fun a b -> compare a.Pcap.ts_us b.Pcap.ts_us) records
  in
  let remaining = ref ordered in
  (* Malformed records — truncated below Eth+IPv4+ports or failing the
     typed IPv4 decode — are skipped, not treated as end-of-stream: one
     garbage record in a capture must not silently discard the rest of the
     trace (and must never raise out of the decode). *)
  let rec next () =
    match !remaining with
    | [] -> None
    | r :: rest -> (
        remaining := rest;
        let data = r.Pcap.data in
        let l4_off = Ethernet.header_bytes + Ipv4.header_bytes in
        if Bytes.length data < l4_off + 4 then next ()
        else
          match Ipv4.decode_result data ~off:Ethernet.header_bytes with
          | Error _ -> next ()
          | Ok ip ->
              let flow =
                Flow.make ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
                  ~src_port:(L4.src_port data ~off:l4_off)
                  ~dst_port:(L4.dst_port data ~off:l4_off)
                  ~proto:ip.Ipv4.proto
              in
              let pkt = Packet.make ~flow ~wire_len:(max r.Pcap.orig_len (l4_off + 8)) () in
              (* Carry the captured bytes verbatim. *)
              Bytes.blit data 0 pkt.Packet.buf 0
                (min (Bytes.length data) (Bytes.length pkt.Packet.buf));
              pkt.Packet.hdr_len <-
                max pkt.Packet.hdr_len
                  (min (Bytes.length data) (Bytes.length pkt.Packet.buf));
              Packet.Pool.assign pool pkt;
              Some { packet = Some pkt; aux = 0; flow_hint = -1 })
  in
  next

(* Generic flows (NAT / LB / FW / NM / SFC experiments). *)
let of_flowgen ?arena gen ~pool ~count : source =
  limited count (fun () ->
      let idx, pkt = Traffic.Flowgen.next_with_idx ?arena gen in
      Packet.Pool.assign pool pkt;
      { packet = Some pkt; aux = 0; flow_hint = idx })

(* UPF downlink (MGW workload): flow_hint is the PFCP session index. *)
let of_mgw_downlink ?arena mgw ~pool ~count : source =
  limited count (fun () ->
      let si, _pdr, pkt = Traffic.Mgw.next_downlink ?arena mgw in
      Packet.Pool.assign pool pkt;
      { packet = Some pkt; aux = 0; flow_hint = si })

(* AMF signalling: aux encodes the message type; small NAS packets. *)
let amf_msg_code = function
  | Traffic.Mgw.Registration_request -> 0
  | Traffic.Mgw.Authentication_response -> 1
  | Traffic.Mgw.Security_mode_complete -> 2
  | Traffic.Mgw.Registration_complete -> 3
  | Traffic.Mgw.Pdu_session_request -> 4
  | Traffic.Mgw.Service_request -> 5
  | Traffic.Mgw.Periodic_update -> 6
  | Traffic.Mgw.Context_release -> 7
  | Traffic.Mgw.Deregistration_request -> 8

let amf_msg_of_code = function
  | 0 -> Traffic.Mgw.Registration_request
  | 1 -> Traffic.Mgw.Authentication_response
  | 2 -> Traffic.Mgw.Security_mode_complete
  | 3 -> Traffic.Mgw.Registration_complete
  | 4 -> Traffic.Mgw.Pdu_session_request
  | 5 -> Traffic.Mgw.Service_request
  | 6 -> Traffic.Mgw.Periodic_update
  | 7 -> Traffic.Mgw.Context_release
  | 8 -> Traffic.Mgw.Deregistration_request
  | n -> invalid_arg (Printf.sprintf "amf_msg_of_code: %d" n)

(* NAS message type on the wire for each workload message. *)
let nas_type_of_msg = function
  | Traffic.Mgw.Registration_request -> Nas.mt_registration_request
  | Traffic.Mgw.Authentication_response -> Nas.mt_authentication_response
  | Traffic.Mgw.Security_mode_complete -> Nas.mt_security_mode_complete
  | Traffic.Mgw.Registration_complete -> Nas.mt_registration_complete
  | Traffic.Mgw.Pdu_session_request -> Nas.mt_ul_nas_transport
  | Traffic.Mgw.Service_request -> Nas.mt_service_request
  | Traffic.Mgw.Periodic_update -> Nas.mt_periodic_update
  | Traffic.Mgw.Context_release -> Nas.mt_context_release
  | Traffic.Mgw.Deregistration_request -> Nas.mt_deregistration_request

let msg_of_nas_type ty =
  if ty = Nas.mt_registration_request then Some Traffic.Mgw.Registration_request
  else if ty = Nas.mt_authentication_response then Some Traffic.Mgw.Authentication_response
  else if ty = Nas.mt_security_mode_complete then Some Traffic.Mgw.Security_mode_complete
  else if ty = Nas.mt_registration_complete then Some Traffic.Mgw.Registration_complete
  else if ty = Nas.mt_ul_nas_transport then Some Traffic.Mgw.Pdu_session_request
  else if ty = Nas.mt_service_request then Some Traffic.Mgw.Service_request
  else if ty = Nas.mt_periodic_update then Some Traffic.Mgw.Periodic_update
  else if ty = Nas.mt_context_release then Some Traffic.Mgw.Context_release
  else if ty = Nas.mt_deregistration_request then Some Traffic.Mgw.Deregistration_request
  else None

(* Build the NGAP/NAS signalling packet for (ue, msg): real TCP/SCTP-port
   headers with a genuine NAS-lite PDU as payload — the AMF's dispatch
   action parses it back out of the bytes. *)
let amf_packet ?arena ~ue ~msg () =
  let flow =
    Flow.make
      ~src_ip:(Int32.of_int (0x0A640000 lor (ue land 0xFFFF)))
      ~dst_ip:(Ipv4.addr_of_string "10.250.0.1")
      ~src_port:(38412 + (ue mod 1000))
      ~dst_port:38412 ~proto:Ipv4.proto_tcp
  in
  let pkt = Packet.make ?arena ~flow ~wire_len:120 () in
  let nas =
    { Nas.msg_type = nas_type_of_msg msg; ue_id = ue; payload_len = 64 }
  in
  Nas.encode nas pkt.Packet.buf ~off:pkt.Packet.hdr_len;
  pkt.Packet.hdr_len <- pkt.Packet.hdr_len + Nas.encoded_bytes;
  pkt

let of_amf ?arena gen ~pool ~count : source =
  limited count (fun () ->
      let ue, msg = Traffic.Mgw.amf_next gen in
      let pkt = amf_packet ?arena ~ue ~msg () in
      Packet.Pool.assign pool pkt;
      { packet = Some pkt; aux = amf_msg_code msg; flow_hint = ue })
