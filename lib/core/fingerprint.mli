(** Stable 64-bit digests of observable state (FNV-1a), used by the
    differential oracle to compare final NF state across executors without
    shipping the state itself. Callers must feed data in a canonical order
    (e.g. sort hash-table keys first) so equal state yields equal digests. *)

type t

val create : unit -> t
val feed_byte : t -> int -> unit
val feed_int : t -> int -> unit
val feed_int64 : t -> int64 -> unit
val feed_bool : t -> bool -> unit

(** Strings/bytes are length-prefixed so concatenation ambiguity cannot
    produce colliding feeds. *)
val feed_string : t -> string -> unit

val feed_bytes : t -> bytes -> unit
val feed_sub : t -> bytes -> off:int -> len:int -> unit
val feed_int_array : t -> int array -> unit
val feed_int64_array : t -> int64 array -> unit

val value : t -> int64
val to_hex : t -> string
val equal : t -> t -> bool

(** [of_fn feed] runs [feed] on a fresh accumulator and returns the hex. *)
val of_fn : (t -> unit) -> string
