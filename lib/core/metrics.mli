(** Per-run measurements: the quantities the paper's figures report —
    throughput, IPC, per-level cache misses per packet, state-access time
    share. *)

(** Per-packet latency distribution, in cycles from arrival to
    completion. *)
type latency = {
  l_count : int;
  l_mean : float;
  l_p50 : int;
  l_p90 : int;
  l_p99 : int;
  l_max : int;
}

(** Sample collector used by the executors. *)
module Collector : sig
  type t

  val create : unit -> t
  val record : t -> int -> unit

  (** [None] when no samples were recorded. *)
  val summarize : t -> latency option
end

type run = {
  label : string;
  packets : int;
  drops : int;
  cycles : int;
  instrs : int;
  wire_bytes : int;
  switches : int;  (** NFTask switches (0 under RTC) *)
  mem : Memsim.Memstats.t;  (** counter delta over the run *)
  freq_ghz : float;
  state_cycles : int array;  (** memory cycles per {!Sref.state_class} *)
  latency : latency option;  (** per-packet latency, if collected *)
  faulted : int;  (** completions quarantined by the fault plane *)
  faults : (string * Fault.reason * int) list;
      (** per-NF per-reason fault taxonomy, sorted (see {!Fault.counts}) *)
  degraded : bool;  (** at least one flow was poisoned during the run *)
  imbalance : (float * float) option;
      (** (offered, served) per-core max-to-mean load ratios, [Some] only
          on merged multi-core runs: 1.0 is perfect balance, [cores] is one
          core carrying everything (skew collapse) *)
}

(** Convert a cycle count to nanoseconds at the run's clock. *)
val cycles_to_ns : run -> int -> float

val seconds : run -> float
val mpps : run -> float
val gbps : run -> float

(** Aggregate over [cores] replicas, capped at [line_rate] (default 100). *)
val gbps_scaled : ?line_rate:float -> run -> cores:int -> float

val ipc : run -> float
val cycles_per_packet : run -> float
val per_packet : run -> int -> float
val l1_misses_per_packet : run -> float
val l2_misses_per_packet : run -> float
val llc_misses_per_packet : run -> float
val l1_hit_rate : run -> float

(** Fraction of run time stalled on the given state classes. *)
val state_access_share : run -> Sref.state_class list -> float

val switches_per_second : run -> float
val pp_row : Format.formatter -> run -> unit

(** One line per (nf, reason) taxonomy entry; prints nothing for a
    fault-free run. *)
val pp_faults : Format.formatter -> run -> unit

(** Per-core (offered, served) max-to-mean load ratios over a run set —
    offered counts packets pulled, served counts completions that made the
    wire (packets - drops - faulted). *)
val load_imbalance : run list -> float * float

(** Combine concurrent per-core runs: counts add, cycles take the max
    (latency distributions are not merged), and {!run.imbalance} is
    computed over the inputs.
    @raise Invalid_argument on an empty list. *)
val merge_parallel : run list -> run

(** Combine sequential legs on one core (the adaptive driver's epochs):
    counts and cycles both add. The fault taxonomy comes from the last leg
    (cumulative when the legs share one plane); [?faults] overrides it
    when they don't. Latency distributions are not merged.
    @raise Invalid_argument on an empty list. *)
val merge_sequential :
  ?label:string -> ?faults:(string * Fault.reason * int) list -> run list -> run

val pp_latency : Format.formatter -> run -> unit
