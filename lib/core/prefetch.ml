(* Prefetch policy (§V, "Cache Management"): the compiler attaches to every
   control state a list of symbolic targets describing the NFState the
   state's action will access. At the scheduler's Fetch step the targets
   resolve — via the NFTask's references — to concrete (address, size)
   blocks that the software prefetcher pushes towards L1/L2.

   Targets are symbolic (not closures) so the redundant-prefetch-removal
   pass can compare them across control states. *)

open Structures

type target =
  | Packet_header of int
      (* first [n] bytes of the packet buffer (headers) *)
  | Match_addrs
      (* whatever (addr, bytes) list the previous match step resolved *)
  | Per_flow of State_arena.t * (string * int) list
      (* per-flow entry of this module's arena at index [task.matched];
         with a non-empty field list, only those (field, bytes) slices *)
  | Sub_flow of State_arena.t * (string * int) list
      (* as Per_flow, at index [task.sub_matched] *)
  | Fixed of Sref.t
      (* a fixed region, e.g. control state *)

let class_of = function
  | Packet_header _ -> `Packet
  | Match_addrs -> `Match_addrs
  | Per_flow _ -> `Per_flow
  | Sub_flow _ -> `Sub_flow
  | Fixed _ -> `Fixed

(* Structural equality; arenas compare by label (unique per instance). *)
let equal_target a b =
  match (a, b) with
  | Packet_header x, Packet_header y -> x = y
  | Match_addrs, Match_addrs -> true
  | Per_flow (ar1, f1), Per_flow (ar2, f2) | Sub_flow (ar1, f1), Sub_flow (ar2, f2) ->
      String.equal (State_arena.label ar1) (State_arena.label ar2) && f1 = f2
  | Fixed s1, Fixed s2 -> s1 = s2
  | _ -> false

let arena_blocks arena idx fields =
  if idx < 0 then []
  else
    match fields with
    | [] -> [ (State_arena.addr arena idx, State_arena.entry_bytes arena) ]
    | fields ->
        List.map
          (fun (name, bytes) -> (State_arena.field_addr arena idx name, bytes))
          fields

(* Resolve a target against a task. Unresolvable targets (e.g. no match
   result yet) resolve to [] — the action will simply demand-fetch. *)
let resolve target (task : Nftask.t) =
  match target with
  | Packet_header n -> (
      match task.Nftask.packet with
      | Some p when p.Netcore.Packet.sim_addr >= 0 -> [ (p.Netcore.Packet.sim_addr, n) ]
      | Some _ | None -> [])
  | Match_addrs -> task.Nftask.match_addrs
  | Per_flow (arena, fields) -> arena_blocks arena task.Nftask.matched fields
  | Sub_flow (arena, fields) -> arena_blocks arena task.Nftask.sub_matched fields
  | Fixed s -> [ (s.Sref.addr, s.Sref.bytes) ]

let resolve_all targets task = List.concat_map (fun t -> resolve t task) targets

let pp_target ppf = function
  | Packet_header n -> Fmt.pf ppf "packet[0..%d]" n
  | Match_addrs -> Fmt.string ppf "match_addrs"
  | Per_flow (a, []) -> Fmt.pf ppf "per_flow(%s)" (State_arena.label a)
  | Per_flow (a, fs) ->
      Fmt.pf ppf "per_flow(%s){%a}" (State_arena.label a)
        Fmt.(list ~sep:comma string)
        (List.map fst fs)
  | Sub_flow (a, []) -> Fmt.pf ppf "sub_flow(%s)" (State_arena.label a)
  | Sub_flow (a, fs) ->
      Fmt.pf ppf "sub_flow(%s){%a}" (State_arena.label a)
        Fmt.(list ~sep:comma string)
        (List.map fst fs)
  | Fixed s -> Sref.pp ppf s
