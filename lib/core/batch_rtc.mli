(** Run-to-completion with batched software prefetching — the
    CuckooSwitch / G-opt style prior art of §II-C. Per RX batch: a prefetch
    pass pre-runs each packet's pure match prefix (key extraction + first
    hash) and prefetches the resolved first bucket plus the headers; a
    processing pass then runs each packet to completion. Control-flow-
    dependent accesses after the first bucket (second bucket, key store,
    tree descent, per-flow state, later NFs) remain demand misses — the
    divergence limitation the interleaved model removes. *)

val default_batch : int

(** [on_complete] observes each finished task just before it is retired —
    the differential oracle's tap. [fault] supplies the run's
    fault-injection plane (a fresh empty plane when omitted). [telemetry]
    attaches the span tracer for the duration of the run; its hooks never
    charge cycles, so traced and untraced runs are cycle-identical.
    [quiesce] is polled before each batch fill (batch boundaries are
    quiescent); once it answers [true] the run returns with
    pulled = completed.
    @raise Invalid_argument when [batch <= 0]. *)
val run :
  ?label:string -> ?batch:int -> ?quiesce:(unit -> bool) -> ?fault:Fault.t ->
  ?telemetry:Trace.t -> ?on_complete:(Nftask.t -> unit) -> Worker.t ->
  Program.t -> Workload.source -> Metrics.run
