(* The interleaved function-stream executor — Algorithm 1 of the paper.

   A fixed set of NFTasks is multiplexed round-robin on one core. The Fetch
   step (run right after each transition) resolves the next action's
   NFState targets and issues their prefetches immediately, so the fills
   overlap with the execution of the other function streams. On a visit,
   the scheduler checks the task's P-state (isPrefetched, Algorithm 1 line
   7): if a fill is still in flight it re-issues anything dropped or
   evicted and switches to the next task; otherwise it executes the action,
   takes the FSM transition and fetches for the successor state.

   Finished NFTasks are re-initialised with new work in place (line 13), so
   the pipeline stays full until the source drains. *)

type completion = { completed : int; dropped : int; wire_bytes : int; faulted : int }

(* Task-selection policy. The paper's scheduler is round-robin; Ready_first
   is a design-space variant that scans for a task whose P-state allows
   immediate execution, trading a (charged) scan for fewer wasted visits. *)
type policy = Round_robin | Ready_first

let run ?label ?(policy = Round_robin) ?(prefetch_distance = 1) ?quiesce ?fault
    ?telemetry ?on_complete (worker : Worker.t) (program : Program.t) ~n_tasks
    (source : Workload.source) =
  if n_tasks <= 0 then invalid_arg "Scheduler.run: n_tasks must be positive";
  if prefetch_distance < 0 then
    invalid_arg "Scheduler.run: prefetch_distance must be >= 0";
  let label =
    Option.value label
      ~default:(Printf.sprintf "%s/interleaved-%d" (Program.name program) n_tasks)
  in
  let ctx = Worker.ctx worker in
  let cfg = worker.Worker.cfg in
  let snap = Worker.snapshot worker in
  let tasks = Array.init n_tasks Nftask.create in
  let plane = match fault with Some p -> p | None -> Fault.create () in
  (* Telemetry hooks: [tel] is a no-op without a plane and never charges
     cycles, so traced and untraced runs are cycle-identical. *)
  let tel f = match telemetry with Some tr -> f tr | None -> () in
  (match telemetry with Some tr -> Exec_ctx.attach_trace ctx tr | None -> ());
  (* Specialized hot path (see rtc.ml): dense Δ dispatch always, fused
     runners only while untraced so span hooks keep their interpreted
     ordering. *)
  let spec = Specialize.get program in
  let step_fn =
    match spec with
    | Some sp -> fun cs ev -> Specialize.step sp cs ev
    | None -> fun cs ev -> Program.step program cs ev
  in
  let fast_runners =
    match (spec, telemetry) with
    | Some sp, None ->
        Some
          (Specialize.runners sp plane ~err:(fun q ->
               Printf.sprintf "Scheduler: control state %s has no action" q))
    | _ -> None
  in
  let exhausted = ref false in
  (* Quiescent-pause latch: once [quiesce] answers [true] at a pull
     boundary no further source pulls happen — in-flight tasks and the
     stash drain to completion and the run returns with every pulled item
     completed. A [quiesce] that never answers [true] leaves the run
     byte-identical to one without the hook. *)
  let paused = ref false in
  let want_pause () = match quiesce with Some q -> q () | None -> false in
  let stats = ref { completed = 0; dropped = 0; wire_bytes = 0; faulted = 0 } in
  let switches = ref 0 in
  let latencies = Metrics.Collector.create () in

  (* Per-flow ordering: two packets of one flow must not be in flight in
     two NFTasks at once (their state mutations would race and could
     complete out of order). Items whose flow is already being processed
     wait in [stash]; [inflight] counts active tasks per flow. *)
  let inflight : (int, int) Hashtbl.t = Hashtbl.create (4 * n_tasks) in
  let stash : Workload.item list ref = ref [] in
  let flow_of (item : Workload.item) = item.Workload.flow_hint in
  let mark_inflight fh =
    if fh >= 0 then
      Hashtbl.replace inflight fh (1 + Option.value ~default:0 (Hashtbl.find_opt inflight fh))
  in
  let clear_inflight fh =
    if fh >= 0 then
      match Hashtbl.find_opt inflight fh with
      | Some 1 -> Hashtbl.remove inflight fh
      | Some n -> Hashtbl.replace inflight fh (n - 1)
      | None -> ()
  in
  (* First stashed item whose flow is idle; earlier stash entries of the
     same flow are by construction in front, so taking the first match
     preserves per-flow FIFO order. *)
  let take_stashed () =
    let rec go acc = function
      | [] -> None
      | item :: rest ->
          if Hashtbl.mem inflight (flow_of item) then go (item :: acc) rest
          else begin
            stash := List.rev_append acc rest;
            Some item
          end
    in
    go [] !stash
  in
  let stashed_flow fh = List.exists (fun i -> flow_of i = fh) !stash in
  let next_item () =
    match take_stashed () with
    | Some item -> Some item
    | None ->
        if !exhausted || !paused then None
        else if want_pause () then begin
          paused := true;
          None
        end
        else
          let rec pull () =
            match source () with
            | None ->
                exhausted := true;
                None
            | Some item ->
                let fh = flow_of item in
                if fh >= 0 && (Hashtbl.mem inflight fh || stashed_flow fh) then begin
                  stash := !stash @ [ item ];
                  (* Keep pulling: another flow's packet can fill this task. *)
                  if List.length !stash < 4 * n_tasks then pull () else None
                end
                else Some item
          in
          pull ()
  in

  let issue_prefetches (task : Nftask.t) =
    List.iter
      (fun (addr, bytes) -> ignore (Exec_ctx.prefetch ctx ~addr ~bytes))
      task.Nftask.pending_blocks
  in

  (* Distance >= 2: also issue the resolvable targets of FSM successor
     states, breadth-first up to [prefetch_distance - 1] steps ahead.
     Fire-and-forget — readiness is still tracked only on the current
     state's blocks; targets that resolve differently once the real
     transition happens are mere cache pollution, and the issue cycles are
     charged like any other software prefetch. *)
  let speculate (task : Nftask.t) =
    let seen = Hashtbl.create 8 in
    let frontier = ref (Fsm.successors program.Program.fsm task.Nftask.cs) in
    let depth = ref 1 in
    while !depth < prefetch_distance && !frontier <> [] do
      let next = ref [] in
      List.iter
        (fun cs ->
          if
            (not (Hashtbl.mem seen cs))
            && (not (Program.is_done program cs))
            && cs <> task.Nftask.cs
          then begin
            Hashtbl.add seen cs ();
            let blocks =
              Prefetch.resolve_all (Program.info program cs).Program.prefetch task
            in
            List.iter
              (fun (addr, bytes) ->
                if not (List.mem (addr, bytes) task.Nftask.pending_blocks) then
                  ignore (Exec_ctx.prefetch ctx ~addr ~bytes))
              blocks;
            next := List.rev_append (Fsm.successors program.Program.fsm cs) !next
          end)
        !frontier;
      frontier := !next;
      incr depth
    done
  in

  (* Fetch (F): resolve the prefetch targets of the (new) current control
     state and issue their prefetches right away. Distance 0 issues
     nothing — the action demand-fetches ([P_ready] so the next visit
     executes immediately); distance 1 is the paper's policy. *)
  let fetch (task : Nftask.t) =
    let info = Program.info program task.Nftask.cs in
    let blocks = Prefetch.resolve_all info.Program.prefetch task in
    task.Nftask.pending_blocks <- blocks;
    if prefetch_distance = 0 then task.Nftask.p_state <- Nftask.P_ready
    else begin
      (if blocks = [] then task.Nftask.p_state <- Nftask.P_ready
       else begin
         issue_prefetches task;
         (* If everything is already resident (e.g. packed states fetched by
            an earlier NF of the chain), run on the next visit without
            waiting. *)
         task.Nftask.p_state <-
           (if List.for_all (fun (addr, bytes) -> Exec_ctx.ready ctx ~addr ~bytes) blocks
            then Nftask.P_ready
            else Nftask.P_issued)
       end);
      if prefetch_distance >= 2 then speculate task
    end
  in

  (* Finish one task: poisoning disposition, accounting, oracle tap,
     per-flow release, retire, and immediate re-initialisation with fresh
     work (Algorithm 1 line 13). *)
  let rec finalize (task : Nftask.t) =
    (match
       Fault.complete plane ~flow:task.Nftask.flow_hint
         ~faulted:(Fault.reason_of_event task.Nftask.event)
     with
    | Some r ->
        stats :=
          {
            !stats with
            completed = !stats.completed + 1;
            faulted = !stats.faulted + 1;
          };
        task.Nftask.event <- Event.Faulted (Fault.reason_to_key r)
    | None ->
        (* Explicit drops and failed matches both mean the packet is not
           forwarded. *)
        let dropped =
          Event.equal task.Nftask.event Event.Drop_packet
          || Event.equal task.Nftask.event Event.Match_fail
        in
        let wire =
          match task.Nftask.packet with
          | Some p when not dropped -> p.Netcore.Packet.wire_len
          | Some _ | None -> 0
        in
        stats :=
          {
            !stats with
            completed = !stats.completed + 1;
            dropped = (!stats.dropped + if dropped then 1 else 0);
            wire_bytes = !stats.wire_bytes + wire;
          };
        Metrics.Collector.record latencies (ctx.Exec_ctx.clock - task.Nftask.start_clock));
    tel (fun tr ->
        Trace.on_complete tr ~ts:ctx.Exec_ctx.clock ~task:task.Nftask.id
          ~note:(Event.to_key task.Nftask.event)
          ~latency:(ctx.Exec_ctx.clock - task.Nftask.start_clock));
    (match on_complete with Some f -> f task | None -> ());
    clear_inflight task.Nftask.flow_hint;
    Nftask.retire task;
    load_new task

  (* Transition (Δ) + Fetch; returns [false] when the task reached the
     terminal state and was retired. *)
  and transition_and_fetch (task : Nftask.t) =
    let next = step_fn task.Nftask.cs task.Nftask.event in
    Exec_ctx.compute ctx ~cycles:cfg.Worker.fetch_cycles ~instrs:cfg.Worker.fetch_instrs;
    if Program.is_done program next then finalize task
    else begin
      task.Nftask.cs <- next;
      fetch task;
      true
    end

  and load_new (task : Nftask.t) =
    match next_item () with
    | None -> false
    | Some item ->
        mark_inflight item.Workload.flow_hint;
        Nftask.load task ~cs:(Program.start program) ?packet:item.Workload.packet
          ~aux:item.Workload.aux ~flow_hint:item.Workload.flow_hint ();
          task.Nftask.start_clock <- ctx.Exec_ctx.clock;
          Exec_ctx.compute ctx ~cycles:cfg.Worker.rx_tx_cycles
            ~instrs:cfg.Worker.rx_tx_instrs;
          tel (fun tr ->
              Trace.on_pull tr ~ts:task.Nftask.start_clock
                ~dur:cfg.Worker.rx_tx_cycles ~task:task.Nftask.id
                ~flow:task.Nftask.flow_hint;
              Trace.on_parse tr ~ts:ctx.Exec_ctx.clock ~task:task.Nftask.id);
          (match Fault.on_load plane ~mem:ctx.Exec_ctx.mem ~now:ctx.Exec_ctx.clock task with
          | Some r ->
              (* Quarantined at load: finalise without executing anything
                 (the flow is serialised, so completion order is kept). *)
              task.Nftask.event <- Event.Faulted (Fault.reason_to_key r);
              ignore (finalize task)
          | None ->
              (* Initial transition and fetching (Algorithm 1 line 4),
                 driven by the "packet" system event. *)
              ignore (transition_and_fetch task));
          task.Nftask.active
  in

  (* One scheduler visit (one iteration of Algorithm 1's inner loop). *)
  let visit (task : Nftask.t) =
    if not task.Nftask.active then ignore (load_new task)
    else begin
      tel (fun tr -> Trace.set_task tr ~task:task.Nftask.id);
      let ready_to_run =
        match task.Nftask.p_state with
        | Nftask.P_ready -> true
        | Nftask.P_none | Nftask.P_issued ->
            if
              List.for_all
                (fun (addr, bytes) -> Exec_ctx.ready ctx ~addr ~bytes)
                task.Nftask.pending_blocks
            then true
            else begin
              (* Fills dropped (MSHR full) or lines evicted before use:
                 re-issue; resident/pending lines are skipped inside the
                 hierarchy, so this is cheap and idempotent. *)
              issue_prefetches task;
              false
            end
      in
      if ready_to_run then begin
        (match fast_runners with
        | Some r -> task.Nftask.event <- r.(task.Nftask.cs) ctx task
        | None ->
            let info = Program.info program task.Nftask.cs in
            let action =
              match info.Program.action with
              | Some a -> a
              | None ->
                  invalid_arg
                    (Printf.sprintf "Scheduler: control state %s has no action"
                       info.Program.qname)
            in
            tel (fun tr ->
                Trace.on_action_start tr ~ts:ctx.Exec_ctx.clock ~nf:info.Program.inst
                  ~cs:info.Program.qname);
            task.Nftask.event <-
              Fault.guard plane ~nf:info.Program.inst action ctx task;
            tel (fun tr -> Trace.on_action_end tr ~ts:ctx.Exec_ctx.clock));
        (match task.Nftask.event with
        | Event.Faulted _ -> ignore (finalize task)
        | _ -> ignore (transition_and_fetch task))
      end
    end
  in

  let any_active () = Array.exists (fun t -> t.Nftask.active) tasks in
  let idx = ref 0 in
  (* Ready_first: advance to the next runnable (or inactive, to refill)
     task, charging one cycle per skipped slot for the scan. Falls back to
     plain round-robin when nothing is ready. *)
  let advance () =
    match policy with
    | Round_robin -> idx := (!idx + 1) mod n_tasks
    | Ready_first ->
        (* An idle slot is only worth visiting when it can actually load
           work; otherwise the scan would keep picking no-op idle slots
           over a waiting task whose dropped prefetch (MSHR starvation)
           needs a re-issuing visit — during the drain phase that task
           would never be visited again and the loop would spin forever. *)
        let refillable =
          lazy
            ((not (!exhausted || !paused))
            || List.exists (fun i -> not (Hashtbl.mem inflight (flow_of i))) !stash)
        in
        let runnable i =
          let t = tasks.(i) in
          if not t.Nftask.active then Lazy.force refillable
          else
            match t.Nftask.p_state with
            | Nftask.P_ready -> true
            | Nftask.P_none | Nftask.P_issued ->
                List.for_all
                  (fun (addr, bytes) -> Exec_ctx.ready ctx ~addr ~bytes)
                  t.Nftask.pending_blocks
        in
        let rec scan k skipped =
          if skipped = n_tasks then (!idx + 1) mod n_tasks
          else if runnable k then begin
            Exec_ctx.compute ctx ~cycles:skipped ~instrs:skipped;
            k
          end
          else scan ((k + 1) mod n_tasks) (skipped + 1)
        in
        idx := scan ((!idx + 1) mod n_tasks) 0
  in
  let continue_run = ref true in
  Fun.protect
    ~finally:(fun () ->
      match telemetry with Some _ -> Exec_ctx.detach_trace ctx | None -> ())
    (fun () ->
      while !continue_run do
        let visited = tasks.(!idx).Nftask.id in
        visit tasks.(!idx);
        let switch_start = ctx.Exec_ctx.clock in
        Exec_ctx.compute ctx ~cycles:cfg.Worker.switch_cycles
          ~instrs:cfg.Worker.switch_instrs;
        incr switches;
        tel (fun tr ->
            Trace.on_switch tr ~ts:switch_start ~dur:cfg.Worker.switch_cycles
              ~task:visited;
            Trace.on_occupancy tr ~ts:ctx.Exec_ctx.clock
              ~active:
                (Array.fold_left
                   (fun acc t -> if t.Nftask.active then acc + 1 else acc)
                   0 tasks)
              ~mshr:
                (Memsim.Hierarchy.mshr_pending_count ctx.Exec_ctx.mem
                   ~now:ctx.Exec_ctx.clock));
        advance ();
        if (!exhausted || !paused) && !stash = [] && not (any_active ()) then
          continue_run := false
      done);
  Worker.finish ?latency:(Metrics.Collector.summarize latencies)
    ~faulted:!stats.faulted ~faults:(Fault.counts plane)
    ~degraded:(Fault.degraded plane) worker snap ~label
    ~packets:!stats.completed ~drops:!stats.dropped ~wire_bytes:!stats.wire_bytes
    ~switches:!switches
