(** NF-C (§IV-B, Listing 4): the C-like DSL for NFAction bodies over the
    NFState keywords (Packet, PerFlowState, SubFlowState, ControlState,
    TempState, MatchState).

    An NF-C source compiles into an {!Action.t} whose body interprets the
    statements against a per-module {!binding}. The binding is the
    isolation boundary: programs can only reach state exposed through it
    (the property the paper enforces with a compilation check). *)

exception Nfc_error of string

type scope = Packet | Per_flow | Sub_flow | Control | Temp | Match_state

val scope_of_keyword : string -> scope option

type binop = Add | Sub | Mul | Mod | And | Eq | Ne | Lt | Gt | Le | Ge

type expr =
  | Int of int
  | Ref of scope * string
  | Bin of binop * expr * expr

type stmt =
  | Assign of scope * string * expr
  | Emit of string
  | Drop
  | If of expr * stmt list * stmt list

type t = {
  action_name : string;
  body : stmt list;
  temporaries : string list;
      (** TempState fields, collected as the paper's compiler does to size
          the NFTask temporary area *)
}

(** @raise Nfc_error on lexical or syntax errors. *)
val parse : string -> t

(** Build a program from an AST, collecting [temporaries] exactly as
    {!parse} does — printing and re-parsing a generated body reproduces
    the same [t]. *)
val of_body : action_name:string -> stmt list -> t

val keyword_of_scope : scope -> string
val binop_symbol : binop -> string

(** Fully parenthesised printing; [parse (to_string p)] reproduces [p]'s
    AST (up to redundant parentheses). *)
val pp_program : Format.formatter -> t -> unit

val to_string : t -> string

type binding = {
  read_field : Exec_ctx.t -> Nftask.t -> scope -> string -> int;
  write_field : Exec_ctx.t -> Nftask.t -> scope -> string -> int -> unit;
}

(** [Emit(Event_Packet)] maps to the ["packet"] system event; other names
    pass through as spec event labels. *)
val event_of_name : string -> Event.t

(** The static compute-cost weight of a statement/expression — the model
    behind {!compile}'s [base_cycles = 4 + 2*weight] charge. Exposed so the
    symbolic checker can validate the cycle model of compiled actions. *)
val stmt_weight : stmt -> int

val expr_weight : expr -> int

(** Compile NF-C source to an executable NFAction. Memory charging happens
    inside the binding's accessors; the static statement weight models the
    generated code's compute cost. The first executed [Emit]/[Drop] decides
    the event; fall-through yields [default_event].
    @raise Nfc_error on parse errors (immediately) or on binding violations
    (when the action runs). *)
val compile :
  ?kind:Action.kind -> ?invalidates:Action.resource list -> ?default_event:Event.t ->
  binding:binding -> string -> Action.t
