(* A minimal YAML-subset parser, sufficient for the specification dialect of
   §IV-B (Listings 1-3): nested maps, lists of scalars, inline scalars,
   comments. Indentation is significant; any consistent widening counts as
   one nesting level. *)

type t =
  | Scalar of string
  | List of t list
  | Map of (string * t) list

exception Parse_error of int * string  (* line number, message *)

let error line msg = raise (Parse_error (line, msg))

type line = { num : int; indent : int; content : string }

let tokenize src =
  let raw = String.split_on_char '\n' src in
  let strip_comment s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  List.filteri (fun _ _ -> true) raw
  |> List.mapi (fun i s -> (i + 1, strip_comment s))
  |> List.filter_map (fun (num, s) ->
         let len = String.length s in
         let indent =
           let rec go i = if i < len && s.[i] = ' ' then go (i + 1) else i in
           go 0
         in
         let content = String.trim s in
         if String.contains s '\t' then error num "tab characters are not allowed"
         else if String.equal content "" then None
         else Some { num; indent; content })

(* Split "key: value" / "key:"; keys may not contain ':'. *)
let split_key line =
  match String.index_opt line.content ':' with
  | None -> None
  | Some i ->
      let key = String.trim (String.sub line.content 0 i) in
      let rest =
        String.trim (String.sub line.content (i + 1) (String.length line.content - i - 1))
      in
      if String.equal key "" then error line.num "empty key" else Some (key, rest)

let rec parse_block lines indent =
  match lines with
  | [] -> (Map [], [])
  | first :: _ when first.indent < indent -> (Map [], lines)
  | first :: _ ->
      if String.length first.content >= 2 && String.sub first.content 0 2 = "- " then
        parse_list lines first.indent []
      else parse_map lines first.indent []

and parse_list lines indent acc =
  match lines with
  | { indent = i; content; num } :: rest
    when i = indent && String.length content >= 2 && String.sub content 0 2 = "- " ->
      let item = String.trim (String.sub content 2 (String.length content - 2)) in
      if String.equal item "" then error num "empty list item"
      else parse_list rest indent (Scalar item :: acc)
  | _ -> (List (List.rev acc), lines)

and parse_map lines indent acc =
  match lines with
  | ({ indent = i; _ } as line) :: rest when i = indent -> (
      match split_key line with
      | None -> error line.num ("expected 'key:' or 'key: value', got: " ^ line.content)
      | Some (key, _) when List.mem_assoc key acc ->
          error line.num (Printf.sprintf "duplicate key %S" key)
      | Some (key, "") ->
          (* Block value: everything more indented; an immediately following
             list at the same indent also belongs to this key (the common
             YAML style for "key:\n- a\n- b"). *)
          let value, rest' =
            match rest with
            | next :: _ when next.indent > i -> parse_block rest (i + 1)
            | next :: _
              when next.indent = i
                   && String.length next.content >= 2
                   && String.sub next.content 0 2 = "- " ->
                parse_list rest i []
            | _ -> (Scalar "", rest)
          in
          parse_map rest' indent ((key, value) :: acc)
      | Some (key, value) -> parse_map rest indent ((key, Scalar value) :: acc))
  | _ -> (Map (List.rev acc), lines)

let of_string src =
  match tokenize src with
  | [] -> Map []
  | lines -> (
      match parse_block lines 0 with
      | v, [] -> v
      | _, { num; content; _ } :: _ ->
          error num ("unexpected trailing content: " ^ content))

(* Accessors used by the spec layer. *)

let find key = function
  | Map kvs -> List.assoc_opt key kvs
  | _ -> None

let scalar = function Scalar s -> Some s | _ -> None

let scalar_list = function
  | List items -> Some (List.filter_map scalar items)
  | Scalar "" -> Some []
  | _ -> None
