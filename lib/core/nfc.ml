(* NF-C (§IV-B, Listing 4): the C-like DSL in which developers write
   NFAction bodies against the NFState keywords (Packet, PerFlowState,
   SubFlowState, ControlState, TempState).

   The paper compiles NF-C to C; here an NF-C source compiles to an
   {!Action.t} whose body interprets the statement list against a
   per-module binding that maps (scope, field) to real reads/writes — the
   binding is the isolation boundary: programs can only touch state
   reachable from their NFTask's references, enforcing the property the
   paper gets from its compilation check. *)

exception Nfc_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Nfc_error s)) fmt

type scope = Packet | Per_flow | Sub_flow | Control | Temp | Match_state

let scope_of_keyword = function
  | "Packet" -> Some Packet
  | "PerFlowState" -> Some Per_flow
  | "SubFlowState" -> Some Sub_flow
  | "ControlState" -> Some Control
  | "TempState" -> Some Temp
  | "MatchState" -> Some Match_state
  | _ -> None

type binop = Add | Sub | Mul | Mod | And | Eq | Ne | Lt | Gt | Le | Ge

type expr =
  | Int of int
  | Ref of scope * string
  | Bin of binop * expr * expr

type stmt =
  | Assign of scope * string * expr
  | Emit of string
  | Drop
  | If of expr * stmt list * stmt list

type t = { action_name : string; body : stmt list; temporaries : string list }

(* ----- lexer ----- *)

type token = Ident of string | Num of int | Sym of string

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && (is_ident src.[!i] || is_digit src.[!i]) do
        incr i
      done;
      toks := Ident (String.sub src start (!i - start)) :: !toks
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> toks := Num v :: !toks
      | None -> fail "integer literal %s at character %d does not fit an int" text start
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=") as op) ->
          toks := Sym op :: !toks;
          i := !i + 2
      | _ ->
          (match c with
          | '(' | ')' | '{' | '}' | ';' | '.' | '=' | '+' | '-' | '*' | '%' | '&' | '<' | '>' ->
              toks := Sym (String.make 1 c) :: !toks
          | _ -> fail "lexical error at character %d: %c" !i c);
          incr i
    end
  done;
  List.rev !toks

(* ----- parser (recursive descent over a token list ref) ----- *)

type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let advance c = match c.toks with [] -> fail "unexpected end of input" | _ :: tl -> c.toks <- tl

let expect_sym c s =
  match peek c with
  | Some (Sym x) when x = s -> advance c
  | Some (Ident x) -> fail "expected %S, found identifier %S" s x
  | Some (Sym x) -> fail "expected %S, found %S" s x
  | Some (Num v) -> fail "expected %S, found number %d" s v
  | None -> fail "expected %S, found end of input" s

let expect_ident c =
  match peek c with
  | Some (Ident x) ->
      advance c;
      x
  | _ -> fail "expected an identifier"

let parse_ref c first =
  match scope_of_keyword first with
  | None -> fail "unknown state keyword %S" first
  | Some scope ->
      expect_sym c ".";
      let field = expect_ident c in
      (scope, field)

let rec parse_factor c =
  match peek c with
  | Some (Num v) ->
      advance c;
      Int v
  | Some (Sym "(") ->
      advance c;
      let e = parse_expr c in
      expect_sym c ")";
      e
  | Some (Ident id) ->
      advance c;
      let scope, field = parse_ref c id in
      Ref (scope, field)
  | _ -> fail "expected an expression"

and parse_term c =
  let lhs = ref (parse_factor c) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek c with
    | Some (Sym "*") ->
        advance c;
        lhs := Bin (Mul, !lhs, parse_factor c)
    | Some (Sym "%") ->
        advance c;
        lhs := Bin (Mod, !lhs, parse_factor c)
    | Some (Sym "&") ->
        advance c;
        lhs := Bin (And, !lhs, parse_factor c)
    | _ -> continue_loop := false
  done;
  !lhs

and parse_arith c =
  let lhs = ref (parse_term c) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek c with
    | Some (Sym "+") ->
        advance c;
        lhs := Bin (Add, !lhs, parse_term c)
    | Some (Sym "-") ->
        advance c;
        lhs := Bin (Sub, !lhs, parse_term c)
    | _ -> continue_loop := false
  done;
  !lhs

and parse_expr c =
  let lhs = parse_arith c in
  match peek c with
  | Some (Sym (("==" | "!=" | "<" | ">" | "<=" | ">=") as op)) ->
      advance c;
      let rhs = parse_arith c in
      let binop =
        match op with
        | "==" -> Eq
        | "!=" -> Ne
        | "<" -> Lt
        | ">" -> Gt
        | "<=" -> Le
        | _ -> Ge
      in
      Bin (binop, lhs, rhs)
  | _ -> lhs

let rec parse_stmt c =
  match peek c with
  | Some (Ident "Emit") ->
      advance c;
      expect_sym c "(";
      let ev = expect_ident c in
      expect_sym c ")";
      expect_sym c ";";
      Emit ev
  | Some (Ident "Drop") ->
      advance c;
      expect_sym c "(";
      expect_sym c ")";
      expect_sym c ";";
      Drop
  | Some (Ident "if") ->
      advance c;
      expect_sym c "(";
      let cond = parse_expr c in
      expect_sym c ")";
      let then_ = parse_block c in
      let else_ =
        match peek c with
        | Some (Ident "else") ->
            advance c;
            parse_block c
        | _ -> []
      in
      If (cond, then_, else_)
  | Some (Ident id) ->
      advance c;
      let scope, field = parse_ref c id in
      expect_sym c "=";
      let e = parse_expr c in
      expect_sym c ";";
      Assign (scope, field, e)
  | _ -> fail "expected a statement"

and parse_block c =
  expect_sym c "{";
  let stmts = ref [] in
  let rec go () =
    match peek c with
    | Some (Sym "}") -> advance c
    | Some _ ->
        stmts := parse_stmt c :: !stmts;
        go ()
    | None -> fail "unterminated block"
  in
  go ();
  List.rev !stmts

(* Collect TempState fields, as the paper's compiler does to size the
   NFTask temporary area. *)
let rec temps_of_stmt acc = function
  | Assign (Temp, f, e) -> temps_of_expr (if List.mem f acc then acc else f :: acc) e
  | Assign (_, _, e) -> temps_of_expr acc e
  | Emit _ | Drop -> acc
  | If (e, a, b) ->
      let acc = temps_of_expr acc e in
      let acc = List.fold_left temps_of_stmt acc a in
      List.fold_left temps_of_stmt acc b

and temps_of_expr acc = function
  | Int _ -> acc
  | Ref (Temp, f) -> if List.mem f acc then acc else f :: acc
  | Ref (_, _) -> acc
  | Bin (_, a, b) -> temps_of_expr (temps_of_expr acc a) b

(* Build a program from an already-constructed AST, collecting temporaries
   exactly as [parse] does — so printing and re-parsing a generated body
   reproduces the same [t], temporaries included. *)
let of_body ~action_name body =
  { action_name; body; temporaries = List.rev (List.fold_left temps_of_stmt [] body) }

let parse src =
  let c = { toks = lex src } in
  (match peek c with
  | Some (Ident "NFAction") -> advance c
  | _ -> fail "program must start with NFAction(<name>)");
  expect_sym c "(";
  let action_name = expect_ident c in
  expect_sym c ")";
  let body = parse_block c in
  (match c.toks with
  | [] -> ()
  | _ -> fail "trailing tokens after NFAction body");
  let temporaries = List.rev (List.fold_left temps_of_stmt [] body) in
  { action_name; body; temporaries }

(* ----- pretty printer (used by tooling and the parse/print/parse
   roundtrip property tests) ----- *)

let keyword_of_scope = function
  | Packet -> "Packet"
  | Per_flow -> "PerFlowState"
  | Sub_flow -> "SubFlowState"
  | Control -> "ControlState"
  | Temp -> "TempState"
  | Match_state -> "MatchState"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Mod -> "%"
  | And -> "&"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

(* Fully parenthesised, so printing is trivially re-parseable. *)
let rec pp_expr ppf = function
  | Int v -> Fmt.int ppf v
  | Ref (scope, field) -> Fmt.pf ppf "%s.%s" (keyword_of_scope scope) field
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let rec pp_stmt ppf = function
  | Assign (scope, field, e) ->
      Fmt.pf ppf "%s.%s = %a;" (keyword_of_scope scope) field pp_expr e
  | Emit ev -> Fmt.pf ppf "Emit(%s);" ev
  | Drop -> Fmt.string ppf "Drop();"
  | If (cond, then_, []) ->
      Fmt.pf ppf "if (%a) { %a }" pp_expr cond Fmt.(list ~sep:sp pp_stmt) then_
  | If (cond, then_, else_) ->
      Fmt.pf ppf "if (%a) { %a } else { %a }" pp_expr cond
        Fmt.(list ~sep:sp pp_stmt)
        then_
        Fmt.(list ~sep:sp pp_stmt)
        else_

let pp_program ppf t =
  Fmt.pf ppf "NFAction(%s) { %a }" t.action_name Fmt.(list ~sep:sp pp_stmt) t.body

let to_string t = Fmt.str "%a" pp_program t

(* ----- interpreter / action compilation ----- *)

type binding = {
  read_field : Exec_ctx.t -> Nftask.t -> scope -> string -> int;
  write_field : Exec_ctx.t -> Nftask.t -> scope -> string -> int -> unit;
}

(* Default event translation: Emit(Event_Packet) -> "packet" (cf. Listing
   4); other names pass through and match the spec's transition labels. *)
let event_of_name name =
  match name with
  | "Event_Packet" -> Event.Packet_arrival
  | "Event_Drop" -> Event.Drop_packet
  | _ -> Event.of_key name

let rec eval binding ctx task = function
  | Int v -> v
  | Ref (scope, field) -> binding.read_field ctx task scope field
  | Bin (op, a, b) ->
      let va = eval binding ctx task a in
      let vb = eval binding ctx task b in
      let bool_int c = if c then 1 else 0 in
      (match op with
      | Add -> va + vb
      | Sub -> va - vb
      | Mul -> va * vb
      | Mod -> if vb = 0 then fail "NF-C: modulo by zero" else va mod vb
      | And -> va land vb
      | Eq -> bool_int (va = vb)
      | Ne -> bool_int (va <> vb)
      | Lt -> bool_int (va < vb)
      | Gt -> bool_int (va > vb)
      | Le -> bool_int (va <= vb)
      | Ge -> bool_int (va >= vb))

(* Execute statements; the first Emit/Drop decides the resulting event. *)
let rec exec binding ctx task stmts =
  match stmts with
  | [] -> None
  | Assign (scope, field, e) :: rest ->
      let v = eval binding ctx task e in
      binding.write_field ctx task scope field v;
      exec binding ctx task rest
  | Emit name :: _ -> Some (event_of_name name)
  | Drop :: _ -> Some Event.Drop_packet
  | If (cond, then_, else_) :: rest -> (
      let branch = if eval binding ctx task cond <> 0 then then_ else else_ in
      match exec binding ctx task branch with
      | Some ev -> Some ev
      | None -> exec binding ctx task rest)

let rec stmt_weight = function
  | Assign (_, _, e) -> 2 + expr_weight e
  | Emit _ | Drop -> 1
  | If (e, a, b) ->
      1 + expr_weight e
      + List.fold_left (fun acc s -> acc + stmt_weight s) 0 a
      + List.fold_left (fun acc s -> acc + stmt_weight s) 0 b

and expr_weight = function
  | Int _ -> 0
  | Ref _ -> 1
  | Bin (_, a, b) -> 1 + expr_weight a + expr_weight b

(* Compile NF-C source into an executable NFAction. Memory charging happens
   inside the binding's read/write field accessors; the static statement
   weight models the compute cost of the generated code. *)
let compile ?(kind = Action.Data_action) ?(invalidates = [])
    ?(default_event = Event.User "continue") ~binding src =
  let prog = parse src in
  let weight = List.fold_left (fun acc s -> acc + stmt_weight s) 0 prog.body in
  Action.make ~kind ~base_cycles:(4 + (2 * weight)) ~base_instrs:(3 + (2 * weight))
    ~invalidates ~name:prog.action_name (fun ctx task ->
      match exec binding ctx task prog.body with
      | Some ev -> ev
      | None -> default_event)
