(** Fault-injection plane and containment policy.

    A plane instance travels with one executor run. It carries (a) the
    injected-fault schedule, armed per packet id by the generator before
    the run (see [Check.Faultgen]), and (b) the containment state: per-NF
    per-reason fault counts, per-flow consecutive-fault counters, the set
    of poisoned flows and the degraded flag. Executors create a fresh,
    empty plane when none is supplied, which makes containment always-on
    while keeping fault-free runs byte-identical to the pre-plane
    behaviour (an empty plane never changes an outcome or a charge).

    Determinism across executors is the design constraint: injections are
    keyed by packet id (pull order is executor-independent), action faults
    fire on a per-packet action countdown *before* the body runs, and
    poisoning is evaluated at completion time (per-flow completion order is
    an oracle invariant; load order relative to same-flow completions is
    not). *)

type reason =
  | Parse_error  (** truncated / corrupted packet *)
  | Table_overflow  (** state-structure insert rejected under [Shed_flow] *)
  | Action_raise  (** NFAction body raised (injected or organic) *)
  | Mshr_stall  (** injected MSHR starvation — timing-only, no quarantine *)
  | Poisoned  (** flow quarantined after repeated consecutive faults *)

(** Stable wire name ("parse", "overflow", "action", "mshr", "poisoned");
    the payload of [Event.Faulted]. *)
val reason_to_key : reason -> string

val reason_of_key : string -> reason option
val pp_reason : Format.formatter -> reason -> unit

(** Raised by NF code and state structures to signal a *contained* fault;
    the string names the NF instance for the taxonomy. {!guard} converts it
    (and any other exception escaping an action body) into
    [Event.Faulted]. *)
exception Fault of reason * string

type injection =
  | Corrupt_packet
      (** the packet's bytes were mangled at the source: quarantine the
          task at load with [Parse_error] *)
  | Raise_at of { countdown : int; reason : reason }
      (** the [countdown]-th guarded action of the packet (0 = first)
          faults before executing *)
  | Stall_mshrs of int
      (** occupy every free MSHR for the given cycles at load time,
          starving subsequent prefetches (timing/stats only) *)
  | Kill_core
      (** the worker pulling this packet dies after processing it. A
          platform-level fault: the recovery engine (lib/check/recovery)
          interprets it by truncating the victim's stream and re-homing its
          flows; executors and {!on_load} ignore it, so a kill schedule
          leaking into a single-core run is inert. *)

type t

val default_poison_threshold : int

(** @raise Invalid_argument when [poison_threshold <= 0]. *)
val create : ?poison_threshold:int -> unit -> t

(** Arm an injection for the packet with the given id (call before the
    executor pulls it from the source). *)
val inject : t -> packet_id:int -> injection -> unit

val injection_count : t -> int

(** Completions quarantined by the plane (the [faulted] leg of the
    conservation invariant: emits + drops + faulted = offered). *)
val faulted : t -> int

val degraded : t -> bool
val poisoned_flows : t -> int

(** Record one taxonomy occurrence — used by executors for faults detected
    outside {!guard} (e.g. a parse quarantine attributed to "netcore"). *)
val count : t -> nf:string -> reason -> unit

(** The (nf, reason, occurrences) taxonomy, sorted — deterministic across
    executors for identical schedules. *)
val counts : t -> (string * reason * int) list

(** Sum of all taxonomy occurrences. *)
val total_counted : t -> int

(** Load-time hook, called once per task right after [Nftask.load] and the
    rx/tx charge. Applies load-time injections; [Some reason] means the
    task must be quarantined without executing any action. *)
val on_load : t -> mem:Memsim.Hierarchy.t -> now:int -> Nftask.t -> reason option

(** Exception barrier around one [Action.execute]: armed countdowns fire
    before the body runs; [Fault] and any other exception from the body are
    converted to [Event.Faulted] and counted under [nf] (the control
    state's instance name). [Stack_overflow] / [Out_of_memory] are
    re-raised. *)
val guard : t -> nf:string -> Action.t -> Exec_ctx.t -> Nftask.t -> Event.t

(** [true] when the plane's injection machinery could influence a guarded
    action (any injection registered or countdown armed). On an inert plane
    {!guard} degenerates to the bare exception barrier; the specialized
    executors re-check per action (planes can go live mid-run as the
    generator arms injections at pull time) and skip the per-action
    hashtable probe while inert. *)
val live : t -> bool

(** The conversion {!guard} applies to a caught fault: count the reason
    under [nf] and return the quarantine event. Exposed for the
    specializer's fused runners, which inline the exception barrier. *)
val convert : t -> nf:string -> reason -> Event.t

(** Completion hook, called exactly once per finishing task. [faulted] is
    the reason the task already faulted with ([None] for a normal
    completion); the result is the final disposition after poisoning — a
    normal completion of a poisoned flow becomes [Some Poisoned]. Updates
    consecutive-fault counters, the poisoned set and the degraded flag. *)
val complete : t -> flow:int -> faulted:reason option -> reason option

(** Per-flow containment snapshot for [flows]: (flow, consecutive-fault
    counter, poisoned). Exported at checkpoint time so a core adopting the
    flows can resume poisoning from exactly where the dead core left it. *)
val export_containment : t -> int list -> (int * int * bool) list

(** Install a containment snapshot (inverse of {!export_containment}).
    Restoring any poisoned flow also sets the degraded flag. *)
val restore_containment : t -> (int * int * bool) list -> unit

(** The reason encoded in a task's event, when it is [Event.Faulted]. *)
val reason_of_event : Event.t -> reason option
