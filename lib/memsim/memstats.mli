(** Aggregate memory-hierarchy counters.

    Obtained from {!Hierarchy.counters} as a snapshot; use {!diff} to measure
    a bounded run and {!add} to aggregate across cores. *)

type t = {
  reads : int;  (** demand read operations (possibly multi-line) *)
  writes : int;  (** demand write operations *)
  line_accesses : int;  (** individual line lookups performed *)
  l1_hits : int;
  l2_hits : int;  (** lines served from L2 (L1 miss) *)
  llc_hits : int;  (** lines served from LLC *)
  dram_fills : int;  (** lines served from DRAM (= LLC misses) *)
  mshr_waits : int;  (** demand accesses that found an in-flight prefetch *)
  wait_cycles : int;  (** cycles spent waiting on in-flight prefetches *)
  prefetch_issued : int;
  prefetch_redundant : int;  (** prefetch of a resident or pending line *)
  prefetch_dropped : int;  (** prefetch rejected because all MSHRs were busy *)
  mshr_stalls : int;  (** injected MSHR-starvation stalls (fault-injection plane) *)
}

val zero : t

(** [diff a b] is the field-wise difference [a - b]. *)
val diff : t -> t -> t

val add : t -> t -> t

(** Lines not served by L1 (includes MSHR waits). *)
val l1_misses : t -> int

(** Lines not served by L1, L2 or an in-flight prefetch. *)
val l2_misses : t -> int

(** Lines that had to be fetched from DRAM. *)
val llc_misses : t -> int

val l1_hit_rate : t -> float

val pp : Format.formatter -> t -> unit
