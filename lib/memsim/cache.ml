(* A single set-associative cache level with LRU replacement.

   The cache tracks line *presence* only; data contents live on the OCaml
   side of the simulation. Addresses are byte addresses in the simulated
   physical address space; internally everything is keyed by line number
   (addr lsr line_bits).

   Recency is represented by physical order within the set: each set's ways
   are kept sorted MRU-first, with invalid slots compacted at the tail. A
   hit rotates the line to the front; the eviction victim is always the last
   valid way. This is observably identical to timestamp LRU (the tail valid
   way is exactly the least recently touched one) while keeping the metadata
   footprint to a single int array — for a 33 MiB LLC that is the difference
   between the tag store fitting in the host's cache or not, and it is the
   simulator's hottest data. *)

type t = {
  name : string;
  line_bits : int;
  nsets : int;
  set_mask : int;  (* nsets - 1 when nsets is a power of two, else -1 *)
  assoc : int;
  tags : int array;  (* nsets * assoc; per set MRU -> LRU, -1 (invalid) at the tail *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable installs : int;
}

let log2_exact name n =
  if n <= 0 then invalid_arg (name ^ ": must be positive");
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  let b = go 0 n in
  if 1 lsl b <> n then invalid_arg (name ^ ": must be a power of two");
  b

let create ~name ~size_bytes ~assoc ~line_bytes =
  let line_bits = log2_exact "line_bytes" line_bytes in
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line_bytes";
  let nsets = size_bytes / (assoc * line_bytes) in
  if nsets <= 0 then invalid_arg "Cache.create: zero sets";
  {
    name;
    line_bits;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    assoc;
    tags = Array.make (nsets * assoc) (-1);
    hits = 0;
    misses = 0;
    evictions = 0;
    installs = 0;
  }

let name t = t.name
let line_bytes t = 1 lsl t.line_bits
let nsets t = t.nsets
let assoc t = t.assoc
let capacity_bytes t = nsets t * t.assoc * line_bytes t

let line_of_addr t addr = addr lsr t.line_bits

(* [mod] by a power of two is a [land]; [nsets] is a power of two for every
   realistic geometry, so the division almost never runs. This is the
   simulator's innermost loop — every probe of every level goes through
   here. *)
let set_of_line t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets

let base t line = set_of_line t line * t.assoc

(* Find the way holding [line] in its set, or -1. Invalid slots sit at the
   tail, so the scan can stop at the first -1. *)
let find_way t line =
  let b = base t line in
  let tags = t.tags in
  let last = b + t.assoc in
  let rec go i =
    if i = last then -1
    else
      let tag = tags.(i) in
      if tag = line then i else if tag = -1 then -1 else go (i + 1)
  in
  go b

let contains_line t line = find_way t line >= 0

let contains t addr = contains_line t (line_of_addr t addr)

(* Rotate [line] (currently at way [i]) to the front of its set: everything
   in [b, i) shifts down one way. This is the move-to-front "touch". *)
let promote tags b i line =
  Array.blit tags b tags (b + 1) (i - b);
  tags.(b) <- line

(* [access_line] performs a tag check and updates recency on hit. *)
let access_line t line =
  let b = base t line in
  let tags = t.tags in
  if tags.(b) = line then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    let last = b + t.assoc in
    let rec go i =
      if i = last then begin
        t.misses <- t.misses + 1;
        false
      end
      else
        let tag = tags.(i) in
        if tag = line then begin
          promote tags b i line;
          t.hits <- t.hits + 1;
          true
        end
        else if tag = -1 then begin
          t.misses <- t.misses + 1;
          false
        end
        else go (i + 1)
    in
    go (b + 1)
  end

let access t addr = access_line t (line_of_addr t addr)

(* Fused miss-path probe for the hierarchy's demand loop: behaves exactly
   like {!access_line} (same counter updates, same recency refresh on hit)
   but on a miss also reports how many valid ways the set holds, so the
   subsequent {!fill_line} can install without re-scanning the set. Returns
   [1] on hit and [-(valid_ways + 1)] on miss. *)
let probe_line t line =
  let b = base t line in
  let tags = t.tags in
  if tags.(b) = line then begin
    t.hits <- t.hits + 1;
    1
  end
  else if tags.(b) = -1 then begin
    (* Invalid at the front means the whole set is empty. *)
    t.misses <- t.misses + 1;
    -1
  end
  else begin
    let last = b + t.assoc in
    let rec go i =
      if i = last then begin
        t.misses <- t.misses + 1;
        -(t.assoc + 1)
      end
      else
        let tag = tags.(i) in
        if tag = line then begin
          promote tags b i line;
          t.hits <- t.hits + 1;
          1
        end
        else if tag = -1 then begin
          t.misses <- t.misses + 1;
          -(i - b + 1)
        end
        else go (i + 1)
    in
    go (b + 1)
  end

(* Install [line] into a set that {!probe_line} just missed with
   [valid_ways] valid entries, with no intervening operation on this cache.
   Identical decision to {!install_line}: a free way if one exists,
   otherwise evict the LRU (tail) way. *)
let fill_line t line valid_ways =
  let b = base t line in
  let tags = t.tags in
  t.installs <- t.installs + 1;
  if valid_ways < t.assoc then begin
    promote tags b (b + valid_ways) line;
    None
  end
  else begin
    let victim = tags.(b + t.assoc - 1) in
    t.evictions <- t.evictions + 1;
    promote tags b (b + t.assoc - 1) line;
    Some victim
  end

(* Install a line, evicting the LRU way if the set is full. Returns the line
   number of the victim, if a valid line was evicted. Installing a present
   line only refreshes recency. *)
let install_line t line =
  let b = base t line in
  let tags = t.tags in
  let last = b + t.assoc in
  if tags.(b) = line then None (* already MRU; recency refresh is a no-op *)
  else begin
    (* Find the line, or the end of the valid prefix if absent. *)
    let rec find i =
      if i = last then i
      else
        let tag = tags.(i) in
        if tag = line || tag = -1 then i else find (i + 1)
    in
    let i = find (b + 1) in
    if i < last && tags.(i) = line then begin
      promote tags b i line;
      None
    end
    else begin
      t.installs <- t.installs + 1;
      if i < last then begin
        (* A free (invalid) way exists: no eviction. *)
        promote tags b i line;
        None
      end
      else begin
        let victim = tags.(last - 1) in
        t.evictions <- t.evictions + 1;
        promote tags b (last - 1) line;
        Some victim
      end
    end
  end

let install t addr = install_line t (line_of_addr t addr)

(* Drop the line and compact the valid suffix so invalid slots stay at the
   tail (hole position is unobservable: victim choice depends only on the
   recency order of valid ways, which compaction preserves). *)
let invalidate_line t line =
  let b = base t line in
  let tags = t.tags in
  let last = b + t.assoc in
  let rec go i =
    if i < last && tags.(i) <> -1 then begin
      if tags.(i) = line then begin
        let rec pull j =
          if j + 1 < last && tags.(j + 1) <> -1 then begin
            tags.(j) <- tags.(j + 1);
            pull (j + 1)
          end
          else tags.(j) <- -1
        in
        pull i
      end
      else go (i + 1)
    end
  in
  go b

let invalidate t addr = invalidate_line t (line_of_addr t addr)

let clear t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.installs <- 0

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let installs t = t.installs

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags

let pp ppf t =
  Fmt.pf ppf "%s: %d sets x %d ways x %dB (%d KiB), hits=%d misses=%d evict=%d"
    t.name (nsets t) t.assoc (line_bytes t)
    (capacity_bytes t / 1024)
    t.hits t.misses t.evictions
