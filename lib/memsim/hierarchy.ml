(* Multi-level cache hierarchy with MSHR-limited asynchronous prefetch.

   Time is an externally supplied cycle count ([now]); the hierarchy never
   advances time itself. A prefetch installs the line into L1/L2 immediately
   (so it participates in replacement pressure — this is what makes "too many
   interleaved NFTasks" degrade, as in the paper) and records a completion
   time in an MSHR. A demand access that arrives before completion pays the
   residual wait; after completion it is an ordinary L1 hit.

   Multi-line demand accesses model hardware stream-in: the first missing
   line pays the full latency of the level that serves it, subsequent
   contiguous missing lines pay [stream_num/stream_den] of it. *)

type config = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  llc_size : int;
  llc_assoc : int;
  line_bytes : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_llc : int;
  lat_dram : int;
  mshr_count : int;
  stream_num : int;
  stream_den : int;
}

(* Latencies in cycles at 2.7 GHz, matching the paper's Xeon 8168 testbed
   discussion in §II-A (L1 ~1.2ns, L2 ~4.1ns, LLC ~13-20ns, DRAM ~70-125ns). *)
let default_config =
  {
    l1_size = 32 * 1024;
    l1_assoc = 8;
    l2_size = 1024 * 1024;
    l2_assoc = 16;
    llc_size = 33 * 1024 * 1024;
    llc_assoc = 11;
    line_bytes = 64;
    lat_l1 = 4;
    lat_l2 = 14;
    lat_llc = 50;
    lat_dram = 250;
    mshr_count = 10;
    stream_num = 2;
    stream_den = 5;
  }

(* Which level served a demand line access (the telemetry plane's
   attribution key). [Served_inflight] means the line was found in an MSHR:
   an earlier prefetch's fill was still in flight and the access paid the
   residual wait. *)
type served = Served_l1 | Served_l2 | Served_llc | Served_dram | Served_inflight

(* Observation tap: called once per demand line access with the access
   start time, the line, the serving level, and the cycles charged (post
   stream discount). Purely observational — installing a tap must not
   change any counter, latency, or replacement decision. *)
type tap = now:int -> line:int -> served:served -> cycles:int -> unit

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
  llc : Cache.t;
  line_bits : int;
  mshr_line : int array;   (* -1 = free slot *)
  mshr_ready : int array;
  mutable mshr_used : bool;  (* false until the first slot is occupied *)
  mutable tap : tap option;
  mutable reads : int;
  mutable writes : int;
  mutable line_accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable llc_hits : int;
  mutable dram_fills : int;
  mutable mshr_waits : int;
  mutable wait_cycles : int;
  mutable prefetch_issued : int;
  mutable prefetch_redundant : int;
  mutable prefetch_dropped : int;
  mutable mshr_stalls : int;
}

let log2_exact n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ?(cfg = default_config) () =
  {
    cfg;
    l1 =
      Cache.create ~name:"L1d" ~size_bytes:cfg.l1_size ~assoc:cfg.l1_assoc
        ~line_bytes:cfg.line_bytes;
    l2 =
      Cache.create ~name:"L2" ~size_bytes:cfg.l2_size ~assoc:cfg.l2_assoc
        ~line_bytes:cfg.line_bytes;
    llc =
      Cache.create ~name:"LLC" ~size_bytes:cfg.llc_size ~assoc:cfg.llc_assoc
        ~line_bytes:cfg.line_bytes;
    line_bits = log2_exact cfg.line_bytes;
    mshr_line = Array.make cfg.mshr_count (-1);
    mshr_ready = Array.make cfg.mshr_count 0;
    mshr_used = false;
    tap = None;
    reads = 0;
    writes = 0;
    line_accesses = 0;
    l1_hits = 0;
    l2_hits = 0;
    llc_hits = 0;
    dram_fills = 0;
    mshr_waits = 0;
    wait_cycles = 0;
    prefetch_issued = 0;
    prefetch_redundant = 0;
    prefetch_dropped = 0;
    mshr_stalls = 0;
  }

let config t = t.cfg
let set_tap t f = t.tap <- f
let line_bytes t = t.cfg.line_bytes
let l1 t = t.l1
let l2 t = t.l2
let llc t = t.llc

let line_of t addr = addr lsr t.line_bits

(* Lines spanned by [addr, addr+bytes). A zero-byte access touches nothing. *)
let lines_of t ~addr ~bytes =
  if bytes <= 0 then []
  else begin
    let first = line_of t addr in
    let last = line_of t (addr + bytes - 1) in
    let rec go acc l = if l < first then acc else go (l :: acc) (l - 1) in
    go [] last
  end

(* MSHR helpers; slots whose deadline has passed are reclaimed lazily.
   [mshr_used] stays false until the first prefetch or stall occupies a
   slot, letting demand-only executors (per-packet RTC) skip the scan on
   every line access. *)

let mshr_find t line =
  if not t.mshr_used then -1
  else
    let n = Array.length t.mshr_line in
    let rec go i = if i = n then -1 else if t.mshr_line.(i) = line then i else go (i + 1) in
    go 0

let mshr_free_slot t ~now =
  let n = Array.length t.mshr_line in
  let rec go i =
    if i = n then -1
    else if t.mshr_line.(i) = -1 || t.mshr_ready.(i) <= now then i
    else go (i + 1)
  in
  go 0

let mshr_pending_count t ~now =
  let count = ref 0 in
  Array.iteri
    (fun i line -> if line >= 0 && t.mshr_ready.(i) > now then incr count)
    t.mshr_line;
  !count

let mshr_deadlines t ~now =
  let acc = ref [] in
  Array.iteri
    (fun i line -> if line >= 0 && t.mshr_ready.(i) > now then acc := (line, t.mshr_ready.(i)) :: !acc)
    t.mshr_line;
  List.rev !acc

(* Pending completion time for [line], if in flight and not yet done. *)
let mshr_pending t ~now line =
  let i = mshr_find t line in
  if i >= 0 && t.mshr_ready.(i) > now then Some t.mshr_ready.(i) else None

let mshr_clear t line =
  let i = mshr_find t line in
  if i >= 0 then t.mshr_line.(i) <- -1

(* Serve one demand line access at time [now]. The result is packed as
   [latency lsl 3 lor served_code] so the per-line hot path allocates
   nothing; the tap (telemetry only) unpacks the code back to {!served}. *)

let served_of_code = function
  | 0 -> Served_l1
  | 1 -> Served_l2
  | 2 -> Served_llc
  | 3 -> Served_dram
  | _ -> Served_inflight

let access_line_coded t ~now line =
  t.line_accesses <- t.line_accesses + 1;
  match mshr_pending t ~now line with
  | Some ready ->
      (* The line is in flight from an earlier prefetch: pay the residual. *)
      t.mshr_waits <- t.mshr_waits + 1;
      let wait = ready - now in
      t.wait_cycles <- t.wait_cycles + wait;
      mshr_clear t line;
      ignore (Cache.install_line t.l1 line);
      ignore (Cache.install_line t.l2 line);
      ((wait + t.cfg.lat_l1) lsl 3) lor 4
  | None ->
      (* Each level is probed once; on a miss the probe also reports the
         set's valid-way count so the fill below skips the second scan. *)
      let p1 = Cache.probe_line t.l1 line in
      if p1 > 0 then begin
        t.l1_hits <- t.l1_hits + 1;
        t.cfg.lat_l1 lsl 3
      end
      else begin
        let e1 = -p1 - 1 in
        let p2 = Cache.probe_line t.l2 line in
        if p2 > 0 then begin
          t.l2_hits <- t.l2_hits + 1;
          ignore (Cache.fill_line t.l1 line e1);
          (t.cfg.lat_l2 lsl 3) lor 1
        end
        else begin
          let e2 = -p2 - 1 in
          let p3 = Cache.probe_line t.llc line in
          if p3 > 0 then begin
            t.llc_hits <- t.llc_hits + 1;
            ignore (Cache.fill_line t.l1 line e1);
            ignore (Cache.fill_line t.l2 line e2);
            (t.cfg.lat_llc lsl 3) lor 2
          end
          else begin
            let e3 = -p3 - 1 in
            t.dram_fills <- t.dram_fills + 1;
            ignore (Cache.fill_line t.l1 line e1);
            ignore (Cache.fill_line t.l2 line e2);
            ignore (Cache.fill_line t.llc line e3);
            (t.cfg.lat_dram lsl 3) lor 3
          end
        end
      end

let stream_discount t lat = max t.cfg.lat_l1 (lat * t.cfg.stream_num / t.cfg.stream_den)

(* Iterates the block's lines directly — same order and timing as mapping
   over {!lines_of}, without materialising the list. *)
let access_block t ~now ~addr ~bytes =
  if bytes <= 0 then 0
  else begin
    let first = line_of t addr in
    let last = line_of t (addr + bytes - 1) in
    let total = ref 0 in
    let first_miss_seen = ref false in
    for line = first to last do
      let start = now + !total in
      let coded = access_line_coded t ~now:start line in
      let lat = coded lsr 3 in
      let lat =
        if lat > t.cfg.lat_l1 && !first_miss_seen then stream_discount t lat
        else begin
          if lat > t.cfg.lat_l1 then first_miss_seen := true;
          lat
        end
      in
      (match t.tap with
      | Some f -> f ~now:start ~line ~served:(served_of_code (coded land 7)) ~cycles:lat
      | None -> ());
      total := !total + lat
    done;
    !total
  end

let read t ~now ~addr ~bytes =
  t.reads <- t.reads + 1;
  access_block t ~now ~addr ~bytes

(* Write-allocate, same timing as a read. *)
let write t ~now ~addr ~bytes =
  t.writes <- t.writes + 1;
  access_block t ~now ~addr ~bytes

(* Issue an asynchronous prefetch for every line of the block. Returns the
   number of prefetches actually issued (0 when everything was already
   resident or pending). Lines are installed immediately so they contend for
   cache space from the moment of issue. *)
let prefetch t ~now ~addr ~bytes =
  if bytes <= 0 then 0
  else begin
    let first = line_of t addr in
    let last = line_of t (addr + bytes - 1) in
    let issued = ref 0 in
    for line = first to last do
      if Cache.contains_line t.l1 line || Cache.contains_line t.l2 line then
        t.prefetch_redundant <- t.prefetch_redundant + 1
      else
        match mshr_pending t ~now line with
        | Some _ -> t.prefetch_redundant <- t.prefetch_redundant + 1
        | None -> (
            match mshr_free_slot t ~now with
            | -1 -> t.prefetch_dropped <- t.prefetch_dropped + 1
            | slot ->
                let lat =
                  if Cache.contains_line t.llc line then t.cfg.lat_llc
                  else t.cfg.lat_dram
                in
                if not (Cache.contains_line t.llc line) then
                  ignore (Cache.install_line t.llc line);
                ignore (Cache.install_line t.l2 line);
                ignore (Cache.install_line t.l1 line);
                t.mshr_line.(slot) <- line;
                t.mshr_ready.(slot) <- now + lat;
                t.mshr_used <- true;
                t.prefetch_issued <- t.prefetch_issued + 1;
                incr issued)
    done;
    !issued
  end

(* A block is "ready" when every line is resident in L1 or L2 and no fetch
   for it is still in flight. Prefetched lines that were evicted before use
   therefore report not-ready and must be re-prefetched. *)
let ready t ~now ~addr ~bytes =
  if bytes <= 0 then true
  else begin
    let first = line_of t addr in
    let last = line_of t (addr + bytes - 1) in
    let rec go line =
      line > last
      || (match mshr_pending t ~now line with Some _ -> false | None -> true)
         && (Cache.contains_line t.l1 line || Cache.contains_line t.l2 line)
         && go (line + 1)
    in
    go first
  end

let resident t ~addr ~bytes =
  if bytes <= 0 then true
  else begin
    let first = line_of t addr in
    let last = line_of t (addr + bytes - 1) in
    let rec go line =
      line > last
      || (Cache.contains_line t.l1 line || Cache.contains_line t.l2 line) && go (line + 1)
    in
    go first
  end

let counters t : Memstats.t =
  {
    Memstats.reads = t.reads;
    writes = t.writes;
    line_accesses = t.line_accesses;
    l1_hits = t.l1_hits;
    l2_hits = t.l2_hits;
    llc_hits = t.llc_hits;
    dram_fills = t.dram_fills;
    mshr_waits = t.mshr_waits;
    wait_cycles = t.wait_cycles;
    prefetch_issued = t.prefetch_issued;
    prefetch_redundant = t.prefetch_redundant;
    prefetch_dropped = t.prefetch_dropped;
    mshr_stalls = t.mshr_stalls;
  }

(* Fault-injection hook: occupy every currently-free MSHR slot with a dummy
   in-flight fetch for [cycles] cycles. Dummy line ids sit far above any real
   allocation, so no demand access or readiness check ever matches them; the
   only observable effect is that prefetches issued before the deadline find
   the MSHRs exhausted and are dropped (starvation). Returns the number of
   slots stalled. *)
let stall_mshrs t ~now ~cycles =
  let stalled = ref 0 in
  let n = Array.length t.mshr_line in
  for i = 0 to n - 1 do
    if t.mshr_line.(i) = -1 || t.mshr_ready.(i) <= now then begin
      t.mshr_line.(i) <- max_int - i;
      t.mshr_ready.(i) <- now + cycles;
      incr stalled
    end
  done;
  if !stalled > 0 then t.mshr_used <- true;
  t.mshr_stalls <- t.mshr_stalls + !stalled;
  !stalled

let clear t =
  Cache.clear t.l1;
  Cache.clear t.l2;
  Cache.clear t.llc;
  Array.fill t.mshr_line 0 (Array.length t.mshr_line) (-1);
  t.mshr_used <- false
