(** A single set-associative cache level with LRU replacement.

    The cache tracks only the {e presence} of 64-byte (configurable) lines of
    the simulated physical address space; actual data contents live in
    ordinary OCaml values elsewhere. This is all the paper's evaluation
    needs: hit/miss placement per level drives every reported metric. *)

type t

(** [create ~name ~size_bytes ~assoc ~line_bytes] builds an empty cache.
    [size_bytes] must equal [nsets * assoc * line_bytes] with [nsets] and
    [line_bytes] powers of two.
    @raise Invalid_argument on malformed geometry. *)
val create : name:string -> size_bytes:int -> assoc:int -> line_bytes:int -> t

val name : t -> string
val line_bytes : t -> int
val nsets : t -> int
val assoc : t -> int
val capacity_bytes : t -> int

(** Line number of a byte address. *)
val line_of_addr : t -> int -> int

(** [access t addr] performs a tag check; on hit, recency is refreshed and
    the result is [true]. Updates hit/miss counters. *)
val access : t -> int -> bool

(** As [access], keyed directly by line number. *)
val access_line : t -> int -> bool

(** Fused miss-path probe: identical to [access_line] in counters and
    recency effects, but returns [1] on hit and [-(valid_ways + 1)] on miss
    so a following [fill_line] can install without re-scanning the set. *)
val probe_line : t -> int -> int

(** [fill_line t line valid_ways] installs [line] into the set a
    [probe_line] just missed with [valid_ways] valid entries (no intervening
    operation on [t]). Same eviction decision and return as [install_line]. *)
val fill_line : t -> int -> int -> int option

(** Presence test without touching LRU state or counters. *)
val contains : t -> int -> bool

val contains_line : t -> int -> bool

(** [install t addr] brings the line of [addr] in, evicting the LRU way of
    its set when full. Returns the evicted line number, if any. Installing a
    present line only refreshes recency. *)
val install : t -> int -> int option

val install_line : t -> int -> int option

val invalidate : t -> int -> unit
val invalidate_line : t -> int -> unit

(** Drop all lines (counters preserved). *)
val clear : t -> unit

val reset_stats : t -> unit
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val installs : t -> int

(** Number of currently valid lines. *)
val resident_lines : t -> int

val pp : Format.formatter -> t -> unit
