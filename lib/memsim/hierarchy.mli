(** Multi-level cache hierarchy (L1d / L2 / LLC / DRAM) with MSHR-limited
    asynchronous software prefetch.

    This is the substitute for the paper's real Xeon memory hierarchy: the
    simulation charges each state access the latency of the level that serves
    it, and a prefetch overlaps its fill latency with whatever the core does
    next — exactly the two effects the interleaved function-stream execution
    model exploits. Time is a caller-maintained cycle counter. *)

type config = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  llc_size : int;
  llc_assoc : int;
  line_bytes : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_llc : int;
  lat_dram : int;
  mshr_count : int;  (** max outstanding fills — bounds memory-level parallelism *)
  stream_num : int;
  stream_den : int;
      (** subsequent contiguous missing lines of one block access pay
          [lat * stream_num / stream_den], modelling hardware stream-in *)
}

(** Geometry and latencies of the paper's Xeon Platinum 8168 testbed at
    2.7 GHz. *)
val default_config : config

type t

(** Which level served a demand line access. [Served_inflight] = the line
    was found in an MSHR (an earlier prefetch's fill still in flight) and
    the access paid the residual wait. *)
type served = Served_l1 | Served_l2 | Served_llc | Served_dram | Served_inflight

(** Observation tap, called once per demand line access with the access
    start time, the line, the serving level, and the cycles charged (after
    the stream discount). Purely observational: installing a tap changes no
    counter, latency, or replacement decision — the telemetry plane's
    inertness guarantee rests on this. *)
type tap = now:int -> line:int -> served:served -> cycles:int -> unit

val create : ?cfg:config -> unit -> t

val config : t -> config

(** Install ([Some f]) or remove ([None]) the access tap. *)
val set_tap : t -> tap option -> unit
val line_bytes : t -> int
val l1 : t -> Cache.t
val l2 : t -> Cache.t
val llc : t -> Cache.t

(** Line number containing a byte address. *)
val line_of : t -> int -> int

(** Line numbers spanned by [\[addr, addr+bytes)]. *)
val lines_of : t -> addr:int -> bytes:int -> int list

(** [read t ~now ~addr ~bytes] serves a demand read and returns its latency
    in cycles. A read that finds its line in flight (prefetched but not yet
    arrived) pays only the residual wait. *)
val read : t -> now:int -> addr:int -> bytes:int -> int

(** Demand write; write-allocate with read timing. *)
val write : t -> now:int -> addr:int -> bytes:int -> int

(** [prefetch t ~now ~addr ~bytes] issues non-blocking fills for all lines of
    the block that are not already resident or in flight. Returns the number
    of fills issued; lines are rejected (counted as dropped) when every MSHR
    is busy. *)
val prefetch : t -> now:int -> addr:int -> bytes:int -> int

(** [ready t ~now ~addr ~bytes] is [true] when every line of the block is
    resident in L1/L2 with no fill still in flight — i.e. an access now would
    be cheap. The scheduler's [isPrefetched] test (Algorithm 1, line 7). *)
val ready : t -> now:int -> addr:int -> bytes:int -> bool

(** Residency in L1/L2 regardless of in-flight status. *)
val resident : t -> addr:int -> bytes:int -> bool

(** Number of fills currently outstanding. *)
val mshr_pending_count : t -> now:int -> int

(** The [(line, ready_at)] pairs of fills still outstanding at [now] —
    introspection for invariant checks (every [ready_at > now], and at most
    [mshr_count] entries). *)
val mshr_deadlines : t -> now:int -> (int * int) list

(** Fault-injection hook: occupy every currently-free MSHR slot with a dummy
    in-flight fetch for [cycles] cycles, starving prefetches issued before
    the deadline (they are dropped as MSHR-full). Dummy lines never match a
    demand access or readiness check, so behaviour is timing/stats-only.
    Returns the number of slots stalled (also counted in
    {!Memstats.t.mshr_stalls}). *)
val stall_mshrs : t -> now:int -> cycles:int -> int

(** Snapshot of all counters (monotonic; diff two snapshots to measure a
    run). *)
val counters : t -> Memstats.t

(** Empty all levels and MSHRs (counters preserved). *)
val clear : t -> unit
