(* Aggregate counters for a memory hierarchy, snapshot-able so runs can be
   measured as deltas. *)

type t = {
  reads : int;
  writes : int;
  line_accesses : int;
  l1_hits : int;
  l2_hits : int;
  llc_hits : int;
  dram_fills : int;
  mshr_waits : int;          (* demand accesses that hit an in-flight prefetch *)
  wait_cycles : int;         (* cycles stalled waiting on in-flight prefetches *)
  prefetch_issued : int;
  prefetch_redundant : int;  (* line already resident or pending *)
  prefetch_dropped : int;    (* MSHR full, prefetch not issued *)
  mshr_stalls : int;         (* injected MSHR-starvation stalls (fault plane) *)
}

let zero =
  {
    reads = 0;
    writes = 0;
    line_accesses = 0;
    l1_hits = 0;
    l2_hits = 0;
    llc_hits = 0;
    dram_fills = 0;
    mshr_waits = 0;
    wait_cycles = 0;
    prefetch_issued = 0;
    prefetch_redundant = 0;
    prefetch_dropped = 0;
    mshr_stalls = 0;
  }

let diff a b =
  {
    reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    line_accesses = a.line_accesses - b.line_accesses;
    l1_hits = a.l1_hits - b.l1_hits;
    l2_hits = a.l2_hits - b.l2_hits;
    llc_hits = a.llc_hits - b.llc_hits;
    dram_fills = a.dram_fills - b.dram_fills;
    mshr_waits = a.mshr_waits - b.mshr_waits;
    wait_cycles = a.wait_cycles - b.wait_cycles;
    prefetch_issued = a.prefetch_issued - b.prefetch_issued;
    prefetch_redundant = a.prefetch_redundant - b.prefetch_redundant;
    prefetch_dropped = a.prefetch_dropped - b.prefetch_dropped;
    mshr_stalls = a.mshr_stalls - b.mshr_stalls;
  }

let add a b =
  {
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    line_accesses = a.line_accesses + b.line_accesses;
    l1_hits = a.l1_hits + b.l1_hits;
    l2_hits = a.l2_hits + b.l2_hits;
    llc_hits = a.llc_hits + b.llc_hits;
    dram_fills = a.dram_fills + b.dram_fills;
    mshr_waits = a.mshr_waits + b.mshr_waits;
    wait_cycles = a.wait_cycles + b.wait_cycles;
    prefetch_issued = a.prefetch_issued + b.prefetch_issued;
    prefetch_redundant = a.prefetch_redundant + b.prefetch_redundant;
    prefetch_dropped = a.prefetch_dropped + b.prefetch_dropped;
    mshr_stalls = a.mshr_stalls + b.mshr_stalls;
  }

(* Misses at a level = accesses that had to be served deeper. *)
let l1_misses t = t.line_accesses - t.l1_hits
let l2_misses t = l1_misses t - t.l2_hits - t.mshr_waits
let llc_misses t = t.dram_fills

let l1_hit_rate t =
  if t.line_accesses = 0 then 1.0
  else float_of_int t.l1_hits /. float_of_int t.line_accesses

let pp ppf t =
  Fmt.pf ppf
    "accesses=%d l1_hits=%d l2_hits=%d llc_hits=%d dram=%d mshr_waits=%d \
     wait_cyc=%d pf=%d pf_redundant=%d pf_dropped=%d"
    t.line_accesses t.l1_hits t.l2_hits t.llc_hits t.dram_fills t.mshr_waits
    t.wait_cycles t.prefetch_issued t.prefetch_redundant t.prefetch_dropped;
  (* appended only when the fault plane actually injected stalls, so
     fault-free output is unchanged *)
  if t.mshr_stalls > 0 then Fmt.pf ppf " mshr_stalls=%d" t.mshr_stalls
