(** NAS-lite (TS 24.501 subset): real framing — extended protocol
    discriminator, security header, message type, TLV IEs — so the AMF
    parses its input from actual packet bytes. *)

exception Malformed of string

val epd_5gmm : int
val mt_registration_request : int
val mt_registration_complete : int
val mt_deregistration_request : int
val mt_service_request : int
val mt_authentication_response : int
val mt_security_mode_complete : int
val mt_ul_nas_transport : int
val mt_periodic_update : int
val mt_context_release : int

type t = { msg_type : int; ue_id : int; payload_len : int }

val header_bytes : int

(** Total bytes {!encode} writes. *)
val encoded_bytes : int

val encode : t -> Bytes.t -> off:int -> unit

(** @raise Malformed on truncation, wrong discriminator or missing IEs. *)
val decode : Bytes.t -> off:int -> t

(** Total decode: malformation is a typed error, never an exception. *)
val decode_result : Bytes.t -> off:int -> (t, string) result
