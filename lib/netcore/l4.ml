(* Minimal UDP and TCP header handling — enough for stateful NFs that match
   and rewrite ports. *)

let udp_header_bytes = 8
let tcp_header_bytes = 20

type udp = { src_port : int; dst_port : int; length : int }

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type tcp = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : tcp_flags;
  window : int;
}

let put_u16 = Ethernet.put_u16
let get_u16 = Ethernet.get_u16

let encode_udp (u : udp) buf ~off =
  put_u16 buf off u.src_port;
  put_u16 buf (off + 2) u.dst_port;
  put_u16 buf (off + 4) u.length;
  put_u16 buf (off + 6) 0 (* checksum optional over IPv4 *)

let decode_udp buf ~off : udp =
  { src_port = get_u16 buf off; dst_port = get_u16 buf (off + 2); length = get_u16 buf (off + 4) }

(* Total decode with bounds checks — truncated transport headers are a
   typed error, not an out-of-bounds exception. *)
let decode_udp_result buf ~off =
  if off < 0 || off + udp_header_bytes > Bytes.length buf then
    Error "L4.decode_udp: truncated header"
  else Ok (decode_udp buf ~off)

let flags_byte f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor if f.ack then 0x10 else 0

let flags_of_byte b =
  { fin = b land 0x01 <> 0; syn = b land 0x02 <> 0; rst = b land 0x04 <> 0; ack = b land 0x10 <> 0 }

let encode_tcp (t : tcp) buf ~off =
  put_u16 buf off t.src_port;
  put_u16 buf (off + 2) t.dst_port;
  Ipv4.put_u32 buf (off + 4) t.seq;
  Ipv4.put_u32 buf (off + 8) t.ack_seq;
  Bytes.set buf (off + 12) (Char.chr 0x50) (* data offset 5 *);
  Bytes.set buf (off + 13) (Char.chr (flags_byte t.flags));
  put_u16 buf (off + 14) t.window;
  put_u16 buf (off + 16) 0 (* checksum: not computed in simulation *);
  put_u16 buf (off + 18) 0

let decode_tcp buf ~off : tcp =
  {
    src_port = get_u16 buf off;
    dst_port = get_u16 buf (off + 2);
    seq = Ipv4.get_u32 buf (off + 4);
    ack_seq = Ipv4.get_u32 buf (off + 8);
    flags = flags_of_byte (Char.code (Bytes.get buf (off + 13)));
    window = get_u16 buf (off + 14);
  }

let decode_tcp_result buf ~off =
  if off < 0 || off + tcp_header_bytes > Bytes.length buf then
    Error "L4.decode_tcp: truncated header"
  else Ok (decode_tcp buf ~off)

(* Port rewrites shared by UDP and TCP (ports sit at the same offsets). *)
let rewrite_src_port buf ~off ~port = put_u16 buf off port
let rewrite_dst_port buf ~off ~port = put_u16 buf (off + 2) port
let src_port buf ~off = get_u16 buf off
let dst_port buf ~off = get_u16 buf (off + 2)
