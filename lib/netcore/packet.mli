(** Simulated packets: real header bytes that NF actions genuinely parse
    and rewrite, a virtual payload (only its size matters), and a buffer
    address in the simulated physical memory so header accesses are charged
    to the cache model. *)

type t = {
  mutable id : int;  (** unique per construction (arena reuse re-stamps) *)
  mutable buf : Bytes.t;  (** header bytes *)
  mutable hdr_len : int;  (** valid bytes at the front of [buf] *)
  mutable l3_off : int;  (** offset of the (innermost) IPv4 header *)
  mutable l4_off : int;
  mutable wire_len : int;  (** on-wire size including virtual payload *)
  mutable flow : Flow.t;  (** canonical flow identity (not affected by rewrites) *)
  mutable sim_addr : int;  (** simulated buffer address; -1 = unassigned *)
}

val max_header_bytes : int

(** Zero-alloc packet arena: a ring of packet records recycled in place by
    {!make}. Reuse resets every field to the exact state a fresh
    construction would produce (same global id counter, zeroed buffer,
    unassigned address), so arena-fed runs are byte-identical to
    fresh-allocation runs. Size the ring beyond the maximum number of
    packets simultaneously in flight. *)
module Arena : sig
  type t

  val default_size : int

  (** @raise Invalid_argument when [size <= 0]. *)
  val create : ?size:int -> unit -> t

  val size : t -> int
end

(** Build an Eth/IPv4/UDP-or-TCP packet for [flow], encoding real headers.
    With [arena], recycle the ring's next record instead of allocating. *)
val make :
  ?src_mac:Ethernet.mac -> ?dst_mac:Ethernet.mac -> ?arena:Arena.t -> flow:Flow.t ->
  wire_len:int -> unit -> t

(** Deep copy sharing no mutable state with the original but keeping its
    id — replay-log entries must re-run as "the same packet" (exactly-once
    dedup and fault injections key on id) even after the original buffer
    was rewritten or recycled. *)
val clone : t -> t

(** Decode the (innermost) IPv4 header from the actual bytes. *)
val ipv4 : t -> Ipv4.t

(** Re-derive the 5-tuple from the actual header bytes — reflects rewrites
    performed by NFs, unlike the canonical [flow] field. *)
val flow_of_headers : t -> Flow.t

(** Prepend an outer IPv4/UDP/GTP-U tunnel (UPF downlink). Adjusts offsets,
    header and wire lengths. *)
val encapsulate_gtpu : t -> outer_src:Ipv4.addr -> outer_dst:Ipv4.addr -> teid:int32 -> unit

(** Strip a GTP-U tunnel (UPF uplink); returns the TEID.
    @raise Invalid_argument when the outer headers are not a GTP-U tunnel. *)
val decapsulate_gtpu : t -> int32

module Pool : sig
  (** A DPDK-mempool-like ring of packet buffers in simulated memory;
      buffers recycle round-robin like an RX descriptor ring. *)
  type pool

  val create : Memsim.Layout.t -> count:int -> pool

  (** Assign the next ring buffer's simulated address to the packet. *)
  val assign : pool -> t -> unit

  val count : pool -> int
end
