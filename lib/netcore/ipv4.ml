(* IPv4 header encode/decode (no options). Addresses are int32 read in
   network order; ports and lengths are host ints. *)

type addr = int32

let header_bytes = 20

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

type t = {
  src : addr;
  dst : addr;
  proto : int;
  ttl : int;
  total_len : int;
  ident : int;
  dscp : int;
}

let make ?(ttl = 64) ?(ident = 0) ?(dscp = 0) ~src ~dst ~proto ~total_len () =
  { src; dst; proto; ttl; total_len; ident; dscp }

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let p x = Int32.of_int (int_of_string x) in
      let ( <| ) v x = Int32.logor (Int32.shift_left v 8) (p x) in
      p a <| b <| c <| d
  | _ -> invalid_arg "Ipv4.addr_of_string"

let addr_to_string a =
  let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical a (i * 8)) 0xFFl) in
  Printf.sprintf "%d.%d.%d.%d" (b 3) (b 2) (b 1) (b 0)

let put_u8 buf off v = Bytes.set buf off (Char.chr (v land 0xFF))
let put_u16 = Ethernet.put_u16
let get_u16 = Ethernet.get_u16
let get_u8 buf off = Char.code (Bytes.get buf off)

let put_u32 buf off (v : int32) =
  let vi = Int32.to_int (Int32.logand v 0xFFFFFFFFl) land 0xFFFFFFFF in
  put_u16 buf off (vi lsr 16);
  put_u16 buf (off + 2) (vi land 0xFFFF)

let get_u32 buf off : int32 =
  let hi = get_u16 buf off and lo = get_u16 buf (off + 2) in
  Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo)

let checksum_offset = 10

let encode t buf ~off =
  put_u8 buf off 0x45 (* version 4, IHL 5 *);
  put_u8 buf (off + 1) (t.dscp lsl 2);
  put_u16 buf (off + 2) t.total_len;
  put_u16 buf (off + 4) t.ident;
  put_u16 buf (off + 6) 0x4000 (* DF *);
  put_u8 buf (off + 8) t.ttl;
  put_u8 buf (off + 9) t.proto;
  put_u16 buf (off + checksum_offset) 0;
  put_u32 buf (off + 12) t.src;
  put_u32 buf (off + 16) t.dst;
  let csum = Checksum.of_bytes buf ~off ~len:header_bytes in
  put_u16 buf (off + checksum_offset) csum

(* Total decode: truncation and a wrong version nibble are typed errors,
   never exceptions — garbage from the wire must not escape a packet
   decode. *)
let decode_result buf ~off =
  if off < 0 || off + header_bytes > Bytes.length buf then
    Error "Ipv4.decode: truncated header"
  else
    let vihl = get_u8 buf off in
    if vihl lsr 4 <> 4 then Error "Ipv4.decode: not IPv4"
    else
      Ok
        {
          src = get_u32 buf (off + 12);
          dst = get_u32 buf (off + 16);
          proto = get_u8 buf (off + 9);
          ttl = get_u8 buf (off + 8);
          total_len = get_u16 buf (off + 2);
          ident = get_u16 buf (off + 4);
          dscp = get_u8 buf (off + 1) lsr 2;
        }

let decode buf ~off =
  let vihl = get_u8 buf off in
  if vihl lsr 4 <> 4 then invalid_arg "Ipv4.decode: not IPv4";
  {
    src = get_u32 buf (off + 12);
    dst = get_u32 buf (off + 16);
    proto = get_u8 buf (off + 9);
    ttl = get_u8 buf (off + 8);
    total_len = get_u16 buf (off + 2);
    ident = get_u16 buf (off + 4);
    dscp = get_u8 buf (off + 1) lsr 2;
  }

let header_valid buf ~off = Checksum.valid buf ~off ~len:header_bytes

(* In-place src address rewrite with incremental checksum update (the NAT
   fast path). *)
let rewrite_src buf ~off ~src =
  let old_hi = get_u16 buf (off + 12) and old_lo = get_u16 buf (off + 14) in
  put_u32 buf (off + 12) src;
  let new_hi = get_u16 buf (off + 12) and new_lo = get_u16 buf (off + 14) in
  let c = get_u16 buf (off + checksum_offset) in
  let c = Checksum.update ~old_csum:c ~old_field:old_hi ~new_field:new_hi in
  let c = Checksum.update ~old_csum:c ~old_field:old_lo ~new_field:new_lo in
  put_u16 buf (off + checksum_offset) c

let rewrite_dst buf ~off ~dst =
  let old_hi = get_u16 buf (off + 16) and old_lo = get_u16 buf (off + 18) in
  put_u32 buf (off + 16) dst;
  let new_hi = get_u16 buf (off + 16) and new_lo = get_u16 buf (off + 18) in
  let c = get_u16 buf (off + checksum_offset) in
  let c = Checksum.update ~old_csum:c ~old_field:old_hi ~new_field:new_hi in
  let c = Checksum.update ~old_csum:c ~old_field:old_lo ~new_field:new_lo in
  put_u16 buf (off + checksum_offset) c

let decrement_ttl buf ~off =
  let ttl = get_u8 buf (off + 8) in
  if ttl = 0 then false
  else begin
    put_u8 buf (off + 8) (ttl - 1);
    let old_field = get_u16 buf (off + 8) + 0x0100 in
    let new_field = get_u16 buf (off + 8) in
    let c = get_u16 buf (off + checksum_offset) in
    put_u16 buf (off + checksum_offset)
      (Checksum.update ~old_csum:c ~old_field ~new_field);
    true
  end
