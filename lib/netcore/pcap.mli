(** Libpcap-format trace export/import (classic 2.4 little-endian format,
    LINKTYPE_ETHERNET). Packets carry their real header bytes; the virtual
    payload shows as original length with a truncated capture. *)

val magic : int
val linktype_ethernet : int
val default_snaplen : int

type writer

val create_writer : ?snaplen:int -> unit -> writer

(** Append one packet at [ts_us] microseconds (simulated time is fine). *)
val add_packet : writer -> ts_us:int -> Packet.t -> unit

val contents : writer -> string
val write_file : writer -> string -> unit

type record = { ts_us : int; data : Bytes.t; orig_len : int }

exception Bad_capture of string

(** Total parse: malformed input (truncated headers/records, wrong magic,
    wrong link type) is a typed [Error], never an exception. *)
val parse_result : string -> (record list, string) result

(** {!parse_result}, raising for callers that want the old behaviour.
    @raise Bad_capture on malformed input. *)
val parse : string -> record list

val read_file : string -> record list
