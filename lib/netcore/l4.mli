(** Minimal UDP and TCP header handling — enough for stateful NFs that
    match and rewrite ports. *)

val udp_header_bytes : int
val tcp_header_bytes : int

type udp = { src_port : int; dst_port : int; length : int }

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type tcp = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : tcp_flags;
  window : int;
}

val encode_udp : udp -> Bytes.t -> off:int -> unit
val decode_udp : Bytes.t -> off:int -> udp
val encode_tcp : tcp -> Bytes.t -> off:int -> unit
val decode_tcp : Bytes.t -> off:int -> tcp

(** Total decodes with bounds checks: a truncated transport header is a
    typed error, never an out-of-bounds exception. *)
val decode_udp_result : Bytes.t -> off:int -> (udp, string) result

val decode_tcp_result : Bytes.t -> off:int -> (tcp, string) result

(** Port rewrites/reads valid for both UDP and TCP (same offsets). *)
val rewrite_src_port : Bytes.t -> off:int -> port:int -> unit

val rewrite_dst_port : Bytes.t -> off:int -> port:int -> unit
val src_port : Bytes.t -> off:int -> int
val dst_port : Bytes.t -> off:int -> int
