(* Libpcap-format trace export/import (classic 2.4 format, little-endian,
   LINKTYPE_ETHERNET). Packets are written with their real header bytes;
   the virtual payload appears as the original length, truncated capture —
   exactly what a snaplen-limited capture looks like. *)

let magic = 0xA1B2C3D4
let version_major = 2
let version_minor = 4
let linktype_ethernet = 1
let default_snaplen = 65535

let put_u32le buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_u16le buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

type writer = { buf : Buffer.t; snaplen : int }

let create_writer ?(snaplen = default_snaplen) () =
  let buf = Buffer.create 4096 in
  put_u32le buf magic;
  put_u16le buf version_major;
  put_u16le buf version_minor;
  put_u32le buf 0 (* thiszone *);
  put_u32le buf 0 (* sigfigs *);
  put_u32le buf snaplen;
  put_u32le buf linktype_ethernet;
  { buf; snaplen }

(* [ts_us] is the timestamp in microseconds (simulated time works fine). *)
let add_packet w ~ts_us (p : Packet.t) =
  let incl = min (min p.Packet.hdr_len w.snaplen) p.Packet.wire_len in
  put_u32le w.buf (ts_us / 1_000_000);
  put_u32le w.buf (ts_us mod 1_000_000);
  put_u32le w.buf incl;
  put_u32le w.buf p.Packet.wire_len;
  Buffer.add_subbytes w.buf p.Packet.buf 0 incl

let contents w = Buffer.contents w.buf

let write_file w path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents w))

(* ----- reading (for tests and inspection) ----- *)

type record = { ts_us : int; data : Bytes.t; orig_len : int }

exception Bad_capture of string

let get_u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let get_u16le s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

(* Total parse: every malformed-input case is a typed [Error], so decoding
   captured bytes can never raise out of the data path. *)
let parse_result s =
  if String.length s < 24 then Error "truncated global header"
  else if get_u32le s 0 <> magic then Error "bad magic (or byte-swapped)"
  else if get_u16le s 4 <> version_major then Error "unsupported version"
  else if get_u32le s 20 <> linktype_ethernet then Error "not Ethernet"
  else begin
    let n = String.length s in
    let rec go off acc =
      if off = n then Ok (List.rev acc)
      else if off + 16 > n then Error "truncated record header"
      else
        let ts_sec = get_u32le s off in
        let ts_usec = get_u32le s (off + 4) in
        let incl = get_u32le s (off + 8) in
        let orig_len = get_u32le s (off + 12) in
        if incl < 0 || off + 16 + incl > n then Error "truncated record data"
        else
          let data = Bytes.of_string (String.sub s (off + 16) incl) in
          go (off + 16 + incl)
            ({ ts_us = (ts_sec * 1_000_000) + ts_usec; data; orig_len } :: acc)
    in
    go 24 []
  end

let parse s =
  match parse_result s with Ok r -> r | Error e -> raise (Bad_capture e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
