(* NAS-lite (5GS mobility management, TS 24.501 subset): just enough of the
   real framing that the AMF genuinely parses its input from packet bytes —
   extended protocol discriminator, security header type, message type, and
   a couple of TLV information elements. *)

exception Malformed of string

(* Extended protocol discriminator: 5GS mobility management. *)
let epd_5gmm = 0x7E

(* TS 24.501 message types (AN-release is RAN signalling; it gets a code in
   the reserved space so one codec covers the whole workload). *)
let mt_registration_request = 0x41
let mt_registration_complete = 0x43
let mt_deregistration_request = 0x45
let mt_service_request = 0x4C
let mt_authentication_response = 0x57
let mt_security_mode_complete = 0x5E
let mt_ul_nas_transport = 0x67  (* carries the PDU session request *)
let mt_periodic_update = 0x49  (* registration request, mobility update *)
let mt_context_release = 0x70  (* AN release indication (non-NAS) *)

(* IE tags (invented within the TLV space). *)
let ie_ue_id = 0x01
let ie_payload_len = 0x02

type t = { msg_type : int; ue_id : int; payload_len : int }

let header_bytes = 3

let encode t buf ~off =
  Bytes.set buf off (Char.chr epd_5gmm);
  Bytes.set buf (off + 1) '\x00' (* plain, no security protection *);
  Bytes.set buf (off + 2) (Char.chr (t.msg_type land 0xFF));
  (* UE id TLV: tag, len=4, value. *)
  Bytes.set buf (off + 3) (Char.chr ie_ue_id);
  Bytes.set buf (off + 4) '\x04';
  Ipv4.put_u32 buf (off + 5) (Int32.of_int t.ue_id);
  (* payload length TLV: tag, len=2, value *)
  Bytes.set buf (off + 9) (Char.chr ie_payload_len);
  Bytes.set buf (off + 10) '\x02';
  Ethernet.put_u16 buf (off + 11) t.payload_len

let encoded_bytes = 13

let decode buf ~off =
  if Bytes.length buf < off + header_bytes then raise (Malformed "truncated header");
  if Char.code (Bytes.get buf off) <> epd_5gmm then
    raise (Malformed "not a 5GMM message");
  let msg_type = Char.code (Bytes.get buf (off + 2)) in
  let ue_id = ref (-1) and payload_len = ref 0 in
  let pos = ref (off + 3) in
  let stop = min (Bytes.length buf) (off + encoded_bytes) in
  while !pos + 2 <= stop do
    let tag = Char.code (Bytes.get buf !pos) in
    let len = Char.code (Bytes.get buf (!pos + 1)) in
    if !pos + 2 + len > stop then raise (Malformed "truncated IE");
    if tag = ie_ue_id && len = 4 then
      ue_id := Int32.to_int (Ipv4.get_u32 buf (!pos + 2)) land 0xFFFFFFFF
    else if tag = ie_payload_len && len = 2 then
      payload_len := Ethernet.get_u16 buf (!pos + 2);
    pos := !pos + 2 + len
  done;
  if !ue_id < 0 then raise (Malformed "missing UE id IE");
  { msg_type; ue_id = !ue_id; payload_len = !payload_len }

(* Total decode: any malformation (including a negative offset, which the
   raising decode would turn into an out-of-bounds exception) is a typed
   error. *)
let decode_result buf ~off =
  if off < 0 then Error "negative offset"
  else
    match decode buf ~off with
    | t -> Ok t
    | exception Malformed e -> Error e
