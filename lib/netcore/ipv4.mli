(** IPv4 header encode/decode (no options) with real checksum handling,
    including the incremental rewrites NAT-style functions perform. *)

(** Address in network byte order. *)
type addr = int32

val header_bytes : int
val proto_icmp : int
val proto_tcp : int
val proto_udp : int

type t = {
  src : addr;
  dst : addr;
  proto : int;
  ttl : int;
  total_len : int;
  ident : int;
  dscp : int;
}

val make :
  ?ttl:int -> ?ident:int -> ?dscp:int -> src:addr -> dst:addr -> proto:int ->
  total_len:int -> unit -> t

(** Parse dotted-quad notation. @raise Invalid_argument on malformed input. *)
val addr_of_string : string -> addr

val addr_to_string : addr -> string

(** Encode at [off], computing the header checksum. *)
val encode : t -> Bytes.t -> off:int -> unit

(** Total decode: truncation and a non-4 version nibble are typed errors,
    never exceptions. *)
val decode_result : Bytes.t -> off:int -> (t, string) result

(** @raise Invalid_argument if the version nibble is not 4. *)
val decode : Bytes.t -> off:int -> t

(** Verify the header checksum of an encoded header. *)
val header_valid : Bytes.t -> off:int -> bool

(** In-place source/destination rewrite with RFC 1624 incremental checksum
    update — the NAT/LB fast path. *)
val rewrite_src : Bytes.t -> off:int -> src:addr -> unit

val rewrite_dst : Bytes.t -> off:int -> dst:addr -> unit

(** Decrement TTL (incremental checksum update); [false] when TTL is
    already 0 and the packet must be dropped. *)
val decrement_ttl : Bytes.t -> off:int -> bool

(** Big-endian 32-bit accessors shared with other codecs. *)
val put_u32 : Bytes.t -> int -> int32 -> unit

val get_u32 : Bytes.t -> int -> int32
val put_u16 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val put_u8 : Bytes.t -> int -> int -> unit
val get_u8 : Bytes.t -> int -> int
val checksum_offset : int
