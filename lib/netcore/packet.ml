(* Simulated packets.

   A packet couples three things:
   - real header bytes (Ethernet/IPv4/L4[/GTP-U]) that NF actions genuinely
     parse and rewrite,
   - a wire length (payload is virtual — only its size matters to
     throughput),
   - an address in the simulated physical memory (assigned by a {!Pool}),
     so that header accesses are charged to the cache model. *)

type t = {
  mutable id : int;  (* mutable only for arena reuse; fresh per [make] *)
  mutable buf : Bytes.t;
  mutable hdr_len : int;    (* valid bytes at the front of [buf] *)
  mutable l3_off : int;     (* offset of the (innermost) IPv4 header *)
  mutable l4_off : int;
  mutable wire_len : int;   (* bytes on the wire, incl. virtual payload *)
  mutable flow : Flow.t;
  mutable sim_addr : int;   (* simulated buffer address; -1 = unassigned *)
}

let max_header_bytes = 128

let next_id = ref 0

(* Encode the Eth/IPv4/L4 headers for [flow] into [buf] (assumed zeroed);
   returns (l3_off, l4_off, hdr_len, wire_len). Shared by fresh
   construction and arena reuse so the two produce byte-identical
   packets. *)
let encode_headers ~src_mac ~dst_mac ~flow ~wire_len buf =
  let eth = Ethernet.{ dst = dst_mac; src = src_mac; ethertype = ethertype_ipv4 } in
  Ethernet.encode eth buf ~off:0;
  let l3_off = Ethernet.header_bytes in
  let l4_is_udp = flow.Flow.proto = Ipv4.proto_udp in
  let l4_len =
    if l4_is_udp then L4.udp_header_bytes
    else if flow.Flow.proto = Ipv4.proto_tcp then L4.tcp_header_bytes
    else 0
  in
  let ip_total = wire_len - Ethernet.header_bytes in
  let ip =
    Ipv4.make ~src:flow.Flow.src_ip ~dst:flow.Flow.dst_ip ~proto:flow.Flow.proto
      ~total_len:(max ip_total (Ipv4.header_bytes + l4_len))
      ()
  in
  Ipv4.encode ip buf ~off:l3_off;
  let l4_off = l3_off + Ipv4.header_bytes in
  if l4_is_udp then
    L4.encode_udp
      L4.{ src_port = flow.Flow.src_port; dst_port = flow.Flow.dst_port;
           length = max (ip_total - Ipv4.header_bytes) udp_header_bytes }
      buf ~off:l4_off
  else if flow.Flow.proto = Ipv4.proto_tcp then
    L4.encode_tcp
      L4.{ src_port = flow.Flow.src_port; dst_port = flow.Flow.dst_port;
           seq = 0l; ack_seq = 0l;
           flags = { syn = false; ack = true; fin = false; rst = false };
           window = 65535 }
      buf ~off:l4_off;
  (l3_off, l4_off, l4_off + l4_len, max wire_len (l4_off + l4_len))

(* Zero-alloc packet arena: a ring of packet records recycled in place.
   Reuse resets every field to the exact state a fresh [make] would
   produce — same global id counter, zeroed buffer, unassigned
   [sim_addr] — so an arena-fed run is byte-identical to a fresh-allocation
   run. The caller must size the ring beyond its maximum in-flight packet
   count (executors retire a packet before its slot comes around again at
   the default size). *)
module Arena = struct
  type packet = t
  type t = { slots : packet option array; mutable next : int }

  let default_size = 1024

  let create ?(size = default_size) () =
    if size <= 0 then invalid_arg "Packet.Arena.create: size must be positive";
    { slots = Array.make size None; next = 0 }

  let size a = Array.length a.slots

  (* The slot the next packet will occupy, advancing the ring. *)
  let take a =
    let i = a.next in
    a.next <- (i + 1) mod Array.length a.slots;
    i
end

(* Build a plain Eth/IPv4/L4 packet for [flow] with the headers actually
   encoded into [buf]. With [arena], recycle the ring's next record in
   place instead of allocating. *)
let make ?(src_mac = 0x020000000001) ?(dst_mac = 0x020000000002) ?arena ~flow
    ~wire_len () =
  let fresh () =
    let buf = Bytes.make max_header_bytes '\000' in
    let l3_off, l4_off, hdr_len, wire_len =
      encode_headers ~src_mac ~dst_mac ~flow ~wire_len buf
    in
    incr next_id;
    { id = !next_id; buf; hdr_len; l3_off; l4_off; wire_len; flow; sim_addr = -1 }
  in
  match arena with
  | None -> fresh ()
  | Some a -> (
      let slot = Arena.take a in
      match a.Arena.slots.(slot) with
      | None ->
          let p = fresh () in
          a.Arena.slots.(slot) <- Some p;
          p
      | Some p ->
          (* GTP-U encapsulation can have grown the buffer; restore the
             canonical geometry before re-encoding. *)
          if Bytes.length p.buf <> max_header_bytes then
            p.buf <- Bytes.make max_header_bytes '\000'
          else Bytes.fill p.buf 0 max_header_bytes '\000';
          let l3_off, l4_off, hdr_len, wire_len =
            encode_headers ~src_mac ~dst_mac ~flow ~wire_len p.buf
          in
          incr next_id;
          p.id <- !next_id;
          p.hdr_len <- hdr_len;
          p.l3_off <- l3_off;
          p.l4_off <- l4_off;
          p.wire_len <- wire_len;
          p.flow <- flow;
          p.sim_addr <- -1;
          p)

(* Deep copy sharing nothing mutable with the original, keeping the same
   id: a replay-log entry must later be replayed as "the same packet" (the
   exactly-once dedup and the fault plane both key on id), while the
   original may be rewritten or recycled by the run that pulled it. *)
let clone t = { t with buf = Bytes.copy t.buf }

let ipv4 t = Ipv4.decode t.buf ~off:t.l3_off

(* Re-derive the 5-tuple from the actual header bytes (used by tests to
   check that rewrites really happened on the wire format). *)
let flow_of_headers t =
  let ip = ipv4 t in
  Flow.make ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
    ~src_port:(L4.src_port t.buf ~off:t.l4_off)
    ~dst_port:(L4.dst_port t.buf ~off:t.l4_off)
    ~proto:ip.Ipv4.proto

(* GTP-U encapsulation: prepend outer IPv4/UDP/GTP-U between the Ethernet
   header and the inner IPv4 packet (the UPF downlink data action). *)
let encapsulate_gtpu t ~outer_src ~outer_dst ~teid =
  let inner_len = t.wire_len - Ethernet.header_bytes in
  let shift = Gtpu.encap_overhead in
  let needed = t.hdr_len + shift in
  if needed > Bytes.length t.buf then begin
    let bigger = Bytes.make (max needed (2 * Bytes.length t.buf)) '\000' in
    Bytes.blit t.buf 0 bigger 0 t.hdr_len;
    t.buf <- bigger
  end;
  (* Move the inner headers out of the way. *)
  Bytes.blit t.buf t.l3_off t.buf (t.l3_off + shift) (t.hdr_len - t.l3_off);
  let outer_ip_off = Ethernet.header_bytes in
  let outer_udp_off = outer_ip_off + Ipv4.header_bytes in
  let gtpu_off = outer_udp_off + L4.udp_header_bytes in
  let outer_ip =
    Ipv4.make ~src:outer_src ~dst:outer_dst ~proto:Ipv4.proto_udp
      ~total_len:(inner_len + shift) ()
  in
  Ipv4.encode outer_ip t.buf ~off:outer_ip_off;
  L4.encode_udp
    L4.{ src_port = Gtpu.udp_port; dst_port = Gtpu.udp_port;
         length = inner_len + udp_header_bytes + Gtpu.header_bytes }
    t.buf ~off:outer_udp_off;
  Gtpu.encode (Gtpu.make ~teid ~length:inner_len ()) t.buf ~off:gtpu_off;
  t.l3_off <- t.l3_off + shift;
  t.l4_off <- t.l4_off + shift;
  t.hdr_len <- t.hdr_len + shift;
  t.wire_len <- t.wire_len + shift

(* Strip a GTP-U tunnel (uplink direction); returns the TEID. *)
let decapsulate_gtpu t =
  let outer_ip_off = Ethernet.header_bytes in
  let outer = Ipv4.decode t.buf ~off:outer_ip_off in
  if outer.Ipv4.proto <> Ipv4.proto_udp then invalid_arg "decapsulate_gtpu: not UDP";
  let gtpu_off = outer_ip_off + Ipv4.header_bytes + L4.udp_header_bytes in
  let g = Gtpu.decode t.buf ~off:gtpu_off in
  let shift = Gtpu.encap_overhead in
  Bytes.blit t.buf (outer_ip_off + shift) t.buf outer_ip_off (t.hdr_len - outer_ip_off - shift);
  t.l3_off <- t.l3_off - shift;
  t.l4_off <- t.l4_off - shift;
  t.hdr_len <- t.hdr_len - shift;
  t.wire_len <- t.wire_len - shift;
  g.Gtpu.teid

module Pool = struct
  (* A DPDK-mempool-like ring of packet buffers in simulated memory. Buffers
     are recycled round-robin, like an RX descriptor ring: under high
     concurrency a buffer's lines have been evicted long before it comes
     around again, which is exactly the packet-state cache behaviour the
     paper describes. *)
  type pool = {
    base : int;
    stride : int;
    count : int;
    mutable next : int;
  }

  let create layout ~count =
    let stride = 2048 in
    let base =
      Memsim.Layout.alloc_array layout ~align:64 ~label:"packet_pool" ~stride ~count ()
    in
    { base; stride; count; next = 0 }

  let assign pool pkt =
    pkt.sim_addr <- pool.base + (pool.next * pool.stride);
    pool.next <- (pool.next + 1) mod pool.count

  let count pool = pool.count
end
