(** nflint rules (the analyzer proper). Two entry points:

    - {!of_module} checks a single module spec in isolation, using the
      declared fetching classes as the available-state abstraction. It
      deliberately does NOT require {!Gunfu.Spec.validate_module} to
      pass first — broken fixtures (unreachable states, nondeterministic
      Δ) are reported as findings instead of exceptions.
    - {!of_build} checks a flattened composition (the compiler's
      {!Gunfu.Compiler.lint_input}): concrete prefetch targets, action
      kill sets, and the cross-instance FSM, on the same
      {!Gunfu.Dataflow} fixpoint the optimizer uses.

    Rules and severities:
    - [cold-access] (error): an NF-C body touches Packet / match /
      per-flow / sub-flow state that no dominating fetch covers — the
      access demand-misses on every path.
    - [temp-escape] (error): a TempState field is read before any state
      has definitely written it on some path.
    - [missing-transition] (error): the body may emit an event Δ does
      not define for that state.
    - [nfc-syntax] / [fsm-nondeterminism] (error): the spec itself is
      ill-formed.
    - [interleaving-conflict] (warning): two control states read/write
      the same ControlState field with at least one writer — interleaved
      function streams race on it across suspension points. One finding
      per field, anchored at the first writer.
    - [unreachable-state] / [no-done-path] (warning): FSM hygiene.
    - [dead-edge] (warning): a transition labelled with an event the
      source state's body can never emit.
    - [constant-condition] (warning): an [If] whose condition the
      symbolic simplifier ({!Sym}) decides to the same truth value on
      every path reaching it — one branch is dead code.
    - [short-distance] (info, build-level only): a prefetch issued on
      the transition into the very state whose action first uses it —
      too late to hide DRAM latency within one stream — while a
      predecessor state could host it. *)

open Gunfu

(** Findings are returned in {!Report.sort} order. *)
val of_module : Spec.module_spec -> Report.finding list

val of_build : Compiler.lint_input -> Report.finding list
