(* nflint rules. Both entry points reduce the subject to one [view] —
   an FSM, per-state NF-C effect summaries, and three abstractions over
   it (available fetch classes, definitely-written temps, control-state
   touch sets) — and run the same rule set over the view. The module
   level uses the declared fetching classes as the availability
   abstraction; the build level uses the concrete prefetch targets and
   action kill sets on the same {!Dataflow} fixpoint the optimizer's
   redundant-prefetch removal runs on. *)

open Gunfu

(* ----- the prefetchable-class abstraction ----- *)

type cls = [ `Packet | `Match_addrs | `Per_flow | `Sub_flow | `Fixed ]

let cls_name = function
  | `Packet -> "Packet"
  | `Match_addrs -> "MatchState"
  | `Per_flow -> "PerFlowState"
  | `Sub_flow -> "SubFlowState"
  | `Fixed -> "ControlState"

(* Scope -> prefetchable class for the cold-access rule. ControlState is
   deliberately never prefetched (small and hot; the compiler requires no
   binding for it) and TempState lives inside the task, so neither can be
   cold. *)
let prefetch_cls_of_scope = function
  | Nfc.Packet -> Some `Packet
  | Nfc.Per_flow -> Some `Per_flow
  | Nfc.Sub_flow -> Some `Sub_flow
  | Nfc.Match_state -> Some `Match_addrs
  | Nfc.Control | Nfc.Temp -> None

(* Spec-level state-class names (states: maps) -> class. *)
let cls_of_decl = function
  | "packet" | "packet_state" -> Some `Packet
  | "per_flow" -> Some `Per_flow
  | "sub_flow" -> Some `Sub_flow
  | "match" | "match_state" -> Some `Match_addrs
  | _ -> None

let cls_eq (a : cls) (b : cls) = a = b
let cls_mem c cs = List.exists (cls_eq c) cs
let cls_union = Dataflow.Set_ops.union ~equal:cls_eq
let cls_inter = Dataflow.Set_ops.inter ~equal:cls_eq
let cls_set_equal = Dataflow.Set_ops.set_equal ~equal:cls_eq
let str_union = Dataflow.Set_ops.union ~equal:String.equal
let str_inter = Dataflow.Set_ops.inter ~equal:String.equal
let str_set_equal = Dataflow.Set_ops.set_equal ~equal:String.equal

let dedup_ints ids =
  List.fold_left (fun acc i -> if List.mem i acc then acc else acc @ [ i ]) [] ids

(* ----- the shared analysis view ----- *)

type view = {
  v_fsm : Fsm.t;
  v_entry : int;
  v_exit : int option;
  v_name : int -> string;  (* display name ("cs" or "inst.cs") *)
  v_eff : (int * Effects.t) list;  (* states carrying NF-C, program order *)
  v_nfc : (int * Nfc.t) list;  (* the same states' parsed NF-C bodies *)
  v_real : int -> bool;  (* excludes Start/End/__start/__done *)
  v_check_cold : bool;  (* false when compiling with prefetching off *)
  v_coverage : int -> cls list;  (* classes fetched for the state's action *)
  v_temp_must_in : int -> string list;  (* temps definitely written on entry *)
  v_temp_qual : int -> string -> string;  (* temp field -> fact name *)
  v_ctl_qual : int -> string -> string;  (* control field -> fact name *)
  v_has_transition : int -> string -> bool;
}

let witness_of fsm ~entry ~name target =
  match Dataflow.witness fsm ~entry ~target with
  | Some path -> List.map name path
  | None -> []

let events_of (e : Effects.t) =
  e.Effects.emits @ (if e.Effects.falls_through then [ "continue" ] else [])

let run_view v add =
  let witness = witness_of v.v_fsm ~entry:v.v_entry ~name:v.v_name in
  (* cold-access: a state-scope access with no dominating fetch of its
     class — the action demand-misses on it along every path. *)
  if v.v_check_cold then
    List.iter
      (fun (id, eff) ->
        let cov = v.v_coverage id in
        let flagged = ref [] in
        List.iter
          (fun (a : Effects.access) ->
            match prefetch_cls_of_scope a.Effects.a_scope with
            | None -> ()
            | Some c ->
                if not (cls_mem c cov) && not (cls_mem c !flagged) then begin
                  flagged := c :: !flagged;
                  add "cold-access" Report.Error (v.v_name id)
                    (Fmt.str
                       "%s.%s is accessed but no fetch of class %s covers %s on any path \
                        (demand miss)"
                       (Nfc.keyword_of_scope a.Effects.a_scope)
                       a.Effects.a_field (cls_name c) (v.v_name id))
                    (witness id)
                end)
          eff.Effects.accesses)
      v.v_eff;
  (* temp-escape: a TempState read not dominated by a definite write. *)
  List.iter
    (fun (id, eff) ->
      let must_in = v.v_temp_must_in id in
      List.iter
        (fun f ->
          if not (List.mem (v.v_temp_qual id f) must_in) then
            add "temp-escape" Report.Error (v.v_name id)
              (Fmt.str
                 "TempState.%s may be read at %s before any state has written it on some \
                  path"
                 f (v.v_name id))
              (witness id))
        eff.Effects.temp_exposed)
    v.v_eff;
  (* interleaving-conflict: one finding per ControlState field touched by
     two or more control states with at least one writer. A single-state
     read-modify-write is fine — actions run to completion; streams only
     interleave at control-state boundaries. *)
  let touches =
    List.concat_map
      (fun (id, eff) ->
        List.filter_map
          (fun (a : Effects.access) ->
            if a.Effects.a_scope = Nfc.Control then
              Some (v.v_ctl_qual id a.Effects.a_field, a.Effects.a_field, id, a.Effects.a_write)
            else None)
          eff.Effects.accesses)
      v.v_eff
  in
  let fields =
    List.fold_left
      (fun acc (q, _, _, _) -> if List.mem q acc then acc else acc @ [ q ])
      [] touches
  in
  List.iter
    (fun q ->
      let ts = List.filter (fun (q', _, _, _) -> q' = q) touches in
      let ids = dedup_ints (List.map (fun (_, _, id, _) -> id) ts) in
      let writers =
        dedup_ints (List.filter_map (fun (_, _, id, w) -> if w then Some id else None) ts)
      in
      match (ids, writers) with
      | _ :: _ :: _, w :: _ ->
          let field = match ts with (_, f, _, _) :: _ -> f | [] -> q in
          let others = List.filter (fun id -> id <> w) ids in
          add "interleaving-conflict" Report.Warning (v.v_name w)
            (Fmt.str
               "ControlState.%s is written at %s and also touched at %s; interleaved \
                function streams race on it across suspension points"
               field (v.v_name w)
               (String.concat ", " (List.map v.v_name others)))
            []
      | _ -> ())
    fields;
  (* constant-condition: an If whose condition the symbolic simplifier
     decides to the same truth value on every path reaching it — one
     branch is dead and the test is wasted cycles. *)
  List.iter
    (fun (id, prog) ->
      let summary = Sym.summarize prog in
      List.iter
        (fun (_, cond, truth) ->
          let rec sym_of = function
            | Nfc.Int v -> Sym.Const v
            | Nfc.Ref (s, f) -> Sym.Var (s, f)
            | Nfc.Bin (op, a, b) -> Sym.SBin (op, sym_of a, sym_of b)
          in
          add "constant-condition" Report.Warning (v.v_name id)
            (Fmt.str
               "the branch condition %a at %s is always %s: the %s branch is dead code"
               Sym.pp_sexpr (sym_of cond) (v.v_name id)
               (if truth then "true" else "false")
               (if truth then "else" else "then"))
            (witness id))
        summary.Sym.s_decided)
    v.v_nfc;
  (* missing-transition: the body can raise an event Δ does not define. *)
  List.iter
    (fun (id, eff) ->
      List.iter
        (fun ev ->
          if not (v.v_has_transition id ev) then
            add "missing-transition" Report.Error (v.v_name id)
              (Fmt.str "the action may %s but no transition on %S leaves %s"
                 (if ev = "continue" then "fall through (raising the default event)"
                  else Fmt.str "emit %S" ev)
                 ev (v.v_name id))
              (witness id))
        (events_of eff))
    v.v_eff;
  (* dead-edge: a transition labelled with an event the body never
     raises. *)
  List.iter
    (fun (src, ev, _) ->
      match List.assoc_opt src v.v_eff with
      | None -> ()
      | Some eff ->
          let allowed = events_of eff in
          if not (List.mem ev allowed) then
            add "dead-edge" Report.Warning (v.v_name src)
              (Fmt.str "transition on %S can never fire: the action only raises {%s}" ev
                 (String.concat ", " allowed))
              [])
    (Fsm.edges v.v_fsm);
  (* FSM hygiene. *)
  let reach = Dataflow.reachable v.v_fsm ~entry:v.v_entry in
  Array.iteri
    (fun id r ->
      if v.v_real id && not r then
        add "unreachable-state" Report.Warning (v.v_name id)
          (Fmt.str "%s is not reachable from the entry state" (v.v_name id))
          [])
    reach;
  match v.v_exit with
  | None -> ()
  | Some exit_ ->
      let co = Dataflow.coreachable v.v_fsm ~exit_ in
      Array.iteri
        (fun id r ->
          if v.v_real id && r && not co.(id) then
            add "no-done-path" Report.Warning (v.v_name id)
              (Fmt.str "no path from %s to completion: tasks reaching it never finish"
                 (v.v_name id))
              (witness id))
        reach

(* ----- module level ----- *)

let of_module (m : Spec.module_spec) : Report.finding list =
  let subject = m.Spec.m_name in
  let findings = ref [] in
  let add rule severity qname detail witness =
    findings := { Report.rule; severity; subject; qname; detail; witness } :: !findings
  in
  let states = List.rev (Spec.control_states_of m) in
  let b = Fsm.Builder.create () in
  List.iter (fun s -> ignore (Fsm.Builder.add_state b s)) states;
  let state_id s =
    match Fsm.Builder.state b s with Some i -> i | None -> assert false
  in
  (* Keep the first of conflicting (src, event) edges so the FSM still
     builds; the conflict itself becomes a finding. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (t : Spec.transition) ->
      let key = (t.Spec.src, t.Spec.event) in
      match Hashtbl.find_opt seen key with
      | Some dst when dst <> t.Spec.dst ->
          add "fsm-nondeterminism" Report.Error t.Spec.src
            (Fmt.str "transition (%s, %s) maps to both %s and %s" t.Spec.src t.Spec.event
               dst t.Spec.dst)
            []
      | Some _ -> ()
      | None ->
          Hashtbl.add seen key t.Spec.dst;
          Fsm.Builder.add_edge b ~src:(state_id t.Spec.src) ~event:t.Spec.event
            ~dst:(state_id t.Spec.dst))
    m.Spec.m_transitions;
  let fsm = Fsm.Builder.build b in
  let eff =
    List.filter_map
      (fun (cs, src) ->
        if not (List.mem cs states) then begin
          add "nfc-unknown-state" Report.Error cs
            (Fmt.str "NF-C body attached to unknown control state %s" cs)
            [];
          None
        end
        else
          match Effects.of_source src with
          | Ok e -> Option.map (fun id -> (id, e)) (Fsm.index fsm cs)
          | Error msg ->
              add "nfc-syntax" Report.Error cs msg [];
              None)
      m.Spec.m_nfc
  in
  let nfc =
    List.filter_map
      (fun (cs, src) ->
        match Nfc.parse src with
        | prog -> Option.map (fun id -> (id, prog)) (Fsm.index fsm cs)
        | exception Nfc.Nfc_error _ -> None (* already an nfc-syntax finding *))
      m.Spec.m_nfc
  in
  let decl_classes cs =
    match List.assoc_opt cs m.Spec.m_fetching with
    | None -> []
    | Some names ->
        List.fold_left
          (fun acc n ->
            match Option.bind (List.assoc_opt n m.Spec.m_states) cls_of_decl with
            | Some c -> cls_union acc [ c ]
            | None -> acc)
          [] names
  in
  (match Fsm.index fsm Spec.start_state with
  | None ->
      List.iter
        (fun s ->
          if s <> Spec.end_state then
            add "unreachable-state" Report.Warning s
              (Fmt.str "%s is not reachable: the module has no Start transitions" s)
              [])
        states
  | Some entry ->
      let all_classes : cls list = [ `Packet; `Match_addrs; `Per_flow; `Sub_flow; `Fixed ] in
      (* Fetch classes available on every path (no kills at this level:
         declared fetching is the only information the module spec has). *)
      let avail =
        Dataflow.forward fsm ~entry
          ~entry_out:(decl_classes Spec.start_state)
          ~init:all_classes ~no_pred:[] ~join:cls_inter ~equal:cls_set_equal
          ~transfer:(fun i f -> cls_union f (decl_classes (Fsm.name fsm i)))
      in
      let temp_universe =
        List.fold_left
          (fun acc (_, e) ->
            str_union acc (str_union e.Effects.temp_written e.Effects.temp_exposed))
          [] eff
      in
      let temp_must =
        Dataflow.forward fsm ~entry ~entry_out:[] ~init:temp_universe ~no_pred:[]
          ~join:str_inter ~equal:str_set_equal
          ~transfer:(fun i f ->
            match List.assoc_opt i eff with
            | Some e -> str_union f e.Effects.temp_written
            | None -> f)
      in
      let view =
        {
          v_fsm = fsm;
          v_entry = entry;
          v_exit = Fsm.index fsm Spec.end_state;
          v_name = Fsm.name fsm;
          v_eff = eff;
          v_nfc = nfc;
          v_real =
            (fun id ->
              let n = Fsm.name fsm id in
              n <> Spec.start_state && n <> Spec.end_state);
          v_check_cold = true;
          v_coverage = (fun id -> avail.Dataflow.outs.(id));
          v_temp_must_in = (fun id -> temp_must.Dataflow.ins.(id));
          v_temp_qual = (fun _ f -> f);
          v_ctl_qual = (fun _ f -> f);
          v_has_transition =
            (fun id ev ->
              List.exists (fun (s, e, _) -> s = id && e = ev) (Fsm.edges fsm));
        }
      in
      run_view view add);
  Report.sort !findings

(* ----- build level ----- *)

let of_build (li : Compiler.lint_input) : Report.finding list =
  let fsm = li.Compiler.li_fsm in
  let info = li.Compiler.li_info in
  let findings = ref [] in
  let add rule severity qname detail witness =
    findings :=
      { Report.rule; severity; subject = li.Compiler.li_name; qname; detail; witness }
      :: !findings
  in
  let name id = info.(id).Program.qname in
  let eff =
    List.concat_map
      (fun (i : Compiler.instance) ->
        List.filter_map
          (fun (cs, src) ->
            match Fsm.index fsm (i.Compiler.i_name ^ "." ^ cs) with
            | None -> None (* control state elided, e.g. by match removal *)
            | Some id -> (
                match Effects.of_source src with
                | Ok e -> Some (id, e)
                | Error msg ->
                    add "nfc-syntax" Report.Error (name id) msg [];
                    None))
          i.Compiler.i_spec.Spec.m_nfc)
      li.Compiler.li_instances
  in
  let nfc =
    List.concat_map
      (fun (i : Compiler.instance) ->
        List.filter_map
          (fun (cs, src) ->
            match Fsm.index fsm (i.Compiler.i_name ^ "." ^ cs) with
            | None -> None
            | Some id -> (
                match Nfc.parse src with
                | prog -> Some (id, prog)
                | exception Nfc.Nfc_error _ -> None))
          i.Compiler.i_spec.Spec.m_nfc)
      li.Compiler.li_instances
  in
  let avail = Compiler.prefetch_availability info fsm ~start:li.Compiler.li_start in
  let classes_of targets =
    List.fold_left (fun acc t -> cls_union acc [ (Prefetch.class_of t :> cls) ]) [] targets
  in
  let prefetching = li.Compiler.li_opts.Compiler.prefetching in
  let temp_qual id f = info.(id).Program.inst ^ "." ^ f in
  let temp_universe =
    List.fold_left
      (fun acc (id, e) ->
        str_union acc
          (List.map (temp_qual id)
             (str_union e.Effects.temp_written e.Effects.temp_exposed)))
      [] eff
  in
  let temp_must =
    Dataflow.forward fsm ~entry:li.Compiler.li_start ~entry_out:[] ~init:temp_universe
      ~no_pred:[] ~join:str_inter ~equal:str_set_equal
      ~transfer:(fun i f ->
        match List.assoc_opt i eff with
        | Some e -> str_union f (List.map (temp_qual i) e.Effects.temp_written)
        | None -> f)
  in
  let view =
    {
      v_fsm = fsm;
      v_entry = li.Compiler.li_start;
      v_exit = Some li.Compiler.li_done;
      v_name = name;
      v_eff = eff;
      v_nfc = nfc;
      v_real = (fun id -> info.(id).Program.action <> None);
      (* With prefetching compiled out every access is cold by design. *)
      v_check_cold = prefetching;
      v_coverage =
        (fun id ->
          cls_union
            (classes_of avail.Dataflow.ins.(id))
            (classes_of info.(id).Program.prefetch));
      v_temp_must_in = (fun id -> temp_must.Dataflow.ins.(id));
      v_temp_qual = temp_qual;
      v_ctl_qual = temp_qual;
      v_has_transition = (fun id ev -> Fsm.step fsm id (Event.of_key ev) <> None);
    }
  in
  run_view view add;
  (* short-distance: a prefetch issued on the transition into the very
     state whose action first consumes it. The fetch then overlaps only
     that action's own compute — not enough to hide a DRAM round trip in
     a single stream — while a predecessor state could have hosted it
     (prefetching there is sound: the predecessor neither invalidates
     nor already fetches the class). Interleaving other streams hides
     the latency anyway, hence Info: this is a program-shape note, not a
     defect. *)
  if prefetching then
    Array.iteri
      (fun id (ci : Program.cs_info) ->
        match ci.Program.action with
        | None -> ()
        | Some _ ->
            let in_classes = classes_of avail.Dataflow.ins.(id) in
            List.iter
              (fun t ->
                let c = (Prefetch.class_of t :> cls) in
                if not (cls_mem c in_classes) then
                  let hoistable p =
                    p <> li.Compiler.li_start
                    &&
                    match info.(p).Program.action with
                    | None -> false
                    | Some a ->
                        (not
                           (List.exists
                              (fun r -> cls_eq (r :> cls) c)
                              a.Action.invalidates))
                        && not (cls_mem c (classes_of info.(p).Program.prefetch))
                  in
                  match List.filter hoistable (Fsm.predecessors fsm id) with
                  | [] -> ()
                  | p :: _ ->
                      add "short-distance" Report.Info (name id)
                        (Fmt.str
                           "prefetch %a is issued on the transition into %s, the state \
                            whose action first uses it; a lone stream still stalls \
                            ~%d cycles (DRAM) — hoistable to %s"
                           Prefetch.pp_target t (name id)
                           Memsim.Hierarchy.default_config.Memsim.Hierarchy.lat_dram
                           (name p))
                        [])
              ci.Program.prefetch)
      info;
  Report.sort !findings
