(* Symbolic execution of NF-C action bodies (the verification half of the
   analyzer, next to the may/must {!Effects} summaries).

   An action's meaning, for equivalence checking, is the set of its
   symbolic paths: a path condition over the entry values of the state
   fields the body reads, the (scope, field) -> expression writes the path
   performs, and how it finishes (Emit/Drop, fall-through to the default
   event, or a raise from modulo-by-zero). Variables denote field values
   *at entry* — assignments substitute into later reads, so a path's
   writes are in terms of entry values only.

   The decision procedure covers the linear-arithmetic / boolean fragment
   NF-C actually uses: constant folding plus interval reasoning (bounds
   harvested from the path condition's comparisons) and congruence
   reasoning (x % m == r facts). Everything else is a sound [Unknown]:
   branches fork, and checkers fall back to the dynamic oracle. *)

open Gunfu

(* ----- symbolic expressions ----- *)

type sexpr =
  | Const of int
  | Var of Nfc.scope * string  (* the field's value at action entry *)
  | SBin of Nfc.binop * sexpr * sexpr

let rec sexpr_equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Var (s, f), Var (s', f') -> s = s' && String.equal f f'
  | SBin (op, x, y), SBin (op', x', y') ->
      op = op' && sexpr_equal x x' && sexpr_equal y y'
  | _ -> false

let rec pp_sexpr ppf = function
  | Const v -> Fmt.int ppf v
  | Var (scope, field) -> Fmt.pf ppf "%s.%s" (Nfc.keyword_of_scope scope) field
  | SBin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_sexpr a (Nfc.binop_symbol op) pp_sexpr b

let bool_int c = if c then 1 else 0

(* ----- normalizing simplifier ----- *)

(* Constant folding plus the algebraic identities that make compiled
   conditions decidable (x+0, x*1, x*0, x-x, reflexive comparisons).
   Modulo by a constant zero is NOT folded: the raise is part of the
   path's meaning and the executor classifies it. *)
let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | SBin (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match (op, a, b) with
      | Nfc.Mod, Const x, Const y when y <> 0 -> Const (x mod y)
      | Nfc.Mod, _, _ -> SBin (op, a, b)
      | _, Const x, Const y ->
          Const
            (match op with
            | Nfc.Add -> x + y
            | Nfc.Sub -> x - y
            | Nfc.Mul -> x * y
            | Nfc.And -> x land y
            | Nfc.Eq -> bool_int (x = y)
            | Nfc.Ne -> bool_int (x <> y)
            | Nfc.Lt -> bool_int (x < y)
            | Nfc.Gt -> bool_int (x > y)
            | Nfc.Le -> bool_int (x <= y)
            | Nfc.Ge -> bool_int (x >= y)
            | Nfc.Mod -> assert false)
      | Nfc.Add, x, Const 0 | Nfc.Add, Const 0, x -> x
      | Nfc.Sub, x, Const 0 -> x
      | Nfc.Sub, x, y when sexpr_equal x y -> Const 0
      | Nfc.Mul, x, Const 1 | Nfc.Mul, Const 1, x -> x
      | Nfc.Mul, _, Const 0 | Nfc.Mul, Const 0, _ -> Const 0
      | Nfc.And, _, Const 0 | Nfc.And, Const 0, _ -> Const 0
      | Nfc.And, x, y when sexpr_equal x y -> x
      | Nfc.Eq, x, y when sexpr_equal x y -> Const 1
      | Nfc.Le, x, y when sexpr_equal x y -> Const 1
      | Nfc.Ge, x, y when sexpr_equal x y -> Const 1
      | Nfc.Ne, x, y when sexpr_equal x y -> Const 0
      | Nfc.Lt, x, y when sexpr_equal x y -> Const 0
      | Nfc.Gt, x, y when sexpr_equal x y -> Const 0
      | _ -> SBin (op, a, b))

(* ----- the abstract domain: interval x congruence ----- *)

type decision = True | False | Unknown

(* Bounds are options ([None] = unbounded); [cong = Some (m, r)] with
   [m >= 1] means the value is congruent to [r] modulo [m] (and [m = 1]
   carries no information). Bounds beyond [big] are widened to [None] so
   interval arithmetic never overflows. *)
type absval = { lo : int option; hi : int option; cong : (int * int) option }

let big = 1 lsl 40
let clamp = function Some v when abs v > big -> None | b -> b
let top = { lo = None; hi = None; cong = None }
let of_const v = { lo = Some v; hi = Some v; cong = Some (1, 0) }

let norm_cong = function
  | Some (m, r) when m > 1 -> Some (m, ((r mod m) + m) mod m)
  | _ -> None

let lift2 f a b =
  match (a, b) with Some x, Some y -> clamp (Some (f x y)) | _ -> None

let av_add a b =
  {
    lo = lift2 ( + ) a.lo b.lo;
    hi = lift2 ( + ) a.hi b.hi;
    cong =
      (match (norm_cong a.cong, norm_cong b.cong) with
      | Some (m1, r1), Some (m2, r2) ->
          let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
          norm_cong (Some (gcd m1 m2, r1 + r2))
      | _ -> None);
  }

let av_neg a = { lo = Option.map (fun v -> -v) a.hi; hi = Option.map (fun v -> -v) a.lo;
                 cong = (match norm_cong a.cong with Some (m, r) -> norm_cong (Some (m, -r)) | None -> None) }

let av_sub a b = av_add a (av_neg b)

let av_mul a b =
  match (a.lo, a.hi, b.lo, b.hi) with
  | Some al, Some ah, Some bl, Some bh ->
      let ps = [ al * bl; al * bh; ah * bl; ah * bh ] in
      {
        lo = clamp (Some (List.fold_left min (List.hd ps) ps));
        hi = clamp (Some (List.fold_left max (List.hd ps) ps));
        cong =
          (match (norm_cong a.cong, norm_cong b.cong) with
          | Some (m1, r1), Some (m2, r2) ->
              let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
              let m = gcd (m1 * m2) (gcd (m1 * r2) (m2 * r1)) in
              if m > big then None else norm_cong (Some ((if m = 0 then 1 else m), r1 * r2))
          | _ -> None);
      }
  | _ -> top

(* OCaml's [mod] takes the dividend's sign; with a constant positive
   divisor the result is bounded either way, and exactly determined when
   the dividend's congruence class is a refinement of the divisor. *)
let av_mod a b =
  match (b.lo, b.hi) with
  | Some m, Some m' when m = m' && m > 0 ->
      let nonneg = match a.lo with Some l when l >= 0 -> true | _ -> false in
      let nonpos = match a.hi with Some h when h <= 0 -> true | _ -> false in
      let exact =
        match norm_cong a.cong with
        | Some (cm, cr) when nonneg && cm mod m = 0 -> Some (cr mod m)
        | _ -> (
            match (a.lo, a.hi) with
            | Some l, Some h when l = h -> Some (l mod m)
            | _ -> None)
      in
      (match exact with
      | Some v -> of_const v
      | None ->
          {
            lo = Some (if nonneg then 0 else -(m - 1));
            hi = Some (if nonpos then 0 else m - 1);
            cong = None;
          })
  | _ -> top

let av_and a b =
  (* Bitwise and of non-negatives is bounded by either operand. *)
  let nonneg v = match v.lo with Some l when l >= 0 -> true | _ -> false in
  if nonneg a && nonneg b then
    { lo = Some 0; hi = lift2 min a.hi b.hi; cong = None }
  else top

let av_bool = { lo = Some 0; hi = Some 1; cong = None }

(* Compare two intervals under [op]; [Unknown] when they overlap. *)
let av_cmp op a b =
  let lt_strict =
    match (a.hi, b.lo) with Some ah, Some bl -> ah < bl | _ -> false
  in
  let le = match (a.hi, b.lo) with Some ah, Some bl -> ah <= bl | _ -> false in
  let gt_strict =
    match (a.lo, b.hi) with Some al, Some bh -> al > bh | _ -> false
  in
  let ge = match (a.lo, b.hi) with Some al, Some bh -> al >= bh | _ -> false in
  let cong_apart () =
    (* Same-modulus congruences with different residues can never be
       equal; exact-value intervals are handled by the bounds above. *)
    match (norm_cong a.cong, norm_cong b.cong) with
    | Some (m1, r1), Some (m2, r2) when m1 = m2 && m1 > 1 -> r1 <> r2
    | _ -> false
  in
  match op with
  | Nfc.Lt -> if lt_strict then True else if ge then False else Unknown
  | Nfc.Gt -> if gt_strict then True else if le then False else Unknown
  | Nfc.Le -> if le then True else if gt_strict then False else Unknown
  | Nfc.Ge -> if ge then True else if lt_strict then False else Unknown
  | Nfc.Eq ->
      if lt_strict || gt_strict || cong_apart () then False
      else if le && ge then True
      else Unknown
  | Nfc.Ne ->
      if lt_strict || gt_strict || cong_apart () then True
      else if le && ge then False
      else Unknown
  | _ -> Unknown

(* ----- facts harvested from a path condition ----- *)

(* A path condition is a list of (condition, polarity): the condition's
   truth value (<> 0 or = 0) on this path. *)
type pc = (sexpr * bool) list

type fact = { f_lo : int option; f_hi : int option; f_cong : (int * int) option; f_ne : int list }

let fact_top = { f_lo = None; f_hi = None; f_cong = None; f_ne = [] }

let fact_meet f ~lo ~hi ~cong ~ne =
  {
    f_lo = (match (f.f_lo, lo) with Some a, Some b -> Some (max a b) | a, None -> a | None, b -> b);
    f_hi = (match (f.f_hi, hi) with Some a, Some b -> Some (min a b) | a, None -> a | None, b -> b);
    f_cong = (match cong with Some _ -> cong | None -> f.f_cong);
    f_ne = ne @ f.f_ne;
  }

(* Walk the path condition once and build per-variable facts. Only
   conditions relating one variable to constants refine; everything else
   is ignored (soundly — facts only ever shrink the concretization). *)
let facts_of_pc (pc : pc) =
  let tbl : (Nfc.scope * string, fact) Hashtbl.t = Hashtbl.create 8 in
  let get v = Option.value ~default:fact_top (Hashtbl.find_opt tbl v) in
  let refine v ~lo ~hi ~cong ~ne = Hashtbl.replace tbl v (fact_meet (get v) ~lo ~hi ~cong ~ne) in
  let flip = function
    | Nfc.Lt -> Nfc.Gt
    | Nfc.Gt -> Nfc.Lt
    | Nfc.Le -> Nfc.Ge
    | Nfc.Ge -> Nfc.Le
    | op -> op
  in
  let negate = function
    | Nfc.Eq -> Nfc.Ne
    | Nfc.Ne -> Nfc.Eq
    | Nfc.Lt -> Nfc.Ge
    | Nfc.Ge -> Nfc.Lt
    | Nfc.Gt -> Nfc.Le
    | Nfc.Le -> Nfc.Gt
    | op -> op
  in
  let rec harvest cond polarity =
    match cond with
    | Var (s, f) ->
        let v = (s, f) in
        if polarity then refine v ~lo:None ~hi:None ~cong:None ~ne:[ 0 ]
        else refine v ~lo:(Some 0) ~hi:(Some 0) ~cong:None ~ne:[]
    | SBin (op, Const c, rhs) when op = Nfc.Eq || op = Nfc.Ne || op = Nfc.Lt || op = Nfc.Gt || op = Nfc.Le || op = Nfc.Ge ->
        harvest (SBin (flip op, rhs, Const c)) polarity
    | SBin (op, lhs, Const c) -> (
        let op = if polarity then op else negate op in
        match (op, lhs) with
        | Nfc.Eq, Var (s, f) -> refine (s, f) ~lo:(Some c) ~hi:(Some c) ~cong:None ~ne:[]
        | Nfc.Ne, Var (s, f) -> refine (s, f) ~lo:None ~hi:None ~cong:None ~ne:[ c ]
        | Nfc.Lt, Var (s, f) -> refine (s, f) ~lo:None ~hi:(Some (c - 1)) ~cong:None ~ne:[]
        | Nfc.Le, Var (s, f) -> refine (s, f) ~lo:None ~hi:(Some c) ~cong:None ~ne:[]
        | Nfc.Gt, Var (s, f) -> refine (s, f) ~lo:(Some (c + 1)) ~hi:None ~cong:None ~ne:[]
        | Nfc.Ge, Var (s, f) -> refine (s, f) ~lo:(Some c) ~hi:None ~cong:None ~ne:[]
        | Nfc.Eq, SBin (Nfc.Mod, Var (s, f), Const m) when m > 1 && c >= 0 && c < m ->
            refine (s, f) ~lo:None ~hi:None ~cong:(Some (m, c)) ~ne:[]
        | _ -> ())
    | _ -> ()
  in
  List.iter (fun (cond, polarity) -> harvest cond polarity) pc;
  tbl

(* Abstract evaluation of a symbolic expression under path-condition
   facts. *)
let rec av_of facts e =
  match e with
  | Const v -> of_const v
  | Var (s, f) -> (
      match Hashtbl.find_opt facts (s, f) with
      | None -> top
      | Some f -> { lo = f.f_lo; hi = f.f_hi; cong = norm_cong f.f_cong })
  | SBin (op, a, b) -> (
      let va = av_of facts a and vb = av_of facts b in
      match op with
      | Nfc.Add -> av_add va vb
      | Nfc.Sub -> av_sub va vb
      | Nfc.Mul -> av_mul va vb
      | Nfc.Mod -> av_mod va vb
      | Nfc.And -> av_and va vb
      | Nfc.Eq | Nfc.Ne | Nfc.Lt | Nfc.Gt | Nfc.Le | Nfc.Ge -> (
          match av_cmp op va vb with
          | True -> of_const 1
          | False -> of_const 0
          | Unknown -> av_bool))

(* Decide the truth value (<> 0) of [e] under path condition [pc]. *)
let decide (pc : pc) e =
  let e = simplify e in
  match e with
  | Const 0 -> False
  | Const _ -> True
  | _ -> (
      let facts = facts_of_pc pc in
      (* Direct [x ne c] facts decide equalities intervals cannot. *)
      let ne_holds v c =
        match Hashtbl.find_opt facts v with
        | Some f -> List.mem c f.f_ne
        | None -> false
      in
      match e with
      | SBin (Nfc.Eq, Var (s, f), Const c) when ne_holds (s, f) c -> False
      | SBin (Nfc.Ne, Var (s, f), Const c) when ne_holds (s, f) c -> True
      | Var (s, f) when ne_holds (s, f) 0 -> True
      | _ -> (
          let av = av_of facts e in
          match av_cmp Nfc.Ne av (of_const 0) with
          | True -> True
          | False -> False
          | Unknown -> (
              (* Nonzero congruence class: x = r (mod m), 0 < r < m. *)
              match norm_cong av.cong with
              | Some (m, r) when r <> 0 && m > 1 -> True
              | _ -> Unknown)))

(* ----- the symbolic executor ----- *)

type exit_kind =
  | Exit_emit of string  (* event key, via Event.to_key/event_of_name *)
  | Exit_drop
  | Exit_fall  (* end of body: the runtime raises the default event *)
  | Exit_raise  (* modulo by a divisor proven zero on this path *)

type path = {
  p_pc : pc;
  p_writes : (Nfc.scope * string * sexpr) list;  (* program order, last write per field *)
  p_exit : exit_kind;
  p_may_raise : bool;  (* some modulo divisor could not be proven nonzero *)
}

type summary = {
  s_paths : path list;
  s_weight : int;  (* the compile-time cost model: Nfc.stmt_weight sum *)
  s_decided : (int * Nfc.expr * bool) list;
      (* [If] conditions statically decided on every path that reaches
         them: (source-order index of the If, condition, truth). Feeds the
         constant-condition lint. *)
  s_truncated : bool;  (* path budget exhausted; checkers must go Unknown *)
}

let max_paths = 4096

(* Environment: (scope, field) -> value expression in terms of entry
   variables. Unwritten fields read as their own [Var]. *)
let env_lookup (env : ((Nfc.scope * string) * sexpr) list) key =
  match List.assoc_opt key env with Some e -> e | None -> Var (fst key, snd key)

let rec sym_eval env (e : Nfc.expr) =
  match e with
  | Nfc.Int v -> Const v
  | Nfc.Ref (scope, field) -> env_lookup env (scope, field)
  | Nfc.Bin (op, a, b) -> simplify (SBin (op, sym_eval env a, sym_eval env b))

(* Does evaluating [e] (already symbolic) raise on this path? [`Raises]
   when some modulo divisor is provably zero, [`May] when one cannot be
   proven nonzero, [`Ok] otherwise. *)
let raise_status pc e =
  let status = ref `Ok in
  let rec walk = function
    | Const _ | Var _ -> ()
    | SBin (op, a, b) ->
        walk a;
        walk b;
        if op = Nfc.Mod then
          match decide pc (SBin (Nfc.Ne, b, Const 0)) with
          | True -> ()
          | False -> status := `Raises
          | Unknown -> if !status = `Ok then status := `May
  in
  walk e;
  !status

let summarize (prog : Nfc.t) =
  let weight = List.fold_left (fun acc s -> acc + Nfc.stmt_weight s) 0 prog.Nfc.body in
  let paths = ref [] in
  let truncated = ref false in
  let n_live = ref 0 in
  (* Every If gets a source-order id; a condition is "decided" when every
     path reaching it resolved it statically, to the same truth value. *)
  let if_id = ref (-1) in
  let if_ids : (Nfc.expr * int) list ref = ref [] in
  let decisions : (int, (Nfc.expr * bool) option) Hashtbl.t = Hashtbl.create 8 in
  let note_decided id cond truth =
    match Hashtbl.find_opt decisions id with
    | None -> Hashtbl.replace decisions id (Some (cond, truth))
    | Some (Some (_, t)) when t = truth -> ()
    | Some _ -> Hashtbl.replace decisions id None
  in
  let note_undecided id = Hashtbl.replace decisions id None in
  let finish pc writes may_raise exit =
    if !n_live >= max_paths then truncated := true
    else begin
      incr n_live;
      paths := { p_pc = pc; p_writes = writes; p_exit = exit; p_may_raise = may_raise } :: !paths
    end
  in
  (* [writes] maps fields to their current symbolic value; [wlog] keeps
     first-write program order for reporting. *)
  let rec run pc env wlog may_raise stmts =
    if !truncated then ()
    else
      match stmts with
      | [] -> finish pc (List.rev wlog) may_raise Exit_fall
      | Nfc.Assign (scope, field, e) :: rest -> (
          let se = sym_eval env e in
          match raise_status pc se with
          | `Raises -> finish pc (List.rev wlog) may_raise Exit_raise
          | (`Ok | `May) as st ->
              let may_raise = may_raise || st = `May in
              let env = ((scope, field), se) :: List.remove_assoc (scope, field) env in
              let wlog = (scope, field, se) :: List.filter (fun (s, f, _) -> not (s = scope && String.equal f field)) wlog in
              run pc env wlog may_raise rest)
      | Nfc.Emit name :: _ ->
          finish pc (List.rev wlog) may_raise
            (Exit_emit (Event.to_key (Nfc.event_of_name name)))
      | Nfc.Drop :: _ -> finish pc (List.rev wlog) may_raise Exit_drop
      | Nfc.If (cond, then_, else_) :: rest -> (
          let id =
            match List.assq_opt cond !if_ids with
            | Some i -> i
            | None ->
                incr if_id;
                if_ids := (cond, !if_id) :: !if_ids;
                !if_id
          in
          let sc = sym_eval env cond in
          match raise_status pc sc with
          | `Raises -> finish pc (List.rev wlog) may_raise Exit_raise
          | (`Ok | `May) as st -> (
              let may_raise = may_raise || st = `May in
              match decide pc sc with
              | True ->
                  note_decided id cond true;
                  run pc env wlog may_raise (then_ @ rest)
              | False ->
                  note_decided id cond false;
                  run pc env wlog may_raise (else_ @ rest)
              | Unknown ->
                  note_undecided id;
                  run ((sc, true) :: pc) env wlog may_raise (then_ @ rest);
                  run ((sc, false) :: pc) env wlog may_raise (else_ @ rest)))
  in
  run [] [] [] false prog.Nfc.body;
  let decided =
    Hashtbl.fold
      (fun id v acc -> match v with Some (cond, truth) -> (id, cond, truth) :: acc | None -> acc)
      decisions []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  {
    s_paths = List.rev !paths;
    s_weight = weight;
    s_decided = decided;
    s_truncated = !truncated;
  }

(* The event keys a summary can hand the control logic ([Exit_raise]
   paths are contained by the fault plane, not transitioned on). *)
let exit_keys ?(default_event = Event.User "continue") summary =
  List.fold_left
    (fun acc p ->
      let key =
        match p.p_exit with
        | Exit_emit k -> Some k
        | Exit_fall -> Some (Event.to_key default_event)
        | Exit_drop -> Some (Event.to_key Event.Drop_packet)
        | Exit_raise -> None
      in
      match key with
      | Some k when not (List.mem k acc) -> acc @ [ k ]
      | _ -> acc)
    [] summary.s_paths

let pp_pc ppf (pc : pc) =
  match pc with
  | [] -> Fmt.string ppf "true"
  | _ ->
      Fmt.pf ppf "%a"
        Fmt.(
          list ~sep:(any " && ") (fun ppf (e, pol) ->
              if pol then pp_sexpr ppf e else Fmt.pf ppf "!(%a)" pp_sexpr e))
        (List.rev pc)

let pp_writes ppf writes =
  match writes with
  | [] -> Fmt.string ppf "(no writes)"
  | _ ->
      Fmt.pf ppf "%a"
        Fmt.(
          list ~sep:(any "; ") (fun ppf (scope, field, e) ->
              Fmt.pf ppf "%s.%s = %a" (Nfc.keyword_of_scope scope) field pp_sexpr e))
        writes

let pp_path ppf p =
  let exit =
    match p.p_exit with
    | Exit_emit k -> Fmt.str "emit %S" k
    | Exit_drop -> "drop"
    | Exit_fall -> "fall-through"
    | Exit_raise -> "raise (modulo by zero)"
  in
  Fmt.pf ppf "[%a] %a -> %s" pp_pc p.p_pc pp_writes p.p_writes exit
