(** Symbolic execution of NF-C action bodies.

    [summarize] enumerates an action's symbolic paths: a path condition
    over the entry values of state fields, the per-field writes the path
    performs (in terms of entry values), and the path's exit — the emitted
    event key, a drop, fall-through to the default event, or a raise from
    modulo-by-zero. The decision procedure ([decide]) covers the
    linear-arithmetic/boolean fragment via interval + congruence
    reasoning, with a sound [Unknown] everywhere else; checkers that hit
    [Unknown] fall back to the dynamic oracle. *)

open Gunfu

type sexpr =
  | Const of int
  | Var of Nfc.scope * string  (** the field's value at action entry *)
  | SBin of Nfc.binop * sexpr * sexpr

val sexpr_equal : sexpr -> sexpr -> bool
val pp_sexpr : Format.formatter -> sexpr -> unit

(** Constant folding plus the algebraic identities (x+0, x*1, x*0, x-x,
    reflexive comparisons) that make compiled conditions decidable.
    Modulo by constant zero is deliberately not folded — the raise is
    part of the path's meaning. *)
val simplify : sexpr -> sexpr

type decision = True | False | Unknown

(** A path condition: each entry is a branch condition and the polarity
    it took ([true] = nonzero). *)
type pc = (sexpr * bool) list

(** Decide whether [e] is nonzero under the path condition, by constant
    folding plus interval/congruence facts harvested from it. *)
val decide : pc -> sexpr -> decision

type exit_kind =
  | Exit_emit of string  (** event key, via [Event.to_key] *)
  | Exit_drop
  | Exit_fall  (** end of body: the runtime raises the default event *)
  | Exit_raise  (** modulo by a divisor proven zero on this path *)

type path = {
  p_pc : pc;
  p_writes : (Nfc.scope * string * sexpr) list;
      (** program order, last write per field *)
  p_exit : exit_kind;
  p_may_raise : bool;
      (** some modulo divisor could not be proven nonzero *)
}

type summary = {
  s_paths : path list;
  s_weight : int;  (** the compile-time cost model: [Nfc.stmt_weight] sum *)
  s_decided : (int * Nfc.expr * bool) list;
      (** [If] conditions statically decided, to the same truth value, on
          every path reaching them: (source-order index, condition,
          truth). Feeds the constant-condition lint. *)
  s_truncated : bool;
      (** path budget exhausted; checkers must treat as [Unknown] *)
}

val max_paths : int
val summarize : Nfc.t -> summary

(** The distinct event keys a summary can hand the control logic, in
    path order. [Exit_raise] paths are contained by the fault plane and
    contribute no key. *)
val exit_keys : ?default_event:Event.t -> summary -> string list

val pp_pc : Format.formatter -> pc -> unit
val pp_writes : Format.formatter -> (Nfc.scope * string * sexpr) list -> unit
val pp_path : Format.formatter -> path -> unit
