(** Translation validation for the compiler's observation-rewriting
    passes: given a {!Compiler.verify_input} (the program before and
    after compilation), prove match-removal, prefetch-dedup, and the
    specialize jump-table/fused-dispatch path preserved observations.

    A refutation is an [Error]-severity finding carrying a path witness
    that names the control state and the diverging scope write; an
    [Unknown] verdict (the symbolic engine out of its decidable fragment)
    is a [Warning]-severity finding — the dynamic oracle still covers
    that program. *)

type result = {
  findings : Report.finding list;
  proved : string list;
      (** of ["match_removal"], ["prefetch_dedup"], ["specialize"]: the
          passes that ran and verified cleanly *)
  unknowns : int;
      (** Unknown verdicts issued (a subset of the Warning findings) *)
}

val check : Gunfu.Compiler.verify_input -> result
