(* The compiler-side hook. Info findings stay silent here — they are
   program-shape notes for the lint subcommand, not something every
   fuzzing compile should print. *)

open Gunfu

let print_findings findings =
  List.iter
    (fun f ->
      if Report.severity_rank f.Report.severity >= Report.severity_rank Report.Warning
      then Fmt.epr "nflint: %a@." Report.pp_finding f)
    (Report.sort findings)

let hook (li : Compiler.lint_input) =
  match li.Compiler.li_opts.Compiler.lint with
  | `Off -> ()
  | `Warn -> print_findings (Lints.of_build li)
  | `Error -> (
      let findings = Lints.of_build li in
      let errors, rest =
        List.partition (fun f -> f.Report.severity = Report.Error) findings
      in
      print_findings rest;
      match Report.sort errors with
      | [] -> ()
      | first :: _ ->
          raise
            (Compiler.Compile_error
               (Fmt.str "nf %s: nflint: %d error finding%s, first: %a"
                  li.Compiler.li_name (List.length errors)
                  (if List.length errors = 1 then "" else "s")
                  Report.pp_finding first)))

(* Translation validation. Refutations are Error findings; Unknown
   verdicts are Warnings and never fail the compile — those programs are
   exactly the ones the dynamic oracle exists for. *)
let verify_hook (vi : Compiler.verify_input) =
  match vi.Compiler.vi_opts.Compiler.verify_passes with
  | `Off -> ()
  | `Warn -> print_findings (Symcheck.check vi).Symcheck.findings
  | `Error -> (
      let result = Symcheck.check vi in
      let errors, rest =
        List.partition
          (fun f -> f.Report.severity = Report.Error)
          result.Symcheck.findings
      in
      print_findings rest;
      match Report.sort errors with
      | [] -> ()
      | first :: _ ->
          raise
            (Compiler.Compile_error
               (Fmt.str "nf %s: verifyeq: %d refuted pass finding%s, first: %a"
                  vi.Compiler.vi_name (List.length errors)
                  (if List.length errors = 1 then "" else "s")
                  Report.pp_finding first)))

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Compiler.set_lint_hook hook;
    Compiler.set_verify_hook verify_hook
  end
