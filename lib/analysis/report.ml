(* Analyzer findings and their renderers. The text form is the stable
   cross-version format asserted by tests; the JSON form is for tooling
   (`gunfu_cli lint --format json`) and is hand-rolled so the analyzer
   stays dependency-free. *)

type severity = Info | Warning | Error

type finding = {
  rule : string;
  severity : severity;
  subject : string;
  qname : string;
  detail : string;
  witness : string list;
}

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let worst findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | Some s when severity_rank s >= severity_rank f.severity -> acc
      | _ -> Some f.severity)
    None findings

let sort findings =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank b.severity) (severity_rank a.severity) with
      | 0 -> compare (a.subject, a.qname, a.rule) (b.subject, b.qname, b.rule)
      | c -> c)
    findings

let pp_finding ppf f =
  Fmt.pf ppf "%s: [%s] %s/%s: %s" (severity_label f.severity) f.rule f.subject
    (if f.qname = "" then "-" else f.qname)
    f.detail;
  match f.witness with
  | [] -> ()
  | path -> Fmt.pf ppf "@.  path: %a" Fmt.(list ~sep:(any " -> ") string) path

(* Minimal JSON string escaping: quotes, backslashes and control bytes
   (the only characters findings can contain that need it). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Fmt.str
    {|{"rule":"%s","severity":"%s","subject":"%s","qname":"%s","detail":"%s","witness":[%s]}|}
    (json_escape f.rule)
    (severity_label f.severity)
    (json_escape f.subject) (json_escape f.qname) (json_escape f.detail)
    (String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") f.witness))

let to_json findings =
  match findings with
  | [] -> "[]"
  | fs -> "[\n  " ^ String.concat ",\n  " (List.map finding_to_json fs) ^ "\n]"
