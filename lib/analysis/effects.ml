(* Effects analysis of NF-C bodies (the analyzer's per-action summary).

   The walk is a small abstract interpreter over the statement list:

   - accesses / emits are MAY facts — both branches of every [if]
     contribute, so a field counts as accessed if any path touches it;
   - temp_written is a MUST fact — the meet (intersection) of the
     definitely-assigned temp sets over every way the body can finish
     (each Emit/Drop exit plus the fall-through, if one exists);
   - temp_exposed is the may-read-before-must-write residue: a temp read
     only counts as exposed when some path reaches it without a definite
     local assignment first.

   NFTask temporaries are zeroed when a task is (re)loaded, so "exposed"
   does not mean undefined behaviour — it means the action observes
   whatever an earlier control state of the same task left there, which
   is exactly the cross-state dependency the temp-escape lint reports. *)

open Gunfu

type access = { a_scope : Nfc.scope; a_field : string; a_write : bool }

type t = {
  accesses : access list;
  temp_exposed : string list;
  temp_written : string list;
  emits : string list;
  falls_through : bool;
}

(* Small list-as-set helpers preserving first-seen order. *)
let add_distinct x xs = if List.mem x xs then xs else xs @ [ x ]
let union a b = List.fold_left (fun acc x -> add_distinct x acc) a b
let inter a b = List.filter (fun x -> List.mem x b) a
let diff a b = List.filter (fun x -> not (List.mem x b)) a

let rec expr_accesses acc = function
  | Nfc.Int _ -> acc
  | Nfc.Ref (scope, field) ->
      add_distinct { a_scope = scope; a_field = field; a_write = false } acc
  | Nfc.Bin (_, a, b) -> expr_accesses (expr_accesses acc a) b

let rec expr_temp_reads acc = function
  | Nfc.Int _ -> acc
  | Nfc.Ref (Nfc.Temp, field) -> add_distinct field acc
  | Nfc.Ref (_, _) -> acc
  | Nfc.Bin (_, a, b) -> expr_temp_reads (expr_temp_reads acc a) b

(* Mutable may-state threaded through the walk; the must-state (temps
   definitely written so far) flows functionally because it differs per
   path. *)
type st = {
  mutable s_accesses : access list;
  mutable s_exposed : string list;
  mutable s_emits : string list;
}

let note_expr st written e =
  st.s_accesses <- expr_accesses st.s_accesses e;
  st.s_exposed <- union st.s_exposed (diff (expr_temp_reads [] e) written)

(* Returns the fall-through written-set ([None] when every path ends in
   Emit/Drop) and the written-sets at each Emit/Drop exit. *)
let rec walk st written stmts =
  match stmts with
  | [] -> (Some written, [])
  | Nfc.Assign (scope, field, e) :: rest ->
      note_expr st written e;
      st.s_accesses <-
        add_distinct { a_scope = scope; a_field = field; a_write = true } st.s_accesses;
      let written =
        if scope = Nfc.Temp then add_distinct field written else written
      in
      walk st written rest
  | Nfc.Emit name :: _ ->
      st.s_emits <- add_distinct (Event.to_key (Nfc.event_of_name name)) st.s_emits;
      (None, [ written ])
  | Nfc.Drop :: _ ->
      st.s_emits <- add_distinct (Event.to_key Event.Drop_packet) st.s_emits;
      (None, [ written ])
  | Nfc.If (cond, then_, else_) :: rest -> (
      note_expr st written cond;
      let fall_t, exits_t = walk st written then_ in
      let fall_e, exits_e = walk st written else_ in
      let exits = exits_t @ exits_e in
      match (fall_t, fall_e) with
      | None, None -> (None, exits)
      | Some w, None | None, Some w ->
          let fall, more = walk st w rest in
          (fall, exits @ more)
      | Some wt, Some we ->
          let fall, more = walk st (inter wt we) rest in
          (fall, exits @ more))

let of_program (p : Nfc.t) =
  let st = { s_accesses = []; s_exposed = []; s_emits = [] } in
  let fall, exits = walk st [] p.Nfc.body in
  let exit_sets = (match fall with Some w -> [ w ] | None -> []) @ exits in
  let temp_written =
    match exit_sets with
    | [] -> []
    | w :: rest -> List.fold_left inter w rest
  in
  {
    accesses = st.s_accesses;
    temp_exposed = st.s_exposed;
    temp_written;
    emits = st.s_emits;
    falls_through = fall <> None;
  }

let of_source src =
  match Nfc.parse src with
  | prog -> Ok (of_program prog)
  | exception Nfc.Nfc_error msg -> Error msg

let touches (t : t) ?(write = false) scope =
  List.exists
    (fun a -> a.a_scope = scope && ((not write) || a.a_write))
    t.accesses
