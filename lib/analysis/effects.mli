(** Abstract interpretation of NF-C action bodies: the per-action read /
    write sets by state scope, temp-register liveness facts, and the
    events the body can emit. This is the effects half of the analyzer —
    a walk of the {!Gunfu.Nfc} AST that visits both branches of every
    [if] (may-information) while tracking definite assignment
    (must-information) for TempState. *)

open Gunfu

type access = {
  a_scope : Nfc.scope;
  a_field : string;
  a_write : bool;  (** assignment target (reads have [a_write = false]) *)
}

type t = {
  accesses : access list;
      (** every (scope, field, read/write) the body may perform, both
          branches of conditionals included; source order, deduplicated *)
  temp_exposed : string list;
      (** TempState fields read on some path before the body itself has
          written them — their value leaks in from a previous state *)
  temp_written : string list;
      (** TempState fields definitely written on every terminating or
          falling-through path (the must-set later states can rely on) *)
  emits : string list;
      (** event keys ({!Gunfu.Event.to_key}) the body may raise via
          [Emit]/[Drop] *)
  falls_through : bool;
      (** some path reaches the end of the body without [Emit]/[Drop]
          (the runtime then raises the compiler's default event) *)
}

(** Walk a parsed program. *)
val of_program : Nfc.t -> t

(** Parse and walk; [Error msg] on NF-C syntax errors. *)
val of_source : string -> (t, string) result

(** May the body touch (any field of) [scope]? With [~write:true],
    restrict to assignments. *)
val touches : t -> ?write:bool -> Nfc.scope -> bool
