(* Translation validation for the compiler's observation-rewriting passes
   (the ROADMAP's "prove it statically" item): each compiled program is
   checked against its pre-pass form.

   - match-removal: every deleted classifier repeats an earlier surviving
     classifier's key kind (so the retained match verdict is the one the
     deleted instance would have computed), and the transition rewiring is
     exactly the MATCH_SUCCESS resolution — recomputed here independently.
   - prefetch-dedup: every stripped target is available on ALL paths in
     the program as shipped (an inductive argument over the surviving
     prefetches only), cross-checked against the compiler's own
     {!Compiler.prefetch_availability} fixpoint.
   - specialize: the dense Δ table agrees cell-by-cell with the
     interpreted {!Program.step} (both directions: no stale and no
     phantom cells), Faulted events are never interned, and each NF-C
     action's symbolic exits are total over the control logic — every
     event a path can emit has a transition, and the fused dispatch sends
     it where the interpreter would.

   Verdicts: a refutation is an [Error] finding with a path witness
   naming the control state and the diverging write; an [Unknown] (the
   symbolic engine out of its fragment) is a [Warning] finding — the
   dynamic oracle still covers that program. *)

open Gunfu

type result = {
  findings : Report.finding list;
  proved : string list;  (* passes that ran and verified cleanly *)
  unknowns : int;  (* Unknown verdicts (subset of Warning findings) *)
}

let finding ?(severity = Report.Error) ~rule ~subject ~qname ?(witness = []) detail =
  { Report.rule; severity; subject; qname; detail; witness }

let path_names fsm ids = List.map (Fsm.name fsm) ids

let fsm_witness fsm ~start target =
  match Dataflow.witness fsm ~entry:start ~target with
  | Some ids -> path_names fsm ids
  | None -> []

(* ----- pass A: match removal ----- *)

(* Independently recompute what match removal is allowed to do from the
   pre-pass spec, then demand the post-pass spec is exactly that. *)
let check_match_removal (vi : Compiler.verify_input) add =
  let rule = "verifyeq-match-removal" in
  let subject = vi.Compiler.vi_name in
  let orig_nf = vi.Compiler.vi_orig_nf in
  let orig_names = List.map fst orig_nf.Spec.n_modules in
  let post_names = List.map fst vi.Compiler.vi_nf.Spec.n_modules in
  let removed = List.filter (fun n -> not (List.mem n post_names)) orig_names in
  let kind_of name =
    match
      List.find_opt (fun i -> i.Compiler.i_name = name) vi.Compiler.vi_orig_instances
    with
    | Some i -> i.Compiler.i_key_kind
    | None -> None
  in
  if not vi.Compiler.vi_opts.Compiler.match_removal then begin
    if removed <> [] then
      add
        (finding ~rule ~subject ~qname:(String.concat "," removed)
           (Fmt.str
              "match removal disabled but instance%s %s missing from the compiled chain"
              (if List.length removed = 1 then "" else "s")
              (String.concat ", " removed)));
    removed = []
  end
  else begin
    (* The set the pass may delete: classifiers whose key kind appeared
       earlier in chain order. *)
    let expected_removed =
      let seen = ref [] in
      List.filter
        (fun name ->
          match kind_of name with
          | None -> false
          | Some k ->
              if List.mem k !seen then true
              else begin
                seen := k :: !seen;
                false
              end)
        orig_names
    in
    let ok = ref true in
    List.iter
      (fun name ->
        if not (List.mem name expected_removed) then begin
          ok := false;
          add
            (finding ~rule ~subject ~qname:name
               (Fmt.str
                  "instance %s was deleted but no earlier surviving classifier matches on key kind %s — its match verdict is not reusable"
                  name
                  (match kind_of name with Some k -> k | None -> "<none>")))
        end)
      removed;
    List.iter
      (fun name ->
        if not (List.mem name removed) then begin
          ok := false;
          add
            (finding ~rule ~subject ~qname:name
               (Fmt.str "instance %s repeats an earlier key kind but survived the pass"
                  name))
        end)
      expected_removed;
    (* Rewiring: recompute the MATCH_SUCCESS resolution and compare the
       transition sets. *)
    if !ok && expected_removed <> [] then begin
      let success_target name =
        match
          List.find_opt
            (fun t -> t.Spec.src = name && t.Spec.event = "MATCH_SUCCESS")
            orig_nf.Spec.n_transitions
        with
        | Some t -> Some t.Spec.dst
        | None -> None
      in
      let rec resolve seen dst =
        if List.mem dst seen then None
        else if List.mem dst expected_removed then
          match success_target dst with
          | Some d -> resolve (dst :: seen) d
          | None -> None
        else Some dst
      in
      let expected =
        List.filter_map
          (fun t ->
            if List.mem t.Spec.src expected_removed then None
            else
              match resolve [] t.Spec.dst with
              | Some dst -> Some (t.Spec.src, t.Spec.event, dst)
              | None -> Some (t.Spec.src, t.Spec.event, "<unresolvable>"))
          orig_nf.Spec.n_transitions
        |> List.sort compare
      in
      let actual =
        List.map
          (fun t -> (t.Spec.src, t.Spec.event, t.Spec.dst))
          vi.Compiler.vi_nf.Spec.n_transitions
        |> List.sort compare
      in
      if expected <> actual then begin
        ok := false;
        let diff =
          List.filter (fun t -> not (List.mem t actual)) expected
          @ List.filter (fun t -> not (List.mem t expected)) actual
        in
        add
          (finding ~rule ~subject ~qname:subject
             (Fmt.str "transition rewiring diverges from MATCH_SUCCESS resolution: %a"
                Fmt.(
                  list ~sep:(any ", ") (fun ppf (s, e, d) ->
                      Fmt.pf ppf "%s,%s->%s" s e d))
                diff))
      end
    end;
    !ok
  end

(* ----- pass B: prefetch dedup ----- *)

let survives kills target =
  not
    (List.exists
       (fun k ->
         match (k, Prefetch.class_of target) with
         | `Match_addrs, `Match_addrs -> true
         | `Per_flow, `Per_flow -> true
         | `Sub_flow, `Sub_flow -> true
         | `Packet, `Packet -> true
         | _ -> false)
       kills)

(* Must-availability over the program AS SHIPPED (surviving prefetches
   only) — the inductive soundness argument: a stripped target proven
   available here is genuinely in flight on every path, with no circular
   reliance on other stripped fetches. *)
let shipped_availability (program : Program.t) =
  let info = program.Program.info in
  let eq = Prefetch.equal_target in
  let universe =
    Array.to_list info
    |> List.concat_map (fun ci -> ci.Program.prefetch)
    |> List.fold_left (fun acc t -> Dataflow.Set_ops.union ~equal:eq acc [ t ]) []
  in
  let kills i =
    match info.(i).Program.action with
    | None -> []
    | Some a -> a.Action.invalidates
  in
  let transfer i avail_in =
    List.filter (survives (kills i))
      (Dataflow.Set_ops.union ~equal:eq avail_in info.(i).Program.prefetch)
  in
  Dataflow.forward program.Program.fsm ~entry:program.Program.start ~entry_out:[]
    ~init:universe ~no_pred:[]
    ~join:(Dataflow.Set_ops.inter ~equal:eq)
    ~equal:(Dataflow.Set_ops.set_equal ~equal:eq)
    ~transfer

(* A path along which [target] is NOT available at [state]'s entry:
   breadth-first search over the (state, target-in-flight) product graph.
   This is the refutation witness — the concrete packet walk on which the
   stripped prefetch is missed. *)
let miss_witness (program : Program.t) ~state target =
  let fsm = program.Program.fsm in
  let info = program.Program.info in
  let start = program.Program.start in
  let n = Fsm.n_states fsm in
  let avail_after s arrived =
    let here =
      arrived
      || List.exists (Prefetch.equal_target target) info.(s).Program.prefetch
    in
    let kills =
      match info.(s).Program.action with
      | None -> []
      | Some a -> a.Action.invalidates
    in
    here && survives kills target
  in
  let seen = Array.make (2 * n) false in
  let prev = Array.make (2 * n) (-1) in
  let idx s a = (2 * s) + if a then 1 else 0 in
  let q = Queue.create () in
  let start_a = avail_after start false in
  seen.(idx start start_a) <- true;
  Queue.add (start, start_a) q;
  let rec reconstruct acc i =
    let acc = (i / 2) :: acc in
    if prev.(i) < 0 then acc else reconstruct acc prev.(i)
  in
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let s, a = Queue.take q in
    if (not a) && List.mem state (Fsm.successors fsm s) then
      result := Some (reconstruct [ state ] (idx s a))
    else
      List.iter
        (fun s' ->
          let a' = avail_after s' a in
          if not seen.(idx s' a') then begin
            seen.(idx s' a') <- true;
            prev.(idx s' a') <- idx s a;
            Queue.add (s', a') q
          end)
        (Fsm.successors fsm s)
  done;
  match !result with
  | Some ids -> path_names fsm ids
  | None -> fsm_witness fsm ~start state

let check_prefetch (vi : Compiler.verify_input) add =
  let rule = "verifyeq-prefetch" in
  let subject = vi.Compiler.vi_name in
  let program = vi.Compiler.vi_program in
  let info = program.Program.info in
  let eq = Prefetch.equal_target in
  let dedup_on =
    vi.Compiler.vi_opts.Compiler.prefetch_dedup
    && vi.Compiler.vi_opts.Compiler.prefetching
  in
  let ok = ref true in
  let stripped_any = ref false in
  let avail = lazy (shipped_availability program) in
  Array.iteri
    (fun i pre ->
      let post = info.(i).Program.prefetch in
      (* The pass may only delete targets, never invent them. *)
      if not (Dataflow.Set_ops.subset ~equal:eq post pre) then begin
        ok := false;
        add
          (finding ~rule ~subject ~qname:info.(i).Program.qname
             (Fmt.str "control state %s gained prefetch targets the spec never declared"
                info.(i).Program.qname))
      end;
      let stripped = List.filter (fun t -> not (Dataflow.Set_ops.mem ~equal:eq t post)) pre in
      List.iter
        (fun t ->
          stripped_any := true;
          if not dedup_on then begin
            ok := false;
            add
              (finding ~rule ~subject ~qname:info.(i).Program.qname
                 (Fmt.str "prefetch of %a stripped at %s but dedup was disabled"
                    Prefetch.pp_target t info.(i).Program.qname))
          end
          else if
            not (Dataflow.Set_ops.mem ~equal:eq t (Lazy.force avail).Dataflow.ins.(i))
          then begin
            ok := false;
            add
              (finding ~rule ~subject ~qname:info.(i).Program.qname
                 ~witness:(miss_witness program ~state:i t)
                 (Fmt.str
                    "prefetch of %a stripped at %s, but on the witnessed path it is not in flight on entry — the access would go cold"
                    Prefetch.pp_target t info.(i).Program.qname))
          end)
        stripped)
    vi.Compiler.vi_pre_dedup;
  (* Cross-check our fixpoint against the compiler's own analysis — the
     two are maintained independently and must agree on the shipped
     policy. *)
  if dedup_on && !stripped_any then begin
    let ours = Lazy.force avail in
    let theirs =
      Compiler.prefetch_availability info program.Program.fsm
        ~start:program.Program.start
    in
    Array.iteri
      (fun i mine ->
        if not (Dataflow.Set_ops.set_equal ~equal:eq mine theirs.Dataflow.ins.(i))
        then begin
          ok := false;
          add
            (finding ~rule ~subject ~qname:info.(i).Program.qname
               (Fmt.str
                  "availability fixpoints disagree at %s (checker vs compiler) — analysis drift"
                  info.(i).Program.qname))
        end)
      ours.Dataflow.ins
  end;
  !ok

(* ----- pass C: specialize ----- *)

let builtin_event_of_class = function
  | 0 -> Some Event.Packet_arrival
  | 1 -> Some Event.Match_success
  | 2 -> Some Event.Match_fail
  | 3 -> Some Event.Emit_packet
  | 4 -> Some Event.Drop_packet
  | _ -> None

(* The NF-C source a control state's action was compiled from, when the
   spec declares one. *)
let nfc_of_state (vi : Compiler.verify_input) i =
  let ci = vi.Compiler.vi_program.Program.info.(i) in
  if ci.Program.inst = "" then None
  else
    match
      List.find_opt
        (fun inst -> inst.Compiler.i_name = ci.Program.inst)
        vi.Compiler.vi_instances
    with
    | None -> None
    | Some inst ->
        let prefix = ci.Program.inst ^ "." in
        let plen = String.length prefix in
        if
          String.length ci.Program.qname > plen
          && String.sub ci.Program.qname 0 plen = prefix
        then
          let cs = String.sub ci.Program.qname plen (String.length ci.Program.qname - plen) in
          List.assoc_opt cs inst.Compiler.i_spec.Spec.m_nfc
        else None

let check_specialize (vi : Compiler.verify_input) add count_unknown =
  let rule = "verifyeq-specialize" in
  let subject = vi.Compiler.vi_name in
  let program = vi.Compiler.vi_program in
  let fsm = program.Program.fsm in
  let start = program.Program.start in
  let name_of i = if i < 0 then "<none>" else Fsm.name fsm i in
  match Specialize.get program with
  | None ->
      if vi.Compiler.vi_opts.Compiler.specialize then begin
        add
          (finding ~rule ~subject ~qname:subject
             "specialization requested but no hot path is installed");
        false
      end
      else true
  | Some sp ->
      let ok = ref true in
      (* Faulted events must never be interned: quarantine always defers
         to the interpreter (and from there to the executor's containment
         path). *)
      List.iter
        (fun (key, cls) ->
          if String.length key >= 6 && String.sub key 0 6 = "FAULT[" then begin
            ok := false;
            add
              (finding ~rule ~subject ~qname:subject
                 (Fmt.str "fault containment key %S interned as dense class %d" key cls))
          end)
        (Specialize.user_classes sp);
      (* Dispatch parity on every declared edge, through the real entry
         point (jump table or interpreter fallback). *)
      List.iter
        (fun (src, key, dst) ->
          let via_sp = Specialize.step sp src (Event.of_key key) in
          if via_sp <> dst then begin
            ok := false;
            add
              (finding ~rule ~subject ~qname:(Fsm.name fsm src)
                 ~witness:(fsm_witness fsm ~start src)
                 (Fmt.str
                    "edge %s --%s--> %s: specialized dispatch goes to %s instead"
                    (Fsm.name fsm src) key (name_of dst) (name_of via_sp)))
          end)
        (Fsm.edges fsm);
      (* Cell-by-cell table audit, both directions: a live cell must match
         the interpreted Δ, and an undefined transition must be a dead
         cell (phantom cells would invent transitions the spec never
         declared). *)
      let n_classes = Specialize.n_classes sp in
      let table = Specialize.next_table sp in
      let user = Specialize.user_classes sp in
      for s = 0 to Fsm.n_states fsm - 1 do
        for cls = 0 to n_classes - 1 do
          let ev =
            match builtin_event_of_class cls with
            | Some ev -> Some ev
            | None -> (
                match List.find_opt (fun (_, c) -> c = cls) user with
                | Some (key, _) -> Some (Event.User key)
                | None -> None)
          in
          match ev with
          | None -> ()
          | Some ev ->
              let expected = match Fsm.step fsm s ev with Some d -> d | None -> -1 in
              let cell = table.((s * n_classes) + cls) in
              if cell <> expected then begin
                ok := false;
                add
                  (finding ~rule ~subject ~qname:(Fsm.name fsm s)
                     ~witness:(fsm_witness fsm ~start s)
                     (Fmt.str
                        "jump table cell (%s, %s) sends the task to %s; the interpreted \xce\x94 says %s"
                        (Fsm.name fsm s) (Event.to_key ev) (name_of cell)
                        (name_of expected)))
              end
        done
      done;
      (* Symbolic totality of each NF-C action over the control logic:
         every event a feasible path can emit must have a transition, and
         the fused dispatch must send it where the interpreter would. *)
      for s = 0 to Fsm.n_states fsm - 1 do
        match nfc_of_state vi s with
        | None -> ()
        | Some src -> (
            match Nfc.parse src with
            | exception Nfc.Nfc_error msg ->
                count_unknown ();
                add
                  (finding ~severity:Report.Warning ~rule ~subject
                     ~qname:(Fsm.name fsm s)
                     (Fmt.str "declared NF-C for %s does not parse (%s) — falling back to the dynamic oracle"
                        (Fsm.name fsm s) msg))
            | prog ->
                let summary = Sym.summarize prog in
                let weight_ok =
                  match program.Program.info.(s).Program.action with
                  | Some a -> a.Action.base_cycles = 4 + (2 * summary.Sym.s_weight)
                  | None -> false
                in
                if summary.Sym.s_truncated then begin
                  count_unknown ();
                  add
                    (finding ~severity:Report.Warning ~rule ~subject
                       ~qname:(Fsm.name fsm s)
                       (Fmt.str
                          "action at %s exceeds the symbolic path budget (%d) — falling back to the dynamic oracle"
                          (Fsm.name fsm s) Sym.max_paths))
                end
                else if not weight_ok then begin
                  (* The installed action does not carry the declared
                     NF-C's cost model: it may not originate from this
                     source, so a symbolic refutation would be unsound.
                     Defer to the oracle. *)
                  count_unknown ();
                  add
                    (finding ~severity:Report.Warning ~rule ~subject
                       ~qname:(Fsm.name fsm s)
                       (Fmt.str
                          "action at %s does not match the declared NF-C's cycle model (4 + 2*weight) — it may be hand-written; falling back to the dynamic oracle"
                          (Fsm.name fsm s)))
                end
                else
                  List.iter
                    (fun p ->
                      let key =
                        match p.Sym.p_exit with
                        | Sym.Exit_emit k -> Some k
                        | Sym.Exit_drop -> Some (Event.to_key Event.Drop_packet)
                        | Sym.Exit_raise -> None  (* contained by the fault plane *)
                        | Sym.Exit_fall -> None  (* checked below *)
                      in
                      match key with
                      | None ->
                          if p.Sym.p_exit = Sym.Exit_fall then begin
                            (* The fall-through event is a compile-time
                               parameter we cannot see from the spec. *)
                            count_unknown ();
                            add
                              (finding ~severity:Report.Warning ~rule ~subject
                                 ~qname:(Fsm.name fsm s)
                                 (Fmt.str
                                    "action at %s can fall through (path %a) — default event unknown statically; falling back to the dynamic oracle"
                                    (Fsm.name fsm s) Sym.pp_pc p.Sym.p_pc))
                          end
                      | Some key -> (
                          let ev = Event.of_key key in
                          match Fsm.step fsm s ev with
                          | None ->
                              ok := false;
                              add
                                (finding ~rule ~subject ~qname:(Fsm.name fsm s)
                                   ~witness:
                                     (fsm_witness fsm ~start s
                                     @ [ Fmt.str "[%a] %a => emit %S" Sym.pp_pc
                                           p.Sym.p_pc Sym.pp_writes p.Sym.p_writes key
                                       ])
                                   (Fmt.str
                                      "action at %s emits %S on a feasible path but the control logic has no transition for it"
                                      (Fsm.name fsm s) key))
                          | Some dst ->
                              let via_sp = Specialize.step sp s ev in
                              if via_sp <> dst then begin
                                ok := false;
                                add
                                  (finding ~rule ~subject ~qname:(Fsm.name fsm s)
                                     ~witness:
                                       (fsm_witness fsm ~start s
                                       @ [ Fmt.str "[%a] %a => emit %S" Sym.pp_pc
                                             p.Sym.p_pc Sym.pp_writes p.Sym.p_writes
                                             key
                                         ])
                                     (Fmt.str
                                        "on emit %S at %s the fused dispatch reaches %s; the interpreter reaches %s"
                                        key (Fsm.name fsm s) (name_of via_sp)
                                        (name_of dst)))
                              end))
                    summary.Sym.s_paths)
      done;
      !ok

(* ----- entry point ----- *)

let check (vi : Compiler.verify_input) =
  let acc = ref [] in
  let unknowns = ref 0 in
  let add f = acc := f :: !acc in
  let count_unknown () = incr unknowns in
  let proved = ref [] in
  let prove name ok = if ok then proved := name :: !proved in
  prove "match_removal" (check_match_removal vi add);
  prove "prefetch_dedup" (check_prefetch vi add);
  prove "specialize" (check_specialize vi add count_unknown);
  { findings = Report.sort !acc; proved = List.rev !proved; unknowns = !unknowns }
