(** Findings produced by the static analyzer (nflint): a rule name, a
    severity, the subject under analysis (module or NF name), the
    qualified control state the finding anchors to, and an optional FSM
    path witnessing how execution reaches it. *)

type severity = Info | Warning | Error

type finding = {
  rule : string;  (** e.g. ["cold-access"] *)
  severity : severity;
  subject : string;  (** module or NF name the finding belongs to *)
  qname : string;  (** offending control state (["inst.cs"] or ["cs"]) *)
  detail : string;  (** human-readable explanation *)
  witness : string list;  (** FSM path from entry to the offender, or [] *)
}

val severity_label : severity -> string

(** Error > Warning > Info. *)
val severity_rank : severity -> int

(** Highest severity present, or [None] on an empty list. *)
val worst : finding list -> severity option

(** Stable order: severity descending, then subject, qname, rule. *)
val sort : finding list -> finding list

(** One line per finding ([severity: \[rule\] subject/qname: detail]),
    plus an indented [path:] line when a witness is present. *)
val pp_finding : Format.formatter -> finding -> unit

(** Render a finding list as a JSON array (stable field order, no
    external dependency). *)
val to_json : finding list -> string
