(** Hooks the analyzer into the compiler. {!Gunfu.Compiler} cannot
    depend on this library (the analysis depends on the compiler), so
    compiles reach it through {!Gunfu.Compiler.set_lint_hook}; linking
    the library is not enough — ocamlopt drops unreferenced units from
    archives, so an executable that wants linted compiles must call
    {!install} (idempotent) once at startup. *)

(** Install {!Lints.of_build} as the compiler's lint hook and
    {!Symcheck.check} as its translation-validation hook. Under
    [opts.lint = `Warn] (resp. [opts.verify_passes = `Warn]) findings of
    warning severity and above are printed to stderr; under [`Error],
    error-severity findings (lint errors, refuted passes) additionally
    raise {!Gunfu.Compiler.Compile_error}. Unknown verifier verdicts are
    warnings at either level — those programs fall back to the dynamic
    oracle. *)
val install : unit -> unit
