(** Hooks the analyzer into the compiler. {!Gunfu.Compiler} cannot
    depend on this library (the analysis depends on the compiler), so
    compiles reach it through {!Gunfu.Compiler.set_lint_hook}; linking
    the library is not enough — ocamlopt drops unreferenced units from
    archives, so an executable that wants linted compiles must call
    {!install} (idempotent) once at startup. *)

(** Install {!Lints.of_build} as the compiler's lint hook. Under
    [opts.lint = `Warn] findings of warning severity and above are
    printed to stderr; under [`Error], error-severity findings
    additionally raise {!Gunfu.Compiler.Compile_error}. *)
val install : unit -> unit
