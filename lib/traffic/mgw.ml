(* Mobile-gateway workloads, after the Telco Pipeline Benchmarking System
   (Lévai et al.) MGW use cases the paper extends:

   - UPF downlink: a population of PFCP sessions (one per UE, keyed by UE
     IP, carrying a GTP-U TEID towards the RAN), each with [n_pdrs] Packet
     Detection Rules that partition the remote source-port space. Generated
     packets are N6-side downlink IP packets whose 5-tuple selects exactly
     one (session, PDR) pair.

   - AMF initial registration: per-UE NGAP/NAS message sequences; each
     message type touches a different slice of the (large) UE context. *)

open Netcore

type session = { ue_ip : Ipv4.addr; teid : int32; n_pdrs : int }

type t = {
  sessions : session array;
  rng : Memsim.Rng.t;
  zipf : Zipf.t option;
  wire_len : int;
  elephant : float;
}

let ue_ip_of_index i = Int32.of_int (0x64000000 lor (i land 0xFFFFFF)) (* 100.x.y.z *)
let teid_of_index i = Int32.of_int (0x1000 + i)

(* PDR [j] of a session matches remote source ports in [port_lo, port_hi]. *)
let pdr_port_range ~n_pdrs ~pdr =
  if pdr < 0 || pdr >= n_pdrs then invalid_arg "Mgw.pdr_port_range";
  let span = 49152 / n_pdrs in
  let lo = 1024 + (pdr * span) in
  (lo, lo + span - 1)

let create ?(seed = 11) ?(popularity = Flowgen.Uniform) ?(wire_len = 128)
    ?(elephant = 0.0) ~n_sessions ~n_pdrs () =
  if n_sessions <= 0 || n_pdrs <= 0 then invalid_arg "Mgw.create";
  if elephant < 0.0 || elephant >= 1.0 then
    invalid_arg "Mgw.create: elephant must be in [0, 1)";
  let sessions =
    Array.init n_sessions (fun i ->
        { ue_ip = ue_ip_of_index i; teid = teid_of_index i; n_pdrs })
  in
  let zipf =
    match popularity with
    | Flowgen.Uniform -> None
    | Flowgen.Zipf s -> Some (Zipf.create ~n:n_sessions ~s)
  in
  { sessions; rng = Memsim.Rng.create seed; zipf; wire_len; elephant }

let n_sessions t = Array.length t.sessions
let sessions t = t.sessions
let session t i = t.sessions.(i)

let sample_session_idx t =
  (* The elephant knob diverts [elephant] of the probability mass to
     session 0 on top of the base popularity — an adversarial single hot
     UE for skew-collapse experiments. At 0 (the default) no rng draw is
     spent, preserving existing packet streams byte-for-byte. *)
  if t.elephant > 0.0 && Memsim.Rng.float t.rng 1.0 < t.elephant then 0
  else
    match t.zipf with
    | None -> Memsim.Rng.int t.rng (Array.length t.sessions)
    | Some z -> Zipf.sample z t.rng

(* A downlink packet towards a sampled UE, hitting a sampled PDR. *)
let next_downlink ?arena t =
  let si = sample_session_idx t in
  let s = t.sessions.(si) in
  let pdr = Memsim.Rng.int t.rng s.n_pdrs in
  let lo, hi = pdr_port_range ~n_pdrs:s.n_pdrs ~pdr in
  let src_port = Memsim.Rng.int_in_range t.rng ~lo ~hi in
  let flow =
    Flow.make
      ~src_ip:(Int32.of_int (0x08080000 lor (si mod 512)))
      ~dst_ip:s.ue_ip ~src_port ~dst_port:(10000 + (si mod 1000))
      ~proto:Ipv4.proto_udp
  in
  (si, pdr, Packet.make ?arena ~flow ~wire_len:t.wire_len ())

(* An uplink packet: UE -> data network, GTP-U encapsulated by the RAN
   towards the UPF's N3 address. *)
let next_uplink t ~ran_ip ~upf_ip =
  let si = sample_session_idx t in
  let s = t.sessions.(si) in
  let flow =
    Flow.make ~src_ip:s.ue_ip
      ~dst_ip:(Int32.of_int (0x08080000 lor (si mod 512)))
      ~src_port:(10000 + (si mod 1000))
      ~dst_port:(Memsim.Rng.int_in_range t.rng ~lo:1024 ~hi:50175)
      ~proto:Ipv4.proto_udp
  in
  let pkt = Packet.make ~flow ~wire_len:t.wire_len () in
  Packet.encapsulate_gtpu pkt ~outer_src:ran_ip ~outer_dst:upf_ip ~teid:s.teid;
  (si, pkt)

(* ----- session churn storms ----- *)

(* A seeded teardown/re-setup storm over the session population. Each step
   rolls an independent churn RNG: with probability [rate_ppm] / 1e6 the
   storm flips one session (live -> torn down, or torn down -> re-setup);
   otherwise it emits a plain downlink data packet via [next_downlink] —
   which may well target a torn-down session, exercising the consumer's
   session-miss path exactly like traffic racing a PFCP deletion. *)
type churn_event =
  | Churn_teardown of int
  | Churn_setup of int
  | Churn_data of int * int * Packet.t

type churn = {
  c_mgw : t;
  c_rng : Memsim.Rng.t;
  c_rate_ppm : int;
  c_down : bool array;
  mutable c_n_down : int;
  mutable c_events : int;
}

let churn ?(seed = 29) ~rate_ppm t =
  if rate_ppm < 0 || rate_ppm > 1_000_000 then invalid_arg "Mgw.churn";
  {
    c_mgw = t;
    c_rng = Memsim.Rng.create seed;
    c_rate_ppm = rate_ppm;
    c_down = Array.make (Array.length t.sessions) false;
    c_n_down = 0;
    c_events = 0;
  }

let churn_next ?arena c =
  if Memsim.Rng.int c.c_rng 1_000_000 < c.c_rate_ppm then begin
    let i = Memsim.Rng.int c.c_rng (Array.length c.c_mgw.sessions) in
    c.c_events <- c.c_events + 1;
    if c.c_down.(i) then begin
      c.c_down.(i) <- false;
      c.c_n_down <- c.c_n_down - 1;
      Churn_setup i
    end
    else begin
      c.c_down.(i) <- true;
      c.c_n_down <- c.c_n_down + 1;
      Churn_teardown i
    end
  end
  else
    let si, pdr, pkt = next_downlink ?arena c.c_mgw in
    Churn_data (si, pdr, pkt)

let churn_live c i = not c.c_down.(i)
let churn_down_count c = c.c_n_down
let churn_events c = c.c_events

(* ----- AMF initial-registration call flow ----- *)

(* The state-access-heavy messages of the Free5GC initial registration test
   cases the paper ports to DPDK (§II-B, EXP B), plus the steady-state
   lifecycle messages (service request, periodic update, AN release,
   deregistration) that make the workload genuinely heterogeneous — the
   "different user behaviors, hence different state lookup methods,
   application logic executed and states accessed" of §II-C. *)
type amf_msg =
  | Registration_request
  | Authentication_response
  | Security_mode_complete
  | Registration_complete
  | Pdu_session_request
  | Service_request  (* idle UE resumes *)
  | Periodic_update  (* periodic registration update *)
  | Context_release  (* AN release: connected -> idle *)
  | Deregistration_request

let registration_sequence =
  [|
    Registration_request;
    Authentication_response;
    Security_mode_complete;
    Registration_complete;
    Pdu_session_request;
  |]

let amf_msg_name = function
  | Registration_request -> "RegistrationRequest"
  | Authentication_response -> "AuthenticationResponse"
  | Security_mode_complete -> "SecurityModeComplete"
  | Registration_complete -> "RegistrationComplete"
  | Pdu_session_request -> "PDUSessionRequest"
  | Service_request -> "ServiceRequest"
  | Periodic_update -> "PeriodicRegistrationUpdate"
  | Context_release -> "UEContextRelease"
  | Deregistration_request -> "DeregistrationRequest"

let all_amf_msgs =
  Array.to_list registration_sequence
  @ [ Service_request; Periodic_update; Context_release; Deregistration_request ]

(* Per-UE lifecycle phase, mirrored by the AMF implementation:
   0..4 = position in the registration sequence, 5 = CM-CONNECTED,
   6 = CM-IDLE. *)
let phase_connected = 5
let phase_idle = 6

type amf_gen = {
  progress : int array;  (* per-UE lifecycle phase *)
  amf_rng : Memsim.Rng.t;
  amf_zipf : Zipf.t option;
}

let amf_create ?(seed = 23) ?(popularity = Flowgen.Uniform) ~n_ues () =
  if n_ues <= 0 then invalid_arg "Mgw.amf_create";
  let amf_zipf =
    match popularity with
    | Flowgen.Uniform -> None
    | Flowgen.Zipf s -> Some (Zipf.create ~n:n_ues ~s)
  in
  { progress = Array.make n_ues 0; amf_rng = Memsim.Rng.create seed; amf_zipf }

let amf_n_ues g = Array.length g.progress

(* Next (ue, message). Fresh UEs walk the 5-message registration sequence;
   registered UEs then live a connected/idle lifecycle with occasional
   deregistration (after which they register anew). Always emits a message
   that is valid for the UE's current phase. *)
let amf_next g =
  let ue =
    match g.amf_zipf with
    | None -> Memsim.Rng.int g.amf_rng (Array.length g.progress)
    | Some z -> Zipf.sample z g.amf_rng
  in
  let phase = g.progress.(ue) in
  let msg =
    if phase < Array.length registration_sequence then begin
      g.progress.(ue) <-
        (if phase + 1 = Array.length registration_sequence then phase_connected
         else phase + 1);
      registration_sequence.(phase)
    end
    else if phase = phase_idle then begin
      g.progress.(ue) <- phase_connected;
      Service_request
    end
    else
      (* CM-CONNECTED *)
      match Memsim.Rng.int g.amf_rng 10 with
      | 0 | 1 | 2 | 3 -> Pdu_session_request
      | 4 | 5 -> Periodic_update
      | 6 | 7 ->
          g.progress.(ue) <- phase_idle;
          Context_release
      | 8 ->
          g.progress.(ue) <- 0;
          Deregistration_request
      | _ -> Periodic_update
  in
  (ue, msg)
