(** Zipf(s) sampler over ranks [0 .. n-1] (rank 0 most popular), via
    inverse-CDF binary search on a precomputed table. *)

type t

(** @raise Invalid_argument when [n <= 0] or [s < 0]. [s = 0] is uniform. *)
val create : n:int -> s:float -> t

val n : t -> int

(** Sample a rank. *)
val sample : t -> Memsim.Rng.t -> int

(** Probability mass of rank [i]. *)
val pmf : t -> int -> float

(** Cumulative probability mass of the [k] most popular ranks. *)
val top_share : t -> k:int -> float
