(** Mobile-gateway workloads (after the Telco Pipeline Benchmarking System
    MGW use cases): PFCP session / PDR populations with downlink and uplink
    packet streams, and AMF initial-registration message sequences. *)

type session = { ue_ip : Netcore.Ipv4.addr; teid : int32; n_pdrs : int }

type t

val ue_ip_of_index : int -> Netcore.Ipv4.addr
val teid_of_index : int -> int32

(** Source-port interval PDR [pdr] of a session with [n_pdrs] rules
    matches; the intervals partition [1024, 50175].
    @raise Invalid_argument when [pdr] is out of range. *)
val pdr_port_range : n_pdrs:int -> pdr:int -> int * int

(** @raise Invalid_argument on non-positive sizes. *)
val create :
  ?seed:int -> ?popularity:Flowgen.popularity -> ?wire_len:int -> n_sessions:int ->
  n_pdrs:int -> unit -> t

val n_sessions : t -> int
val sessions : t -> session array
val session : t -> int -> session

(** Downlink (N6 -> UE) packet hitting a sampled (session, PDR):
    [(session_idx, pdr_idx, packet)]. *)
val next_downlink : ?arena:Netcore.Packet.Arena.t -> t -> int * int * Netcore.Packet.t

(** Uplink (UE -> N6) packet, GTP-U encapsulated by the RAN towards the
    UPF: [(session_idx, packet)]. *)
val next_uplink :
  t -> ran_ip:Netcore.Ipv4.addr -> upf_ip:Netcore.Ipv4.addr -> int * Netcore.Packet.t

(** {2 AMF initial-registration call flow} *)

type amf_msg =
  | Registration_request
  | Authentication_response
  | Security_mode_complete
  | Registration_complete
  | Pdu_session_request
  | Service_request  (** idle UE resumes *)
  | Periodic_update  (** periodic registration update *)
  | Context_release  (** AN release: connected -> idle *)
  | Deregistration_request

val registration_sequence : amf_msg array
val amf_msg_name : amf_msg -> string

(** Registration sequence plus the lifecycle messages. *)
val all_amf_msgs : amf_msg list

(** Lifecycle phases, mirrored by the AMF implementation: 0..4 =
    registration-sequence position, then: *)
val phase_connected : int

val phase_idle : int

type amf_gen

val amf_create : ?seed:int -> ?popularity:Flowgen.popularity -> n_ues:int -> unit -> amf_gen
val amf_n_ues : amf_gen -> int

(** Next [(ue, message)], always valid for the UE's current phase: fresh
    UEs walk the registration sequence; registered UEs live a
    connected/idle lifecycle with occasional deregistration. *)
val amf_next : amf_gen -> int * amf_msg
