(** Mobile-gateway workloads (after the Telco Pipeline Benchmarking System
    MGW use cases): PFCP session / PDR populations with downlink and uplink
    packet streams, and AMF initial-registration message sequences. *)

type session = { ue_ip : Netcore.Ipv4.addr; teid : int32; n_pdrs : int }

type t

val ue_ip_of_index : int -> Netcore.Ipv4.addr
val teid_of_index : int -> int32

(** Source-port interval PDR [pdr] of a session with [n_pdrs] rules
    matches; the intervals partition [1024, 50175].
    @raise Invalid_argument when [pdr] is out of range. *)
val pdr_port_range : n_pdrs:int -> pdr:int -> int * int

(** [elephant] diverts that share of the downlink/uplink probability
    mass to session 0 on top of the base popularity — an adversarial
    single hot UE for skew-collapse experiments (0, the default, spends
    no rng draw and preserves existing streams).
    @raise Invalid_argument on non-positive sizes or
    [elephant] outside [0, 1). *)
val create :
  ?seed:int -> ?popularity:Flowgen.popularity -> ?wire_len:int ->
  ?elephant:float -> n_sessions:int -> n_pdrs:int -> unit -> t

val n_sessions : t -> int
val sessions : t -> session array
val session : t -> int -> session

(** Downlink (N6 -> UE) packet hitting a sampled (session, PDR):
    [(session_idx, pdr_idx, packet)]. *)
val next_downlink : ?arena:Netcore.Packet.Arena.t -> t -> int * int * Netcore.Packet.t

(** Uplink (UE -> N6) packet, GTP-U encapsulated by the RAN towards the
    UPF: [(session_idx, packet)]. *)
val next_uplink :
  t -> ran_ip:Netcore.Ipv4.addr -> upf_ip:Netcore.Ipv4.addr -> int * Netcore.Packet.t

(** {2 Session churn storms}

    A seeded teardown/re-setup storm over the session population. Each
    {!churn_next} step flips one session (live -> torn down, or back) with
    probability [rate_ppm] / 1e6, and otherwise emits a plain downlink
    data packet — possibly towards a torn-down session, exercising the
    consumer's session-miss path like traffic racing a PFCP deletion. *)

type churn_event =
  | Churn_teardown of int  (** session index going down *)
  | Churn_setup of int  (** torn-down session coming back *)
  | Churn_data of int * int * Netcore.Packet.t
      (** [(session_idx, pdr_idx, packet)], session possibly down *)

type churn

(** @raise Invalid_argument unless [rate_ppm] is in [0, 1_000_000]. *)
val churn : ?seed:int -> rate_ppm:int -> t -> churn

val churn_next : ?arena:Netcore.Packet.Arena.t -> churn -> churn_event

(** Is session [i] currently set up? *)
val churn_live : churn -> int -> bool

(** Sessions currently torn down. *)
val churn_down_count : churn -> int

(** Total teardown + setup events emitted so far. *)
val churn_events : churn -> int

(** {2 AMF initial-registration call flow} *)

type amf_msg =
  | Registration_request
  | Authentication_response
  | Security_mode_complete
  | Registration_complete
  | Pdu_session_request
  | Service_request  (** idle UE resumes *)
  | Periodic_update  (** periodic registration update *)
  | Context_release  (** AN release: connected -> idle *)
  | Deregistration_request

val registration_sequence : amf_msg array
val amf_msg_name : amf_msg -> string

(** Registration sequence plus the lifecycle messages. *)
val all_amf_msgs : amf_msg list

(** Lifecycle phases, mirrored by the AMF implementation: 0..4 =
    registration-sequence position, then: *)
val phase_connected : int

val phase_idle : int

type amf_gen

val amf_create : ?seed:int -> ?popularity:Flowgen.popularity -> n_ues:int -> unit -> amf_gen
val amf_n_ues : amf_gen -> int

(** Next [(ue, message)], always valid for the UE's current phase: fresh
    UEs walk the registration sequence; registered UEs live a
    connected/idle lifecycle with occasional deregistration. *)
val amf_next : amf_gen -> int * amf_msg
