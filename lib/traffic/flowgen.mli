(** Synthetic flow universes and packet streams: a fixed population of
    distinct 5-tuples; packets sample a flow (uniform or Zipf) and a wire
    size, then materialise real header bytes. *)

type size_model =
  | Fixed of int
  | Mix of (int * int) list  (** (wire_bytes, weight) *)

(** The classic simple IMIX: 7:4:1 of 64/576/1500-byte frames. *)
val imix : size_model

val mean_size : size_model -> float

type popularity = Uniform | Zipf of float

type t

(** @raise Invalid_argument when [n_flows <= 0]. Deterministic per seed. *)
val create :
  ?seed:int -> ?popularity:popularity -> ?size_model:size_model -> n_flows:int ->
  unit -> t

val n_flows : t -> int
val flows : t -> Netcore.Flow.t array
val flow : t -> int -> Netcore.Flow.t

(** Fresh packet for a sampled flow, with the flow's universe index. *)
val next_with_idx : ?arena:Netcore.Packet.Arena.t -> t -> int * Netcore.Packet.t

val next : t -> Netcore.Packet.t

(** Pre-generate an RX burst. *)
val batch : t -> int -> Netcore.Packet.t array

val mean_wire_bytes : t -> float

(** Deterministic seeded alpha sweep over ONE shared flow universe: the
    population (and its rank shuffle) is built once — million-flow
    capable — and each alpha gets its own generator with an
    independently seeded rng, so sweep points differ only in skew.
    [0.] is uniform.
    @raise Invalid_argument when [n_flows <= 0] or an alpha is
    negative. *)
val alpha_sweep :
  ?seed:int -> ?size_model:size_model -> n_flows:int -> float list ->
  (float * t) list
