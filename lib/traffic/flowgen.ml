(* Synthetic flow universes and packet streams.

   A generator owns a fixed population of distinct 5-tuple flows; packets
   sample a flow (uniformly or Zipf-skewed) and a wire size from a size
   model, then materialise real header bytes via {!Netcore.Packet.make}. *)

open Netcore

type size_model =
  | Fixed of int
  | Mix of (int * int) list  (* (wire_bytes, weight) *)

(* The classic simple IMIX: 7:4:1 of 64/576/1500-byte frames. *)
let imix = Mix [ (64, 7); (576, 4); (1500, 1) ]

let mean_size = function
  | Fixed n -> float_of_int n
  | Mix weighted ->
      let wsum = List.fold_left (fun a (_, w) -> a + w) 0 weighted in
      List.fold_left (fun a (sz, w) -> a +. (float_of_int (sz * w))) 0.0 weighted
      /. float_of_int wsum

type popularity = Uniform | Zipf of float

type t = {
  flows : Flow.t array;
  rng : Memsim.Rng.t;
  zipf : Zipf.t option;
  size_model : size_model;
  size_table : int array;  (* flattened weights for O(1) sampling *)
}

(* Distinct flows: client i gets a unique (src_ip, src_port) pair towards a
   small set of servers — the shape of south-north datacenter traffic. *)
let make_flow i =
  let src_ip = Int32.of_int (0x0A000000 lor (i land 0xFFFFFF)) in
  let dst_ip = Int32.of_int (0xC0A80000 lor (i mod 251)) in
  let src_port = 1024 + (i mod 60000) in
  let dst_port = 80 + (i mod 16) in
  let proto = if i mod 8 = 0 then Ipv4.proto_tcp else Ipv4.proto_udp in
  Flow.make ~src_ip ~dst_ip ~src_port ~dst_port ~proto

let size_table_of_model = function
  | Fixed n -> [| n |]
  | Mix weighted ->
      let total = List.fold_left (fun a (_, w) -> a + w) 0 weighted in
      let table = Array.make total 0 in
      let pos = ref 0 in
      List.iter
        (fun (sz, w) ->
          for _ = 1 to w do
            table.(!pos) <- sz;
            incr pos
          done)
        weighted;
      table

let create ?(seed = 42) ?(popularity = Uniform) ?(size_model = Fixed 64) ~n_flows () =
  if n_flows <= 0 then invalid_arg "Flowgen.create: n_flows must be positive";
  let rng = Memsim.Rng.create seed in
  let flows = Array.init n_flows make_flow in
  (* Shuffle so that Zipf rank is uncorrelated with address layout. *)
  Memsim.Rng.shuffle rng flows;
  let zipf =
    match popularity with
    | Uniform -> None
    | Zipf s -> Some (Zipf.create ~n:n_flows ~s)
  in
  { flows; rng; zipf; size_model; size_table = size_table_of_model size_model }

let n_flows t = Array.length t.flows
let flows t = t.flows
let flow t i = t.flows.(i)

let sample_flow_idx t =
  match t.zipf with
  | None -> Memsim.Rng.int t.rng (Array.length t.flows)
  | Some z -> Zipf.sample z t.rng

let sample_size t =
  if Array.length t.size_table = 1 then t.size_table.(0)
  else t.size_table.(Memsim.Rng.int t.rng (Array.length t.size_table))

(* Fresh packet for a sampled flow; returns the flow index too so callers
   can cross-check state lookups. *)
let next_with_idx ?arena t =
  let i = sample_flow_idx t in
  let wire_len = sample_size t in
  (i, Packet.make ?arena ~flow:t.flows.(i) ~wire_len ())

let next t = snd (next_with_idx t)

(* Pre-generate a batch (the RX burst the runtime receives). *)
let batch t n = Array.init n (fun _ -> next t)

let mean_wire_bytes t = mean_size t.size_model

(* Deterministic alpha sweep over ONE shared flow universe: the
   population (and its rank shuffle) is built once — million-flow
   capable, the per-flow array being the only O(n) allocation shared by
   every point — and each alpha gets its own generator with an
   independently seeded rng, so sweep points differ only in skew. *)
let alpha_sweep ?(seed = 42) ?(size_model = Fixed 64) ~n_flows alphas =
  if n_flows <= 0 then invalid_arg "Flowgen.alpha_sweep: n_flows must be positive";
  let rng = Memsim.Rng.create seed in
  let flows = Array.init n_flows make_flow in
  Memsim.Rng.shuffle rng flows;
  let size_table = size_table_of_model size_model in
  List.mapi
    (fun k alpha ->
      if alpha < 0.0 then
        invalid_arg "Flowgen.alpha_sweep: alpha must be non-negative";
      let zipf = if alpha = 0.0 then None else Some (Zipf.create ~n:n_flows ~s:alpha) in
      ( alpha,
        {
          flows;
          rng = Memsim.Rng.create (seed + (7919 * (k + 1)));
          zipf;
          size_model;
          size_table;
        } ))
    alphas
