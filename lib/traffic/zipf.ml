(* Zipf(s) sampler over ranks 1..n via inverse-CDF binary search on a
   precomputed table. Rank 0 (returned 0-based) is the most popular. *)

type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let n t = Array.length t.cdf

(* Smallest index with cdf.(i) >= u. *)
let sample t rng =
  let u = Memsim.Rng.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* Probability mass of rank [i] (0-based). *)
let pmf t i =
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

(* Cumulative mass of the k most popular ranks — how heavy the head is. *)
let top_share t ~k =
  if k <= 0 then 0.0 else t.cdf.(min k (Array.length t.cdf) - 1)
