(* The adaptive oracle axis: drive a recovery case through the closed
   loop ({!Adaptive.Driver}) and require behavioural equality with the
   single-core run-to-completion reference ({!Recovery.observe_platform}
   at one core). Whatever the controller does — resize the interleave,
   raise the prefetch distance, switch engines, even hand the stream off
   to a replicated SCR platform and take it back — per-flow emit-content
   streams, completion/drop/fault/wire-byte totals and the final state
   digest must be exactly what the uncontrolled reference produces.

   The plant mirrors the recovery engine's delivery semantics: items are
   traced once and shared, each pull clones the pristine packet into the
   single-core instance's pool, and fault plans arm at the item's GLOBAL
   stream index — so the injection schedule is identical however the
   controller reshapes execution. The SCR hand-off surface reuses the
   case's own per-core instance builder with [owned] = the full universe
   (the PR 9 state model), seeds fresh replicas from a quiescent export
   of the single-core state, and folds the converged replica state plus
   the commutative counter deltas back on return. Fault plans and the
   SCR surface are never combined: re-cloning inside the sprayed
   platform would detach armed injections from their packets. *)

open Gunfu

(* Recovery-style plan arming: roll at the global index, mangle the
   clone's bytes for corruptions, register with the plant's plane. *)
let arm_plan ?plan ~plane ~g pkt =
  match (plan, pkt) with
  | Some fg, Some p -> (
      match Faultgen.decide fg g with
      | Some inj ->
          (match inj with
          | Fault.Corrupt_packet -> Faultgen.corrupt fg ~index:g p
          | Fault.Raise_at _ | Fault.Stall_mshrs _ | Fault.Kill_core -> ());
          Fault.inject plane ~packet_id:p.Netcore.Packet.id inj
      | None -> ())
  | _ -> ()

(* Byte-identical to the recovery engine's state digest at one core:
   every universe flow's NF state, its containment state, then the
   commutative counters summed and sorted. *)
let single_digest ~universe (ci : Recovery.core_instance) plane =
  Fingerprint.of_fn (fun fp ->
      for i = 0 to universe - 1 do
        ci.Recovery.ci_flow_digest fp i;
        match Fault.export_containment plane [ i ] with
        | [ (_, consec, poisoned) ] ->
            Fingerprint.feed_int fp consec;
            Fingerprint.feed_bool fp poisoned
        | _ -> ()
      done;
      let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (name, v) ->
          Hashtbl.replace totals name
            (v + Option.value ~default:0 (Hashtbl.find_opt totals name)))
        (ci.Recovery.ci_counters ());
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
      |> List.sort compare
      |> List.iter (fun (name, v) ->
             Fingerprint.feed_string fp name;
             Fingerprint.feed_int fp v))

(* The adaptive pass: one single-core instance with the full universe,
   driven by the closed loop over the traced stream. *)
let adaptive_pass ?plan ?scr ?params ?(epoch = 256) ~initial ~items
    (rc : Recovery.rcase) : Recovery.pass * Adaptive.Driver.outcome =
  let plat = Platform.create ~cfg:rc.Recovery.r_cfg ~cores:1 () in
  let worker = Platform.worker plat 0 in
  let universe = rc.Recovery.r_universe in
  let full = Array.init universe Fun.id in
  let ci = rc.Recovery.r_build worker ~owned:full in
  let plane = Fault.create () in
  let ctx = Worker.ctx worker in
  let emits = ref [] in
  let inputs = ref [] in
  let remaining = ref (List.mapi (fun g item -> (g, item)) items) in
  let source () =
    match !remaining with
    | [] -> None
    | (g, item) :: rest ->
        remaining := rest;
        let pkt = Option.map Netcore.Packet.clone item.Workload.packet in
        Option.iter (Netcore.Packet.Pool.assign ci.Recovery.ci_pool) pkt;
        arm_plan ?plan ~plane ~g pkt;
        let pid = match pkt with Some p -> p.Netcore.Packet.id | None -> -1 in
        inputs := (pid, item.Workload.flow_hint) :: !inputs;
        Some
          {
            Workload.packet = pkt;
            aux = item.Workload.aux;
            flow_hint = item.Workload.flow_hint;
          }
  in
  let on_complete (task : Nftask.t) =
    let dropped =
      Event.equal task.Nftask.event Event.Drop_packet
      || Event.equal task.Nftask.event Event.Match_fail
    in
    let e_pkt, e_pktid, e_wire =
      match task.Nftask.packet with
      | Some p ->
          (Oracle.packet_fingerprint p, p.Netcore.Packet.id, p.Netcore.Packet.wire_len)
      | None -> ("", -1, 0)
    in
    emits :=
      {
        Oracle.e_flow = task.Nftask.flow_hint;
        e_aux = task.Nftask.aux;
        e_event = Event.to_key task.Nftask.event;
        e_dropped = dropped;
        e_wire;
        e_pkt;
        e_pktid;
        e_clock = ctx.Exec_ctx.clock;
      }
      :: !emits
  in
  (* SCR hand-off surface: spawn seeds fresh full replicas from a
     quiescent export of the single-core state; collect folds replica 0's
     converged state back and restores the summed counter deltas. *)
  let scr_cis : Recovery.core_instance array ref = ref [||] in
  let baselines : (string * int) list array ref = ref [||] in
  let surface =
    Option.map
      (fun cores ->
        {
          Adaptive.Driver.ss_cores = cores;
          ss_universe = universe;
          ss_engine = Scaleout.Scr.Engine_rtc;
          ss_spray = Scaleout.Spray.Round_robin;
          ss_spawn =
            (fun () ->
              let plat = Platform.create ~cfg:rc.Recovery.r_cfg ~cores () in
              let cis =
                Array.init cores (fun c ->
                    rc.Recovery.r_build (Platform.worker plat c) ~owned:full)
              in
              let snap = ci.Recovery.ci_export (Array.to_list full) in
              Array.iter
                (fun (rci : Recovery.core_instance) -> rci.Recovery.ci_apply snap)
                cis;
              scr_cis := cis;
              baselines :=
                Array.map
                  (fun (rci : Recovery.core_instance) -> rci.Recovery.ci_counters ())
                  cis;
              Array.map
                (fun (rci : Recovery.core_instance) ->
                  {
                    Scaleout.Scr.sc_worker = rci.Recovery.ci_worker;
                    sc_program = rci.Recovery.ci_program;
                    sc_pool = rci.Recovery.ci_pool;
                    sc_export = (fun i -> rci.Recovery.ci_export [ i ]);
                    sc_apply =
                      (fun r -> rci.Recovery.ci_apply r.Scaleout.Update_log.u_payload);
                    sc_counters = rci.Recovery.ci_counters;
                    sc_flow_digest = rci.Recovery.ci_flow_digest;
                  })
                cis);
          ss_collect =
            (fun _ ->
              let cis = !scr_cis in
              (* Post-barrier, all replicas are convergent: replica 0's
                 export is the truth; upsert it into the plant. *)
              ci.Recovery.ci_apply (cis.(0).Recovery.ci_export (Array.to_list full));
              let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
              Array.iteri
                (fun c (rci : Recovery.core_instance) ->
                  let base = !baselines.(c) in
                  List.iter
                    (fun (name, v) ->
                      let b = Option.value ~default:0 (List.assoc_opt name base) in
                      Hashtbl.replace totals name
                        (v - b
                        + Option.value ~default:0 (Hashtbl.find_opt totals name)))
                    (rci.Recovery.ci_counters ()))
                cis;
              Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
              |> List.sort compare
              |> List.filter (fun (_, v) -> v <> 0)
              |> ci.Recovery.ci_restore);
        })
      scr
  in
  let policy = Adaptive.Policy.create ?params ?scr ~initial () in
  let plant =
    {
      Adaptive.Driver.pl_worker = worker;
      pl_program = ci.Recovery.ci_program;
      pl_source = source;
      pl_plane = plane;
      pl_scr = surface;
    }
  in
  let oc = Adaptive.Driver.run ~epoch ~on_complete ~policy plant in
  let obs =
    {
      Oracle.o_label = "adaptive";
      o_run = oc.Adaptive.Driver.o_run;
      o_emits = List.rev !emits;
      o_inputs = List.rev !inputs;
      o_state = "";
      o_mshr_pending =
        Memsim.Hierarchy.mshr_pending_count ctx.Exec_ctx.mem ~now:ctx.Exec_ctx.clock;
      o_mshr_limit =
        (Memsim.Hierarchy.config ctx.Exec_ctx.mem).Memsim.Hierarchy.mshr_count;
    }
  in
  ( {
      Recovery.p_obs = [ ("adaptive", obs) ];
      p_streams = Oracle.per_flow_streams obs.Oracle.o_emits;
      p_digest = single_digest ~universe ci plane;
    },
    oc )

let totals (p : Recovery.pass) =
  List.fold_left
    (fun (pk, dr, fl, wb) (_, (o : Oracle.observation)) ->
      let r = o.Oracle.o_run in
      ( pk + r.Metrics.packets,
        dr + r.Metrics.drops,
        fl + r.Metrics.faulted,
        wb + r.Metrics.wire_bytes ))
    (0, 0, 0, 0) p.Recovery.p_obs

let diff_totals ~(reference : Recovery.pass) (adaptive : Recovery.pass) =
  let rp, rd, rf, rw = totals reference in
  let ap, ad, af, aw = totals adaptive in
  if rp <> ap then
    Some (Printf.sprintf "completion counts differ: %d (reference) vs %d (adaptive)" rp ap)
  else if rd <> ad then
    Some (Printf.sprintf "drop counts differ: %d (reference) vs %d (adaptive)" rd ad)
  else if rf <> af then
    Some (Printf.sprintf "faulted counts differ: %d (reference) vs %d (adaptive)" rf af)
  else if rw <> aw then
    Some (Printf.sprintf "wire bytes differ: %d (reference) vs %d (adaptive)" rw aw)
  else None

type outcome = {
  ao_case : string;
  ao_packets : int;
  ao_epoch : int;
  ao_moves : int;
  ao_final : Adaptive.Config.t;
  ao_decisions : Adaptive.Driver.decision list;
  ao_run : Metrics.run;
  ao_reference : Recovery.pass;
  ao_adaptive : Recovery.pass;
  ao_violations : (string * Invariants.violation) list;
  ao_divergence : string option;
  ao_repro : string;
}

let check_rcase ?plan ?scr ?params ?(epoch = 256)
    ?(initial = Adaptive.Config.default) (rc : Recovery.rcase) : outcome =
  (match (plan, scr) with
  | Some _, Some _ ->
      invalid_arg "Adaptcheck.check_rcase: fault plans and SCR hand-off cannot be combined"
  | _ -> ());
  (* Trace ONCE and share: a case's generator may be stateful, so a
     second [r_trace] would draw a different stream. *)
  let items = rc.Recovery.r_trace () in
  let reference = Recovery.observe_platform ?plan ~items ~cores:1 rc in
  let adaptive, oc = adaptive_pass ?plan ?scr ?params ~epoch ~initial ~items rc in
  let per_obs =
    (* With an SCR leg, completions carry replica-pool packet ids, so the
       per-observation input/emit id matching does not apply; equality is
       then carried by the streams + totals + digest comparison. *)
    if scr = None then
      List.concat_map
        (fun (label, o) -> List.map (fun viol -> (label, viol)) (Invariants.check o))
        adaptive.Recovery.p_obs
    else []
  in
  let driver_viol =
    List.map (fun viol -> ("driver", viol)) (Invariants.check_adaptive oc)
  in
  let divergence =
    match diff_totals ~reference adaptive with
    | Some d -> Some d
    | None -> Recovery.diff_passes ~reference adaptive
  in
  {
    ao_case = rc.Recovery.r_name;
    ao_packets = rc.Recovery.r_packets;
    ao_epoch = epoch;
    ao_moves = oc.Adaptive.Driver.o_moves;
    ao_final = oc.Adaptive.Driver.o_final;
    ao_decisions = oc.Adaptive.Driver.o_decisions;
    ao_run = oc.Adaptive.Driver.o_run;
    ao_reference = reference;
    ao_adaptive = adaptive;
    ao_violations = per_obs @ driver_viol;
    ao_divergence = divergence;
    ao_repro =
      Printf.sprintf "gunfu_cli adapt --seed %d --packets %d --epoch %d"
        rc.Recovery.r_seed rc.Recovery.r_packets epoch;
  }

let passed (oc : outcome) = oc.ao_violations = [] && oc.ao_divergence = None

let pp_outcome ppf (oc : outcome) =
  Fmt.pf ppf "%s packets=%d epoch=%d windows=%d moves=%d final=%s: %s" oc.ao_case
    oc.ao_packets oc.ao_epoch
    (List.length oc.ao_decisions)
    oc.ao_moves
    (Adaptive.Config.label oc.ao_final)
    (if passed oc then "reference equality"
     else
       match oc.ao_divergence with
       | Some d -> "DIVERGED: " ^ d
       | None -> "INVARIANT VIOLATIONS")
