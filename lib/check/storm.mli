(** Churn-storm chaos scenarios: sustained control-plane and capacity
    pressure, each a deterministic function of its seed and judged by
    built-in invariants. A storm never raises — uncontained exceptions are
    caught and reported as failures in the {!report}. *)

type report = {
  st_name : string;
  st_seed : int;
  st_metrics : (string * int) list;  (** scenario-specific counters *)
  st_failures : string list;  (** empty = the storm held *)
}

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit

(** PFCP session storm: an SMF admits a session universe over real encoded
    PFCP exchanges into a deliberately undersized UPF ([capacity] <
    [universe]), then the {!Traffic.Mgw.churn} generator tears sessions
    down and re-sets them up between data-plane pulls (quiescent
    boundaries under run-to-completion). Checks: capacity never exceeded,
    full-table admissions rejected with [cause_no_resources], bogus
    deletions answered with [cause_session_not_found], drops exactly the
    packets that raced a teardown, encapsulations exactly the live-session
    packets, and the UPF's session count agreeing with the SMF's books. *)
val pfcp_storm :
  ?seed:int -> ?capacity:int -> ?universe:int -> ?packets:int -> ?rate_ppm:int ->
  unit -> report

(** Cuckoo-capacity churn with Migration rebalancing: a dynamic NAT whose
    flow universe is several times its table capacity (the learner's
    [Evict_lru] overflow policy churns entries), then [moves] ping-pong
    rebalancing hops — export every installed mapping, evict, import into
    a twin instance — each hop verified byte-preserving (the re-export
    must equal the snapshot), with a post-rebalance burst proving the
    table still learns. *)
val nat_rebalance_storm :
  ?seed:int -> ?capacity:int -> ?universe:int -> ?packets:int -> ?moves:int ->
  unit -> report

(** Overload: the full differential-oracle executor matrix and invariant
    battery under a saturating fault plan (default 100,000 ppm). *)
val overload_storm :
  ?seed:int -> ?profile:string -> ?packets:int -> ?rate_ppm:int -> unit -> report

(** State-Compute Replication under overload: two generated programs
    sprayed across [cores] full replicas (seeded spray) with a
    saturating fault plan; requires single-core reference equality,
    replica convergence and update-stream conservation
    ({!Scrcheck.check_rcase}) while the fault plane quarantines roughly
    one packet in ten. Selected by [gunfu_cli storm --model scr]. *)
val scr_storm :
  ?seed:int -> ?packets:int -> ?rate_ppm:int -> ?cores:int -> unit -> report

(** All three storms at one seed. *)
val all : ?seed:int -> unit -> report list
