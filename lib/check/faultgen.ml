(* Seeded, deterministic fault-injection plans.

   A plan is a pure function from (seed, pull index) to an optional
   injection, realised with a splitmix64-style avalanche hash — no mutable
   RNG state, so arming the same plan against two executor runs of the same
   case yields bit-identical schedules regardless of how each executor
   interleaves its work. {!instrument} wraps a {!Gunfu.Workload.source}:
   at pull time it keys the decided injection by the *actual* packet id of
   the pulled packet (ids are run-local — a global counter — so the key
   must be read at pull time, not precomputed), registers it in the run's
   fault plane, and for [Corrupt_packet] also mangles the packet's header
   bytes deterministically so the corruption itself is observable and
   identical across executors. *)

open Gunfu

type t = {
  seed : int;
  rate_ppm : int;  (* injection probability per pulled packet, in ppm *)
}

let default_rate_ppm = 10_000 (* 1% *)

let create ?(rate_ppm = default_rate_ppm) ~seed () =
  if rate_ppm < 0 || rate_ppm > 1_000_000 then
    invalid_arg "Faultgen.create: rate_ppm must be within [0, 1000000]";
  { seed; rate_ppm }

let seed t = t.seed
let rate_ppm t = t.rate_ppm

(* splitmix64 finalizer: a full-avalanche bijection on 64 bits. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Independent non-negative draw per (seed, index, salt). *)
let draw t ~index ~salt =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int t.seed) 0x9e3779b97f4a7c15L)
      (Int64.of_int ((index * 0x10001) lxor (salt * 0x5bd1e995)))
  in
  Int64.to_int (Int64.logand (mix64 z) 0x3FFFFFFFFFFFFFFFL)

(* The injection decided for pull index [index], if any. Mix: 40% corrupted
   packets, 40% action faults (countdown 0..2 — every generated program
   runs at least a classifier, so >= 4 guarded actions per packet and the
   countdown always fires), 20% MSHR-starvation stalls. *)
let decide t index =
  if t.rate_ppm = 0 then None
  else if draw t ~index ~salt:0 mod 1_000_000 >= t.rate_ppm then None
  else
    let kind = draw t ~index ~salt:1 mod 10 in
    if kind < 4 then Some Fault.Corrupt_packet
    else if kind < 8 then
      Some
        (Fault.Raise_at
           { countdown = draw t ~index ~salt:2 mod 3; reason = Fault.Action_raise })
    else Some (Fault.Stall_mshrs (100 + (draw t ~index ~salt:3 mod 400)))

(* Deterministically mangle a packet marked [Corrupt_packet]: truncate the
   valid header region below a parseable Eth+IPv4 prefix and scribble over
   the leading bytes. The task never reaches an action (it is quarantined
   at load), but the corrupted bytes are part of the oracle's packet
   fingerprint, so the mangle itself must be a pure function of
   (seed, index, packet). *)
let corrupt t ~index (p : Netcore.Packet.t) =
  let h = draw t ~index ~salt:4 in
  let keep = 4 + (h mod 10) in
  p.Netcore.Packet.hdr_len <- min p.Netcore.Packet.hdr_len keep;
  let n = min (Bytes.length p.Netcore.Packet.buf) 16 in
  for i = 0 to n - 1 do
    Bytes.set p.Netcore.Packet.buf i
      (Char.chr (Char.code (Bytes.get p.Netcore.Packet.buf i) lxor ((h + i) land 0xFF)))
  done

(* Core-kill schedule (the platform-level Kill_core fault class). Chaos
   control, not probability: whenever the platform has a core to spare the
   plan always kills exactly one — the victim core (salt 6) after the
   global pull with index [g] (salt 5), with [g] confined to the middle
   half of the run so the victim has both state to lose and work left to
   redirect. Single-core platforms are never killed (no survivor could
   adopt), matching Kill_core's executor-inertness. *)
let decide_kill t ~cores ~packets =
  if cores < 2 || packets <= 0 then None
  else
    let lo = packets / 4 in
    let span = max 1 ((3 * packets / 4) - lo) in
    let g = lo + (draw t ~index:packets ~salt:5 mod span) in
    let victim = draw t ~index:packets ~salt:6 mod cores in
    Some (victim, g)

(* Count of injections the plan decides over the first [packets] indices —
   what a run offered exactly [packets] pulls will arm. *)
let planned t ~packets =
  let n = ref 0 in
  for i = 0 to packets - 1 do
    if decide t i <> None then incr n
  done;
  !n

let instrument t ~plane (src : Workload.source) : Workload.source =
  let index = ref 0 in
  fun () ->
    match src () with
    | None -> None
    | Some item ->
        let i = !index in
        incr index;
        (match (decide t i, item.Workload.packet) with
        | Some inj, Some p ->
            Fault.inject plane ~packet_id:p.Netcore.Packet.id inj;
            (match inj with Fault.Corrupt_packet -> corrupt t ~index:i p | _ -> ())
        | Some _, None | None, _ -> ());
        Some item
