(* The State-Compute Replication oracle axis: drive the same recovery
   cases ({!Recovery.rcase} — generated programs and on-disk spec
   compositions) through the SCR executor family and require behavioural
   equality with a single-core run-to-completion reference.

   Replica construction reuses the recovery engine's per-core instance
   builders with [owned] = the FULL universe — that is exactly the SCR
   state model: every core starts with a complete replica, and the
   update stream keeps them convergent as sprayed packets mutate state
   on arbitrary cores.

   The reference is {!Recovery.observe_platform} at one core, which
   degenerates to plain RTC over the global stream (and, with one core,
   SCR itself emits updates to nobody — so the comparison isolates the
   spray + update-stream machinery, not a different executor). Equality
   is judged on per-flow emit-content streams (SCR emits merged in
   global-arrival order), completion/drop/fault/wire-byte totals and
   the location-independent state digest; {!Invariants.check} runs on
   every core's observation and {!Invariants.check_scr} on the update
   stream. Fault plans arm at each item's GLOBAL stream index
   ({!Faultgen.decide}), so the injection schedule is identical no
   matter how packets are sprayed. *)

open Gunfu

let engine_name = function
  | Scaleout.Scr.Engine_rtc -> "rtc"
  | Scaleout.Scr.Engine_batch b -> Printf.sprintf "batch%d" b

(* Same injection semantics as the recovery engine's plan arming, shaped
   for {!Scaleout.Scr.run}'s [arm] hook: roll the plan at the item's
   global index, mangle the clone's bytes for corruptions, register the
   injection with the processing core's fault plane. *)
let arm_plan plan ~plane ~g pkt =
  match Faultgen.decide plan g with
  | Some inj ->
      (match inj with
      | Fault.Corrupt_packet -> Faultgen.corrupt plan ~index:g pkt
      | Fault.Raise_at _ | Fault.Stall_mshrs _ | Fault.Kill_core -> ());
      Fault.inject plane ~packet_id:pkt.Netcore.Packet.id inj
  | None -> ()

(* One SCR platform pass over a recovery case: full-universe replicas on
   every core, the traced stream sprayed and executed, observations
   collected per core (completion order) and merged in global-arrival
   order for the per-flow streams. *)
let scr_pass ?plan ?(spray = Scaleout.Spray.Round_robin)
    ?(engine = Scaleout.Scr.Engine_rtc) ?items ~cores (rc : Recovery.rcase) :
    Recovery.pass * Scaleout.Scr.result =
  let plat = Platform.create ~cfg:rc.Recovery.r_cfg ~cores () in
  let universe = rc.Recovery.r_universe in
  let full = Array.init universe Fun.id in
  let cis =
    Array.init cores (fun c -> rc.Recovery.r_build (Platform.worker plat c) ~owned:full)
  in
  let replicas =
    Array.map
      (fun (ci : Recovery.core_instance) ->
        {
          Scaleout.Scr.sc_worker = ci.Recovery.ci_worker;
          sc_program = ci.Recovery.ci_program;
          sc_pool = ci.Recovery.ci_pool;
          sc_export = (fun i -> ci.Recovery.ci_export [ i ]);
          sc_apply = (fun r -> ci.Recovery.ci_apply r.Scaleout.Update_log.u_payload);
          sc_counters = ci.Recovery.ci_counters;
          sc_flow_digest = ci.Recovery.ci_flow_digest;
        })
      cis
  in
  let items = match items with Some l -> l | None -> rc.Recovery.r_trace () in
  let slots = Scaleout.Spray.assign spray ~cores items in
  (* (global index, emit), newest-first per core. *)
  let emits = Array.make cores [] in
  let on_complete ~core ~g ~seq:_ (task : Nftask.t) =
    let ctx = Worker.ctx cis.(core).Recovery.ci_worker in
    let dropped =
      Event.equal task.Nftask.event Event.Drop_packet
      || Event.equal task.Nftask.event Event.Match_fail
    in
    let e_pkt, e_pktid, e_wire =
      match task.Nftask.packet with
      | Some p ->
          (Oracle.packet_fingerprint p, p.Netcore.Packet.id, p.Netcore.Packet.wire_len)
      | None -> ("", -1, 0)
    in
    emits.(core) <-
      ( g,
        {
          Oracle.e_flow = task.Nftask.flow_hint;
          e_aux = task.Nftask.aux;
          e_event = Event.to_key task.Nftask.event;
          e_dropped = dropped;
          e_wire;
          e_pkt;
          e_pktid;
          e_clock = ctx.Exec_ctx.clock;
        } )
      :: emits.(core)
  in
  let arm = Option.map (fun p ~plane ~g pkt -> arm_plan p ~plane ~g pkt) plan in
  let res =
    Scaleout.Scr.run ?arm ~on_complete ~engine ~replicas ~slots ~universe items
  in
  let obs =
    List.init cores (fun c ->
        (* Completions arrive in pull order, which per core IS delivery
           order — so the emit stream doubles as the input record. *)
        let es = List.rev_map snd emits.(c) in
        let ctx = Worker.ctx cis.(c).Recovery.ci_worker in
        let label = Printf.sprintf "scr-core%d" c in
        ( label,
          {
            Oracle.o_label = label;
            o_run = res.Scaleout.Scr.sr_runs.(c);
            o_emits = es;
            o_inputs =
              List.map (fun (e : Oracle.emit) -> (e.Oracle.e_pktid, e.Oracle.e_flow)) es;
            o_state = "";
            o_mshr_pending =
              Memsim.Hierarchy.mshr_pending_count ctx.Exec_ctx.mem
                ~now:ctx.Exec_ctx.clock;
            o_mshr_limit =
              (Memsim.Hierarchy.config ctx.Exec_ctx.mem).Memsim.Hierarchy.mshr_count;
          } ))
  in
  let merged =
    Array.to_list emits |> List.concat
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> List.map snd
  in
  ( {
      Recovery.p_obs = obs;
      p_streams = Oracle.per_flow_streams merged;
      p_digest = res.Scaleout.Scr.sr_state_digest;
    },
    res )

(* Totals across a pass's live cores, from the runs themselves. *)
let totals (p : Recovery.pass) =
  List.fold_left
    (fun (pk, dr, fl, wb) (_, (o : Oracle.observation)) ->
      let r = o.Oracle.o_run in
      ( pk + r.Metrics.packets,
        dr + r.Metrics.drops,
        fl + r.Metrics.faulted,
        wb + r.Metrics.wire_bytes ))
    (0, 0, 0, 0) p.Recovery.p_obs

(* First count difference between reference and SCR totals, or [None] —
   the stream/digest comparison is {!Recovery.diff_passes}'. *)
let diff_totals ~(reference : Recovery.pass) (scr : Recovery.pass) =
  let rp, rd, rf, rw = totals reference in
  let sp, sd, sf, sw = totals scr in
  if rp <> sp then
    Some (Printf.sprintf "completion counts differ: %d (reference) vs %d (scr)" rp sp)
  else if rd <> sd then
    Some (Printf.sprintf "drop counts differ: %d (reference) vs %d (scr)" rd sd)
  else if rf <> sf then
    Some (Printf.sprintf "faulted counts differ: %d (reference) vs %d (scr)" rf sf)
  else if rw <> sw then
    Some (Printf.sprintf "wire bytes differ: %d (reference) vs %d (scr)" rw sw)
  else None

type outcome = {
  so_case : string;
  so_cores : int;
  so_packets : int;
  so_engine : string;
  so_stats : Scaleout.Scr.stats;
  so_reference : Recovery.pass;
  so_scr : Recovery.pass;
  so_converged : bool;
  so_violations : (string * Invariants.violation) list;
  so_divergence : string option;
  so_repro : string;
}

let check_rcase ?plan ?spray ?engine ~cores (rc : Recovery.rcase) : outcome =
  let engine = Option.value ~default:Scaleout.Scr.Engine_rtc engine in
  (* Trace ONCE and share: a case's generator may be stateful (the UPF
     composition's mobile gateway), so a second [r_trace] would draw a
     different stream. *)
  let items = rc.Recovery.r_trace () in
  let reference = Recovery.observe_platform ?plan ~items ~cores:1 rc in
  let scr, res = scr_pass ?plan ?spray ~engine ~items ~cores rc in
  let completions =
    List.fold_left
      (fun a (_, (o : Oracle.observation)) ->
        a
        + List.length
            (List.filter (fun (e : Oracle.emit) -> e.Oracle.e_flow >= 0) o.Oracle.o_emits))
      0 scr.Recovery.p_obs
  in
  let per_core =
    List.concat_map
      (fun (label, o) -> List.map (fun viol -> (label, viol)) (Invariants.check o))
      scr.Recovery.p_obs
  in
  let stream =
    List.map (fun viol -> ("scr", viol)) (Invariants.check_scr ~completions ~cores res)
  in
  let divergence =
    match diff_totals ~reference scr with
    | Some d -> Some d
    | None -> Recovery.diff_passes ~reference scr
  in
  {
    so_case = rc.Recovery.r_name;
    so_cores = cores;
    so_packets = rc.Recovery.r_packets;
    so_engine = engine_name engine;
    so_stats = res.Scaleout.Scr.sr_stats;
    so_reference = reference;
    so_scr = scr;
    so_converged = res.Scaleout.Scr.sr_converged;
    so_violations = per_core @ stream;
    so_divergence = divergence;
    so_repro =
      Printf.sprintf "gunfu_cli scr --cores %d --seed %d --packets %d" cores
        rc.Recovery.r_seed rc.Recovery.r_packets;
  }

let passed (oc : outcome) = oc.so_violations = [] && oc.so_divergence = None

let pp_outcome ppf (oc : outcome) =
  Fmt.pf ppf
    "%s cores=%d packets=%d engine=%s records=%d applied=%d coalesced=%d \
     stale=%d lag=%d: %s"
    oc.so_case oc.so_cores oc.so_packets oc.so_engine
    oc.so_stats.Scaleout.Scr.st_records oc.so_stats.Scaleout.Scr.st_applied
    oc.so_stats.Scaleout.Scr.st_coalesced oc.so_stats.Scaleout.Scr.st_stale
    oc.so_stats.Scaleout.Scr.st_max_lag
    (if passed oc then "converged, reference equality"
     else
       match oc.so_divergence with
       | Some d -> "DIVERGED: " ^ d
       | None -> "INVARIANT VIOLATIONS")
