(* Churn-storm chaos scenarios: sustained control-plane and capacity
   pressure that the steady-state oracle sweeps never generate.

   Three storms, each a deterministic function of its seed:

   - [pfcp_storm]: a UPF admitted over real encoded PFCP — the SMF drives
     Session Establishment / Deletion exchanges against the UPF's N4 agent
     while the Mgw churn generator tears sessions down and re-sets them up
     mid-traffic. Capacity is undersized on purpose: admissions while full
     must be rejected with [cause_no_resources], deletions of never-
     admitted sessions with [cause_session_not_found], and the data plane
     (run to completion between control ops — a quiescent boundary, like
     the recovery journal's checkpoints) must drop exactly the packets
     racing a teardown.

   - [nat_rebalance_storm]: a dynamic NAT at cuckoo capacity under a flow
     universe several times its table size (the learner's overflow policy
     churns entries), interleaved with Migration-layer rebalancing: all
     installed mappings repeatedly exported, evicted and imported into a
     twin instance, ping-pong. Every hop must preserve the mapping bytes
     (the re-export must equal the snapshot it was restored from) and the
     table must keep learning afterwards.

   - [overload_storm]: the full differential-oracle executor matrix under
     an overload fault plan (default 100,000 ppm — one packet in ten
     corrupted, raised or stalled): every executor must contain every
     fault identically and the invariant battery must stay green.

   A storm never raises: uncontained exceptions are caught and reported
   as failures, which is the point of a chaos scenario. *)

open Gunfu

type report = {
  st_name : string;
  st_seed : int;
  st_metrics : (string * int) list;
  st_failures : string list;
}

let passed r = r.st_failures = []

let pp_report ppf r =
  Format.fprintf ppf "storm %-14s seed %-4d " r.st_name r.st_seed;
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d " k v) r.st_metrics;
  if passed r then Format.fprintf ppf "ok"
  else
    List.iter (fun f -> Format.fprintf ppf "@,  FAILURE: %s" f) r.st_failures

(* ----- PFCP session storm ----- *)

let pfcp_storm ?(seed = 1) ?(capacity = 48) ?(universe = 72) ?(packets = 320)
    ?(rate_ppm = 150_000) () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let metrics = ref [] in
  (try
     let worker = Progen.fresh_worker () in
     let layout = Worker.layout worker in
     let upf = Nfs.Upf.create_empty layout ~name:"upf" ~capacity ~n_pdrs:4 () in
     let program = Nfs.Upf.program upf in
     let smf = Nfs.Smf.create () in
     let mgw = Traffic.Mgw.create ~seed ~n_sessions:universe ~n_pdrs:4 () in
     let churn = Traffic.Mgw.churn ~seed:(seed + 1) ~rate_ppm mgw in
     let ran_ip = upf.Nfs.Upf.ran_addrs.(0) in
     let established : (int, int64) Hashtbl.t = Hashtbl.create capacity in
     let accepted = ref 0
     and rejected_full = ref 0
     and deleted = ref 0
     and not_found = ref 0
     and data_hits = ref 0
     and data_miss = ref 0 in
     let guard_capacity () =
       if upf.Nfs.Upf.n_active > capacity then
         fail "n_active %d exceeds capacity %d" upf.Nfs.Upf.n_active capacity
     in
     let setup i =
       let s = Traffic.Mgw.session mgw i in
       match
         Nfs.Smf.establish smf upf ~ue_ip:s.Traffic.Mgw.ue_ip
           ~teid:s.Traffic.Mgw.teid ~ran_ip
       with
       | Ok up_seid ->
           Hashtbl.replace established i up_seid;
           incr accepted
       | Error c when c = Netcore.Pfcp.cause_no_resources -> incr rejected_full
       | Error c -> fail "session %d: unexpected rejection cause %d" i c
     in
     let teardown i =
       match Hashtbl.find_opt established i with
       | Some up_seid ->
           let c = Nfs.Smf.delete smf upf ~up_seid in
           if c = Netcore.Pfcp.cause_accepted then begin
             Hashtbl.remove established i;
             incr deleted
           end
           else fail "session %d: deletion rejected with cause %d" i c
       | None ->
           (* never admitted (or already gone): a deletion for a made-up
              SEID must come back session-not-found, not crash the agent *)
           let c = Nfs.Smf.delete smf upf ~up_seid:(Int64.of_int (0x5EED0000 + i)) in
           if c = Netcore.Pfcp.cause_session_not_found then incr not_found
           else fail "bogus deletion for %d: cause %d, not session-not-found" i c
     in
     (* admission storm: offer the whole universe to an undersized UPF *)
     for i = 0 to universe - 1 do
       setup i;
       guard_capacity ()
     done;
     (* churn-driven run: control ops execute at pull boundaries *)
     let remaining = ref packets in
     let rec source () =
       if !remaining = 0 then None
       else
         match Traffic.Mgw.churn_next churn with
         | Traffic.Mgw.Churn_teardown i ->
             teardown i;
             guard_capacity ();
             source ()
         | Traffic.Mgw.Churn_setup i ->
             setup i;
             guard_capacity ();
             source ()
         | Traffic.Mgw.Churn_data (si, _pdr, pkt) ->
             decr remaining;
             if Hashtbl.mem established si then incr data_hits else incr data_miss;
             Some { Workload.packet = Some pkt; aux = 0; flow_hint = si }
     in
     let run = Rtc.run ~label:"pfcp-storm" worker program source in
     if run.Metrics.packets <> packets then
       fail "run pulled %d packets, offered %d" run.Metrics.packets packets;
     if run.Metrics.drops <> !data_miss then
       fail "drops %d but %d packets raced a teardown" run.Metrics.drops !data_miss;
     if upf.Nfs.Upf.encapsulated <> !data_hits then
       fail "encapsulated %d of %d live-session packets" upf.Nfs.Upf.encapsulated
         !data_hits;
     (* the session arena is a bump allocator: every accepted admission
        consumes a fresh slot and deletion only detaches the classifier
        keys — under churn the arena exhausts even though the live set
        shrinks, which is exactly this storm's capacity squeeze *)
     if upf.Nfs.Upf.n_active <> !accepted then
       fail "bump arena holds %d slots after %d admissions" upf.Nfs.Upf.n_active
         !accepted;
     if Hashtbl.length established <> !accepted - !deleted then
       fail "SMF books %d sessions, expected %d admitted - %d deleted"
         (Hashtbl.length established) !accepted !deleted;
     if !rejected_full = 0 then
       fail "undersized UPF (capacity %d < universe %d) never rejected" capacity
         universe;
     metrics :=
       [
         ("accepted", !accepted);
         ("rejected_full", !rejected_full);
         ("deleted", !deleted);
         ("not_found", !not_found);
         ("data_hits", !data_hits);
         ("data_miss", !data_miss);
         ("churn_events", Traffic.Mgw.churn_events churn);
         ("active", upf.Nfs.Upf.n_active);
       ]
   with e -> fail "uncontained exception: %s" (Printexc.to_string e));
  {
    st_name = "pfcp-session";
    st_seed = seed;
    st_metrics = !metrics;
    st_failures = List.rev !failures;
  }

(* ----- cuckoo-capacity NAT churn with Migration rebalancing ----- *)

let nat_rebalance_storm ?(seed = 1) ?(capacity = 64) ?(universe = 192)
    ?(packets = 480) ?(moves = 6) () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let metrics = ref [] in
  (try
     let worker = Progen.fresh_worker () in
     let layout = Worker.layout worker in
     let mk name =
       Nfs.Nat.create layout ~name ~overflow:Structures.Cuckoo.Evict_lru
         ~n_flows:capacity ()
     in
     let nat_a = mk "nat_a" and nat_b = mk "nat_b" in
     let gen = Progen.flowgen_for ~profile:"zipf" ~seed ~n_flows:universe in
     let all_flows = List.init universe (Traffic.Flowgen.flow gen) in
     let pool = Netcore.Packet.Pool.create layout ~count:32 in
     let burst nat ~seed ~packets =
       let run =
         Rtc.run ~label:"nat-storm" worker
           (Nfs.Nat.dynamic_program nat)
           (Progen.make_source ~profile:"zipf" ~seed ~gen ~pool ~packets)
       in
       (run.Metrics.packets, run.Metrics.drops)
     in
     (* capacity churn: a universe 3x the table size through the learner,
        with idle-timeout sweeps between rounds so entries genuinely cycle
        through the cuckoo table (insert -> expire -> reinstall) *)
     let rounds = 4 in
     let expired = ref 0
     and drops = ref 0 in
     for r = 0 to rounds - 1 do
       let pulled, d = burst nat_a ~seed:(seed + r) ~packets:(packets / rounds) in
       drops := !drops + d;
       if pulled <> packets / rounds then
         fail "round %d pulled %d of %d" r pulled (packets / rounds);
       if r < rounds - 1 then
         expired := !expired + Nfs.Nat.expire nat_a ~now:max_int ~idle_cycles:0
     done;
     if !expired = 0 then fail "idle sweeps expired nothing; no table churn";
     if nat_a.Nfs.Nat.learned <= capacity then
       fail "learner installed only %d mappings; no capacity churn at %d"
         nat_a.Nfs.Nat.learned capacity;
     (* rebalancing ping-pong: every hop must preserve the mapping bytes *)
     let imported = ref 0 in
     let src = ref nat_a and dst = ref nat_b in
     for hop = 1 to moves do
       let blob = Nfs.Migration.export_nat !src all_flows in
       Nfs.Migration.evict_nat !src all_flows;
       imported := !imported + Nfs.Migration.import_nat !dst blob;
       let back = Nfs.Migration.export_nat !dst all_flows in
       if not (String.equal blob back) then
         fail "hop %d: re-export differs from the snapshot (%d vs %d bytes)" hop
           (String.length blob) (String.length back);
       let tmp = !src in
       src := !dst;
       dst := tmp
     done;
     (* the holder must keep learning after the last hop *)
     let holder = if moves mod 2 = 0 then nat_a else nat_b in
     let before = holder.Nfs.Nat.learned in
     let pulled2, _ = burst holder ~seed:(seed + 7) ~packets:(packets / 4) in
     if pulled2 <> packets / 4 then fail "post-rebalance burst pulled %d" pulled2;
     if holder.Nfs.Nat.learned < before then
       fail "learned count went backwards after rebalancing";
     metrics :=
       [
         ("learned", nat_a.Nfs.Nat.learned + nat_b.Nfs.Nat.learned);
         ("expired", !expired);
         ("imported", !imported);
         ("moves", moves);
         ("drops", !drops);
       ]
   with e -> fail "uncontained exception: %s" (Printexc.to_string e));
  {
    st_name = "nat-rebalance";
    st_seed = seed;
    st_metrics = !metrics;
    st_failures = List.rev !failures;
  }

(* ----- overload under the fault plane ----- *)

let overload_storm ?(seed = 1) ?(profile = "mix") ?(packets = 96)
    ?(rate_ppm = 100_000) () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let metrics = ref [] in
  (try
     let case = Progen.case ~seed ~profile ~packets in
     let plan = Faultgen.create ~rate_ppm ~seed () in
     (match Oracle.check_case ~plan case with
     | Some d -> fail "divergence under overload: %s" d.Oracle.d_detail
     | None -> ());
     List.iter
       (fun (exec, v) ->
         fail "invariant violation under %s: %s/%s" exec v.Invariants.v_rule
           v.Invariants.v_detail)
       (Invariants.check_case ~plan case);
     let obs =
       Oracle.observe ~plan:(Faultgen.create ~rate_ppm ~seed ()) Oracle.reference
         (case.Oracle.c_build ~packets)
     in
     let r = obs.Oracle.o_run in
     if r.Metrics.faulted = 0 then
       fail "overload plan at %d ppm injected nothing over %d packets" rate_ppm
         packets;
     metrics :=
       [
         ("packets", r.Metrics.packets);
         ("faulted", r.Metrics.faulted);
         ("drops", r.Metrics.drops);
         ("planned", Faultgen.planned plan ~packets);
       ]
   with e -> fail "uncontained exception: %s" (Printexc.to_string e));
  {
    st_name = "overload";
    st_seed = seed;
    st_metrics = !metrics;
    st_failures = List.rev !failures;
  }

(* ----- SCR update-stream storm ----- *)

(* State-Compute Replication under overload: spray two generated programs
   (a catalog chain profile and a synthetic one, whichever the seeds
   draw) across [cores] full replicas with a seeded spray and a
   saturating fault plan, and require single-core reference equality,
   replica convergence and update-stream conservation while roughly one
   packet in ten faults — the update records must carry containment
   state as faithfully as NF state. *)
let scr_storm ?(seed = 1) ?(packets = 96) ?(rate_ppm = 100_000) ?(cores = 4) ()
    =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let metrics = ref [] in
  (try
     let rcases =
       [
         Recovery.gen_rcase ~seed ~profile:"mix" ~packets;
         Recovery.gen_rcase ~seed:(seed + 1) ~profile:"zipf" ~packets;
       ]
     in
     let records = ref 0 in
     let applied = ref 0 in
     let stale = ref 0 in
     let faulted = ref 0 in
     List.iter
       (fun rc ->
         let plan = Faultgen.create ~rate_ppm ~seed:rc.Recovery.r_seed () in
         let oc =
           Scrcheck.check_rcase ~plan ~spray:(Scaleout.Spray.Seeded seed) ~cores
             rc
         in
         let st = oc.Scrcheck.so_stats in
         records := !records + st.Scaleout.Scr.st_records;
         applied := !applied + st.Scaleout.Scr.st_applied;
         stale := !stale + st.Scaleout.Scr.st_stale;
         List.iter
           (fun (_, (o : Oracle.observation)) ->
             faulted := !faulted + o.Oracle.o_run.Metrics.faulted)
           oc.Scrcheck.so_scr.Recovery.p_obs;
         (match oc.Scrcheck.so_divergence with
         | Some d -> fail "scr diverged on %s: %s" oc.Scrcheck.so_case d
         | None -> ());
         List.iter
           (fun (where, v) ->
             fail "invariant violation (%s) on %s: %s/%s" where
               oc.Scrcheck.so_case v.Invariants.v_rule v.Invariants.v_detail)
           oc.Scrcheck.so_violations;
         if not oc.Scrcheck.so_converged then
           fail "replicas failed to converge on %s" oc.Scrcheck.so_case)
       rcases;
     if !faulted = 0 then
       fail "overload plan at %d ppm injected nothing over %d packets" rate_ppm
         (packets * List.length rcases);
     metrics :=
       [
         ("cases", List.length rcases);
         ("cores", cores);
         ("records", !records);
         ("applied", !applied);
         ("stale", !stale);
         ("faulted", !faulted);
       ]
   with e -> fail "uncontained exception: %s" (Printexc.to_string e));
  {
    st_name = "scr-overload";
    st_seed = seed;
    st_metrics = !metrics;
    st_failures = List.rev !failures;
  }

let all ?(seed = 1) () =
  [ pfcp_storm ~seed (); nat_rebalance_storm ~seed (); overload_storm ~seed () ]
