(* Crash-tolerant scale-out: core-failure injection with checkpoint/replay
   recovery.

   A recovery case runs one generated (or spec-assembled) program across a
   share-nothing multi-core platform: RSS pins each flow to one core
   ({!Gunfu.Platform.Recovery.owner}), cores own disjoint flow subsets of
   a common universe, and each core can journal its input stream — a state
   checkpoint every [epoch] pulls plus a bounded replay log of the pulls
   since (the {!Gunfu.Platform.Recovery} journal).

   The chaos axis kills one core mid-run ({!Faultgen.decide_kill}): the
   victim's stream is truncated right after global pull [g_kill] and a
   surviving core adopts its flows — restore the victim's last checkpoint
   through the Migration layer, replay the logged suffix (re-arming the
   injections the victim recorded, never re-drawing or re-corrupting),
   then absorb the victim's redirected remainder. Replayed completions are
   deduplicated by run-local packet id (log clones keep their id precisely
   so a replay looks like the same packet) and verified content-equal to
   the victim's originals: the exactly-once emit policy.

   Correctness is judged against a *failure-free reference*: the same
   platform, sharding and injection schedule without the kill. A recovered
   run must match it on per-flow emit-content streams and on a
   location-independent state digest — per-flow NF state read from each
   flow's final owner, commutative counters summed over live cores —
   while {!Invariants.check_recovery} enforces the replay-aware
   conservation law (live completions = offered + replayed).

   Executors are RTC per core: a checkpoint taken between pulls is
   quiescent (every previously pulled packet has fully completed), which
   is what makes the journal's pull-boundary snapshots consistent. *)

open Gunfu

(* ----- per-core instances ----- *)

(* One core's freshly built copy of the program, populated with only the
   flows that core owns, plus the closures the recovery engine needs:
   export/import of per-flow state (universe flow ids -> named snapshot
   blobs through the Migration layer), commutative counters (import ADDS
   — victim increments and adopter increments are disjoint), and a
   location-independent per-flow digest. *)
type core_instance = {
  ci_worker : Worker.t;
  ci_program : Program.t;
  ci_pool : Netcore.Packet.Pool.pool;
  ci_export : int list -> (string * string) list;
  ci_import : (string * string) list -> unit;
  ci_apply : (string * string) list -> unit;
      (* SCR update upsert: overwrite resident flows, admit absent ones
         (the Migration apply surface) — unlike ci_import, safe on an
         instance that already holds the flow *)
  ci_counters : unit -> (string * int) list;
  ci_restore : (string * int) list -> unit;
  ci_flow_digest : Fingerprint.t -> int -> unit;
}

type rcase = {
  r_name : string;
  r_seed : int;
  r_packets : int;
  r_universe : int;  (* flow/session universe size; hints are [0, universe) *)
  r_cfg : Worker.cfg;  (* per-core config before LLC partitioning *)
  r_trace : unit -> Workload.item list;
      (* the case's global input stream, pristine packets; traced once per
         check and shared (as clones) by the reference and killed passes,
         so packet ids line up across both *)
  r_build : Worker.t -> owned:int array -> core_instance;
  r_repro : cores:int -> string;
}

(* ----- tracing ----- *)

let drain (source : Workload.source) =
  let rec go acc = match source () with Some it -> go (it :: acc) | None -> List.rev acc in
  go []

let owned_ids ~cores ~universe core =
  Array.of_list
    (List.filter
       (fun i -> Platform.Recovery.owner ~cores i = core)
       (List.init universe Fun.id))

(* ----- generated cases (Progen.recipe) ----- *)

(* GSYN1: the synthetic unit's per-flow state on the wire — key (u64),
   universe flow id (u32), sequence number (u32), scratch accumulator
   (u64). Same framing as the Migration formats. *)
let syn_magic = "GSYN1"
let syn_entry_bytes = 24

let syn_export (st : Progen.syn_state) flow ids =
  let table = Nfs.Classifier.table st.Progen.syn_classifier in
  let present =
    List.filter_map
      (fun i ->
        match Structures.Cuckoo.lookup table (Netcore.Flow.key64 (flow i)) with
        | Some slot -> Some (i, slot)
        | None -> None)
      ids
  in
  let buf = Buffer.create (String.length syn_magic + 4 + (List.length present * syn_entry_bytes)) in
  Buffer.add_string buf syn_magic;
  Nfs.Migration.put_u32 buf (Int32.of_int (List.length present));
  List.iter
    (fun (i, slot) ->
      Nfs.Migration.put_u64 buf (Netcore.Flow.key64 (flow i));
      Nfs.Migration.put_u32 buf (Int32.of_int i);
      Nfs.Migration.put_u32 buf (Int32.of_int st.Progen.syn_seqs.(slot));
      Nfs.Migration.put_u64 buf (Int64.of_int st.Progen.syn_scratch.(slot)))
    present;
  Buffer.contents buf

let syn_import (st : Progen.syn_state) blob =
  let count =
    Nfs.Migration.parse_header ~magic:syn_magic ~entry_bytes:syn_entry_bytes blob
  in
  if st.Progen.syn_next + count > Array.length st.Progen.syn_seqs then
    raise (Nfs.Migration.Bad_snapshot "target synthetic state full");
  let base = String.length syn_magic + 4 in
  for e = 0 to count - 1 do
    let off = base + (e * syn_entry_bytes) in
    let key = Nfs.Migration.get_u64 blob off in
    let ident = Int32.to_int (Nfs.Migration.get_u32 blob (off + 8)) in
    let seq = Int32.to_int (Nfs.Migration.get_u32 blob (off + 12)) in
    let scratch = Int64.to_int (Nfs.Migration.get_u64 blob (off + 16)) in
    let slot = st.Progen.syn_next in
    let shed = Nfs.Classifier.populate st.Progen.syn_classifier [ (key, slot) ] in
    if shed > 0 then
      raise (Nfs.Migration.Bad_snapshot "target synthetic classifier full");
    st.Progen.syn_next <- slot + 1;
    st.Progen.syn_ident.(slot) <- ident;
    st.Progen.syn_seqs.(slot) <- seq;
    st.Progen.syn_scratch.(slot) <- scratch
  done

(* Upsert flavour of {!syn_import}: overwrite a resident flow's state in
   place, admit an absent one into a fresh slot — the synthetic unit's SCR
   update-apply surface. *)
let syn_apply (st : Progen.syn_state) blob =
  let count =
    Nfs.Migration.parse_header ~magic:syn_magic ~entry_bytes:syn_entry_bytes blob
  in
  let table = Nfs.Classifier.table st.Progen.syn_classifier in
  let base = String.length syn_magic + 4 in
  for e = 0 to count - 1 do
    let off = base + (e * syn_entry_bytes) in
    let key = Nfs.Migration.get_u64 blob off in
    let ident = Int32.to_int (Nfs.Migration.get_u32 blob (off + 8)) in
    let seq = Int32.to_int (Nfs.Migration.get_u32 blob (off + 12)) in
    let scratch = Int64.to_int (Nfs.Migration.get_u64 blob (off + 16)) in
    let slot =
      match Structures.Cuckoo.lookup table key with
      | Some slot -> slot
      | None ->
          if st.Progen.syn_next >= Array.length st.Progen.syn_seqs then
            raise (Nfs.Migration.Bad_snapshot "target synthetic state full");
          let slot = st.Progen.syn_next in
          let shed = Nfs.Classifier.populate st.Progen.syn_classifier [ (key, slot) ] in
          if shed > 0 then
            raise (Nfs.Migration.Bad_snapshot "target synthetic classifier full");
          st.Progen.syn_next <- slot + 1;
          slot
    in
    st.Progen.syn_ident.(slot) <- ident;
    st.Progen.syn_seqs.(slot) <- seq;
    st.Progen.syn_scratch.(slot) <- scratch
  done

let chain_instance ~families ~n_flows ~opts ~gen worker ~owned =
  let layout = Worker.layout worker in
  let built =
    Nfs.Catalog.build layout ~nf:(Progen.chain_spec families)
      ~modules:(Lazy.force Progen.builtin_modules) ~n_flows ~opts ()
  in
  let flow i = Traffic.Flowgen.flow gen i in
  built.Nfs.Catalog.populate (Array.map flow owned);
  {
    ci_worker = worker;
    ci_program = built.Nfs.Catalog.program;
    ci_pool = Netcore.Packet.Pool.create layout ~count:256;
    ci_export =
      (fun ids ->
        let flows = List.map flow ids in
        List.map
          (fun (sn : Nfs.Catalog.snapshotter) ->
            (sn.Nfs.Catalog.sn_name, sn.Nfs.Catalog.sn_export flows))
          built.Nfs.Catalog.snapshots);
    ci_import =
      (fun blobs ->
        List.iter
          (fun (sn : Nfs.Catalog.snapshotter) ->
            match List.assoc_opt sn.Nfs.Catalog.sn_name blobs with
            | Some blob -> ignore (sn.Nfs.Catalog.sn_import blob : int)
            | None -> ())
          built.Nfs.Catalog.snapshots);
    ci_apply =
      (fun blobs ->
        List.iter
          (fun (sn : Nfs.Catalog.snapshotter) ->
            match List.assoc_opt sn.Nfs.Catalog.sn_name blobs with
            | Some blob -> ignore (sn.Nfs.Catalog.sn_apply blob : int)
            | None -> ())
          built.Nfs.Catalog.snapshots);
    ci_counters = (fun () -> []);
    ci_restore = (fun _ -> ());
    ci_flow_digest =
      (fun fp i ->
        List.iter
          (fun (sn : Nfs.Catalog.snapshotter) ->
            sn.Nfs.Catalog.sn_flow_digest fp (flow i))
          built.Nfs.Catalog.snapshots);
  }

let synthetic_instance ~seed ~shape ~gen worker ~owned =
  let layout = Worker.layout worker in
  let flow i = Traffic.Flowgen.flow gen i in
  let unit, _digest, st =
    Progen.synthetic_unit layout ~seed ~sh:shape ~ident:owned
      ~flows:(Array.map flow owned) ()
  in
  let program =
    Nfs.Nf_unit.compile ~opts:shape.Progen.syn_opts ~name:"gen-syn" [ unit ]
  in
  let table = Nfs.Classifier.table st.Progen.syn_classifier in
  {
    ci_worker = worker;
    ci_program = program;
    ci_pool = Netcore.Packet.Pool.create layout ~count:256;
    ci_export = (fun ids -> [ ("syn", syn_export st flow ids) ]);
    ci_import =
      (fun blobs ->
        match List.assoc_opt "syn" blobs with
        | Some blob -> syn_import st blob
        | None -> ());
    ci_apply =
      (fun blobs ->
        match List.assoc_opt "syn" blobs with
        | Some blob -> syn_apply st blob
        | None -> ());
    ci_counters = (fun () -> [ ("syn.total", !(st.Progen.syn_total)) ]);
    ci_restore =
      List.iter (fun (name, v) ->
          if String.equal name "syn.total" then
            st.Progen.syn_total := !(st.Progen.syn_total) + v);
    ci_flow_digest =
      (fun fp i ->
        match Structures.Cuckoo.lookup table (Netcore.Flow.key64 (flow i)) with
        | Some slot ->
            Fingerprint.feed_bool fp true;
            Fingerprint.feed_int fp st.Progen.syn_seqs.(slot);
            Fingerprint.feed_int fp st.Progen.syn_scratch.(slot)
        | None -> Fingerprint.feed_bool fp false);
  }

let gen_rcase ~seed ~profile ~packets : rcase =
  let recipe = Progen.recipe ~seed in
  let universe =
    match recipe with
    | Progen.Chain { n_flows; _ } -> n_flows
    | Progen.Synthetic { shape } -> shape.Progen.syn_flows
  in
  let gen () = Progen.flowgen_for ~profile ~seed ~n_flows:universe in
  {
    r_name =
      Printf.sprintf "rec-gen-%s-%d"
        (match recipe with Progen.Chain _ -> "chain" | Progen.Synthetic _ -> "syn")
        seed;
    r_seed = seed;
    r_packets = packets;
    r_universe = universe;
    r_cfg = { Worker.default_cfg with Worker.mem_cfg = Progen.small_mem_cfg };
    r_trace =
      (fun () ->
        let worker = Progen.fresh_worker () in
        let pool = Netcore.Packet.Pool.create (Worker.layout worker) ~count:256 in
        drain (Progen.make_source ~profile ~seed ~gen:(gen ()) ~pool ~packets));
    r_build =
      (match recipe with
      | Progen.Chain { families; n_flows; opts } ->
          fun worker ~owned ->
            chain_instance ~families ~n_flows ~opts ~gen:(gen ()) worker ~owned
      | Progen.Synthetic { shape } ->
          fun worker ~owned ->
            synthetic_instance ~seed ~shape ~gen:(gen ()) worker ~owned);
    r_repro =
      (fun ~cores ->
        Printf.sprintf
          "gunfu_cli chaos --kill-cores --cores %d --seed %d --profile %s --packets %d"
          cores seed profile packets);
  }

(* ----- cases over the on-disk specs/ compositions ----- *)

let spec_universe = 64

let upf_instance ~specs_dir ~mgw worker ~owned =
  let layout = Worker.layout worker in
  let upf, instances, nf =
    Progen.upf_assembly ~capacity:spec_universe layout ~specs_dir ~mgw
  in
  Array.iter
    (fun i ->
      let s = Traffic.Mgw.session mgw i in
      match
        Nfs.Upf.install_session upf ~ue_ip:s.Traffic.Mgw.ue_ip ~teid:s.Traffic.Mgw.teid
      with
      | Ok _ -> ()
      | Error cause ->
          invalid_arg (Printf.sprintf "recovery: UPF session install rejected (cause %d)" cause))
    owned;
  let ue_ips ids = List.map (fun i -> (Traffic.Mgw.session mgw i).Traffic.Mgw.ue_ip) ids in
  {
    ci_worker = worker;
    ci_program = Compiler.compile ~name:nf.Spec.n_name instances nf;
    ci_pool = Netcore.Packet.Pool.create layout ~count:256;
    ci_export = (fun ids -> [ ("upf", Nfs.Migration.export_upf upf (ue_ips ids)) ]);
    ci_import =
      (fun blobs ->
        match List.assoc_opt "upf" blobs with
        | Some blob -> ignore (Nfs.Migration.import_upf upf blob : int)
        | None -> ());
    ci_apply =
      (fun blobs ->
        match List.assoc_opt "upf" blobs with
        | Some blob -> ignore (Nfs.Migration.apply_upf upf blob : int)
        | None -> ());
    ci_counters =
      (fun () ->
        [
          ("upf.encapsulated", upf.Nfs.Upf.encapsulated);
          ("upf.decapsulated", upf.Nfs.Upf.decapsulated);
        ]);
    ci_restore =
      List.iter (fun (name, v) ->
          if String.equal name "upf.encapsulated" then
            upf.Nfs.Upf.encapsulated <- upf.Nfs.Upf.encapsulated + v
          else if String.equal name "upf.decapsulated" then
            upf.Nfs.Upf.decapsulated <- upf.Nfs.Upf.decapsulated + v);
    ci_flow_digest =
      (fun fp i ->
        (* the export blob IS the session's identity (UE IP, TEID) when
           present, and a zero-count header when not: location-independent
           either way *)
        Fingerprint.feed_string fp (Nfs.Migration.export_upf upf (ue_ips [ i ])));
  }

let spec_rcase ~specs_dir ~name ~seed ~packets : rcase =
  let repro ~cores =
    Printf.sprintf "gunfu_cli chaos --kill-cores --cores %d --spec %s --seed %d --packets %d"
      cores name seed packets
  in
  match name with
  | "upf_downlink" ->
      let mgw = Traffic.Mgw.create ~seed ~n_sessions:spec_universe ~n_pdrs:4 () in
      {
        r_name = "rec-spec-upf_downlink";
        r_seed = seed;
        r_packets = packets;
        r_universe = spec_universe;
        r_cfg = Worker.default_cfg;
        r_trace =
          (fun () ->
            let worker = Worker.create ~id:0 () in
            let pool = Netcore.Packet.Pool.create (Worker.layout worker) ~count:256 in
            drain (Workload.of_mgw_downlink mgw ~pool ~count:packets));
        r_build = (fun worker ~owned -> upf_instance ~specs_dir ~mgw worker ~owned);
        r_repro = repro;
      }
  | _ ->
      let profile = "zipf" in
      let gen () = Progen.flowgen_for ~profile ~seed ~n_flows:spec_universe in
      {
        r_name = "rec-spec-" ^ name;
        r_seed = seed;
        r_packets = packets;
        r_universe = spec_universe;
        r_cfg = Worker.default_cfg;
        r_trace =
          (fun () ->
            let worker = Worker.create ~id:0 () in
            let pool = Netcore.Packet.Pool.create (Worker.layout worker) ~count:256 in
            drain
              (Progen.make_source ~profile ~seed ~gen:(gen ()) ~pool ~packets));
        r_build =
          (fun worker ~owned ->
            let layout = Worker.layout worker in
            let built =
              Nfs.Catalog.build_from_files layout
                ~nf_file:(Filename.concat specs_dir (name ^ ".yaml"))
                ~specs_dir ~n_flows:spec_universe ()
            in
            let gen = gen () in
            let flow i = Traffic.Flowgen.flow gen i in
            built.Nfs.Catalog.populate (Array.map flow owned);
            {
              ci_worker = worker;
              ci_program = built.Nfs.Catalog.program;
              ci_pool = Netcore.Packet.Pool.create layout ~count:256;
              ci_export =
                (fun ids ->
                  let flows = List.map flow ids in
                  List.map
                    (fun (sn : Nfs.Catalog.snapshotter) ->
                      (sn.Nfs.Catalog.sn_name, sn.Nfs.Catalog.sn_export flows))
                    built.Nfs.Catalog.snapshots);
              ci_import =
                (fun blobs ->
                  List.iter
                    (fun (sn : Nfs.Catalog.snapshotter) ->
                      match List.assoc_opt sn.Nfs.Catalog.sn_name blobs with
                      | Some blob -> ignore (sn.Nfs.Catalog.sn_import blob : int)
                      | None -> ())
                    built.Nfs.Catalog.snapshots);
              ci_apply =
                (fun blobs ->
                  List.iter
                    (fun (sn : Nfs.Catalog.snapshotter) ->
                      match List.assoc_opt sn.Nfs.Catalog.sn_name blobs with
                      | Some blob -> ignore (sn.Nfs.Catalog.sn_apply blob : int)
                      | None -> ())
                    built.Nfs.Catalog.snapshots);
              ci_counters = (fun () -> []);
              ci_restore = (fun _ -> ());
              ci_flow_digest =
                (fun fp i ->
                  List.iter
                    (fun (sn : Nfs.Catalog.snapshotter) ->
                      sn.Nfs.Catalog.sn_flow_digest fp (flow i))
                    built.Nfs.Catalog.snapshots);
            });
        r_repro = repro;
      }

(* ----- the engine ----- *)

(* Victim checkpoint payload: named per-NF snapshot blobs, commutative
   counters (absolute at checkpoint time; restore ADDS) and the fault
   plane's per-flow containment state. *)
type ckpt = {
  ck_snaps : (string * string) list;
  ck_counters : (string * int) list;
  ck_containment : (int * int * bool) list;
}

let take_ckpt (ci : core_instance) plane owned () =
  let ids = Array.to_list owned in
  {
    ck_snaps = ci.ci_export ids;
    ck_counters = ci.ci_counters ();
    ck_containment = Fault.export_containment plane ids;
  }

(* What a core's source does next. [Deliver] hands out a clone of a traced
   item (rolling the chaos plan at the item's GLOBAL index, so the
   schedule is sharding-independent); [Replay] re-presents a logged clone,
   re-arming the injection the victim recorded without re-corrupting (the
   bytes are already mangled in the log copy); [Adopt] runs the
   checkpoint-import thunk between two pulls — a quiescent point under
   RTC. *)
type op =
  | Deliver of int * Workload.item
  | Replay of Platform.Recovery.entry
  | Adopt of (unit -> unit)

let arm_plan ?plan ~plane ~g pkt =
  match (plan, pkt) with
  | Some fg, Some p -> (
      match Faultgen.decide fg g with
      | Some inj ->
          (match inj with
          | Fault.Corrupt_packet -> Faultgen.corrupt fg ~index:g p
          | Fault.Raise_at _ | Fault.Stall_mshrs _ | Fault.Kill_core -> ());
          Fault.inject plane ~packet_id:p.Netcore.Packet.id inj;
          Some inj
      | None -> None)
  | _ -> None

let make_source ?plan ~plane ~pool ?journal ops : Workload.source =
  let ops = ref ops in
  let rec next () =
    match !ops with
    | [] -> None
    | Adopt f :: rest ->
        ops := rest;
        f ();
        next ()
    | Replay e :: rest ->
        ops := rest;
        let pkt = Option.map Netcore.Packet.clone e.Platform.Recovery.e_pkt in
        Option.iter (Netcore.Packet.Pool.assign pool) pkt;
        (match (e.Platform.Recovery.e_inj, pkt) with
        | Some inj, Some p -> Fault.inject plane ~packet_id:p.Netcore.Packet.id inj
        | _ -> ());
        Some
          {
            Workload.packet = pkt;
            aux = e.Platform.Recovery.e_aux;
            flow_hint = e.Platform.Recovery.e_hint;
          }
    | Deliver (g, item) :: rest ->
        ops := rest;
        (match journal with
        | Some (j, snapshot) ->
            if Platform.Recovery.boundary j then
              Platform.Recovery.checkpoint j (snapshot ())
        | None -> ());
        let pkt = Option.map Netcore.Packet.clone item.Workload.packet in
        Option.iter (Netcore.Packet.Pool.assign pool) pkt;
        let inj = arm_plan ?plan ~plane ~g pkt in
        (match journal with
        | Some (j, _) ->
            Platform.Recovery.record j
              {
                Platform.Recovery.e_pkt = Option.map Netcore.Packet.clone pkt;
                e_hint = item.Workload.flow_hint;
                e_aux = item.Workload.aux;
                e_inj = inj;
              }
        | None -> ());
        Some
          {
            Workload.packet = pkt;
            aux = item.Workload.aux;
            flow_hint = item.Workload.flow_hint;
          }
  in
  next

(* Run one core to completion under RTC, recording the same observables
   as the single-core oracle. *)
let observe_core ~label ~plane (ci : core_instance) source : Oracle.observation =
  let ctx = Worker.ctx ci.ci_worker in
  let emits = ref [] in
  let inputs = ref [] in
  let on_complete (task : Nftask.t) =
    let dropped =
      Event.equal task.Nftask.event Event.Drop_packet
      || Event.equal task.Nftask.event Event.Match_fail
    in
    let e_pkt, e_pktid, e_wire =
      match task.Nftask.packet with
      | Some p -> (Oracle.packet_fingerprint p, p.Netcore.Packet.id, p.Netcore.Packet.wire_len)
      | None -> ("", -1, 0)
    in
    emits :=
      {
        Oracle.e_flow = task.Nftask.flow_hint;
        e_aux = task.Nftask.aux;
        e_event = Event.to_key task.Nftask.event;
        e_dropped = dropped;
        e_wire;
        e_pkt;
        e_pktid;
        e_clock = ctx.Exec_ctx.clock;
      }
      :: !emits
  in
  let source =
    Workload.tap
      (fun item ->
        let pid =
          match item.Workload.packet with
          | Some p -> p.Netcore.Packet.id
          | None -> -1
        in
        inputs := (pid, item.Workload.flow_hint) :: !inputs)
      source
  in
  let run = Rtc.run ~fault:plane ~on_complete ci.ci_worker ci.ci_program source in
  {
    Oracle.o_label = label;
    o_run = run;
    o_emits = List.rev !emits;
    o_inputs = List.rev !inputs;
    o_state = "";
    o_mshr_pending =
      Memsim.Hierarchy.mshr_pending_count ctx.Exec_ctx.mem ~now:ctx.Exec_ctx.clock;
    o_mshr_limit = (Memsim.Hierarchy.config ctx.Exec_ctx.mem).Memsim.Hierarchy.mshr_count;
  }

(* Location-independent final-state digest: each universe flow's NF state
   read from the core that finally owns it, its containment state, then
   the commutative counters summed over live cores. *)
let state_digest ~universe ~owner_of ~live (cis : core_instance array)
    (planes : Fault.t array) =
  Fingerprint.of_fn (fun fp ->
      for i = 0 to universe - 1 do
        let c = owner_of i in
        cis.(c).ci_flow_digest fp i;
        match Fault.export_containment planes.(c) [ i ] with
        | [ (_, consec, poisoned) ] ->
            Fingerprint.feed_int fp consec;
            Fingerprint.feed_bool fp poisoned
        | _ -> ()
      done;
      let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
      Array.iteri
        (fun c ci ->
          if live c then
            List.iter
              (fun (name, v) ->
                Hashtbl.replace totals name
                  (v + Option.value ~default:0 (Hashtbl.find_opt totals name)))
              (ci.ci_counters ()))
        cis;
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
      |> List.sort compare
      |> List.iter (fun (name, v) ->
             Fingerprint.feed_string fp name;
             Fingerprint.feed_int fp v))

type content = int * int * string * bool * int * string

(* One full platform pass, merged and digested. *)
type pass = {
  p_obs : (string * Oracle.observation) list;  (* live cores, core order *)
  p_streams : (int * content list) list;  (* merged per-flow emit contents *)
  p_digest : string;
}

let indexed items = List.mapi (fun g item -> (g, item)) items

let delivers ~cores ~core ?lo ?hi items =
  List.filter_map
    (fun (g, item) ->
      let mine = Platform.Recovery.owner ~cores item.Workload.flow_hint = core in
      let above = match lo with Some l -> g > l | None -> true in
      let below = match hi with Some h -> g <= h | None -> true in
      if mine && above && below then Some (Deliver (g, item)) else None)
    items

(* The failure-free platform pass: every core processes its owned slice of
   the global stream. [journal] turns on checkpoint/replay bookkeeping on
   every core without consuming it — the inertness axis: journaling is
   pure reads and clones, so observations must be byte-identical with it
   on or off (pinned by test). *)
let platform_pass ?plan ?(journal = false)
    ?(rplan = Platform.Recovery.default_plan) ~cores ~items (rc : rcase) : pass =
  let plat = Platform.create ~cfg:rc.r_cfg ~cores () in
  let items = indexed items in
  let cis =
    Array.init cores (fun c ->
        rc.r_build (Platform.worker plat c)
          ~owned:(owned_ids ~cores ~universe:rc.r_universe c))
  in
  let planes = Array.init cores (fun _ -> Fault.create ()) in
  let obs =
    Array.to_list
      (Array.init cores (fun c ->
           let jopt =
             if journal then
               Some
                 ( Platform.Recovery.journal rplan,
                   take_ckpt cis.(c) planes.(c)
                     (owned_ids ~cores ~universe:rc.r_universe c) )
             else None
           in
           let source =
             make_source ?plan ~plane:planes.(c) ~pool:cis.(c).ci_pool ?journal:jopt
               (delivers ~cores ~core:c items)
           in
           let label = Printf.sprintf "core%d" c in
           (label, observe_core ~label ~plane:planes.(c) cis.(c) source)))
  in
  let emits = List.concat_map (fun (_, o) -> o.Oracle.o_emits) obs in
  {
    p_obs = obs;
    p_streams = Oracle.per_flow_streams emits;
    p_digest =
      state_digest ~universe:rc.r_universe
        ~owner_of:(Platform.Recovery.owner ~cores)
        ~live:(fun _ -> true) cis planes;
  }

let observe_platform ?plan ?journal ?rplan ?items ~cores (rc : rcase) : pass =
  let items = match items with Some l -> l | None -> rc.r_trace () in
  platform_pass ?plan ?journal ?rplan ~cores ~items rc

(* First difference between two passes, or [None]. *)
let diff_passes ~(reference : pass) (obs : pass) : string option =
  let rec diff_streams a b =
    match (a, b) with
    | [], [] -> None
    | (fa, _) :: _, [] -> Some (Printf.sprintf "flow %d missing from recovered run" fa)
    | [], (fb, _) :: _ -> Some (Printf.sprintf "recovered run invented flow %d" fb)
    | (fa, sa) :: ra, (fb, sb) :: rb ->
        if fa <> fb then
          Some (Printf.sprintf "flow sets differ: %d (reference) vs %d (recovered)" fa fb)
        else if List.length sa <> List.length sb then
          Some
            (Printf.sprintf "flow %d: %d completions (reference) vs %d (recovered)" fa
               (List.length sa) (List.length sb))
        else if sa <> sb then
          Some (Printf.sprintf "flow %d: emit-content streams differ" fa)
        else diff_streams ra rb
  in
  match diff_streams reference.p_streams obs.p_streams with
  | Some d -> Some d
  | None ->
      if String.equal reference.p_digest obs.p_digest then None
      else
        Some
          (Printf.sprintf "state digests differ: %s (reference) vs %s (recovered)"
             reference.p_digest obs.p_digest)

type outcome = {
  oc_case : string;
  oc_cores : int;
  oc_packets : int;
  oc_kill : (int * int) option;  (* (victim, global kill index) *)
  oc_replayed : int;
  oc_checkpoints : int;  (* checkpoints the victim took *)
  oc_reference : pass;
  oc_recovered : pass;
  oc_violations : (string * Invariants.violation) list;
  oc_divergence : string option;
  oc_repro : string;
}

(* The chaos pass: same platform, same schedule, but core [victim] dies
   right after global pull [g_kill] and core [(victim + 1) mod cores]
   adopts its flows — checkpoint restore, suffix replay, redirected
   remainder — all in the adopter's single run. *)
let check_case ?plan ?kill ?(rplan = Platform.Recovery.default_plan) ~cores
    (rc : rcase) : outcome =
  let items = rc.r_trace () in
  let packets = List.length items in
  let kill =
    match kill with
    | Some _ as k -> k
    | None -> Option.bind plan (fun fg -> Faultgen.decide_kill fg ~cores ~packets)
  in
  let reference = platform_pass ?plan ~rplan ~cores ~items rc in
  let repro = rc.r_repro ~cores in
  match kill with
  | None ->
      {
        oc_case = rc.r_name;
        oc_cores = cores;
        oc_packets = packets;
        oc_kill = None;
        oc_replayed = 0;
        oc_checkpoints = 0;
        oc_reference = reference;
        oc_recovered = reference;
        oc_violations = [];
        oc_divergence = None;
        oc_repro = repro;
      }
  | Some (victim, g_kill) ->
      if victim < 0 || victim >= cores then
        invalid_arg "Recovery.check_case: victim out of range";
      let adopter = (victim + 1) mod cores in
      let ixitems = indexed items in
      let plat = Platform.create ~cfg:rc.r_cfg ~cores () in
      let cis =
        Array.init cores (fun c ->
            rc.r_build (Platform.worker plat c)
              ~owned:(owned_ids ~cores ~universe:rc.r_universe c))
      in
      let planes = Array.init cores (fun _ -> Fault.create ()) in
      (* 1. The victim runs its truncated stream, journaling every pull. *)
      let j = Platform.Recovery.journal rplan in
      let checkpoints = ref 0 in
      let victim_owned = owned_ids ~cores ~universe:rc.r_universe victim in
      let snapshot () =
        incr checkpoints;
        take_ckpt cis.(victim) planes.(victim) victim_owned ()
      in
      let vobs =
        observe_core
          ~label:(Printf.sprintf "core%d" victim)
          ~plane:planes.(victim) cis.(victim)
          (make_source ?plan ~plane:planes.(victim) ~pool:cis.(victim).ci_pool
             ~journal:(j, snapshot)
             (delivers ~cores ~core:victim ~hi:g_kill ixitems))
      in
      let ck =
        match Platform.Recovery.last_checkpoint j with
        | Some ck -> ck
        | None -> snapshot () (* victim died before its first pull *)
      in
      let suffix = Platform.Recovery.suffix j in
      (* 2. The adopter: own pre-kill slice, then checkpoint import +
         suffix replay, then the merged post-kill remainder (its own items
         and the victim's redirected ones, in global order). *)
      let adopt () =
        cis.(adopter).ci_import ck.ck_snaps;
        cis.(adopter).ci_restore ck.ck_counters;
        Fault.restore_containment planes.(adopter) ck.ck_containment
      in
      let post_kill =
        List.filter_map
          (fun (g, item) ->
            let owner = Platform.Recovery.owner ~cores item.Workload.flow_hint in
            if g > g_kill && (owner = adopter || owner = victim) then
              Some (Deliver (g, item))
            else None)
          ixitems
      in
      let adopter_ops =
        delivers ~cores ~core:adopter ~hi:g_kill ixitems
        @ (Adopt adopt :: List.map (fun e -> Replay e) suffix)
        @ post_kill
      in
      let aobs =
        observe_core
          ~label:(Printf.sprintf "core%d" adopter)
          ~plane:planes.(adopter) cis.(adopter)
          (make_source ?plan ~plane:planes.(adopter) ~pool:cis.(adopter).ci_pool
             adopter_ops)
      in
      (* 3. Bystander cores, unaffected. *)
      let others =
        List.filter_map
          (fun c ->
            if c = victim || c = adopter then None
            else
              Some
                ( Printf.sprintf "core%d" c,
                  observe_core
                    ~label:(Printf.sprintf "core%d" c)
                    ~plane:planes.(c) cis.(c)
                    (make_source ?plan ~plane:planes.(c) ~pool:cis.(c).ci_pool
                       (delivers ~cores ~core:c ixitems)) ))
          (List.init cores Fun.id)
      in
      (* 4. Exactly-once: every replayed completion is a duplicate of one
         the victim already emitted — suppress it from the merged stream,
         keep the pair for content verification. *)
      let replay_ids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (e : Platform.Recovery.entry) ->
          match e.Platform.Recovery.e_pkt with
          | Some p -> Hashtbl.replace replay_ids p.Netcore.Packet.id ()
          | None -> ())
        suffix;
      let victim_by_id : (int, Oracle.emit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (e : Oracle.emit) -> Hashtbl.replace victim_by_id e.Oracle.e_pktid e)
        vobs.Oracle.o_emits;
      let suppressed, adopter_kept =
        List.partition_map
          (fun (e : Oracle.emit) ->
            if e.Oracle.e_pktid >= 0 && Hashtbl.mem replay_ids e.Oracle.e_pktid then
              Either.Left (e, Hashtbl.find_opt victim_by_id e.Oracle.e_pktid)
            else Either.Right e)
          aobs.Oracle.o_emits
      in
      (* Merged stream: victim first (its pre-kill emits made the wire),
         then the adopter minus replays, then bystanders. Flow sets are
         disjoint across cores, so per-flow order is concatenation order
         only within the victim -> adopter pair, which matches global
         arrival order. *)
      let live_obs =
        ((Printf.sprintf "core%d" victim, vobs)
        :: (Printf.sprintf "core%d" adopter, aobs) :: others)
      in
      let merged =
        vobs.Oracle.o_emits @ adopter_kept
        @ List.concat_map (fun (_, o) -> o.Oracle.o_emits) others
      in
      let recovered =
        {
          p_obs = live_obs;
          p_streams = Oracle.per_flow_streams merged;
          p_digest =
            state_digest ~universe:rc.r_universe
              ~owner_of:(fun i ->
                let c = Platform.Recovery.owner ~cores i in
                if c = victim then adopter else c)
              ~live:(fun c -> c <> victim) cis planes;
        }
      in
      let per_core_violations =
        List.concat_map
          (fun (label, o) ->
            List.map (fun viol -> (label, viol)) (Invariants.check o))
          live_obs
      in
      let recovery_violations =
        List.map
          (fun viol -> ("recovery", viol))
          (Invariants.check_recovery ~offered:packets ~live:live_obs ~deduped:merged
             ~suppressed)
      in
      {
        oc_case = rc.r_name;
        oc_cores = cores;
        oc_packets = packets;
        oc_kill = Some (victim, g_kill);
        oc_replayed = List.length suffix;
        oc_checkpoints = !checkpoints;
        oc_reference = reference;
        oc_recovered = recovered;
        oc_violations = per_core_violations @ recovery_violations;
        oc_divergence = diff_passes ~reference recovered;
        oc_repro = repro;
      }

let passed (oc : outcome) = oc.oc_violations = [] && oc.oc_divergence = None

let pp_outcome ppf (oc : outcome) =
  Fmt.pf ppf "%s cores=%d packets=%d %a replayed=%d ckpts=%d: %s" oc.oc_case
    oc.oc_cores oc.oc_packets
    (fun ppf -> function
      | Some (v, g) -> Fmt.pf ppf "kill=core%d@%d" v g
      | None -> Fmt.pf ppf "kill=none")
    oc.oc_kill oc.oc_replayed oc.oc_checkpoints
    (if passed oc then "recovered"
     else
       match oc.oc_divergence with
       | Some d -> "DIVERGED: " ^ d
       | None -> "INVARIANT VIOLATIONS")
