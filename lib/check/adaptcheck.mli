(** The adaptive oracle axis.

    Drives a recovery case ({!Recovery.rcase} — generated program or
    on-disk spec composition) through the closed-loop adaptive runtime
    ({!Adaptive.Driver}) and requires behavioural equality with the
    single-core run-to-completion reference: identical per-flow
    emit-content streams, identical completion/drop/fault/wire-byte
    totals, and an identical location-independent state digest — plus
    {!Invariants.check} on the adaptive observation (single-core
    configurations) and {!Invariants.check_adaptive} on the decision log,
    proving every reconfiguration landed at a quiescent boundary.

    The plant mirrors the recovery engine's delivery semantics (items
    traced once, packets cloned per pull, fault plans armed at the
    GLOBAL stream index), so the injection schedule is identical however
    the controller reshapes execution. *)

open Gunfu

(** One adaptive pass over a case: pass observables (observation, merged
    per-flow streams, state digest) plus the raw driver outcome.
    [scr] arms the SCR hand-off rule with that core count and supplies
    the plant's hand-off surface (case-built full replicas seeded from a
    quiescent export, counter deltas folded back on return); [initial]
    is the starting configuration, [epoch] (default 256) the window
    length in pulls. *)
val adaptive_pass :
  ?plan:Faultgen.t ->
  ?scr:int ->
  ?params:Adaptive.Policy.params ->
  ?epoch:int ->
  initial:Adaptive.Config.t ->
  items:Workload.item list ->
  Recovery.rcase ->
  Recovery.pass * Adaptive.Driver.outcome

type outcome = {
  ao_case : string;
  ao_packets : int;
  ao_epoch : int;
  ao_moves : int;
  ao_final : Adaptive.Config.t;
  ao_decisions : Adaptive.Driver.decision list;
  ao_run : Metrics.run;
  ao_reference : Recovery.pass;
  ao_adaptive : Recovery.pass;
  ao_violations : (string * Invariants.violation) list;
  ao_divergence : string option;
  ao_repro : string;
}

(** Run the single-core reference and the adaptive pass over the same
    traced stream and compare. @raise Invalid_argument when both [plan]
    and [scr] are given — re-cloning inside the sprayed platform would
    detach armed injections from their packets. *)
val check_rcase :
  ?plan:Faultgen.t ->
  ?scr:int ->
  ?params:Adaptive.Policy.params ->
  ?epoch:int ->
  ?initial:Adaptive.Config.t ->
  Recovery.rcase ->
  outcome

(** No violations and no divergence. *)
val passed : outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit
