(** Differential execution oracle: run one program + workload through every
    executor (RTC as the semantic reference; Batch_rtc over several batch
    sizes; Scheduler over both policies × several task counts) and diff the
    observable behaviour — emitted packet streams, drop/emit/byte counts,
    per-flow output order, final NF state. Divergences come with a
    minimized, seed-replayable repro.

    Executors mutate packets and NF state in place, so a {!case} builds a
    fresh {!instance} (worker, program, state, workload) per run from its
    deterministic seed. *)

open Gunfu

type emit = {
  e_flow : int;  (** workload flow hint; -1 = unordered *)
  e_aux : int;
  e_event : string;  (** terminal event key *)
  e_dropped : bool;
  e_wire : int;
  e_pkt : string;  (** fingerprint of the final header bytes; [""] if none *)
  e_pktid : int;  (** run-local packet id, for order checks *)
  e_clock : int;  (** simulated completion time *)
}

type observation = {
  o_label : string;
  o_run : Metrics.run;
  o_emits : emit list;  (** completion order *)
  o_inputs : (int * int) list;  (** (pktid, flow) in pull order *)
  o_state : string;  (** final NF-state digest *)
  o_mshr_pending : int;  (** outstanding fills at end of run *)
  o_mshr_limit : int;
}

type instance = {
  worker : Worker.t;
  program : Program.t;
  source : Workload.source;
  digest : Fingerprint.t -> unit;
}

type case = {
  c_name : string;
  c_seed : int;
  c_profile : string;
  c_packets : int;
  c_build : packets:int -> instance;  (** fresh system under test *)
  c_repro : packets:int -> string;  (** one-command replay *)
}

type divergence = {
  d_case : string;
  d_seed : int;
  d_profile : string;
  d_exec : string;
  d_packets : int;  (** minimized workload length *)
  d_detail : string;
  d_repro : string;
}

type executor = {
  x_name : string;
  x_run :
    ?fault:Fault.t -> ?telemetry:Trace.t -> on_complete:(Nftask.t -> unit) ->
    Worker.t -> Program.t -> Workload.source -> Metrics.run;
}

val reference : executor

(** Everything compared against {!reference}: batch sizes {1,8,32}, both
    scheduler policies × n_tasks {1,2,4,8,16}. *)
val executors : executor list

val executor_names : string list
val batch_sizes : int list
val task_counts : int list

val packet_fingerprint : Netcore.Packet.t -> string

(** What a packet's journey must look like regardless of executor (or,
    for the recovery plane, regardless of which core processed it): the
    packet id is deliberately excluded — ids are run-local. *)
val emit_content : emit -> int * int * string * bool * int * string

(** Emit contents grouped per flow hint in completion order, sorted by
    flow — the per-flow stream comparison surface. *)
val per_flow_streams :
  emit list -> (int * (int * int * string * bool * int * string) list) list

(** Run one executor over a fresh instance, recording all observables.
    With [~specialize:true] the compiled hot path (see {!Specialize}) is
    installed on the instance's program before the run and the label gains
    a ["+spec"] suffix; with [false] (the default) any payload is stripped,
    so the interpreted baseline genuinely interprets even on a shared
    program. With [?plan], a fresh fault plane is created for the run, the
    source is instrumented with the plan's deterministic injection schedule
    (see {!Faultgen.instrument}) and the plane is handed to the executor —
    so two observations of the same case under the same plan see identical
    fault schedules. [?telemetry] attaches the span tracer for the run;
    because its hooks never charge cycles, the observation is identical
    with or without it (the inertness test pins this). *)
val observe :
  ?specialize:bool -> ?plan:Faultgen.t -> ?telemetry:Trace.t -> executor -> instance ->
  observation

(** First behavioural difference against the reference observation, or
    [None] when identical. Under faults this additionally diffs the
    faulted-completion counts, the degraded flags and the per-NF
    per-reason taxonomy. *)
val diff_observations : reference:observation -> observation -> string option

(** Rebuild + rerun reference and [exec] on a [packets]-long prefix. The
    reference is always interpreted; [?specialize] applies to [exec]. *)
val diverges :
  ?plan:Faultgen.t -> ?specialize:bool -> case -> executor -> packets:int ->
  string option

(** Smallest prefix length still diverging (binary search; repro aid, not
    a minimality proof). *)
val minimize :
  ?plan:Faultgen.t -> ?specialize:bool -> case -> executor -> packets:int -> int

(** Run the case through every executor; [Some] on the first divergence
    (minimized unless [~minimized:false]). With [~specialize:true] the scan
    widens to the full 28-way matrix: all 14 executors interpreted plus all
    14 under the specialized hot path (the reference included), every one
    diffed against the interpreted reference; diverging specialized
    variants are reported with a ["+spec"] suffix on [d_exec]. [?plan] runs
    the whole comparison under that injection schedule — the chaos mode:
    executors must agree even while faulting. *)
val check_case :
  ?minimized:bool -> ?specialize:bool -> ?plan:Faultgen.t -> case -> divergence option

val check_cases :
  ?minimized:bool -> ?specialize:bool -> ?plan:Faultgen.t -> case list ->
  divergence list
val pp_divergence : Format.formatter -> divergence -> unit
