(** Crash-tolerant scale-out: core-failure injection with checkpoint/replay
    recovery.

    A recovery case shards one generated (or spec-assembled) program across
    a share-nothing multi-core platform (RSS pinning via
    {!Gunfu.Platform.Recovery.owner}). The chaos axis kills one core right
    after a scheduled global pull ({!Faultgen.decide_kill}); a survivor
    adopts the dead core's flows by restoring its last epoch checkpoint
    (Migration-layer snapshots for every stateful NF family), replaying the
    journaled suffix with the victim's recorded fault injections re-armed,
    and absorbing the redirected remainder. Replayed completions are
    deduplicated by run-local packet id and verified content-equal to the
    victim's originals (exactly-once emits).

    The recovered run is judged against a failure-free reference — the same
    platform, sharding and injection schedule without the kill — on
    per-flow emit-content streams and a location-independent state digest,
    plus {!Invariants.check_recovery}'s replay-aware conservation law.
    Per-core executors are RTC: pull boundaries are quiescent, which is
    what makes the journal's checkpoint snapshots consistent. *)

open Gunfu

(** One core's copy of the program, populated with only its owned flows,
    plus the recovery engine's state-plane closures (export/import through
    the Migration layer keyed by universe flow ids, commutative counters
    with additive restore, location-independent per-flow digest). *)
type core_instance = {
  ci_worker : Worker.t;
  ci_program : Program.t;
  ci_pool : Netcore.Packet.Pool.pool;
  ci_export : int list -> (string * string) list;
  ci_import : (string * string) list -> unit;
  ci_apply : (string * string) list -> unit;
      (** SCR update upsert: overwrite resident flows, admit absent ones —
          unlike [ci_import], safe on an instance that already holds the
          flow. *)
  ci_counters : unit -> (string * int) list;
  ci_restore : (string * int) list -> unit;
  ci_flow_digest : Fingerprint.t -> int -> unit;
}

type rcase = {
  r_name : string;
  r_seed : int;
  r_packets : int;
  r_universe : int;  (** flow/session universe size; hints are [0, universe) *)
  r_cfg : Worker.cfg;  (** per-core config before LLC partitioning *)
  r_trace : unit -> Workload.item list;
      (** the global input stream, pristine packets — traced once per check
          and shared (as clones) by both passes so packet ids line up *)
  r_build : Worker.t -> owned:int array -> core_instance;
  r_repro : cores:int -> string;
}

(** The generated program behind [seed] (chain or synthetic, via
    {!Progen.recipe}) as a recovery case. *)
val gen_rcase : seed:int -> profile:string -> packets:int -> rcase

(** A recovery case over an on-disk composition ({!Progen.spec_names}):
    catalog chains rebuild per core via the spec files; [upf_downlink]
    starts each core's UPF empty and installs its owned PFCP sessions
    through the admission path. *)
val spec_rcase : specs_dir:string -> name:string -> seed:int -> packets:int -> rcase

type content = int * int * string * bool * int * string

(** One full platform pass: live cores' observations (core order), the
    merged per-flow emit-content streams, and the location-independent
    state digest. *)
type pass = {
  p_obs : (string * Oracle.observation) list;
  p_streams : (int * content list) list;
  p_digest : string;
}

(** The failure-free platform pass. [~journal:true] turns on
    checkpoint/replay bookkeeping on every core without consuming it —
    journaling is pure reads and clones, so the observations must be
    byte-identical with it on or off (the inertness pin). [?items]
    supplies a pre-drawn trace instead of calling [r_trace] — required
    when a caller compares two passes of a case whose generator is
    stateful (the UPF composition's mobile gateway). *)
val observe_platform :
  ?plan:Faultgen.t -> ?journal:bool -> ?rplan:Platform.Recovery.plan ->
  ?items:Workload.item list -> cores:int -> rcase -> pass

(** First behavioural difference between two passes (per-flow streams,
    then state digest), or [None]. *)
val diff_passes : reference:pass -> pass -> string option

type outcome = {
  oc_case : string;
  oc_cores : int;
  oc_packets : int;
  oc_kill : (int * int) option;  (** (victim core, global kill index) *)
  oc_replayed : int;  (** journal-suffix completions replayed by the adopter *)
  oc_checkpoints : int;  (** checkpoints the victim took *)
  oc_reference : pass;
  oc_recovered : pass;
  oc_violations : (string * Invariants.violation) list;
  oc_divergence : string option;
  oc_repro : string;
}

(** Run the failure-free reference and the killed-and-recovered pass and
    compare. The kill schedule comes from [?kill] (explicit), else
    [?plan]'s {!Faultgen.decide_kill}, else no kill (the passes coincide).
    [?plan] also drives packet-fault injection, keyed by global stream
    index so the schedule is sharding-independent. *)
val check_case :
  ?plan:Faultgen.t -> ?kill:int * int -> ?rplan:Platform.Recovery.plan -> cores:int ->
  rcase -> outcome

(** No violations and no divergence. *)
val passed : outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit
