(* Deterministic generation of random-but-valid NF programs and
   adversarial traffic for the differential oracle.

   Two program shapes, both driven by one splitmix seed:

   - catalog chains: 1-3 NFs drawn from the shipped families (static NAT,
     LB, firewall, monitor), composed through {!Nfs.Catalog.build} with the
     real module specs and randomized compiler options — the Fig 4 workflow
     with a generated composition;

   - synthetic modules: a random forward-DAG FSM behind a real cuckoo
     classifier, with random prefetch bindings and per-state actions whose
     branching, drops, state writes and packet rewrites are pure functions
     of (seed, flow, per-flow sequence number) — deterministic for any
     executor interleaving that preserves per-flow order, which is exactly
     the property under test.

   Generated programs deliberately avoid cross-flow-order-dependent state
   (e.g. the dynamic NAT learner's shared allocator): for those, different
   legal interleavings legitimately produce different final state, so they
   cannot serve as oracle subjects. *)

open Gunfu
module Rng = Memsim.Rng

let profiles = [ "uniform"; "zipf"; "burst"; "mix" ]
let spec_names = [ "nat"; "sfc4"; "upf_downlink" ]
let wire_len = 128

(* ----- adversarial traffic ----- *)

(* A fresh source over [gen]'s flow universe. Profiles beyond the plain
   generator draws: single-flow bursts and tightly interleaved flow mixes,
   the patterns most likely to expose per-flow ordering races. *)
let make_source ~profile ~seed ~(gen : Traffic.Flowgen.t) ~pool ~packets =
  let n_flows = Traffic.Flowgen.n_flows gen in
  let item idx =
    let pkt = Netcore.Packet.make ~flow:(Traffic.Flowgen.flow gen idx) ~wire_len () in
    Netcore.Packet.Pool.assign pool pkt;
    { Workload.packet = Some pkt; aux = 0; flow_hint = idx }
  in
  match profile with
  | "uniform" | "zipf" -> Workload.of_flowgen gen ~pool ~count:packets
  | "burst" ->
      (* Runs of 8 consecutive packets from one flow. *)
      let rng = Rng.create (seed * 2654435761 + 17) in
      let current = ref 0 in
      let i = ref 0 in
      Workload.limited packets (fun () ->
          if !i mod 8 = 0 then current := Rng.int rng n_flows;
          incr i;
          item !current)
  | "mix" ->
      (* Two hot flows strictly alternating, with a random third every
         fourth packet — maximal inter-flow interleave pressure. *)
      let rng = Rng.create (seed * 1099511627 + 29) in
      let hot_a = 0 and hot_b = min 1 (n_flows - 1) in
      let i = ref 0 in
      Workload.limited packets (fun () ->
          let n = !i in
          incr i;
          if n mod 4 = 3 && n_flows > 2 then item (Rng.int rng n_flows)
          else item (if n mod 2 = 0 then hot_a else hot_b))
  | p -> invalid_arg (Printf.sprintf "Progen.make_source: unknown profile %s" p)

let flowgen_for ~profile ~seed ~n_flows =
  let popularity =
    match profile with
    | "zipf" -> Traffic.Flowgen.Zipf 1.2
    | _ -> Traffic.Flowgen.Uniform
  in
  Traffic.Flowgen.create ~seed ~popularity ~size_model:(Traffic.Flowgen.Fixed wire_len)
    ~n_flows ()

(* Generated cases run on a scaled-down hierarchy: same shape and
   latencies as the default Xeon model, but without its 33 MB LLC — the
   sweep builds thousands of fresh workers, and the smaller caches miss
   more, stressing the overlap machinery harder. Spec cases keep the
   default config. *)
let small_mem_cfg =
  {
    Memsim.Hierarchy.default_config with
    Memsim.Hierarchy.l2_size = 256 * 1024;
    llc_size = 2 * 1024 * 1024;
    llc_assoc = 16;
  }

let fresh_worker () =
  Worker.create ~cfg:{ Worker.default_cfg with Worker.mem_cfg = small_mem_cfg } ~id:0 ()

(* ----- shape A: catalog chains ----- *)

type family = F_nat | F_lb | F_fw | F_nm

let all_families = [| F_nat; F_lb; F_fw; F_nm |]

let family_module = function
  | F_nat -> ("map", "flow_mapper")
  | F_lb -> ("fwd", "lb_forwarder")
  | F_fw -> ("flt", "fw_filter")
  | F_nm -> ("acc", "nm_counter")

let builtin_modules =
  lazy
    [
      ("flow_classifier", Lazy.force Nfs.Classifier.spec);
      ("flow_mapper", Lazy.force Nfs.Nat.mapper_spec);
      ("lb_forwarder", Lazy.force Nfs.Lb.spec);
      ("fw_filter", Lazy.force Nfs.Firewall.spec);
      ("nm_counter", Lazy.force Nfs.Monitor.spec);
    ]

(* Compose a generated chain the way specs/*.yaml compositions do: per NF a
   classifier wired to its data module on MATCH_SUCCESS, data modules
   chained on their "packet" exit. *)
let chain_spec families =
  let prefixes = List.mapi (fun i _ -> Printf.sprintf "g%d" i) families in
  let modules =
    List.concat
      (List.map2
         (fun p f ->
           let role, mtype = family_module f in
           [ (p ^ "_cls", "flow_classifier"); (p ^ "_" ^ role, mtype) ])
         prefixes families)
  in
  let rec wire = function
    | [] -> []
    | (p, f) :: rest ->
        let role, _ = family_module f in
        let data = p ^ "_" ^ role in
        let next =
          match rest with (q, _) :: _ -> q ^ "_cls" | [] -> Spec.end_state
        in
        { Spec.src = p ^ "_cls"; event = "MATCH_SUCCESS"; dst = data }
        :: { Spec.src = data; event = "packet"; dst = next }
        :: wire rest
  in
  {
    Spec.n_name = "gen-chain";
    n_modules = modules;
    n_transitions = wire (List.combine prefixes families);
  }

(* Generated programs must be lint-clean by construction: every randomized
   compile runs the analyzer at `Error level (the hook is installed by this
   module's initializer below). *)
let () = Analysis.Register.install ()

let random_opts rng =
  {
    Compiler.match_removal = Rng.bool rng;
    prefetch_dedup = Rng.bool rng;
    prefetching = Rng.bool rng;
    lint = `Error;
    (* Every fuzz program is symbolically validated before the oracle
       runs, so the 28-way matrix carries a static proof axis too. *)
    verify_passes = `Error;
    (* Specialization is exercised by the oracle's explicit axis, not
       randomized here: cases must stay interpreted by default so the
       interp-vs-spec cross-check has a genuine baseline. *)
    specialize = false;
  }

(* The chain shape's draws, shared between the oracle cases and the
   standalone translation-validation axis. Draw order is part of seed
   reproducibility — do not reorder. *)
let chain_params ~rng =
  let len = Rng.int_in_range rng ~lo:1 ~hi:3 in
  let families =
    List.init len (fun _ -> all_families.(Rng.int rng (Array.length all_families)))
  in
  let n_flows = [| 8; 32; 128 |].(Rng.int rng 3) in
  let opts = random_opts rng in
  (families, n_flows, opts)

let build_chain ~rng ~seed ~profile ~packets =
  let families, n_flows, opts = chain_params ~rng in
  let nf = chain_spec families in
  fun ~packets:budget ->
    let worker = fresh_worker () in
    let layout = Worker.layout worker in
    let built =
      Nfs.Catalog.build layout ~nf ~modules:(Lazy.force builtin_modules) ~n_flows ~opts ()
    in
    let gen = flowgen_for ~profile ~seed ~n_flows in
    built.Nfs.Catalog.populate (Traffic.Flowgen.flows gen);
    let pool = Netcore.Packet.Pool.create layout ~count:256 in
    {
      Oracle.worker;
      program = built.Nfs.Catalog.program;
      source = make_source ~profile ~seed ~gen ~pool ~packets:(min budget packets);
      digest = built.Nfs.Catalog.digest;
    }

(* ----- shape B: synthetic random FSMs ----- *)

(* Mixer for per-action decisions: a pure function of the case seed, the
   flow, the flow-local sequence number and the control state, so every
   executor computes identical branches, drops and writes for a given
   packet as long as per-flow order is preserved. *)
let mix seed flow seq state =
  let z = ref (Int64.of_int ((seed * 0x9e3779b9) lxor (flow * 0x85ebca6b) lxor (seq * 0xc2b2ae35) lxor state)) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xbf58476d1ce4e5b9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94d049bb133111ebL;
  Int64.to_int (Int64.logand (Int64.logxor !z (Int64.shift_right_logical !z 31)) 0x3fffffffffffffffL)

(* Per-state shape of the random DAG. The backbone edge ("lo" to the next
   state) keeps every state reachable and End always reachable; optional
   "hi" skip edges and early-DROP exits randomize control flow. *)
type sstate = { s_hi : int option; s_drop : bool }

let seq_reg = 7 (* NFTask temp register holding the flow-local sequence no. *)

(* The synthetic shape's draws plus the module spec they determine. Draw
   order is part of seed reproducibility — do not reorder. *)
type syn_shape = {
  syn_k : int;
  syn_states : sstate array;
  syn_mspec : Spec.module_spec;
  syn_flows : int;
  syn_opts : Compiler.opts;
}

let state_name i = Printf.sprintf "s%d" i

let synthetic_shape ~rng =
  let k = Rng.int_in_range rng ~lo:2 ~hi:5 in
  let shape =
    Array.init k (fun i ->
        if i = k - 1 then { s_hi = None; s_drop = true }
        else
          {
            s_hi =
              (if i + 1 < k - 1 && Rng.bool rng then
                 Some (Rng.int_in_range rng ~lo:(i + 1) ~hi:(k - 1))
               else None);
            s_drop = Rng.int rng 3 = 0;
          })
  in
  (* Random fetching declaration per state: per-flow scratch, packet
     header, both, or nothing. *)
  let fetch_kind = Array.init k (fun _ -> Rng.int rng 4) in
  let n_flows = [| 8; 32; 128 |].(Rng.int rng 3) in
  let opts = random_opts rng in
  let transitions =
    List.concat
      (List.init k (fun i ->
           let s = shape.(i) in
           let base =
             if i = k - 1 then
               [
                 { Spec.src = state_name i; event = "EMIT"; dst = Spec.end_state };
                 { Spec.src = state_name i; event = "DROP"; dst = Spec.end_state };
               ]
             else
               [ { Spec.src = state_name i; event = "lo"; dst = state_name (i + 1) } ]
           in
           let hi =
             match s.s_hi with
             | Some j -> [ { Spec.src = state_name i; event = "hi"; dst = state_name j } ]
             | None -> []
           in
           let drop =
             if s.s_drop && i < k - 1 then
               [ { Spec.src = state_name i; event = "DROP"; dst = Spec.end_state } ]
             else []
           in
           base @ hi @ drop))
  in
  let fetching =
    List.filter_map
      (fun i ->
        match fetch_kind.(i) with
        | 0 -> None
        | 1 -> Some (state_name i, [ "scratch" ])
        | 2 -> Some (state_name i, [ "pkt" ])
        | _ -> Some (state_name i, [ "scratch"; "pkt" ]))
      (List.init k Fun.id)
  in
  let mspec =
    {
      Spec.m_name = "syn_dag";
      m_category = "StatefulNF";
      m_parameters = [];
      m_transitions =
        { Spec.src = Spec.start_state; event = "MATCH_SUCCESS"; dst = state_name 0 }
        :: transitions;
      m_fetching = fetching;
      m_states = [ ("scratch", "per_flow"); ("pkt", "packet_state") ];
      m_nfc = [];
    }
  in
  Spec.validate_module mspec;
  { syn_k = k; syn_states = shape; syn_mspec = mspec; syn_flows = n_flows; syn_opts = opts }

(* The synthetic unit's mutable state, exposed so the recovery plane can
   checkpoint it and re-home flows onto another core. Arrays are indexed
   by *local slot* (the classifier's value); [syn_ident] maps a slot back
   to the flow's universe id, which is what the action mixer keys on — so
   a flow's behaviour is identical no matter which slot (on which core)
   currently holds its state. *)
type syn_state = {
  syn_classifier : Nfs.Classifier.t;
  syn_seqs : int array;
  syn_scratch : int array;
  syn_total : int ref;  (* commutative cross-flow sum *)
  syn_ident : int array;  (* slot -> universe flow id *)
  mutable syn_next : int;  (* first free slot (bump allocator) *)
}

(* The synthetic unit behind the shape: real classifier, state arena and
   per-state actions. [flows] populates the classifier (empty for
   compile-only uses like translation validation); [ident] gives each
   populated slot's universe flow id (defaults to the slot index — the
   single-core layout). Returns the unit, the observable-state digest for
   the oracle, and the state handle for the recovery plane. *)
let synthetic_unit layout ~seed ~(sh : syn_shape) ?ident ~flows () =
  let k = sh.syn_k in
  let shape = sh.syn_states in
  let n_flows = sh.syn_flows in
  let classifier =
    Nfs.Classifier.create layout ~name:"syn_cls" ~key_kind:"five_tuple"
      ~key_fn:Nfs.Classifier.five_tuple_key ~capacity:n_flows ()
  in
  let (_shed : int) =
    Nfs.Classifier.populate classifier
      (Array.to_list (Array.mapi (fun i f -> (Netcore.Flow.key64 f, i)) flows))
  in
  let arena =
    Structures.State_arena.create layout ~label:"syn.per_flow" ~entry_bytes:16
      ~count:n_flows ()
  in
  let seqs = Array.make n_flows 0 in
  let scratch = Array.make n_flows 0 in
  let total = ref 0 in
  let ident =
    match ident with
    | Some ids ->
        let a = Array.init n_flows Fun.id in
        Array.blit ids 0 a 0 (Array.length ids);
        a
    | None -> Array.init n_flows Fun.id
  in
  let st =
    {
      syn_classifier = classifier;
      syn_seqs = seqs;
      syn_scratch = scratch;
      syn_total = total;
      syn_ident = ident;
      syn_next = Array.length flows;
    }
  in
  let action i =
    let s = shape.(i) in
    Action.make ~base_cycles:10 ~base_instrs:8 ~name:(Printf.sprintf "syn.s%d" i)
      (fun ctx task ->
        let flow = Nfs.Nf_common.per_flow_read ctx task arena ~name:"syn" in
        if i = 0 then begin
          seqs.(flow) <- seqs.(flow) + 1;
          task.Nftask.temps.Nftask.regs.(seq_reg) <- seqs.(flow)
        end;
        let seq = task.Nftask.temps.Nftask.regs.(seq_reg) in
        let h = mix seed ident.(flow) seq i in
        (* Per-flow state: order-dependent only within its own flow.
           Global total: addition, commutative across flows. *)
        scratch.(flow) <- (scratch.(flow) * 31) + (h land 0xffff);
        total := !total + (h land 0xff);
        ignore (Nfs.Nf_common.per_flow_write ctx task arena ~name:"syn");
        Nfs.Nf_common.packet_read ctx task ~bytes:64;
        (match task.Nftask.packet with
        | Some p when p.Netcore.Packet.hdr_len > 0 ->
            Bytes.set p.Netcore.Packet.buf
              (p.Netcore.Packet.hdr_len - 1)
              (Char.chr (h land 0xff))
        | Some _ | None -> ());
        if i = k - 1 then
          if h mod 7 = 0 then Event.Drop_packet else Event.Emit_packet
        else if s.s_drop && h mod 13 = 0 then Event.Drop_packet
        else
          match s.s_hi with
          | Some _ when h mod 3 = 0 -> Event.User "hi"
          | _ -> Event.User "lo")
  in
  let syn_inst =
    {
      Compiler.i_name = "syn_dag0";
      i_spec = sh.syn_mspec;
      i_actions = List.init k (fun i -> (state_name i, action i));
      i_bindings =
        [
          ("scratch", Prefetch.Per_flow (arena, []));
          ("pkt", Prefetch.Packet_header 64);
        ];
      i_key_kind = None;
    }
  in
  let unit =
    {
      Nfs.Nf_unit.instances = [ Nfs.Classifier.instance classifier; syn_inst ];
      entry = "syn_cls";
      exits = [ ("syn_dag0", "EMIT"); ("syn_dag0", "DROP") ];
      internal =
        [ { Spec.src = "syn_cls"; event = "MATCH_SUCCESS"; dst = "syn_dag0" } ];
    }
  in
  let digest fp =
    Fingerprint.feed_int_array fp scratch;
    Fingerprint.feed_int_array fp seqs;
    Fingerprint.feed_int fp !total
  in
  (unit, digest, st)

let build_synthetic ~rng ~seed ~profile ~packets =
  let sh = synthetic_shape ~rng in
  fun ~packets:budget ->
    let worker = fresh_worker () in
    let layout = Worker.layout worker in
    let gen = flowgen_for ~profile ~seed ~n_flows:sh.syn_flows in
    let unit, digest, _st =
      synthetic_unit layout ~seed ~sh ~flows:(Traffic.Flowgen.flows gen) ()
    in
    let program = Nfs.Nf_unit.compile ~opts:sh.syn_opts ~name:"gen-syn" [ unit ] in
    let pool = Netcore.Packet.Pool.create layout ~count:256 in
    {
      Oracle.worker;
      program;
      source = make_source ~profile ~seed ~gen ~pool ~packets:(min budget packets);
      digest;
    }

(* ----- cases ----- *)

let repro_command ~kind ~seed ~profile ~packets =
  Printf.sprintf "gunfu_cli check %s--seed %d --programs 1 --profile %s --packets %d"
    kind seed profile packets

let case ~seed ~profile ~packets : Oracle.case =
  let rng = Rng.create seed in
  let synthetic = Rng.bool rng in
  let build =
    if synthetic then build_synthetic ~rng ~seed ~profile ~packets
    else build_chain ~rng ~seed ~profile ~packets
  in
  {
    Oracle.c_name = Printf.sprintf "gen-%s-%d" (if synthetic then "syn" else "chain") seed;
    c_seed = seed;
    c_profile = profile;
    c_packets = packets;
    c_build = build;
    c_repro = (fun ~packets -> repro_command ~kind:"" ~seed ~profile ~packets);
  }

let cases ~seed ~count ~packets : Oracle.case list =
  List.concat_map
    (fun i ->
      List.map (fun profile -> case ~seed:(seed + i) ~profile ~packets) profiles)
    (List.init count Fun.id)

(* The generated program behind a seed, as data rather than a built
   instance — the recovery plane rebuilds the same program once per core,
   each populated with only that core's flow subset. Replays exactly the
   draw sequence of {!case} (Rng.create, shape coin, then the shape's own
   draws), so [recipe ~seed] and [case ~seed ...] describe the same
   program. *)
type gen_recipe =
  | Chain of { families : family list; n_flows : int; opts : Compiler.opts }
  | Synthetic of { shape : syn_shape }

let recipe ~seed =
  let rng = Rng.create seed in
  if Rng.bool rng then Synthetic { shape = synthetic_shape ~rng }
  else
    let families, n_flows, opts = chain_params ~rng in
    Chain { families; n_flows; opts }

(* ----- cases built from the on-disk specs/ compositions ----- *)

let catalog_spec_case ?opts ~specs_dir ~name ~seed ~packets () : Oracle.case =
  let profile = "zipf" in
  {
    Oracle.c_name = "spec-" ^ name;
    c_seed = seed;
    c_profile = profile;
    c_packets = packets;
    c_build =
      (fun ~packets:budget ->
        let worker = Worker.create ~id:0 () in
        let layout = Worker.layout worker in
        let built =
          Nfs.Catalog.build_from_files layout
            ~nf_file:(Filename.concat specs_dir (name ^ ".yaml"))
            ~specs_dir ~n_flows:64 ?opts ()
        in
        let gen = flowgen_for ~profile ~seed ~n_flows:64 in
        built.Nfs.Catalog.populate (Traffic.Flowgen.flows gen);
        let pool = Netcore.Packet.Pool.create layout ~count:256 in
        {
          Oracle.worker;
          program = built.Nfs.Catalog.program;
          source = make_source ~profile ~seed ~gen ~pool ~packets:(min budget packets);
          digest = built.Nfs.Catalog.digest;
        });
    c_repro =
      (fun ~packets ->
        Printf.sprintf "gunfu_cli check --spec %s --seed %d --packets %d" name seed
          packets);
  }

(* The UPF downlink composition: instances from the shipped UPF, module
   FSMs substituted from the on-disk specs, wiring from upf_downlink.yaml
   — so the oracle (and the lint subcommand) genuinely works on the files
   under specs/. *)
let upf_assembly ?(capacity = -1) layout ~specs_dir ~mgw =
  let upf =
    if capacity >= 0 then
      (* Recovery-plane variant: an empty UPF whose sessions arrive through
         the normal PFCP admission path (per-core subsets, re-homing). *)
      Nfs.Upf.create_empty layout ~name:"upf" ~capacity ~n_pdrs:4 ()
    else begin
      let upf =
        Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw)
          ~n_pdrs:4 ()
      in
      Nfs.Upf.populate upf;
      upf
    end
  in
  let modules = Nfs.Catalog.load_modules specs_dir in
  let instances =
    List.map
      (fun (inst : Compiler.instance) ->
        match List.assoc_opt inst.Compiler.i_spec.Spec.m_name modules with
        | Some on_disk -> { inst with Compiler.i_spec = on_disk }
        | None -> inst)
      (Nfs.Upf.unit upf).Nfs.Nf_unit.instances
  in
  let nf =
    Spec.nf_spec_of_string
      (Nfs.Catalog.read_file (Filename.concat specs_dir "upf_downlink.yaml"))
  in
  (upf, instances, nf)

let upf_spec_case ?opts ~specs_dir ~seed ~packets () : Oracle.case =
  {
    Oracle.c_name = "spec-upf_downlink";
    c_seed = seed;
    c_profile = "mgw";
    c_packets = packets;
    c_build =
      (fun ~packets:budget ->
        let worker = Worker.create ~id:0 () in
        let layout = Worker.layout worker in
        let mgw = Traffic.Mgw.create ~seed ~n_sessions:64 ~n_pdrs:4 () in
        let upf, instances, nf = upf_assembly layout ~specs_dir ~mgw in
        let program = Compiler.compile ?opts ~name:nf.Spec.n_name instances nf in
        let pool = Netcore.Packet.Pool.create layout ~count:256 in
        {
          Oracle.worker;
          program;
          source = Workload.of_mgw_downlink mgw ~pool ~count:(min budget packets);
          digest =
            (fun fp ->
              Fingerprint.feed_int fp upf.Nfs.Upf.encapsulated;
              Fingerprint.feed_int fp upf.Nfs.Upf.decapsulated;
              Fingerprint.feed_int fp upf.Nfs.Upf.n_active);
        });
    c_repro =
      (fun ~packets ->
        Printf.sprintf "gunfu_cli check --spec upf_downlink --seed %d --packets %d" seed
          packets);
  }

(* One oracle case per composition under [specs_dir]; the module specs the
   compositions reference are all loaded from disk too, so every file in
   specs/ is exercised. *)
let spec_cases ?opts ~specs_dir ~seed ~packets () : Oracle.case list =
  [
    catalog_spec_case ?opts ~specs_dir ~name:"nat" ~seed ~packets ();
    catalog_spec_case ?opts ~specs_dir ~name:"sfc4" ~seed ~packets ();
    upf_spec_case ?opts ~specs_dir ~seed ~packets ();
  ]

let spec_case ?opts ~specs_dir ~name ~seed ~packets () : Oracle.case =
  match name with
  | "nat" | "sfc4" -> catalog_spec_case ?opts ~specs_dir ~name ~seed ~packets ()
  | "upf_downlink" -> upf_spec_case ?opts ~specs_dir ~seed ~packets ()
  | n -> invalid_arg (Printf.sprintf "Progen.spec_case: unknown composition %s" n)

(* The lint subcommand's entry point: the same assembly the oracle cases
   run, stopped at {!Gunfu.Compiler.lint_view}. The seed only feeds
   session-table sizing, never the FSM shape, so findings are stable. *)
let spec_lint_input ?opts ~specs_dir ~name () : Compiler.lint_input =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  match name with
  | "upf_downlink" ->
      let mgw = Traffic.Mgw.create ~seed:1 ~n_sessions:64 ~n_pdrs:4 () in
      let _, instances, nf = upf_assembly layout ~specs_dir ~mgw in
      Compiler.lint_view ?opts ~name:nf.Spec.n_name instances nf
  | _ ->
      Nfs.Catalog.lint_input_from_files layout
        ~nf_file:(Filename.concat specs_dir (name ^ ".yaml"))
        ~specs_dir ~n_flows:64 ?opts ()

(* ----- translation-validation inputs ----- *)

(* All passes on: each generated program is proven across the full
   {match_removal, prefetch_dedup, specialize} axis. Hooks stay `Off —
   the caller hands the view to {!Analysis.Symcheck.check} and interprets
   the verdicts itself. *)
let verify_opts =
  {
    Compiler.match_removal = true;
    prefetch_dedup = true;
    prefetching = true;
    lint = `Off;
    verify_passes = `Off;
    specialize = true;
  }

(* The same program shapes the oracle fuzzes (same seed, same draws),
   compiled with every pass enabled and returned as the symbolic
   checker's input. *)
let gen_verify_input ~seed : Compiler.verify_input =
  let rng = Rng.create seed in
  let synthetic = Rng.bool rng in
  let worker = fresh_worker () in
  let layout = Worker.layout worker in
  if synthetic then begin
    let sh = synthetic_shape ~rng in
    let unit, _digest, _st = synthetic_unit layout ~seed ~sh ~flows:[||] () in
    Nfs.Nf_unit.verify_view ~opts:verify_opts ~name:"gen-syn" [ unit ]
  end
  else begin
    let families, n_flows, _opts = chain_params ~rng in
    let nf = chain_spec families in
    Nfs.Catalog.verify_view layout ~nf ~modules:(Lazy.force builtin_modules) ~n_flows
      ~opts:verify_opts ()
  end

(* The verifyeq subcommand's entry point for the on-disk compositions:
   the same assembly the oracle cases run, through the full pipeline. *)
let spec_verify_input ?(opts = verify_opts) ~specs_dir ~name () : Compiler.verify_input =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  match name with
  | "upf_downlink" ->
      let mgw = Traffic.Mgw.create ~seed:1 ~n_sessions:64 ~n_pdrs:4 () in
      let _, instances, nf = upf_assembly layout ~specs_dir ~mgw in
      Compiler.verify_view ~opts ~name:nf.Spec.n_name instances nf
  | _ ->
      Nfs.Catalog.verify_input_from_files layout
        ~nf_file:(Filename.concat specs_dir (name ^ ".yaml"))
        ~specs_dir ~n_flows:64 ~opts ()

(* ----- random NF-C programs (parser round-trip property) ----- *)

(* A random well-formed NF-C AST, built through {!Gunfu.Nfc.of_body} so
   the temporaries list matches what [parse] would collect. Constants are
   non-negative (the grammar has no unary minus) and identifiers avoid
   the statement keywords. *)
let random_nfc ~seed =
  let rng = Rng.create seed in
  let scopes =
    [| Nfc.Packet; Nfc.Per_flow; Nfc.Sub_flow; Nfc.Control; Nfc.Temp; Nfc.Match_state |]
  in
  let fields = [| "a"; "b"; "len"; "port"; "x0"; "count" |] in
  let ops =
    [|
      Nfc.Add; Nfc.Sub; Nfc.Mul; Nfc.Mod; Nfc.And; Nfc.Eq; Nfc.Ne; Nfc.Lt; Nfc.Gt;
      Nfc.Le; Nfc.Ge;
    |]
  in
  let events = [| "Event_Packet"; "Event_Drop"; "EMIT"; "hash_done" |] in
  let pick a = a.(Rng.int rng (Array.length a)) in
  let rec expr depth =
    if depth = 0 || Rng.int rng 3 = 0 then
      if Rng.bool rng then Nfc.Int (Rng.int rng 65)
      else Nfc.Ref (pick scopes, pick fields)
    else Nfc.Bin (pick ops, expr (depth - 1), expr (depth - 1))
  in
  let rec stmts depth n =
    List.init n (fun _ ->
        match Rng.int rng (if depth = 0 then 3 else 4) with
        | 0 -> Nfc.Assign (pick scopes, pick fields, expr 3)
        | 1 -> Nfc.Emit (pick events)
        | 2 -> Nfc.Drop
        | _ ->
            Nfc.If
              ( expr 2,
                stmts (depth - 1) (1 + Rng.int rng 2),
                stmts (depth - 1) (Rng.int rng 2) ))
  in
  Nfc.of_body ~action_name:"gen" (stmts 2 (1 + Rng.int rng 4))
