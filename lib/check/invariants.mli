(** Executor-independent invariants checked on every oracle observation:
    packet conservation (pulled = emitted + dropped, counters agree),
    per-flow order preservation, monotone simulated clock, and memory-
    hierarchy accounting (per-level serves sum to line accesses, counters
    non-negative, outstanding fills within the MSHR budget). *)

type violation = { v_rule : string; v_detail : string }

val check_conservation : Oracle.observation -> violation list
val check_flow_order : Oracle.observation -> violation list
val check_clock : Oracle.observation -> violation list
val check_memstats : Oracle.observation -> violation list

(** All of the above. *)
val check : Oracle.observation -> violation list

(** Every executor over a fresh instance of the case; violations tagged
    with the executor label. [?plan] checks the invariants *under* a
    deterministic fault-injection schedule (conservation then reads
    emits + drops + faulted = offered). *)
val check_case : ?plan:Faultgen.t -> Oracle.case -> (string * violation) list

val pp_violation : Format.formatter -> violation -> unit
