(** Executor-independent invariants checked on every oracle observation:
    packet conservation (pulled = emitted + dropped, counters agree),
    per-flow order preservation, monotone simulated clock, and memory-
    hierarchy accounting (per-level serves sum to line accesses, counters
    non-negative, outstanding fills within the MSHR budget). *)

type violation = { v_rule : string; v_detail : string }

val check_conservation : Oracle.observation -> violation list
val check_flow_order : Oracle.observation -> violation list
val check_clock : Oracle.observation -> violation list
val check_memstats : Oracle.observation -> violation list

(** All of the above. *)
val check : Oracle.observation -> violation list

(** {2 Recovery-plane rules}

    Replay-aware conservation across a platform run with a core failure:
    live cores collectively complete [offered + replayed] packets; after
    suppressing replayed duplicates exactly [offered] remain with the
    emit/drop/fault split preserved; and every suppressed duplicate is
    content-identical to the original the dead core already emitted
    (exactly-once emits). [suppressed] pairs each duplicate with the
    victim's original emit ([None] — no original — is itself a
    violation). *)
val check_recovery :
  offered:int ->
  live:(string * Oracle.observation) list ->
  deduped:Oracle.emit list ->
  suppressed:(Oracle.emit * Oracle.emit option) list ->
  violation list

(** {2 Telemetry-plane rules}

    Checked on a traced run: the span tree must be well-nested per packet
    (action spans of one unit never overlap; memory spans attributed to a
    unit lie inside one of its action spans — skipped when the ring
    dropped spans), the attributed cycle total can never exceed the run's
    measured cycles, and per-cache-level serve counts must equal the
    run's Memstats delta. Each rule flags a tampered trace. *)

(** Only when the ring kept every span ([dropped = 0]). *)
val check_span_nesting :
  spans:Gunfu.Trace.span array -> dropped:int -> violation list

val check_span_budget : Gunfu.Trace.t -> Gunfu.Metrics.run -> violation list
val check_span_memstats : Gunfu.Trace.t -> Gunfu.Metrics.run -> violation list

(** All three telemetry rules. [?spans] overrides the span set so tamper
    tests can inject doctored copies (the attribution books are
    unaffected); defaults to [Trace.spans tr]. *)
val check_telemetry :
  ?spans:Gunfu.Trace.span array ->
  Gunfu.Trace.t -> Gunfu.Metrics.run -> violation list

(** {2 SCR-plane rules}

    Update-stream conservation for a State-Compute Replication run:
    every flow-bearing completion ([completions]) emitted exactly one
    update record, every broadcast copy (records x [cores - 1] peers) is
    accounted exactly once as applied, coalesced or stale, and after the
    quiescent barrier all replica digests are pairwise equal. *)
val check_scr :
  completions:int -> cores:int -> Scaleout.Scr.result -> violation list

(** {2 Adaptive-runtime rules}

    Checked on a closed-loop {!Adaptive.Driver.outcome}: every applied
    move landed at a quiescent boundary (pulled = completed at the
    apply), the decision log's cumulative cycle stamps never regress,
    consecutive decisions chain configurations without gaps (a hold never
    changes the config, and each window starts from the config the
    previous one left), and the bookkeeping matches the log — the
    outcome's move count and the telemetry plane's decision-span count
    both equal what the log records. *)
val check_adaptive : Adaptive.Driver.outcome -> violation list

(** Every executor over a fresh instance of the case; violations tagged
    with the executor label. [?plan] checks the invariants *under* a
    deterministic fault-injection schedule (conservation then reads
    emits + drops + faulted = offered). *)
val check_case : ?plan:Faultgen.t -> Oracle.case -> (string * violation) list

val pp_violation : Format.formatter -> violation -> unit
