(** Seeded, deterministic fault-injection plans.

    A plan maps (seed, pull index) to an optional {!Gunfu.Fault.injection}
    through a stateless avalanche hash: the same plan armed against two
    runs of the same case produces bit-identical fault schedules, which is
    what lets the differential oracle require zero cross-executor
    divergence *under* injection. *)

type t

val default_rate_ppm : int
(** 10_000 ppm = 1% of pulled packets. *)

val create : ?rate_ppm:int -> seed:int -> unit -> t
(** @raise Invalid_argument when [rate_ppm] is outside [0, 1_000_000]. *)

val seed : t -> int
val rate_ppm : t -> int

val decide : t -> int -> Gunfu.Fault.injection option
(** The injection decided for a pull index — pure, total, stateless. *)

val planned : t -> packets:int -> int
(** Number of injections the plan decides over pull indices
    [0 .. packets-1]. *)

val decide_kill : t -> cores:int -> packets:int -> (int * int) option
(** The [Kill_core] schedule for a platform run: [Some (victim, g)] kills
    core [victim] right after the global pull with index [g] (confined to
    the middle half of [packets]). Deterministic in (seed, cores, packets);
    [None] when [cores < 2] — a lone core has no survivor to adopt its
    flows, matching Kill_core's executor-inertness. *)

val corrupt : t -> index:int -> Netcore.Packet.t -> unit
(** Deterministically mangle a packet (truncate + scribble); exposed for
    the parser-robustness fuzz tests. *)

val instrument : t -> plane:Gunfu.Fault.t -> Gunfu.Workload.source -> Gunfu.Workload.source
(** Wrap a source: each pulled packet rolls the plan at its pull index;
    a decided injection is registered in [plane] keyed by the packet's
    run-local id, and [Corrupt_packet] additionally mangles the packet
    bytes via {!corrupt}. The stream's items and order are unchanged. *)
