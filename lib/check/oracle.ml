(* The differential execution oracle.

   The paper's central claim is that interleaved function-stream execution
   is a pure scheduling transformation: Rtc, Batch_rtc and Scheduler (both
   policies, any n_tasks) must produce the same packets, the same drops,
   the same final NF state, and the same per-flow output order for the
   same program and workload. This module runs one case through every
   executor and diffs the observable behaviour against the RTC reference,
   reporting the first divergence with a minimized, seed-replayable repro.

   Executors mutate packets in place and advance per-NF state, so every
   run gets a *fresh* instance (worker, program, NF state, workload) built
   from the case's deterministic seed — replay is rebuild-from-equal-seed,
   never source sharing. *)

open Gunfu

(* One completed packet as observed at the executor's completion hook. *)
type emit = {
  e_flow : int;  (* workload flow hint; -1 = unordered *)
  e_aux : int;
  e_event : string;  (* terminal event key *)
  e_dropped : bool;
  e_wire : int;
  e_pkt : string;  (* fingerprint of the final header bytes; "" if none *)
  e_pktid : int;  (* run-local packet id, for order checks *)
  e_clock : int;  (* simulated completion time *)
}

type observation = {
  o_label : string;
  o_run : Metrics.run;
  o_emits : emit list;  (* completion order *)
  o_inputs : (int * int) list;  (* (pktid, flow) in pull order *)
  o_state : string;  (* final NF-state digest *)
  o_mshr_pending : int;  (* outstanding fills at end of run *)
  o_mshr_limit : int;
}

(* A freshly built system under test; consumed by exactly one run. *)
type instance = {
  worker : Worker.t;
  program : Program.t;
  source : Workload.source;
  digest : Fingerprint.t -> unit;
}

type case = {
  c_name : string;
  c_seed : int;
  c_profile : string;
  c_packets : int;
  c_build : packets:int -> instance;
  c_repro : packets:int -> string;  (* one-command replay *)
}

type divergence = {
  d_case : string;
  d_seed : int;
  d_profile : string;
  d_exec : string;
  d_packets : int;  (* minimized workload length *)
  d_detail : string;
  d_repro : string;
}

(* ----- executors under comparison ----- *)

type executor = {
  x_name : string;
  x_run :
    ?fault:Fault.t -> ?telemetry:Trace.t -> on_complete:(Nftask.t -> unit) ->
    Worker.t -> Program.t -> Workload.source -> Metrics.run;
}

let reference =
  {
    x_name = "rtc";
    x_run =
      (fun ?fault ?telemetry ~on_complete w p s ->
        Rtc.run ?fault ?telemetry ~on_complete w p s);
  }

let batch_sizes = [ 1; 8; 32 ]
let task_counts = [ 1; 2; 4; 8; 16 ]

let executors =
  List.map
    (fun b ->
      {
        x_name = Printf.sprintf "batch-%d" b;
        x_run =
          (fun ?fault ?telemetry ~on_complete w p s ->
            Batch_rtc.run ~batch:b ?fault ?telemetry ~on_complete w p s);
      })
    batch_sizes
  @ List.concat_map
      (fun n ->
        [
          {
            x_name = Printf.sprintf "rr-%d" n;
            x_run =
              (fun ?fault ?telemetry ~on_complete w p s ->
                Scheduler.run ~policy:Scheduler.Round_robin ?fault ?telemetry
                  ~on_complete w p ~n_tasks:n s);
          };
          {
            x_name = Printf.sprintf "rf-%d" n;
            x_run =
              (fun ?fault ?telemetry ~on_complete w p s ->
                Scheduler.run ~policy:Scheduler.Ready_first ?fault ?telemetry
                  ~on_complete w p ~n_tasks:n s);
          };
        ])
      task_counts

let executor_names = List.map (fun x -> x.x_name) (reference :: executors)

(* ----- observation ----- *)

let packet_fingerprint (p : Netcore.Packet.t) =
  Fingerprint.of_fn (fun fp ->
      Fingerprint.feed_sub fp p.Netcore.Packet.buf ~off:0 ~len:p.Netcore.Packet.hdr_len;
      Fingerprint.feed_int fp p.Netcore.Packet.wire_len;
      Fingerprint.feed_int fp p.Netcore.Packet.l3_off;
      Fingerprint.feed_int fp p.Netcore.Packet.l4_off)

let observe ?(specialize = false) ?plan ?telemetry (x : executor) (inst : instance) :
    observation =
  (* The specialization axis: attach (or strip) the compiled hot path on
     this instance's program before the run. Stripping matters when a
     caller reuses one program across observations — the interpreted
     baseline must genuinely interpret. *)
  if specialize then Specialize.install inst.program
  else Specialize.remove inst.program;
  let label = if specialize then x.x_name ^ "+spec" else x.x_name in
  let ctx = Worker.ctx inst.worker in
  (* One fresh plane per run: the plan decides by pull index, so identical
     plans arm identical schedules in every executor. *)
  let plane = Option.map (fun _ -> Fault.create ()) plan in
  let base_source =
    match (plan, plane) with
    | Some pl, Some pn -> Faultgen.instrument pl ~plane:pn inst.source
    | _ -> inst.source
  in
  let emits = ref [] in
  let inputs = ref [] in
  let on_complete (task : Nftask.t) =
    let dropped =
      Event.equal task.Nftask.event Event.Drop_packet
      || Event.equal task.Nftask.event Event.Match_fail
    in
    let e_pkt, e_pktid, e_wire =
      match task.Nftask.packet with
      | Some p -> (packet_fingerprint p, p.Netcore.Packet.id, p.Netcore.Packet.wire_len)
      | None -> ("", -1, 0)
    in
    emits :=
      {
        e_flow = task.Nftask.flow_hint;
        e_aux = task.Nftask.aux;
        e_event = Event.to_key task.Nftask.event;
        e_dropped = dropped;
        e_wire;
        e_pkt;
        e_pktid;
        e_clock = ctx.Exec_ctx.clock;
      }
      :: !emits
  in
  let source =
    Workload.tap
      (fun item ->
        let pid =
          match item.Workload.packet with
          | Some p -> p.Netcore.Packet.id
          | None -> -1
        in
        inputs := (pid, item.Workload.flow_hint) :: !inputs)
      base_source
  in
  let run = x.x_run ?fault:plane ?telemetry ~on_complete inst.worker inst.program source in
  let mem = ctx.Exec_ctx.mem in
  {
    o_label = label;
    o_run = run;
    o_emits = List.rev !emits;
    o_inputs = List.rev !inputs;
    o_state = Fingerprint.of_fn inst.digest;
    o_mshr_pending = Memsim.Hierarchy.mshr_pending_count mem ~now:ctx.Exec_ctx.clock;
    o_mshr_limit = (Memsim.Hierarchy.config mem).Memsim.Hierarchy.mshr_count;
  }

(* ----- diffing ----- *)

(* What a packet's journey must look like regardless of executor. The
   packet id is deliberately excluded: ids are run-local. *)
let emit_content e = (e.e_flow, e.e_aux, e.e_event, e.e_dropped, e.e_wire, e.e_pkt)

let pp_content ppf (flow, aux, ev, dropped, wire, pkt) =
  Fmt.pf ppf "flow=%d aux=%d event=%s dropped=%b wire=%d pkt=%s" flow aux ev dropped
    wire
    (if pkt = "" then "-" else pkt)

let per_flow_streams emits =
  let tbl : (int, (int * int * string * bool * int * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun e ->
      let l =
        match Hashtbl.find_opt tbl e.e_flow with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add tbl e.e_flow l;
            l
      in
      l := emit_content e :: !l)
    emits;
  Hashtbl.fold (fun flow l acc -> (flow, List.rev !l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* First difference between the reference observation and another
   executor's, or [None] when behaviourally identical. *)
let diff_observations ~(reference : observation) (obs : observation) : string option =
  let ref_flows = List.map snd reference.o_inputs in
  let obs_flows = List.map snd obs.o_inputs in
  if ref_flows <> obs_flows then
    Some
      (Printf.sprintf "input streams differ: reference pulled %d items, %s pulled %d"
         (List.length ref_flows) obs.o_label (List.length obs_flows))
  else if reference.o_run.Metrics.packets <> obs.o_run.Metrics.packets then
    Some
      (Printf.sprintf "completed-packet counts differ: %d (rtc) vs %d (%s)"
         reference.o_run.Metrics.packets obs.o_run.Metrics.packets obs.o_label)
  else if reference.o_run.Metrics.drops <> obs.o_run.Metrics.drops then
    Some
      (Printf.sprintf "drop counts differ: %d (rtc) vs %d (%s)"
         reference.o_run.Metrics.drops obs.o_run.Metrics.drops obs.o_label)
  else if reference.o_run.Metrics.faulted <> obs.o_run.Metrics.faulted then
    Some
      (Printf.sprintf "faulted counts differ: %d (rtc) vs %d (%s)"
         reference.o_run.Metrics.faulted obs.o_run.Metrics.faulted obs.o_label)
  else if reference.o_run.Metrics.degraded <> obs.o_run.Metrics.degraded then
    Some
      (Printf.sprintf "degraded flags differ: %b (rtc) vs %b (%s)"
         reference.o_run.Metrics.degraded obs.o_run.Metrics.degraded obs.o_label)
  else if reference.o_run.Metrics.faults <> obs.o_run.Metrics.faults then
    let pp faults =
      String.concat ", "
        (List.map
           (fun (nf, r, n) -> Printf.sprintf "%s/%s x%d" nf (Fault.reason_to_key r) n)
           faults)
    in
    Some
      (Printf.sprintf "fault taxonomies differ: {%s} (rtc) vs {%s} (%s)"
         (pp reference.o_run.Metrics.faults)
         (pp obs.o_run.Metrics.faults)
         obs.o_label)
  else if reference.o_run.Metrics.wire_bytes <> obs.o_run.Metrics.wire_bytes then
    Some
      (Printf.sprintf "wire byte counts differ: %d (rtc) vs %d (%s)"
         reference.o_run.Metrics.wire_bytes obs.o_run.Metrics.wire_bytes obs.o_label)
  else begin
    let ref_streams = per_flow_streams reference.o_emits in
    let obs_streams = per_flow_streams obs.o_emits in
    (* Flow -1 marks unordered items: only their multiset must agree. *)
    let normalize (flow, stream) =
      if flow < 0 then (flow, List.sort compare stream) else (flow, stream)
    in
    let ref_streams = List.map normalize ref_streams in
    let obs_streams = List.map normalize obs_streams in
    let rec first_diff = function
      | [], [] -> None
      | (flow, _) :: _, [] | [], (flow, _) :: _ ->
          Some (Printf.sprintf "flow %d present in only one executor's output" flow)
      | (fa, sa) :: ra, (fb, sb) :: rb ->
          if fa <> fb then
            Some (Printf.sprintf "flow sets differ: %d (rtc) vs %d (%s)" fa fb obs.o_label)
          else if sa <> sb then begin
            let rec pos i = function
              | a :: ta, b :: tb -> if a <> b then (i, Some a, Some b) else pos (i + 1) (ta, tb)
              | a :: _, [] -> (i, Some a, None)
              | [], b :: _ -> (i, None, Some b)
              | [], [] -> (i, None, None)
            in
            let i, a, b = pos 0 (sa, sb) in
            let pp = function
              | Some c -> Fmt.str "%a" pp_content c
              | None -> "<missing>"
            in
            Some
              (Printf.sprintf "flow %d diverges at its packet #%d: rtc {%s} vs %s {%s}"
                 fa i (pp a) obs.o_label (pp b))
          end
          else first_diff (ra, rb)
    in
    match first_diff (ref_streams, obs_streams) with
    | Some d -> Some d
    | None ->
        if reference.o_state <> obs.o_state then
          Some
            (Printf.sprintf "final NF state digests differ: %s (rtc) vs %s (%s)"
               reference.o_state obs.o_state obs.o_label)
        else None
  end

(* ----- checking and minimization ----- *)

let diverges ?plan ?specialize case exec ~packets =
  let ref_obs = observe ?plan reference (case.c_build ~packets) in
  let obs = observe ?specialize ?plan exec (case.c_build ~packets) in
  diff_observations ~reference:ref_obs obs

(* Smallest workload prefix still showing a divergence, by binary search
   (assumes monotonicity — the usual delta-debugging simplification; the
   result is a repro aid, not a proof of minimality). *)
let minimize ?plan ?specialize case exec ~packets =
  let rec go lo hi =
    (* Invariant: [hi] diverges; [lo] does not. *)
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if diverges ?plan ?specialize case exec ~packets:mid <> None then go lo mid
      else go mid hi
  in
  if packets <= 1 then packets else go 0 packets

let check_case ?(minimized = true) ?(specialize = false) ?plan (case : case) :
    divergence option =
  let ref_obs = observe ?plan reference (case.c_build ~packets:case.c_packets) in
  (* The comparison matrix: every non-reference executor interpreted and —
     with [specialize] — every executor (reference included) under the
     compiled hot path, all against the interpreted RTC reference. *)
  let variants =
    List.map (fun x -> (x, false)) executors
    @ (if specialize then List.map (fun x -> (x, true)) (reference :: executors) else [])
  in
  let rec scan = function
    | [] -> None
    | (exec, spec) :: rest -> (
        let obs =
          observe ~specialize:spec ?plan exec (case.c_build ~packets:case.c_packets)
        in
        match diff_observations ~reference:ref_obs obs with
        | None -> scan rest
        | Some detail ->
            let packets =
              if minimized then
                minimize ?plan ~specialize:spec case exec ~packets:case.c_packets
              else case.c_packets
            in
            let detail =
              match diverges ?plan ~specialize:spec case exec ~packets with
              | Some d when minimized -> d
              | _ -> detail
            in
            Some
              {
                d_case = case.c_name;
                d_seed = case.c_seed;
                d_profile = case.c_profile;
                d_exec = (if spec then exec.x_name ^ "+spec" else exec.x_name);
                d_packets = packets;
                d_detail = detail;
                d_repro = case.c_repro ~packets;
              })
  in
  scan variants

let check_cases ?minimized ?specialize ?plan cases =
  List.filter_map (check_case ?minimized ?specialize ?plan) cases

let pp_divergence ppf d =
  Fmt.pf ppf
    "@[<v>DIVERGENCE in case %s (seed %d, profile %s)@,\
     executor %s disagrees with rtc after %d packets:@,\
     %s@,\
     replay: %s@]"
    d.d_case d.d_seed d.d_profile d.d_exec d.d_packets d.d_detail d.d_repro
