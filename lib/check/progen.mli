(** Deterministic generation of random-but-valid NF programs and
    adversarial traffic for the differential oracle: catalog chains drawn
    from the shipped NF families, synthetic random-DAG modules behind a
    real classifier, and cases built from the compositions under [specs/].
    Everything is a pure function of its seed, so a reported divergence is
    replayable from [(seed, profile, packets)] alone.

    Generated programs avoid cross-flow-order-dependent state (e.g. the
    dynamic NAT learner's shared allocator), whose final state legitimately
    differs between legal interleavings. *)

(** ["uniform"; "zipf"; "burst"; "mix"]. *)
val profiles : string list

(** Composition names accepted by {!spec_case}. *)
val spec_names : string list

(** Workload over [gen]'s flow universe in the given profile; [burst]
    produces single-flow runs, [mix] tightly interleaved hot flows.
    @raise Invalid_argument on unknown profiles. *)
val make_source :
  profile:string -> seed:int -> gen:Traffic.Flowgen.t ->
  pool:Netcore.Packet.Pool.pool -> packets:int -> Gunfu.Workload.source

(** A generated oracle case (chain or synthetic, chosen by the seed). *)
val case : seed:int -> profile:string -> packets:int -> Oracle.case

(** [count] seeds × all {!profiles}. *)
val cases : seed:int -> count:int -> packets:int -> Oracle.case list

(** One case per composition in [specs_dir] (nat, sfc4, upf_downlink),
    executing the on-disk module FSMs. [opts] overrides the compiler
    options (default {!Gunfu.Compiler.default_opts}). *)
val spec_cases :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> seed:int -> packets:int -> unit ->
  Oracle.case list

(** @raise Invalid_argument on unknown composition names. *)
val spec_case :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> name:string -> seed:int ->
  packets:int -> unit -> Oracle.case

(** The static analyzer's view of a composition in [specs_dir] — the
    same assembly {!spec_case} executes, stopped at
    {!Gunfu.Compiler.lint_view} instead of compiled. Accepts any
    catalog-buildable composition plus ["upf_downlink"]. *)
val spec_lint_input :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> name:string -> unit ->
  Gunfu.Compiler.lint_input

(** Compiler options with every optimization pass enabled (match removal,
    prefetch dedup, specialize) and both hooks off — what the
    translation-validation entry points compile with. *)
val verify_opts : Gunfu.Compiler.opts

(** The symbolic checker's input for the generated program at [seed]:
    the same shape (chain or synthetic) the oracle would fuzz, compiled
    with {!verify_opts}. *)
val gen_verify_input : seed:int -> Gunfu.Compiler.verify_input

(** The symbolic checker's input for a composition in [specs_dir] — the
    same assembly {!spec_case} executes, through the full pipeline
    ({!Gunfu.Compiler.verify_view}). [opts] defaults to {!verify_opts}.
    Accepts the names in {!spec_names}. *)
val spec_verify_input :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> name:string -> unit ->
  Gunfu.Compiler.verify_input

(** A random well-formed NF-C program (pure function of [seed]), built
    through {!Gunfu.Nfc.of_body} — the subject of the
    parse-print round-trip property. *)
val random_nfc : seed:int -> Gunfu.Nfc.t
