(** Deterministic generation of random-but-valid NF programs and
    adversarial traffic for the differential oracle: catalog chains drawn
    from the shipped NF families, synthetic random-DAG modules behind a
    real classifier, and cases built from the compositions under [specs/].
    Everything is a pure function of its seed, so a reported divergence is
    replayable from [(seed, profile, packets)] alone.

    Generated programs avoid cross-flow-order-dependent state (e.g. the
    dynamic NAT learner's shared allocator), whose final state legitimately
    differs between legal interleavings. *)

(** ["uniform"; "zipf"; "burst"; "mix"]. *)
val profiles : string list

(** Composition names accepted by {!spec_case}. *)
val spec_names : string list

(** Workload over [gen]'s flow universe in the given profile; [burst]
    produces single-flow runs, [mix] tightly interleaved hot flows.
    @raise Invalid_argument on unknown profiles. *)
val make_source :
  profile:string -> seed:int -> gen:Traffic.Flowgen.t ->
  pool:Netcore.Packet.Pool.pool -> packets:int -> Gunfu.Workload.source

(** A generated oracle case (chain or synthetic, chosen by the seed). *)
val case : seed:int -> profile:string -> packets:int -> Oracle.case

(** [count] seeds × all {!profiles}. *)
val cases : seed:int -> count:int -> packets:int -> Oracle.case list

(** {2 Recovery-plane building blocks}

    The core-failure engine rebuilds one instance of a generated program
    per simulated core, each populated with only the flows that core owns
    — so the pieces behind {!case} (shape draws, flow universe, unit
    assembly) are exposed as data here. *)

(** Generated wire length (bytes) of every non-MGW packet. *)
val wire_len : int

(** The flow universe a generated case draws traffic from. *)
val flowgen_for : profile:string -> seed:int -> n_flows:int -> Traffic.Flowgen.t

(** The deliberately small memory system generated cases run under
    (pressure makes reordering bugs observable). *)
val small_mem_cfg : Memsim.Hierarchy.config

val fresh_worker : unit -> Gunfu.Worker.t

(** Catalog chain families drawn by the chain shape. *)
type family = F_nat | F_lb | F_fw | F_nm

val chain_spec : family list -> Gunfu.Spec.nf_spec
val builtin_modules : (string * Gunfu.Spec.module_spec) list Lazy.t

(** Per-state shape of the synthetic random DAG. *)
type sstate = { s_hi : int option; s_drop : bool }

(** The synthetic shape's draws plus the module spec they determine. *)
type syn_shape = {
  syn_k : int;
  syn_states : sstate array;
  syn_mspec : Gunfu.Spec.module_spec;
  syn_flows : int;
  syn_opts : Gunfu.Compiler.opts;
}

(** The synthetic unit's mutable state: arrays indexed by local slot,
    [syn_ident] mapping each slot to the flow's universe id (what the
    action mixer keys on — flow behaviour is placement-independent). *)
type syn_state = {
  syn_classifier : Nfs.Classifier.t;
  syn_seqs : int array;
  syn_scratch : int array;
  syn_total : int ref;
  syn_ident : int array;
  mutable syn_next : int;
}

(** The unit behind the shape, its oracle digest, and its state handle.
    [ident] gives each populated slot's universe flow id (default: the
    slot index). *)
val synthetic_unit :
  Memsim.Layout.t -> seed:int -> sh:syn_shape -> ?ident:int array ->
  flows:Netcore.Flow.t array -> unit ->
  Nfs.Nf_unit.t * (Gunfu.Fingerprint.t -> unit) * syn_state

(** The generated program behind a seed as data: replays exactly the draw
    sequence of {!case}, so [recipe ~seed] describes the program
    [case ~seed ...] would build. *)
type gen_recipe =
  | Chain of { families : family list; n_flows : int; opts : Gunfu.Compiler.opts }
  | Synthetic of { shape : syn_shape }

val recipe : seed:int -> gen_recipe

(** The UPF downlink assembly behind the [upf_downlink] spec case: the
    shipped UPF's instances with module FSMs substituted from [specs_dir].
    With [capacity >= 0] the UPF starts empty (sessions arrive through the
    PFCP admission path — the recovery/storm variant); default is the
    pre-populated oracle shape. *)
val upf_assembly :
  ?capacity:int -> Memsim.Layout.t -> specs_dir:string -> mgw:Traffic.Mgw.t ->
  Nfs.Upf.t * Gunfu.Compiler.instance list * Gunfu.Spec.nf_spec

(** One case per composition in [specs_dir] (nat, sfc4, upf_downlink),
    executing the on-disk module FSMs. [opts] overrides the compiler
    options (default {!Gunfu.Compiler.default_opts}). *)
val spec_cases :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> seed:int -> packets:int -> unit ->
  Oracle.case list

(** @raise Invalid_argument on unknown composition names. *)
val spec_case :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> name:string -> seed:int ->
  packets:int -> unit -> Oracle.case

(** The static analyzer's view of a composition in [specs_dir] — the
    same assembly {!spec_case} executes, stopped at
    {!Gunfu.Compiler.lint_view} instead of compiled. Accepts any
    catalog-buildable composition plus ["upf_downlink"]. *)
val spec_lint_input :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> name:string -> unit ->
  Gunfu.Compiler.lint_input

(** Compiler options with every optimization pass enabled (match removal,
    prefetch dedup, specialize) and both hooks off — what the
    translation-validation entry points compile with. *)
val verify_opts : Gunfu.Compiler.opts

(** The symbolic checker's input for the generated program at [seed]:
    the same shape (chain or synthetic) the oracle would fuzz, compiled
    with {!verify_opts}. *)
val gen_verify_input : seed:int -> Gunfu.Compiler.verify_input

(** The symbolic checker's input for a composition in [specs_dir] — the
    same assembly {!spec_case} executes, through the full pipeline
    ({!Gunfu.Compiler.verify_view}). [opts] defaults to {!verify_opts}.
    Accepts the names in {!spec_names}. *)
val spec_verify_input :
  ?opts:Gunfu.Compiler.opts -> specs_dir:string -> name:string -> unit ->
  Gunfu.Compiler.verify_input

(** A random well-formed NF-C program (pure function of [seed]), built
    through {!Gunfu.Nfc.of_body} — the subject of the
    parse-print round-trip property. *)
val random_nfc : seed:int -> Gunfu.Nfc.t
