(* Executor-independent invariants, checked on every oracle observation.
   Unlike the differential diff (which needs a second run to compare
   against), these hold for ANY correct executor in isolation:

   - packet conservation: every pulled item completes, exactly once, and
     the run's packet/drop/byte counters agree with the completion stream;
   - per-flow order: each flow's packets complete in arrival order;
   - monotone clock: completion times never run backwards, and fit inside
     the run's measured cycle window;
   - memsim accounting: every line access is served by exactly one level
     (or an in-flight fill), prefetch issue/redundant/dropped books
     balance, and outstanding fills never exceed the MSHR count. *)

open Gunfu

type violation = { v_rule : string; v_detail : string }

let v rule fmt = Printf.ksprintf (fun s -> { v_rule = rule; v_detail = s }) fmt

(* A completion the fault plane quarantined carries [Event.Faulted] — its
   key round-trips through {!Gunfu.Event.to_key} as "FAULT[reason]". *)
let emit_faulted (e : Oracle.emit) =
  let s = e.Oracle.e_event in
  String.length s > 7 && String.sub s 0 6 = "FAULT["

let check_conservation (o : Oracle.observation) : violation list =
  let n_in = List.length o.Oracle.o_inputs in
  let n_out = List.length o.Oracle.o_emits in
  let drops = List.length (List.filter (fun e -> e.Oracle.e_dropped) o.Oracle.o_emits) in
  let faulted = List.length (List.filter emit_faulted o.Oracle.o_emits) in
  let wire =
    List.fold_left
      (fun acc e ->
        if e.Oracle.e_dropped || emit_faulted e then acc else acc + e.Oracle.e_wire)
      0 o.Oracle.o_emits
  in
  let run = o.Oracle.o_run in
  List.concat
    [
      (if n_in <> n_out then
         [ v "conservation" "%d items pulled but %d completed" n_in n_out ]
       else []);
      (if run.Metrics.packets <> n_out then
         [
           v "conservation" "run reports %d packets but %d completions observed"
             run.Metrics.packets n_out;
         ]
       else []);
      (if run.Metrics.drops <> drops then
         [
           v "conservation" "run reports %d drops but %d dropped completions observed"
             run.Metrics.drops drops;
         ]
       else []);
      (* Every offered packet is accounted exactly once:
         emits + drops + faulted = offered. *)
      (if run.Metrics.faulted <> faulted then
         [
           v "conservation" "run reports %d faulted but %d faulted completions observed"
             run.Metrics.faulted faulted;
         ]
       else []);
      (if run.Metrics.packets - run.Metrics.drops - run.Metrics.faulted
          <> n_out - drops - faulted
       then
         [
           v "conservation"
             "emit accounting broken: offered=%d drops=%d faulted=%d but %d clean completions"
             run.Metrics.packets run.Metrics.drops run.Metrics.faulted
             (n_out - drops - faulted);
         ]
       else []);
      (if run.Metrics.wire_bytes <> wire then
         [
           v "conservation" "run reports %d wire bytes but completions sum to %d"
             run.Metrics.wire_bytes wire;
         ]
       else []);
    ]

(* Each flow's completions must carry that flow's packet ids in arrival
   order — the per-flow order-preservation claim. Flow hint -1 marks items
   the generator declared unordered; they are exempt. *)
let check_flow_order (o : Oracle.observation) : violation list =
  let arrivals : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (pid, flow) ->
      if flow >= 0 then
        match Hashtbl.find_opt arrivals flow with
        | Some l -> l := pid :: !l
        | None -> Hashtbl.add arrivals flow (ref [ pid ]))
    o.Oracle.o_inputs;
  let completions : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.Oracle.e_flow >= 0 then
        match Hashtbl.find_opt completions e.Oracle.e_flow with
        | Some l -> l := e.Oracle.e_pktid :: !l
        | None -> Hashtbl.add completions e.Oracle.e_flow (ref [ e.Oracle.e_pktid ]))
    o.Oracle.o_emits;
  Hashtbl.fold
    (fun flow arr acc ->
      let expect = List.rev !arr in
      let got =
        match Hashtbl.find_opt completions flow with
        | Some l -> List.rev !l
        | None -> []
      in
      if expect <> got then
        v "flow-order" "flow %d arrived as %s but completed as %s" flow
          (String.concat "," (List.map string_of_int expect))
          (String.concat "," (List.map string_of_int got))
        :: acc
      else acc)
    arrivals []

let check_clock (o : Oracle.observation) : violation list =
  let rec monotone prev = function
    | [] -> []
    | e :: rest ->
        if e.Oracle.e_clock < prev then
          [
            v "clock" "completion clock ran backwards: %d after %d" e.Oracle.e_clock
              prev;
          ]
        else monotone e.Oracle.e_clock rest
  in
  let backwards = monotone 0 o.Oracle.o_emits in
  let cycles = o.Oracle.o_run.Metrics.cycles in
  let negative = if cycles < 0 then [ v "clock" "negative run cycles %d" cycles ] else [] in
  backwards @ negative

let check_memstats (o : Oracle.observation) : violation list =
  let m = o.Oracle.o_run.Metrics.mem in
  let served =
    m.Memsim.Memstats.l1_hits + m.Memsim.Memstats.l2_hits + m.Memsim.Memstats.llc_hits
    + m.Memsim.Memstats.dram_fills + m.Memsim.Memstats.mshr_waits
  in
  List.concat
    [
      (if served <> m.Memsim.Memstats.line_accesses then
         [
           v "memsim"
             "per-level serves (%d) do not sum to line accesses (%d): l1=%d l2=%d llc=%d dram=%d mshr=%d"
             served m.Memsim.Memstats.line_accesses m.Memsim.Memstats.l1_hits
             m.Memsim.Memstats.l2_hits m.Memsim.Memstats.llc_hits
             m.Memsim.Memstats.dram_fills m.Memsim.Memstats.mshr_waits;
         ]
       else []);
      (let fields =
         [
           ("line_accesses", m.Memsim.Memstats.line_accesses);
           ("l1_hits", m.Memsim.Memstats.l1_hits);
           ("l2_hits", m.Memsim.Memstats.l2_hits);
           ("llc_hits", m.Memsim.Memstats.llc_hits);
           ("dram_fills", m.Memsim.Memstats.dram_fills);
           ("mshr_waits", m.Memsim.Memstats.mshr_waits);
           ("wait_cycles", m.Memsim.Memstats.wait_cycles);
           ("prefetch_issued", m.Memsim.Memstats.prefetch_issued);
           ("prefetch_redundant", m.Memsim.Memstats.prefetch_redundant);
           ("prefetch_dropped", m.Memsim.Memstats.prefetch_dropped);
           ("mshr_stalls", m.Memsim.Memstats.mshr_stalls);
         ]
       in
       List.filter_map
         (fun (name, value) ->
           if value < 0 then Some (v "memsim" "negative counter %s = %d" name value)
           else None)
         fields);
      (if o.Oracle.o_mshr_pending > o.Oracle.o_mshr_limit then
         [
           v "memsim" "%d fills outstanding at end of run, MSHR limit is %d"
             o.Oracle.o_mshr_pending o.Oracle.o_mshr_limit;
         ]
       else []);
    ]

let check (o : Oracle.observation) : violation list =
  check_conservation o @ check_flow_order o @ check_clock o @ check_memstats o

(* All invariants over every executor's observation of a case; the
   returned violations are tagged with the executor label. *)
let check_case ?plan (case : Oracle.case) : (string * violation) list =
  List.concat_map
    (fun x ->
      let obs =
        Oracle.observe ?plan x (case.Oracle.c_build ~packets:case.Oracle.c_packets)
      in
      List.map (fun viol -> (x.Oracle.x_name, viol)) (check obs))
    (Oracle.reference :: Oracle.executors)

let pp_violation ppf { v_rule; v_detail } = Fmt.pf ppf "[%s] %s" v_rule v_detail
