(* Executor-independent invariants, checked on every oracle observation.
   Unlike the differential diff (which needs a second run to compare
   against), these hold for ANY correct executor in isolation:

   - packet conservation: every pulled item completes, exactly once, and
     the run's packet/drop/byte counters agree with the completion stream;
   - per-flow order: each flow's packets complete in arrival order;
   - monotone clock: completion times never run backwards, and fit inside
     the run's measured cycle window;
   - memsim accounting: every line access is served by exactly one level
     (or an in-flight fill), prefetch issue/redundant/dropped books
     balance, and outstanding fills never exceed the MSHR count. *)

open Gunfu

type violation = { v_rule : string; v_detail : string }

let v rule fmt = Printf.ksprintf (fun s -> { v_rule = rule; v_detail = s }) fmt

(* A completion the fault plane quarantined carries [Event.Faulted] — its
   key round-trips through {!Gunfu.Event.to_key} as "FAULT[reason]". *)
let emit_faulted (e : Oracle.emit) =
  let s = e.Oracle.e_event in
  String.length s > 7 && String.sub s 0 6 = "FAULT["

let check_conservation (o : Oracle.observation) : violation list =
  let n_in = List.length o.Oracle.o_inputs in
  let n_out = List.length o.Oracle.o_emits in
  let drops = List.length (List.filter (fun e -> e.Oracle.e_dropped) o.Oracle.o_emits) in
  let faulted = List.length (List.filter emit_faulted o.Oracle.o_emits) in
  let wire =
    List.fold_left
      (fun acc e ->
        if e.Oracle.e_dropped || emit_faulted e then acc else acc + e.Oracle.e_wire)
      0 o.Oracle.o_emits
  in
  let run = o.Oracle.o_run in
  List.concat
    [
      (if n_in <> n_out then
         [ v "conservation" "%d items pulled but %d completed" n_in n_out ]
       else []);
      (if run.Metrics.packets <> n_out then
         [
           v "conservation" "run reports %d packets but %d completions observed"
             run.Metrics.packets n_out;
         ]
       else []);
      (if run.Metrics.drops <> drops then
         [
           v "conservation" "run reports %d drops but %d dropped completions observed"
             run.Metrics.drops drops;
         ]
       else []);
      (* Every offered packet is accounted exactly once:
         emits + drops + faulted = offered. *)
      (if run.Metrics.faulted <> faulted then
         [
           v "conservation" "run reports %d faulted but %d faulted completions observed"
             run.Metrics.faulted faulted;
         ]
       else []);
      (if run.Metrics.packets - run.Metrics.drops - run.Metrics.faulted
          <> n_out - drops - faulted
       then
         [
           v "conservation"
             "emit accounting broken: offered=%d drops=%d faulted=%d but %d clean completions"
             run.Metrics.packets run.Metrics.drops run.Metrics.faulted
             (n_out - drops - faulted);
         ]
       else []);
      (if run.Metrics.wire_bytes <> wire then
         [
           v "conservation" "run reports %d wire bytes but completions sum to %d"
             run.Metrics.wire_bytes wire;
         ]
       else []);
    ]

(* Each flow's completions must carry that flow's packet ids in arrival
   order — the per-flow order-preservation claim. Flow hint -1 marks items
   the generator declared unordered; they are exempt. *)
let check_flow_order (o : Oracle.observation) : violation list =
  let arrivals : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (pid, flow) ->
      if flow >= 0 then
        match Hashtbl.find_opt arrivals flow with
        | Some l -> l := pid :: !l
        | None -> Hashtbl.add arrivals flow (ref [ pid ]))
    o.Oracle.o_inputs;
  let completions : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.Oracle.e_flow >= 0 then
        match Hashtbl.find_opt completions e.Oracle.e_flow with
        | Some l -> l := e.Oracle.e_pktid :: !l
        | None -> Hashtbl.add completions e.Oracle.e_flow (ref [ e.Oracle.e_pktid ]))
    o.Oracle.o_emits;
  Hashtbl.fold
    (fun flow arr acc ->
      let expect = List.rev !arr in
      let got =
        match Hashtbl.find_opt completions flow with
        | Some l -> List.rev !l
        | None -> []
      in
      if expect <> got then
        v "flow-order" "flow %d arrived as %s but completed as %s" flow
          (String.concat "," (List.map string_of_int expect))
          (String.concat "," (List.map string_of_int got))
        :: acc
      else acc)
    arrivals []

let check_clock (o : Oracle.observation) : violation list =
  let rec monotone prev = function
    | [] -> []
    | e :: rest ->
        if e.Oracle.e_clock < prev then
          [
            v "clock" "completion clock ran backwards: %d after %d" e.Oracle.e_clock
              prev;
          ]
        else monotone e.Oracle.e_clock rest
  in
  let backwards = monotone 0 o.Oracle.o_emits in
  let cycles = o.Oracle.o_run.Metrics.cycles in
  let negative = if cycles < 0 then [ v "clock" "negative run cycles %d" cycles ] else [] in
  backwards @ negative

let check_memstats (o : Oracle.observation) : violation list =
  let m = o.Oracle.o_run.Metrics.mem in
  let served =
    m.Memsim.Memstats.l1_hits + m.Memsim.Memstats.l2_hits + m.Memsim.Memstats.llc_hits
    + m.Memsim.Memstats.dram_fills + m.Memsim.Memstats.mshr_waits
  in
  List.concat
    [
      (if served <> m.Memsim.Memstats.line_accesses then
         [
           v "memsim"
             "per-level serves (%d) do not sum to line accesses (%d): l1=%d l2=%d llc=%d dram=%d mshr=%d"
             served m.Memsim.Memstats.line_accesses m.Memsim.Memstats.l1_hits
             m.Memsim.Memstats.l2_hits m.Memsim.Memstats.llc_hits
             m.Memsim.Memstats.dram_fills m.Memsim.Memstats.mshr_waits;
         ]
       else []);
      (let fields =
         [
           ("line_accesses", m.Memsim.Memstats.line_accesses);
           ("l1_hits", m.Memsim.Memstats.l1_hits);
           ("l2_hits", m.Memsim.Memstats.l2_hits);
           ("llc_hits", m.Memsim.Memstats.llc_hits);
           ("dram_fills", m.Memsim.Memstats.dram_fills);
           ("mshr_waits", m.Memsim.Memstats.mshr_waits);
           ("wait_cycles", m.Memsim.Memstats.wait_cycles);
           ("prefetch_issued", m.Memsim.Memstats.prefetch_issued);
           ("prefetch_redundant", m.Memsim.Memstats.prefetch_redundant);
           ("prefetch_dropped", m.Memsim.Memstats.prefetch_dropped);
           ("mshr_stalls", m.Memsim.Memstats.mshr_stalls);
         ]
       in
       List.filter_map
         (fun (name, value) ->
           if value < 0 then Some (v "memsim" "negative counter %s = %d" name value)
           else None)
         fields);
      (if o.Oracle.o_mshr_pending > o.Oracle.o_mshr_limit then
         [
           v "memsim" "%d fills outstanding at end of run, MSHR limit is %d"
             o.Oracle.o_mshr_pending o.Oracle.o_mshr_limit;
         ]
       else []);
    ]

let check (o : Oracle.observation) : violation list =
  check_conservation o @ check_flow_order o @ check_clock o @ check_memstats o

(* ----- recovery-plane rules ----- *)

(* Replay-aware conservation across a platform run with a core failure.
   The adopter re-processes the victim's logged suffix, so live cores
   collectively complete [offered + replayed] packets; after suppressing
   the replayed duplicates exactly [offered] completions remain, the
   emit/drop/fault split is preserved, and every suppressed duplicate is
   content-identical to the original the dead core already emitted — the
   exactly-once emit policy. [suppressed] pairs each suppressed duplicate
   with the victim's original ([None] when no original exists, itself a
   violation). *)
let check_recovery ~offered ~(live : (string * Oracle.observation) list)
    ~(deduped : Oracle.emit list)
    ~(suppressed : (Oracle.emit * Oracle.emit option) list) : violation list =
  let replayed = List.length suppressed in
  let total =
    List.fold_left (fun acc (_, o) -> acc + o.Oracle.o_run.Metrics.packets) 0 live
  in
  let all_emits = List.concat_map (fun (_, o) -> o.Oracle.o_emits) live in
  let dups = List.map fst suppressed in
  let drops l = List.length (List.filter (fun (e : Oracle.emit) -> e.Oracle.e_dropped) l) in
  let faults l = List.length (List.filter emit_faulted l) in
  List.concat
    [
      (if total <> offered + replayed then
         [
           v "recovery-conservation"
             "live cores completed %d packets but offered=%d + replayed=%d" total
             offered replayed;
         ]
       else []);
      (if List.length deduped <> offered then
         [
           v "recovery-conservation" "%d deduplicated completions but %d offered"
             (List.length deduped) offered;
         ]
       else []);
      (if drops all_emits <> drops deduped + drops dups then
         [
           v "recovery-conservation"
             "drop split broken: live cores dropped %d but deduped=%d + suppressed=%d"
             (drops all_emits) (drops deduped) (drops dups);
         ]
       else []);
      (if faults all_emits <> faults deduped + faults dups then
         [
           v "recovery-conservation"
             "fault split broken: live cores faulted %d but deduped=%d + suppressed=%d"
             (faults all_emits) (faults deduped) (faults dups);
         ]
       else []);
      List.filter_map
        (fun ((dup : Oracle.emit), orig) ->
          match orig with
          | None ->
              Some
                (v "exactly-once"
                   "replayed completion (pkt %d, flow %d) has no original on the dead core"
                   dup.Oracle.e_pktid dup.Oracle.e_flow)
          | Some (orig : Oracle.emit) ->
              if Oracle.emit_content dup <> Oracle.emit_content orig then
                Some
                  (v "exactly-once"
                     "replayed completion (pkt %d, flow %d) diverged from the dead core's original"
                     dup.Oracle.e_pktid dup.Oracle.e_flow)
              else None)
        suppressed;
    ]

(* ----- telemetry-plane rules ----- *)

(* span-nesting: per packet (sp_unit), the span tree is well-nested —
   action spans of one unit never overlap each other, and every memory
   span attributed to a unit lies inside one of that unit's action spans
   (memory traffic outside an action is attributed to unit -1 by
   construction). Only checkable when the ring kept every span. *)
let check_span_nesting ~(spans : Trace.span array) ~dropped : violation list =
  if dropped > 0 then []
  else begin
    let by_unit : (int, Trace.span list ref) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun (sp : Trace.span) ->
        if sp.Trace.sp_unit >= 0 then
          match Hashtbl.find_opt by_unit sp.Trace.sp_unit with
          | Some l -> l := sp :: !l
          | None -> Hashtbl.add by_unit sp.Trace.sp_unit (ref [ sp ]))
      spans;
    Hashtbl.fold
      (fun unit l acc ->
        let sps = List.rev !l in
        let actions =
          List.filter (fun sp -> sp.Trace.sp_phase = Trace.Action_body) sps
          |> List.sort (fun a b -> compare a.Trace.sp_ts b.Trace.sp_ts)
        in
        let overlap =
          let rec go = function
            | a :: (b :: _ as rest) ->
                if a.Trace.sp_ts + a.Trace.sp_dur > b.Trace.sp_ts then
                  [
                    v "span-nesting"
                      "unit %d: action spans overlap (%s [%d,%d) vs %s [%d,%d))" unit
                      a.Trace.sp_cs a.Trace.sp_ts
                      (a.Trace.sp_ts + a.Trace.sp_dur)
                      b.Trace.sp_cs b.Trace.sp_ts
                      (b.Trace.sp_ts + b.Trace.sp_dur);
                  ]
                else go rest
            | _ -> []
          in
          go actions
        in
        let contained =
          List.filter_map
            (fun (sp : Trace.span) ->
              match sp.Trace.sp_phase with
              | Trace.State_access | Trace.Mshr_wait ->
                  let inside (a : Trace.span) =
                    a.Trace.sp_ts <= sp.Trace.sp_ts
                    && sp.Trace.sp_ts + sp.Trace.sp_dur <= a.Trace.sp_ts + a.Trace.sp_dur
                  in
                  if List.exists inside actions then None
                  else
                    Some
                      (v "span-nesting"
                         "unit %d: memory span at [%d,%d) lies outside every action span"
                         unit sp.Trace.sp_ts
                         (sp.Trace.sp_ts + sp.Trace.sp_dur))
              | _ -> None)
            sps
        in
        overlap @ contained @ acc)
      by_unit []
  end

(* span-budget: the cycles the trace attributes (pull + action + prefetch
   + switch + out-of-action memory traffic; no double counting) can never
   exceed the cycles the run measured. *)
let check_span_budget (tr : Trace.t) (run : Metrics.run) : violation list =
  let attributed = Trace.attributed_cycles tr in
  if attributed > run.Metrics.cycles then
    [
      v "span-budget" "trace attributes %d cycles but the run measured only %d"
        attributed run.Metrics.cycles;
    ]
  else []

(* span-memstats: the tap fires exactly once per demand line access, so
   per-level serve counts must equal the run's Memstats delta. *)
let check_span_memstats (tr : Trace.t) (run : Metrics.run) : violation list =
  let m = run.Metrics.mem in
  let expected =
    [
      (Trace.L1, m.Memsim.Memstats.l1_hits);
      (Trace.L2, m.Memsim.Memstats.l2_hits);
      (Trace.Llc, m.Memsim.Memstats.llc_hits);
      (Trace.Dram, m.Memsim.Memstats.dram_fills);
      (Trace.Inflight, m.Memsim.Memstats.mshr_waits);
    ]
  in
  List.filter_map
    (fun (level, want) ->
      let got = Trace.level_count tr level in
      if got <> want then
        Some
          (v "span-memstats" "%s serves: trace counted %d but memstats says %d"
             (Trace.level_name level) got want)
      else None)
    expected

(* All telemetry rules for a traced run. [?spans] overrides the span set
   (the tamper tests inject doctored copies; the books are unaffected). *)
let check_telemetry ?spans (tr : Trace.t) (run : Metrics.run) : violation list =
  let spans = match spans with Some s -> s | None -> Trace.spans tr in
  check_span_nesting ~spans ~dropped:(Trace.dropped tr)
  @ check_span_budget tr run @ check_span_memstats tr run

(* ----- SCR-plane rules ----- *)

(* Update-stream conservation for a State-Compute Replication run. Every
   flow-bearing completion must have emitted exactly one update record;
   each record is broadcast to [cores - 1] peers and every broadcast copy
   must end up exactly one of applied, coalesced (superseded while
   pending) or stale (superseded by the peer's own local state) — the
   barrier drains all pending sets, so nothing may remain in flight. And
   the model's defining invariant: after the quiescent barrier all
   replica digests are pairwise equal. *)
let check_scr ~completions ~cores (res : Scaleout.Scr.result) : violation list =
  let st = res.Scaleout.Scr.sr_stats in
  let logged =
    Array.fold_left
      (fun a l -> a + Scaleout.Update_log.length l)
      0 res.Scaleout.Scr.sr_logs
  in
  List.concat
    [
      (if not res.Scaleout.Scr.sr_converged then
         [
           v "scr-convergence"
             "replica digests differ after the quiescent barrier: %s"
             (String.concat " " (Array.to_list res.Scaleout.Scr.sr_replica_digests));
         ]
       else []);
      (if st.Scaleout.Scr.st_records <> completions then
         [
           v "scr-emission"
             "%d flow-bearing completions but %d update records emitted"
             completions st.Scaleout.Scr.st_records;
         ]
       else []);
      (if logged <> st.Scaleout.Scr.st_records then
         [
           v "scr-emission" "per-core logs hold %d records but %d were emitted"
             logged st.Scaleout.Scr.st_records;
         ]
       else []);
      (if
         st.Scaleout.Scr.st_records * (cores - 1)
         <> st.Scaleout.Scr.st_applied + st.Scaleout.Scr.st_coalesced
            + st.Scaleout.Scr.st_stale
       then
         [
           v "scr-conservation"
             "%d records x %d peers = %d broadcast copies, but applied=%d + \
              coalesced=%d + stale=%d = %d"
             st.Scaleout.Scr.st_records (cores - 1)
             (st.Scaleout.Scr.st_records * (cores - 1))
             st.Scaleout.Scr.st_applied st.Scaleout.Scr.st_coalesced
             st.Scaleout.Scr.st_stale
             (st.Scaleout.Scr.st_applied + st.Scaleout.Scr.st_coalesced
            + st.Scaleout.Scr.st_stale);
         ]
       else []);
      (if st.Scaleout.Scr.st_barrier_applied > st.Scaleout.Scr.st_applied then
         [
           v "scr-conservation" "barrier applied %d records but only %d total applies"
             st.Scaleout.Scr.st_barrier_applied st.Scaleout.Scr.st_applied;
         ]
       else []);
    ]

(* The adaptive-runtime rules: every applied move landed at a quiescent
   boundary, the decision log's cumulative cycle stamps never regress,
   consecutive decisions chain configurations without gaps, and the
   bookkeeping (move count, decision spans) matches the log. *)
let check_adaptive (oc : Adaptive.Driver.outcome) : violation list =
  let module D = Adaptive.Driver in
  let ds = oc.D.o_decisions in
  let move_name d =
    match d.D.d_move with
    | Some m -> Adaptive.Policy.move_label m
    | None -> "hold"
  in
  let quiescence =
    List.filter_map
      (fun (d : D.decision) ->
        if d.D.d_move <> None && not (d.D.d_quiescent && d.D.d_pulled = d.D.d_completed)
        then
          Some
            (v "adaptive-quiescence"
               "window %d: %s applied at a non-quiescent boundary (pulled=%d \
                completed=%d)"
               d.D.d_index (move_name d) d.D.d_pulled d.D.d_completed)
        else None)
      ds
  in
  let holds =
    List.filter_map
      (fun (d : D.decision) ->
        if d.D.d_move = None && not (Adaptive.Config.equal d.D.d_from d.D.d_to) then
          Some
            (v "adaptive-chain" "window %d: hold changed the config %s -> %s"
               d.D.d_index
               (Adaptive.Config.label d.D.d_from)
               (Adaptive.Config.label d.D.d_to))
        else None)
      ds
  in
  let rec pairwise acc = function
    | (a : D.decision) :: (b :: _ as rest) ->
        let acc =
          if Adaptive.Config.equal a.D.d_to b.D.d_from then acc
          else
            v "adaptive-chain" "window %d ended at %s but window %d starts from %s"
              a.D.d_index
              (Adaptive.Config.label a.D.d_to)
              b.D.d_index
              (Adaptive.Config.label b.D.d_from)
            :: acc
        in
        let acc =
          if b.D.d_cycles >= a.D.d_cycles then acc
          else
            v "adaptive-clock" "cycles regress from %d (window %d) to %d (window %d)"
              a.D.d_cycles a.D.d_index b.D.d_cycles b.D.d_index
            :: acc
        in
        pairwise acc rest
    | _ -> List.rev acc
  in
  let n_moves = List.length (List.filter (fun d -> d.D.d_move <> None) ds) in
  let counts =
    (if n_moves <> oc.D.o_moves then
       [ v "adaptive-count" "%d moves in the log but the outcome reports %d" n_moves oc.D.o_moves ]
     else [])
    @
    let spans = Trace.decisions oc.D.o_trace in
    if spans <> List.length ds then
      [
        v "adaptive-count" "%d decisions in the log but %d decision spans traced"
          (List.length ds) spans;
      ]
    else []
  in
  let final =
    match List.rev ds with
    | last :: _ when not (Adaptive.Config.equal last.D.d_to oc.D.o_final) ->
        [
          v "adaptive-chain" "last decision leaves %s but the outcome reports final=%s"
            (Adaptive.Config.label last.D.d_to)
            (Adaptive.Config.label oc.D.o_final);
        ]
    | _ -> []
  in
  List.concat [ quiescence; holds; pairwise [] ds; counts; final ]

(* All invariants over every executor's observation of a case; the
   returned violations are tagged with the executor label. *)
let check_case ?plan (case : Oracle.case) : (string * violation) list =
  List.concat_map
    (fun x ->
      let obs =
        Oracle.observe ?plan x (case.Oracle.c_build ~packets:case.Oracle.c_packets)
      in
      List.map (fun viol -> (x.Oracle.x_name, viol)) (check obs))
    (Oracle.reference :: Oracle.executors)

let pp_violation ppf { v_rule; v_detail } = Fmt.pf ppf "[%s] %s" v_rule v_detail
