(** The State-Compute Replication oracle axis.

    Drives a recovery case ({!Recovery.rcase} — generated program or
    on-disk spec composition) through the SCR executor family
    ({!Scaleout.Scr}) on a multi-core platform and requires behavioural
    equality with a single-core run-to-completion reference: identical
    per-flow emit-content streams (SCR emits merged in global-arrival
    order), identical completion/drop/fault/wire-byte totals and an
    identical location-independent state digest — plus
    {!Invariants.check} on every core's observation,
    {!Invariants.check_scr} on the update stream, and the model's
    replica-convergence invariant.

    Replicas are built from the case's own per-core instance builder
    with [owned] = the full universe (the SCR state model); fault plans
    arm at each item's global stream index, so the injection schedule is
    spray-independent. *)

val engine_name : Scaleout.Scr.engine -> string

(** One SCR platform pass: the pass observables (per-core observations,
    merged per-flow streams, state digest) and the raw engine result. *)
val scr_pass :
  ?plan:Faultgen.t ->
  ?spray:Scaleout.Spray.policy ->
  ?engine:Scaleout.Scr.engine ->
  ?items:Gunfu.Workload.item list ->
  cores:int ->
  Recovery.rcase ->
  Recovery.pass * Scaleout.Scr.result

type outcome = {
  so_case : string;
  so_cores : int;
  so_packets : int;
  so_engine : string;
  so_stats : Scaleout.Scr.stats;
  so_reference : Recovery.pass;
  so_scr : Recovery.pass;
  so_converged : bool;
  so_violations : (string * Invariants.violation) list;
  so_divergence : string option;
  so_repro : string;
}

(** Run the single-core reference and the SCR pass and compare.
    [spray] defaults to round-robin, [engine] to rtc. *)
val check_rcase :
  ?plan:Faultgen.t ->
  ?spray:Scaleout.Spray.policy ->
  ?engine:Scaleout.Scr.engine ->
  cores:int ->
  Recovery.rcase ->
  outcome

(** No violations and no divergence. *)
val passed : outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit
