(* Pre-allocated per-flow / sub-flow state datablocks (§V, "NF Management"):
   the runtime allocates [count] fixed-size entries up front; a successful
   match yields an entry index, and actions reach their state at
   [base + index * stride].

   Two layouts:
   - {!create}: one arena per state type, each entry starting on its own
     cache line (the conventional, unpacked layout).
   - {!create_group}: the data-packed layout — the per-flow states of
     several consecutive NFs for the same flow share one entry, packed into
     the fewest cache lines (§VI-B, SFC case). *)

let line_bytes = 64

let round_up v m = (v + m - 1) / m * m

type t = {
  label : string;
  base : int;
  stride : int;
  entry_bytes : int;
  count : int;
  field_offsets : (string * int) list;  (* empty for opaque entries *)
}

let create layout ~label ~entry_bytes ~count () =
  if entry_bytes <= 0 || count <= 0 then invalid_arg "State_arena.create";
  let stride = round_up entry_bytes line_bytes in
  let base = Memsim.Layout.alloc_array layout ~align:64 ~label ~stride ~count () in
  { label; base; stride; entry_bytes; count; field_offsets = [] }

(* Layout with explicit field offsets (e.g. produced by {!Packing.pack} or
   {!Packing.sequential}). *)
let create_record layout ~label ~field_offsets ~record_bytes ~count () =
  if record_bytes <= 0 || count <= 0 then invalid_arg "State_arena.create_record";
  let stride = round_up record_bytes line_bytes in
  let base = Memsim.Layout.alloc_array layout ~align:64 ~label ~stride ~count () in
  { label; base; stride; entry_bytes = record_bytes; count; field_offsets }

let label t = t.label
let count t = t.count
let stride t = t.stride
let entry_bytes t = t.entry_bytes

let addr t idx =
  if idx < 0 || idx >= t.count then invalid_arg "State_arena.addr: index out of range";
  t.base + (idx * t.stride)

let field_addr t idx name =
  match List.assoc_opt name t.field_offsets with
  | Some off -> addr t idx + off
  | None -> invalid_arg ("State_arena.field_addr: unknown field " ^ name)

let field_offset t name =
  match List.assoc_opt name t.field_offsets with
  | Some off -> off
  | None -> invalid_arg ("State_arena.field_offset: unknown field " ^ name)

let lines_per_entry t = round_up t.entry_bytes line_bytes / line_bytes

(* ----- packed groups ----- *)

type group = { arena : t; member_bytes : (string * int) array }

(* [create_group layout ~label ~members ~count ()] packs one entry per flow
   holding every member's state contiguously. Member [m] of flow [i] lives
   at [group_addr g i m]. *)
let create_group layout ~label ~members ~count () =
  if members = [] then invalid_arg "State_arena.create_group: no members";
  let offsets, total =
    List.fold_left
      (fun (acc, off) (name, bytes) ->
        if bytes <= 0 then invalid_arg "State_arena.create_group: bad member size";
        let off = round_up off (min 8 bytes |> max 1) in
        ((name, off) :: acc, off + bytes))
      ([], 0) members
  in
  let arena =
    create_record layout ~label ~field_offsets:(List.rev offsets)
      ~record_bytes:total ~count ()
  in
  { arena; member_bytes = Array.of_list members }

let group_arena g = g.arena

let group_addr g idx name = field_addr g.arena idx name

(* A view presents one member of a packed group as an ordinary arena: entry
   [i] of the view is member [name] inside packed entry [i]. NFs written
   against plain arenas work unchanged on packed layouts. *)
let view g ~member =
  let off = field_offset g.arena member in
  let bytes =
    let rec go i =
      if i = Array.length g.member_bytes then
        invalid_arg ("State_arena.view: unknown member " ^ member)
      else
        let n, b = g.member_bytes.(i) in
        if String.equal n member then b else go (i + 1)
    in
    go 0
  in
  {
    label = g.arena.label ^ "." ^ member;
    base = g.arena.base + off;
    stride = g.arena.stride;
    entry_bytes = bytes;
    count = g.arena.count;
    field_offsets = [];
  }

let group_member_bytes g name =
  let rec go i =
    if i = Array.length g.member_bytes then
      invalid_arg ("State_arena.group_member_bytes: unknown member " ^ name)
    else
      let n, b = g.member_bytes.(i) in
      if String.equal n name then b else go (i + 1)
  in
  go 0
