(* Cuckoo hash table over simulated memory — the paper's match-state
   structure (Fig 6(b), Listing 1).

   Geometry mirrors CuckooSwitch-style tables: two candidate buckets per
   key, four slots per bucket, and one bucket occupies exactly one cache
   line (4 x (8-byte key + 8-byte value) = 64 bytes). The table logic
   (lookup, displacement insert) is real; the cache behaviour comes from
   callers charging reads of {!bucket_addr} to the memory hierarchy, one
   action per bucket probe, exactly as the granular decomposition splits
   them (get_key / hash_1 / check_1 / hash_2 / check_2). *)

let slots_per_bucket = 4
let bucket_bytes = 64
let max_kicks = 500

type overflow_policy = Drop_new | Evict_lru | Shed_flow

let policy_to_string = function
  | Drop_new -> "drop-new"
  | Evict_lru -> "evict-lru"
  | Shed_flow -> "shed-flow"

let policy_of_string = function
  | "drop-new" -> Some Drop_new
  | "evict-lru" -> Some Evict_lru
  | "shed-flow" -> Some Shed_flow
  | _ -> None

type insert_result =
  | Inserted
  | Updated
  | Evicted of { victim_key : int64; victim_value : int }
  | Rejected

type t = {
  mask : int;  (* nbuckets - 1 *)
  keys : int64 array;  (* nbuckets * slots; slot empty when vals.(i) < 0 *)
  fps : int array;  (* cached fingerprint of keys.(i); valid where vals.(i) >= 0 *)
  vals : int array;
  stamps : int array;  (* per-slot insertion stamp; LRU-ish eviction order *)
  base_addr : int;  (* bucket array: fingerprints + value indices *)
  key_base : int;  (* out-of-line full-key store, one line per bucket *)
  seed1 : int64;
  seed2 : int64;
  rng : Memsim.Rng.t;
  mutable population : int;
  mutable tick : int;
}

let next_pow2 n =
  let rec go v = if v >= n then v else go (v * 2) in
  go 1

let create layout ~label ~capacity () =
  if capacity <= 0 then invalid_arg "Cuckoo.create: capacity must be positive";
  (* Size for ~80% max load factor. *)
  let nbuckets = next_pow2 ((capacity * 5 / 4 / slots_per_bucket) + 1) in
  let nslots = nbuckets * slots_per_bucket in
  let base_addr =
    Memsim.Layout.alloc_array layout ~align:64 ~label ~stride:bucket_bytes
      ~count:nbuckets ()
  in
  let key_base =
    Memsim.Layout.alloc_array layout ~align:64 ~label:(label ^ ".keys")
      ~stride:bucket_bytes ~count:nbuckets ()
  in
  {
    mask = nbuckets - 1;
    keys = Array.make nslots 0L;
    fps = Array.make nslots 0;
    vals = Array.make nslots (-1);
    stamps = Array.make nslots 0;
    base_addr;
    key_base;
    seed1 = 0x9E3779B97F4A7C15L;
    seed2 = 0xC2B2AE3D27D4EB4FL;
    rng = Memsim.Rng.create 97;
    population = 0;
    tick = 0;
  }

let nbuckets t = t.mask + 1
let population t = t.population

(* [hash1]/[hash2] are the finalizer of splitmix64 flattened into a single arithmetic chain so
   the native compiler keeps every Int64 intermediate unboxed — these run on
   every table probe of every packet. *)
let hash1 t key =
  let open Int64 in
  let z = mul (logxor key t.seed1) 0xFF51AFD7ED558CCDL in
  let z = logxor z (shift_right_logical z 33) in
  let z = mul z 0xC4CEB9FE1A85EC53L in
  to_int (logxor z (shift_right_logical z 33)) land t.mask

(* Partial-key style alternate bucket: derived from the key so that it can
   be recomputed from either bucket. *)
let hash2 t key =
  let open Int64 in
  let z = mul (logxor key t.seed2) 0xFF51AFD7ED558CCDL in
  let z = logxor z (shift_right_logical z 33) in
  let z = mul z 0xC4CEB9FE1A85EC53L in
  to_int (logxor z (shift_right_logical z 33)) land t.mask

let bucket_addr t bucket = t.base_addr + (bucket * bucket_bytes)

(* Address of the bucket's out-of-line full-key line (CuckooSwitch-style:
   the bucket line carries fingerprints and value indices; full keys live in
   a second line that is only read when a fingerprint matches — the
   key_check_1/key_check_2 steps of Listing 1). *)
let key_addr t bucket = t.key_base + (bucket * bucket_bytes)

(* 16-bit fingerprint derived from the key. *)
let fingerprint key =
  let open Int64 in
  to_int (shift_right_logical (mul key 0x2545F4914F6CDD1DL) 48) land 0xFFFF

let slot_base bucket = bucket * slots_per_bucket

(* Slots of [bucket] whose stored fingerprint matches [key]'s — what the
   bucket_check action can decide from the bucket line alone. Resident
   fingerprints come from the [fps] cache maintained at every key write, so
   the probe does one multiply instead of one per occupied slot. *)
let candidates t ~bucket ~key =
  let fp = fingerprint key in
  let b = slot_base bucket in
  let rec go i acc =
    if i < 0 then acc
    else if t.vals.(b + i) >= 0 && t.fps.(b + i) = fp then go (i - 1) (i :: acc)
    else go (i - 1) acc
  in
  go (slots_per_bucket - 1) []

(* Search one bucket for [key]; pure table logic, no memory charging. *)
let find_in_bucket t ~bucket ~key =
  let b = slot_base bucket in
  let rec go i =
    if i = slots_per_bucket then None
    else if t.vals.(b + i) >= 0 && Int64.equal t.keys.(b + i) key then
      Some t.vals.(b + i)
    else go (i + 1)
  in
  go 0

let lookup t key =
  match find_in_bucket t ~bucket:(hash1 t key) ~key with
  | Some _ as r -> r
  | None -> find_in_bucket t ~bucket:(hash2 t key) ~key

let empty_slot_in t bucket =
  let b = slot_base bucket in
  let rec go i =
    if i = slots_per_bucket then None
    else if t.vals.(b + i) < 0 then Some (b + i)
    else go (i + 1)
  in
  go 0

let try_place t ~key ~value bucket =
  match empty_slot_in t bucket with
  | Some slot ->
      t.keys.(slot) <- key;
      t.fps.(slot) <- fingerprint key;
      t.vals.(slot) <- value;
      t.stamps.(slot) <- t.tick;
      true
  | None -> false

let update_existing t ~key ~value =
  let set bucket =
    let b = slot_base bucket in
    let rec go i =
      if i = slots_per_bucket then false
      else if t.vals.(b + i) >= 0 && Int64.equal t.keys.(b + i) key then begin
        t.vals.(b + i) <- value;
        t.stamps.(b + i) <- t.tick;
        true
      end
      else go (i + 1)
    in
    go 0
  in
  set (hash1 t key) || set (hash2 t key)

(* Place [key] into [bucket] or displace a random resident into its
   alternate bucket, carrying per-entry stamps along the walk (a displaced
   resident keeps its original stamp). A failed walk is unwound slot by
   slot — most recent swap first — so the table is bit-identical to before
   the call: overflow must be a *typed, recoverable* outcome, never the
   silent loss of whichever resident the walk happened to be carrying when
   it ran out of kicks. *)
let walk_place t ~key ~value ~stamp ~bucket =
  let undo = ref [] in
  let rec go ~key ~value ~stamp ~bucket kicks =
    (match empty_slot_in t bucket with
    | Some slot ->
        t.keys.(slot) <- key;
        t.fps.(slot) <- fingerprint key;
        t.vals.(slot) <- value;
        t.stamps.(slot) <- stamp;
        true
    | None -> false)
    || kicks < max_kicks
       && begin
            (* Evict a random resident of this bucket and re-insert it into
               its alternate bucket. *)
            let victim = slot_base bucket + Memsim.Rng.int t.rng slots_per_bucket in
            let vkey = t.keys.(victim) and vval = t.vals.(victim) in
            let vstamp = t.stamps.(victim) in
            undo := (victim, vkey, vval, vstamp) :: !undo;
            t.keys.(victim) <- key;
            t.fps.(victim) <- fingerprint key;
            t.vals.(victim) <- value;
            t.stamps.(victim) <- stamp;
            let alt =
              let h1 = hash1 t vkey in
              if h1 = bucket then hash2 t vkey else h1
            in
            go ~key:vkey ~value:vval ~stamp:vstamp ~bucket:alt (kicks + 1)
          end
  in
  let placed = go ~key ~value ~stamp ~bucket 0 in
  if not placed then
    List.iter
      (fun (slot, k, v, s) ->
        t.keys.(slot) <- k;
        t.fps.(slot) <- fingerprint k;
        t.vals.(slot) <- v;
        t.stamps.(slot) <- s)
      !undo;
  placed

(* Insert a key known to be absent; true population bump on success. *)
let insert_fresh t ~key ~value =
  let placed =
    try_place t ~key ~value (hash1 t key)
    || try_place t ~key ~value (hash2 t key)
    || walk_place t ~key ~value ~stamp:t.tick ~bucket:(hash1 t key)
  in
  if placed then t.population <- t.population + 1;
  placed

(* Random-walk cuckoo insert. Returns [false] when the walk exceeds
   [max_kicks] (table effectively full); the failed walk is fully unwound,
   so no entry is ever lost or moved by a rejected insert. *)
let insert t ~key ~value =
  t.tick <- t.tick + 1;
  update_existing t ~key ~value || insert_fresh t ~key ~value

(* Stalest slot among the key's two candidate buckets (lowest stamp;
   first-in-scan-order tie-break — fully deterministic). *)
let stalest_slot t key =
  let best = ref (-1) in
  let scan bucket =
    let b = slot_base bucket in
    for i = 0 to slots_per_bucket - 1 do
      let s = b + i in
      if t.vals.(s) >= 0 && (!best < 0 || t.stamps.(s) < t.stamps.(!best)) then
        best := s
    done
  in
  scan (hash1 t key);
  (let b2 = hash2 t key in
   if b2 <> hash1 t key then scan b2);
  !best

let insert_policy t ~policy ~key ~value =
  t.tick <- t.tick + 1;
  if update_existing t ~key ~value then Updated
  else if insert_fresh t ~key ~value then Inserted
  else
    match policy with
    | Drop_new | Shed_flow -> Rejected
    | Evict_lru -> (
        match stalest_slot t key with
        | -1 -> Rejected (* both candidate buckets empty yet walk failed: impossible *)
        | slot ->
            let victim_key = t.keys.(slot) and victim_value = t.vals.(slot) in
            t.keys.(slot) <- key;
            t.fps.(slot) <- fingerprint key;
            t.vals.(slot) <- value;
            t.stamps.(slot) <- t.tick;
            (* one out, one in: population unchanged *)
            Evicted { victim_key; victim_value })

let delete t key =
  let del bucket =
    let b = slot_base bucket in
    let rec go i =
      if i = slots_per_bucket then false
      else if t.vals.(b + i) >= 0 && Int64.equal t.keys.(b + i) key then begin
        t.vals.(b + i) <- -1;
        true
      end
      else go (i + 1)
    in
    go 0
  in
  let removed = del (hash1 t key) || del (hash2 t key) in
  if removed then t.population <- t.population - 1;
  removed

let load_factor t =
  float_of_int t.population /. float_of_int (nbuckets t * slots_per_bucket)
