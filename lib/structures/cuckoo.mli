(** Cuckoo hash table over simulated memory — the match-state structure of
    the flow classifier (Fig 6(b), Listing 1).

    CuckooSwitch-style geometry: two candidate buckets per key, four slots
    per bucket, one bucket per cache line (fingerprints + value indices),
    with full keys in a separate key-store line per bucket. The table logic
    is real; cache behaviour comes from callers charging reads of
    {!bucket_addr} / {!key_addr} to the memory hierarchy, one action per
    probe step. *)

type t

val slots_per_bucket : int
val bucket_bytes : int

(** Max displacement-walk length before an insert reports the table full. *)
val max_kicks : int

(** Sized for ~80% max load factor over [capacity] entries.
    @raise Invalid_argument when [capacity <= 0]. *)
val create : Memsim.Layout.t -> label:string -> capacity:int -> unit -> t

val nbuckets : t -> int
val population : t -> int
val load_factor : t -> float

(** Primary / alternate bucket of a key. *)
val hash1 : t -> int64 -> int

val hash2 : t -> int64 -> int

(** Simulated address of a bucket's line / of its out-of-line key store. *)
val bucket_addr : t -> int -> int

val key_addr : t -> int -> int

(** 16-bit key fingerprint as stored in bucket lines. *)
val fingerprint : int64 -> int

(** Slots of [bucket] whose fingerprint matches — decidable from the bucket
    line alone (the bucket_check action). *)
val candidates : t -> bucket:int -> key:int64 -> int list

(** Full-key comparison within one bucket (the key_check action). *)
val find_in_bucket : t -> bucket:int -> key:int64 -> int option

(** Two-bucket lookup (pure table logic; RTC and tests). *)
val lookup : t -> int64 -> int option

(** Insert or update; random-walk displacement on conflicts. [false] means
    the walk exceeded {!max_kicks} (no entry is lost). *)
val insert : t -> key:int64 -> value:int -> bool

val delete : t -> int64 -> bool

(** What a state structure does when an insert finds the table full.
    [Drop_new] rejects the new entry (legacy behaviour, minus the crash);
    [Evict_lru] displaces the stalest resident of the key's two candidate
    buckets to make room; [Shed_flow] rejects and asks the caller to
    quarantine the offending flow (the caller raises a contained fault). *)
type overflow_policy = Drop_new | Evict_lru | Shed_flow

val policy_to_string : overflow_policy -> string
val policy_of_string : string -> overflow_policy option

(** Outcome of {!insert_policy}. [Evicted] carries the displaced resident so
    the caller can release any out-of-table resources tied to it. *)
type insert_result =
  | Inserted
  | Updated
  | Evicted of { victim_key : int64; victim_value : int }
  | Rejected

(** Like {!insert} but overflow resolves per [policy] instead of just
    reporting [false]. Deterministic: LRU order comes from per-slot
    insertion stamps, ties break on scan order. *)
val insert_policy :
  t -> policy:overflow_policy -> key:int64 -> value:int -> insert_result
