(* State-Compute Replication (Xu et al., arXiv 2309.14647): the second
   scale-out execution model, living beside RSS sharding.

   Every core holds a FULL replica of the per-flow state, so packets are
   sprayed across cores with no flow affinity — the property that makes
   throughput immune to flow-size skew (an elephant flow's packets spread
   over all cores instead of pinning one). What restores correctness is
   the update stream: each completion of packet (f, n) exports flow f's
   observable state as a compact absolute update record at sequence n
   ({!Update_log}), broadcast to every peer; a replica may process packet
   (f, n) only after it holds flow f's state at sequence n-1, whether from
   a local completion or an applied update.

   The driver below walks the global arrival stream and runs each core's
   sprayed slice in dependency-ready prefix windows:

   - an item (f, n) is ready when n - 1 completions of f have happened
     (counting earlier same-flow items inside the same window — both
     executors complete tasks in pull order);
   - a core's window is the longest ready prefix of its queue, capped at
     the engine's batch size (1 under RTC);
   - pending updates for the window's flows are applied — lazily and
     coalesced: records are absolute, so only the latest pending record
     per flow matters ({!Update_log.applier}) — before the window runs,
     which under run-to-completion is a quiescent point.

   Prefix windows make the schedule deadlock-free: the globally oldest
   unprocessed item is always at its core's queue head with every
   predecessor completed, so each sweep over the cores processes at least
   one item. (Whole-batch atomic readiness, or executors that hold
   in-flight flows across pulls like the rr/rf schedulers, would deadlock
   on cross-core chains — which is why the SCR engine set is rtc and
   batch-N.)

   Fault containment replicates like NF state: each record carries the
   flow's (consecutive-faults, poisoned) containment pair, restored into
   the processing core's fault plane on apply, so poisoning decisions
   follow per-flow completion order no matter where packets land.

   A quiescent barrier ends the run: every replica applies its remaining
   pending updates, and per-replica whole-universe state digests must be
   pairwise equal — replica convergence, the model's invariant. *)

open Gunfu

(* One core's full replica: the program built on that core's layout with
   the WHOLE universe populated, plus the closures the engine needs —
   single-flow state export (the update payload), update application
   (upsert through the Migration layer's apply surface), commutative
   counters (each replica counts only its own completions; totals are
   summed at digest time), and a location-independent per-flow digest. *)
type replica = {
  sc_worker : Worker.t;
  sc_program : Program.t;
  sc_pool : Netcore.Packet.Pool.pool;
  sc_export : int -> (string * string) list;
  sc_apply : Update_log.record -> unit;
  sc_counters : unit -> (string * int) list;
  sc_flow_digest : Fingerprint.t -> int -> unit;
}

type engine = Engine_rtc | Engine_batch of int

type stats = {
  st_records : int;  (* update records emitted (completions with a flow) *)
  st_applied : int;  (* records applied on peers, barrier included *)
  st_coalesced : int;  (* superseded in a peer's pending set before applying *)
  st_stale : int;  (* offered but already superseded by local state *)
  st_max_lag : int;  (* largest sequence gap bridged by one apply *)
  st_barrier_applied : int;  (* applies performed by the final barrier *)
  st_windows : int;  (* execution windows across all cores *)
}

type result = {
  sr_runs : Metrics.run array;  (* per core *)
  sr_merged : Metrics.run;  (* merge_parallel of the above *)
  sr_stats : stats;
  sr_planes : Fault.t array;
  sr_logs : Update_log.t array;  (* per-core emitted update streams *)
  sr_replica_digests : string array;  (* post-barrier whole-universe digests *)
  sr_converged : bool;  (* all replica digests pairwise equal *)
  sr_state_digest : string;  (* per-flow state + summed counters, vs references *)
}

(* Default simulated cost of applying one update record: a dozen-byte
   store into already-resident state plus the ring pop — pure compute,
   charged to the applying core's clock. *)
let default_apply_cycles = 8
let default_apply_instrs = 6

let run ?arm ?(apply_cycles = default_apply_cycles)
    ?(apply_instrs = default_apply_instrs) ?on_complete ?(digest = true) ~engine
    ~(replicas : replica array) ~(slots : Spray.slot array) ~universe items :
    result =
  let cores = Array.length replicas in
  if cores <= 0 then invalid_arg "Scr.run: no replicas";
  let n_items = List.length items in
  if Array.length slots <> n_items then
    invalid_arg "Scr.run: slots/items length mismatch";
  let cap =
    match engine with
    | Engine_rtc -> 1
    | Engine_batch b ->
        if b <= 0 then invalid_arg "Scr.run: batch must be positive";
        b
  in
  let planes = Array.init cores (fun _ -> Fault.create ()) in
  let logs = Array.init cores (fun _ -> Update_log.create ()) in
  (* Per-core queues of (g, seq, item), arrival order. *)
  let queues = Array.make cores [] in
  List.iteri
    (fun g item ->
      let s = slots.(g) in
      queues.(s.Spray.s_core) <- (g, s.Spray.s_seq, item) :: queues.(s.Spray.s_core))
    items;
  Array.iteri (fun c q -> queues.(c) <- List.rev q) queues;
  (* Completed packets per flow (= the flow's authoritative sequence). *)
  let done_ = Array.make (max universe 1) 0 in
  (* Per-core pending updates, coalesced: flow -> latest unapplied record. *)
  let pending = Array.init cores (fun _ -> Hashtbl.create 64) in
  let coalesced = ref 0 in
  let barrier_applied = ref 0 in
  let windows = ref 0 in
  let appliers =
    Array.init cores (fun c ->
        Update_log.applier ~apply:(fun r ->
            replicas.(c).sc_apply r;
            Fault.restore_containment planes.(c)
              [ (r.Update_log.u_flow, r.Update_log.u_consec, r.Update_log.u_poisoned) ];
            Exec_ctx.compute
              (Worker.ctx replicas.(c).sc_worker)
              ~cycles:apply_cycles ~instrs:apply_instrs))
  in
  (* Per-core accumulators for the outer measurement bracket. *)
  let snaps = Array.map (fun r -> Worker.snapshot r.sc_worker) replicas in
  let packets = Array.make cores 0 in
  let drops = Array.make cores 0 in
  let wire_bytes = Array.make cores 0 in
  let faulted = Array.make cores 0 in
  let switches = Array.make cores 0 in
  (* Completions arrive in pull order on both engines, so a per-core FIFO
     of (g, seq) delivered to the in-flight window maps each completion
     back to its global index without relying on packet ids. *)
  let inflight = Array.make cores [] in
  let records = ref 0 in
  let broadcast c (r : Update_log.record) =
    (* Encode-then-decode exercises the wire format on every record the
       engine ships; a framing bug surfaces as Bad_update, not as silent
       divergence. *)
    let frame = Update_log.encode r in
    let r = Update_log.decode frame in
    Update_log.append logs.(c) r;
    for d = 0 to cores - 1 do
      if d <> c then begin
        if Hashtbl.mem pending.(d) r.Update_log.u_flow then incr coalesced;
        Hashtbl.replace pending.(d) r.Update_log.u_flow r
      end
    done
  in
  let complete c (task : Nftask.t) =
    match inflight.(c) with
    | [] -> invalid_arg "Scr.run: completion without a delivered item"
    | (g, seq) :: rest ->
        inflight.(c) <- rest;
        (match on_complete with Some f -> f ~core:c ~g ~seq task | None -> ());
        let f = task.Nftask.flow_hint in
        if f >= 0 then begin
          done_.(f) <- seq;
          Update_log.advance appliers.(c) ~flow:f ~seq;
          let consec, poisoned =
            match Fault.export_containment planes.(c) [ f ] with
            | [ (_, consec, poisoned) ] -> (consec, poisoned)
            | _ -> (0, false)
          in
          incr records;
          broadcast c
            {
              Update_log.u_flow = f;
              u_seq = seq;
              u_payload = replicas.(c).sc_export f;
              u_consec = consec;
              u_poisoned = poisoned;
            }
        end
  in
  (* The longest dependency-ready prefix of core [c]'s queue, at most
     [cap] items. *)
  let form_window c =
    let in_window : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let rec take acc n = function
      | [] -> (List.rev acc, [])
      | ((_, seq, item) as x) :: rest ->
          let f = (item : Workload.item).Workload.flow_hint in
          let ahead = if f < 0 then 0 else Option.value ~default:0 (Hashtbl.find_opt in_window f) in
          let ready = f < 0 || seq = done_.(f) + ahead + 1 in
          if n >= cap || not ready then (List.rev acc, x :: rest)
          else begin
            if f >= 0 then Hashtbl.replace in_window f (ahead + 1);
            take (x :: acc) (n + 1) rest
          end
    in
    let window, rest = take [] 0 queues.(c) in
    queues.(c) <- rest;
    window
  in
  let run_window c window =
    incr windows;
    (* Lazy coalesced application: freshen exactly the flows this window
       touches, from the latest pending record each. *)
    List.iter
      (fun (_, _, item) ->
        let f = (item : Workload.item).Workload.flow_hint in
        if f >= 0 then
          match Hashtbl.find_opt pending.(c) f with
          | Some r ->
              Hashtbl.remove pending.(c) f;
              ignore (Update_log.offer appliers.(c) r : bool)
          | None -> ())
      window;
    (* Deliver clones, arming the fault plan at each item's GLOBAL index so
       the injection schedule is spray-independent. *)
    let ops = ref window in
    let source () =
      match !ops with
      | [] -> None
      | (g, seq, item) :: rest ->
          ops := rest;
          let pkt = Option.map Netcore.Packet.clone item.Workload.packet in
          Option.iter (Netcore.Packet.Pool.assign replicas.(c).sc_pool) pkt;
          (match (arm, pkt) with
          | Some f, Some p -> f ~plane:planes.(c) ~g p
          | _ -> ());
          inflight.(c) <- inflight.(c) @ [ (g, seq) ];
          Some
            {
              Workload.packet = pkt;
              aux = item.Workload.aux;
              flow_hint = item.Workload.flow_hint;
            }
    in
    let r =
      match engine with
      | Engine_rtc ->
          Rtc.run ~fault:planes.(c) ~on_complete:(complete c) replicas.(c).sc_worker
            replicas.(c).sc_program source
      | Engine_batch b ->
          Batch_rtc.run ~batch:b ~fault:planes.(c) ~on_complete:(complete c)
            replicas.(c).sc_worker replicas.(c).sc_program source
    in
    packets.(c) <- packets.(c) + r.Metrics.packets;
    drops.(c) <- drops.(c) + r.Metrics.drops;
    wire_bytes.(c) <- wire_bytes.(c) + r.Metrics.wire_bytes;
    faulted.(c) <- faulted.(c) + r.Metrics.faulted;
    switches.(c) <- switches.(c) + r.Metrics.switches
  in
  (* Sweep the cores until every queue drains. Prefix windows guarantee
     progress: the globally oldest unprocessed item is at its core's head
     with all predecessors complete. *)
  let remaining () = Array.exists (fun q -> q <> []) queues in
  while remaining () do
    let progressed = ref false in
    for c = 0 to cores - 1 do
      match form_window c with
      | [] -> ()
      | window ->
          progressed := true;
          run_window c window
    done;
    if not !progressed then
      invalid_arg "Scr.run: no core can make progress (broken spray sequence)"
  done;
  (* Close the measurement bracket before the barrier: the barrier is the
     convergence PROOF, not data-path work — a steady-state deployment
     never quiesces, it keeps coalescing pending updates. Its applies
     still mutate state and count in [stats] (and in the applying core's
     clock, past the bracket). *)
  let runs =
    Array.init cores (fun c ->
        Worker.finish ~faulted:faulted.(c)
          ~faults:(Fault.counts planes.(c))
          ~degraded:(Fault.degraded planes.(c))
          replicas.(c).sc_worker snaps.(c)
          ~label:(Printf.sprintf "scr-core%d" c)
          ~packets:packets.(c) ~drops:drops.(c) ~wire_bytes:wire_bytes.(c)
          ~switches:switches.(c))
  in
  (* Quiescent barrier: drain every replica's pending set, then prove
     convergence. *)
  Array.iteri
    (fun c tbl ->
      let rs = Hashtbl.fold (fun _ r acc -> r :: acc) tbl [] in
      Hashtbl.reset tbl;
      List.iter
        (fun r ->
          if Update_log.offer appliers.(c) r then incr barrier_applied)
        (List.sort (fun a b -> compare a.Update_log.u_flow b.Update_log.u_flow) rs))
    pending;
  let replica_digest c =
    Fingerprint.of_fn (fun fp ->
        for i = 0 to universe - 1 do
          replicas.(c).sc_flow_digest fp i;
          match Fault.export_containment planes.(c) [ i ] with
          | [ (_, consec, poisoned) ] ->
              Fingerprint.feed_int fp consec;
              Fingerprint.feed_bool fp poisoned
          | _ -> ()
        done)
  in
  (* [digest = false] skips the whole-universe digests — a bench over a
     million-flow universe measures dispatch, not the O(universe x cores)
     convergence proof; correctness gates keep it on. *)
  let replica_digests =
    if digest then Array.init cores replica_digest else [||]
  in
  let converged =
    digest
    && Array.for_all (fun d -> String.equal d replica_digests.(0)) replica_digests
  in
  (* Global digest comparable with an RSS/rtc reference: per-flow state
     from replica 0 (any replica — they converged), commutative counters
     summed over the replicas. *)
  let state_digest =
    if not digest then ""
    else
      Fingerprint.of_fn (fun fp ->
        for i = 0 to universe - 1 do
          replicas.(0).sc_flow_digest fp i;
          match Fault.export_containment planes.(0) [ i ] with
          | [ (_, consec, poisoned) ] ->
              Fingerprint.feed_int fp consec;
              Fingerprint.feed_bool fp poisoned
          | _ -> ()
        done;
        let totals : (string, int) Hashtbl.t = Hashtbl.create 8 in
        Array.iter
          (fun rep ->
            List.iter
              (fun (name, v) ->
                Hashtbl.replace totals name
                  (v + Option.value ~default:0 (Hashtbl.find_opt totals name)))
              (rep.sc_counters ()))
          replicas;
        Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
        |> List.sort compare
        |> List.iter (fun (name, v) ->
               Fingerprint.feed_string fp name;
               Fingerprint.feed_int fp v))
  in
  let applied = Array.fold_left (fun a ap -> a + Update_log.applied ap) 0 appliers in
  let stale = Array.fold_left (fun a ap -> a + Update_log.stale ap) 0 appliers in
  let max_lag = Array.fold_left (fun a ap -> max a (Update_log.max_lag ap)) 0 appliers in
  {
    sr_runs = runs;
    sr_merged = Metrics.merge_parallel (Array.to_list runs);
    sr_stats =
      {
        st_records = !records;
        st_applied = applied;
        st_coalesced = !coalesced;
        st_stale = stale;
        st_max_lag = max_lag;
        st_barrier_applied = !barrier_applied;
        st_windows = !windows;
      };
    sr_planes = planes;
    sr_logs = logs;
    sr_replica_digests = replica_digests;
    sr_converged = converged;
    sr_state_digest = state_digest;
  }
