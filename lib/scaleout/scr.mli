(** State-Compute Replication executor family (Xu et al., arXiv
    2309.14647): every core holds a full per-flow state replica, packets
    are sprayed with no flow affinity, and completions broadcast compact
    absolute state-update records ({!Update_log}) that peers apply lazily,
    coalesced, in per-flow sequence order. A quiescent barrier ends every
    run and proves replica convergence. The engine set is rtc and batch-N
    (executors that hold in-flight flows across pulls, like the rr/rf
    schedulers, would deadlock on cross-core sequence chains). *)

open Gunfu

(** One core's full replica: the program built on that core's layout with
    the whole universe populated, plus single-flow export (the update
    payload), update application (upsert through the Migration apply
    surface), commutative counters (summed at digest time), and a
    location-independent per-flow digest. *)
type replica = {
  sc_worker : Worker.t;
  sc_program : Program.t;
  sc_pool : Netcore.Packet.Pool.pool;
  sc_export : int -> (string * string) list;
  sc_apply : Update_log.record -> unit;
  sc_counters : unit -> (string * int) list;
  sc_flow_digest : Fingerprint.t -> int -> unit;
}

type engine = Engine_rtc | Engine_batch of int

type stats = {
  st_records : int;  (** update records emitted *)
  st_applied : int;  (** records applied on peers, barrier included *)
  st_coalesced : int;  (** superseded in a pending set before applying *)
  st_stale : int;  (** offered but already superseded by local state *)
  st_max_lag : int;  (** largest sequence gap bridged by one apply *)
  st_barrier_applied : int;  (** applies performed by the final barrier *)
  st_windows : int;  (** execution windows across all cores *)
}

type result = {
  sr_runs : Metrics.run array;
      (** per core; the measurement bracket closes before the quiescent
          barrier — the barrier proves convergence, it is not data-path
          work (its applies still count in {!stats}) *)
  sr_merged : Metrics.run;  (** {!Metrics.merge_parallel} of the above *)
  sr_stats : stats;
  sr_planes : Fault.t array;
  sr_logs : Update_log.t array;  (** per-core emitted update streams *)
  sr_replica_digests : string array;
      (** post-barrier whole-universe digests, per replica *)
  sr_converged : bool;  (** all replica digests pairwise equal *)
  sr_state_digest : string;
      (** per-flow state + containment from replica 0, commutative
          counters summed — comparable with an RSS/rtc reference *)
}

val default_apply_cycles : int
val default_apply_instrs : int

(** Drive [items] (the global arrival stream) through [replicas] under the
    spray in [slots] ({!Spray.assign} on the same items). [universe] bounds
    flow hints; [arm] is called at each delivery with the item's global
    index to arm fault injections spray-independently; [on_complete] sees
    every completion with its global index and per-flow sequence.
    [apply_cycles]/[apply_instrs] are the simulated cost charged per
    applied update. [digest] (default [true]) computes the post-barrier
    replica digests and global state digest; pass [false] in benches
    over huge universes, where the O(universe x cores) convergence proof
    would dwarf the measured work ([sr_replica_digests] is then empty,
    [sr_converged] is [false] and [sr_state_digest] is [""]).
    @raise Invalid_argument on empty replicas, slot/item length mismatch,
    a non-positive batch, or a spray whose sequence numbers cannot be
    scheduled. *)
val run :
  ?arm:(plane:Fault.t -> g:int -> Netcore.Packet.t -> unit) ->
  ?apply_cycles:int ->
  ?apply_instrs:int ->
  ?on_complete:(core:int -> g:int -> seq:int -> Nftask.t -> unit) ->
  ?digest:bool ->
  engine:engine ->
  replicas:replica array ->
  slots:Spray.slot array ->
  universe:int ->
  Workload.item list ->
  result
