(* Platform wrapper for head-to-head scale-out comparisons: the same
   global arrival stream driven through RSS sharding and through SCR on
   identical multi-core platforms (share-nothing workers, LLC partitioned
   across cores by {!Gunfu.Platform.create}).

   The RSS pass here shards ONE global stream by flow ownership
   ({!Gunfu.Platform.Recovery.owner}) — unlike the fig14/15 benches, which
   give every core an independent generator and therefore cannot exhibit
   skew collapse. Under a heavy-tailed flow-size distribution the owner of
   the hot flows receives most of the stream, its cycles dominate
   {!Gunfu.Metrics.merge_parallel}'s max, and throughput stops scaling:
   exactly the failure mode SCR's sprayed dispatch removes. *)

open Gunfu

type rss_core = {
  rss_worker : Worker.t;
  rss_program : Program.t;
  rss_pool : Netcore.Packet.Pool.pool;
}

(* Run the RSS pass: each core executes its owned slice of [items] under
   RTC. Returns per-core runs and their parallel merge (which carries the
   offered/served imbalance ratios). *)
let run_rss ~(plat : Platform.t) ~build items =
  let cores = Platform.cores plat in
  let runs =
    Array.init cores (fun c ->
        let core = build ~core:c (Platform.worker plat c) in
        let mine =
          List.filter
            (fun (it : Workload.item) ->
              Platform.Recovery.owner ~cores it.Workload.flow_hint = c)
            items
        in
        let ops = ref mine in
        let source () =
          match !ops with
          | [] -> None
          | item :: rest ->
              ops := rest;
              let pkt = Option.map Netcore.Packet.clone item.Workload.packet in
              Option.iter (Netcore.Packet.Pool.assign core.rss_pool) pkt;
              Some
                {
                  Workload.packet = pkt;
                  aux = item.Workload.aux;
                  flow_hint = item.Workload.flow_hint;
                }
        in
        Rtc.run ~label:(Printf.sprintf "rss-core%d" c) core.rss_worker
          core.rss_program source)
  in
  (runs, Metrics.merge_parallel (Array.to_list runs))

(* Run the SCR pass on the same platform shape: replicas built per worker,
   items sprayed by [policy], executed by [engine]. *)
let run_scr ?arm ?apply_cycles ?apply_instrs ?on_complete ?digest
    ?(policy = Spray.Round_robin) ?(engine = Scr.Engine_rtc) ~(plat : Platform.t)
    ~build ~universe items =
  let cores = Platform.cores plat in
  let replicas = Array.init cores (fun c -> build ~core:c (Platform.worker plat c)) in
  let slots = Spray.assign policy ~cores items in
  Scr.run ?arm ?apply_cycles ?apply_instrs ?on_complete ?digest ~engine ~replicas
    ~slots ~universe items
