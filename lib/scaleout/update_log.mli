(** Compact per-flow state-update records — the unit of state SCR ships
    between replicas instead of packets. A record is an {e absolute}
    snapshot of one flow's observable NF state (the Migration layer's
    named single-flow export blobs) plus the fault plane's per-flow
    containment, stamped with the flow's dense 1-based sequence number.
    Absoluteness buys coalescing (only the latest pending record per flow
    needs applying) and idempotence (re-application is harmless). *)

exception Bad_update of string

type record = {
  u_flow : int;  (** universe flow id *)
  u_seq : int;  (** per-flow sequence number, 1-based, dense *)
  u_payload : (string * string) list;  (** NF name -> single-flow state blob *)
  u_consec : int;  (** containment: consecutive faults on this flow *)
  u_poisoned : bool;
}

val magic : string

(** "GUPD1" wire format, little-endian: magic, u32 flow, u32 seq,
    u32 consec, u8 poisoned, u16 blob count, then (u16 name length, name,
    u32 blob length, blob) per blob, closed by a u32 FNV-1a checksum over
    everything before it — so decode rejects truncation {e and} bit flips.
    @raise Invalid_argument on a negative flow or non-positive sequence. *)
val encode : record -> string

(** @raise Bad_update on bad magic, truncation, trailing bytes, checksum
    mismatch, or out-of-range fields. *)
val decode : string -> record

(** {2 Per-core append log} *)

type t

val create : unit -> t
val append : t -> record -> unit
val length : t -> int

(** Records in append order. *)
val records : t -> record list

(** {2 Sequence-monotonic application}

    An applier tracks each flow's resident sequence number and hands only
    strictly newer records to [apply]. Because records are absolute, this
    makes application deterministic and order-insensitive across every
    interleaving that respects per-flow sequence order. *)

type applier

val applier : apply:(record -> unit) -> applier

(** The flow's resident sequence number (0 when never seen). *)
val resident : applier -> int -> int

(** Record a local completion: the flow's state was produced in place, so
    its resident sequence advances without an apply. *)
val advance : applier -> flow:int -> seq:int -> unit

(** Apply the record if it is newer than the flow's resident state;
    returns [false] (and counts it stale) otherwise. *)
val offer : applier -> record -> bool

val applied : applier -> int
val stale : applier -> int

(** Largest sequence gap bridged by a single apply — how far a replica's
    view of a flow lagged before it next needed it. *)
val max_lag : applier -> int
