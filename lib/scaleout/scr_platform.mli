(** Head-to-head scale-out comparisons: one global arrival stream driven
    through RSS sharding and through SCR on identical platforms. The RSS
    pass shards the single stream by {!Gunfu.Platform.Recovery.owner}, so
    heavy-tailed traffic genuinely collapses onto the hot flows' owners —
    the failure mode SCR's sprayed dispatch removes. *)

open Gunfu

type rss_core = {
  rss_worker : Worker.t;
  rss_program : Program.t;
  rss_pool : Netcore.Packet.Pool.pool;
}

(** Each core runs its owned slice of the stream under RTC. Returns the
    per-core runs and their {!Gunfu.Metrics.merge_parallel} (which carries
    the offered/served imbalance ratios). *)
val run_rss :
  plat:Platform.t ->
  build:(core:int -> Worker.t -> rss_core) ->
  Workload.item list ->
  Metrics.run array * Metrics.run

(** The SCR pass on the same platform shape: replicas built per worker,
    the stream sprayed by [policy] (default round-robin), executed by
    [engine] (default rtc). See {!Scr.run} for the remaining knobs. *)
val run_scr :
  ?arm:(plane:Fault.t -> g:int -> Netcore.Packet.t -> unit) ->
  ?apply_cycles:int ->
  ?apply_instrs:int ->
  ?on_complete:(core:int -> g:int -> seq:int -> Nftask.t -> unit) ->
  ?digest:bool ->
  ?policy:Spray.policy ->
  ?engine:Scr.engine ->
  plat:Platform.t ->
  build:(core:int -> Worker.t -> Scr.replica) ->
  universe:int ->
  Workload.item list ->
  Scr.result
