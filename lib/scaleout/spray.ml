(* Packet spraying: SCR's dispatch discipline. Because every core holds a
   full state replica, the NIC may send a packet to ANY core — there is no
   flow affinity to preserve, which is exactly what makes the model immune
   to flow-size skew. The only obligation the dispatcher retains is
   bookkeeping: stamping each item of a flow with its dense per-flow
   sequence number, so replicas can order that flow's update stream.

   Any assignment whatsoever is legal (the oracle's SCR axis fuzzes seeded
   sprays to prove it); the policies here are the two a real NIC would
   implement — pure round-robin, and a seeded uniform hash. *)

open Gunfu

type policy = Round_robin | Seeded of int

(* splitmix-style avalanche: uniform, deterministic in (seed, index). *)
let mix seed g =
  let z = (g + 0x9E3779B9) lxor (seed * 0x85EBCA6B) in
  let z = (z lxor (z lsr 15)) * 0x2545F491 land max_int in
  let z = (z lxor (z lsr 13)) * 0x5AB3B58D land max_int in
  z lxor (z lsr 16)

type slot = {
  s_core : int;
  s_seq : int;  (* dense 1-based per-flow sequence; 0 for hintless items *)
}

let assign policy ~cores (items : Workload.item list) =
  if cores <= 0 then invalid_arg "Spray.assign: cores must be positive";
  let core_of g =
    match policy with
    | Round_robin -> g mod cores
    | Seeded seed -> mix seed g mod cores
  in
  let seqs : (int, int) Hashtbl.t = Hashtbl.create 256 in
  Array.of_list
    (List.mapi
       (fun g (item : Workload.item) ->
         let f = item.Workload.flow_hint in
         let seq =
           if f < 0 then 0
           else begin
             let s = 1 + Option.value ~default:0 (Hashtbl.find_opt seqs f) in
             Hashtbl.replace seqs f s;
             s
           end
         in
         { s_core = core_of g; s_seq = seq })
       items)
