(** Packet spraying: SCR's dispatch discipline. With full state replicas
    on every core, any packet may go to any core — the dispatcher's only
    obligation is stamping each item with its flow's dense per-flow
    sequence number so replicas can order that flow's update stream. *)

open Gunfu

type policy =
  | Round_robin  (** core = global index mod cores *)
  | Seeded of int  (** seeded uniform hash of the global index *)

type slot = {
  s_core : int;
  s_seq : int;  (** dense 1-based per-flow sequence; 0 for hintless items *)
}

(** One slot per item, in stream order.
    @raise Invalid_argument when [cores <= 0]. *)
val assign : policy -> cores:int -> Workload.item list -> slot array
