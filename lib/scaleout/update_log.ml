(* Compact per-flow state-update records — the unit of state the SCR model
   ships between replicas (Xu et al., arXiv 2309.14647) instead of packets.

   A record is an *absolute* snapshot of one flow's observable NF state at
   one per-flow sequence number: the named single-flow export blobs the
   Migration layer already defines (one per stateful NF of the chain), plus
   the fault plane's per-flow containment state, which must follow the flow
   across cores exactly like NF state does. Absoluteness is what buys
   coalescing — applying only the latest pending record for a flow is
   equivalent to applying all of them in sequence order, and re-application
   is idempotent.

   Records are framed on an explicit little-endian wire format ("GUPD1"):
   a real system would ship these across cores via shared rings or across
   machines. Unlike the Migration snapshot formats (fixed-size entries,
   length-checked only), update frames carry variable-length payloads and
   end in an FNV-1a checksum, so both truncation AND in-flight bit flips
   are rejected at decode. *)

exception Bad_update of string

type record = {
  u_flow : int;  (* universe flow id *)
  u_seq : int;  (* per-flow sequence number, 1-based, dense *)
  u_payload : (string * string) list;  (* NF name -> single-flow state blob *)
  u_consec : int;  (* containment: consecutive faults on this flow *)
  u_poisoned : bool;
}

let magic = "GUPD1"

(* ----- little-endian primitives (Migration's framing conventions) ----- *)

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let put_u32 buf v =
  put_u16 buf (v land 0xFFFF);
  put_u16 buf ((v lsr 16) land 0xFFFF)

let get_u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)
let get_u32 s off = get_u16 s off lor (get_u16 s (off + 2) lsl 16)

(* FNV-1a over a string prefix, folded to 32 bits. *)
let checksum s len =
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code s.[i]) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let encode (r : record) =
  if r.u_flow < 0 then invalid_arg "Update_log.encode: negative flow";
  if r.u_seq <= 0 then invalid_arg "Update_log.encode: sequence must be positive";
  let buf = Buffer.create 128 in
  Buffer.add_string buf magic;
  put_u32 buf r.u_flow;
  put_u32 buf r.u_seq;
  put_u32 buf r.u_consec;
  Buffer.add_char buf (if r.u_poisoned then '\001' else '\000');
  put_u16 buf (List.length r.u_payload);
  List.iter
    (fun (name, blob) ->
      if String.length name > 0xFFFF then invalid_arg "Update_log.encode: NF name too long";
      put_u16 buf (String.length name);
      Buffer.add_string buf name;
      put_u32 buf (String.length blob);
      Buffer.add_string buf blob)
    r.u_payload;
  let body = Buffer.contents buf in
  put_u32 buf (checksum body (String.length body));
  Buffer.contents buf

let decode s =
  let n = String.length s in
  (* magic(5) u32 flow/seq/consec + poisoned(1) + u16 count ... + u32 sum *)
  if n < 5 + 4 + 4 + 4 + 1 + 2 + 4 then raise (Bad_update "truncated");
  if String.sub s 0 5 <> magic then raise (Bad_update "bad magic");
  let body_len = n - 4 in
  if get_u32 s body_len <> checksum s body_len then
    raise (Bad_update "checksum mismatch");
  let flow = get_u32 s 5 in
  let seq = get_u32 s 9 in
  let consec = get_u32 s 13 in
  let poisoned =
    match s.[17] with
    | '\000' -> false
    | '\001' -> true
    | _ -> raise (Bad_update "bad poisoned flag")
  in
  let count = get_u16 s 18 in
  let off = ref 20 in
  let payload =
    List.init count (fun _ ->
        if !off + 2 > body_len then raise (Bad_update "truncated");
        let name_len = get_u16 s !off in
        off := !off + 2;
        if !off + name_len + 4 > body_len then raise (Bad_update "truncated");
        let name = String.sub s !off name_len in
        off := !off + name_len;
        let blob_len = get_u32 s !off in
        off := !off + 4;
        if !off + blob_len > body_len then raise (Bad_update "truncated");
        let blob = String.sub s !off blob_len in
        off := !off + blob_len;
        (name, blob))
  in
  if !off <> body_len then raise (Bad_update "trailing bytes");
  if seq <= 0 then raise (Bad_update "bad sequence number");
  { u_flow = flow; u_seq = seq; u_payload = payload; u_consec = consec; u_poisoned = poisoned }

(* ----- per-core append log ----- *)

type t = { mutable entries : record list; mutable n : int }

let create () = { entries = []; n = 0 }

let append t r =
  t.entries <- r :: t.entries;
  t.n <- t.n + 1

let length t = t.n
let records t = List.rev t.entries

(* ----- sequence-monotonic application ----- *)

(* An applier tracks each flow's high-water sequence number and hands only
   strictly newer records to [apply] — stale records (already superseded
   by a local completion or a later update) are skipped. Because records
   are absolute, this makes application deterministic and order-insensitive
   across every interleaving that respects per-flow sequence order: each
   flow's state ends at its highest offered sequence number regardless of
   how flows interleave. *)
type applier = {
  ap_apply : record -> unit;
  ap_hwm : (int, int) Hashtbl.t;  (* flow -> resident sequence number *)
  mutable ap_applied : int;
  mutable ap_stale : int;
  mutable ap_max_lag : int;  (* largest sequence gap bridged by one apply *)
}

let applier ~apply =
  { ap_apply = apply; ap_hwm = Hashtbl.create 64; ap_applied = 0; ap_stale = 0; ap_max_lag = 0 }

let resident ap flow = Option.value ~default:0 (Hashtbl.find_opt ap.ap_hwm flow)

(* A local completion advances the flow's resident sequence without an
   apply (the state was produced in place). *)
let advance ap ~flow ~seq =
  if seq > resident ap flow then Hashtbl.replace ap.ap_hwm flow seq

let offer ap (r : record) =
  let have = resident ap r.u_flow in
  if r.u_seq <= have then begin
    ap.ap_stale <- ap.ap_stale + 1;
    false
  end
  else begin
    ap.ap_apply r;
    Hashtbl.replace ap.ap_hwm r.u_flow r.u_seq;
    ap.ap_applied <- ap.ap_applied + 1;
    ap.ap_max_lag <- max ap.ap_max_lag (r.u_seq - have);
    true
  end

let applied ap = ap.ap_applied
let stale ap = ap.ap_stale
let max_lag ap = ap.ap_max_lag
