(** The controller's decision table: window signals in, knob move out —
    deterministic, with three layers of hysteresis so it never flaps:
    a deadband between every rule's high and low water marks, a
    consecutive-window confirmation streak, and a post-move cooldown. A
    throughput guard reverts any move whose first full window regresses
    kpps and pins the offending rule for the rest of the run. *)

open Gunfu

type move =
  | To_rtc
  | To_batch of int
  | To_il of Scheduler.policy * int * int  (** policy, n_tasks, distance *)
  | Tasks_up
  | Tasks_down
  | Distance_up
  | Distance_down
  | Switch_policy of Scheduler.policy
  | Scr_handoff
  | Scr_return
  | Revert  (** throughput guard: undo the previous move *)

val move_label : move -> string

type params = {
  hi_mem : float;  (** mem-cycle share above which latency hiding pays *)
  lo_mem : float;  (** ... below which interleave overhead dominates *)
  hi_switch : float;  (** switch-overhead share that justifies narrowing *)
  hi_occ : float;  (** mean in-flight fills that signal MSHR pressure *)
  hi_skew : float;  (** top-flow share above which RSS would collapse *)
  lo_skew : float;
  hi_imb : float;  (** projected RSS max-to-mean that warrants SCR *)
  confirm : int;  (** consecutive matching windows before a move *)
  cooldown : int;  (** windows to hold after any move *)
  regress : float;  (** revert when post-move kpps < (1-regress) * pre *)
  min_tasks : int;
  max_tasks : int;
  max_distance : int;
  batch : int;  (** batch width of the compute-bound terminal config *)
}

val default_params : params

type t

(** [scr] enables the {!Scr_handoff} rule with that core count; without it
    the controller never leaves the single core. *)
val create : ?params:params -> ?scr:int -> initial:Config.t -> unit -> t

val config : t -> Config.t
val params : t -> params

(** Feed one closed window; [Some move] means the driver must pause at the
    next quiescent boundary and apply it ([config] already reflects the
    move). [None] is a hold. *)
val decide : t -> Window.signals -> move option
