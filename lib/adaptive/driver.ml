(* The closed loop.

   The driver multiplexes one source across a chain of engine legs. Inside
   a leg it taps every pull (window bookkeeping) and polls the engine's
   [?quiesce] hook: when a window closes, the policy reads the signals and
   either holds (the leg continues, untouched) or proposes a move — then
   the hook answers [true], the engine stops pulling and drains every
   in-flight task and stashed item, and the driver starts the next leg
   under the new configuration. Reconfiguration is therefore only ever
   observable as "the source kept feeding a differently-shaped executor":
   per-flow order, emits and state are exactly what a static run over the
   same stream would produce at each leg, and a run with no move is ONE
   uninterrupted engine call — byte-identical to an uncontrolled run.

   The SCR hand-off reuses the PR 8/9 snapshot surface: quiescent export
   of the single-core state into full per-core replicas, sprayed chunks
   through Scr.run (chunk boundaries end with a convergence barrier, so
   they are quiescent too), and a fold of replica state back into the
   single-core instance on return. *)

open Gunfu

type scr_surface = {
  ss_cores : int;
  ss_universe : int;
  ss_engine : Scaleout.Scr.engine;
  ss_spray : Scaleout.Spray.policy;
  ss_spawn : unit -> Scaleout.Scr.replica array;
  ss_collect : Scaleout.Scr.replica array -> unit;
}

type plant = {
  pl_worker : Worker.t;
  pl_program : Program.t;
  pl_source : Workload.source;
  pl_plane : Fault.t;
  pl_scr : scr_surface option;
}

type decision = {
  d_index : int;
  d_cycles : int;
  d_pulled : int;
  d_completed : int;
  d_signals : Window.signals;
  d_move : Policy.move option;
  d_from : Config.t;
  d_to : Config.t;
  d_quiescent : bool;
}

let pp_decision ppf d =
  Fmt.pf ppf "#%d @%d %s->%s %s [%a]%s" d.d_index d.d_cycles
    (Config.label d.d_from) (Config.label d.d_to)
    (match d.d_move with Some m -> Policy.move_label m | None -> "hold")
    Window.pp_signals d.d_signals
    (if d.d_move <> None && not d.d_quiescent then " NOT-QUIESCENT" else "")

type outcome = {
  o_run : Metrics.run;
  o_legs : Metrics.run list;
  o_decisions : decision list;
  o_moves : int;
  o_final : Config.t;
  o_trace : Trace.t;
}

let run ?(epoch = 2048) ?label ?telemetry ?on_complete ~policy plant =
  if epoch <= 0 then invalid_arg "Driver.run: epoch must be positive";
  let trace = match telemetry with Some t -> t | None -> Trace.create () in
  let ctx = Worker.ctx plant.pl_worker in
  let cores = match plant.pl_scr with Some s -> s.ss_cores | None -> 4 in
  let w =
    Window.create ~freq_ghz:plant.pl_worker.Worker.cfg.Worker.freq_ghz ~cores trace
  in
  let pulled = ref 0 in
  let completed = ref 0 in
  let exhausted = ref false in
  let src () =
    match plant.pl_source () with
    | None ->
        exhausted := true;
        None
    | Some item ->
        incr pulled;
        Window.observe w item;
        Some item
  in
  let complete_cb task =
    incr completed;
    match on_complete with Some f -> f task | None -> ()
  in
  let base_cycles = ref 0 in
  let leg_start = ref ctx.Exec_ctx.clock in
  let cycles_now () = !base_cycles + (ctx.Exec_ctx.clock - !leg_start) in
  let fault_totals () =
    List.fold_left
      (fun (tot, st) (_, r, n) ->
        (tot + n, if r = Fault.Mshr_stall then st + n else st))
      (0, 0)
      (Fault.counts plant.pl_plane)
  in
  let cut_window ~cycles =
    let faults, stalls = fault_totals () in
    Window.cut w ~cycles ~completes:!completed ~faults ~stalls
  in
  let decisions = ref [] in
  let legs = ref [] in
  let moves = ref 0 in
  let window_start = ref 0 in
  (* Set when the policy proposed a move: the engine is draining towards
     the quiescent boundary where it will be applied. *)
  let pending = ref None in
  let finished = ref false in
  let decide_at ~cycles ~quiescent_now =
    let s = cut_window ~cycles in
    window_start := !pulled;
    let from = Policy.config policy in
    let mv = Policy.decide policy s in
    let d =
      {
        d_index = s.Window.w_index;
        d_cycles = cycles;
        d_pulled = !pulled;
        d_completed = !completed;
        d_signals = s;
        d_move = mv;
        d_from = from;
        d_to = Policy.config policy;
        d_quiescent = quiescent_now;
      }
    in
    (d, mv)
  in
  let record d note =
    Trace.on_decision trace ~ts:ctx.Exec_ctx.clock ~note;
    decisions := d :: !decisions
  in
  let quiesce () =
    if !pulled - !window_start < epoch then false
    else begin
      let d, mv = decide_at ~cycles:(cycles_now ()) ~quiescent_now:(!completed = !pulled) in
      match mv with
      | None ->
          record d "hold";
          false
      | Some _ ->
          pending := Some d;
          true
    end
  in
  let run_single cfg =
    let label = Config.label cfg in
    match cfg with
    | Config.Rtc ->
        Rtc.run ~label ~quiesce ~fault:plant.pl_plane ~telemetry:trace
          ~on_complete:complete_cb plant.pl_worker plant.pl_program src
    | Config.Batch { batch } ->
        Batch_rtc.run ~label ~batch ~quiesce ~fault:plant.pl_plane ~telemetry:trace
          ~on_complete:complete_cb plant.pl_worker plant.pl_program src
    | Config.Il { policy = sp; n_tasks; distance } ->
        Scheduler.run ~label ~policy:sp ~prefetch_distance:distance ~quiesce
          ~fault:plant.pl_plane ~telemetry:trace ~on_complete:complete_cb
          plant.pl_worker plant.pl_program ~n_tasks src
    | Config.Scr _ -> assert false
  in
  let run_scr surface =
    (* Quiescent entry: every pulled item has completed, so the export the
       replicas are seeded from is a consistent snapshot. *)
    let replicas = surface.ss_spawn () in
    let in_scr = ref true in
    while !in_scr do
      let chunk = ref [] in
      let n = ref 0 in
      let rec fill () =
        if !n < epoch then
          match src () with
          | None -> ()
          | Some item ->
              chunk := item :: !chunk;
              incr n;
              fill ()
      in
      fill ();
      let items = List.rev !chunk in
      if items = [] then begin
        surface.ss_collect replicas;
        finished := true;
        in_scr := false
      end
      else begin
        let slots = Scaleout.Spray.assign surface.ss_spray ~cores:surface.ss_cores items in
        let res =
          Scaleout.Scr.run ~engine:surface.ss_engine ~replicas ~slots
            ~universe:surface.ss_universe ~digest:false
            ~on_complete:(fun ~core:_ ~g:_ ~seq:_ task -> complete_cb task)
            items
        in
        base_cycles := !base_cycles + res.Scaleout.Scr.sr_merged.Metrics.cycles;
        legs :=
          { res.Scaleout.Scr.sr_merged with Metrics.label = Config.label (Policy.config policy) }
          :: !legs;
        (* Chunk boundaries end with the convergence barrier: quiescent. *)
        window_start := !pulled;
        let d, mv = decide_at ~cycles:(cycles_now ()) ~quiescent_now:true in
        (match mv with
        | None -> record d "hold"
        | Some m ->
            incr moves;
            record d (Policy.move_label m);
            if Config.single_core (Policy.config policy) then begin
              surface.ss_collect replicas;
              in_scr := false
            end);
        if !exhausted && !in_scr then begin
          surface.ss_collect replicas;
          finished := true;
          in_scr := false
        end
      end
    done
  in
  while not !finished do
    match Policy.config policy with
    | Config.Scr _ -> (
        match plant.pl_scr with
        | None -> invalid_arg "Driver.run: policy proposed SCR without a surface"
        | Some surface -> run_scr surface)
    | cfg -> (
        leg_start := ctx.Exec_ctx.clock;
        let r = run_single cfg in
        base_cycles := !base_cycles + r.Metrics.cycles;
        leg_start := ctx.Exec_ctx.clock;
        if r.Metrics.packets > 0 || !legs = [] then legs := r :: !legs;
        match !pending with
        | Some d ->
            pending := None;
            incr moves;
            let d =
              { d with d_completed = !completed; d_quiescent = !completed = d.d_pulled }
            in
            record d
              (match d.d_move with Some m -> Policy.move_label m | None -> "hold")
        | None -> finished := true)
  done;
  let legs = List.rev !legs in
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "%s/adaptive" (Program.name plant.pl_program)
  in
  {
    o_run = Metrics.merge_sequential ~label ~faults:(Fault.counts plant.pl_plane) legs;
    o_legs = legs;
    o_decisions = List.rev !decisions;
    o_moves = !moves;
    o_final = Policy.config policy;
    o_trace = trace;
  }
