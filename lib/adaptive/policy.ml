(* The controller's decision table.

   Hysteresis is layered three ways so the controller cannot flap:
   - every rule has a deadband (act above [hi_*], relax only below a
     separate [lo_*] mark — between them nothing matches);
   - a rule must match [confirm] consecutive windows before it fires
     (an oscillating signal resets the streak and never acts);
   - after any move the controller holds for [cooldown] windows, then a
     throughput guard compares the first full post-move window against
     the pre-move window: a regression beyond [regress] reverts the move
     and pins the offending rule for the rest of the run.

   Everything is a pure function of the signal stream, so the same seed
   and workload always produce the identical decision log. *)

open Gunfu

type move =
  | To_rtc
  | To_batch of int
  | To_il of Scheduler.policy * int * int
  | Tasks_up
  | Tasks_down
  | Distance_up
  | Distance_down
  | Switch_policy of Scheduler.policy
  | Scr_handoff
  | Scr_return
  | Revert

let move_label = function
  | To_rtc -> "to-rtc"
  | To_batch b -> Printf.sprintf "to-batch-%d" b
  | To_il (p, n, d) ->
      Printf.sprintf "to-il-%s-%d-d%d"
        (match p with Scheduler.Round_robin -> "rr" | Scheduler.Ready_first -> "rf")
        n d
  | Tasks_up -> "tasks-up"
  | Tasks_down -> "tasks-down"
  | Distance_up -> "distance-up"
  | Distance_down -> "distance-down"
  | Switch_policy Scheduler.Round_robin -> "policy-rr"
  | Switch_policy Scheduler.Ready_first -> "policy-rf"
  | Scr_handoff -> "scr-handoff"
  | Scr_return -> "scr-return"
  | Revert -> "revert"

type params = {
  hi_mem : float;
  lo_mem : float;
  hi_switch : float;
  hi_occ : float;
  hi_skew : float;
  lo_skew : float;
  hi_imb : float;
  confirm : int;
  cooldown : int;
  regress : float;
  min_tasks : int;
  max_tasks : int;
  max_distance : int;
  batch : int;
}

let default_params =
  {
    hi_mem = 0.35;
    lo_mem = 0.15;
    hi_switch = 0.08;
    hi_occ = 6.0;
    hi_skew = 0.30;
    lo_skew = 0.10;
    hi_imb = 1.8;
    confirm = 2;
    cooldown = 1;
    regress = 0.08;
    min_tasks = 2;
    max_tasks = 16;
    max_distance = 3;
    batch = 32;
  }

type t = {
  p : params;
  scr : int option;
  mutable cur : Config.t;
  mutable prev : Config.t;  (* config before the last move (revert target) *)
  mutable last_il : Scheduler.policy * int * int;  (* re-entry point for To_il *)
  streaks : (string, int) Hashtbl.t;
  mutable cooldown_left : int;
  mutable guard : (float * string) option;  (* (pre-move kpps, rule key) *)
  pinned : (string, unit) Hashtbl.t;
}

let create ?(params = default_params) ?scr ~initial () =
  if params.confirm <= 0 then invalid_arg "Policy.create: confirm must be positive";
  if params.min_tasks <= 0 || params.max_tasks < params.min_tasks then
    invalid_arg "Policy.create: bad task bounds";
  {
    p = params;
    scr;
    cur = initial;
    prev = initial;
    last_il =
      (match initial with
      | Config.Il { policy; n_tasks; distance } -> (policy, n_tasks, distance)
      | Config.Rtc | Config.Batch _ | Config.Scr _ ->
          (Scheduler.Round_robin, 8, 1));
    streaks = Hashtbl.create 8;
    cooldown_left = 0;
    guard = None;
    pinned = Hashtbl.create 4;
  }

let config t = t.cur
let params t = t.p

let apply t move =
  (match t.cur with
  | Config.Il { policy; n_tasks; distance } -> t.last_il <- (policy, n_tasks, distance)
  | Config.Rtc | Config.Batch _ | Config.Scr _ -> ());
  match (move, t.cur) with
  | To_rtc, _ -> Config.Rtc
  | To_batch b, _ -> Config.Batch { batch = b }
  | To_il (policy, n_tasks, distance), _ -> Config.Il { policy; n_tasks; distance }
  | Tasks_up, Config.Il c ->
      Config.Il { c with n_tasks = min t.p.max_tasks (c.n_tasks * 2) }
  | Tasks_down, Config.Il c ->
      Config.Il { c with n_tasks = max t.p.min_tasks (c.n_tasks / 2) }
  | Distance_up, Config.Il c ->
      Config.Il { c with distance = min t.p.max_distance (c.distance + 1) }
  | Distance_down, Config.Il c -> Config.Il { c with distance = max 1 (c.distance - 1) }
  | Switch_policy p, Config.Il c -> Config.Il { c with policy = p }
  | Scr_handoff, _ ->
      Config.Scr { cores = (match t.scr with Some c -> c | None -> 4) }
  | (Scr_return | Revert), _ -> t.prev
  | (Tasks_up | Tasks_down | Distance_up | Distance_down | Switch_policy _), c -> c

(* The rule table, in priority order: (key, move) for rules that match
   this window *and* can act on the current config. *)
let matching_rules t (s : Window.signals) =
  let p = t.p in
  let acc = ref [] in
  let add key mv = acc := (key, mv) :: !acc in
  (* MSHR pressure: injected stalls or saturated fill slots starve the
     round-robin scan; ready-first skips blocked tasks for a 1-cycle scan
     charge instead of a full wasted visit. *)
  (match t.cur with
  | Config.Il { policy = Scheduler.Round_robin; _ }
    when s.Window.w_stalls > 0 || s.Window.w_mshr_occ >= p.hi_occ ->
      add "stall-rf" (Switch_policy Scheduler.Ready_first)
  | _ -> ());
  (* Skewed traffic collapses an RSS projection onto few cores; SCR's
     sprayed dispatch is the scale-out that stays flat under skew. *)
  (match t.scr with
  | Some _
    when Config.single_core t.cur
         && s.Window.w_skew >= p.hi_skew
         && s.Window.w_imbalance >= p.hi_imb ->
      add "scr-handoff" Scr_handoff
  | _ -> ());
  (match t.cur with
  | Config.Scr _ when s.Window.w_skew <= p.lo_skew -> add "scr-return" Scr_return
  | _ -> ());
  (* Memory-bound: grow the latency-hiding budget — enter the interleaved
     family, widen it, then raise the prefetch distance. *)
  (if s.Window.w_mem_share >= p.hi_mem then
     match t.cur with
     | Config.Rtc | Config.Batch _ ->
         (* Re-enter no narrower than the default width: the widths a
            compute-bound narrowing march walked through are not a
            memory-bound starting point. *)
         let policy, n, d = t.last_il in
         add "mem-up" (To_il (policy, max n 8, d))
     | Config.Il { n_tasks; distance; _ } ->
         if n_tasks < p.max_tasks then add "mem-up" Tasks_up
         else if distance < p.max_distance && s.Window.w_deep_share >= p.hi_mem then
           add "mem-up" Distance_up
     | Config.Scr _ -> ());
  (* Compute-bound: the switch overhead of a wide interleave buys nothing
     when state is cache-resident — narrow, then collapse to batched
     run-to-completion, which keeps the locality win while amortizing the
     per-pull overhead plain rtc still pays. *)
  (if s.Window.w_mem_share <= p.lo_mem && s.Window.w_switch_share >= p.hi_switch then
     match t.cur with
     | Config.Il { n_tasks; _ } ->
         if n_tasks > p.min_tasks then add "mem-down" Tasks_down
         else add "mem-down" (To_batch p.batch)
     | Config.Rtc | Config.Batch _ | Config.Scr _ -> ());
  List.rev !acc

let decide t (s : Window.signals) =
  if t.cooldown_left > 0 then begin
    t.cooldown_left <- t.cooldown_left - 1;
    Hashtbl.reset t.streaks;
    if t.cooldown_left = 0 then begin
      (* First full window under the new config: the throughput guard. *)
      match t.guard with
      | Some (pre, key) when s.Window.w_kpps < (1.0 -. t.p.regress) *. pre ->
          t.guard <- None;
          Hashtbl.replace t.pinned key ();
          let from = t.cur in
          t.cur <- t.prev;
          t.prev <- from;
          t.cooldown_left <- t.p.cooldown;
          Some Revert
      | _ ->
          t.guard <- None;
          None
    end
    else None
  end
  else begin
    let matched = matching_rules t s in
    (* Streak bookkeeping: matched rules extend their streak, everything
       else resets — an oscillating signal can never accumulate. *)
    let keys = List.map fst matched in
    Hashtbl.iter
      (fun k _ -> if not (List.mem k keys) then Hashtbl.replace t.streaks k 0)
      (Hashtbl.copy t.streaks);
    List.iter
      (fun k ->
        Hashtbl.replace t.streaks k
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.streaks k)))
      keys;
    let fire =
      List.find_opt
        (fun (key, _) ->
          (not (Hashtbl.mem t.pinned key))
          && Option.value ~default:0 (Hashtbl.find_opt t.streaks key) >= t.p.confirm)
        matched
    in
    match fire with
    | None -> None
    | Some (key, mv) ->
        let next = apply t mv in
        if Config.equal next t.cur then begin
          (* Saturated knob: nothing to do, don't burn a cooldown. *)
          Hashtbl.replace t.streaks key 0;
          None
        end
        else begin
          t.prev <- t.cur;
          t.cur <- next;
          t.guard <- Some (s.Window.w_kpps, key);
          t.cooldown_left <- t.p.cooldown;
          Hashtbl.reset t.streaks;
          Some mv
        end
  end
