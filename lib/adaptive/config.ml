(* Executor configuration: the knob vector the adaptive controller retunes
   online. One value of this type fully determines how the driver runs the
   next epoch — executor family, interleave width, task-selection policy,
   prefetch distance, or the SCR scale-out hand-off. *)

open Gunfu

type t =
  | Rtc
  | Batch of { batch : int }
  | Il of { policy : Scheduler.policy; n_tasks : int; distance : int }
  | Scr of { cores : int }

let default = Il { policy = Scheduler.Round_robin; n_tasks = 8; distance = 1 }

let label = function
  | Rtc -> "rtc"
  | Batch { batch } -> Printf.sprintf "batch-%d" batch
  | Il { policy; n_tasks; distance } ->
      let p = match policy with Scheduler.Round_robin -> "rr" | Scheduler.Ready_first -> "rf" in
      Printf.sprintf "il-%s-%d-d%d" p n_tasks distance
  | Scr { cores } -> Printf.sprintf "scr-%d" cores

let equal a b =
  match (a, b) with
  | Rtc, Rtc -> true
  | Batch { batch = a }, Batch { batch = b } -> a = b
  | Il a, Il b -> a.policy = b.policy && a.n_tasks = b.n_tasks && a.distance = b.distance
  | Scr { cores = a }, Scr { cores = b } -> a = b
  | (Rtc | Batch _ | Il _ | Scr _), _ -> false

let single_core = function Rtc | Batch _ | Il _ -> true | Scr _ -> false
let pp ppf t = Fmt.string ppf (label t)
