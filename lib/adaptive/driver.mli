(** The closed loop: run a plant (program + worker + source + fault plane)
    under the current {!Config}, cut a {!Window} every [epoch] pulls, feed
    it to the {!Policy}, and apply any proposed move at a quiescent pull
    boundary — the engines' [?quiesce] hook stops source pulls and drains
    every in-flight task first, so a reconfiguration can never be observed
    by the data path. Every decision (hold or move) is recorded in the
    decision log and traced as a {!Gunfu.Trace.Decision} span.

    When the policy proposes an SCR hand-off, the driver exports the
    single-core state into full per-core replicas (the PR 8/9 snapshot
    surface, supplied by the plant), sprays subsequent epochs through
    {!Scaleout.Scr.run}, and on return folds replica state back into the
    single-core instance — both edges are quiescent by construction.

    A run in which the policy never proposes a move executes as one
    uninterrupted engine call: byte-identical to an uncontrolled run. *)

open Gunfu

(** SCR hand-off surface, supplied by plants that can scale out. *)
type scr_surface = {
  ss_cores : int;
  ss_universe : int;  (** flow-hint universe for {!Scaleout.Scr.run} *)
  ss_engine : Scaleout.Scr.engine;
  ss_spray : Scaleout.Spray.policy;
  ss_spawn : unit -> Scaleout.Scr.replica array;
      (** fresh full replicas seeded with the single-core instance's
          *current* state (quiescent export) *)
  ss_collect : Scaleout.Scr.replica array -> unit;
      (** fold converged replica state back into the single-core
          instance *)
}

type plant = {
  pl_worker : Worker.t;
  pl_program : Program.t;
  pl_source : Workload.source;
  pl_plane : Fault.t;  (** shared across every leg of the run *)
  pl_scr : scr_surface option;
}

type decision = {
  d_index : int;  (** window sequence number *)
  d_cycles : int;  (** cumulative simulated cycles at the cut *)
  d_pulled : int;  (** items pulled when the decision was taken *)
  d_completed : int;  (** completions when the move was applied *)
  d_signals : Window.signals;
  d_move : Policy.move option;  (** [None] = hold *)
  d_from : Config.t;
  d_to : Config.t;
  d_quiescent : bool;  (** pulled = completed when the move landed *)
}

val pp_decision : Format.formatter -> decision -> unit

type outcome = {
  o_run : Metrics.run;  (** sequential merge over all legs *)
  o_legs : Metrics.run list;  (** chronological *)
  o_decisions : decision list;  (** chronological; holds included *)
  o_moves : int;  (** decisions that applied a move *)
  o_final : Config.t;
  o_trace : Trace.t;
}

(** [run ~policy plant] drives the plant until the source drains.
    [epoch] (default 2048) is the window length in pulls; [telemetry]
    supplies the trace (fresh when omitted — the window fold needs one
    attached, which is free: telemetry hooks never charge cycles).
    [on_complete] taps every completion, as in the engines.
    @raise Invalid_argument when [epoch <= 0], or when the policy proposes
    an SCR hand-off and the plant has no [pl_scr]. *)
val run :
  ?epoch:int -> ?label:string -> ?telemetry:Trace.t ->
  ?on_complete:(Nftask.t -> unit) -> policy:Policy.t -> plant -> outcome
