(** Per-epoch signal fold: deltas over the telemetry plane's cumulative
    attribution books (never the lossy span ring), plus a flow-hint tap for
    skew, turned into the normalized signals the {!Policy} rules read. *)

open Gunfu

type signals = {
  w_index : int;  (** window sequence number, from 0 *)
  w_pulls : int;  (** items pulled in the window *)
  w_completes : int;
  w_cycles : int;  (** simulated cycles spent in the window *)
  w_kpps : float;  (** completions per simulated second / 1e3 *)
  w_mem_share : float;  (** demand-miss cycles / window cycles *)
  w_deep_share : float;
      (** LLC + DRAM + in-flight wait cycles / window cycles — the share
          only more aggressive latency hiding can recover *)
  w_switch_share : float;  (** task-switch overhead cycles / window cycles *)
  w_mshr_occ : float;  (** mean in-flight fills per occupancy sample *)
  w_active_occ : float;  (** mean active tasks per occupancy sample *)
  w_fault_rate : float;  (** plane faults recorded / pulls *)
  w_stalls : int;  (** injected MSHR-starvation events in the window *)
  w_skew : float;  (** busiest flow's share of the window's pulls *)
  w_imbalance : float;
      (** projected max-to-mean core load if the window's flows were RSS-
          pinned onto [cores] cores — what SCR's spray would flatten *)
}

type t

(** [create ~cores trace] — [cores] is the scale-out width used for the
    RSS-imbalance projection; [freq_ghz] (default 2.7) converts window
    cycles into the kpps signal. @raise Invalid_argument when
    [cores <= 0]. *)
val create : ?freq_ghz:float -> cores:int -> Trace.t -> t

(** Count one pulled item into the open window (the driver taps the
    source with this). *)
val observe : t -> Workload.item -> unit

(** Close the open window: fold the trace-counter deltas since the last
    cut with the driver-supplied cumulative [cycles] / [faults] / [stalls]
    counters into signals, and start the next window. *)
val cut : t -> cycles:int -> completes:int -> faults:int -> stalls:int -> signals

val pp_signals : Format.formatter -> signals -> unit
