(** Executor configuration — the knob vector the adaptive controller
    retunes online: executor family (rtc / batch / interleaved / SCR),
    interleave width, task-selection policy, and prefetch distance. *)

open Gunfu

type t =
  | Rtc
  | Batch of { batch : int }
  | Il of { policy : Scheduler.policy; n_tasks : int; distance : int }
      (** the paper's interleaved function-stream executor *)
  | Scr of { cores : int }
      (** State-Compute Replication scale-out (rtc engine per core) *)

(** The controller's neutral starting point: interleaved round-robin,
    8 tasks, distance 1. *)
val default : t

(** Stable short label, e.g. ["il-rr-8-d1"] — used in run labels, decision
    logs and bench series. *)
val label : t -> string

val equal : t -> t -> bool

(** Whether the configuration runs on the single core (everything but
    {!Scr}). *)
val single_core : t -> bool

val pp : Format.formatter -> t -> unit
