(* Per-epoch signal fold. Everything is computed as a delta between two
   snapshots of the telemetry plane's *cumulative* books — level cycle
   counters, switch/pull/action cycles, occupancy sums — never from the
   span ring, which is bounded and lossy. The flow-hint histogram (skew,
   projected RSS imbalance) comes from a driver-side tap on the source,
   so the window sees every pull even when the ring has wrapped. *)

open Gunfu

type signals = {
  w_index : int;
  w_pulls : int;
  w_completes : int;
  w_cycles : int;
  w_kpps : float;
  w_mem_share : float;
  w_deep_share : float;
  w_switch_share : float;
  w_mshr_occ : float;
  w_active_occ : float;
  w_fault_rate : float;
  w_stalls : int;
  w_skew : float;
  w_imbalance : float;
}

(* Cumulative readings at the last cut. *)
type snap = {
  s_cycles : int;
  s_completes : int;
  s_mem : int;
  s_deep : int;
  s_switch : int;
  s_occ : int * int * int;  (* samples, active sum, mshr sum *)
  s_faults : int;
  s_stalls : int;
}

type t = {
  trace : Trace.t;
  cores : int;
  freq_ghz : float;
  flows : (int, int) Hashtbl.t;  (* flow hint -> pulls this window *)
  mutable pulls : int;
  mutable index : int;
  mutable last : snap;
}

let deep_cycles tr =
  Trace.level_cycles tr Trace.Llc
  + Trace.level_cycles tr Trace.Dram
  + Trace.level_cycles tr Trace.Inflight

let snap_of trace ~cycles ~completes ~faults ~stalls =
  {
    s_cycles = cycles;
    s_completes = completes;
    s_mem = Trace.mem_cycles trace;
    s_deep = deep_cycles trace;
    s_switch = Trace.switch_cycles trace;
    s_occ = Trace.occupancy_totals trace;
    s_faults = faults;
    s_stalls = stalls;
  }

let create ?(freq_ghz = 2.7) ~cores trace =
  if cores <= 0 then invalid_arg "Window.create: cores must be positive";
  {
    trace;
    cores;
    freq_ghz;
    flows = Hashtbl.create 256;
    pulls = 0;
    index = 0;
    last = snap_of trace ~cycles:0 ~completes:0 ~faults:0 ~stalls:0;
  }

let observe t (item : Workload.item) =
  t.pulls <- t.pulls + 1;
  let fh = item.Workload.flow_hint in
  if fh >= 0 then
    Hashtbl.replace t.flows fh (1 + Option.value ~default:0 (Hashtbl.find_opt t.flows fh))

(* Busiest flow's share, and the max-to-mean core load if the window's
   flows were RSS-pinned (flow mod cores) — the placement SCR's spray
   replaces. *)
let skew_and_imbalance t =
  if t.pulls = 0 then (0.0, 1.0)
  else begin
    let top = ref 0 in
    let per_core = Array.make t.cores 0 in
    Hashtbl.iter
      (fun fh n ->
        if n > !top then top := n;
        per_core.(fh mod t.cores) <- per_core.(fh mod t.cores) + n)
      t.flows;
    let hinted = Array.fold_left ( + ) 0 per_core in
    let imb =
      if hinted = 0 then 1.0
      else
        let mean = float_of_int hinted /. float_of_int t.cores in
        float_of_int (Array.fold_left max 0 per_core) /. mean
    in
    (float_of_int !top /. float_of_int t.pulls, imb)
  end

let cut t ~cycles ~completes ~faults ~stalls =
  let last = t.last in
  let now = snap_of t.trace ~cycles ~completes ~faults ~stalls in
  let dcycles = now.s_cycles - last.s_cycles in
  let dcompletes = now.s_completes - last.s_completes in
  let share v = if dcycles <= 0 then 0.0 else float_of_int v /. float_of_int dcycles in
  let samples_now, active_now, mshr_now = now.s_occ in
  let samples_last, active_last, mshr_last = last.s_occ in
  let dsamples = samples_now - samples_last in
  let occ_mean v =
    if dsamples <= 0 then 0.0 else float_of_int v /. float_of_int dsamples
  in
  let skew, imbalance = skew_and_imbalance t in
  let signals =
    {
      w_index = t.index;
      w_pulls = t.pulls;
      w_completes = dcompletes;
      w_cycles = dcycles;
      w_kpps =
        (if dcycles <= 0 then 0.0
         else
           float_of_int dcompletes
           /. (float_of_int dcycles /. (t.freq_ghz *. 1e9))
           /. 1e3);
      w_mem_share = share (now.s_mem - last.s_mem);
      w_deep_share = share (now.s_deep - last.s_deep);
      w_switch_share = share (now.s_switch - last.s_switch);
      w_mshr_occ = occ_mean (mshr_now - mshr_last);
      w_active_occ = occ_mean (active_now - active_last);
      w_fault_rate =
        (if t.pulls = 0 then 0.0
         else float_of_int (now.s_faults - last.s_faults) /. float_of_int t.pulls);
      w_stalls = now.s_stalls - last.s_stalls;
      w_skew = skew;
      w_imbalance = imbalance;
    }
  in
  t.last <- now;
  t.index <- t.index + 1;
  t.pulls <- 0;
  Hashtbl.reset t.flows;
  signals

let pp_signals ppf s =
  Fmt.pf ppf
    "w%d pulls=%d done=%d kpps=%.0f mem=%.2f deep=%.2f sw=%.2f occ=%.1f \
     fault=%.3f stalls=%d skew=%.2f imb=%.2f"
    s.w_index s.w_pulls s.w_completes s.w_kpps s.w_mem_share s.w_deep_share
    s.w_switch_share s.w_mshr_occ s.w_fault_rate s.w_stalls s.w_skew s.w_imbalance
