(* Figure 14: SFC (length 6, 130k flows) scalability across cores and
   packet sizes, with a BESS-like RTC reference. GuNFu runs with all
   optimisations (interleaving + DP + MR); throughput is capped at the
   100 Gbps line rate. *)

open Bench_common

let cores_list = [ 1; 2; 4; 8; 12; 16 ]
let packets_per_core = 20_000
let n_flows_total = 131_072

type size_case = Fixed of int | Caida

let size_cases = [ Fixed 64; Fixed 512; Fixed 1024; Fixed 1512; Caida ]

let size_name = function Fixed n -> string_of_int n | Caida -> "CAIDA"

let build_core ~mr ~packed ~size ~cores worker core =
  let layout = Gunfu.Worker.layout worker in
  let n_flows = max 1024 (n_flows_total / cores) in
  let gen =
    match size with
    | Fixed n ->
        Traffic.Flowgen.create ~seed:(40 + core) ~n_flows
          ~size_model:(Traffic.Flowgen.Fixed n) ()
    | Caida -> Traffic.Caida.create ~seed:(40 + core) ~n_flows ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let sfc = Nfs.Sfc.create layout ~length:6 ~packed ~n_flows () in
  Nfs.Sfc.populate sfc (Traffic.Flowgen.flows gen);
  let opts = { Gunfu.Compiler.default_opts with Gunfu.Compiler.match_removal = mr } in
  ( Nfs.Sfc.program ~opts sfc,
    Traffic.Flowgen.flows gen,
    Gunfu.Workload.of_flowgen gen ~pool ~count:packets_per_core )

let gbps ~cores ~mr ~packed ~size model =
  let platform = Gunfu.Platform.create ~cores () in
  let setup w core =
    let program, _, source = build_core ~mr ~packed ~size ~cores w core in
    (program, source)
  in
  let runs =
    match model with
    | Rtc_model -> Gunfu.Platform.run_rtc platform ~setup
    | Interleaved n -> Gunfu.Platform.run_interleaved platform ~n_tasks:n ~setup
  in
  (* Cores run concurrently: aggregate = per-core mean rate x cores, capped
     at line rate. *)
  let per_core =
    List.fold_left (fun acc r -> acc +. Gunfu.Metrics.gbps r) 0.0 runs
    /. float_of_int cores
  in
  Float.min 100.0 (per_core *. float_of_int cores)

let run () =
  header "Fig 14: SFC length 6, 130k flows - multicore scalability (Gbps, 100G line)";
  row "%-8s %8s %8s %8s %8s %8s" "cores" "64B" "512B" "1024B" "1512B" "CAIDA";
  List.iter
    (fun cores ->
      let cells =
        List.map
          (fun size ->
            let v = gbps ~cores ~mr:true ~packed:true ~size (Interleaved 16) in
            record_metrics ~fig:"fig14" ~title:"SFC multicore scalability"
              ~series:(size_name size) ~x:(float_of_int cores)
              [ ("gbps", v) ];
            v)
          size_cases
      in
      (match cells with
      | [ a; b; c; d; e ] -> row "%-8d %8.1f %8.1f %8.1f %8.1f %8.1f" cores a b c d e
      | _ -> assert false))
    cores_list;
  (* BESS-like reference: the same chain under per-packet RTC at 16 cores. *)
  let ref_cells =
    List.map
      (fun size ->
        let v = gbps ~cores:16 ~mr:false ~packed:false ~size Rtc_model in
        record_metrics ~fig:"fig14" ~title:"SFC multicore scalability"
          ~series:(Printf.sprintf "BESS@16-%s" (size_name size))
          ~x:16.0 [ ("gbps", v) ];
        v)
      size_cases
  in
  (match ref_cells with
  | [ a; b; c; d; e ] ->
      row "%-8s %8.1f %8.1f %8.1f %8.1f %8.1f" "BESS@16" a b c d e
  | _ -> assert false);
  row "expected shape: near-linear scaling to line rate; RTC reference far below";
  row "(paper Fig 14: BESS reaches only ~18-20 Gbps on the length-6 chain)"
