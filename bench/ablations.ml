(* Ablations of the design choices (beyond the paper's figures):

   A1 execution models        — plain RTC vs batched-prefetch RTC (the
                                 CuckooSwitch/G-opt prior art of §II-C) vs
                                 interleaved function streams;
   A2 prefetch vs interleave  — interleaving with the prefetcher disabled
                                 isolates how much of the win is the
                                 prefetch overlap vs mere task switching;
   A3 MSHR (MLP) bound        — outstanding-miss budget sweeps the
                                 memory-level parallelism the model exploits;
   A4 switch-cost sensitivity — how heavy may an NFTask switch be before
                                 the model stops paying off;
   A5 data packing vs tasks   — DP's cache-pressure relief grows with the
                                 number of interleaved tasks;
   A6 LLC-size sensitivity    — the RTC gap widens as state falls out of
                                 progressively smaller LLCs. *)

open Bench_common

let a1 () =
  header "A1: execution models on NAT (131k flows)";
  row "%-28s %10s %10s" "model" "Mpps" "speedup";
  let rtc =
    let worker, program, source = nat_env () in
    measure worker program Rtc_model source
  in
  let batch =
    let worker, program, source = nat_env () in
    ignore (Gunfu.Batch_rtc.run worker program (source ~count:warmup_packets));
    Gunfu.Batch_rtc.run worker program (source ~count:default_packets)
  in
  let il =
    let worker, program, source = nat_env () in
    measure worker program (Interleaved 16) source
  in
  let show label r =
    row "%-28s %10.2f %9.2fx" label (Gunfu.Metrics.mpps r)
      (Gunfu.Metrics.mpps r /. Gunfu.Metrics.mpps rtc)
  in
  show "per-packet RTC" rtc;
  show "RTC + batched prefetch" batch;
  show "interleaved streams (16)" il;
  row "(batching only covers the first dependent access; interleaving covers all)"

let a2 () =
  header "A2: interleaving with and without the software prefetcher (UPF)";
  row "%-28s %10s" "configuration" "Mpps";
  let with_pf =
    let worker, program, source = upf_env () in
    measure worker program (Interleaved 16) source
  in
  (* Same NF compiled with empty prefetch policies: the scheduler still
     interleaves, but every access demand-misses. *)
  let without_pf =
    let worker = Gunfu.Worker.create ~id:0 () in
    let layout = Gunfu.Worker.layout worker in
    let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions:131072 ~n_pdrs:16 () in
    let pool = Netcore.Packet.Pool.create layout ~count:1024 in
    let upf =
      Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:16 ()
    in
    Nfs.Upf.populate upf;
    let opts = { Gunfu.Compiler.default_opts with Gunfu.Compiler.prefetching = false } in
    let program = Nfs.Upf.program ~opts upf in
    measure worker program (Interleaved 16) (fun ~count ->
        Gunfu.Workload.of_mgw_downlink mgw ~pool ~count)
  in
  row "%-28s %10.2f" "interleave + prefetch" (Gunfu.Metrics.mpps with_pf);
  row "%-28s %10.2f" "interleave, no prefetch" (Gunfu.Metrics.mpps without_pf);
  row "(without prefetch, switching alone hides nothing: the win is the overlap)"

let a3 () =
  header "A3: MSHR budget (memory-level parallelism bound), UPF IL-16";
  row "%-8s %10s" "mshrs" "Mpps";
  List.iter
    (fun mshr_count ->
      let cfg =
        {
          Gunfu.Worker.default_cfg with
          Gunfu.Worker.mem_cfg =
            { Memsim.Hierarchy.default_config with Memsim.Hierarchy.mshr_count };
        }
      in
      let worker = Gunfu.Worker.create ~cfg ~id:0 () in
      let layout = Gunfu.Worker.layout worker in
      let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions:131072 ~n_pdrs:16 () in
      let pool = Netcore.Packet.Pool.create layout ~count:1024 in
      let upf =
        Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:16 ()
      in
      Nfs.Upf.populate upf;
      let program = Nfs.Upf.program upf in
      let r =
        measure worker program (Interleaved 16) (fun ~count ->
            Gunfu.Workload.of_mgw_downlink mgw ~pool ~count)
      in
      row "%-8d %10.2f" mshr_count (Gunfu.Metrics.mpps r))
    [ 1; 2; 4; 10; 16; 32 ];
  row "(throughput saturates once MSHRs cover the in-flight state of ~16 tasks)"

let a4 () =
  header "A4: NFTask switch-cost sensitivity, NAT IL-16";
  row "%-12s %10s" "switch cyc" "Mpps";
  List.iter
    (fun switch_cycles ->
      let cfg = { Gunfu.Worker.default_cfg with Gunfu.Worker.switch_cycles } in
      let worker = Gunfu.Worker.create ~cfg ~id:0 () in
      let layout = Gunfu.Worker.layout worker in
      let gen =
        Traffic.Flowgen.create ~seed:1 ~n_flows:131072
          ~size_model:(Traffic.Flowgen.Fixed 128) ()
      in
      let pool = Netcore.Packet.Pool.create layout ~count:1024 in
      let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows:131072 () in
      Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
      let program = Nfs.Nat.program nat in
      let r =
        measure worker program (Interleaved 16) (fun ~count ->
            Gunfu.Workload.of_flowgen gen ~pool ~count)
      in
      row "%-12d %10.2f" switch_cycles (Gunfu.Metrics.mpps r))
    [ 2; 10; 25; 50; 100 ];
  row "(the model tolerates tens of cycles per switch; kernel-thread costs would";
  row " erase the benefit - cf. Fig 9)"

let a5 () =
  header "A5: data packing - throughput and memory traffic (SFC length 6)";
  row "%-8s %12s %12s %10s %14s %14s" "tasks" "unpacked" "packed" "DP gain"
    "fills/pkt (u)" "fills/pkt (p)";
  List.iter
    (fun n ->
      let run packed =
        let worker, program, source = sfc_env ~packed () in
        measure ~packets:30_000 worker program (Interleaved n) source
      in
      let u = run false and p = run true in
      let fills r =
        Gunfu.Metrics.per_packet r r.Gunfu.Metrics.mem.Memsim.Memstats.dram_fills
        +. Gunfu.Metrics.per_packet r r.Gunfu.Metrics.mem.Memsim.Memstats.prefetch_issued
      in
      row "%-8d %12.2f %12.2f %9.1f%% %14.2f %14.2f" n (Gunfu.Metrics.mpps u)
        (Gunfu.Metrics.mpps p)
        ((Gunfu.Metrics.mpps p /. Gunfu.Metrics.mpps u -. 1.0) *. 100.0)
        (fills u) (fills p))
    [ 8; 16; 32; 64 ];
  row "(DP's first-order effect here is memory traffic - fewer line fills per";
  row " packet; throughput moves little once interleaving already hides latency)"

let a6 () =
  header "A6: LLC size sensitivity (UPF, RTC vs IL-16)";
  row "%-10s %10s %10s %10s" "llc" "RTC Mpps" "IL16 Mpps" "gap";
  List.iter
    (fun (label, llc_size) ->
      let cfg =
        {
          Gunfu.Worker.default_cfg with
          Gunfu.Worker.mem_cfg =
            { Memsim.Hierarchy.default_config with Memsim.Hierarchy.llc_size };
        }
      in
      let run model =
        let worker = Gunfu.Worker.create ~cfg ~id:0 () in
        let layout = Gunfu.Worker.layout worker in
        let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions:131072 ~n_pdrs:16 () in
        let pool = Netcore.Packet.Pool.create layout ~count:1024 in
        let upf =
          Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw)
            ~n_pdrs:16 ()
        in
        Nfs.Upf.populate upf;
        let program = Nfs.Upf.program upf in
        measure worker program model (fun ~count ->
            Gunfu.Workload.of_mgw_downlink mgw ~pool ~count)
      in
      let rtc = run Rtc_model and il = run (Interleaved 16) in
      row "%-10s %10.2f %10.2f %9.2fx" label (Gunfu.Metrics.mpps rtc)
        (Gunfu.Metrics.mpps il)
        (Gunfu.Metrics.mpps il /. Gunfu.Metrics.mpps rtc))
    [
      (* sets x 11 ways x 64B lines — geometry must divide evenly *)
      ("2.75MiB", 4096 * 11 * 64);
      ("11MiB", 16384 * 11 * 64);
      ("33MiB", 49152 * 11 * 64);
    ];
  row "(the smaller the LLC share, the more state access stalls RTC; interleaving";
  row " is insensitive because it overlaps whatever the miss latency is)"

let a7 () =
  header "A7: pipeline model (modules on separate cores) vs consolidation";
  let n_flows = 65536 and packets = 20_000 in
  let gen () =
    Traffic.Flowgen.create ~seed:8 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  (* 3-stage pipeline: LB | NAT | NM on three cores, RTC within stages. *)
  let g1 = gen () in
  let mk unit_of =
    let worker = Gunfu.Worker.create ~id:0 () in
    (worker, Nfs.Nf_unit.compile ~name:"stage" [ unit_of (Gunfu.Worker.layout worker) ])
  in
  let stages =
    [
      mk (fun l ->
          let lb = Nfs.Lb.create l ~name:"lb" ~n_flows () in
          Nfs.Lb.populate lb (Traffic.Flowgen.flows g1);
          Nfs.Lb.unit lb);
      mk (fun l ->
          let nat = Nfs.Nat.create l ~name:"nat" ~n_flows () in
          Nfs.Nat.populate nat (Traffic.Flowgen.flows g1);
          Nfs.Nat.unit nat);
      mk (fun l ->
          let nm = Nfs.Monitor.create l ~name:"nm" ~n_flows () in
          Nfs.Monitor.populate nm (Traffic.Flowgen.flows g1);
          Nfs.Monitor.unit nm);
    ]
  in
  let pool = Netcore.Packet.Pool.create (Gunfu.Worker.layout (fst (List.hd stages))) ~count:1024 in
  let pipe = Gunfu.Pipeline.run stages (Gunfu.Workload.of_flowgen g1 ~pool ~count:packets) in
  (* Consolidated: the whole length-3 chain interleaved per core, 3 cores. *)
  let g2 = gen () in
  let worker = Gunfu.Worker.create ~id:0 () in
  let layout = Gunfu.Worker.layout worker in
  let sfc = Nfs.Sfc.create layout ~length:3 ~packed:false ~n_flows () in
  Nfs.Sfc.populate sfc (Traffic.Flowgen.flows g2);
  let pool2 = Netcore.Packet.Pool.create layout ~count:1024 in
  let cons =
    Gunfu.Scheduler.run worker (Nfs.Sfc.program sfc) ~n_tasks:16
      (Gunfu.Workload.of_flowgen g2 ~pool:pool2 ~count:packets)
  in
  row "%-40s %10.2f Mpps (3 cores)" "pipeline LB|NAT|NM (RTC + queues)"
    (Gunfu.Metrics.mpps pipe);
  row "%-40s %10.2f Mpps (3 cores)" "consolidated chain, interleaved x16"
    (3.0 *. Gunfu.Metrics.mpps cons);
  row "(consolidation wins: no inter-core transfers, and interleaving hides the";
  row " state misses the pipeline stages still stall on)"

let a8 () =
  header "A8: per-packet latency distributions (NAT, 131k flows)";
  row "%-28s %10s %10s %10s %10s" "model" "mean ns" "p50 ns" "p99 ns" "max ns";
  let show label r =
    match r.Gunfu.Metrics.latency with
    | None -> row "%-28s (no samples)" label
    | Some l ->
        let ns c = Gunfu.Metrics.cycles_to_ns r c in
        row "%-28s %10.0f %10.0f %10.0f %10.0f" label
          (ns (int_of_float l.Gunfu.Metrics.l_mean))
          (ns l.Gunfu.Metrics.l_p50) (ns l.Gunfu.Metrics.l_p99)
          (ns l.Gunfu.Metrics.l_max)
  in
  let rtc =
    let worker, program, source = nat_env () in
    measure worker program Rtc_model source
  in
  let batch =
    let worker, program, source = nat_env () in
    ignore (Gunfu.Batch_rtc.run worker program (source ~count:warmup_packets));
    Gunfu.Batch_rtc.run worker program (source ~count:default_packets)
  in
  let il =
    let worker, program, source = nat_env () in
    measure worker program (Interleaved 16) source
  in
  show "per-packet RTC" rtc;
  show "RTC + batched prefetch" batch;
  show "interleaved streams (16)" il;
  row "(interleaving trades per-packet latency for throughput: a packet is held";
  row " across task switches; batching adds whole-batch queueing - the SLA concern";
  row " §II-C raises about adaptive batching)"

let a9 () =
  header "A9: scheduler policy - round-robin vs ready-first (UPF, 131k sessions)";
  row "%-8s %14s %14s" "tasks" "round-robin" "ready-first";
  List.iter
    (fun n ->
      let run policy =
        let worker, program, source = upf_env () in
        let go count = Gunfu.Scheduler.run ~policy worker program ~n_tasks:n (source ~count) in
        ignore (go warmup_packets);
        go default_packets
      in
      let rr = run Gunfu.Scheduler.Round_robin in
      let rf = run Gunfu.Scheduler.Ready_first in
      row "%-8d %10.2f Mpps %10.2f Mpps" n (Gunfu.Metrics.mpps rr) (Gunfu.Metrics.mpps rf))
    [ 4; 8; 16; 32 ];
  row "(ready-first helps at low task counts where round-robin wastes visits on";
  row " still-in-flight tasks; at 16+ tasks fills have landed by revisit anyway)"

let a10 () =
  header "A10: UPF uplink (decap) vs downlink (match+encap), 131k sessions";
  let ran_ip = Netcore.Ipv4.addr_of_string "10.200.1.1" in
  let upf_ip = Netcore.Ipv4.addr_of_string "10.200.0.1" in
  let build_uplink () =
    let worker = Gunfu.Worker.create ~id:0 () in
    let layout = Gunfu.Worker.layout worker in
    let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions:131072 ~n_pdrs:16 () in
    let pool = Netcore.Packet.Pool.create layout ~count:1024 in
    let upf =
      Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:16 ()
    in
    Nfs.Upf.populate upf;
    let source ~count =
      Gunfu.Workload.limited count (fun () ->
          let si, pkt = Traffic.Mgw.next_uplink mgw ~ran_ip ~upf_ip in
          Netcore.Packet.Pool.assign pool pkt;
          { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = si })
    in
    (worker, Nfs.Upf.uplink_program upf, source)
  in
  let show label (worker, program, source) model =
    let r = measure worker program model source in
    row "%-28s %10.2f Mpps  cyc/pkt %8.1f" label (Gunfu.Metrics.mpps r)
      (Gunfu.Metrics.cycles_per_packet r)
  in
  show "downlink RTC" (upf_env ()) Rtc_model;
  show "downlink IL-16" (upf_env ()) (Interleaved 16);
  show "uplink RTC" (build_uplink ()) Rtc_model;
  show "uplink IL-16" (build_uplink ()) (Interleaved 16);
  row "(uplink is lighter - one cuckoo match + decap, no PDR tree walk - so its";
  row " RTC/interleaved gap is smaller)"

let run () =
  a1 ();
  a2 ();
  a3 ();
  a4 ();
  a5 ();
  a6 ();
  a7 ();
  a8 ();
  a9 ();
  a10 ()
