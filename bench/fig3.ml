(* Figure 3 (EXP B): impact of state complexity — per-message cost of the
   state-intensive messages in UE initial registration under RTC. The AMF's
   per-UE context exceeds 20 cache lines; each message touches a different
   slice, and state access dominates processing time. *)

open Bench_common

let run () =
  header "Fig 3: AMF initial-registration messages under RTC - state complexity";
  row "%-26s %10s %10s %9s %9s %9s %10s %8s" "message" "Kmsg/s" "cyc/msg" "L1m/m" "L2m/m"
    "LLCm/m" "state-time" "lines";
  List.iter
    (fun msg ->
      let worker, program, amf, source = amf_env ~only_msg:msg () in
      let r = measure ~packets:20_000 worker program Rtc_model source in
      record_metrics ~fig:"fig3" ~title:"AMF state complexity under RTC"
        ~series:(Traffic.Mgw.amf_msg_name msg)
        ~x:(float_of_int (Gunfu.Workload.amf_msg_code msg))
        (Telemetry.Baseline.metrics_of_run r
        @ [ ("lines", float_of_int (Nfs.Amf.lines_per_message amf msg)) ]);
      row "%-26s %10.0f %10.1f %9.2f %9.2f %9.2f %9.0f%% %8d"
        (Traffic.Mgw.amf_msg_name msg)
        (Gunfu.Metrics.mpps r *. 1000.0)
        (Gunfu.Metrics.cycles_per_packet r)
        (Gunfu.Metrics.l1_misses_per_packet r)
        (Gunfu.Metrics.l2_misses_per_packet r)
        (Gunfu.Metrics.llc_misses_per_packet r)
        (100.0
        *. Gunfu.Metrics.state_access_share r
             [ Gunfu.Sref.Per_flow; Gunfu.Sref.Match_state ])
        (Nfs.Amf.lines_per_message amf msg))
    Traffic.Mgw.all_amf_msgs;
  row "expected shape: misses/msg track the lines each message touches; state access";
  row "dominates the heavier messages (paper Fig 3)"
