(* Shared builders and table printing for the figure-regeneration harness.

   Every experiment constructs a fresh worker (own caches / address space),
   populates the NF under test with the paper's workload, runs a warmup
   slice to reach steady state, then measures a fixed packet count. *)

open Gunfu

let default_packets = 50_000
let warmup_packets = 5_000

(* --specialize: run every figure through the compile-and-specialize hot
   path (fused action closures, dense FSM dispatch) and feed sources from
   a zero-alloc packet arena. Simulated metrics are byte-identical either
   way — combine with --check-baseline to prove it — only host wall-clock
   changes. *)
let specialize = ref false

(* Applied to every program an env builder compiles. *)
let prep program =
  if !specialize then Specialize.install program;
  program

(* Fresh per env: sized well beyond any executor's in-flight packet count
   (max is the scheduler at 16 tasks + 64 stashed items). *)
let arena () = if !specialize then Some (Netcore.Packet.Arena.create ()) else None

type model = Rtc_model | Interleaved of int

let model_name = function
  | Rtc_model -> "RTC"
  | Interleaved n -> Printf.sprintf "IL-%d" n

(* Run [source] under [model] on [worker], measuring only after warmup. *)
let measure ?(warmup = warmup_packets) ?(packets = default_packets) worker program model
    (mk_source : count:int -> Workload.source) =
  let run count =
    match model with
    | Rtc_model -> Rtc.run worker program (mk_source ~count)
    | Interleaved n -> Scheduler.run worker program ~n_tasks:n (mk_source ~count)
  in
  ignore (run warmup);
  run packets

(* ----- builders ----- *)

let nat_env ?(n_flows = 131072) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen =
    Traffic.Flowgen.create ~seed:1 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows () in
  Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
  let program = prep (Nfs.Nat.program nat) in
  let arena = arena () in
  (worker, program, fun ~count -> Workload.of_flowgen ?arena gen ~pool ~count)

let upf_env ?(n_sessions = 131072) ?(n_pdrs = 16) ?(wire_len = 128) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions ~n_pdrs ~wire_len () in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let upf =
    Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs ()
  in
  Nfs.Upf.populate upf;
  let program = prep (Nfs.Upf.program upf) in
  let arena = arena () in
  (worker, program, fun ~count -> Workload.of_mgw_downlink ?arena mgw ~pool ~count)

let amf_env ?(n_ues = 131072) ?(packed = false) ?only_msg () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Mgw.amf_create ~seed:3 ~n_ues () in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let amf = Nfs.Amf.create layout ~name:"amf" ~packed ~n_ues () in
  Nfs.Amf.populate amf;
  let program = prep (Nfs.Amf.program amf) in
  let arena = arena () in
  let source ~count =
    match only_msg with
    | None -> Workload.of_amf ?arena gen ~pool ~count
    | Some msg ->
        (* Homogeneous stream of one message type across random UEs — used
           to attribute cost per message (Fig 3). *)
        let rng = Memsim.Rng.create 17 in
        Workload.limited count (fun () ->
            let ue = Memsim.Rng.int rng n_ues in
            let pkt = Workload.amf_packet ?arena ~ue ~msg () in
            Netcore.Packet.Pool.assign pool pkt;
            {
              Workload.packet = Some pkt;
              aux = Workload.amf_msg_code msg;
              flow_hint = ue;
            })
  in
  (worker, program, amf, source)

let sfc_env ?(n_flows = 131072) ?(length = 6) ?(packed = false)
    ?(opts = Gunfu.Compiler.default_opts) ?(size_model = Traffic.Flowgen.Fixed 128) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Flowgen.create ~seed:4 ~n_flows ~size_model () in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let sfc = Nfs.Sfc.create layout ~length ~packed ~n_flows () in
  Nfs.Sfc.populate sfc (Traffic.Flowgen.flows gen);
  let program = prep (Nfs.Sfc.program ~opts sfc) in
  let arena = arena () in
  (worker, program, fun ~count -> Workload.of_flowgen ?arena gen ~pool ~count)

(* ----- machine-readable baseline ----- *)

(* Global collector: each figure records its key series alongside the
   printed table, and main.ml writes the aggregate as BENCH_<pr>.json
   (schema gunfu-bench-baseline/1) for later PRs to diff against. *)
let baseline = Telemetry.Baseline.collector ()

let record ~fig ~title ~series ~x r =
  Telemetry.Baseline.record_run baseline ~fig ~title ~series ~x r

let record_metrics ~fig ~title ~series ~x metrics =
  Telemetry.Baseline.record baseline ~fig ~title ~series ~x metrics

let write_baseline ?(collector = baseline) ~pr ~path () =
  let b = Telemetry.Baseline.to_baseline collector ~pr in
  if b.Telemetry.Baseline.figures <> [] then begin
    let oc = open_out path in
    output_string oc (Telemetry.Baseline.to_string b);
    close_out oc;
    Printf.printf "\nwrote %s: %d figures (schema %s)\n%!" path
      (List.length b.Telemetry.Baseline.figures)
      Telemetry.Baseline.schema_id
  end

(* ----- output ----- *)

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

let pp_run label r =
  row "%-34s %8.2f Mpps %8.2f Gbps  ipc=%.2f  cyc/pkt=%8.1f  L1m/p=%.2f L2m/p=%.2f LLCm/p=%.2f"
    label (Metrics.mpps r) (Metrics.gbps r) (Metrics.ipc r) (Metrics.cycles_per_packet r)
    (Metrics.l1_misses_per_packet r) (Metrics.l2_misses_per_packet r)
    (Metrics.llc_misses_per_packet r)
