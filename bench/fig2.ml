(* Figure 2 (EXP A): impact of growing concurrency on per-packet RTC UPF.
   Sweeps the number of PFCP sessions and PDRs per session; throughput
   degrades as flow tables and per-flow state fall out of L1/L2. *)

open Bench_common

let session_counts = [ 1_024; 8_192; 32_768; 131_072 ]
let pdr_counts = [ 2; 16; 128 ]

let run () =
  header "Fig 2: UPF under per-packet RTC - concurrency vs throughput";
  row "%-10s %-8s %10s %12s %10s %10s" "sessions" "pdrs" "Mpps" "cyc/pkt" "L1m/pkt" "LLCm/pkt";
  List.iter
    (fun n_sessions ->
      List.iter
        (fun n_pdrs ->
          let worker, program, source = upf_env ~n_sessions ~n_pdrs () in
          let r = measure worker program Rtc_model source in
          record ~fig:"fig2" ~title:"UPF concurrency under RTC"
            ~series:(Printf.sprintf "pdrs-%d" n_pdrs)
            ~x:(float_of_int n_sessions) r;
          row "%-10d %-8d %10.2f %12.1f %10.2f %10.2f" n_sessions n_pdrs
            (Gunfu.Metrics.mpps r)
            (Gunfu.Metrics.cycles_per_packet r)
            (Gunfu.Metrics.l1_misses_per_packet r)
            (Gunfu.Metrics.llc_misses_per_packet r))
        pdr_counts)
    session_counts;
  row "expected shape: throughput falls as sessions and PDRs grow (paper Fig 2)"
