(* SCR vs RSS skew scale-out (fig14/15 companion): one GLOBAL arrival
   stream per Zipf skew point, driven through RSS owner-sharding and
   through State-Compute Replication on identical 16-core platforms over
   a million-flow monitor.

   Unlike fig14/15 — which give every core an independent generator and
   therefore cannot exhibit skew collapse — both passes here split the
   same stream: RSS by flow ownership ({!Gunfu.Platform.Recovery.owner}),
   SCR by seeded spray with no flow affinity. Under heavy tails the hot
   flows' owners receive most of the stream, their cycles dominate
   {!Gunfu.Metrics.merge_parallel}'s makespan, and RSS throughput
   collapses; SCR stays balanced and pays only the update-stream apply
   cost.

   Records into its own collector (not {!Bench_common.baseline}), written
   by main.ml as BENCH_PR9.json — the default figure run and its
   BENCH_PR4.json stay untouched. *)

open Gunfu

let alphas = [ 0.0; 0.9; 1.2; 1.5 ]
let cores = 16
let n_flows = 1_000_000
let packets = 48_000

let baseline = Telemetry.Baseline.collector ()

let record_metrics ~series ~x metrics =
  Telemetry.Baseline.record baseline ~fig:"scr"
    ~title:"SCR vs RSS under Zipf skew (16 cores, 1M-flow monitor)" ~series ~x
    metrics

(* A monitor over [flows], sized for them, as one core's working set. *)
let monitor layout ~name flows =
  let mon = Nfs.Monitor.create layout ~name ~n_flows:(Array.length flows) () in
  Nfs.Monitor.populate mon flows;
  mon

(* RSS cores own disjoint shards: state sharding is RSS's genuine
   advantage, so each core's tables hold only its owned slice. *)
let rss_core flows ~core worker =
  let layout = Worker.layout worker in
  let owned =
    Array.to_list flows
    |> List.filteri (fun i _ -> Platform.Recovery.owner ~cores i = core)
    |> Array.of_list
  in
  let mon = monitor layout ~name:(Printf.sprintf "nm%d" core) owned in
  {
    Scaleout.Scr_platform.rss_worker = worker;
    rss_program = Nfs.Monitor.program mon;
    rss_pool = Netcore.Packet.Pool.create layout ~count:1024;
  }

(* SCR replicas hold the full universe; updates are single-flow absolute
   monitor snapshots applied through the Migration upsert surface. *)
let scr_replica flows ~core worker =
  let layout = Worker.layout worker in
  let mon = monitor layout ~name:(Printf.sprintf "nm%d" core) flows in
  {
    Scaleout.Scr.sc_worker = worker;
    sc_program = Nfs.Monitor.program mon;
    sc_pool = Netcore.Packet.Pool.create layout ~count:1024;
    sc_export =
      (fun i -> [ ("nm", Nfs.Migration.export_monitor mon [ flows.(i) ]) ]);
    sc_apply =
      (fun r ->
        List.iter
          (fun (_, snap) -> ignore (Nfs.Migration.apply_monitor mon snap : int))
          r.Scaleout.Update_log.u_payload);
    sc_counters = (fun () -> []);
    sc_flow_digest = (fun _ _ -> ());
  }

(* Build each platform's cores once and reuse them across alpha points
   (runs are snapshot deltas); only the offered stream changes. *)
let memo build =
  let tbl = Hashtbl.create cores in
  fun ~core worker ->
    match Hashtbl.find_opt tbl core with
    | Some v -> v
    | None ->
        let v = build ~core worker in
        Hashtbl.add tbl core v;
        v

let trace gen =
  let worker = Worker.create ~id:99 () in
  let pool = Netcore.Packet.Pool.create (Worker.layout worker) ~count:1024 in
  let src = Workload.of_flowgen gen ~pool ~count:packets in
  let rec go acc =
    match src () with Some it -> go (it :: acc) | None -> List.rev acc
  in
  go []

let pp_imb = function
  | Some (offered, served) -> Printf.sprintf "%.2f/%.2f" offered served
  | None -> "-"

let run () =
  Bench_common.header
    (Printf.sprintf
       "SCR vs RSS: one global stream, %d cores, %dk-flow monitor, Zipf sweep"
       cores (n_flows / 1000));
  Bench_common.row "%-8s %10s %10s %8s  %-12s %-12s" "alpha" "rss-gbps"
    "scr-gbps" "scr/rss" "rss-imb" "scr-imb";
  let sweep = Traffic.Flowgen.alpha_sweep ~seed:42 ~n_flows alphas in
  let flows = Traffic.Flowgen.flows (snd (List.hd sweep)) in
  let rss_plat = Platform.create ~cores () in
  let scr_plat = Platform.create ~cores () in
  let rss_build = memo (rss_core flows) in
  let scr_build = memo (scr_replica flows) in
  let ratios =
    List.map
      (fun (alpha, gen) ->
        let items = trace gen in
        let _, rss = Scaleout.Scr_platform.run_rss ~plat:rss_plat ~build:rss_build items in
        let res =
          Scaleout.Scr_platform.run_scr ~digest:false
            ~plat:scr_plat ~build:scr_build
            ~universe:n_flows items
        in
        let scr = res.Scaleout.Scr.sr_merged in
        let rg = Metrics.gbps rss and sg = Metrics.gbps scr in
        let ratio = sg /. rg in
        let imb r =
          match r.Metrics.imbalance with Some (o, s) -> [ ("imb_offered", o); ("imb_served", s) ] | None -> []
        in
        record_metrics ~series:"rss" ~x:alpha
          ([ ("gbps", rg); ("mpps", Metrics.mpps rss) ] @ imb rss);
        record_metrics ~series:"scr" ~x:alpha
          ([ ("gbps", sg); ("mpps", Metrics.mpps scr) ] @ imb scr);
        record_metrics ~series:"scr-stream" ~x:alpha
          [
            ("records", float_of_int res.Scaleout.Scr.sr_stats.Scaleout.Scr.st_records);
            ("applied", float_of_int res.Scaleout.Scr.sr_stats.Scaleout.Scr.st_applied);
            ("coalesced", float_of_int res.Scaleout.Scr.sr_stats.Scaleout.Scr.st_coalesced);
            ("max_lag", float_of_int res.Scaleout.Scr.sr_stats.Scaleout.Scr.st_max_lag);
          ];
        Bench_common.row "%-8.1f %10.2f %10.2f %8.2f  %-12s %-12s" alpha rg sg
          ratio
          (pp_imb rss.Metrics.imbalance)
          (pp_imb scr.Metrics.imbalance);
        (alpha, ratio))
      sweep
  in
  let ok =
    List.for_all
      (fun (alpha, r) -> if alpha >= 1.2 then r >= 2.0 else alpha > 0.0 || r >= 0.9)
      ratios
  in
  Bench_common.row
    "acceptance (scr >= 2x rss at alpha >= 1.2, >= 0.9x at uniform): %s"
    (if ok then "ok" else "FAIL");
  Bench_common.row
    "expected shape: RSS collapses onto the hot flows' owners as alpha grows;";
  Bench_common.row
    "SCR stays near-balanced, paying only the update-stream apply cost"
