(* Figure 12: interleaved execution on the granularly decomposed AMF with
   2^17 UEs — registration-message throughput vs the RTC model, the
   per-message cache metrics, and the extra gain from data packing. *)

open Bench_common

let run () =
  header "Fig 12: AMF initial registration, 2^17 UEs";
  let run_case ~packed model =
    let worker, program, amf, source = amf_env ~packed () in
    (measure ~packets:30_000 worker program model source, amf)
  in
  let rtc, _ = run_case ~packed:false Rtc_model in
  let il, _ = run_case ~packed:false (Interleaved 16) in
  let il_dp, amf_dp = run_case ~packed:true (Interleaved 16) in
  let line label r =
    row "%-24s %8.3f Mmsg/s %8.2fx  L1m/m=%6.2f L2m/m=%6.2f LLCm/m=%6.2f ipc=%.2f" label
      (Gunfu.Metrics.mpps r)
      (Gunfu.Metrics.mpps r /. Gunfu.Metrics.mpps rtc)
      (Gunfu.Metrics.l1_misses_per_packet r)
      (Gunfu.Metrics.l2_misses_per_packet r)
      (Gunfu.Metrics.llc_misses_per_packet r)
      (Gunfu.Metrics.ipc r)
  in
  line "RTC (L25GC-style)" rtc;
  line "GuNFu IL-16" il;
  line "GuNFu IL-16 + DP" il_dp;
  List.iter
    (fun (series, r) ->
      record ~fig:"fig12" ~title:"AMF interleaved + data packing" ~series ~x:0.0 r)
    [ ("RTC", rtc); ("IL-16", il); ("IL-16+DP", il_dp) ];
  row "interleaving improvement: +%.0f%% (paper: ~60%%)"
    ((Gunfu.Metrics.mpps il /. Gunfu.Metrics.mpps rtc -. 1.0) *. 100.0);
  row "data packing adds:        +%.1f%% (paper: ~5%%)"
    ((Gunfu.Metrics.mpps il_dp /. Gunfu.Metrics.mpps il -. 1.0) *. 100.0);
  row "";
  row "per-message UE-context lines (sequential vs packed layout):";
  let layout = Memsim.Layout.create () in
  let amf_u = Nfs.Amf.create layout ~name:"u" ~packed:false ~n_ues:8 () in
  List.iter
    (fun m ->
      row "  %-26s %3d -> %3d"
        (Traffic.Mgw.amf_msg_name m)
        (Nfs.Amf.lines_per_message amf_u m)
        (Nfs.Amf.lines_per_message amf_dp m))
    Traffic.Mgw.all_amf_msgs
