(* Figure 15: UPF downlink with 130k PFCP sessions (16 PDRs each) across
   cores and packet sizes, against the L25GC-style RTC reference. *)

open Bench_common

let cores_list = [ 1; 2; 4; 6; 8; 10; 12; 16 ]
let packets_per_core = 20_000
let n_sessions_total = 131_072

type size_case = Fixed of int | Caida

let size_cases = [ Fixed 64; Fixed 512; Fixed 1024; Fixed 1512; Caida ]

(* CAIDA-sized downlink: sample wire lengths from the CAIDA mix. *)
let caida_table = lazy (
  match Traffic.Caida.size_model with
  | Traffic.Flowgen.Mix weighted ->
      let total = List.fold_left (fun a (_, w) -> a + w) 0 weighted in
      let t = Array.make total 0 in
      let pos = ref 0 in
      List.iter (fun (sz, w) -> for _ = 1 to w do t.(!pos) <- sz; incr pos done) weighted;
      t
  | Traffic.Flowgen.Fixed n -> [| n |])

let build_core ~size ~cores worker core =
  let layout = Gunfu.Worker.layout worker in
  let n_sessions = max 1024 (n_sessions_total / cores) in
  let wire_len = match size with Fixed n -> n | Caida -> 128 in
  let mgw = Traffic.Mgw.create ~seed:(60 + core) ~n_sessions ~n_pdrs:16 ~wire_len () in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let upf =
    Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:16 ()
  in
  Nfs.Upf.populate upf;
  let rng = Memsim.Rng.create (80 + core) in
  let source =
    match size with
    | Fixed _ -> Gunfu.Workload.of_mgw_downlink mgw ~pool ~count:packets_per_core
    | Caida ->
        (* Same session workload, CAIDA packet-size mix. *)
        Gunfu.Workload.limited packets_per_core (fun () ->
            let si, _, pkt = Traffic.Mgw.next_downlink mgw in
            let table = Lazy.force caida_table in
            pkt.Netcore.Packet.wire_len <-
              max pkt.Netcore.Packet.wire_len
                table.(Memsim.Rng.int rng (Array.length table));
            Netcore.Packet.Pool.assign pool pkt;
            { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = si })
  in
  (Nfs.Upf.program upf, source)

let gbps ~cores ~size model =
  let platform = Gunfu.Platform.create ~cores () in
  let setup w core = build_core ~size ~cores w core in
  let runs =
    match model with
    | Rtc_model -> Gunfu.Platform.run_rtc platform ~setup
    | Interleaved n -> Gunfu.Platform.run_interleaved platform ~n_tasks:n ~setup
  in
  let per_core =
    List.fold_left (fun acc r -> acc +. Gunfu.Metrics.gbps r) 0.0 runs
    /. float_of_int cores
  in
  Float.min 100.0 (per_core *. float_of_int cores)

let size_name = function Fixed n -> string_of_int n | Caida -> "CAIDA"

let run () =
  header "Fig 15: UPF, 130k PFCP sessions x 16 PDRs - multicore scalability (Gbps)";
  row "%-8s %8s %8s %8s %8s %8s" "cores" "64B" "512B" "1024B" "1512B" "CAIDA";
  List.iter
    (fun cores ->
      let cells =
        List.map
          (fun size ->
            let v = gbps ~cores ~size (Interleaved 16) in
            record_metrics ~fig:"fig15" ~title:"UPF multicore scalability"
              ~series:(size_name size) ~x:(float_of_int cores)
              [ ("gbps", v) ];
            v)
          size_cases
      in
      match cells with
      | [ a; b; c; d; e ] -> row "%-8d %8.1f %8.1f %8.1f %8.1f %8.1f" cores a b c d e
      | _ -> assert false)
    cores_list;
  let ref_cells =
    List.map
      (fun size ->
        let v = gbps ~cores:10 ~size Rtc_model in
        record_metrics ~fig:"fig15" ~title:"UPF multicore scalability"
          ~series:(Printf.sprintf "RTC@10-%s" (size_name size))
          ~x:10.0 [ ("gbps", v) ];
        v)
      size_cases
  in
  (match ref_cells with
  | [ a; b; c; d; e ] -> row "%-8s %8.1f %8.1f %8.1f %8.1f %8.1f" "RTC@10" a b c d e
  | _ -> assert false);
  row "expected shape: line rate reached with few cores for large packets, more";
  row "for 64B; the RTC reference needs far more cores (paper Fig 15)"
