(* Figure 13: SFCs of length 2-6 — the interleaved execution model, data
   packing (DP), and redundant-matching removal (MR) stacked on each other,
   against the RTC baseline; plus the IPC panel. *)

open Bench_common

let lengths = [ 2; 3; 4; 5; 6 ]

let case ~length ~packed ~mr model =
  let opts = { Gunfu.Compiler.default_opts with Gunfu.Compiler.match_removal = mr } in
  let worker, program, source = sfc_env ~length ~packed ~opts () in
  measure ~packets:30_000 worker program model source

let run () =
  header "Fig 13(a): SFC throughput vs chain length (Mpps)";
  row "%-8s %10s %10s %10s %12s" "length" "RTC" "IL-16" "IL-16+DP" "IL-16+DP+MR";
  let results =
    List.map
      (fun length ->
        let rtc = case ~length ~packed:false ~mr:false Rtc_model in
        let il = case ~length ~packed:false ~mr:false (Interleaved 16) in
        let dp = case ~length ~packed:true ~mr:false (Interleaved 16) in
        let mr = case ~length ~packed:true ~mr:true (Interleaved 16) in
        List.iter
          (fun (series, r) ->
            record ~fig:"fig13" ~title:"SFC compiler optimisations" ~series
              ~x:(float_of_int length) r)
          [ ("RTC", rtc); ("IL-16", il); ("IL-16+DP", dp); ("IL-16+DP+MR", mr) ];
        row "%-8d %10.2f %10.2f %10.2f %12.2f" length (Gunfu.Metrics.mpps rtc)
          (Gunfu.Metrics.mpps il) (Gunfu.Metrics.mpps dp) (Gunfu.Metrics.mpps mr);
        (length, rtc, il, dp, mr))
      lengths
  in
  header "Fig 13(b): speedups over RTC";
  row "%-8s %10s %10s %12s" "length" "IL-16" "IL-16+DP" "IL-16+DP+MR";
  List.iter
    (fun (length, rtc, il, dp, mr) ->
      let s r = Gunfu.Metrics.mpps r /. Gunfu.Metrics.mpps rtc in
      row "%-8d %9.2fx %9.2fx %11.2fx" length (s il) (s dp) (s mr))
    results;
  header "Fig 13(c): IPC";
  row "%-8s %10s %10s %10s %12s" "length" "RTC" "IL-16" "IL-16+DP" "IL-16+DP+MR";
  List.iter
    (fun (length, rtc, il, dp, mr) ->
      row "%-8d %10.2f %10.2f %10.2f %12.2f" length (Gunfu.Metrics.ipc rtc)
        (Gunfu.Metrics.ipc il) (Gunfu.Metrics.ipc dp) (Gunfu.Metrics.ipc mr))
    results;
  row "expected shape: gains grow with chain length; MR is the largest single";
  row "optimisation at length 6 (paper Fig 13)"
