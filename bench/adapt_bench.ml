(* Adaptive vs static over the ROADMAP's churn scenarios (PR10
   companion): three stress scenarios with deliberately different static
   optima —

   - [pfcp-storm]: a small, cache-resident UPF session population under a
     PFCP setup/teardown storm (real encoded N4 exchanges between data
     packets). State fits the private caches, so an interleave's switch
     overhead buys nothing: run to completion wins.
   - [churn]: a dynamic NAT whose flow universe is 4x its cuckoo capacity
     (the learner's Evict_lru policy churns entries) with idle-timeout
     sweeps at pull boundaries. The working set is DRAM-bound: the widest
     interleave wins.
   - [overload]: a DRAM-bound monitor under a saturating fault plan (one
     packet in ten corrupted, raised or MSHR-stalled). Injected stalls
     starve the round-robin scan; ready-first wins.

   Every scenario runs under every static configuration and under the
   closed-loop controller starting from the same neutral default. The
   headline the committed BENCH_PR10.json pins is the aggregate row —
   total packets over total cycles across the sweep: the controller, by
   approaching each scenario's optimum within a few epochs, beats every
   static configuration that must live with one shape everywhere.

   Records into its own collector (not {!Bench_common.baseline}), written
   by main.ml as BENCH_PR10.json. *)

open Gunfu

let packets = 24_000
let epoch = 512

let baseline = Telemetry.Baseline.collector ()

let record ~series ~x metrics =
  Telemetry.Baseline.record baseline ~fig:"adapt"
    ~title:"adaptive vs static across churn scenarios" ~series ~x metrics

(* ----- scenarios ----- *)

(* S1: PFCP session storm. 384 sessions (cache-resident) admitted over
   real PFCP into a capacity well above the churn's bump-arena burn rate;
   the Mgw churn generator tears sessions down and re-establishes them
   between data packets, and traffic racing a teardown takes the
   session-miss drop path. *)
let pfcp_storm () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let universe = 384 in
  let mgw = Traffic.Mgw.create ~seed:21 ~n_sessions:universe ~n_pdrs:4 () in
  let upf = Nfs.Upf.create_empty layout ~name:"upf" ~capacity:8192 ~n_pdrs:4 () in
  let smf = Nfs.Smf.create () in
  let ran_ip = upf.Nfs.Upf.ran_addrs.(0) in
  let established : (int, int64) Hashtbl.t = Hashtbl.create universe in
  let setup i =
    let s = Traffic.Mgw.session mgw i in
    match
      Nfs.Smf.establish smf upf ~ue_ip:s.Traffic.Mgw.ue_ip ~teid:s.Traffic.Mgw.teid
        ~ran_ip
    with
    | Ok up_seid -> Hashtbl.replace established i up_seid
    | Error _ -> ()
  in
  let teardown i =
    match Hashtbl.find_opt established i with
    | Some up_seid ->
        ignore (Nfs.Smf.delete smf upf ~up_seid : int);
        Hashtbl.remove established i
    | None -> ()
  in
  for i = 0 to universe - 1 do
    setup i
  done;
  let churn = Traffic.Mgw.churn ~seed:22 ~rate_ppm:30_000 mgw in
  let remaining = ref packets in
  let rec source () =
    if !remaining = 0 then None
    else
      match Traffic.Mgw.churn_next churn with
      | Traffic.Mgw.Churn_teardown i ->
          teardown i;
          source ()
      | Traffic.Mgw.Churn_setup i ->
          setup i;
          source ()
      | Traffic.Mgw.Churn_data (si, _pdr, pkt) ->
          decr remaining;
          Some { Workload.packet = Some pkt; aux = 0; flow_hint = si }
  in
  {
    Adaptive.Driver.pl_worker = worker;
    pl_program = Nfs.Upf.program upf;
    pl_source = source;
    pl_plane = Fault.create ();
    pl_scr = None;
  }

(* S2: flow-table churn near cuckoo capacity. The dynamic NAT's table
   holds 64k mappings against a 256k-flow universe; unknown flows take
   the learner's miss path (Evict_lru recycles the stalest resident) and
   an idle-timeout sweep runs between pulls every [sweep] packets. *)
let nat_churn () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let capacity = 65_536 and universe = 262_144 and sweep = 4_096 in
  let gen =
    Traffic.Flowgen.create ~seed:31 ~n_flows:universe
      ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let nat =
    Nfs.Nat.create layout ~name:"nat" ~overflow:Structures.Cuckoo.Evict_lru
      ~n_flows:capacity ()
  in
  Nfs.Nat.populate nat (Array.sub (Traffic.Flowgen.flows gen) 0 capacity);
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let base = Workload.of_flowgen gen ~pool ~count:packets in
  let ctx = Worker.ctx worker in
  let pulls = ref 0 in
  let source () =
    incr pulls;
    if !pulls mod sweep = 0 then
      ignore (Nfs.Nat.expire nat ~now:ctx.Exec_ctx.clock ~idle_cycles:200_000 : int);
    base ()
  in
  {
    Adaptive.Driver.pl_worker = worker;
    pl_program = Nfs.Nat.dynamic_program nat;
    pl_source = source;
    pl_plane = Fault.create ();
    pl_scr = None;
  }

(* S3: faulted overload. A DRAM-bound per-flow monitor under a saturating
   deterministic fault plan — corruptions, raises and MSHR-starvation
   stalls at 100,000 ppm, armed at the pull index. *)
let overload () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let n_flows = 131_072 in
  let gen =
    Traffic.Flowgen.create ~seed:41 ~n_flows
      ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let mon = Nfs.Monitor.create layout ~name:"mon" ~n_flows () in
  Nfs.Monitor.populate mon (Traffic.Flowgen.flows gen);
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let plane = Fault.create () in
  let plan = Check.Faultgen.create ~rate_ppm:100_000 ~seed:42 () in
  let source =
    Check.Faultgen.instrument plan ~plane (Workload.of_flowgen gen ~pool ~count:packets)
  in
  {
    Adaptive.Driver.pl_worker = worker;
    pl_program = Nfs.Monitor.program mon;
    pl_source = source;
    pl_plane = plane;
    pl_scr = None;
  }

let scenarios =
  [ ("pfcp-storm", pfcp_storm); ("churn", nat_churn); ("overload", overload) ]

(* ----- configurations ----- *)

let statics =
  [
    Adaptive.Config.Rtc;
    Adaptive.Config.Batch { batch = 32 };
    Adaptive.Config.Il { policy = Scheduler.Round_robin; n_tasks = 4; distance = 1 };
    Adaptive.Config.Il { policy = Scheduler.Round_robin; n_tasks = 8; distance = 1 };
    Adaptive.Config.Il { policy = Scheduler.Round_robin; n_tasks = 16; distance = 1 };
    Adaptive.Config.Il { policy = Scheduler.Ready_first; n_tasks = 8; distance = 1 };
    Adaptive.Config.Il { policy = Scheduler.Ready_first; n_tasks = 16; distance = 1 };
  ]

let run_static (plant : Adaptive.Driver.plant) (cfg : Adaptive.Config.t) =
  let label = Adaptive.Config.label cfg in
  match cfg with
  | Adaptive.Config.Rtc ->
      Rtc.run ~label ~fault:plant.Adaptive.Driver.pl_plane
        plant.Adaptive.Driver.pl_worker plant.Adaptive.Driver.pl_program
        plant.Adaptive.Driver.pl_source
  | Adaptive.Config.Batch { batch } ->
      Batch_rtc.run ~label ~batch ~fault:plant.Adaptive.Driver.pl_plane
        plant.Adaptive.Driver.pl_worker plant.Adaptive.Driver.pl_program
        plant.Adaptive.Driver.pl_source
  | Adaptive.Config.Il { policy; n_tasks; distance } ->
      Scheduler.run ~label ~policy ~prefetch_distance:distance
        ~fault:plant.Adaptive.Driver.pl_plane plant.Adaptive.Driver.pl_worker
        plant.Adaptive.Driver.pl_program ~n_tasks plant.Adaptive.Driver.pl_source
  | Adaptive.Config.Scr _ -> assert false

(* Bench-tuned marks: with long (epoch-sized) windows over stable
   scenarios a single matching window is confirmation enough, and the
   mem deadband is shifted to where these workloads' attribution actually
   sits (compute-bound phases read 0.06-0.17, batched rtc reads
   0.28-0.36, DRAM-bound phases 0.45+). *)
let tuned =
  {
    Adaptive.Policy.default_params with
    Adaptive.Policy.confirm = 1;
    lo_mem = 0.20;
    hi_mem = 0.45;
  }

let run_adaptive plant =
  let policy =
    Adaptive.Policy.create ~params:tuned ~initial:Adaptive.Config.default ()
  in
  Adaptive.Driver.run ~epoch ~policy plant

let kpps ~freq_ghz ~pkts ~cycles =
  if cycles <= 0 then 0.0
  else float_of_int pkts /. (float_of_int cycles /. (freq_ghz *. 1e9)) /. 1e3

let run () =
  Printf.printf "\n=== adapt: adaptive vs static across churn scenarios ===\n";
  Printf.printf "(%d packets/scenario, epoch %d; aggregate = total packets / total cycles)\n\n"
    packets epoch;
  let labels =
    List.map Adaptive.Config.label statics @ [ "adaptive" ]
  in
  Printf.printf "%-12s" "scenario";
  List.iter (fun l -> Printf.printf "%12s" l) labels;
  Printf.printf "   (kpps)\n";
  (* (label, (packets, cycles)) across scenarios, in [labels] order *)
  let totals = Hashtbl.create 8 in
  let add label pkts cycles =
    let p, c = Option.value ~default:(0, 0) (Hashtbl.find_opt totals label) in
    Hashtbl.replace totals label (p + pkts, c + cycles)
  in
  let decision_log = ref [] in
  List.iteri
    (fun si (name, build) ->
      Printf.printf "%-12s" name;
      let results =
        List.map
          (fun cfg ->
            let plant = build () in
            let r = run_static plant cfg in
            (Adaptive.Config.label cfg, r.Metrics.packets, r.Metrics.cycles))
          statics
      in
      let plant = build () in
      let oc = run_adaptive plant in
      if si = 0 then decision_log := oc.Adaptive.Driver.o_decisions;
      let freq = plant.Adaptive.Driver.pl_worker.Worker.cfg.Worker.freq_ghz in
      let results =
        results
        @ [
            ( "adaptive",
              oc.Adaptive.Driver.o_run.Metrics.packets,
              oc.Adaptive.Driver.o_run.Metrics.cycles );
          ]
      in
      List.iter
        (fun (label, pkts, cycles) ->
          let k = kpps ~freq_ghz:freq ~pkts ~cycles in
          add label pkts cycles;
          record ~series:label ~x:(float_of_int si)
            [
              ("kpps", k);
              ("packets", float_of_int pkts);
              ("cycles", float_of_int cycles);
            ];
          Printf.printf "%12.0f" k)
        results;
      Printf.printf "\n%!")
    scenarios;
  (* the aggregate row: one kpps per configuration over the whole sweep *)
  let freq = (Worker.create ~id:0 ()).Worker.cfg.Worker.freq_ghz in
  Printf.printf "%-12s" "aggregate";
  let aggregate =
    List.map
      (fun label ->
        let pkts, cycles = Hashtbl.find totals label in
        let k = kpps ~freq_ghz:freq ~pkts ~cycles in
        record ~series:label ~x:3.0
          [
            ("kpps", k);
            ("packets", float_of_int pkts);
            ("cycles", float_of_int cycles);
          ];
        Printf.printf "%12.0f" k;
        (label, k))
      labels
  in
  Printf.printf "\n\n";
  (let adaptive_k = List.assoc "adaptive" aggregate in
   let best_static =
     List.fold_left
       (fun (bl, bk) (l, k) -> if l <> "adaptive" && k > bk then (l, k) else (bl, bk))
       ("", 0.0) aggregate
   in
   Printf.printf "aggregate: adaptive %.0f kpps vs best static %s %.0f kpps (%+.1f%%)\n"
     adaptive_k (fst best_static) (snd best_static)
     (100.0 *. (adaptive_k -. snd best_static) /. snd best_static));
  Printf.printf "\ndecision log (%s):\n" (fst (List.hd scenarios));
  List.iter
    (fun d -> Format.printf "  %a@." Adaptive.Driver.pp_decision d)
    !decision_log
