(* Figure 9(b): maximum context switches per second on one core — NFTask
   (the paper's lightweight execution environment) vs kernel threads.

   Both sides are measured for real, in-process, with bechamel wall-clock
   timing:
   - NFTask: the interleaved scheduler multiplexing 16 NFTasks over a
     trivial one-action NF; switches/second = observed task switches per
     wall second of the scheduler loop.
   - pthread: OS threads (OCaml Thread, 1:1 on pthreads) forced to
     alternate with Thread.yield.

   The absolute numbers are host-dependent; the relationship — NFTask
   switching orders of magnitude cheaper than thread switching — is the
   figure's claim. *)

open Gunfu
open Bechamel
open Toolkit

let trivial_program () =
  let spec =
    Spec.module_spec_of_string
      "module: noop\ncategory: StatefulNF\ntransitions:\n- Start,packet->work\n- work,packet->End\n"
  in
  let action =
    Action.make ~base_cycles:1 ~base_instrs:1 ~name:"noop" (fun _ _ -> Event.Packet_arrival)
  in
  let inst =
    {
      Compiler.i_name = "noop";
      i_spec = spec;
      i_actions = [ ("work", action) ];
      i_bindings = [];
      i_key_kind = None;
    }
  in
  Bench_common.prep
    (Compiler.compile ~name:"noop" [ inst ]
       {
         Spec.n_name = "noop";
         n_modules = [ ("noop", "noop") ];
         n_transitions = [ { Spec.src = "noop"; event = "packet"; dst = Spec.end_state } ];
       })

let packets_per_run = 20_000

let scheduler_pass () =
  let worker = Worker.create ~id:0 () in
  let program = trivial_program () in
  let source =
    Workload.limited packets_per_run (fun () ->
        { Workload.packet = None; aux = 0; flow_hint = -1 })
  in
  Scheduler.run worker program ~n_tasks:16 source

(* Count how many NFTask switches one pass performs (deterministic). *)
let switches_per_pass = lazy (scheduler_pass ()).Metrics.switches

(* The NFTask context switch itself: advance the round-robin cursor and
   touch the next task's scheduling state (Fig 9a's struct). This is the
   whole cost — no kernel, no register file, no stack switch. *)
let switch_tasks = Array.init 16 Nftask.create

let switches_per_op = 1024

let nftask_switch_pass =
  let idx = ref 0 in
  fun () ->
    for _ = 1 to switches_per_op do
      idx := (!idx + 1) land 15;
      let task = switch_tasks.(!idx) in
      task.Nftask.p_state <-
        (match task.Nftask.p_state with
        | Nftask.P_none -> Nftask.P_issued
        | Nftask.P_issued -> Nftask.P_ready
        | Nftask.P_ready -> Nftask.P_none);
      task.Nftask.cs <- task.Nftask.cs + 1
    done

let yields_per_run = 20_000

let thread_pass () =
  let stop = ref false in
  let companion = Thread.create (fun () -> while not !stop do Thread.yield () done) () in
  for _ = 1 to yields_per_run do
    Thread.yield ()
  done;
  stop := true;
  Thread.join companion

(* ns per single execution of [f], measured by bechamel's OLS fit. *)
let time_ns name f =
  let test = Test.make ~name (Staged.stage f) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ est ] -> (
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> ns
      | _ -> Float.nan)
  | _ -> Float.nan

let run () =
  Bench_common.header "Fig 9(b): context switches per second, NFTask vs pthread";
  let switch_ns = time_ns "nftask-switch" nftask_switch_pass /. float_of_int switches_per_op in
  let nftask_rate = 1.0 /. (switch_ns *. 1e-9) in
  let thread_ns = time_ns "thread" thread_pass in
  let thread_rate = float_of_int yields_per_run /. (thread_ns *. 1e-9) in
  Bench_common.row "%-30s %12.2e switches/s  (%.1f ns/switch)"
    "NFTask (struct swap, 16 tasks)" nftask_rate switch_ns;
  Bench_common.row "%-30s %12.2e switches/s  (%.1f ns/yield)" "pthread (Thread.yield)"
    thread_rate
    (thread_ns /. float_of_int yields_per_run);
  Bench_common.row "ratio: NFTask switching is %.0fx faster (paper Fig 9: orders of magnitude)"
    (nftask_rate /. thread_rate);
  Bench_common.record_metrics ~fig:"fig9"
    ~title:"NFTask vs pthread context switches" ~series:"nftask" ~x:0.0
    [ ("switches_per_s", nftask_rate); ("ns_per_switch", switch_ns) ];
  Bench_common.record_metrics ~fig:"fig9"
    ~title:"NFTask vs pthread context switches" ~series:"pthread" ~x:0.0
    [
      ("switches_per_s", thread_rate);
      ("ns_per_switch", thread_ns /. float_of_int yields_per_run);
    ];
  (* Secondary: wall-clock rate of the full simulated scheduler loop (the
     simulator does cache bookkeeping per visit, so this is a lower bound on
     nothing — just reported for context). *)
  let sched_ns = time_ns "scheduler-pass" scheduler_pass in
  let switches = Lazy.force switches_per_pass in
  Bench_common.row "(simulator loop processes %.2e visits/s wall-clock)"
    (float_of_int switches /. (sched_ns *. 1e-9))
