(* Figure 11: granular decomposition for NAT — throughput and cache metrics
   vs the number of interleaved NFTasks, with the per-packet RTC baseline.
   NAT stands in for the small-per-flow-state family (LB, NM, FW). *)

open Bench_common

let task_counts = [ 1; 2; 4; 8; 16; 32; 64 ]

let run () =
  header "Fig 11: NAT on GuNFu - throughput and cache metrics vs NFTasks";
  row "%-8s %10s %10s %10s %10s %8s" "model" "Mpps" "speedup" "L1 m/pkt" "LLC m/pkt" "IPC";
  let baseline =
    let worker, program, source = nat_env () in
    measure worker program Rtc_model source
  in
  let show label r =
    row "%-8s %10.2f %9.2fx %10.2f %10.2f %8.2f" label (Gunfu.Metrics.mpps r)
      (Gunfu.Metrics.mpps r /. Gunfu.Metrics.mpps baseline)
      (Gunfu.Metrics.l1_misses_per_packet r)
      (Gunfu.Metrics.llc_misses_per_packet r)
      (Gunfu.Metrics.ipc r)
  in
  show "RTC" baseline;
  (* x = NFTask count; the RTC baseline sits at x = 0. *)
  record ~fig:"fig11" ~title:"NAT granular decomposition" ~series:"RTC" ~x:0.0
    baseline;
  List.iter
    (fun n ->
      let worker, program, source = nat_env () in
      let r = measure worker program (Interleaved n) source in
      record ~fig:"fig11" ~title:"NAT granular decomposition" ~series:"IL"
        ~x:(float_of_int n) r;
      show (Printf.sprintf "IL-%d" n) r)
    task_counts;
  row "expected shape: IL-1 below RTC (scheduler overhead); benefits from 4 tasks;";
  row "optimum around 8-16; decline past 32 as prefetched lines contend (paper Fig 11)"
