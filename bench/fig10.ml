(* Figure 10: single-core UPF improvement.
   (a) downlink throughput vs number of interleaved NFTasks, per PDR count,
       with the RTC baseline;
   (b)(c) L1/L2 cache behaviour and (d) IPC at 16 NFTasks vs number of
       second-level rules, against RTC. *)

open Bench_common

let task_counts = [ 1; 2; 4; 8; 16; 32; 64 ]
let rule_counts = [ 2; 8; 32; 128 ]

let run () =
  header "Fig 10(a): UPF downlink throughput vs interleaved NFTasks";
  row "%-8s %10s %10s %10s" "pdrs" "model" "Mpps" "speedup";
  List.iter
    (fun n_pdrs ->
      let baseline =
        let worker, program, source = upf_env ~n_pdrs () in
        measure worker program Rtc_model source
      in
      row "%-8d %10s %10.2f %10s" n_pdrs "RTC" (Gunfu.Metrics.mpps baseline) "1.00x";
      (* x = NFTask count; the RTC baseline sits at x = 0. *)
      record ~fig:"fig10a" ~title:"UPF downlink throughput vs NFTasks"
        ~series:"RTC" ~x:0.0 baseline;
      List.iter
        (fun n ->
          let worker, program, source = upf_env ~n_pdrs () in
          let r = measure worker program (Interleaved n) source in
          record ~fig:"fig10a" ~title:"UPF downlink throughput vs NFTasks"
            ~series:"IL" ~x:(float_of_int n) r;
          row "%-8d %10s %10.2f %9.2fx" n_pdrs
            (Printf.sprintf "IL-%d" n)
            (Gunfu.Metrics.mpps r)
            (Gunfu.Metrics.mpps r /. Gunfu.Metrics.mpps baseline))
        task_counts)
    [ 16 ];
  row "expected shape: 1 NFTask < RTC; optimum around 8-32; mild decline at 64";

  header "Fig 10(b-d): cache behaviour and IPC at 16 NFTasks vs #rules";
  row "%-8s %-8s %10s %10s %10s %8s" "rules" "model" "L1 m/pkt" "L2 m/pkt" "LLC m/pkt" "IPC";
  List.iter
    (fun n_pdrs ->
      let show model =
        let worker, program, source = upf_env ~n_pdrs () in
        let r = measure worker program model source in
        record ~fig:"fig10b" ~title:"UPF cache behaviour and IPC vs rules"
          ~series:(model_name model) ~x:(float_of_int n_pdrs) r;
        row "%-8d %-8s %10.2f %10.2f %10.2f %8.2f" n_pdrs (model_name model)
          (Gunfu.Metrics.l1_misses_per_packet r)
          (Gunfu.Metrics.l2_misses_per_packet r)
          (Gunfu.Metrics.llc_misses_per_packet r)
          (Gunfu.Metrics.ipc r)
      in
      show Rtc_model;
      show (Interleaved 16))
    rule_counts;
  row "expected shape: RTC misses/pkt grow with rules; interleaved stays flat and";
  row "keeps IPC high (paper Fig 10b-d)"
