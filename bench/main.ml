(* Benchmark harness regenerating every figure of the paper's evaluation
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig13   # one figure
     dune exec bench/main.exe -- micro   # bechamel microbenchmarks
*)

let figures =
  [
    ("fig2", "UPF concurrency under RTC (EXP A)", Fig2.run);
    ("fig3", "AMF state complexity under RTC (EXP B)", Fig3.run);
    ("fig9", "NFTask vs pthread context switches", Fig9.run);
    ("fig10", "UPF single-core improvement", Fig10.run);
    ("fig11", "NAT granular decomposition", Fig11.run);
    ("fig12", "AMF interleaved + data packing", Fig12.run);
    ("fig13", "SFC compiler optimisations", Fig13.run);
    ("fig14", "SFC multicore scalability", Fig14.run);
    ("fig15", "UPF multicore scalability", Fig15.run);
    ("ablations", "design-choice ablations (A1-A6)", Ablations.run);
    ("micro", "substrate microbenchmarks (bechamel)", Microbench.run);
  ]

let usage () =
  print_endline "usage: main.exe [figN|micro ...]";
  print_endline "available targets:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-8s %s\n" name descr) figures

(* Figures record their key series into Bench_common.baseline as they
   print; whatever ran is written out as a machine-readable baseline
   (validate / round-trip it with `gunfu_cli bench --json`). *)
let baseline_pr = "PR4"
let baseline_path = "BENCH_" ^ baseline_pr ^ ".json"

let () =
  (match Array.to_list Sys.argv with
  | _ :: [] ->
      Printf.printf "GuNFu-OCaml benchmark harness - regenerating all figures\n";
      List.iter (fun (_, _, run) -> run ()) figures
  | _ :: args ->
      List.iter
        (fun arg ->
          match List.find_opt (fun (name, _, _) -> name = arg) figures with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.printf "unknown target %S\n" arg;
              usage ();
              exit 1)
        args
  | [] -> usage ());
  Bench_common.write_baseline ~pr:baseline_pr ~path:baseline_path
