(* Benchmark harness regenerating every figure of the paper's evaluation
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig13   # one figure
     dune exec bench/main.exe -- micro   # bechamel microbenchmarks
*)

let figures =
  [
    ("fig2", "UPF concurrency under RTC (EXP A)", Fig2.run);
    ("fig3", "AMF state complexity under RTC (EXP B)", Fig3.run);
    ("fig9", "NFTask vs pthread context switches", Fig9.run);
    ("fig10", "UPF single-core improvement", Fig10.run);
    ("fig11", "NAT granular decomposition", Fig11.run);
    ("fig12", "AMF interleaved + data packing", Fig12.run);
    ("fig13", "SFC compiler optimisations", Fig13.run);
    ("fig14", "SFC multicore scalability", Fig14.run);
    ("fig15", "UPF multicore scalability", Fig15.run);
    ("ablations", "design-choice ablations (A1-A6)", Ablations.run);
    ("micro", "substrate microbenchmarks (bechamel)", Microbench.run);
  ]

(* Targets outside the default run: they record into their own collector
   and write their own baseline file, so the committed BENCH_PR4.json is
   not disturbed by an everything run (and vice versa). *)
let extras =
  [
    ("scr", "SCR vs RSS skew scale-out (PR9 companion)", Scr_bench.run);
    ("adapt", "adaptive vs static churn scenarios (PR10 companion)", Adapt_bench.run);
  ]

let usage () =
  print_endline
    "usage: main.exe [--specialize] [--check-baseline FILE] [--tolerance R] [figN|micro ...]";
  print_endline "  --specialize          run with the specialized hot path + packet arena";
  print_endline "  --check-baseline FILE compare collected series against FILE;";
  print_endline "                        exits non-zero on drift, writes nothing";
  print_endline "  --tolerance R         relative tolerance for --check-baseline";
  print_endline "                        (default 0.0 = exact; CI smoke uses 0.05)";
  print_endline "available targets:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-8s %s\n" name descr) figures;
  print_endline "extra targets (not part of the default everything run):";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-8s %s\n" name descr) extras

(* Figures record their key series into Bench_common.baseline as they
   print; whatever ran is written out as a machine-readable baseline
   (validate / round-trip it with `gunfu_cli bench --json`). *)
let baseline_pr = "PR4"
let baseline_path = "BENCH_" ^ baseline_pr ^ ".json"

(* The extra targets' collectors and baseline files. *)
let scr_pr = "PR9"
let scr_path = "BENCH_" ^ scr_pr ^ ".json"
let adapt_pr = "PR10"
let adapt_path = "BENCH_" ^ adapt_pr ^ ".json"

(* Metrics whose values are host wall-clock measurements (fig9's bechamel
   rates): present in every baseline but meaningless to compare exactly. *)
let wallclock_metric = function
  | "switches_per_s" | "ns_per_switch" -> true
  | _ -> false

let check_baseline ~tolerance path =
  let contents =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Telemetry.Baseline.of_string contents with
  | Error e ->
      Printf.printf "\ncheck-baseline: cannot read %s: %s\n" path e;
      exit 2
  | Ok expected -> (
      (* The extra targets record into their own collectors; route the
         diff by the expected baseline's PR tag. *)
      let collector =
        if expected.Telemetry.Baseline.pr = scr_pr then Scr_bench.baseline
        else if expected.Telemetry.Baseline.pr = adapt_pr then Adapt_bench.baseline
        else Bench_common.baseline
      in
      let actual =
        Telemetry.Baseline.to_baseline collector ~pr:expected.Telemetry.Baseline.pr
      in
      match
        Telemetry.Baseline.diff ~tolerance ~expected ~actual ~skip:wallclock_metric ()
      with
      | [] ->
          Printf.printf "\ncheck-baseline: %s matches (%d figures, %g tolerance)\n"
            path
            (List.length actual.Telemetry.Baseline.figures)
            tolerance
      | drifts ->
          Printf.printf "\ncheck-baseline: %d drift(s) against %s:\n" (List.length drifts)
            path;
          List.iter (fun d -> Printf.printf "  %s\n" d) drifts;
          exit 1)

let () =
  let check = ref None in
  let tolerance = ref 0.0 in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--specialize" :: rest ->
        Bench_common.specialize := true;
        parse rest
    | "--check-baseline" :: path :: rest ->
        check := Some path;
        parse rest
    | "--check-baseline" :: [] ->
        Printf.printf "--check-baseline needs a file argument\n";
        usage ();
        exit 1
    | "--tolerance" :: r :: rest -> (
        match float_of_string_opt r with
        | Some t when t >= 0.0 ->
            tolerance := t;
            parse rest
        | _ ->
            Printf.printf "--tolerance needs a non-negative number, got %S\n" r;
            usage ();
            exit 1)
    | "--tolerance" :: [] ->
        Printf.printf "--tolerance needs a number argument\n";
        usage ();
        exit 1
    | arg :: rest ->
        (match List.find_opt (fun (name, _, _) -> name = arg) (figures @ extras) with
        | Some target -> targets := !targets @ [ target ]
        | None ->
            Printf.printf "unknown target %S\n" arg;
            usage ();
            exit 1);
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !targets with
  | [] ->
      Printf.printf "GuNFu-OCaml benchmark harness - regenerating all figures%s\n"
        (if !Bench_common.specialize then " (specialized hot path)" else "");
      List.iter (fun (_, _, run) -> run ()) figures
  | targets -> List.iter (fun (_, _, run) -> run ()) targets);
  match !check with
  | Some path -> check_baseline ~tolerance:!tolerance path
  | None ->
      Bench_common.write_baseline ~pr:baseline_pr ~path:baseline_path ();
      Bench_common.write_baseline ~collector:Scr_bench.baseline ~pr:scr_pr
        ~path:scr_path ();
      Bench_common.write_baseline ~collector:Adapt_bench.baseline ~pr:adapt_pr
        ~path:adapt_path ()
