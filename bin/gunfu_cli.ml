(* gunfu — command-line driver for the GuNFu platform.

     gunfu_cli run --nf sfc4 --model il16 --flows 131072 --packets 50000
     gunfu_cli run --nf upf --model rtc --cores 4
     gunfu_cli inspect --nf nat --match-removal
     gunfu_cli check-spec path/to/module.yaml
     gunfu_cli list
*)

open Cmdliner

type nf_kind =
  | Nat_nf
  | Lb_nf
  | Fw_nf
  | Nm_nf
  | Upf_nf
  | Upf_uplink_nf
  | Amf_nf
  | Sfc_nf of int

let nf_of_string = function
  | "nat" -> Ok Nat_nf
  | "lb" -> Ok Lb_nf
  | "fw" -> Ok Fw_nf
  | "nm" -> Ok Nm_nf
  | "upf" -> Ok Upf_nf
  | "upf-uplink" -> Ok Upf_uplink_nf
  | "amf" -> Ok Amf_nf
  | s when String.length s = 4 && String.sub s 0 3 = "sfc" -> (
      match int_of_string_opt (String.sub s 3 1) with
      | Some n when n >= 2 && n <= 6 -> Ok (Sfc_nf n)
      | _ -> Error (`Msg "sfc length must be 2..6"))
  | s -> Error (`Msg ("unknown NF: " ^ s))

let nf_names = "nat, lb, fw, nm, upf, upf-uplink, amf, sfc2..sfc6"

type model = Rtc_m | Batch_m | Il_m of int

let model_of_string = function
  | "rtc" -> Ok Rtc_m
  | "batch" -> Ok Batch_m
  | s when String.length s > 2 && String.sub s 0 2 = "il" -> (
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some n when n > 0 -> Ok (Il_m n)
      | _ -> Error (`Msg "model ilN needs a positive task count"))
  | s -> Error (`Msg ("unknown model: " ^ s))

(* Build the requested NF on a worker; returns the program and a source
   factory. *)
let build nf ~flows ~packed ~opts worker =
  let layout = Gunfu.Worker.layout worker in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let flow_src gen ~count = Gunfu.Workload.of_flowgen gen ~pool ~count in
  let simple_gen () =
    Traffic.Flowgen.create ~seed:1 ~n_flows:flows
      ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  match nf with
  | Nat_nf ->
      let gen = simple_gen () in
      let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows:flows () in
      Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
      (Nfs.Nat.program ~opts nat, flow_src gen)
  | Lb_nf ->
      let gen = simple_gen () in
      let lb = Nfs.Lb.create layout ~name:"lb" ~n_flows:flows () in
      Nfs.Lb.populate lb (Traffic.Flowgen.flows gen);
      (Nfs.Lb.program ~opts lb, flow_src gen)
  | Fw_nf ->
      let gen = simple_gen () in
      let fw = Nfs.Firewall.create layout ~name:"fw" ~n_flows:flows () in
      Nfs.Firewall.populate fw (Traffic.Flowgen.flows gen);
      (Nfs.Firewall.program ~opts fw, flow_src gen)
  | Nm_nf ->
      let gen = simple_gen () in
      let nm = Nfs.Monitor.create layout ~name:"nm" ~n_flows:flows () in
      Nfs.Monitor.populate nm (Traffic.Flowgen.flows gen);
      (Nfs.Monitor.program ~opts nm, flow_src gen)
  | Upf_nf ->
      let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions:flows ~n_pdrs:16 () in
      let upf =
        Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw)
          ~n_pdrs:16 ()
      in
      Nfs.Upf.populate upf;
      (Nfs.Upf.program ~opts upf, fun ~count -> Gunfu.Workload.of_mgw_downlink mgw ~pool ~count)
  | Upf_uplink_nf ->
      let mgw = Traffic.Mgw.create ~seed:2 ~n_sessions:flows ~n_pdrs:16 () in
      let upf =
        Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw)
          ~n_pdrs:16 ()
      in
      Nfs.Upf.populate upf;
      let ran_ip = Netcore.Ipv4.addr_of_string "10.200.1.1" in
      let upf_ip = Netcore.Ipv4.addr_of_string "10.200.0.1" in
      ( Nfs.Upf.uplink_program ~opts upf,
        fun ~count ->
          Gunfu.Workload.limited count (fun () ->
              let si, pkt = Traffic.Mgw.next_uplink mgw ~ran_ip ~upf_ip in
              Netcore.Packet.Pool.assign pool pkt;
              { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = si }) )
  | Amf_nf ->
      let gen = Traffic.Mgw.amf_create ~seed:3 ~n_ues:flows () in
      let amf = Nfs.Amf.create layout ~name:"amf" ~packed ~n_ues:flows () in
      Nfs.Amf.populate amf;
      (Nfs.Amf.program ~opts amf, fun ~count -> Gunfu.Workload.of_amf gen ~pool ~count)
  | Sfc_nf length ->
      let gen = simple_gen () in
      let sfc = Nfs.Sfc.create layout ~length ~packed ~n_flows:flows () in
      Nfs.Sfc.populate sfc (Traffic.Flowgen.flows gen);
      (Nfs.Sfc.program ~opts sfc, flow_src gen)

let execute model worker program source ~packets =
  match model with
  | Rtc_m -> Gunfu.Rtc.run worker program (source ~count:packets)
  | Batch_m -> Gunfu.Batch_rtc.run worker program (source ~count:packets)
  | Il_m n -> Gunfu.Scheduler.run worker program ~n_tasks:n (source ~count:packets)

(* ----- run command ----- *)

let run_cmd nf model flows packets cores packed match_removal no_prefetch specialize =
  let opts =
    {
      Gunfu.Compiler.match_removal;
      prefetch_dedup = true;
      prefetching = not no_prefetch;
      lint = `Off;
      verify_passes = `Off;
      specialize;
    }
  in
  if cores = 1 then begin
    let worker = Gunfu.Worker.create ~id:0 () in
    let program, source = build nf ~flows ~packed ~opts worker in
    let r = execute model worker program source ~packets in
    Fmt.pr "%a@." Gunfu.Metrics.pp_row r;
    `Ok ()
  end
  else begin
    let platform = Gunfu.Platform.create ~cores () in
    let setup w _core =
      let program, source = build nf ~flows:(max 1024 (flows / cores)) ~packed ~opts w in
      (program, source ~count:(packets / cores))
    in
    let runs =
      match model with
      | Rtc_m -> Gunfu.Platform.run_rtc platform ~setup
      | Batch_m ->
          Gunfu.Platform.run platform ~setup ~execute:(fun w p s -> Gunfu.Batch_rtc.run w p s)
      | Il_m n -> Gunfu.Platform.run_interleaved platform ~n_tasks:n ~setup
    in
    let merged = Gunfu.Metrics.merge_parallel runs in
    Fmt.pr "%a@." Gunfu.Metrics.pp_row merged;
    Fmt.pr "aggregate over %d cores, capped at the 100G line rate: %.2f Gbps@." cores
      (Gunfu.Metrics.gbps_scaled merged ~cores:1);
    `Ok ()
  end

(* ----- inspect command ----- *)

let inspect_cmd nf match_removal =
  let opts = { Gunfu.Compiler.default_opts with Gunfu.Compiler.match_removal } in
  let worker = Gunfu.Worker.create ~id:0 () in
  let program, _ = build nf ~flows:1024 ~packed:false ~opts worker in
  Fmt.pr "%a@." Gunfu.Program.pp program;
  `Ok ()

(* ----- check-spec command ----- *)

let check_spec_cmd path =
  let read_file p =
    let ic = open_in p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match read_file path with
  | exception Sys_error e -> `Error (false, e)
  | src -> (
      try
        let looks_like_nf =
          List.exists
            (fun line -> String.length line >= 3 && String.sub line 0 3 = "nf:")
            (String.split_on_char '\n' src)
        in
        if looks_like_nf then begin
          let nf = Gunfu.Spec.nf_spec_of_string src in
          Fmt.pr "NF spec %s: %d module instances, %d transitions - OK@."
            nf.Gunfu.Spec.n_name
            (List.length nf.Gunfu.Spec.n_modules)
            (List.length nf.Gunfu.Spec.n_transitions)
        end
        else begin
          let m = Gunfu.Spec.module_spec_of_string src in
          Gunfu.Spec.validate_module m;
          Fmt.pr "module spec %s (%s): %d control states, %d transitions - OK@."
            m.Gunfu.Spec.m_name m.Gunfu.Spec.m_category
            (List.length (Gunfu.Spec.control_states_of m))
            (List.length m.Gunfu.Spec.m_transitions)
        end;
        `Ok ()
      with Gunfu.Spec.Spec_error msg -> `Error (false, "spec error: " ^ msg))

(* ----- compose command: build and run an NF from on-disk YAML ----- *)

let compose_cmd nf_file specs_dir model flows packets =
  try
    let worker = Gunfu.Worker.create ~id:0 () in
    let layout = Gunfu.Worker.layout worker in
    let built =
      Nfs.Catalog.build_from_files layout ~nf_file ~specs_dir ~n_flows:flows ()
    in
    Fmt.pr "composed %s from %s: NFs [%s]@."
      (Gunfu.Program.name built.Nfs.Catalog.program)
      nf_file
      (String.concat "; " built.Nfs.Catalog.nf_names);
    let gen =
      Traffic.Flowgen.create ~seed:1 ~n_flows:flows
        ~size_model:(Traffic.Flowgen.Fixed 128) ()
    in
    built.Nfs.Catalog.populate (Traffic.Flowgen.flows gen);
    let pool = Netcore.Packet.Pool.create layout ~count:1024 in
    let source = Gunfu.Workload.of_flowgen gen ~pool ~count:packets in
    let r =
      match model with
      | Rtc_m -> Gunfu.Rtc.run worker built.Nfs.Catalog.program source
      | Batch_m -> Gunfu.Batch_rtc.run worker built.Nfs.Catalog.program source
      | Il_m n -> Gunfu.Scheduler.run worker built.Nfs.Catalog.program ~n_tasks:n source
    in
    Fmt.pr "%a@." Gunfu.Metrics.pp_row r;
    `Ok ()
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- check command: the differential execution oracle ----- *)

let check_cmd programs seed packets profile spec specs_dir no_minimize specialize =
  try
    (* Interpreted scan runs all 14 executors (reference included);
       --specialize widens to the 28-way matrix: every executor additionally
       runs under the compiled hot path, diffed against the interpreted
       reference. *)
    let n_variants =
      List.length Check.Oracle.executor_names
      + if specialize then List.length Check.Oracle.executor_names else 0
    in
    let cases =
      match spec with
      | Some "all" -> Check.Progen.spec_cases ~specs_dir ~seed ~packets ()
      | Some name -> (
          try [ Check.Progen.spec_case ~specs_dir ~name ~seed ~packets () ]
          with Invalid_argument m -> raise (Gunfu.Spec.Spec_error m))
      | None -> (
          match profile with
          | Some p when not (List.mem p Check.Progen.profiles) ->
              invalid_arg
                (Printf.sprintf "unknown profile %s (expected one of: %s)" p
                   (String.concat ", " Check.Progen.profiles))
          | Some p ->
              List.init programs (fun i ->
                  Check.Progen.case ~seed:(seed + i) ~profile:p ~packets)
          | None -> Check.Progen.cases ~seed ~count:programs ~packets)
    in
    let divergences = ref 0 in
    let violations = ref 0 in
    List.iter
      (fun (case : Check.Oracle.case) ->
        let diverged =
          match Check.Oracle.check_case ~minimized:(not no_minimize) ~specialize case with
          | Some d ->
              incr divergences;
              Fmt.pr "%a@." Check.Oracle.pp_divergence d;
              true
          | None -> false
        in
        let viols = Check.Invariants.check_case case in
        List.iter
          (fun (exec, viol) ->
            incr violations;
            Fmt.pr "INVARIANT VIOLATION in case %s under %s: %a@,replay: %s@."
              case.Check.Oracle.c_name exec Check.Invariants.pp_violation viol
              (case.Check.Oracle.c_repro ~packets:case.Check.Oracle.c_packets))
          viols;
        if (not diverged) && viols = [] then
          Fmt.pr "case %-18s seed %-6d profile %-8s %d packets x %d variants: agree@."
            case.Check.Oracle.c_name case.Check.Oracle.c_seed
            case.Check.Oracle.c_profile case.Check.Oracle.c_packets n_variants)
      cases;
    if !divergences = 0 && !violations = 0 then begin
      Fmt.pr "oracle: %d cases, %d variants each, no divergence@." (List.length cases)
        n_variants;
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "oracle found %d divergence(s), %d invariant violation(s)"
            !divergences !violations )
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- chaos command: the oracle under deterministic fault injection ----- *)

(* --kill-cores: the core-failure axis. Shard each case across [cores],
   schedule a kill from the plan, recover on a survivor via
   checkpoint/replay, and require equality with the failure-free
   reference. *)
(* Case selection shared by the platform axes: --kill-cores recovery,
   chaos --model scr, and the scr command. *)
let platform_rcases programs seed packets profile spec specs_dir =
  match spec with
  | Some "all" ->
      List.map
        (fun name -> Check.Recovery.spec_rcase ~specs_dir ~name ~seed ~packets)
        Check.Progen.spec_names
  | Some name -> [ Check.Recovery.spec_rcase ~specs_dir ~name ~seed ~packets ]
  | None ->
      let profiles =
        match profile with
        | Some p when not (List.mem p Check.Progen.profiles) ->
            invalid_arg
              (Printf.sprintf "unknown profile %s (expected one of: %s)" p
                 (String.concat ", " Check.Progen.profiles))
        | Some p -> [ p ]
        | None -> Check.Progen.profiles
      in
      List.concat_map
        (fun profile ->
          List.init programs (fun i ->
              Check.Recovery.gen_rcase ~seed:(seed + i) ~profile ~packets))
        profiles

let chaos_kill_cores programs seed packets profile spec specs_dir rate_ppm cores
    epoch =
  let rcases = platform_rcases programs seed packets profile spec specs_dir in
  let rplan =
    {
      Gunfu.Platform.Recovery.epoch;
      log_capacity = max epoch Gunfu.Platform.Recovery.default_plan.Gunfu.Platform.Recovery.log_capacity;
    }
  in
  let failed = ref 0 in
  List.iter
    (fun rc ->
      let plan = Check.Faultgen.create ~rate_ppm ~seed:rc.Check.Recovery.r_seed () in
      let oc = Check.Recovery.check_case ~plan ~rplan ~cores rc in
      if not (Check.Recovery.passed oc) then incr failed;
      Fmt.pr "%a@." Check.Recovery.pp_outcome oc)
    rcases;
  if !failed = 0 then begin
    Fmt.pr
      "chaos --kill-cores: %d cases on %d cores (epoch %d): every kill \
       recovered, exactly-once emits, reference equality@."
      (List.length rcases) cores epoch;
    `Ok ()
  end
  else
    `Error
      (false, Printf.sprintf "%d case(s) failed to recover from a core kill" !failed)

(* The SCR axis over a case list: each case at every core count, one
   fault plan per case derived from its own seed (rate 0 = no plan). *)
let scr_axis ~rcases ~cores_list ~rate_ppm ~spray ~engine =
  let failed = ref 0 in
  List.iter
    (fun rc ->
      let plan =
        if rate_ppm = 0 then None
        else Some (Check.Faultgen.create ~rate_ppm ~seed:rc.Check.Recovery.r_seed ())
      in
      List.iter
        (fun cores ->
          let oc = Check.Scrcheck.check_rcase ?plan ~spray ~engine ~cores rc in
          if not (Check.Scrcheck.passed oc) then incr failed;
          Fmt.pr "%a@." Check.Scrcheck.pp_outcome oc)
        cores_list)
    rcases;
  !failed

let chaos_scr programs seed packets profile spec specs_dir rate_ppm cores =
  let rcases = platform_rcases programs seed packets profile spec specs_dir in
  let failed =
    scr_axis ~rcases ~cores_list:[ cores ] ~rate_ppm
      ~spray:Scaleout.Spray.Round_robin ~engine:Scaleout.Scr.Engine_rtc
  in
  if failed = 0 then begin
    Fmt.pr
      "chaos --model scr: %d cases on %d cores at %d ppm: replicas converged, \
       reference equality@."
      (List.length rcases) cores rate_ppm;
    `Ok ()
  end
  else
    `Error
      (false, Printf.sprintf "%d scr case(s) diverged or violated invariants" failed)

let chaos_cmd programs seed packets profile spec specs_dir rate_ppm no_minimize
    kill_cores model cores epoch =
  try
    if kill_cores then
      chaos_kill_cores programs seed packets profile spec specs_dir rate_ppm cores
        epoch
    else if String.equal model "scr" then
      chaos_scr programs seed packets profile spec specs_dir rate_ppm cores
    else if not (String.equal model "rss") then
      `Error (false, Printf.sprintf "unknown model %s (expected rss or scr)" model)
    else
    let cases =
      match spec with
      | Some "all" -> Check.Progen.spec_cases ~specs_dir ~seed ~packets ()
      | Some name -> (
          try [ Check.Progen.spec_case ~specs_dir ~name ~seed ~packets () ]
          with Invalid_argument m -> raise (Gunfu.Spec.Spec_error m))
      | None -> (
          match profile with
          | Some p when not (List.mem p Check.Progen.profiles) ->
              invalid_arg
                (Printf.sprintf "unknown profile %s (expected one of: %s)" p
                   (String.concat ", " Check.Progen.profiles))
          | Some p ->
              List.init programs (fun i ->
                  Check.Progen.case ~seed:(seed + i) ~profile:p ~packets)
          | None -> Check.Progen.cases ~seed ~count:programs ~packets)
    in
    let divergences = ref 0 in
    let violations = ref 0 in
    List.iter
      (fun (case : Check.Oracle.case) ->
        (* One plan per case, derived from the case's own seed, so cases do
           not all replay the same schedule positions. *)
        let plan = Check.Faultgen.create ~rate_ppm ~seed:case.Check.Oracle.c_seed () in
        let diverged =
          match Check.Oracle.check_case ~minimized:(not no_minimize) ~plan case with
          | Some d ->
              incr divergences;
              Fmt.pr "%a@." Check.Oracle.pp_divergence d;
              true
          | None -> false
        in
        let viols = Check.Invariants.check_case ~plan case in
        List.iter
          (fun (exec, viol) ->
            incr violations;
            Fmt.pr "INVARIANT VIOLATION in case %s under %s: %a@,replay: %s@."
              case.Check.Oracle.c_name exec Check.Invariants.pp_violation viol
              (case.Check.Oracle.c_repro ~packets:case.Check.Oracle.c_packets))
          viols;
        if (not diverged) && viols = [] then begin
          let obs =
            Check.Oracle.observe ~plan Check.Oracle.reference
              (case.Check.Oracle.c_build ~packets:case.Check.Oracle.c_packets)
          in
          let r = obs.Check.Oracle.o_run in
          Fmt.pr
            "case %-18s seed %-6d %4d packets, %2d injected, %2d faulted%s x %d executors: agree@."
            case.Check.Oracle.c_name case.Check.Oracle.c_seed
            case.Check.Oracle.c_packets
            (Check.Faultgen.planned plan ~packets:case.Check.Oracle.c_packets)
            r.Gunfu.Metrics.faulted
            (if r.Gunfu.Metrics.degraded then " (degraded)" else "")
            (List.length Check.Oracle.executor_names)
        end)
      cases;
    if !divergences = 0 && !violations = 0 then begin
      Fmt.pr
        "chaos: %d cases at %d ppm, %d executors each: every fault contained, no divergence@."
        (List.length cases) rate_ppm
        (List.length Check.Oracle.executor_names);
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "chaos found %d divergence(s), %d invariant violation(s)"
            !divergences !violations )
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- scr command: the State-Compute Replication axis ----- *)

let scr_cmd programs seed packets profile spec specs_dir rate_ppm cores_list
    spray_seed batch =
  try
    if cores_list = [] then invalid_arg "scr: --cores list must be non-empty";
    List.iter
      (fun c -> if c < 1 then invalid_arg "scr: core counts must be positive")
      cores_list;
    let rcases = platform_rcases programs seed packets profile spec specs_dir in
    let spray =
      match spray_seed with
      | None -> Scaleout.Spray.Round_robin
      | Some s -> Scaleout.Spray.Seeded s
    in
    let engine =
      match batch with
      | None -> Scaleout.Scr.Engine_rtc
      | Some b -> Scaleout.Scr.Engine_batch b
    in
    let failed = scr_axis ~rcases ~cores_list ~rate_ppm ~spray ~engine in
    if failed = 0 then begin
      Fmt.pr
        "scr: %d cases x cores {%s} engine=%s spray=%s at %d ppm: replicas \
         converged, reference equality@."
        (List.length rcases)
        (String.concat "," (List.map string_of_int cores_list))
        (Check.Scrcheck.engine_name engine)
        (match spray_seed with
        | None -> "round-robin"
        | Some s -> Printf.sprintf "seeded(%d)" s)
        rate_ppm;
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "%d scr case(s) diverged or violated invariants" failed )
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- adapt command: the closed-loop adaptive-runtime axis ----- *)

let adapt_cmd programs seed packets profile spec specs_dir rate_ppm scr epoch
    initial =
  try
    if rate_ppm > 0 && scr <> None then
      invalid_arg
        "adapt: --rate-ppm and --scr cannot be combined (replica re-cloning \
         would detach armed injections)";
    if epoch < 1 then invalid_arg "adapt: --epoch must be positive";
    let initial =
      match initial with
      | "default" | "il" -> Adaptive.Config.default
      | "rtc" -> Adaptive.Config.Rtc
      | "batch" -> Adaptive.Config.Batch { batch = 32 }
      | other ->
          invalid_arg
            (Printf.sprintf "adapt: unknown initial %s (expected default, rtc \
                             or batch)" other)
    in
    let rcases = platform_rcases programs seed packets profile spec specs_dir in
    let failed = ref 0 in
    List.iter
      (fun rc ->
        let plan =
          if rate_ppm = 0 then None
          else Some (Check.Faultgen.create ~rate_ppm ~seed:rc.Check.Recovery.r_seed ())
        in
        let oc = Check.Adaptcheck.check_rcase ?plan ?scr ~epoch ~initial rc in
        if not (Check.Adaptcheck.passed oc) then incr failed;
        Fmt.pr "%a@." Check.Adaptcheck.pp_outcome oc)
      rcases;
    if !failed = 0 then begin
      Fmt.pr
        "adapt: %d cases (epoch %d, initial %s%s%s): every reconfiguration \
         quiescent, reference equality@."
        (List.length rcases) epoch
        (Adaptive.Config.label initial)
        (match scr with
        | None -> ""
        | Some c -> Printf.sprintf ", scr hand-off armed at %d cores" c)
        (if rate_ppm > 0 then Printf.sprintf ", %d ppm faults" rate_ppm else "");
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "%d adaptive case(s) diverged or violated invariants"
            !failed )
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- storm command: churn-storm chaos scenarios ----- *)

let storm_cmd scenario seed model =
  try
    let reports =
      match (model, scenario) with
      | "scr", _ -> [ Check.Storm.scr_storm ~seed () ]
      | "rss", None -> Check.Storm.all ~seed ()
      | "rss", Some "pfcp" -> [ Check.Storm.pfcp_storm ~seed () ]
      | "rss", Some "nat" -> [ Check.Storm.nat_rebalance_storm ~seed () ]
      | "rss", Some "overload" -> [ Check.Storm.overload_storm ~seed () ]
      | "rss", Some other ->
          invalid_arg
            (Printf.sprintf "unknown storm %s (expected pfcp, nat or overload)" other)
      | other, _ ->
          invalid_arg
            (Printf.sprintf "unknown model %s (expected rss or scr)" other)
    in
    List.iter (fun r -> Fmt.pr "@[<v>%a@]@." Check.Storm.pp_report r) reports;
    let failed = List.filter (fun r -> not (Check.Storm.passed r)) reports in
    if failed = [] then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "%d storm scenario(s) failed: %s" (List.length failed)
            (String.concat ", "
               (List.map (fun r -> r.Check.Storm.st_name) failed)) )
  with
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- lint command: the static analyzer (nflint) ----- *)

let lint_cmd spec all_specs specs_dir json strict =
  try
    let targets =
      if all_specs then
        Sys.readdir specs_dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".yaml")
        |> List.sort compare
        |> List.map (Filename.concat specs_dir)
      else
        match spec with
        | Some f -> [ f ]
        | None -> raise (Gunfu.Spec.Spec_error "pass --spec FILE or --all-specs")
    in
    (* Module files are analyzed in isolation against their declared
       fetching; composition files are assembled (the oracle's own build
       path) and analyzed with concrete prefetch targets and kill sets. *)
    let lint_file path =
      let src = Nfs.Catalog.read_file path in
      let looks_like_nf =
        List.exists
          (fun line -> String.length line >= 3 && String.sub line 0 3 = "nf:")
          (String.split_on_char '\n' src)
      in
      if looks_like_nf then
        let name = Filename.remove_extension (Filename.basename path) in
        Analysis.Lints.of_build (Check.Progen.spec_lint_input ~specs_dir ~name ())
      else Analysis.Lints.of_module (Gunfu.Spec.module_spec_of_string src)
    in
    let findings = Analysis.Report.sort (List.concat_map lint_file targets) in
    if json then Fmt.pr "%s@." (Analysis.Report.to_json findings)
    else
      List.iter (fun f -> Fmt.pr "%a@." Analysis.Report.pp_finding f) findings;
    let count sev =
      List.length (List.filter (fun f -> f.Analysis.Report.severity = sev) findings)
    in
    let threshold = if strict then Analysis.Report.Warning else Analysis.Report.Error in
    let failing =
      List.filter
        (fun f ->
          Analysis.Report.severity_rank f.Analysis.Report.severity
          >= Analysis.Report.severity_rank threshold)
        findings
    in
    if failing = [] then begin
      if not json then
        Fmt.pr "lint: %d file(s), %d finding(s) (%d error, %d warning, %d info)@."
          (List.length targets) (List.length findings)
          (count Analysis.Report.Error)
          (count Analysis.Report.Warning)
          (count Analysis.Report.Info);
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "lint: %d finding(s) at %s severity or above"
            (List.length failing)
            (if strict then "warning" else "error") )
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- verifyeq command: translation validation ----- *)

(* One symbolic check over one compiled input; returns (refuted, unknowns). *)
let verifyeq_one ~json label (vi : Gunfu.Compiler.verify_input) =
  let r = Analysis.Symcheck.check vi in
  let refuted =
    List.filter
      (fun f -> f.Analysis.Report.severity = Analysis.Report.Error)
      r.Analysis.Symcheck.findings
  in
  if not json then begin
    List.iter
      (fun f -> Fmt.pr "%a@." Analysis.Report.pp_finding f)
      r.Analysis.Symcheck.findings;
    if refuted = [] then
      Fmt.pr "verifyeq: %s: proved {%s}%s@." label
        (String.concat ", " r.Analysis.Symcheck.proved)
        (if r.Analysis.Symcheck.unknowns = 0 then ""
         else
           Printf.sprintf " with %d unknown(s) left to the dynamic oracle"
             r.Analysis.Symcheck.unknowns)
    else Fmt.pr "verifyeq: %s: REFUTED (%d finding(s))@." label (List.length refuted)
  end;
  (r.Analysis.Symcheck.findings, List.length refuted, r.Analysis.Symcheck.unknowns)

let verifyeq_cmd spec programs seed specs_dir json strict =
  try
    let spec_targets =
      match spec with
      | Some "all" -> Check.Progen.spec_names
      | Some name ->
          if List.mem name Check.Progen.spec_names then [ name ]
          else
            invalid_arg
              (Printf.sprintf "unknown composition %S (expected %s or all)" name
                 (String.concat ", " Check.Progen.spec_names))
      | None -> []
    in
    if spec_targets = [] && programs = 0 then
      `Error (true, "pass --spec NAME|all and/or --programs N")
    else begin
      let inputs =
        List.map
          (fun name ->
            ( "spec " ^ name,
              fun () -> Check.Progen.spec_verify_input ~specs_dir ~name () ))
          spec_targets
        @ List.init programs (fun i ->
              ( Printf.sprintf "gen seed=%d" (seed + i),
                fun () -> Check.Progen.gen_verify_input ~seed:(seed + i) ))
      in
      let findings = ref [] and refuted = ref 0 and unknowns = ref 0 in
      List.iter
        (fun (label, mk) ->
          let fs, r, u = verifyeq_one ~json label (mk ()) in
          findings := !findings @ fs;
          refuted := !refuted + r;
          unknowns := !unknowns + u)
        inputs;
      if json then Fmt.pr "%s@." (Analysis.Report.to_json (Analysis.Report.sort !findings));
      let failing = !refuted > 0 || (strict && !unknowns > 0) in
      if not failing then begin
        if not json then
          Fmt.pr "verifyeq: %d program(s) proved, 0 refuted, %d unknown(s)@."
            (List.length inputs) !unknowns;
        `Ok ()
      end
      else
        `Error
          ( false,
            Printf.sprintf "verifyeq: %d refuted finding(s), %d unknown(s)%s"
              !refuted !unknowns
              (if !refuted = 0 then " (--strict demands a full static proof)" else "")
          )
    end
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- profile / trace commands: the telemetry plane ----- *)

(* Build the system under test — a built-in NF (--nf) or an on-disk
   composition (--spec) — and run it once with the span tracer attached. *)
let traced_execute nf spec specs_dir model flows packets packed =
  let worker = Gunfu.Worker.create ~id:0 () in
  let layout = Gunfu.Worker.layout worker in
  let opts = Gunfu.Compiler.default_opts in
  let program, source =
    match (spec, nf) with
    | Some nf_file, _ ->
        let built =
          Nfs.Catalog.build_from_files layout ~nf_file ~specs_dir ~n_flows:flows ()
        in
        let gen =
          Traffic.Flowgen.create ~seed:1 ~n_flows:flows
            ~size_model:(Traffic.Flowgen.Fixed 128) ()
        in
        built.Nfs.Catalog.populate (Traffic.Flowgen.flows gen);
        let pool = Netcore.Packet.Pool.create layout ~count:1024 in
        ( built.Nfs.Catalog.program,
          fun ~count -> Gunfu.Workload.of_flowgen gen ~pool ~count )
    | None, Some nf -> build nf ~flows ~packed ~opts worker
    | None, None -> invalid_arg "pass --nf NAME or --spec NF_FILE"
  in
  let tr = Gunfu.Trace.create () in
  let r =
    match model with
    | Rtc_m -> Gunfu.Rtc.run ~telemetry:tr worker program (source ~count:packets)
    | Batch_m -> Gunfu.Batch_rtc.run ~telemetry:tr worker program (source ~count:packets)
    | Il_m n ->
        Gunfu.Scheduler.run ~telemetry:tr worker program ~n_tasks:n
          (source ~count:packets)
  in
  (tr, r)

let profile_cmd nf spec specs_dir model flows packets packed =
  try
    let tr, r = traced_execute nf spec specs_dir model flows packets packed in
    Fmt.pr "%s" (Telemetry.Attribution.report ~run:r tr);
    match Check.Invariants.check_telemetry tr r with
    | [] -> `Ok ()
    | viol :: _ ->
        `Error
          ( false,
            Printf.sprintf "telemetry invariant %s: %s" viol.Check.Invariants.v_rule
              viol.Check.Invariants.v_detail )
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

let trace_cmd nf spec specs_dir model flows packets packed out =
  try
    let tr, r = traced_execute nf spec specs_dir model flows packets packed in
    let s = Telemetry.Chrome.export_string tr in
    match Telemetry.Chrome.validate_string s with
    | Error e -> `Error (false, "exported trace is invalid: " ^ e)
    | Ok events ->
        let oc = open_out out in
        output_string oc s;
        close_out oc;
        Fmt.pr
          "wrote %s: %d events from %d spans (%d dropped), %d packets in %d cycles@."
          out events (Gunfu.Trace.total_spans tr) (Gunfu.Trace.dropped tr)
          r.Gunfu.Metrics.packets r.Gunfu.Metrics.cycles;
        `Ok ()
  with
  | Nfs.Catalog.Catalog_error msg -> `Error (false, "catalog: " ^ msg)
  | Gunfu.Spec.Spec_error msg -> `Error (false, "spec: " ^ msg)
  | Gunfu.Compiler.Compile_error msg -> `Error (false, "compile: " ^ msg)
  | Invalid_argument msg -> `Error (false, msg)
  | Sys_error msg -> `Error (false, msg)

(* ----- bench command: round-trip a committed bench baseline ----- *)

let bench_cmd json_file =
  try
    let src = Nfs.Catalog.read_file json_file in
    match Telemetry.Baseline.of_string src with
    | Error e -> `Error (false, "baseline: " ^ e)
    | Ok b -> (
        match Telemetry.Baseline.of_string (Telemetry.Baseline.to_string b) with
        | Error e -> `Error (false, "baseline re-parse: " ^ e)
        | Ok b2 when not (Telemetry.Baseline.equal b b2) ->
            `Error (false, "baseline does not round-trip through print/parse")
        | Ok _ ->
            List.iter
              (fun (f : Telemetry.Baseline.figure) ->
                Fmt.pr "%-8s %-52s %d series, %d points@." f.Telemetry.Baseline.f_name
                  f.Telemetry.Baseline.f_title
                  (List.length f.Telemetry.Baseline.series)
                  (List.fold_left
                     (fun n (s : Telemetry.Baseline.series) ->
                       n + List.length s.Telemetry.Baseline.points)
                     0 f.Telemetry.Baseline.series))
              b.Telemetry.Baseline.figures;
            Fmt.pr "baseline %s (pr %s): %d figures, round-trip OK@." json_file
              b.Telemetry.Baseline.pr
              (List.length b.Telemetry.Baseline.figures);
            `Ok ())
  with Sys_error msg -> `Error (false, msg)

let list_cmd () =
  Fmt.pr "network functions: %s@." nf_names;
  Fmt.pr "execution models:  rtc, batch, ilN (e.g. il16)@.";
  `Ok ()

(* ----- cmdliner wiring ----- *)

let nf_conv = Arg.conv (nf_of_string, fun ppf _ -> Fmt.string ppf "<nf>")
let model_conv = Arg.conv (model_of_string, fun ppf _ -> Fmt.string ppf "<model>")

let nf_arg =
  Arg.(required & opt (some nf_conv) None & info [ "nf" ] ~docv:"NF" ~doc:("Network function: " ^ nf_names))

let model_arg =
  Arg.(value & opt model_conv (Il_m 16) & info [ "model" ] ~docv:"MODEL" ~doc:"rtc, batch or ilN")

let flows_arg =
  Arg.(value & opt int 131072 & info [ "flows" ] ~doc:"Concurrent flows / sessions / UEs")

let packets_arg = Arg.(value & opt int 50000 & info [ "packets" ] ~doc:"Packets to process")
let cores_arg = Arg.(value & opt int 1 & info [ "cores" ] ~doc:"Simulated cores")
let packed_arg = Arg.(value & flag & info [ "packed" ] ~doc:"Enable data packing")

let mr_arg =
  Arg.(value & flag & info [ "match-removal" ] ~doc:"Enable redundant-matching removal")

let nopf_arg =
  Arg.(value & flag & info [ "no-prefetch" ] ~doc:"Compile without prefetch policies")

let specialize_arg =
  Arg.(
    value & flag
    & info [ "specialize" ]
        ~doc:"Compile with the specialized hot path (fused actions, dense dispatch)")

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run an NF under an execution model and report metrics")
    Term.(
      ret
        (const run_cmd $ nf_arg $ model_arg $ flows_arg $ packets_arg $ cores_arg
       $ packed_arg $ mr_arg $ nopf_arg $ specialize_arg))

let inspect_t =
  Cmd.v (Cmd.info "inspect" ~doc:"Print the compiled control-logic FSM and prefetch policy")
    Term.(ret (const inspect_cmd $ nf_arg $ mr_arg))

let check_spec_t =
  Cmd.v
    (Cmd.info "check-spec" ~doc:"Parse and validate a module/NF specification file")
    Term.(
      ret
        (const check_spec_cmd
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")))

let check_t =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential execution oracle: run generated (or specs/) NF programs \
          through every executor (rtc, batch, both scheduler policies x task \
          counts) and report any divergence with a minimized seed-replayable \
          repro. Exits non-zero on divergence.")
    Term.(
      ret
        (const check_cmd
        $ Arg.(value & opt int 5 & info [ "programs" ] ~doc:"Generated programs per profile")
        $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed; program i uses seed+i")
        $ Arg.(value & opt int 96 & info [ "packets" ] ~doc:"Packets per case")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "profile" ]
                ~doc:"Only this traffic profile (uniform, zipf, burst, mix); default all")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "spec" ]
                ~doc:"Check a specs/ composition (nat, sfc4, upf_downlink or all) instead of generated programs")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ Arg.(value & flag & info [ "no-minimize" ] ~doc:"Skip divergence minimization")
        $ Arg.(
            value & flag
            & info [ "specialize" ]
                ~doc:
                  "Widen the scan to the 28-way matrix: every executor \
                   additionally runs under the compiled hot path (fused \
                   actions, dense dispatch) and must match the interpreted \
                   reference byte-for-byte")))

let chaos_t =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Differential oracle under deterministic fault injection: arm a \
          seeded schedule of corrupted packets, forced NF-action exceptions \
          and MSHR-starvation stalls, then require every executor to contain \
          each fault identically (same faulted counts, same taxonomy, same \
          per-flow streams) with conservation emits + drops + faulted = \
          offered. With $(b,--kill-cores), shard each case across a \
          share-nothing platform, kill one core mid-run and require the \
          checkpoint/replay recovery on a survivor to match the \
          failure-free reference exactly (per-flow streams, state digest, \
          exactly-once emits). Exits non-zero on divergence or any \
          uncontained fault.")
    Term.(
      ret
        (const chaos_cmd
        $ Arg.(value & opt int 5 & info [ "programs" ] ~doc:"Generated programs per profile")
        $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed for programs and the fault plan")
        $ Arg.(value & opt int 96 & info [ "packets" ] ~doc:"Packets per case")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "profile" ]
                ~doc:"Only this traffic profile (uniform, zipf, burst, mix); default all")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "spec" ]
                ~doc:"Run a specs/ composition (nat, sfc4, upf_downlink or all) instead of generated programs")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ Arg.(
            value & opt int Check.Faultgen.default_rate_ppm
            & info [ "rate-ppm" ] ~doc:"Injection probability per packet, in parts per million")
        $ Arg.(value & flag & info [ "no-minimize" ] ~doc:"Skip divergence minimization")
        $ Arg.(
            value & flag
            & info [ "kill-cores" ]
                ~doc:
                  "Core-failure axis: kill one core per case and verify \
                   checkpoint/replay recovery against the failure-free reference")
        $ Arg.(
            value & opt string "rss"
            & info [ "model" ] ~docv:"MODEL"
                ~doc:
                  "Scale-out model for the platform axis: rss (default; the \
                   sharded executors) or scr (State-Compute Replication — run \
                   each case through sprayed full replicas and require \
                   reference equality under the fault plan)")
        $ Arg.(
            value & opt int 4
            & info [ "cores" ] ~doc:"Platform cores for --kill-cores / --model scr")
        $ Arg.(
            value & opt int Gunfu.Platform.Recovery.default_plan.Gunfu.Platform.Recovery.epoch
            & info [ "epoch" ]
                ~doc:"Checkpoint every EPOCH pulls per core (--kill-cores)")))

let storm_t =
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Churn-storm chaos scenarios: a PFCP session storm (SMF-driven \
          establishment/deletion churn against an undersized UPF over real \
          encoded PFCP, data plane racing teardowns), cuckoo-capacity NAT \
          churn with Migration-layer rebalancing ping-pong (every hop \
          byte-preserving), and the full oracle matrix under an overload \
          fault plan. Each scenario is seeded and self-checking; exits \
          non-zero if any storm breaks an invariant.")
    Term.(
      ret
        (const storm_cmd
        $ Arg.(
            value
            & opt (some string) None
            & info [ "scenario" ] ~docv:"NAME"
                ~doc:"Run one scenario (pfcp, nat or overload); default all")
        $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed")
        $ Arg.(
            value & opt string "rss"
            & info [ "model" ] ~docv:"MODEL"
                ~doc:
                  "Scale-out model: rss (default; the classic scenarios) or \
                   scr (the State-Compute Replication update-stream storm)")))

let adapt_t =
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Closed-loop adaptive-runtime axis: run each case under the \
          telemetry-driven controller (signals from per-epoch trace \
          attribution, knob moves applied only at quiescent pull \
          boundaries) and require behavioural equality with the \
          single-core run-to-completion reference — identical per-flow \
          emit streams, totals and state digest — plus the decision-log \
          invariants (quiescence, config-chain continuity, monotone \
          clock). $(b,--scr) arms the skew hand-off rule with a \
          replicated scale-out surface; $(b,--rate-ppm) runs under a \
          deterministic fault plan. Exits non-zero on any divergence or \
          invariant violation.")
    Term.(
      ret
        (const adapt_cmd
        $ Arg.(value & opt int 4 & info [ "programs" ] ~doc:"Generated programs per profile")
        $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed for programs and the fault plan")
        $ Arg.(value & opt int 768 & info [ "packets" ] ~doc:"Packets per case")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "profile" ]
                ~doc:"Only this traffic profile (uniform, zipf, burst, mix); default all")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "spec" ]
                ~doc:"Run a specs/ composition (nat, sfc4, upf_downlink or all) instead of generated programs")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ Arg.(
            value & opt int 0
            & info [ "rate-ppm" ]
                ~doc:"Fault-injection probability per packet in ppm; 0 = no plan")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "scr" ] ~docv:"CORES"
                ~doc:"Arm the SCR hand-off rule with this replica count")
        $ Arg.(value & opt int 96 & info [ "epoch" ] ~doc:"Window length in pulls")
        $ Arg.(
            value & opt string "default"
            & info [ "initial" ] ~docv:"CONFIG"
                ~doc:"Starting configuration: default (il-rr-8-d1), rtc or batch")))

let scr_t =
  Cmd.v
    (Cmd.info "scr"
       ~doc:
         "State-Compute Replication axis: replicate each case's full per-flow \
          state on every core, spray the packet stream with no flow affinity, \
          ship compact absolute update records between replicas, and require \
          exact equality with a single-core run-to-completion reference \
          (per-flow emit streams, completion/drop/fault/wire totals, state \
          digest), replica convergence at the quiescent barrier and \
          update-stream conservation — optionally under a deterministic \
          fault-injection plan armed at global stream indices. Exits non-zero \
          on any divergence or invariant violation.")
    Term.(
      ret
        (const scr_cmd
        $ Arg.(value & opt int 5 & info [ "programs" ] ~doc:"Generated programs per profile")
        $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed for programs and the fault plan")
        $ Arg.(value & opt int 96 & info [ "packets" ] ~doc:"Packets per case")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "profile" ]
                ~doc:"Only this traffic profile (uniform, zipf, burst, mix); default all")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "spec" ]
                ~doc:"Run a specs/ composition (nat, sfc4, upf_downlink or all) instead of generated programs")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ Arg.(
            value & opt int 0
            & info [ "rate-ppm" ]
                ~doc:"Fault-injection probability per packet in ppm; 0 = no plan")
        $ Arg.(
            value
            & opt (list int) [ 2; 4 ]
            & info [ "cores" ] ~docv:"N,.."
                ~doc:"Comma-separated replica counts to check each case at")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "spray-seed" ]
                ~doc:"Seeded uniform spray instead of round-robin")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "batch" ] ~doc:"Use the batch-N engine instead of rtc")))

let lint_t =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis (nflint) of NF programs: state-access vs fetching \
          declarations (cold accesses), temp-register escapes, control-state \
          interleaving conflicts, FSM hygiene and prefetch distance. Exits \
          non-zero on error findings ($(b,--strict): also on warnings).")
    Term.(
      ret
        (const lint_cmd
        $ Arg.(
            value
            & opt (some file) None
            & info [ "spec" ] ~docv:"FILE"
                ~doc:"Lint one module or composition spec file")
        $ Arg.(
            value & flag
            & info [ "all-specs" ] ~doc:"Lint every .yaml under --specs-dir")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ Arg.(
            value
            & opt (enum [ ("text", false); ("json", true) ]) false
            & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json")
        $ Arg.(value & flag & info [ "strict" ] ~doc:"Fail on warnings too")))

let verifyeq_t =
  Cmd.v
    (Cmd.info "verifyeq"
       ~doc:
         "Translation validation: symbolically prove that each compiler pass \
          (match removal, prefetch dedup, specialize) preserved the \
          program's observable behavior, for on-disk compositions \
          ($(b,--spec) nat|sfc4|upf_downlink|all) and/or generated programs \
          ($(b,--programs) N). A refuted pass prints a path witness and \
          exits non-zero; $(b,--strict) also fails on symbolic Unknown \
          fallbacks, demanding a full static proof.")
    Term.(
      ret
        (const verifyeq_cmd
        $ Arg.(
            value
            & opt (some string) None
            & info [ "spec" ] ~docv:"NAME"
                ~doc:"Validate a specs/ composition (nat, sfc4, upf_downlink or all)")
        $ Arg.(value & opt int 0 & info [ "programs" ] ~doc:"Also validate N generated programs")
        $ Arg.(value & opt int 100 & info [ "seed" ] ~doc:"Base seed for generated programs")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ Arg.(
            value
            & opt (enum [ ("text", false); ("json", true) ]) false
            & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json")
        $ Arg.(value & flag & info [ "strict" ] ~doc:"Fail on Unknown fallbacks too")))

let nf_opt_arg =
  Arg.(
    value
    & opt (some nf_conv) None
    & info [ "nf" ] ~docv:"NF" ~doc:("Built-in network function: " ^ nf_names))

let spec_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"NF_FILE"
        ~doc:"Profile an on-disk composition file instead of a built-in NF")

let specs_dir_arg =
  Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")

let profile_t =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run once with the telemetry plane attached and print the \
          cycle-attribution profile: cycles by (NF, control state, state \
          class, serving cache level), per-phase totals, latency \
          percentiles, and the exact reconciliation of traced cache-level \
          serves against the memory-hierarchy counters. Exits non-zero if \
          the trace violates a telemetry invariant.")
    Term.(
      ret
        (const profile_cmd $ nf_opt_arg $ spec_file_arg $ specs_dir_arg $ model_arg
       $ flows_arg $ packets_arg $ packed_arg))

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run once with the telemetry plane attached and export the \
          per-packet span trace as Chrome trace_event JSON (load in \
          Perfetto / chrome://tracing). The export is validated — \
          well-formed JSON, monotone timestamps — before it is written.")
    Term.(
      ret
        (const trace_cmd $ nf_opt_arg $ spec_file_arg $ specs_dir_arg $ model_arg
       $ flows_arg $ packets_arg $ packed_arg
       $ Arg.(
           value & opt string "gunfu_trace.json"
           & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the trace JSON")))

let bench_t =
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Validate a committed machine-readable bench baseline \
          (gunfu-bench-baseline/1 JSON, e.g. BENCH_PR4.json): parse it, \
          round-trip it through print/parse, and summarize its figures. \
          Exits non-zero on schema or round-trip failure.")
    Term.(
      ret
        (const bench_cmd
        $ Arg.(
            required
            & opt (some file) None
            & info [ "json" ] ~docv:"FILE" ~doc:"Baseline JSON file to check")))

let list_t = Cmd.v (Cmd.info "list" ~doc:"List NFs and execution models") Term.(ret (const list_cmd $ const ()))

let compose_t =
  Cmd.v
    (Cmd.info "compose"
       ~doc:
         "Build an NF from an on-disk composition file (and the module specs \
          next to it) and run traffic through it")
    Term.(
      ret
        (const compose_cmd
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"NF_FILE")
        $ Arg.(value & opt dir "specs" & info [ "specs-dir" ] ~doc:"Module spec directory")
        $ model_arg
        $ Arg.(value & opt int 65536 & info [ "flows" ] ~doc:"Concurrent flows")
        $ packets_arg))

let () =
  (* Belt and braces: Check.Progen's initializer installs the hook too,
     but any compile with opts.lint on must find the analyzer. *)
  Analysis.Register.install ();
  let doc = "GuNFu: granular, cache-aware NF platform (simulated reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "gunfu" ~doc)
          [
            run_t; inspect_t; check_spec_t; check_t; chaos_t; scr_t; adapt_t;
            storm_t; compose_t;
            lint_t; verifyeq_t; profile_t; trace_t; bench_t; list_t;
          ]))
