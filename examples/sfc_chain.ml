(* Service function chain LB -> NAT -> NM -> FW, showing what the GuNFu
   compiler does with visibility: the flattened control-logic FSM, the
   prefetch policy after redundant-prefetch removal, and the effect of
   data packing + redundant-matching removal on throughput.

     dune exec examples/sfc_chain.exe
*)

let n_flows = 131072
let packets = 80_000
let length = 4

let build ~packed ~opts =
  let worker = Gunfu.Worker.create ~id:0 () in
  let layout = Gunfu.Worker.layout worker in
  let gen =
    Traffic.Flowgen.create ~seed:5 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let sfc = Nfs.Sfc.create layout ~length ~packed ~n_flows () in
  Nfs.Sfc.populate sfc (Traffic.Flowgen.flows gen);
  let program = Nfs.Sfc.program ~opts sfc in
  let source = Gunfu.Workload.of_flowgen gen ~pool ~count:packets in
  (worker, program, source)

let () =
  Printf.printf "SFC of length %d (LB -> NAT -> NM -> FW), %d flows\n\n" length n_flows;

  (* Show the compiled control-logic FSM once, with match removal, so the
     pruning is visible. *)
  let _, program_mr, _ =
    build ~packed:true ~opts:{ Gunfu.Compiler.default_opts with Gunfu.Compiler.match_removal = true }
  in
  Printf.printf "compiled program after redundant-matching removal:\n%s\n"
    (Fmt.str "%a" Gunfu.Program.pp program_mr);

  let cases =
    [
      ("RTC baseline", `Rtc, false, Gunfu.Compiler.default_opts);
      ("interleaved x16", `Il, false, Gunfu.Compiler.default_opts);
      ("interleaved + DP", `Il, true, Gunfu.Compiler.default_opts);
      ( "interleaved + DP + MR",
        `Il,
        true,
        { Gunfu.Compiler.default_opts with Gunfu.Compiler.match_removal = true } );
    ]
  in
  let baseline = ref 0.0 in
  List.iter
    (fun (label, model, packed, opts) ->
      let worker, program, source = build ~packed ~opts in
      let run =
        match model with
        | `Rtc -> Gunfu.Rtc.run ~label worker program source
        | `Il -> Gunfu.Scheduler.run ~label worker program ~n_tasks:16 source
      in
      let mpps = Gunfu.Metrics.mpps run in
      if !baseline = 0.0 then baseline := mpps;
      Printf.printf "%-24s %6.2f Mpps  IPC %.2f  (%.2fx vs RTC)\n" label mpps
        (Gunfu.Metrics.ipc run) (mpps /. !baseline))
    cases
