(* YAML-subset parser and the specification layer. *)

open Gunfu

(* ----- yaml ----- *)

let test_yaml_scalar_map () =
  let y = Yaml_lite.of_string "module: nat\ncategory: StatefulNF\n" in
  Alcotest.(check (option string)) "scalar" (Some "nat")
    (Option.bind (Yaml_lite.find "module" y) Yaml_lite.scalar);
  Alcotest.(check (option string)) "second key" (Some "StatefulNF")
    (Option.bind (Yaml_lite.find "category" y) Yaml_lite.scalar)

let test_yaml_list () =
  let y = Yaml_lite.of_string "items:\n- a\n- b\n- c\n" in
  Alcotest.(check (option (list string))) "list items" (Some [ "a"; "b"; "c" ])
    (Option.bind (Yaml_lite.find "items" y) Yaml_lite.scalar_list)

let test_yaml_nested_map () =
  let y = Yaml_lite.of_string "fetching:\n  hash_1:\n  - header\n  check_1:\n  - bucket\n" in
  match Yaml_lite.find "fetching" y with
  | Some (Yaml_lite.Map kvs) ->
      Alcotest.(check (list string)) "nested keys" [ "hash_1"; "check_1" ] (List.map fst kvs);
      Alcotest.(check (option (list string))) "nested list" (Some [ "bucket" ])
        (Yaml_lite.scalar_list (List.assoc "check_1" kvs))
  | _ -> Alcotest.fail "expected nested map"

let test_yaml_comments_and_blanks () =
  let y = Yaml_lite.of_string "# leading comment\n\nkey: value # trailing\n\n" in
  Alcotest.(check (option string)) "comments stripped" (Some "value")
    (Option.bind (Yaml_lite.find "key" y) Yaml_lite.scalar)

let test_yaml_indented_block () =
  let y = Yaml_lite.of_string "states:\n  bucket: match\n  header: packet\n" in
  match Yaml_lite.find "states" y with
  | Some (Yaml_lite.Map kvs) ->
      Alcotest.(check (option string)) "inner scalar" (Some "match")
        (Yaml_lite.scalar (List.assoc "bucket" kvs))
  | _ -> Alcotest.fail "expected map"

let test_yaml_tab_rejected () =
  match Yaml_lite.of_string "key:\n\tvalue: x\n" with
  | exception Yaml_lite.Parse_error (2, _) -> ()
  | _ -> Alcotest.fail "tabs must be rejected"

let test_yaml_empty_list_item_rejected () =
  match Yaml_lite.of_string "items:\n- \n" with
  | exception Yaml_lite.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "empty list item must be rejected"

(* ----- spec ----- *)

let test_module_spec_parses () =
  let m = Lazy.force Nfs.Classifier.spec in
  Alcotest.(check string) "name" "flow_classifier" m.Spec.m_name;
  Alcotest.(check string) "category" "StatefulClassifier" m.Spec.m_category;
  Alcotest.(check bool) "parameters include capacity" true
    (List.mem "capacity" m.Spec.m_parameters);
  Alcotest.(check bool) "has Start transition" true
    (List.exists (fun t -> t.Spec.src = "Start" && t.Spec.event = "packet") m.Spec.m_transitions);
  Alcotest.(check (option string)) "bucket is match state" (Some "match")
    (List.assoc_opt "bucket" m.Spec.m_states);
  Alcotest.(check bool) "fetching for bucket_check_1" true
    (List.mem_assoc "bucket_check_1" m.Spec.m_fetching)

let test_transition_parsing () =
  let t = Spec.parse_transition "check_1, MATCH_SUCCESS -> End" in
  Alcotest.(check string) "src" "check_1" t.Spec.src;
  Alcotest.(check string) "event" "MATCH_SUCCESS" t.Spec.event;
  Alcotest.(check string) "dst" "End" t.Spec.dst

let test_transition_malformed () =
  List.iter
    (fun s ->
      match Spec.parse_transition s with
      | exception Spec.Spec_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed transition " ^ s))
    [ "no_comma->x"; "a,b"; "a,->c"; ",ev->c" ]

let minimal_module extra =
  Printf.sprintf
    "module: m\ncategory: StatefulNF\ntransitions:\n- Start,packet->work\n- work,packet->End\n%s"
    extra

let test_validate_ok () =
  Spec.validate_module (Spec.module_spec_of_string (minimal_module ""))

let test_validate_no_end () =
  let m =
    Spec.module_spec_of_string
      "module: m\ncategory: X\ntransitions:\n- Start,packet->work\n- work,go->work\n"
  in
  match Spec.validate_module m with
  | exception Spec.Spec_error msg ->
      Alcotest.(check bool) "mentions End" true
        (String.length msg > 0 && String.sub msg 0 8 = "module m")
  | () -> Alcotest.fail "missing End must fail validation"

let test_validate_nondeterministic () =
  let m =
    Spec.module_spec_of_string
      "module: m\ncategory: X\ntransitions:\n- Start,packet->a\n- a,go->End\n- a,go->b\n- b,go->End\n"
  in
  match Spec.validate_module m with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "non-deterministic delta must fail"

let test_validate_unreachable () =
  let m =
    Spec.module_spec_of_string
      "module: m\ncategory: X\ntransitions:\n- Start,packet->a\n- a,go->End\n- zombie,go->End\n"
  in
  match Spec.validate_module m with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "unreachable state must fail"

let test_validate_fetching_unknown_cs () =
  let m =
    Spec.module_spec_of_string
      (minimal_module "fetching:\n  nonexistent:\n  - foo\nstates:\n  foo: per_flow\n")
  in
  match Spec.validate_module m with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "fetching for unknown control state must fail"

let test_validate_fetching_undeclared_state () =
  let m =
    Spec.module_spec_of_string
      (minimal_module "fetching:\n  work:\n  - mystery\nstates:\n  known: per_flow\n")
  in
  match Spec.validate_module m with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "undeclared state in fetching must fail"

let test_nf_spec_parses () =
  let nf =
    Spec.nf_spec_of_string
      "nf: nat\nmodules:\n  cls: flow_classifier\n  map: flow_mapper\ntransitions:\n- cls,MATCH_SUCCESS->map\n- map,packet->End\n"
  in
  Alcotest.(check string) "name" "nat" nf.Spec.n_name;
  Alcotest.(check int) "two modules" 2 (List.length nf.Spec.n_modules);
  Spec.validate_nf nf ~known_modules:[ "flow_classifier"; "flow_mapper" ]

let test_nf_spec_unknown_module () =
  let nf =
    Spec.nf_spec_of_string "nf: x\nmodules:\n  a: mystery\ntransitions:\n- a,packet->End\n"
  in
  match Spec.validate_nf nf ~known_modules:[ "flow_classifier" ] with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "unknown module type must fail"

let test_nf_spec_unknown_instance_transition () =
  let nf =
    Spec.nf_spec_of_string
      "nf: x\nmodules:\n  a: flow_classifier\ntransitions:\n- ghost,packet->End\n"
  in
  match Spec.validate_nf nf ~known_modules:[ "flow_classifier" ] with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "transition from unknown instance must fail"

let test_all_shipped_specs_validate () =
  List.iter Spec.validate_module
    [
      Lazy.force Nfs.Classifier.spec;
      Lazy.force Nfs.Nat.mapper_spec;
      Lazy.force Nfs.Lb.spec;
      Lazy.force Nfs.Firewall.spec;
      Lazy.force Nfs.Monitor.spec;
      Lazy.force Nfs.Upf.pdr_spec;
      Lazy.force Nfs.Upf.encap_spec;
      Lazy.force Nfs.Amf.spec;
    ]

let suite =
  [
    Alcotest.test_case "yaml scalar map" `Quick test_yaml_scalar_map;
    Alcotest.test_case "yaml list" `Quick test_yaml_list;
    Alcotest.test_case "yaml nested map" `Quick test_yaml_nested_map;
    Alcotest.test_case "yaml comments/blanks" `Quick test_yaml_comments_and_blanks;
    Alcotest.test_case "yaml indented block" `Quick test_yaml_indented_block;
    Alcotest.test_case "yaml tab rejected" `Quick test_yaml_tab_rejected;
    Alcotest.test_case "yaml empty item rejected" `Quick test_yaml_empty_list_item_rejected;
    Alcotest.test_case "listing-1 module spec parses" `Quick test_module_spec_parses;
    Alcotest.test_case "transition parsing" `Quick test_transition_parsing;
    Alcotest.test_case "malformed transitions" `Quick test_transition_malformed;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate missing End" `Quick test_validate_no_end;
    Alcotest.test_case "validate nondeterministic" `Quick test_validate_nondeterministic;
    Alcotest.test_case "validate unreachable" `Quick test_validate_unreachable;
    Alcotest.test_case "validate fetching unknown cs" `Quick test_validate_fetching_unknown_cs;
    Alcotest.test_case "validate fetching undeclared state" `Quick
      test_validate_fetching_undeclared_state;
    Alcotest.test_case "nf spec parses" `Quick test_nf_spec_parses;
    Alcotest.test_case "nf spec unknown module" `Quick test_nf_spec_unknown_module;
    Alcotest.test_case "nf spec unknown instance" `Quick
      test_nf_spec_unknown_instance_transition;
    Alcotest.test_case "all shipped specs validate" `Quick test_all_shipped_specs_validate;
  ]
