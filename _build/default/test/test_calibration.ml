(* Cost-model calibration guards: invariants of the simulator that the
   paper's argument depends on. If a change to the cost model breaks one of
   these, the figures stop being meaningful. *)

open Gunfu

let nat_run ~n_flows model =
  let s = Helpers.nat_setup ~n_flows () in
  let count = 10_000 in
  match model with
  | `Rtc ->
      (* warm: run the working set once so residency reflects steady state *)
      ignore (Rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:2000));
      Rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count)
  | `Il n ->
      ignore
        (Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:n
           (Helpers.nat_source s ~count:2000));
      Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:n
        (Helpers.nat_source s ~count)

(* The crossover invariant: interleaving only pays off when there are
   misses to hide. With a cache-resident working set (few flows), the
   scheduler's switch/fetch overhead must make it SLOWER than RTC. *)
let test_hot_set_interleaving_loses () =
  let rtc = nat_run ~n_flows:64 `Rtc in
  let il = nat_run ~n_flows:64 (`Il 16) in
  Alcotest.(check bool) "hot set: RTC wins" true (Metrics.mpps rtc > Metrics.mpps il)

let test_cold_set_interleaving_wins () =
  let rtc = nat_run ~n_flows:131072 `Rtc in
  let il = nat_run ~n_flows:131072 (`Il 16) in
  Alcotest.(check bool) "cold set: interleaving wins" true
    (Metrics.mpps il > 1.5 *. Metrics.mpps rtc)

(* Hot-path cycle accounting: with everything in L1, RTC per-packet cost is
   the sum of the known components — rx/tx (40) + per-action dispatch (3)
   + action base costs + L1 hits (4 each). The NAT path executes 5 actions
   (get_key, hash_1, bucket_check_1, key_check_1, mapper) on the fast path;
   a loose envelope catches accounting regressions without over-fitting. *)
let test_hot_rtc_cycle_envelope () =
  let rtc = nat_run ~n_flows:64 `Rtc in
  let cpp = Metrics.cycles_per_packet rtc in
  Alcotest.(check bool) "lower bound" true (cpp > 120.0);
  Alcotest.(check bool) "upper bound" true (cpp < 350.0)

(* With a hot working set there must be (almost) no DRAM traffic. *)
let test_hot_set_no_dram () =
  let rtc = nat_run ~n_flows:64 `Rtc in
  Alcotest.(check bool) "hot set stays out of DRAM" true
    (Metrics.llc_misses_per_packet rtc < 0.01)

(* Instruction accounting: IPC must stay in a plausible envelope — above 0
   and no higher than ~2 even for the fully-hit interleaved runs (we model
   a scalar-ish pipeline: one instr/cycle plus memory time). *)
let test_ipc_envelope () =
  List.iter
    (fun r ->
      let ipc = Metrics.ipc r in
      Alcotest.(check bool) "ipc positive" true (ipc > 0.0);
      Alcotest.(check bool) "ipc bounded" true (ipc <= 1.2))
    [ nat_run ~n_flows:64 `Rtc; nat_run ~n_flows:131072 (`Il 16) ]

(* Throughput identity: mpps * cycles_per_packet = frequency. *)
let test_throughput_identity () =
  let r = nat_run ~n_flows:4096 `Rtc in
  Alcotest.(check (float 0.01)) "mpps x cyc/pkt = GHz x 1000" 2700.0
    (Metrics.mpps r *. Metrics.cycles_per_packet r)

(* Latency lower bound: no packet can complete faster than its RTC hot-path
   cost; and mean latency x throughput >= 1 task's worth of work. *)
let test_latency_sanity () =
  let r = nat_run ~n_flows:4096 (`Il 8) in
  match r.Metrics.latency with
  | None -> Alcotest.fail "latency expected"
  | Some l ->
      Alcotest.(check bool) "min plausible latency" true (l.Metrics.l_p50 > 100);
      Alcotest.(check bool) "mean below max" true
        (l.Metrics.l_mean <= float_of_int l.Metrics.l_max)

(* Simulated time advances monotonically across consecutive runs on one
   worker (the clock is global to the core). *)
let test_clock_monotonic () =
  let s = Helpers.nat_setup () in
  let before = (Worker.ctx s.Helpers.worker).Exec_ctx.clock in
  ignore (Rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:100));
  let mid = (Worker.ctx s.Helpers.worker).Exec_ctx.clock in
  ignore
    (Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:4
       (Helpers.nat_source s ~count:100));
  let after = (Worker.ctx s.Helpers.worker).Exec_ctx.clock in
  Alcotest.(check bool) "clock advances" true (before < mid && mid < after)

let suite =
  [
    Alcotest.test_case "hot set: interleaving loses" `Slow test_hot_set_interleaving_loses;
    Alcotest.test_case "cold set: interleaving wins" `Slow test_cold_set_interleaving_wins;
    Alcotest.test_case "hot RTC cycle envelope" `Slow test_hot_rtc_cycle_envelope;
    Alcotest.test_case "hot set no DRAM" `Slow test_hot_set_no_dram;
    Alcotest.test_case "ipc envelope" `Slow test_ipc_envelope;
    Alcotest.test_case "throughput identity" `Slow test_throughput_identity;
    Alcotest.test_case "latency sanity" `Slow test_latency_sanity;
    Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
  ]
