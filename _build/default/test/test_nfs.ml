(* Network functions: LB, firewall, monitor, UPF, AMF, SFC. *)

open Gunfu

(* ----- LB ----- *)

let lb_setup ?(n_flows = 1024) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Flowgen.create ~seed:3 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) () in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let lb = Nfs.Lb.create layout ~name:"lb" ~n_flows () in
  Nfs.Lb.populate lb (Traffic.Flowgen.flows gen);
  (worker, gen, pool, lb, Nfs.Lb.program lb)

let test_lb_rewrites_to_backend () =
  let worker, gen, pool, lb, program = lb_setup () in
  for i = 0 to 20 do
    let flow = Traffic.Flowgen.flow gen i in
    let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
    Netcore.Packet.Pool.assign pool pkt;
    ignore (Helpers.run_one worker program pkt);
    let out = Netcore.Packet.flow_of_headers pkt in
    Alcotest.(check bool) "dst is the assigned backend" true
      (Int32.equal out.Netcore.Flow.dst_ip (Nfs.Lb.backend_of lb i))
  done

let test_lb_assignment_stable () =
  let worker, gen, pool, lb, program = lb_setup () in
  let flow = Traffic.Flowgen.flow gen 9 in
  let backend_seen =
    List.init 5 (fun _ ->
        let pkt = Netcore.Packet.make ~flow ~wire_len:64 () in
        Netcore.Packet.Pool.assign pool pkt;
        ignore (Helpers.run_one worker program pkt);
        (Netcore.Packet.flow_of_headers pkt).Netcore.Flow.dst_ip)
  in
  Alcotest.(check int) "same backend every packet" 1
    (List.length (List.sort_uniq compare backend_seen));
  ignore lb

let test_lb_spreads_backends () =
  let _, _, _, lb, _ = lb_setup ~n_flows:4096 () in
  let used = Array.make (Array.length lb.Nfs.Lb.backends) false in
  Array.iter (fun b -> used.(b) <- true) lb.Nfs.Lb.assignment;
  Alcotest.(check bool) "all backends used" true (Array.for_all (fun x -> x) used)

(* ----- firewall policy ----- *)

let flow ~src ~dport ?(proto = 17) () =
  Netcore.Flow.make ~src_ip:(Netcore.Ipv4.addr_of_string src)
    ~dst_ip:(Netcore.Ipv4.addr_of_string "192.168.0.1") ~src_port:1000 ~dst_port:dport ~proto

let test_fw_policy_first_match () =
  let policy =
    {
      Nfs.Firewall.rules =
        [
          {
            Nfs.Firewall.src_ip_mask = (Netcore.Ipv4.addr_of_string "10.0.0.0", 0xFFFFFF00l);
            dst_port_range = (0, 100);
            proto = None;
            rule_verdict = Nfs.Firewall.Deny;
          };
          {
            Nfs.Firewall.src_ip_mask = (0l, 0l);
            dst_port_range = (0, 65535);
            proto = None;
            rule_verdict = Nfs.Firewall.Accept;
          };
        ];
      default = Nfs.Firewall.Deny;
    }
  in
  let v f = Nfs.Firewall.evaluate policy f in
  Alcotest.(check bool) "denied by rule 1" true
    (v (flow ~src:"10.0.0.5" ~dport:80 ()) = Nfs.Firewall.Deny);
  Alcotest.(check bool) "port outside range accepted by rule 2" true
    (v (flow ~src:"10.0.0.5" ~dport:8080 ()) = Nfs.Firewall.Accept);
  Alcotest.(check bool) "other subnet accepted" true
    (v (flow ~src:"11.0.0.5" ~dport:80 ()) = Nfs.Firewall.Accept)

let test_fw_policy_proto_and_default () =
  let policy =
    {
      Nfs.Firewall.rules =
        [
          {
            Nfs.Firewall.src_ip_mask = (0l, 0l);
            dst_port_range = (0, 65535);
            proto = Some 6;
            rule_verdict = Nfs.Firewall.Accept;
          };
        ];
      default = Nfs.Firewall.Deny;
    }
  in
  Alcotest.(check bool) "tcp accepted" true
    (Nfs.Firewall.evaluate policy (flow ~src:"1.2.3.4" ~dport:80 ~proto:6 ())
    = Nfs.Firewall.Accept);
  Alcotest.(check bool) "udp falls to default deny" true
    (Nfs.Firewall.evaluate policy (flow ~src:"1.2.3.4" ~dport:80 ())
    = Nfs.Firewall.Deny)

let test_fw_drops_denied_flows () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let deny_all = { Nfs.Firewall.rules = []; default = Nfs.Firewall.Deny } in
  let flows = [| flow ~src:"10.1.1.1" ~dport:80 () |] in
  let pool = Netcore.Packet.Pool.create layout ~count:8 in
  let fw = Nfs.Firewall.create layout ~name:"fw" ~policy:deny_all ~n_flows:1 () in
  Nfs.Firewall.populate fw flows;
  let program = Nfs.Firewall.program fw in
  let pkt = Netcore.Packet.make ~flow:flows.(0) ~wire_len:64 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program pkt in
  Alcotest.(check int) "denied flow dropped" 1 r.Metrics.drops

(* ----- monitor ----- *)

let test_monitor_counts () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Flowgen.create ~seed:4 ~n_flows:64 ~size_model:(Traffic.Flowgen.Fixed 200) () in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let nm = Nfs.Monitor.create layout ~name:"nm" ~n_flows:64 () in
  Nfs.Monitor.populate nm (Traffic.Flowgen.flows gen);
  let program = Nfs.Monitor.program nm in
  let counts = Array.make 64 0 in
  let base = Workload.of_flowgen gen ~pool ~count:500 in
  let tap () =
    match base () with
    | None -> None
    | Some item ->
        counts.(item.Workload.flow_hint) <- counts.(item.Workload.flow_hint) + 1;
        Some item
  in
  let r = Scheduler.run worker program ~n_tasks:8 tap in
  Alcotest.(check int) "all packets" 500 r.Metrics.packets;
  for i = 0 to 63 do
    let pkts, bytes = Nfs.Monitor.stats nm i in
    Alcotest.(check int) (Printf.sprintf "flow %d packet count" i) counts.(i) pkts;
    Alcotest.(check int) (Printf.sprintf "flow %d byte count" i) (counts.(i) * 200) bytes
  done

(* ----- UPF ----- *)

let test_upf_encapsulates_correct_teid () =
  let worker, mgw, pool, upf, program = Helpers.upf_setup ~n_sessions:256 ~n_pdrs:8 () in
  for _ = 1 to 50 do
    let si, _pdr, pkt = Traffic.Mgw.next_downlink mgw in
    Netcore.Packet.Pool.assign pool pkt;
    let before = pkt.Netcore.Packet.wire_len in
    let r = Helpers.run_one worker program ~flow_hint:si pkt in
    Alcotest.(check int) "forwarded" 0 r.Metrics.drops;
    Alcotest.(check int) "encap overhead added" (before + Netcore.Gtpu.encap_overhead)
      pkt.Netcore.Packet.wire_len;
    let teid = Netcore.Packet.decapsulate_gtpu pkt in
    Alcotest.(check int32) "teid of the matched session"
      (Traffic.Mgw.session mgw si).Traffic.Mgw.teid teid
  done;
  Alcotest.(check bool) "encap counter advanced" true (upf.Nfs.Upf.encapsulated >= 50)

let test_upf_unknown_ue_dropped () =
  let worker, _, pool, _, program = Helpers.upf_setup ~n_sessions:16 ~n_pdrs:2 () in
  let stranger =
    Netcore.Flow.make ~src_ip:1l ~dst_ip:(Netcore.Ipv4.addr_of_string "8.8.8.8")
      ~src_port:2000 ~dst_port:5000 ~proto:17
  in
  let pkt = Netcore.Packet.make ~flow:stranger ~wire_len:128 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program pkt in
  Alcotest.(check int) "unknown UE dropped" 1 r.Metrics.drops

let test_upf_out_of_range_port_misses_pdr () =
  let worker, mgw, pool, _, program = Helpers.upf_setup ~n_sessions:16 ~n_pdrs:2 () in
  (* Valid UE, but src port below every PDR range (PDRs start at 1024). *)
  let s = Traffic.Mgw.session mgw 3 in
  let f =
    Netcore.Flow.make ~src_ip:7l ~dst_ip:s.Traffic.Mgw.ue_ip ~src_port:80 ~dst_port:9999
      ~proto:17
  in
  let pkt = Netcore.Packet.make ~flow:f ~wire_len:128 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program pkt in
  Alcotest.(check int) "no PDR matches -> drop" 1 r.Metrics.drops

let test_upf_tree_depth_grows () =
  let _, _, _, upf2, _ = Helpers.upf_setup ~n_sessions:16 ~n_pdrs:2 () in
  let _, _, _, upf128, _ = Helpers.upf_setup ~n_sessions:16 ~n_pdrs:128 () in
  Alcotest.(check bool) "deeper tree with more PDRs" true
    (Nfs.Upf.tree_depth upf128 > Nfs.Upf.tree_depth upf2);
  Alcotest.(check bool) "depth stays logarithmic" true (Nfs.Upf.tree_depth upf128 <= 8)

let test_upf_interleaved_equals_rtc_effects () =
  let run exec =
    let worker, mgw, pool, upf, program = Helpers.upf_setup ~n_sessions:512 ~n_pdrs:4 () in
    let r = exec worker program (Workload.of_mgw_downlink mgw ~pool ~count:1000) in
    (r, upf.Nfs.Upf.encapsulated)
  in
  let r_rtc, enc_rtc = run (fun w p s -> Rtc.run w p s) in
  let r_il, enc_il = run (fun w p s -> Scheduler.run w p ~n_tasks:16 s) in
  Alcotest.(check int) "same completions" r_rtc.Metrics.packets r_il.Metrics.packets;
  Alcotest.(check int) "same encapsulations" enc_rtc enc_il

(* ----- AMF ----- *)

let test_amf_registration_fsm () =
  let worker, gen, pool, amf, program = Helpers.amf_setup ~n_ues:4 () in
  (* The generator round-robins UEs randomly; with 200 messages over 4 UEs
     each walks the 5-message registration sequence many times. *)
  let r = Rtc.run worker program (Workload.of_amf gen ~pool ~count:200) in
  Alcotest.(check int) "all messages handled" 200 r.Metrics.packets;
  Alcotest.(check int) "no protocol errors on in-order traffic" 0
    amf.Nfs.Amf.protocol_errors;
  Array.iter
    (fun regs -> Alcotest.(check bool) "each UE registered at least once" true (regs >= 1))
    amf.Nfs.Amf.registrations;
  (* Total registrations = completed RegistrationComplete messages. *)
  let total = Array.fold_left ( + ) 0 amf.Nfs.Amf.registrations in
  Alcotest.(check bool) "plausible registration count" true (total >= 4 && total <= 40)

let test_amf_out_of_order_detected () =
  let worker, _, pool, amf, program = Helpers.amf_setup ~n_ues:2 () in
  (* Deliver AuthResponse before RegistrationRequest for UE 0. *)
  let mk msg =
    let flow =
      Netcore.Flow.make ~src_ip:9l ~dst_ip:10l ~src_port:38412 ~dst_port:38412 ~proto:6
    in
    let pkt = Netcore.Packet.make ~flow ~wire_len:120 () in
    Netcore.Packet.Pool.assign pool pkt;
    { Workload.packet = Some pkt; aux = Workload.amf_msg_code msg; flow_hint = 0 }
  in
  let _ =
    Rtc.run worker program
      (Workload.total_items [ mk Traffic.Mgw.Authentication_response ])
  in
  Alcotest.(check int) "out-of-order flagged" 1 amf.Nfs.Amf.protocol_errors;
  (* The AMF resynchronises: continuing from SecurityModeComplete works. *)
  let _ =
    Rtc.run worker program (Workload.total_items [ mk Traffic.Mgw.Security_mode_complete ])
  in
  Alcotest.(check int) "resynchronised" 1 amf.Nfs.Amf.protocol_errors

let test_amf_packed_equivalent () =
  let run packed =
    let worker, gen, pool, amf, program = Helpers.amf_setup ~n_ues:128 ~packed () in
    let _ = Scheduler.run worker program ~n_tasks:8 (Workload.of_amf gen ~pool ~count:2000) in
    (Array.fold_left ( + ) 0 amf.Nfs.Amf.registrations, amf.Nfs.Amf.protocol_errors)
  in
  Alcotest.(check (pair int int)) "packed layout changes no behaviour" (run false)
    (run true)

let test_amf_context_large () =
  (* The paper: AMF per-UE state exceeds 20 cache lines. *)
  let total = List.fold_left (fun a (_, b) -> a + b) 0 Nfs.Amf.context_fields in
  Alcotest.(check bool) "UE context > 20 lines" true (total > 20 * 64)

let test_amf_packing_reduces_lines () =
  let layout = Memsim.Layout.create () in
  let u = Nfs.Amf.create layout ~name:"u" ~packed:false ~n_ues:4 () in
  let p = Nfs.Amf.create layout ~name:"p" ~packed:true ~n_ues:4 () in
  let lines amf =
    List.fold_left (fun acc m -> acc + Nfs.Amf.lines_per_message amf m) 0
      Traffic.Mgw.all_amf_msgs
  in
  Alcotest.(check bool) "packing reduces total lines per call flow" true
    (lines p < lines u)

(* ----- SFC ----- *)

let test_sfc_lengths_build_and_run () =
  List.iter
    (fun length ->
      let s = Helpers.sfc_setup ~length () in
      let r =
        Scheduler.run s.Helpers.s_worker s.Helpers.s_program ~n_tasks:8
          (Workload.of_flowgen s.Helpers.s_gen ~pool:s.Helpers.s_pool ~count:300)
      in
      Alcotest.(check int)
        (Printf.sprintf "length %d completes" length)
        300 r.Metrics.packets)
    [ 2; 3; 4; 5; 6 ]

let test_sfc_invalid_length () =
  let layout = Memsim.Layout.create () in
  List.iter
    (fun length ->
      match Nfs.Sfc.create layout ~length ~packed:false ~n_flows:8 () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "length outside 2..6 must be rejected")
    [ 1; 7 ]

let test_sfc_applies_all_nfs () =
  let s = Helpers.sfc_setup ~length:4 () in
  let flow = Traffic.Flowgen.flow s.Helpers.s_gen 11 in
  let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
  Netcore.Packet.Pool.assign s.Helpers.s_pool pkt;
  let r = Helpers.run_one s.Helpers.s_worker s.Helpers.s_program pkt in
  Alcotest.(check int) "forwarded" 0 r.Metrics.drops;
  let out = Netcore.Packet.flow_of_headers pkt in
  (* LB rewrote dst, NAT rewrote src. *)
  Alcotest.(check bool) "lb applied" true
    (Int32.equal out.Netcore.Flow.dst_ip (Nfs.Lb.backend_of s.Helpers.s_sfc.Nfs.Sfc.lb 11));
  Alcotest.(check bool) "nat applied" true
    (Int32.equal out.Netcore.Flow.src_ip s.Helpers.s_sfc.Nfs.Sfc.nat.Nfs.Nat.map_ip.(11));
  (* NM accounted the packet. *)
  let pkts, _ = Nfs.Monitor.stats (Option.get s.Helpers.s_sfc.Nfs.Sfc.nm) 11 in
  Alcotest.(check int) "nm accounted" 1 pkts

let test_sfc_packed_equivalent_behaviour () =
  let run packed =
    let s = Helpers.sfc_setup ~length:4 ~packed () in
    let r =
      Scheduler.run s.Helpers.s_worker s.Helpers.s_program ~n_tasks:8
        (Workload.of_flowgen s.Helpers.s_gen ~pool:s.Helpers.s_pool ~count:2000)
    in
    let nm = Option.get s.Helpers.s_sfc.Nfs.Sfc.nm in
    (r.Metrics.packets, r.Metrics.drops, Array.fold_left ( + ) 0 nm.Nfs.Monitor.pkt_count)
  in
  let a = run false and b = run true in
  Alcotest.(check bool) "packed == unpacked observable behaviour" true (a = b)

let test_sfc_packed_uses_fewer_lines () =
  let layout = Memsim.Layout.create () in
  let packed = Nfs.Sfc.create layout ~length:4 ~packed:true ~n_flows:16 () in
  (* All four per-flow states of one flow share one line when packed. *)
  let lines =
    [
      Structures.State_arena.addr packed.Nfs.Sfc.lb.Nfs.Lb.arena 5 / 64;
      Structures.State_arena.addr packed.Nfs.Sfc.nat.Nfs.Nat.arena 5 / 64;
      Structures.State_arena.addr (Option.get packed.Nfs.Sfc.nm).Nfs.Monitor.arena 5 / 64;
      Structures.State_arena.addr (List.hd packed.Nfs.Sfc.fws).Nfs.Firewall.arena 5 / 64;
    ]
  in
  Alcotest.(check int) "one cache line for the whole chain's per-flow state" 1
    (List.length (List.sort_uniq compare lines))

let suite =
  [
    Alcotest.test_case "lb rewrites to backend" `Quick test_lb_rewrites_to_backend;
    Alcotest.test_case "lb assignment stable" `Quick test_lb_assignment_stable;
    Alcotest.test_case "lb spreads backends" `Quick test_lb_spreads_backends;
    Alcotest.test_case "fw first-match policy" `Quick test_fw_policy_first_match;
    Alcotest.test_case "fw proto and default" `Quick test_fw_policy_proto_and_default;
    Alcotest.test_case "fw drops denied" `Quick test_fw_drops_denied_flows;
    Alcotest.test_case "monitor counts" `Quick test_monitor_counts;
    Alcotest.test_case "upf encapsulates teid" `Quick test_upf_encapsulates_correct_teid;
    Alcotest.test_case "upf unknown UE dropped" `Quick test_upf_unknown_ue_dropped;
    Alcotest.test_case "upf pdr miss dropped" `Quick test_upf_out_of_range_port_misses_pdr;
    Alcotest.test_case "upf tree depth" `Quick test_upf_tree_depth_grows;
    Alcotest.test_case "upf models equivalent" `Quick test_upf_interleaved_equals_rtc_effects;
    Alcotest.test_case "amf registration fsm" `Quick test_amf_registration_fsm;
    Alcotest.test_case "amf out-of-order" `Quick test_amf_out_of_order_detected;
    Alcotest.test_case "amf packed equivalent" `Quick test_amf_packed_equivalent;
    Alcotest.test_case "amf context large" `Quick test_amf_context_large;
    Alcotest.test_case "amf packing reduces lines" `Quick test_amf_packing_reduces_lines;
    Alcotest.test_case "sfc lengths build/run" `Quick test_sfc_lengths_build_and_run;
    Alcotest.test_case "sfc invalid length" `Quick test_sfc_invalid_length;
    Alcotest.test_case "sfc applies all NFs" `Quick test_sfc_applies_all_nfs;
    Alcotest.test_case "sfc packed equivalence" `Quick test_sfc_packed_equivalent_behaviour;
    Alcotest.test_case "sfc packed line sharing" `Quick test_sfc_packed_uses_fewer_lines;
  ]
