(* Multi-core platform and the director control plane. *)

open Gunfu

let nat_builder ?(count = 500) ~n_flows () : Director.builder =
 fun _config worker ~core ->
  let layout = Worker.layout worker in
  let gen =
    Traffic.Flowgen.create ~seed:(50 + core) ~n_flows
      ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:128 in
  let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows () in
  Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
  (Nfs.Nat.program nat, Workload.of_flowgen gen ~pool ~count)

let test_platform_llc_partitioning () =
  let p1 = Platform.create ~cores:1 () in
  let p8 = Platform.create ~cores:8 () in
  let llc p =
    (Memsim.Hierarchy.config (Worker.ctx (Platform.worker p 0)).Exec_ctx.mem)
      .Memsim.Hierarchy.llc_size
  in
  Alcotest.(check bool) "8-core slice smaller than single-core" true (llc p8 < llc p1);
  Alcotest.(check bool) "slice at most 1/4 with 8 cores" true (llc p8 <= llc p1 / 4)

let test_platform_invalid_cores () =
  match Platform.create ~cores:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 cores must be rejected"

let test_platform_runs_all_cores () =
  let p = Platform.create ~cores:4 () in
  let builder = nat_builder ~count:200 ~n_flows:1024 () in
  let runs =
    Platform.run_interleaved p ~n_tasks:8 ~setup:(fun w core -> builder [] w ~core)
  in
  Alcotest.(check int) "one run per core" 4 (List.length runs);
  List.iter
    (fun r -> Alcotest.(check int) "each core did its slice" 200 r.Metrics.packets)
    runs;
  let merged = Metrics.merge_parallel runs in
  Alcotest.(check int) "merged packets" 800 merged.Metrics.packets

let test_platform_scales_throughput () =
  let run cores =
    let p = Platform.create ~cores () in
    let builder = nat_builder ~count:5000 ~n_flows:16384 () in
    let runs =
      Platform.run_interleaved p ~n_tasks:16 ~setup:(fun w core -> builder [] w ~core)
    in
    let m = Metrics.merge_parallel runs in
    Metrics.mpps m
  in
  let one = run 1 and four = run 4 in
  Alcotest.(check bool) "near-linear scaling (>3x on 4 cores)" true (four > 3.0 *. one)

(* ----- director ----- *)

let test_director_registry () =
  let d = Director.create () in
  Director.register_module d (Lazy.force Nfs.Classifier.spec);
  Director.register_module d (Lazy.force Nfs.Nat.mapper_spec);
  Alcotest.(check bool) "module registered" true
    (Director.find_module d "flow_classifier" <> None);
  (match Director.register_module d (Lazy.force Nfs.Classifier.spec) with
  | exception Director.Director_error _ -> ()
  | () -> Alcotest.fail "duplicate module registration must fail");
  let nf =
    Spec.nf_spec_of_string
      "nf: nat\nmodules:\n  cls: flow_classifier\n  map: flow_mapper\ntransitions:\n- cls,MATCH_SUCCESS->map\n- map,packet->End\n"
  in
  Director.register_nf d nf;
  Alcotest.(check bool) "nf registered" true (Director.find_nf d "nat" <> None)

let test_director_nf_requires_known_modules () =
  let d = Director.create () in
  let nf =
    Spec.nf_spec_of_string "nf: x\nmodules:\n  a: mystery\ntransitions:\n- a,packet->End\n"
  in
  match Director.register_nf d nf with
  | exception Spec.Spec_error _ -> ()
  | () -> Alcotest.fail "NF with unknown module must be rejected"

let test_director_config_template () =
  let d = Director.create () in
  Director.register_module d (Lazy.force Nfs.Classifier.spec);
  Director.register_module d (Lazy.force Nfs.Nat.mapper_spec);
  let nf =
    Spec.nf_spec_of_string
      "nf: nat\nmodules:\n  cls: flow_classifier\n  map: flow_mapper\ntransitions:\n- cls,MATCH_SUCCESS->map\n- map,packet->End\n"
  in
  Director.register_nf d nf;
  let template = Director.config_template d "nat" in
  let keys = List.map fst template in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " in template") true (List.mem k keys))
    [ "capacity"; "header_type"; "ip_pool"; "port_base" ];
  (* Validation: a filled config passes, a partial one fails. *)
  Director.validate_config template (List.map (fun (k, _) -> (k, "x")) template);
  match Director.validate_config template [ ("capacity", "10") ] with
  | exception Director.Director_error _ -> ()
  | () -> Alcotest.fail "partial config must fail validation"

let test_director_deploy_and_run () =
  let d = Director.create () in
  let dep =
    Director.deploy d ~name:"nat-east" ~cores:2 ~config:[]
      ~builder:(nat_builder ~count:300 ~n_flows:2048 ())
      ()
  in
  let rtc = Director.run dep Director.Run_to_completion in
  let il = Director.run dep (Director.Interleaved 8) in
  Alcotest.(check int) "rtc packets across cores" 600 rtc.Metrics.packets;
  Alcotest.(check int) "interleaved packets across cores" 600 il.Metrics.packets;
  Alcotest.(check int) "stats exchanged with director" 4 (List.length (Director.stats dep));
  (match Director.deploy d ~name:"nat-east" ~cores:1 ~config:[]
           ~builder:(nat_builder ~count:1 ~n_flows:16 ()) () with
  | exception Director.Director_error _ -> ()
  | _ -> Alcotest.fail "duplicate deployment name must fail");
  (* The report renders. *)
  let report = Fmt.str "%a" (fun ppf () -> Director.report ppf d) () in
  Alcotest.(check bool) "report mentions deployment" true
    (String.length report > 0)

let test_director_dynamic_reconfiguration () =
  let d = Director.create () in
  let dep =
    Director.deploy d ~name:"nat-west" ~cores:1 ~config:[ ("mode", "a") ]
      ~builder:(nat_builder ~count:50 ~n_flows:256 ())
      ()
  in
  Alcotest.(check (list (pair string string))) "initial config" [ ("mode", "a") ]
    (Director.current_config dep);
  Director.update_config dep [ ("mode", "b") ];
  Alcotest.(check (list (pair string string))) "config updated" [ ("mode", "b") ]
    (Director.current_config dep);
  let r = Director.run dep (Director.Interleaved 4) in
  Alcotest.(check int) "runs with the new config" 50 r.Metrics.packets

let suite =
  [
    Alcotest.test_case "llc partitioning" `Quick test_platform_llc_partitioning;
    Alcotest.test_case "invalid cores" `Quick test_platform_invalid_cores;
    Alcotest.test_case "runs all cores" `Quick test_platform_runs_all_cores;
    Alcotest.test_case "throughput scales" `Slow test_platform_scales_throughput;
    Alcotest.test_case "director registry" `Quick test_director_registry;
    Alcotest.test_case "director unknown modules" `Quick test_director_nf_requires_known_modules;
    Alcotest.test_case "director config template" `Quick test_director_config_template;
    Alcotest.test_case "director deploy/run" `Quick test_director_deploy_and_run;
    Alcotest.test_case "director dynamic reconfig" `Quick test_director_dynamic_reconfiguration;
  ]
