(* The execution context: cycle/instruction accounting and state-class
   attribution — the bookkeeping all metrics derive from. *)

open Gunfu

let mk () = Exec_ctx.create ()

let test_compute_advances () =
  let ctx = mk () in
  Exec_ctx.compute ctx ~cycles:100 ~instrs:80;
  Alcotest.(check int) "clock" 100 ctx.Exec_ctx.clock;
  Alcotest.(check int) "instrs" 80 ctx.Exec_ctx.instrs

let test_read_charges_latency_and_class () =
  let ctx = mk () in
  let cfg = Memsim.Hierarchy.config ctx.Exec_ctx.mem in
  Exec_ctx.read ctx ~cls:Sref.Per_flow ~addr:0x50000 ~bytes:8;
  Alcotest.(check int) "cold read = DRAM latency" cfg.Memsim.Hierarchy.lat_dram
    ctx.Exec_ctx.clock;
  Alcotest.(check int) "attributed to per-flow class" cfg.Memsim.Hierarchy.lat_dram
    (Exec_ctx.state_access_cycles ctx Sref.Per_flow);
  Alcotest.(check int) "other classes untouched" 0
    (Exec_ctx.state_access_cycles ctx Sref.Match_state);
  (* Second read: L1 hit. *)
  let before = ctx.Exec_ctx.clock in
  Exec_ctx.read ctx ~cls:Sref.Per_flow ~addr:0x50000 ~bytes:8;
  Alcotest.(check int) "hot read = L1 latency" cfg.Memsim.Hierarchy.lat_l1
    (ctx.Exec_ctx.clock - before)

let test_write_counts () =
  let ctx = mk () in
  Exec_ctx.write ctx ~cls:Sref.Packet_state ~addr:0x60000 ~bytes:4;
  let c = Exec_ctx.counters ctx in
  Alcotest.(check int) "one write op" 1 c.Memsim.Memstats.writes;
  Alcotest.(check bool) "packet class charged" true
    (Exec_ctx.state_access_cycles ctx Sref.Packet_state > 0)

let test_prefetch_then_ready () =
  let ctx = mk () in
  let issued = Exec_ctx.prefetch ctx ~addr:0x70000 ~bytes:8 in
  Alcotest.(check int) "one fill" 1 issued;
  Alcotest.(check bool) "not ready yet" false (Exec_ctx.ready ctx ~addr:0x70000 ~bytes:8);
  (* Prefetch charged one cycle per issued line. *)
  Alcotest.(check int) "issue cost" 1 ctx.Exec_ctx.clock;
  (* Advance past the fill latency: ready. *)
  Exec_ctx.compute ctx ~cycles:1000 ~instrs:0;
  Alcotest.(check bool) "ready after fill" true (Exec_ctx.ready ctx ~addr:0x70000 ~bytes:8)

let test_class_index_bijective () =
  for i = 0 to Exec_ctx.n_classes - 1 do
    Alcotest.(check int) "index roundtrip" i
      (Exec_ctx.class_index (Exec_ctx.class_of_index i))
  done

let test_read_sref () =
  let ctx = mk () in
  Exec_ctx.read_sref ctx (Sref.make ~cls:Sref.Control_state ~addr:0x100 ~bytes:16);
  Alcotest.(check bool) "control class charged" true
    (Exec_ctx.state_access_cycles ctx Sref.Control_state > 0)

let test_action_execute_charges_base () =
  let ctx = mk () in
  let task = Nftask.create 0 in
  Nftask.load task ~cs:0 ();
  let action =
    Action.make ~base_cycles:55 ~base_instrs:44 ~name:"t" (fun _ _ -> Event.Emit_packet)
  in
  let ev = Action.execute action ctx task in
  Alcotest.(check bool) "event returned" true (Event.equal ev Event.Emit_packet);
  Alcotest.(check int) "base cycles charged" 55 ctx.Exec_ctx.clock;
  Alcotest.(check int) "base instrs charged" 44 ctx.Exec_ctx.instrs

let suite =
  [
    Alcotest.test_case "compute advances" `Quick test_compute_advances;
    Alcotest.test_case "read charges latency+class" `Quick test_read_charges_latency_and_class;
    Alcotest.test_case "write counts" `Quick test_write_counts;
    Alcotest.test_case "prefetch then ready" `Quick test_prefetch_then_ready;
    Alcotest.test_case "class index bijective" `Quick test_class_index_bijective;
    Alcotest.test_case "read_sref" `Quick test_read_sref;
    Alcotest.test_case "action execute charges base" `Quick test_action_execute_charges_base;
  ]
