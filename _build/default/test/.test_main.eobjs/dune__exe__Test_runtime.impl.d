test/test_runtime.ml: Alcotest Array Batch_rtc Gunfu Helpers Int32 List Memsim Metrics Netcore Nfs QCheck QCheck_alcotest Rtc Scheduler Sref Traffic Worker Workload
