test/test_cache.ml: Alcotest Cache Gen List Memsim QCheck QCheck_alcotest
