test/test_model.ml: Alcotest Array Event Exec_ctx Fsm Gunfu Lazy List Memsim Metrics Nftask Prefetch Structures
