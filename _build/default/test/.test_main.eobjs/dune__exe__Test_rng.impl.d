test/test_rng.ml: Alcotest Array Int64 Memsim QCheck QCheck_alcotest Rng
