test/test_traffic.ml: Alcotest Array Caida Flowgen Hashtbl Int32 List Memsim Mgw Netcore Option Printf QCheck QCheck_alcotest Traffic Zipf
