test/test_spec.ml: Alcotest Gunfu Lazy List Nfs Option Printf Spec String Yaml_lite
