test/helpers.ml: Compiler Gunfu Netcore Nfs Program Rtc Traffic Worker Workload
