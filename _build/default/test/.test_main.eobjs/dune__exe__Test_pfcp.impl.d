test/test_pfcp.ml: Alcotest Bytes Char Gunfu Helpers Int32 Int64 List Metrics Netcore Nfs QCheck QCheck_alcotest String Traffic Worker
