test/test_calibration.ml: Alcotest Exec_ctx Gunfu Helpers List Metrics Rtc Scheduler Worker
