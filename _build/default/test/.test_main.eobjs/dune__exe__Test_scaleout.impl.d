test/test_scaleout.ml: Alcotest Array Event Filename Gunfu Helpers List Memsim Metrics Netcore Nfs Option Printf Program Scheduler Spec Traffic Worker Workload
