test/test_layout.ml: Alcotest Gen Layout List Memsim QCheck QCheck_alcotest
