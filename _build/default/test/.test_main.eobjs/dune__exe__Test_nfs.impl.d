test/test_nfs.ml: Alcotest Array Gunfu Helpers Int32 List Memsim Metrics Netcore Nfs Option Printf Rtc Scheduler Structures Traffic Worker Workload
