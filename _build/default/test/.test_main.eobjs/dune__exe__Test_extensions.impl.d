test/test_extensions.ml: Alcotest Array Batch_rtc Gunfu Helpers Int32 Int64 List Maglev Memsim Metrics Netcore Nfs QCheck QCheck_alcotest Rtc Scheduler Structures Traffic Worker Workload
