test/test_latency.ml: Alcotest Array Batch_rtc Gunfu Helpers List Memsim Metrics Rtc Scheduler
