test/test_nas.ml: Alcotest Array Bytes Gunfu List Netcore Nfs Option Rtc Traffic Worker Workload
