test/test_qos.ml: Alcotest Array Gunfu List Memsim Metrics Netcore Nfs Option Rtc Structures Traffic Worker Workload
