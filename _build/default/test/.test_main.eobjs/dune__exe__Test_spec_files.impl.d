test/test_spec_files.ml: Alcotest Filename Fun Gunfu Lazy List Memsim Nfs Spec
