test/test_structures.ml: Alcotest Cuckoo Gen Hashtbl Int64 List Mdi_tree Memsim Option Packing Printf QCheck QCheck_alcotest State_arena Structures
