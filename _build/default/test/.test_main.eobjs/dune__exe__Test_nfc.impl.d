test/test_nfc.ml: Action Alcotest Event Gunfu Hashtbl Lazy List Nfc Nftask Option QCheck QCheck_alcotest String Worker
