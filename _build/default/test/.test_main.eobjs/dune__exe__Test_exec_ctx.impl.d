test/test_exec_ctx.ml: Action Alcotest Event Exec_ctx Gunfu Memsim Nftask Sref
