test/test_compiler.ml: Alcotest Compiler Event Fmt Gunfu Helpers List Metrics Nfs Option Prefetch Program Rtc Scheduler Spec String Traffic Worker Workload
