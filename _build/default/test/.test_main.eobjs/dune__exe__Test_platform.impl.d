test/test_platform.ml: Alcotest Director Exec_ctx Fmt Gunfu Lazy List Memsim Metrics Netcore Nfs Platform Spec String Traffic Worker Workload
