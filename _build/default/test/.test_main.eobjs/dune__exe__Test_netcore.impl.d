test/test_netcore.ml: Alcotest Array Bytes Checksum Ethernet Flow Gen Gtpu Int32 Int64 Ipv4 L4 List Memsim Netcore Packet QCheck QCheck_alcotest
