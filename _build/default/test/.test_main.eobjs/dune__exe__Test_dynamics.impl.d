test/test_dynamics.ml: Alcotest Array Exec_ctx Filename Fun Gunfu Helpers Int32 List Memsim Metrics Netcore Nfc Nfs Pipeline QCheck QCheck_alcotest Scheduler String Sys Traffic Worker Workload
