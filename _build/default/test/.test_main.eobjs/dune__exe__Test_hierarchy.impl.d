test/test_hierarchy.ml: Alcotest Cache Hierarchy List Memsim Memstats QCheck QCheck_alcotest
