(* Token-bucket QoS enforcement (QER) and pcap trace replay. *)

open Gunfu

(* ----- token bucket ----- *)

let test_bucket_burst_then_police () =
  let b =
    Structures.Token_bucket.create ~rate_bytes_per_sec:1_000_000 ~burst_bytes:3000
      ~freq_ghz:2.7 ()
  in
  (* Full burst admits 3000 bytes at t=0... *)
  Alcotest.(check bool) "first" true (Structures.Token_bucket.admit b ~now:0 ~bytes:1500);
  Alcotest.(check bool) "second" true (Structures.Token_bucket.admit b ~now:0 ~bytes:1500);
  (* ...then polices. *)
  Alcotest.(check bool) "exhausted" false (Structures.Token_bucket.admit b ~now:0 ~bytes:100)

let test_bucket_refills () =
  let b =
    Structures.Token_bucket.create ~rate_bytes_per_sec:2_700_000 ~burst_bytes:1000
      ~freq_ghz:2.7 ()
  in
  ignore (Structures.Token_bucket.admit b ~now:0 ~bytes:1000);
  Alcotest.(check bool) "empty" false (Structures.Token_bucket.admit b ~now:0 ~bytes:500);
  (* 2.7 MB/s at 2.7 GHz = 1 byte per 1000 cycles: 500k cycles = 500B. *)
  Alcotest.(check bool) "refilled" true
    (Structures.Token_bucket.admit b ~now:500_000 ~bytes:500);
  Alcotest.(check int) "drained again" 0
    (Structures.Token_bucket.available_bytes b ~now:500_000)

let test_bucket_caps_at_burst () =
  let b =
    Structures.Token_bucket.create ~rate_bytes_per_sec:1_000_000 ~burst_bytes:1000
      ~freq_ghz:2.7 ()
  in
  (* An eternity of idling never exceeds the burst size. *)
  Alcotest.(check int) "capped" 1000
    (Structures.Token_bucket.available_bytes b ~now:10_000_000_000)

let test_bucket_validation () =
  match
    Structures.Token_bucket.create ~rate_bytes_per_sec:0 ~burst_bytes:1 ~freq_ghz:2.7 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero rate accepted"

(* ----- UPF with QER ----- *)

let qos_upf ~rate_bytes_per_sec () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let mgw = Traffic.Mgw.create ~n_sessions:8 ~n_pdrs:2 ~wire_len:1000 () in
  let upf =
    Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:2 ()
  in
  Nfs.Upf.populate upf;
  let qos =
    Nfs.Upf.create_qos layout upf ~rate_bytes_per_sec ~burst_bytes:2000 ~freq_ghz:2.7
  in
  let program = Nfs.Upf.program_with_qos upf qos in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  (worker, mgw, pool, upf, qos, program)

let burst_to_session (worker, mgw, pool, _upf, _qos, program) ~si ~packets =
  let items =
    List.init packets (fun _ ->
        let s = Traffic.Mgw.session mgw si in
        let lo, _ = Traffic.Mgw.pdr_port_range ~n_pdrs:2 ~pdr:0 in
        let flow =
          Netcore.Flow.make ~src_ip:1l ~dst_ip:s.Traffic.Mgw.ue_ip ~src_port:lo
            ~dst_port:10000 ~proto:Netcore.Ipv4.proto_udp
        in
        let pkt = Netcore.Packet.make ~flow ~wire_len:1000 () in
        Netcore.Packet.Pool.assign pool pkt;
        { Workload.packet = Some pkt; aux = 0; flow_hint = si })
  in
  Rtc.run worker program (Workload.total_items items)

let test_qer_polices_a_burst () =
  (* Tiny rate: the 2000B burst admits 2 x 1000B packets, rest policed. *)
  let env = qos_upf ~rate_bytes_per_sec:1000 () in
  let r = burst_to_session env ~si:3 ~packets:10 in
  let _, _, _, upf, qos, _ = env in
  Alcotest.(check int) "conformant packets" 2 qos.Nfs.Upf.conformant;
  Alcotest.(check int) "policed packets" 8 qos.Nfs.Upf.policed;
  Alcotest.(check int) "drops reported" 8 r.Metrics.drops;
  Alcotest.(check int) "only conformant packets encapsulated" 2 upf.Nfs.Upf.encapsulated

let test_qer_per_session_isolation () =
  (* Session 1 exhausts its bucket; session 2's is untouched. *)
  let env = qos_upf ~rate_bytes_per_sec:1000 () in
  ignore (burst_to_session env ~si:1 ~packets:5);
  let r2 = burst_to_session env ~si:2 ~packets:2 in
  Alcotest.(check int) "other session unaffected" 0 r2.Metrics.drops

let test_qer_generous_rate_passes_everything () =
  (* The RTC pace offers ~1000 B / ~1800 cycles = ~1.5 GB/s; a 10 GB/s AMBR
     must police nothing. *)
  let env = qos_upf ~rate_bytes_per_sec:10_000_000_000 () in
  let r = burst_to_session env ~si:0 ~packets:20 in
  Alcotest.(check int) "no policing above the offered rate" 0 r.Metrics.drops

(* ----- pcap replay ----- *)

let test_pcap_replay_roundtrip () =
  (* Generate traffic, capture it, replay the capture through a NAT: the
     replayed flows must be the generated ones, in order. *)
  let gen =
    Traffic.Flowgen.create ~seed:31 ~n_flows:32 ~size_model:(Traffic.Flowgen.Fixed 200) ()
  in
  let pkts = Array.to_list (Traffic.Flowgen.batch gen 20) in
  let w = Netcore.Pcap.create_writer () in
  List.iteri (fun i p -> Netcore.Pcap.add_packet w ~ts_us:i p) pkts;
  let records = Netcore.Pcap.parse (Netcore.Pcap.contents w) in
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let pool = Netcore.Packet.Pool.create layout ~count:32 in
  let source = Workload.of_pcap records ~pool in
  let replayed = ref [] in
  let tap () =
    match source () with
    | None -> None
    | Some item ->
        (match item.Workload.packet with
        | Some p -> replayed := p.Netcore.Packet.flow :: !replayed
        | None -> ());
        Some item
  in
  let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows:64 () in
  Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
  let r = Rtc.run worker (Nfs.Nat.program nat) tap in
  Alcotest.(check int) "all replayed packets processed" 20 r.Metrics.packets;
  Alcotest.(check int) "replayed flows match capture" 0
    (List.compare_lengths (List.rev !replayed) pkts);
  List.iter2
    (fun replayed_flow original ->
      Alcotest.(check bool) "flow identity survives capture+replay" true
        (Netcore.Flow.equal replayed_flow original.Netcore.Packet.flow))
    (List.rev !replayed) pkts;
  Alcotest.(check int) "NAT translated the replayed traffic (no drops)" 0 r.Metrics.drops

let test_pcap_replay_orders_by_timestamp () =
  let gen = Traffic.Flowgen.create ~seed:32 ~n_flows:4 () in
  let p1 = Traffic.Flowgen.next gen and p2 = Traffic.Flowgen.next gen in
  let w = Netcore.Pcap.create_writer () in
  Netcore.Pcap.add_packet w ~ts_us:500 p1;
  Netcore.Pcap.add_packet w ~ts_us:100 p2;
  let records = Netcore.Pcap.parse (Netcore.Pcap.contents w) in
  let layout = Memsim.Layout.create () in
  let pool = Netcore.Packet.Pool.create layout ~count:8 in
  let source = Workload.of_pcap records ~pool in
  let first = Option.get (source ()) in
  Alcotest.(check bool) "earliest timestamp first" true
    (Netcore.Flow.equal
       (Option.get first.Workload.packet).Netcore.Packet.flow
       p2.Netcore.Packet.flow)

let suite =
  [
    Alcotest.test_case "bucket burst then police" `Quick test_bucket_burst_then_police;
    Alcotest.test_case "bucket refills" `Quick test_bucket_refills;
    Alcotest.test_case "bucket caps at burst" `Quick test_bucket_caps_at_burst;
    Alcotest.test_case "bucket validation" `Quick test_bucket_validation;
    Alcotest.test_case "qer polices a burst" `Quick test_qer_polices_a_burst;
    Alcotest.test_case "qer per-session isolation" `Quick test_qer_per_session_isolation;
    Alcotest.test_case "qer generous rate" `Quick test_qer_generous_rate_passes_everything;
    Alcotest.test_case "pcap replay roundtrip" `Quick test_pcap_replay_roundtrip;
    Alcotest.test_case "pcap replay timestamp order" `Quick
      test_pcap_replay_orders_by_timestamp;
  ]
