lib/netcore/flow.ml: Fmt Int32 Int64 Ipv4 Stdlib
