lib/netcore/gtpu.ml: Bytes Char Ethernet Ipv4 L4
