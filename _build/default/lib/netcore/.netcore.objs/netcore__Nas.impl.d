lib/netcore/nas.ml: Bytes Char Ethernet Int32 Ipv4
