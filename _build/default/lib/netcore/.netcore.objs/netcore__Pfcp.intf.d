lib/netcore/pfcp.mli: Ipv4
