lib/netcore/l4.mli: Bytes
