lib/netcore/pcap.mli: Bytes Packet
