lib/netcore/ethernet.mli: Bytes
