lib/netcore/ethernet.ml: Bytes Char List Printf String
