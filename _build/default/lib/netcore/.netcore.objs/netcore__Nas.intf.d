lib/netcore/nas.mli: Bytes
