lib/netcore/ipv4.ml: Bytes Char Checksum Ethernet Int32 Printf String
