lib/netcore/packet.mli: Bytes Ethernet Flow Ipv4 Memsim
