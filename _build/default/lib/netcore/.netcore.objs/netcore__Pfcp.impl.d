lib/netcore/pfcp.ml: Buffer Char Int32 Int64 Ipv4 List Printf String
