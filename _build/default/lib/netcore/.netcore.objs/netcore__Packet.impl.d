lib/netcore/packet.ml: Bytes Ethernet Flow Gtpu Ipv4 L4 Memsim
