lib/netcore/flow.mli: Format Ipv4
