lib/netcore/gtpu.mli: Bytes
