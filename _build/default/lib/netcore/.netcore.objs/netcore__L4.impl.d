lib/netcore/l4.ml: Bytes Char Ethernet Ipv4
