(** PFCP-lite (3GPP TS 29.244 subset) — the N4 protocol the SMF uses to
    program PFCP sessions, PDRs and FARs into the UPF. Real header layout
    (version/S flag, message type, length, SEID, sequence) and nested TLV
    information elements with standard IE numbers. *)

exception Malformed of string

val msg_session_establishment_request : int
val msg_session_establishment_response : int
val msg_session_modification_request : int
val msg_session_modification_response : int
val msg_session_deletion_request : int
val msg_session_deletion_response : int

val cause_accepted : int
val cause_request_rejected : int
val cause_no_resources : int
val cause_session_not_found : int

(** Packet detection info: a source-port interval plus protocol. *)
type pdi = { src_port_lo : int; src_port_hi : int; proto : int }

type create_pdr = { pdr_id : int; precedence : int32; pdi : pdi; far_id : int32 }

type create_far = {
  far_id_v : int32;
  forward : bool;
  outer_teid : int32;  (** GTP-U TEID of the outer header to create *)
  outer_ipv4 : Ipv4.addr;  (** RAN endpoint *)
}

type session_establishment = {
  cp_seid : int64;
  cp_addr : Ipv4.addr;
  ue_ip : Ipv4.addr;
  pdrs : create_pdr list;
  fars : create_far list;
}

type message =
  | Establishment_request of session_establishment
  | Establishment_response of { cause : int; up_seid : int64 }
  | Deletion_request
  | Deletion_response of { cause : int }

type packet = { seid : int64; seq : int; payload : message }

val encode : packet -> string

(** @raise Malformed on truncation, bad version, missing mandatory IEs,
    length mismatches or inverted port ranges. *)
val decode : string -> packet
