(** Network flows: 5-tuples, 64-bit match keys, RSS steering. *)

type t = {
  src_ip : Ipv4.addr;
  dst_ip : Ipv4.addr;
  src_port : int;
  dst_port : int;
  proto : int;
}

val make :
  src_ip:Ipv4.addr -> dst_ip:Ipv4.addr -> src_port:int -> dst_port:int -> proto:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Swap endpoints (the reverse direction of a bidirectional flow). *)
val reverse : t -> t

(** Mixed 64-bit key used by the cuckoo flow tables. Equal flows yield equal
    keys; lookups additionally compare full tuples, so key collisions are
    harmless. *)
val key64 : t -> int64

(** Non-negative hash for OCaml-side containers. *)
val hash : t -> int

(** RSS: deterministic queue in [\[0, cores)].
    @raise Invalid_argument when [cores <= 0]. *)
val rss : t -> cores:int -> int

val pp : Format.formatter -> t -> unit
