(** GTP-U (user-plane GPRS tunnelling): the 8-byte mandatory header the UPF
    puts between core network and RAN. *)

val header_bytes : int

(** Well-known UDP port 2152. *)
val udp_port : int

val msg_gpdu : int
val msg_echo_request : int
val msg_echo_response : int

type t = { msg_type : int; length : int; teid : int32 }

val make : ?msg_type:int -> teid:int32 -> length:int -> unit -> t
val encode : t -> Bytes.t -> off:int -> unit

(** @raise Invalid_argument on an unsupported version nibble. *)
val decode : Bytes.t -> off:int -> t

(** Bytes a GTP-U tunnel adds to an inner IP packet (outer IPv4 + UDP +
    GTP-U). *)
val encap_overhead : int
