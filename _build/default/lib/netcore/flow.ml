(* Network flows: 5-tuples, hashing, RSS steering. *)

type t = {
  src_ip : Ipv4.addr;
  dst_ip : Ipv4.addr;
  src_port : int;
  dst_port : int;
  proto : int;
}

let make ~src_ip ~dst_ip ~src_port ~dst_port ~proto =
  { src_ip; dst_ip; src_port; dst_port; proto }

let equal a b =
  Int32.equal a.src_ip b.src_ip
  && Int32.equal a.dst_ip b.dst_ip
  && a.src_port = b.src_port
  && a.dst_port = b.dst_port
  && a.proto = b.proto

let compare = Stdlib.compare

let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    src_port = t.dst_port;
    dst_port = t.src_port;
    proto = t.proto;
  }

(* 64-bit mix (splitmix finalizer) — used both as the flow-table key hash and
   for RSS. Collision-safe lookups compare the full tuple on the OCaml side. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let key64 t =
  let open Int64 in
  let ip_part =
    logor
      (shift_left (logand (of_int32 t.src_ip) 0xFFFFFFFFL) 32)
      (logand (of_int32 t.dst_ip) 0xFFFFFFFFL)
  in
  let port_part = of_int ((t.src_port lsl 24) lxor (t.dst_port lsl 8) lxor t.proto) in
  mix64 (logxor (mix64 ip_part) port_part)

let hash t = Int64.to_int (Int64.shift_right_logical (key64 t) 16) land max_int

(* RSS: steer a flow to one of [cores] queues, symmetric not required. *)
let rss t ~cores =
  if cores <= 0 then invalid_arg "Flow.rss: cores must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (key64 t) 3) (Int64.of_int cores))

let pp ppf t =
  Fmt.pf ppf "%s:%d -> %s:%d/%d"
    (Ipv4.addr_to_string t.src_ip) t.src_port
    (Ipv4.addr_to_string t.dst_ip) t.dst_port t.proto
