(* GTP-U (GPRS Tunnelling Protocol, user plane) — the encapsulation the UPF
   applies between the core network and the RAN. 8-byte mandatory header. *)

let header_bytes = 8
let udp_port = 2152
let msg_gpdu = 0xFF
let msg_echo_request = 0x01
let msg_echo_response = 0x02

type t = { msg_type : int; length : int; teid : int32 }

let make ?(msg_type = msg_gpdu) ~teid ~length () = { msg_type; length; teid }

let encode t buf ~off =
  Bytes.set buf off (Char.chr 0x30) (* version 1, PT=1, no extensions *);
  Bytes.set buf (off + 1) (Char.chr t.msg_type);
  Ethernet.put_u16 buf (off + 2) t.length;
  Ipv4.put_u32 buf (off + 4) t.teid

let decode buf ~off =
  let flags = Char.code (Bytes.get buf off) in
  if flags lsr 5 <> 1 then invalid_arg "Gtpu.decode: unsupported version";
  {
    msg_type = Char.code (Bytes.get buf (off + 1));
    length = Ethernet.get_u16 buf (off + 2);
    teid = Ipv4.get_u32 buf (off + 4);
  }

(* Total overhead of a GTP-U tunnel on an inner IP packet:
   outer IPv4 + outer UDP + GTP-U. *)
let encap_overhead = Ipv4.header_bytes + L4.udp_header_bytes + header_bytes
