(* Ethernet II framing. *)

type mac = int (* low 48 bits *)

let header_bytes = 14

let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806

type t = { dst : mac; src : mac; ethertype : int }

let mac_of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      List.fold_left
        (fun acc hex -> (acc lsl 8) lor int_of_string ("0x" ^ hex))
        0 [ a; b; c; d; e; f ]
  | _ -> invalid_arg "Ethernet.mac_of_string"

let mac_to_string m =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((m lsr 40) land 0xFF) ((m lsr 32) land 0xFF) ((m lsr 24) land 0xFF)
    ((m lsr 16) land 0xFF) ((m lsr 8) land 0xFF) (m land 0xFF)

let put_mac buf off m =
  for i = 0 to 5 do
    Bytes.set buf (off + i) (Char.chr ((m lsr ((5 - i) * 8)) land 0xFF))
  done

let get_mac buf off =
  let m = ref 0 in
  for i = 0 to 5 do
    m := (!m lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !m

let put_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let encode t buf ~off =
  put_mac buf off t.dst;
  put_mac buf (off + 6) t.src;
  put_u16 buf (off + 12) t.ethertype

let decode buf ~off =
  { dst = get_mac buf off; src = get_mac buf (off + 6); ethertype = get_u16 buf (off + 12) }
